# Empty dependencies file for factor_analysis.
# This may be replaced when dependencies are built.
