file(REMOVE_RECURSE
  "CMakeFiles/factor_analysis.dir/def_use.cpp.o"
  "CMakeFiles/factor_analysis.dir/def_use.cpp.o.d"
  "libfactor_analysis.a"
  "libfactor_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/factor_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
