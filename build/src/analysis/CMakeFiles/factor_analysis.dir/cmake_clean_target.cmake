file(REMOVE_RECURSE
  "libfactor_analysis.a"
)
