# Empty dependencies file for factor_designs.
# This may be replaced when dependencies are built.
