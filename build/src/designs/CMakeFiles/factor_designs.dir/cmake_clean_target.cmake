file(REMOVE_RECURSE
  "libfactor_designs.a"
)
