file(REMOVE_RECURSE
  "CMakeFiles/factor_designs.dir/arm2z_isa.cpp.o"
  "CMakeFiles/factor_designs.dir/arm2z_isa.cpp.o.d"
  "CMakeFiles/factor_designs.dir/designs.cpp.o"
  "CMakeFiles/factor_designs.dir/designs.cpp.o.d"
  "libfactor_designs.a"
  "libfactor_designs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/factor_designs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
