file(REMOVE_RECURSE
  "libfactor_elab.a"
)
