file(REMOVE_RECURSE
  "CMakeFiles/factor_elab.dir/elaborator.cpp.o"
  "CMakeFiles/factor_elab.dir/elaborator.cpp.o.d"
  "libfactor_elab.a"
  "libfactor_elab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/factor_elab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
