# Empty dependencies file for factor_elab.
# This may be replaced when dependencies are built.
