
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/constraints.cpp" "src/core/CMakeFiles/factor_core.dir/constraints.cpp.o" "gcc" "src/core/CMakeFiles/factor_core.dir/constraints.cpp.o.d"
  "/root/repo/src/core/extractor.cpp" "src/core/CMakeFiles/factor_core.dir/extractor.cpp.o" "gcc" "src/core/CMakeFiles/factor_core.dir/extractor.cpp.o.d"
  "/root/repo/src/core/pier.cpp" "src/core/CMakeFiles/factor_core.dir/pier.cpp.o" "gcc" "src/core/CMakeFiles/factor_core.dir/pier.cpp.o.d"
  "/root/repo/src/core/testability.cpp" "src/core/CMakeFiles/factor_core.dir/testability.cpp.o" "gcc" "src/core/CMakeFiles/factor_core.dir/testability.cpp.o.d"
  "/root/repo/src/core/transform.cpp" "src/core/CMakeFiles/factor_core.dir/transform.cpp.o" "gcc" "src/core/CMakeFiles/factor_core.dir/transform.cpp.o.d"
  "/root/repo/src/core/translate.cpp" "src/core/CMakeFiles/factor_core.dir/translate.cpp.o" "gcc" "src/core/CMakeFiles/factor_core.dir/translate.cpp.o.d"
  "/root/repo/src/core/writer.cpp" "src/core/CMakeFiles/factor_core.dir/writer.cpp.o" "gcc" "src/core/CMakeFiles/factor_core.dir/writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/factor_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/elab/CMakeFiles/factor_elab.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/factor_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/atpg/CMakeFiles/factor_atpg.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/factor_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/factor_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
