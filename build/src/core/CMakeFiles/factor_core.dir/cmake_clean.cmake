file(REMOVE_RECURSE
  "CMakeFiles/factor_core.dir/constraints.cpp.o"
  "CMakeFiles/factor_core.dir/constraints.cpp.o.d"
  "CMakeFiles/factor_core.dir/extractor.cpp.o"
  "CMakeFiles/factor_core.dir/extractor.cpp.o.d"
  "CMakeFiles/factor_core.dir/pier.cpp.o"
  "CMakeFiles/factor_core.dir/pier.cpp.o.d"
  "CMakeFiles/factor_core.dir/testability.cpp.o"
  "CMakeFiles/factor_core.dir/testability.cpp.o.d"
  "CMakeFiles/factor_core.dir/transform.cpp.o"
  "CMakeFiles/factor_core.dir/transform.cpp.o.d"
  "CMakeFiles/factor_core.dir/translate.cpp.o"
  "CMakeFiles/factor_core.dir/translate.cpp.o.d"
  "CMakeFiles/factor_core.dir/writer.cpp.o"
  "CMakeFiles/factor_core.dir/writer.cpp.o.d"
  "libfactor_core.a"
  "libfactor_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/factor_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
