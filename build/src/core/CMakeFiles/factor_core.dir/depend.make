# Empty dependencies file for factor_core.
# This may be replaced when dependencies are built.
