file(REMOVE_RECURSE
  "libfactor_core.a"
)
