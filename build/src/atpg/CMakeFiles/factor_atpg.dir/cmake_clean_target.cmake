file(REMOVE_RECURSE
  "libfactor_atpg.a"
)
