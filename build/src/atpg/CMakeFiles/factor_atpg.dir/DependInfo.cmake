
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/atpg/bist.cpp" "src/atpg/CMakeFiles/factor_atpg.dir/bist.cpp.o" "gcc" "src/atpg/CMakeFiles/factor_atpg.dir/bist.cpp.o.d"
  "/root/repo/src/atpg/engine.cpp" "src/atpg/CMakeFiles/factor_atpg.dir/engine.cpp.o" "gcc" "src/atpg/CMakeFiles/factor_atpg.dir/engine.cpp.o.d"
  "/root/repo/src/atpg/equiv.cpp" "src/atpg/CMakeFiles/factor_atpg.dir/equiv.cpp.o" "gcc" "src/atpg/CMakeFiles/factor_atpg.dir/equiv.cpp.o.d"
  "/root/repo/src/atpg/fault.cpp" "src/atpg/CMakeFiles/factor_atpg.dir/fault.cpp.o" "gcc" "src/atpg/CMakeFiles/factor_atpg.dir/fault.cpp.o.d"
  "/root/repo/src/atpg/fault_sim.cpp" "src/atpg/CMakeFiles/factor_atpg.dir/fault_sim.cpp.o" "gcc" "src/atpg/CMakeFiles/factor_atpg.dir/fault_sim.cpp.o.d"
  "/root/repo/src/atpg/podem.cpp" "src/atpg/CMakeFiles/factor_atpg.dir/podem.cpp.o" "gcc" "src/atpg/CMakeFiles/factor_atpg.dir/podem.cpp.o.d"
  "/root/repo/src/atpg/scoap.cpp" "src/atpg/CMakeFiles/factor_atpg.dir/scoap.cpp.o" "gcc" "src/atpg/CMakeFiles/factor_atpg.dir/scoap.cpp.o.d"
  "/root/repo/src/atpg/vectors.cpp" "src/atpg/CMakeFiles/factor_atpg.dir/vectors.cpp.o" "gcc" "src/atpg/CMakeFiles/factor_atpg.dir/vectors.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/synth/CMakeFiles/factor_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/elab/CMakeFiles/factor_elab.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/factor_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/factor_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
