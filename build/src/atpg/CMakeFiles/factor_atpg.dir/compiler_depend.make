# Empty compiler generated dependencies file for factor_atpg.
# This may be replaced when dependencies are built.
