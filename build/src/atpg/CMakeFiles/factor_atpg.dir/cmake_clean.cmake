file(REMOVE_RECURSE
  "CMakeFiles/factor_atpg.dir/bist.cpp.o"
  "CMakeFiles/factor_atpg.dir/bist.cpp.o.d"
  "CMakeFiles/factor_atpg.dir/engine.cpp.o"
  "CMakeFiles/factor_atpg.dir/engine.cpp.o.d"
  "CMakeFiles/factor_atpg.dir/equiv.cpp.o"
  "CMakeFiles/factor_atpg.dir/equiv.cpp.o.d"
  "CMakeFiles/factor_atpg.dir/fault.cpp.o"
  "CMakeFiles/factor_atpg.dir/fault.cpp.o.d"
  "CMakeFiles/factor_atpg.dir/fault_sim.cpp.o"
  "CMakeFiles/factor_atpg.dir/fault_sim.cpp.o.d"
  "CMakeFiles/factor_atpg.dir/podem.cpp.o"
  "CMakeFiles/factor_atpg.dir/podem.cpp.o.d"
  "CMakeFiles/factor_atpg.dir/scoap.cpp.o"
  "CMakeFiles/factor_atpg.dir/scoap.cpp.o.d"
  "CMakeFiles/factor_atpg.dir/vectors.cpp.o"
  "CMakeFiles/factor_atpg.dir/vectors.cpp.o.d"
  "libfactor_atpg.a"
  "libfactor_atpg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/factor_atpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
