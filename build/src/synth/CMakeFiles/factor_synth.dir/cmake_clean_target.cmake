file(REMOVE_RECURSE
  "libfactor_synth.a"
)
