
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/netlist.cpp" "src/synth/CMakeFiles/factor_synth.dir/netlist.cpp.o" "gcc" "src/synth/CMakeFiles/factor_synth.dir/netlist.cpp.o.d"
  "/root/repo/src/synth/optimizer.cpp" "src/synth/CMakeFiles/factor_synth.dir/optimizer.cpp.o" "gcc" "src/synth/CMakeFiles/factor_synth.dir/optimizer.cpp.o.d"
  "/root/repo/src/synth/synthesizer.cpp" "src/synth/CMakeFiles/factor_synth.dir/synthesizer.cpp.o" "gcc" "src/synth/CMakeFiles/factor_synth.dir/synthesizer.cpp.o.d"
  "/root/repo/src/synth/transforms.cpp" "src/synth/CMakeFiles/factor_synth.dir/transforms.cpp.o" "gcc" "src/synth/CMakeFiles/factor_synth.dir/transforms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rtl/CMakeFiles/factor_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/elab/CMakeFiles/factor_elab.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/factor_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
