file(REMOVE_RECURSE
  "CMakeFiles/factor_synth.dir/netlist.cpp.o"
  "CMakeFiles/factor_synth.dir/netlist.cpp.o.d"
  "CMakeFiles/factor_synth.dir/optimizer.cpp.o"
  "CMakeFiles/factor_synth.dir/optimizer.cpp.o.d"
  "CMakeFiles/factor_synth.dir/synthesizer.cpp.o"
  "CMakeFiles/factor_synth.dir/synthesizer.cpp.o.d"
  "CMakeFiles/factor_synth.dir/transforms.cpp.o"
  "CMakeFiles/factor_synth.dir/transforms.cpp.o.d"
  "libfactor_synth.a"
  "libfactor_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/factor_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
