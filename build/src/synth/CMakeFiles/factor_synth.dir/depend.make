# Empty dependencies file for factor_synth.
# This may be replaced when dependencies are built.
