
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtl/ast.cpp" "src/rtl/CMakeFiles/factor_rtl.dir/ast.cpp.o" "gcc" "src/rtl/CMakeFiles/factor_rtl.dir/ast.cpp.o.d"
  "/root/repo/src/rtl/const_eval.cpp" "src/rtl/CMakeFiles/factor_rtl.dir/const_eval.cpp.o" "gcc" "src/rtl/CMakeFiles/factor_rtl.dir/const_eval.cpp.o.d"
  "/root/repo/src/rtl/lexer.cpp" "src/rtl/CMakeFiles/factor_rtl.dir/lexer.cpp.o" "gcc" "src/rtl/CMakeFiles/factor_rtl.dir/lexer.cpp.o.d"
  "/root/repo/src/rtl/parser.cpp" "src/rtl/CMakeFiles/factor_rtl.dir/parser.cpp.o" "gcc" "src/rtl/CMakeFiles/factor_rtl.dir/parser.cpp.o.d"
  "/root/repo/src/rtl/printer.cpp" "src/rtl/CMakeFiles/factor_rtl.dir/printer.cpp.o" "gcc" "src/rtl/CMakeFiles/factor_rtl.dir/printer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/factor_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
