# Empty dependencies file for factor_rtl.
# This may be replaced when dependencies are built.
