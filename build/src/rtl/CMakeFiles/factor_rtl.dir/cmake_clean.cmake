file(REMOVE_RECURSE
  "CMakeFiles/factor_rtl.dir/ast.cpp.o"
  "CMakeFiles/factor_rtl.dir/ast.cpp.o.d"
  "CMakeFiles/factor_rtl.dir/const_eval.cpp.o"
  "CMakeFiles/factor_rtl.dir/const_eval.cpp.o.d"
  "CMakeFiles/factor_rtl.dir/lexer.cpp.o"
  "CMakeFiles/factor_rtl.dir/lexer.cpp.o.d"
  "CMakeFiles/factor_rtl.dir/parser.cpp.o"
  "CMakeFiles/factor_rtl.dir/parser.cpp.o.d"
  "CMakeFiles/factor_rtl.dir/printer.cpp.o"
  "CMakeFiles/factor_rtl.dir/printer.cpp.o.d"
  "libfactor_rtl.a"
  "libfactor_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/factor_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
