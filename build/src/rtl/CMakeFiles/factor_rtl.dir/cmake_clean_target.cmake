file(REMOVE_RECURSE
  "libfactor_rtl.a"
)
