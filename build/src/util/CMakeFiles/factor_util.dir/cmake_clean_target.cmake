file(REMOVE_RECURSE
  "libfactor_util.a"
)
