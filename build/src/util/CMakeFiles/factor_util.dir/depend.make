# Empty dependencies file for factor_util.
# This may be replaced when dependencies are built.
