file(REMOVE_RECURSE
  "CMakeFiles/factor_util.dir/bitvec.cpp.o"
  "CMakeFiles/factor_util.dir/bitvec.cpp.o.d"
  "CMakeFiles/factor_util.dir/diagnostics.cpp.o"
  "CMakeFiles/factor_util.dir/diagnostics.cpp.o.d"
  "CMakeFiles/factor_util.dir/strings.cpp.o"
  "CMakeFiles/factor_util.dir/strings.cpp.o.d"
  "libfactor_util.a"
  "libfactor_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/factor_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
