# Empty compiler generated dependencies file for factor_cli.
# This may be replaced when dependencies are built.
