file(REMOVE_RECURSE
  "CMakeFiles/factor_cli.dir/factor_cli.cpp.o"
  "CMakeFiles/factor_cli.dir/factor_cli.cpp.o.d"
  "factor"
  "factor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/factor_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
