file(REMOVE_RECURSE
  "CMakeFiles/testability_report.dir/testability_report.cpp.o"
  "CMakeFiles/testability_report.dir/testability_report.cpp.o.d"
  "testability_report"
  "testability_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testability_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
