file(REMOVE_RECURSE
  "CMakeFiles/write_constraints.dir/write_constraints.cpp.o"
  "CMakeFiles/write_constraints.dir/write_constraints.cpp.o.d"
  "write_constraints"
  "write_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/write_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
