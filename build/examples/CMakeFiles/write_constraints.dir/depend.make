# Empty dependencies file for write_constraints.
# This may be replaced when dependencies are built.
