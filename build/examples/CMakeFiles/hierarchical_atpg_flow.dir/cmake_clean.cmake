file(REMOVE_RECURSE
  "CMakeFiles/hierarchical_atpg_flow.dir/hierarchical_atpg_flow.cpp.o"
  "CMakeFiles/hierarchical_atpg_flow.dir/hierarchical_atpg_flow.cpp.o.d"
  "hierarchical_atpg_flow"
  "hierarchical_atpg_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hierarchical_atpg_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
