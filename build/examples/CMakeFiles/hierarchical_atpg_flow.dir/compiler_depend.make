# Empty compiler generated dependencies file for hierarchical_atpg_flow.
# This may be replaced when dependencies are built.
