file(REMOVE_RECURSE
  "CMakeFiles/test_vectors.dir/test_vectors.cpp.o"
  "CMakeFiles/test_vectors.dir/test_vectors.cpp.o.d"
  "test_vectors"
  "test_vectors.pdb"
  "test_vectors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
