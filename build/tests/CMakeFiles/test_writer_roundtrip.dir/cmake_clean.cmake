file(REMOVE_RECURSE
  "CMakeFiles/test_writer_roundtrip.dir/test_writer_roundtrip.cpp.o"
  "CMakeFiles/test_writer_roundtrip.dir/test_writer_roundtrip.cpp.o.d"
  "test_writer_roundtrip"
  "test_writer_roundtrip.pdb"
  "test_writer_roundtrip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_writer_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
