file(REMOVE_RECURSE
  "CMakeFiles/test_property_atpg.dir/test_property_atpg.cpp.o"
  "CMakeFiles/test_property_atpg.dir/test_property_atpg.cpp.o.d"
  "test_property_atpg"
  "test_property_atpg.pdb"
  "test_property_atpg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_atpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
