# Empty dependencies file for test_property_atpg.
# This may be replaced when dependencies are built.
