file(REMOVE_RECURSE
  "CMakeFiles/test_equiv_bist.dir/test_equiv_bist.cpp.o"
  "CMakeFiles/test_equiv_bist.dir/test_equiv_bist.cpp.o.d"
  "test_equiv_bist"
  "test_equiv_bist.pdb"
  "test_equiv_bist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_equiv_bist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
