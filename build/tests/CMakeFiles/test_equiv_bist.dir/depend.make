# Empty dependencies file for test_equiv_bist.
# This may be replaced when dependencies are built.
