file(REMOVE_RECURSE
  "CMakeFiles/test_property_optimizer.dir/test_property_optimizer.cpp.o"
  "CMakeFiles/test_property_optimizer.dir/test_property_optimizer.cpp.o.d"
  "test_property_optimizer"
  "test_property_optimizer.pdb"
  "test_property_optimizer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
