# Empty dependencies file for test_property_synth.
# This may be replaced when dependencies are built.
