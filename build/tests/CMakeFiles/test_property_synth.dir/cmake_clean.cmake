file(REMOVE_RECURSE
  "CMakeFiles/test_property_synth.dir/test_property_synth.cpp.o"
  "CMakeFiles/test_property_synth.dir/test_property_synth.cpp.o.d"
  "test_property_synth"
  "test_property_synth.pdb"
  "test_property_synth[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
