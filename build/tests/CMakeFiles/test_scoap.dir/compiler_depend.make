# Empty compiler generated dependencies file for test_scoap.
# This may be replaced when dependencies are built.
