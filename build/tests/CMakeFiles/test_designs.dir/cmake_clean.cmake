file(REMOVE_RECURSE
  "CMakeFiles/test_designs.dir/test_designs.cpp.o"
  "CMakeFiles/test_designs.dir/test_designs.cpp.o.d"
  "test_designs"
  "test_designs.pdb"
  "test_designs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_designs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
