# Empty dependencies file for test_elab.
# This may be replaced when dependencies are built.
