file(REMOVE_RECURSE
  "CMakeFiles/test_elab.dir/test_elab.cpp.o"
  "CMakeFiles/test_elab.dir/test_elab.cpp.o.d"
  "test_elab"
  "test_elab.pdb"
  "test_elab[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_elab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
