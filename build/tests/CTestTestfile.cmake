# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_rtl[1]_include.cmake")
include("/root/repo/build/tests/test_synth[1]_include.cmake")
include("/root/repo/build/tests/test_elab[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_designs[1]_include.cmake")
include("/root/repo/build/tests/test_atpg[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_property_synth[1]_include.cmake")
include("/root/repo/build/tests/test_property_optimizer[1]_include.cmake")
include("/root/repo/build/tests/test_property_atpg[1]_include.cmake")
include("/root/repo/build/tests/test_writer_roundtrip[1]_include.cmake")
include("/root/repo/build/tests/test_scoap[1]_include.cmake")
include("/root/repo/build/tests/test_translate[1]_include.cmake")
include("/root/repo/build/tests/test_equiv_bist[1]_include.cmake")
include("/root/repo/build/tests/test_fir[1]_include.cmake")
include("/root/repo/build/tests/test_vectors[1]_include.cmake")
