# Empty dependencies file for bench_table3_composed_extraction.
# This may be replaced when dependencies are built.
