file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_atpg_flat.dir/bench_table5_atpg_flat.cpp.o"
  "CMakeFiles/bench_table5_atpg_flat.dir/bench_table5_atpg_flat.cpp.o.d"
  "bench_table5_atpg_flat"
  "bench_table5_atpg_flat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_atpg_flat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
