# Empty compiler generated dependencies file for bench_all_tables.
# This may be replaced when dependencies are built.
