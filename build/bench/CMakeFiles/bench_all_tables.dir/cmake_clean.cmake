file(REMOVE_RECURSE
  "CMakeFiles/bench_all_tables.dir/bench_all_tables.cpp.o"
  "CMakeFiles/bench_all_tables.dir/bench_all_tables.cpp.o.d"
  "bench_all_tables"
  "bench_all_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_all_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
