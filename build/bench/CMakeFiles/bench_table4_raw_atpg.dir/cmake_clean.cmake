file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_raw_atpg.dir/bench_table4_raw_atpg.cpp.o"
  "CMakeFiles/bench_table4_raw_atpg.dir/bench_table4_raw_atpg.cpp.o.d"
  "bench_table4_raw_atpg"
  "bench_table4_raw_atpg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_raw_atpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
