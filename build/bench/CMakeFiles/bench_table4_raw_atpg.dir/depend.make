# Empty dependencies file for bench_table4_raw_atpg.
# This may be replaced when dependencies are built.
