file(REMOVE_RECURSE
  "CMakeFiles/factor_bench_harness.dir/harness.cpp.o"
  "CMakeFiles/factor_bench_harness.dir/harness.cpp.o.d"
  "libfactor_bench_harness.a"
  "libfactor_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/factor_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
