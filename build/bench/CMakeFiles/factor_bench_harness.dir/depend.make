# Empty dependencies file for factor_bench_harness.
# This may be replaced when dependencies are built.
