file(REMOVE_RECURSE
  "libfactor_bench_harness.a"
)
