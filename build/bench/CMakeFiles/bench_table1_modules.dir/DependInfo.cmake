
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table1_modules.cpp" "bench/CMakeFiles/bench_table1_modules.dir/bench_table1_modules.cpp.o" "gcc" "bench/CMakeFiles/bench_table1_modules.dir/bench_table1_modules.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/factor_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/designs/CMakeFiles/factor_designs.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/factor_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/factor_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/atpg/CMakeFiles/factor_atpg.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/factor_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/elab/CMakeFiles/factor_elab.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/factor_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/factor_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
