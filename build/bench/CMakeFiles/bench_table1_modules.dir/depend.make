# Empty dependencies file for bench_table1_modules.
# This may be replaced when dependencies are built.
