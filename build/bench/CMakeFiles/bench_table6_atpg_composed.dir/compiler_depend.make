# Empty compiler generated dependencies file for bench_table6_atpg_composed.
# This may be replaced when dependencies are built.
