file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_atpg_composed.dir/bench_table6_atpg_composed.cpp.o"
  "CMakeFiles/bench_table6_atpg_composed.dir/bench_table6_atpg_composed.cpp.o.d"
  "bench_table6_atpg_composed"
  "bench_table6_atpg_composed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_atpg_composed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
