#include "util/bitvec.hpp"

#include "util/diagnostics.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace factor::util {

BitVec::BitVec(uint32_t width, uint64_t value) {
    if (width == 0 || width > kMaxWidth) {
        throw FactorError("BitVec width out of range: " + std::to_string(width));
    }
    width_ = width;
    value_ = value & mask(width);
}

bool BitVec::parse_verilog(const std::string& text, BitVec& out) {
    std::string s;
    s.reserve(text.size());
    for (char c : text) {
        if (c != '_') s.push_back(c);
    }
    if (s.empty()) return false;

    auto tick = s.find('\'');
    uint32_t width = 32;
    int base = 10;
    std::string digits;
    if (tick == std::string::npos) {
        digits = s;
    } else {
        if (tick > 0) {
            try {
                width = static_cast<uint32_t>(std::stoul(s.substr(0, tick)));
            } catch (...) {
                return false;
            }
        }
        if (tick + 1 >= s.size()) return false;
        char b = static_cast<char>(std::tolower(static_cast<unsigned char>(s[tick + 1])));
        switch (b) {
        case 'b': base = 2; break;
        case 'o': base = 8; break;
        case 'd': base = 10; break;
        case 'h': base = 16; break;
        default: return false;
        }
        digits = s.substr(tick + 2);
    }
    if (digits.empty() || width == 0 || width > kMaxWidth) return false;

    uint64_t value = 0;
    for (char c : digits) {
        int d;
        char lc = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        if (lc >= '0' && lc <= '9') {
            d = lc - '0';
        } else if (lc >= 'a' && lc <= 'f') {
            d = 10 + (lc - 'a');
        } else {
            return false;
        }
        if (d >= base) return false;
        value = value * static_cast<uint64_t>(base) + static_cast<uint64_t>(d);
    }
    out = BitVec(width, value);
    return true;
}

BitVec BitVec::resized(uint32_t width) const { return BitVec(width, value_); }

BitVec BitVec::slice(uint32_t hi, uint32_t lo) const {
    if (hi < lo || hi >= width_) {
        throw FactorError("BitVec::slice out of range");
    }
    return BitVec(hi - lo + 1, value_ >> lo);
}

BitVec BitVec::operator&(const BitVec& o) const {
    uint32_t w = std::max(width_, o.width_);
    return BitVec(w, value_ & o.value_);
}
BitVec BitVec::operator|(const BitVec& o) const {
    uint32_t w = std::max(width_, o.width_);
    return BitVec(w, value_ | o.value_);
}
BitVec BitVec::operator^(const BitVec& o) const {
    uint32_t w = std::max(width_, o.width_);
    return BitVec(w, value_ ^ o.value_);
}
BitVec BitVec::operator~() const { return BitVec(width_, ~value_); }
BitVec BitVec::operator+(const BitVec& o) const {
    uint32_t w = std::max(width_, o.width_);
    return BitVec(w, value_ + o.value_);
}
BitVec BitVec::operator-(const BitVec& o) const {
    uint32_t w = std::max(width_, o.width_);
    return BitVec(w, value_ - o.value_);
}
BitVec BitVec::operator*(const BitVec& o) const {
    uint32_t w = std::max(width_, o.width_);
    return BitVec(w, value_ * o.value_);
}
BitVec BitVec::shl(uint32_t n) const {
    return BitVec(width_, n >= 64 ? 0 : value_ << n);
}
BitVec BitVec::shr(uint32_t n) const {
    return BitVec(width_, n >= 64 ? 0 : value_ >> n);
}

BitVec BitVec::eq(const BitVec& o) const {
    return BitVec(1, value_ == o.value_ ? 1 : 0);
}
BitVec BitVec::lt(const BitVec& o) const {
    return BitVec(1, value_ < o.value_ ? 1 : 0);
}
BitVec BitVec::reduce_and() const {
    return BitVec(1, value_ == mask(width_) ? 1 : 0);
}
BitVec BitVec::reduce_or() const { return BitVec(1, value_ != 0 ? 1 : 0); }
BitVec BitVec::reduce_xor() const {
    return BitVec(1, static_cast<uint64_t>(__builtin_parityll(value_)));
}

BitVec BitVec::concat(const BitVec& o) const {
    uint32_t w = width_ + o.width_;
    if (w > kMaxWidth) throw FactorError("BitVec::concat exceeds 64 bits");
    return BitVec(w, (value_ << o.width_) | o.value_);
}

BitVec BitVec::replicate(uint32_t n) const {
    if (n == 0 || width_ * n > kMaxWidth) {
        throw FactorError("BitVec::replicate exceeds 64 bits");
    }
    BitVec out(width_ * n, 0);
    for (uint32_t i = 0; i < n; ++i) {
        out = BitVec(out.width_, (out.value_ << width_) | value_);
    }
    return out;
}

std::string BitVec::to_verilog() const {
    std::ostringstream os;
    os << width_ << "'h" << std::hex << value_;
    return os.str();
}

} // namespace factor::util
