#include "util/sysinfo.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#ifdef __linux__
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace factor::util {

uint64_t peak_rss_bytes() {
#ifdef __linux__
    std::FILE* f = std::fopen("/proc/self/status", "r");
    if (f == nullptr) return 0;
    uint64_t kib = 0;
    char line[256];
    while (std::fgets(line, sizeof(line), f) != nullptr) {
        // "VmHWM:      12345 kB" — the high-water mark of VmRSS.
        if (std::strncmp(line, "VmHWM:", 6) == 0) {
            kib = std::strtoull(line + 6, nullptr, 10);
            break;
        }
    }
    std::fclose(f);
    return kib * 1024;
#else
    return 0;
#endif
}

bool path_writable(const std::string& path) {
    if (path.empty()) return false;
#ifdef __linux__
    struct stat st{};
    if (::stat(path.c_str(), &st) == 0) {
        // Existing target: must be an overwritable regular file.
        if (S_ISDIR(st.st_mode)) return false;
        return ::access(path.c_str(), W_OK) == 0;
    }
    // New file: parent must exist and be writable + searchable.
    auto slash = path.find_last_of('/');
    std::string parent = slash == std::string::npos ? std::string(".")
                         : slash == 0              ? std::string("/")
                                                   : path.substr(0, slash);
    if (::stat(parent.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
        return false;
    }
    return ::access(parent.c_str(), W_OK | X_OK) == 0;
#else
    // No portable pre-check; let the write itself fail late.
    return true;
#endif
}

} // namespace factor::util
