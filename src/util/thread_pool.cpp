#include "util/thread_pool.hpp"

#include <chrono>
#include <cstdlib>

namespace factor::util {

namespace {

std::atomic<size_t> g_default_jobs{0};

// Identity of the pool task currently running on this thread, so nested
// for_each() calls execute inline on the right executor instead of
// deadlocking on their own pool.
thread_local ThreadPool* tl_pool = nullptr;
thread_local size_t tl_executor = 0;

struct TlScope {
    ThreadPool* prev_pool;
    size_t prev_executor;
    TlScope(ThreadPool* pool, size_t executor)
        : prev_pool(tl_pool), prev_executor(tl_executor) {
        tl_pool = pool;
        tl_executor = executor;
    }
    ~TlScope() {
        tl_pool = prev_pool;
        tl_executor = prev_executor;
    }
};

} // namespace

size_t ThreadPool::default_jobs() {
    size_t j = g_default_jobs.load();
    if (j > 0) return j;
    const char* env = std::getenv("FACTOR_JOBS");
    if (env != nullptr && *env != '\0') {
        char* end = nullptr;
        unsigned long long v = std::strtoull(env, &end, 10);
        if (end != nullptr && *end == '\0' && v > 0) {
            return static_cast<size_t>(v);
        }
    }
    unsigned hc = std::thread::hardware_concurrency();
    return hc > 0 ? hc : 1;
}

void ThreadPool::set_default_jobs(size_t jobs) { g_default_jobs.store(jobs); }

ThreadPool::ThreadPool(size_t executors) {
    size_t k = executors > 0 ? executors : default_jobs();
    deques_.reserve(k);
    for (size_t i = 0; i < k; ++i) deques_.push_back(std::make_unique<Deque>());
    threads_.reserve(k - 1);
    for (size_t id = 1; id < k; ++id) {
        threads_.emplace_back([this, id] { worker_loop(id); });
    }
}

ThreadPool::~ThreadPool() {
    wait_idle();
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    cv_wake_.notify_all();
    for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
    size_t d = rr_.fetch_add(1) % deques_.size();
    {
        std::lock_guard<std::mutex> lk(deques_[d]->mu);
        deques_[d]->q.push_back(std::move(task));
    }
    {
        std::lock_guard<std::mutex> lk(mu_);
        ++pending_;
    }
    cv_wake_.notify_one();
}

std::function<void()> ThreadPool::take(size_t id) {
    {
        Deque& own = *deques_[id];
        std::lock_guard<std::mutex> lk(own.mu);
        if (!own.q.empty()) {
            std::function<void()> t = std::move(own.q.back());
            own.q.pop_back();
            return t;
        }
    }
    for (size_t k = 1; k < deques_.size(); ++k) {
        Deque& victim = *deques_[(id + k) % deques_.size()];
        std::lock_guard<std::mutex> lk(victim.mu);
        if (!victim.q.empty()) {
            std::function<void()> t = std::move(victim.q.front());
            victim.q.pop_front();
            steals_.fetch_add(1);
            return t;
        }
    }
    return {};
}

void ThreadPool::run_task(std::unique_lock<std::mutex>& lk, size_t id,
                          std::function<void()> task) {
    // Called with mu_ held and pending_ already counting this task.
    --pending_;
    ++running_;
    lk.unlock();
    tasks_.fetch_add(1);
    {
        TlScope scope(this, id);
        task();
    }
    lk.lock();
    --running_;
    if (pending_ == 0 && running_ == 0) cv_done_.notify_all();
}

void ThreadPool::worker_loop(size_t id) {
    using clock = std::chrono::steady_clock;
    std::unique_lock<std::mutex> lk(mu_);
    while (true) {
        if (!stop_ && pending_ == 0) {
            auto park = clock::now();
            cv_wake_.wait(lk, [&] { return stop_ || pending_ > 0; });
            idle_ns_.fetch_add(static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    clock::now() - park)
                    .count()));
        }
        if (stop_ && pending_ == 0) return;
        std::function<void()> task = take(id);
        if (!task) {
            // pending_ counted a task another executor took first; let the
            // predicate re-check rather than spin.
            if (stop_) return;
            cv_wake_.wait_for(lk, std::chrono::milliseconds(1));
            continue;
        }
        run_task(lk, id, task);
    }
}

bool ThreadPool::help_run_one() {
    std::unique_lock<std::mutex> lk(mu_);
    if (pending_ == 0) return false;
    std::function<void()> task = take(0);
    if (!task) return false;
    run_task(lk, 0, task);
    return true;
}

void ThreadPool::wait_idle() {
    while (help_run_one()) {}
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] { return pending_ == 0 && running_ == 0; });
}

void ThreadPool::for_each(
    size_t n, const std::function<void(size_t, size_t)>& fn) {
    if (n == 0) return;
    if (deques_.size() == 1 || n == 1 || tl_pool == this) {
        // Serial pool, trivial range, or nested call from inside a pool
        // task: run inline on the current executor, in index order.
        size_t ex = tl_pool == this ? tl_executor : 0;
        for (size_t i = 0; i < n; ++i) fn(ex, i);
        return;
    }

    // Over-decompose relative to the executor count so uneven chunks
    // rebalance by stealing.
    size_t chunks = std::min(n, deques_.size() * 4);
    size_t per = n / chunks;
    size_t extra = n % chunks; // first `extra` chunks get one more index

    struct Latch {
        std::mutex mu;
        std::condition_variable cv;
        size_t left;
    } latch{{}, {}, chunks};

    size_t begin = 0;
    for (size_t c = 0; c < chunks; ++c) {
        size_t end = begin + per + (c < extra ? 1 : 0);
        submit([&fn, &latch, begin, end] {
            for (size_t i = begin; i < end; ++i) fn(tl_executor, i);
            // Notify under the lock: the caller destroys the latch as soon
            // as it observes left == 0, which it can only do after this
            // critical section ends.
            std::lock_guard<std::mutex> lk(latch.mu);
            if (--latch.left == 0) latch.cv.notify_all();
        });
        begin = end;
    }

    // Participate as executor 0, then park until the last chunk lands.
    while (true) {
        {
            std::lock_guard<std::mutex> lk(latch.mu);
            if (latch.left == 0) return;
        }
        if (!help_run_one()) {
            std::unique_lock<std::mutex> lk(latch.mu);
            latch.cv.wait(lk, [&] { return latch.left == 0; });
            return;
        }
    }
}

ThreadPool::Stats ThreadPool::stats() const {
    Stats s;
    s.tasks = tasks_.load();
    s.steals = steals_.load();
    s.idle_ns = idle_ns_.load();
    return s;
}

} // namespace factor::util
