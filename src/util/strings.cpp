#include "util/strings.hpp"

#include <cctype>
#include <sstream>

namespace factor::util {

std::string trim(std::string_view s) {
    size_t b = 0;
    size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
    return std::string(s.substr(b, e - b));
}

std::vector<std::string> split(std::string_view s, char sep) {
    std::vector<std::string> out;
    size_t start = 0;
    for (size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == sep) {
            out.emplace_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i != 0) out += sep;
        out += parts[i];
    }
    return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
    return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
    return s.size() >= suffix.size() &&
           s.substr(s.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view s) {
    std::string out(s);
    for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool is_identifier(std::string_view s) {
    if (s.empty()) return false;
    auto head = static_cast<unsigned char>(s[0]);
    if (!std::isalpha(head) && s[0] != '_') return false;
    for (char c : s) {
        auto u = static_cast<unsigned char>(c);
        if (!std::isalnum(u) && c != '_' && c != '$') return false;
    }
    return true;
}

std::string fixed(double v, int precision) {
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(precision);
    os << v;
    return os.str();
}

} // namespace factor::util
