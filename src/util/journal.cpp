#include "util/journal.hpp"

#include "util/crc32.hpp"

#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

namespace factor::util {

namespace {

// Minimal JSON string escaping for record fields. Journal values are
// schema-controlled (identifiers, hex digests, 0/1/X vector strings), so
// only the mandatory escapes matter; anything exotic goes through \u.
std::string escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

/// Parse a JSON string literal starting at s[i] == '"'. On success returns
/// true, stores the unescaped value and advances i past the closing quote.
bool parse_string(std::string_view s, size_t& i, std::string& out) {
    if (i >= s.size() || s[i] != '"') return false;
    ++i;
    out.clear();
    while (i < s.size()) {
        char c = s[i];
        if (c == '"') {
            ++i;
            return true;
        }
        if (c == '\\') {
            if (i + 1 >= s.size()) return false;
            char e = s[i + 1];
            i += 2;
            switch (e) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'n': out += '\n'; break;
            case 't': out += '\t'; break;
            case 'r': out += '\r'; break;
            case 'u': {
                if (i + 4 > s.size()) return false;
                unsigned v = 0;
                for (int k = 0; k < 4; ++k) {
                    char h = s[i + k];
                    v <<= 4;
                    if (h >= '0' && h <= '9') {
                        v |= static_cast<unsigned>(h - '0');
                    } else if (h >= 'a' && h <= 'f') {
                        v |= static_cast<unsigned>(h - 'a' + 10);
                    } else if (h >= 'A' && h <= 'F') {
                        v |= static_cast<unsigned>(h - 'A' + 10);
                    } else {
                        return false;
                    }
                }
                if (v > 0xFF) return false; // journal never emits these
                i += 4;
                out += static_cast<char>(v);
                break;
            }
            default: return false;
            }
            continue;
        }
        out += c;
        ++i;
    }
    return false; // unterminated
}

void skip_ws(std::string_view s, size_t& i) {
    while (i < s.size() &&
           (s[i] == ' ' || s[i] == '\t' || s[i] == '\r' || s[i] == '\n')) {
        ++i;
    }
}

} // namespace

JournalRecord& JournalRecord::set_u64(std::string key, uint64_t v) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRIu64, v);
    return set(std::move(key), buf);
}

JournalRecord& JournalRecord::set_f64(std::string key, double v) {
    if (!std::isfinite(v)) v = 0.0;
    // Shortest representation that parses back to exactly `v`: restored
    // state must be bit-identical to what the writer computed, or resumed
    // runs drift from uninterrupted ones in the low mantissa bits.
    char buf[40];
    for (int prec = 15; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof buf, "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v) break;
    }
    return set(std::move(key), buf);
}

const std::string* JournalRecord::get(std::string_view key) const {
    for (const auto& [k, v] : fields) {
        if (k == key) return &v;
    }
    return nullptr;
}

uint64_t JournalRecord::get_u64(std::string_view key, uint64_t fallback) const {
    const std::string* v = get(key);
    if (v == nullptr) return fallback;
    errno = 0;
    char* end = nullptr;
    uint64_t out = std::strtoull(v->c_str(), &end, 10);
    if (end == v->c_str() || *end != '\0' || errno == ERANGE) return fallback;
    return out;
}

double JournalRecord::get_f64(std::string_view key, double fallback) const {
    const std::string* v = get(key);
    if (v == nullptr) return fallback;
    char* end = nullptr;
    double out = std::strtod(v->c_str(), &end);
    if (end == v->c_str() || *end != '\0') return fallback;
    return out;
}

std::string journal_serialize(const JournalRecord& rec) {
    std::string out = "{";
    bool first = true;
    for (const auto& [k, v] : rec.fields) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += escape(k);
        out += "\":";
        // Values that look like plain JSON numbers are written bare so
        // set_u64/set_f64 round-trip; everything else is a string.
        bool numeric = !v.empty();
        for (size_t i = 0; i < v.size() && numeric; ++i) {
            char c = v[i];
            numeric = (c >= '0' && c <= '9') || c == '-' || c == '+' ||
                      c == '.' || c == 'e' || c == 'E';
        }
        if (numeric && (v[0] == '-' || (v[0] >= '0' && v[0] <= '9'))) {
            out += v;
        } else {
            out += '"';
            out += escape(v);
            out += '"';
        }
    }
    out += '}';
    return out;
}

bool journal_parse(std::string_view json, JournalRecord& out) {
    out.fields.clear();
    size_t i = 0;
    skip_ws(json, i);
    if (i >= json.size() || json[i] != '{') return false;
    ++i;
    skip_ws(json, i);
    if (i < json.size() && json[i] == '}') {
        ++i;
        skip_ws(json, i);
        return i == json.size();
    }
    while (true) {
        std::string key;
        if (!parse_string(json, i, key)) return false;
        skip_ws(json, i);
        if (i >= json.size() || json[i] != ':') return false;
        ++i;
        skip_ws(json, i);
        std::string value;
        if (i < json.size() && json[i] == '"') {
            if (!parse_string(json, i, value)) return false;
        } else {
            // Bare token: number / true / false / null, captured verbatim.
            size_t start = i;
            while (i < json.size() && json[i] != ',' && json[i] != '}' &&
                   json[i] != ' ' && json[i] != '\t') {
                ++i;
            }
            if (i == start) return false;
            value.assign(json.substr(start, i - start));
        }
        out.fields.emplace_back(std::move(key), std::move(value));
        skip_ws(json, i);
        if (i >= json.size()) return false;
        if (json[i] == ',') {
            ++i;
            skip_ws(json, i);
            continue;
        }
        if (json[i] == '}') {
            ++i;
            skip_ws(json, i);
            return i == json.size();
        }
        return false;
    }
}

// ------------------------------------------------------------------ writer

void JournalWriter::fail(std::string why) {
    failed_ = true;
    if (error_.empty()) error_ = std::move(why);
}

bool JournalWriter::open(const std::string& path) {
    close();
    failed_ = false;
    error_.clear();
    records_ = 0;
    path_ = path;
    temp_path_.clear();
    out_.open(path, std::ios::out | std::ios::trunc);
    if (!out_) {
        fail("cannot open '" + path + "' for writing");
        return false;
    }
    return true;
}

bool JournalWriter::open_temp(const std::string& path) {
    close();
    failed_ = false;
    error_.clear();
    records_ = 0;
    path_ = path;
    temp_path_ = path + ".tmp";
    out_.open(temp_path_, std::ios::out | std::ios::trunc);
    if (!out_) {
        fail("cannot open '" + temp_path_ + "' for writing");
        return false;
    }
    return true;
}

bool JournalWriter::publish() {
    if (failed_ || temp_path_.empty()) return !failed_ && temp_path_.empty();
    out_.flush();
    if (!out_) {
        fail("flush failed before publishing '" + path_ + "'");
        return false;
    }
    // Push the flushed bytes to stable storage before the rename makes
    // them the journal: fsync through a second descriptor (ofstream does
    // not expose its own), which flushes the same inode.
    int fd = ::open(temp_path_.c_str(), O_RDONLY);
    if (fd >= 0) {
        (void)::fsync(fd);
        ::close(fd);
    }
    // POSIX rename is atomic and does not disturb the open descriptor: the
    // stream keeps appending to the same inode under its new name.
    if (std::rename(temp_path_.c_str(), path_.c_str()) != 0) {
        fail("cannot publish '" + temp_path_ + "' over '" + path_ + "'");
        return false;
    }
    fsync_parent_dir(path_);
    temp_path_.clear();
    return true;
}

std::string journal_frame(const JournalRecord& rec) {
    std::string json = journal_serialize(rec);
    char frame[10];
    std::snprintf(frame, sizeof frame, "%08x ", crc32(json));
    return frame + json;
}

bool JournalWriter::append(const JournalRecord& rec) {
    if (failed_ || !out_.is_open()) {
        fail("journal is not open");
        return false;
    }
    out_ << journal_frame(rec) << '\n';
    out_.flush();
    if (!out_) {
        fail("short write to '" +
             (temp_path_.empty() ? path_ : temp_path_) + "'");
        return false;
    }
    ++records_;
    return true;
}

void JournalWriter::close() {
    if (out_.is_open()) out_.close();
    temp_path_.clear();
}

// ------------------------------------------------------------------ loader

JournalLoad journal_load(const std::string& path) {
    JournalLoad load;
    std::ifstream in(path, std::ios::in | std::ios::binary);
    if (!in) {
        load.error = "cannot open '" + path + "'";
        return load;
    }
    load.ok = true;
    std::string line;
    bool damaged = false;
    while (std::getline(in, line)) {
        if (damaged) {
            ++load.dropped_lines;
            continue;
        }
        // Frame: 8 hex digits, one space, the JSON payload.
        bool good = line.size() > 9 && line[8] == ' ';
        uint32_t expect = 0;
        if (good) {
            for (int i = 0; i < 8 && good; ++i) {
                char c = line[static_cast<size_t>(i)];
                expect <<= 4;
                if (c >= '0' && c <= '9') {
                    expect |= static_cast<uint32_t>(c - '0');
                } else if (c >= 'a' && c <= 'f') {
                    expect |= static_cast<uint32_t>(c - 'a' + 10);
                } else {
                    good = false;
                }
            }
        }
        std::string_view json;
        if (good) {
            json = std::string_view(line).substr(9);
            good = crc32(json) == expect;
        }
        JournalRecord rec;
        if (good) good = journal_parse(json, rec);
        if (!good) {
            // First damage: drop this line and everything after it.
            damaged = true;
            ++load.dropped_lines;
            continue;
        }
        load.records.push_back(std::move(rec));
    }
    return load;
}

// ------------------------------------------------------------------ files

void fsync_parent_dir(const std::string& path) {
    size_t slash = path.find_last_of('/');
    std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
    if (dir.empty()) dir = "/";
    int fd = ::open(dir.c_str(), O_RDONLY);
    if (fd < 0) return;
    (void)::fsync(fd);
    ::close(fd);
}

bool atomic_publish(const std::string& path, std::string_view content) {
    char suffix[32];
    std::snprintf(suffix, sizeof suffix, ".tmp.%ld",
                  static_cast<long>(::getpid()));
    const std::string tmp = path + suffix;
    {
        std::ofstream out(tmp, std::ios::out | std::ios::trunc |
                                   std::ios::binary);
        if (!out) return false;
        out.write(content.data(),
                  static_cast<std::streamsize>(content.size()));
        out.flush();
        if (!out) {
            out.close();
            std::remove(tmp.c_str());
            return false;
        }
    }
    // Durability half: the rename below orders against these fsyncs, so
    // after a power cut `path` is either the old complete file or the new
    // complete file — never empty, never torn.
    int fd = ::open(tmp.c_str(), O_RDONLY);
    if (fd >= 0) {
        (void)::fsync(fd);
        ::close(fd);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    fsync_parent_dir(path);
    return true;
}

} // namespace factor::util
