// Small process/system introspection helpers for observability outputs.
#pragma once

#include <cstdint>
#include <string>

namespace factor::util {

/// Peak resident-set size of this process in bytes (VmHWM from
/// /proc/self/status). Returns 0 on platforms without procfs or when the
/// field is unavailable — callers report the gauge as-is, so "0" reads as
/// "not measured" rather than an error.
[[nodiscard]] uint64_t peak_rss_bytes();

/// True when `path` names a location we could plausibly create or
/// overwrite a regular file at: it is not a directory, and its parent
/// directory exists and is writable + searchable. Used to refuse
/// --stats-json/--trace/--profile/--progress destinations up front instead
/// of silently losing the document at exit.
[[nodiscard]] bool path_writable(const std::string& path);

} // namespace factor::util
