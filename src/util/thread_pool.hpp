// Fixed-size work-stealing thread pool shared by the parallel phases of
// the pipeline (fault simulation, deterministic PODEM).
//
// Topology: a pool with E executors owns E deques and spawns E-1 worker
// threads; the thread that constructed the pool is executor 0 and
// participates whenever it calls wait_idle() or for_each(). submit()
// distributes tasks round-robin across the deques; an executor pops its
// own deque from the back (LIFO, cache-warm) and steals from other deques
// from the front (FIFO, oldest first). With one executor everything runs
// inline on the caller — a pool of size 1 is the serial engine.
//
// Tasks must not throw: an escaping exception from a worker thread would
// terminate the process. Wrap fallible work in its own try/catch and
// report through the task's own channels.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace factor::util {

class ThreadPool {
  public:
    /// `executors` == 0 picks default_jobs(). The pool spawns
    /// executors - 1 threads; the constructing thread is executor 0.
    explicit ThreadPool(size_t executors = 0);
    /// Drains every queued task (the destroying thread helps), then joins.
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] size_t executors() const { return deques_.size(); }

    /// Queue a task. Thread-safe; callable from inside pool tasks.
    void submit(std::function<void()> task);

    /// Run queued tasks on the calling thread (as executor 0) until the
    /// pool is idle: no task queued, none executing.
    void wait_idle();

    /// Call `fn(executor, index)` once for every index in [0, n).
    /// `executor` is the id (< executors()) of the executor running that
    /// index — the key for per-executor scratch state. Blocks until all
    /// indices ran; the caller participates. Runs inline (in index order)
    /// when the pool has one executor or when called from inside a pool
    /// task — nested parallelism does not oversubscribe.
    void for_each(size_t n,
                  const std::function<void(size_t executor, size_t index)>& fn);

    struct Stats {
        uint64_t tasks = 0;   // tasks executed
        uint64_t steals = 0;  // tasks taken from another executor's deque
        uint64_t idle_ns = 0; // summed worker wall-time spent parked
    };
    [[nodiscard]] Stats stats() const;

    /// Default executor count: set_default_jobs() override if set, else
    /// the FACTOR_JOBS environment variable, else hardware_concurrency
    /// (minimum 1).
    [[nodiscard]] static size_t default_jobs();
    /// Process-wide override (the CLI --jobs flag). 0 clears it.
    static void set_default_jobs(size_t jobs);

  private:
    struct Deque {
        std::mutex mu;
        std::deque<std::function<void()>> q;
    };

    void worker_loop(size_t id);
    /// Pop own deque (back) or steal (front); empty function when no work.
    [[nodiscard]] std::function<void()> take(size_t id);
    /// Caller-side helper: take and run one task as executor 0.
    bool help_run_one();
    void run_task(std::unique_lock<std::mutex>& lk, size_t id,
                  std::function<void()> task);

    std::vector<std::unique_ptr<Deque>> deques_;
    std::vector<std::thread> threads_;

    std::mutex mu_; // guards pending_/running_/stop_
    std::condition_variable cv_wake_; // task queued or stopping
    std::condition_variable cv_done_; // pool became idle
    size_t pending_ = 0; // queued, not yet taken
    size_t running_ = 0; // taken, executing
    bool stop_ = false;

    std::atomic<uint64_t> rr_{0}; // round-robin submit cursor
    std::atomic<uint64_t> tasks_{0};
    std::atomic<uint64_t> steals_{0};
    std::atomic<uint64_t> idle_ns_{0};
};

} // namespace factor::util
