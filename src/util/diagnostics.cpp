#include "util/diagnostics.hpp"

#include <sstream>

namespace factor::util {

std::string SourceLoc::str() const {
    std::ostringstream os;
    os << (file.empty() ? "<input>" : file);
    if (valid()) {
        os << ":" << line << ":" << col;
    }
    return os.str();
}

const char* to_string(Severity s) {
    switch (s) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
    }
    return "unknown";
}

std::string Diagnostic::str() const {
    std::ostringstream os;
    os << loc.str() << ": " << to_string(severity) << ": " << message;
    return os.str();
}

void DiagEngine::report(Severity sev, SourceLoc loc, std::string message) {
    if (sev == Severity::Error) {
        ++error_count_;
    }
    if (diags_.size() >= max_diags_) {
        ++suppressed_;
        return;
    }
    diags_.push_back(Diagnostic{sev, std::move(loc), std::move(message)});
}

std::string DiagEngine::dump() const {
    std::ostringstream os;
    for (const auto& d : diags_) {
        os << d.str() << "\n";
    }
    if (suppressed_ > 0) {
        os << "note: " << suppressed_
           << " further diagnostics suppressed (limit " << max_diags_
           << ")\n";
    }
    return os.str();
}

void DiagEngine::clear() {
    diags_.clear();
    error_count_ = 0;
    suppressed_ = 0;
}

} // namespace factor::util
