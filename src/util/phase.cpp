#include "util/phase.hpp"

#include <sstream>

namespace factor::util {

namespace {

/// Minimal JSON string escaping (util cannot depend on obs).
std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

const char* to_string(PhaseStatus s) {
    switch (s) {
    case PhaseStatus::Ok: return "ok";
    case PhaseStatus::Degraded: return "degraded";
    case PhaseStatus::BudgetExhausted: return "budget_exhausted";
    case PhaseStatus::Failed: return "failed";
    }
    return "unknown";
}

void PhaseLog::record(std::string phase, PhaseStatus status,
                      std::string detail, double seconds) {
    outcomes_.push_back(PhaseOutcome{std::move(phase), status,
                                     std::move(detail), seconds});
}

PhaseStatus PhaseLog::overall() const {
    PhaseStatus s = PhaseStatus::Ok;
    for (const auto& o : outcomes_) s = worst(s, o.status);
    return s;
}

const PhaseOutcome* PhaseLog::find(const std::string& phase) const {
    for (const auto& o : outcomes_) {
        if (o.phase == phase) return &o;
    }
    return nullptr;
}

std::string PhaseLog::to_json() const {
    std::ostringstream os;
    os << "[";
    for (size_t i = 0; i < outcomes_.size(); ++i) {
        const auto& o = outcomes_[i];
        if (i != 0) os << ",";
        os << "{\"phase\":\"" << escape(o.phase) << "\",\"status\":\""
           << to_string(o.status) << "\",\"seconds\":";
        // Fixed formatting keeps the document stable across locales.
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.6f", o.seconds);
        os << buf;
        if (!o.detail.empty()) {
            os << ",\"detail\":\"" << escape(o.detail) << "\"";
        }
        os << "}";
    }
    os << "]";
    return os.str();
}

} // namespace factor::util
