#include "util/crc32.hpp"

#include <array>
#include <cstdio>
#include <cstring>

namespace factor::util {

namespace {

std::array<uint32_t, 256> make_table() {
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int k = 0; k < 8; ++k) {
            c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        }
        table[i] = c;
    }
    return table;
}

} // namespace

uint32_t crc32(const void* data, size_t len, uint32_t seed) {
    static const std::array<uint32_t, 256> table = make_table();
    uint32_t c = seed ^ 0xFFFFFFFFu;
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < len; ++i) {
        c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    }
    return c ^ 0xFFFFFFFFu;
}

uint32_t crc32(std::string_view s) { return crc32(s.data(), s.size()); }

Fnv64& Fnv64::mix(uint64_t v) {
    unsigned char bytes[8];
    for (int i = 0; i < 8; ++i) {
        bytes[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xFF);
    }
    return mix(bytes, sizeof bytes);
}

Fnv64& Fnv64::mix(double v) {
    // Bit pattern, not value: fingerprints want "same configuration",
    // and every platform we build on is IEEE 754.
    uint64_t bits = 0;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    return mix(bits);
}

std::string Fnv64::hex() const {
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(h_));
    return std::string(buf);
}

} // namespace factor::util
