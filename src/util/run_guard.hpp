// RunGuard: the pipeline-wide resource guard.
//
// Every long-running phase of the flow (elaboration, constraint extraction,
// synthesis/optimization, ATPG) checks one shared guard cooperatively and
// stops with a structured partial result instead of hanging or throwing.
// A guard combines four independent budgets, any of which may be unlimited:
//
//   * wall clock  — seconds since the guard was created;
//   * work quota  — abstract cooperative work units, consumed by tick():
//                   one query expansion (extraction), one wired instance
//                   (synthesis), one optimizer pass, one PODEM call (ATPG);
//   * gate cap    — total netlist gates, reported by the synthesizer;
//   * node cap    — elaborated instance nodes, reported by the elaborator.
//
// On top of the per-guard budgets there is a process-wide interrupt flag
// (set from the SIGINT handler via request_interrupt()): every guard,
// including an otherwise unlimited one, reports stopped() once the flag is
// up, so a Ctrl-C still drains through the same partial-result paths as a
// budget overrun. The first stop reason is latched and never changes.
//
// Thread safety: one guard may be shared by every worker of a parallel
// phase. tick()/note_*/stopped()/trip() are safe to call concurrently —
// the work counter is atomic and the stop reason is latched with a
// compare-and-swap, so exactly one reason ever wins and all threads agree
// on it.
#pragma once

#include "util/stopwatch.hpp"

#include <atomic>
#include <cstdint>

namespace factor::util {

/// Why a guard stopped a run (None = still running).
enum class GuardStop : uint8_t {
    None,
    WallClock,
    WorkQuota,
    GateCap,
    NodeCap,
    Interrupt,
};

[[nodiscard]] const char* to_string(GuardStop s);

/// Budget limits; 0 (or <= 0 for seconds) means "unlimited".
struct GuardLimits {
    double wall_seconds = 0.0;
    uint64_t work_quota = 0;
    uint64_t max_gates = 0;
    uint64_t max_nodes = 0;
};

class RunGuard {
  public:
    /// Unlimited guard: only the process interrupt flag can stop it.
    RunGuard() = default;
    explicit RunGuard(GuardLimits limits) : limits_(limits) {}
    /// Wall-clock-only guard (the old ATPG Deadline semantics).
    explicit RunGuard(double wall_seconds)
        : RunGuard(GuardLimits{wall_seconds, 0, 0, 0}) {}

    /// Consume `work` quota units and re-check every budget.
    /// Returns true while the run may continue.
    bool tick(uint64_t work = 1);

    /// Report the current total gate / node count (absolute, not a delta).
    /// Returns true while the run may continue.
    bool note_gates(uint64_t total);
    bool note_nodes(uint64_t total);

    /// Re-check wall clock + interrupt flag (and any latched reason).
    [[nodiscard]] bool stopped();

    /// Latched stop reason; None while the run may continue. Does not
    /// re-check the clocks — call stopped() first for a fresh answer.
    [[nodiscard]] GuardStop reason() const {
        return reason_.load(std::memory_order_relaxed);
    }

    /// Manually trip the guard (used by tests and the CLI signal path).
    void trip(GuardStop reason);

    [[nodiscard]] double elapsed_seconds() const { return watch_.seconds(); }
    /// Seconds left on the wall budget (a large sentinel when unlimited,
    /// 0 once stopped for any reason).
    [[nodiscard]] double remaining_seconds() const;
    [[nodiscard]] uint64_t work_used() const {
        return work_used_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] const GuardLimits& limits() const { return limits_; }

    // ---- process-wide interrupt flag (async-signal-safe) ----------------
    /// Install the SIGINT handler: first ^C raises the flag (cooperative
    /// drain), a second ^C restores the default disposition and re-raises.
    static void install_signal_handler();
    static void request_interrupt();
    [[nodiscard]] static bool interrupt_requested();
    static void clear_interrupt();

  private:
    /// Latch `reason` as the stop cause iff none is set yet.
    void latch(GuardStop reason);

    GuardLimits limits_;
    Stopwatch watch_;
    std::atomic<uint64_t> work_used_{0};
    std::atomic<GuardStop> reason_{GuardStop::None};
};

} // namespace factor::util
