// Diagnostic engine: source locations, error/warning collection, and the
// exception type thrown on unrecoverable front-end errors.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace factor::util {

/// A position in a source buffer (1-based line/column; 0 means "unknown").
struct SourceLoc {
    std::string file;
    uint32_t line = 0;
    uint32_t col = 0;

    [[nodiscard]] std::string str() const;
    [[nodiscard]] bool valid() const { return line != 0; }
};

enum class Severity { Note, Warning, Error };

[[nodiscard]] const char* to_string(Severity s);

/// One reported problem with location and message.
struct Diagnostic {
    Severity severity = Severity::Error;
    SourceLoc loc;
    std::string message;

    [[nodiscard]] std::string str() const;
};

/// Collects diagnostics produced while processing one or more source files.
/// The front end reports through this engine rather than throwing so a
/// single run can surface every problem in a file.
///
/// Storage is capped (max_diags, default 100): pathological inputs that
/// produce one error per token cannot grow memory without bound. Reports
/// past the cap are counted but not stored, and dump() ends with a
/// "N further diagnostics suppressed" note. Counts (error_count(),
/// has_errors()) always reflect every report, stored or not.
class DiagEngine {
  public:
    static constexpr size_t kDefaultMaxDiags = 100;

    void report(Severity sev, SourceLoc loc, std::string message);
    void error(SourceLoc loc, std::string message) {
        report(Severity::Error, std::move(loc), std::move(message));
    }
    void warning(SourceLoc loc, std::string message) {
        report(Severity::Warning, std::move(loc), std::move(message));
    }
    void note(SourceLoc loc, std::string message) {
        report(Severity::Note, std::move(loc), std::move(message));
    }

    [[nodiscard]] bool has_errors() const { return error_count_ > 0; }
    [[nodiscard]] size_t error_count() const { return error_count_; }
    [[nodiscard]] const std::vector<Diagnostic>& all() const { return diags_; }

    /// Change the storage cap. Takes effect for subsequent reports; 0 is
    /// clamped to 1 (a cap of nothing would hide the first error).
    void set_max_diags(size_t n) { max_diags_ = n > 0 ? n : 1; }
    [[nodiscard]] size_t max_diags() const { return max_diags_; }
    /// Diagnostics reported past the cap (counted, not stored).
    [[nodiscard]] size_t suppressed() const { return suppressed_; }

    /// All stored diagnostics rendered one per line, plus a trailing
    /// suppression note when any were dropped.
    [[nodiscard]] std::string dump() const;

    void clear();

  private:
    std::vector<Diagnostic> diags_;
    size_t error_count_ = 0;
    size_t max_diags_ = kDefaultMaxDiags;
    size_t suppressed_ = 0;
};

/// Thrown for unrecoverable conditions (internal invariant violations,
/// callers asking for results after hard errors).
class FactorError : public std::runtime_error {
  public:
    explicit FactorError(const std::string& what) : std::runtime_error(what) {}
};

} // namespace factor::util
