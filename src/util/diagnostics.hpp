// Diagnostic engine: source locations, error/warning collection, and the
// exception type thrown on unrecoverable front-end errors.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace factor::util {

/// A position in a source buffer (1-based line/column; 0 means "unknown").
struct SourceLoc {
    std::string file;
    uint32_t line = 0;
    uint32_t col = 0;

    [[nodiscard]] std::string str() const;
    [[nodiscard]] bool valid() const { return line != 0; }
};

enum class Severity { Note, Warning, Error };

[[nodiscard]] const char* to_string(Severity s);

/// One reported problem with location and message.
struct Diagnostic {
    Severity severity = Severity::Error;
    SourceLoc loc;
    std::string message;

    [[nodiscard]] std::string str() const;
};

/// Collects diagnostics produced while processing one or more source files.
/// The front end reports through this engine rather than throwing so a
/// single run can surface every problem in a file.
class DiagEngine {
  public:
    void report(Severity sev, SourceLoc loc, std::string message);
    void error(SourceLoc loc, std::string message) {
        report(Severity::Error, std::move(loc), std::move(message));
    }
    void warning(SourceLoc loc, std::string message) {
        report(Severity::Warning, std::move(loc), std::move(message));
    }
    void note(SourceLoc loc, std::string message) {
        report(Severity::Note, std::move(loc), std::move(message));
    }

    [[nodiscard]] bool has_errors() const { return error_count_ > 0; }
    [[nodiscard]] size_t error_count() const { return error_count_; }
    [[nodiscard]] const std::vector<Diagnostic>& all() const { return diags_; }

    /// All diagnostics rendered one per line.
    [[nodiscard]] std::string dump() const;

    void clear();

  private:
    std::vector<Diagnostic> diags_;
    size_t error_count_ = 0;
};

/// Thrown for unrecoverable conditions (internal invariant violations,
/// callers asking for results after hard errors).
class FactorError : public std::runtime_error {
  public:
    explicit FactorError(const std::string& what) : std::runtime_error(what) {}
};

} // namespace factor::util
