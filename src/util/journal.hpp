// Journal: an append-only, CRC-framed NDJSON record stream.
//
// The crash-safety primitive behind ATPG checkpoint/resume (and reusable by
// any phase that wants recoverable progress): every record is one line of
//
//   <crc32 as 8 lowercase hex digits> <flat JSON object>\n
//
// where the CRC covers exactly the JSON bytes. Records are flushed to the
// OS after every append, so a killed process loses at most the line it was
// writing — and that torn line fails its CRC. The loader walks the file
// front to back and stops at the FIRST line that is structurally invalid
// (bad framing, CRC mismatch, unparsable JSON): everything before it is the
// trusted prefix, everything from it on is dropped and counted, never
// trusted. An append-only stream has no valid records after damage by
// construction, so truncate-to-last-valid is lossless for committed state.
//
// Records are flat string->string field lists (no nesting); the schema on
// top (e.g. factor.ckpt.v1, src/atpg/checkpoint.hpp) decides field names
// and semantics. Writers can start a file in place (fresh run) or build a
// replacement in "<path>.tmp" and atomically publish it over the original
// (resume rewrites), so a crash mid-rewrite can never destroy the old
// journal.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace factor::util {

/// One journal record: ordered flat fields, values held unescaped.
struct JournalRecord {
    std::vector<std::pair<std::string, std::string>> fields;

    JournalRecord& set(std::string key, std::string value) {
        fields.emplace_back(std::move(key), std::move(value));
        return *this;
    }
    JournalRecord& set_u64(std::string key, uint64_t v);
    JournalRecord& set_f64(std::string key, double v);

    /// First field named `key`, or null.
    [[nodiscard]] const std::string* get(std::string_view key) const;
    [[nodiscard]] uint64_t get_u64(std::string_view key,
                                   uint64_t fallback = 0) const;
    [[nodiscard]] double get_f64(std::string_view key,
                                 double fallback = 0.0) const;
    [[nodiscard]] bool has(std::string_view key) const {
        return get(key) != nullptr;
    }
};

/// Serialize a record as one flat JSON object (strings escaped; numeric
/// values are emitted verbatim by set_u64/set_f64 so they round-trip).
[[nodiscard]] std::string journal_serialize(const JournalRecord& rec);

/// Parse one flat JSON object produced by journal_serialize. Returns false
/// on any structural problem (and leaves `out` unspecified).
[[nodiscard]] bool journal_parse(std::string_view json, JournalRecord& out);

class JournalWriter {
  public:
    /// Create/truncate `path` and start appending to it directly.
    [[nodiscard]] bool open(const std::string& path);

    /// Start a crash-safe rewrite: append to "<path>.tmp" until publish()
    /// renames it over `path`. Until then the original file is untouched.
    [[nodiscard]] bool open_temp(const std::string& path);

    /// Atomically replace the target with the temp file; the stream stays
    /// open and further appends land in the (now renamed) file.
    [[nodiscard]] bool publish();

    /// Frame, write and flush one record. Returns false (and latches
    /// failed()) on any stream error.
    [[nodiscard]] bool append(const JournalRecord& rec);

    [[nodiscard]] bool is_open() const { return out_.is_open() && !failed_; }
    [[nodiscard]] bool failed() const { return failed_; }
    [[nodiscard]] const std::string& error() const { return error_; }
    [[nodiscard]] const std::string& path() const { return path_; }
    [[nodiscard]] size_t records_written() const { return records_; }

    void close();

  private:
    void fail(std::string why);

    std::ofstream out_;
    std::string path_;      // the journal's public name
    std::string temp_path_; // non-empty while writing the unpublished temp
    std::string error_;
    size_t records_ = 0;
    bool failed_ = false;
};

struct JournalLoad {
    bool ok = false;          // file existed and was readable
    std::string error;        // why not ok
    std::vector<JournalRecord> records; // the trusted prefix
    size_t dropped_lines = 0; // torn/corrupt tail lines discarded
};

/// Load the trusted prefix of a journal (see the header comment for the
/// truncation rule). A readable empty file is ok with zero records.
[[nodiscard]] JournalLoad journal_load(const std::string& path);

/// Frame one record exactly as JournalWriter::append does ("<crc32 hex8>
/// <flat JSON>"), without the trailing newline. One-shot writers (e.g. the
/// constraint cache) build whole journals in memory with this and publish
/// them via atomic_publish, sharing the framing with the streaming writer
/// so the loaders cannot diverge.
[[nodiscard]] std::string journal_frame(const JournalRecord& rec);

// --------------------------------------------------------------- file I/O

/// Publish `content` at `path` atomically AND durably: write to
/// "<path>.tmp.<pid>", flush, fsync the file, rename it over `path`, then
/// fsync the parent directory so the rename itself survives power loss. A
/// crash or a full disk can leave a stale temp file but never a
/// half-written `path` — downstream tooling either sees the old complete
/// document or the new complete one, before and after a power cut. Shared
/// by every report writer (stats/bench/profile/campaign/trace stops,
/// checkpoint rewrites, constraint-cache entries).
[[nodiscard]] bool atomic_publish(const std::string& path,
                                  std::string_view content);

/// fsync the directory containing `path` (no-op on failure: directory
/// fsync is best-effort hardening, not a correctness requirement).
void fsync_parent_dir(const std::string& path);

} // namespace factor::util
