// Monotonic stopwatch used by the benches to report extraction / synthesis /
// test-generation times (the paper's time columns).
#pragma once

#include <chrono>

namespace factor::util {

class Stopwatch {
  public:
    Stopwatch() : start_(Clock::now()) {}

    void reset() { start_ = Clock::now(); }

    /// Seconds elapsed since construction or the last reset().
    [[nodiscard]] double seconds() const {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /// Milliseconds elapsed since construction or the last reset().
    [[nodiscard]] double millis() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/// Deadline helper for budgeted ATPG runs: expired() flips to true once the
/// wall-clock budget is consumed. A non-positive budget means "no limit".
class Deadline {
  public:
    explicit Deadline(double budget_seconds) : budget_(budget_seconds) {}

    [[nodiscard]] bool expired() const {
        return budget_ > 0.0 && watch_.seconds() >= budget_;
    }
    [[nodiscard]] double remaining() const {
        return budget_ <= 0.0 ? 1e30 : budget_ - watch_.seconds();
    }

  private:
    double budget_;
    Stopwatch watch_;
};

} // namespace factor::util
