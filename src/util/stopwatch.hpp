// Monotonic stopwatch used by the benches to report extraction / synthesis /
// test-generation times (the paper's time columns).
#pragma once

#include <chrono>

namespace factor::util {

class Stopwatch {
  public:
    Stopwatch() : start_(Clock::now()) {}

    void reset() { start_ = Clock::now(); }

    /// Seconds elapsed since construction or the last reset().
    [[nodiscard]] double seconds() const {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /// Milliseconds elapsed since construction or the last reset().
    [[nodiscard]] double millis() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

// The old wall-clock-only `Deadline` helper lived here; it is replaced by
// the multi-budget util::RunGuard (see run_guard.hpp).

} // namespace factor::util
