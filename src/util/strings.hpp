// Small string utilities shared by the front end and the report writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace factor::util {

[[nodiscard]] std::string trim(std::string_view s);
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);
[[nodiscard]] bool ends_with(std::string_view s, std::string_view suffix);
[[nodiscard]] std::string to_lower(std::string_view s);

/// True if `s` is a legal (non-escaped) Verilog identifier.
[[nodiscard]] bool is_identifier(std::string_view s);

/// Render a double with fixed precision (report tables).
[[nodiscard]] std::string fixed(double v, int precision);

} // namespace factor::util
