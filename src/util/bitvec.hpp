// Two-state bit-vector constant with explicit width, used for Verilog
// literal values, parameter evaluation and constant folding in the
// synthesizer. Widths are limited to 64 bits, which covers the synthesizable
// subset this project accepts (the benchmark designs use <= 32-bit vectors).
#pragma once

#include <cstdint>
#include <string>

namespace factor::util {

class BitVec {
  public:
    static constexpr uint32_t kMaxWidth = 64;

    BitVec() = default;
    BitVec(uint32_t width, uint64_t value);

    /// Parse a Verilog literal: "8'hff", "4'b1010", "3'o7", "16'd42", "42".
    /// Returns false on malformed input. Unsized literals get width 32.
    static bool parse_verilog(const std::string& text, BitVec& out);

    [[nodiscard]] uint32_t width() const { return width_; }
    [[nodiscard]] uint64_t value() const { return value_; }
    [[nodiscard]] bool bit(uint32_t i) const { return ((value_ >> i) & 1u) != 0; }
    [[nodiscard]] bool is_zero() const { return value_ == 0; }

    /// Truncate or zero-extend to `width` bits.
    [[nodiscard]] BitVec resized(uint32_t width) const;

    /// Bits [hi:lo] as a new vector of width hi-lo+1.
    [[nodiscard]] BitVec slice(uint32_t hi, uint32_t lo) const;

    // Bitwise / arithmetic operators follow simplified Verilog semantics:
    // operands are extended to the max width first; arithmetic wraps.
    [[nodiscard]] BitVec operator&(const BitVec& o) const;
    [[nodiscard]] BitVec operator|(const BitVec& o) const;
    [[nodiscard]] BitVec operator^(const BitVec& o) const;
    [[nodiscard]] BitVec operator~() const;
    [[nodiscard]] BitVec operator+(const BitVec& o) const;
    [[nodiscard]] BitVec operator-(const BitVec& o) const;
    [[nodiscard]] BitVec operator*(const BitVec& o) const;
    [[nodiscard]] BitVec shl(uint32_t n) const;
    [[nodiscard]] BitVec shr(uint32_t n) const;

    // Comparisons / reductions return a 1-bit vector.
    [[nodiscard]] BitVec eq(const BitVec& o) const;
    [[nodiscard]] BitVec lt(const BitVec& o) const; // unsigned
    [[nodiscard]] BitVec reduce_and() const;
    [[nodiscard]] BitVec reduce_or() const;
    [[nodiscard]] BitVec reduce_xor() const;

    /// {this, o} — this becomes the high part.
    [[nodiscard]] BitVec concat(const BitVec& o) const;
    /// {n{this}}
    [[nodiscard]] BitVec replicate(uint32_t n) const;

    [[nodiscard]] bool operator==(const BitVec& o) const {
        return width_ == o.width_ && value_ == o.value_;
    }

    /// Render as a sized Verilog hex literal, e.g. "8'h2a".
    [[nodiscard]] std::string to_verilog() const;

  private:
    [[nodiscard]] static uint64_t mask(uint32_t width) {
        return width >= 64 ? ~0ull : ((1ull << width) - 1ull);
    }

    uint32_t width_ = 1;
    uint64_t value_ = 0;
};

} // namespace factor::util
