// CRC32 (IEEE 802.3, zlib-compatible) and FNV-1a 64 hashing.
//
// CRC32 frames individual journal records so a torn or bit-flipped line is
// detected and the tail truncated instead of trusted (see util/journal.hpp).
// The parameters match zlib's crc32(): reflected polynomial 0xEDB88320,
// initial value 0xFFFFFFFF, final XOR 0xFFFFFFFF — so test fixtures can be
// generated with any stock CRC32 tool.
//
// FNV-1a 64 is the run-fingerprint hash: fast, dependency-free and stable
// across platforms, which is all a checkpoint fingerprint needs (it detects
// accidental mismatches, it is not a cryptographic commitment).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace factor::util {

/// CRC32 of `data` (zlib-compatible). `seed` chains partial computations:
/// crc32(b, crc32(a)) == crc32(a + b).
[[nodiscard]] uint32_t crc32(const void* data, size_t len, uint32_t seed = 0);
[[nodiscard]] uint32_t crc32(std::string_view s);

/// Incremental FNV-1a 64 hasher for run fingerprints.
class Fnv64 {
  public:
    static constexpr uint64_t kOffset = 0xcbf29ce484222325ull;
    static constexpr uint64_t kPrime = 0x100000001b3ull;

    Fnv64& mix(const void* data, size_t len) {
        const auto* p = static_cast<const unsigned char*>(data);
        for (size_t i = 0; i < len; ++i) {
            h_ = (h_ ^ p[i]) * kPrime;
        }
        return *this;
    }
    Fnv64& mix(std::string_view s) { return mix(s.data(), s.size()); }
    Fnv64& mix(uint64_t v);
    Fnv64& mix(uint32_t v) { return mix(static_cast<uint64_t>(v)); }
    Fnv64& mix(int v) { return mix(static_cast<uint64_t>(v)); }
    Fnv64& mix(bool v) { return mix(static_cast<uint64_t>(v ? 1 : 0)); }
    Fnv64& mix(double v);

    [[nodiscard]] uint64_t value() const { return h_; }
    /// 16 lowercase hex digits.
    [[nodiscard]] std::string hex() const;

  private:
    uint64_t h_ = kOffset;
};

} // namespace factor::util
