#include "util/run_guard.hpp"

#include <atomic>
#include <csignal>

namespace factor::util {

namespace {

std::atomic<bool> g_interrupt{false};

extern "C" void factor_on_sigint(int) {
    if (g_interrupt.load(std::memory_order_relaxed)) {
        // Second ^C: the cooperative drain is taking too long for the
        // user's taste — fall back to the default (fatal) disposition.
        std::signal(SIGINT, SIG_DFL);
        std::raise(SIGINT);
        return;
    }
    g_interrupt.store(true, std::memory_order_relaxed);
}

} // namespace

const char* to_string(GuardStop s) {
    switch (s) {
    case GuardStop::None: return "none";
    case GuardStop::WallClock: return "wall_clock";
    case GuardStop::WorkQuota: return "work_quota";
    case GuardStop::GateCap: return "gate_cap";
    case GuardStop::NodeCap: return "node_cap";
    case GuardStop::Interrupt: return "interrupt";
    }
    return "unknown";
}

void RunGuard::latch(GuardStop reason) {
    GuardStop expected = GuardStop::None;
    reason_.compare_exchange_strong(expected, reason,
                                    std::memory_order_relaxed);
}

bool RunGuard::tick(uint64_t work) {
    uint64_t used =
        work_used_.fetch_add(work, std::memory_order_relaxed) + work;
    if (limits_.work_quota > 0 && used > limits_.work_quota) {
        latch(GuardStop::WorkQuota);
    }
    return !stopped();
}

bool RunGuard::note_gates(uint64_t total) {
    if (limits_.max_gates > 0 && total > limits_.max_gates) {
        latch(GuardStop::GateCap);
    }
    return !stopped();
}

bool RunGuard::note_nodes(uint64_t total) {
    if (limits_.max_nodes > 0 && total > limits_.max_nodes) {
        latch(GuardStop::NodeCap);
    }
    return !stopped();
}

bool RunGuard::stopped() {
    if (reason() != GuardStop::None) return true;
    if (interrupt_requested()) {
        latch(GuardStop::Interrupt);
        return true;
    }
    if (limits_.wall_seconds > 0.0 &&
        watch_.seconds() >= limits_.wall_seconds) {
        latch(GuardStop::WallClock);
        return true;
    }
    return false;
}

void RunGuard::trip(GuardStop reason) {
    if (reason != GuardStop::None) latch(reason);
}

double RunGuard::remaining_seconds() const {
    if (reason() != GuardStop::None) return 0.0;
    if (limits_.wall_seconds <= 0.0) return 1e30;
    double left = limits_.wall_seconds - watch_.seconds();
    return left > 0.0 ? left : 0.0;
}

void RunGuard::install_signal_handler() {
    std::signal(SIGINT, factor_on_sigint);
}

void RunGuard::request_interrupt() {
    g_interrupt.store(true, std::memory_order_relaxed);
}

bool RunGuard::interrupt_requested() {
    return g_interrupt.load(std::memory_order_relaxed);
}

void RunGuard::clear_interrupt() {
    g_interrupt.store(false, std::memory_order_relaxed);
}

} // namespace factor::util
