// Phase-result taxonomy: every engine phase of the pipeline reports one of
// four outcomes instead of letting FactorError escape to the caller.
//
//   Ok              — phase completed normally.
//   Degraded        — phase completed, but on a fallback path (composed
//                     extraction fell back to flat, ATPG skipped a fault
//                     that errored); results are usable but weaker.
//   BudgetExhausted — a RunGuard budget (or SIGINT) stopped the phase; the
//                     partial results produced so far are returned.
//   Failed          — the phase produced no usable result; diagnostics or
//                     the status detail say why.
//
// Severity is ordered Ok < Degraded < BudgetExhausted < Failed; a
// pipeline's overall status is the worst of its phases. PhaseLog collects
// per-phase outcomes for the run and renders them into the stats document
// (`factor.stats.v1` "phases" array).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace factor::util {

enum class PhaseStatus : uint8_t {
    Ok = 0,
    Degraded = 1,
    BudgetExhausted = 2,
    Failed = 3,
};

[[nodiscard]] const char* to_string(PhaseStatus s);

/// The more severe of the two statuses.
[[nodiscard]] inline PhaseStatus worst(PhaseStatus a, PhaseStatus b) {
    return static_cast<uint8_t>(a) >= static_cast<uint8_t>(b) ? a : b;
}

/// One phase's recorded outcome.
struct PhaseOutcome {
    std::string phase;
    PhaseStatus status = PhaseStatus::Ok;
    std::string detail; // human-readable reason for non-Ok statuses
    double seconds = 0.0;
};

/// Ordered per-run collection of phase outcomes.
class PhaseLog {
  public:
    void record(std::string phase, PhaseStatus status,
                std::string detail = "", double seconds = 0.0);

    [[nodiscard]] const std::vector<PhaseOutcome>& outcomes() const {
        return outcomes_;
    }
    [[nodiscard]] bool empty() const { return outcomes_.empty(); }

    /// Worst status across all recorded phases (Ok when empty).
    [[nodiscard]] PhaseStatus overall() const;

    /// The recorded outcome for `phase`, or null.
    [[nodiscard]] const PhaseOutcome* find(const std::string& phase) const;

    /// JSON array of {"phase","status","seconds"[,"detail"]} objects.
    [[nodiscard]] std::string to_json() const;

    void clear() { outcomes_.clear(); }

  private:
    std::vector<PhaseOutcome> outcomes_;
};

} // namespace factor::util
