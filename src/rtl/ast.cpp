#include "rtl/ast.hpp"

namespace factor::rtl {

const char* to_string(UnaryOp op) {
    switch (op) {
    case UnaryOp::Plus: return "+";
    case UnaryOp::Minus: return "-";
    case UnaryOp::LogNot: return "!";
    case UnaryOp::BitNot: return "~";
    case UnaryOp::RedAnd: return "&";
    case UnaryOp::RedOr: return "|";
    case UnaryOp::RedXor: return "^";
    case UnaryOp::RedNand: return "~&";
    case UnaryOp::RedNor: return "~|";
    case UnaryOp::RedXnor: return "~^";
    }
    return "?";
}

const char* to_string(BinaryOp op) {
    switch (op) {
    case BinaryOp::Add: return "+";
    case BinaryOp::Sub: return "-";
    case BinaryOp::Mul: return "*";
    case BinaryOp::Div: return "/";
    case BinaryOp::Mod: return "%";
    case BinaryOp::BitAnd: return "&";
    case BinaryOp::BitOr: return "|";
    case BinaryOp::BitXor: return "^";
    case BinaryOp::BitXnor: return "~^";
    case BinaryOp::LogAnd: return "&&";
    case BinaryOp::LogOr: return "||";
    case BinaryOp::Eq: return "==";
    case BinaryOp::Neq: return "!=";
    case BinaryOp::CaseEq: return "===";
    case BinaryOp::CaseNeq: return "!==";
    case BinaryOp::Lt: return "<";
    case BinaryOp::Le: return "<=";
    case BinaryOp::Gt: return ">";
    case BinaryOp::Ge: return ">=";
    case BinaryOp::Shl: return "<<";
    case BinaryOp::Shr: return ">>";
    }
    return "?";
}

const char* to_string(PortDir d) {
    switch (d) {
    case PortDir::Input: return "input";
    case PortDir::Output: return "output";
    case PortDir::Inout: return "inout";
    }
    return "?";
}

ExprPtr make_number(util::BitVec v, SourceLoc loc) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::Number;
    e->value = v;
    e->loc = std::move(loc);
    return e;
}

ExprPtr make_ident(std::string name, SourceLoc loc) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::Ident;
    e->ident = std::move(name);
    e->loc = std::move(loc);
    return e;
}

ExprPtr make_unary(UnaryOp op, ExprPtr operand, SourceLoc loc) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::Unary;
    e->uop = op;
    e->ops.push_back(std::move(operand));
    e->loc = std::move(loc);
    return e;
}

ExprPtr make_binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs, SourceLoc loc) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::Binary;
    e->bop = op;
    e->ops.push_back(std::move(lhs));
    e->ops.push_back(std::move(rhs));
    e->loc = std::move(loc);
    return e;
}

ExprPtr make_ternary(ExprPtr cond, ExprPtr t, ExprPtr f, SourceLoc loc) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::Ternary;
    e->ops.push_back(std::move(cond));
    e->ops.push_back(std::move(t));
    e->ops.push_back(std::move(f));
    e->loc = std::move(loc);
    return e;
}

ExprPtr make_bit_select(std::string base, ExprPtr index, SourceLoc loc) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::BitSelect;
    e->ident = std::move(base);
    e->ops.push_back(std::move(index));
    e->loc = std::move(loc);
    return e;
}

ExprPtr make_part_select(std::string base, int32_t msb, int32_t lsb,
                         SourceLoc loc) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::PartSelect;
    e->ident = std::move(base);
    e->msb = msb;
    e->lsb = lsb;
    e->loc = std::move(loc);
    return e;
}

ExprPtr clone(const Expr& e) {
    auto out = std::make_unique<Expr>();
    out->kind = e.kind;
    out->loc = e.loc;
    out->value = e.value;
    out->ident = e.ident;
    out->uop = e.uop;
    out->bop = e.bop;
    out->rep_count = e.rep_count;
    out->msb = e.msb;
    out->lsb = e.lsb;
    out->ops.reserve(e.ops.size());
    for (const auto& op : e.ops) {
        out->ops.push_back(clone(*op));
    }
    return out;
}

void collect_idents(const Expr& e, std::vector<std::string>& out) {
    if (e.kind == ExprKind::Ident || e.kind == ExprKind::BitSelect ||
        e.kind == ExprKind::PartSelect) {
        out.push_back(e.ident);
    }
    for (const auto& op : e.ops) {
        collect_idents(*op, out);
    }
}

bool is_constant_expr(const Expr& e) {
    switch (e.kind) {
    case ExprKind::Number:
        return true;
    case ExprKind::Unary:
    case ExprKind::Binary:
    case ExprKind::Ternary:
    case ExprKind::Concat:
    case ExprKind::Replicate: {
        for (const auto& op : e.ops) {
            if (!is_constant_expr(*op)) return false;
        }
        return true;
    }
    default:
        return false;
    }
}

StmtPtr clone(const Stmt& s) {
    auto out = std::make_unique<Stmt>();
    out->kind = s.kind;
    out->loc = s.loc;
    out->nonblocking = s.nonblocking;
    out->casez = s.casez;
    out->label = s.label;
    if (s.lhs) out->lhs = clone(*s.lhs);
    if (s.rhs) out->rhs = clone(*s.rhs);
    if (s.cond) out->cond = clone(*s.cond);
    if (s.then_s) out->then_s = clone(*s.then_s);
    if (s.else_s) out->else_s = clone(*s.else_s);
    if (s.init) out->init = clone(*s.init);
    if (s.step) out->step = clone(*s.step);
    if (s.body) out->body = clone(*s.body);
    out->items.reserve(s.items.size());
    for (const auto& item : s.items) {
        CaseItem ci;
        ci.labels.reserve(item.labels.size());
        for (const auto& l : item.labels) ci.labels.push_back(clone(*l));
        if (item.body) ci.body = clone(*item.body);
        out->items.push_back(std::move(ci));
    }
    out->stmts.reserve(s.stmts.size());
    for (const auto& st : s.stmts) out->stmts.push_back(clone(*st));
    return out;
}

Range Range::cloned() const {
    Range out(msb, lsb);
    if (msb_expr) out.msb_expr = clone(*msb_expr);
    if (lsb_expr) out.lsb_expr = clone(*lsb_expr);
    return out;
}

std::unique_ptr<Module> clone(const Module& m) {
    auto out = std::make_unique<Module>();
    out->name = m.name;
    out->loc = m.loc;
    out->ports.reserve(m.ports.size());
    for (const auto& p : m.ports) {
        out->ports.push_back(Port{p.name, p.dir, p.range.cloned(), p.is_reg, p.loc});
    }
    out->nets.reserve(m.nets.size());
    for (const auto& d : m.nets) {
        out->nets.push_back(NetDecl{d.name, d.is_reg, d.range.cloned(), d.loc});
    }
    out->params.reserve(m.params.size());
    for (const auto& p : m.params) {
        ParamDecl pd;
        pd.name = p.name;
        pd.local = p.local;
        pd.loc = p.loc;
        if (p.value) pd.value = clone(*p.value);
        out->params.push_back(std::move(pd));
    }
    out->assigns.reserve(m.assigns.size());
    for (const auto& a : m.assigns) {
        ContAssign ca;
        ca.lhs = clone(*a.lhs);
        ca.rhs = clone(*a.rhs);
        ca.loc = a.loc;
        ca.id = a.id;
        out->assigns.push_back(std::move(ca));
    }
    out->always_blocks.reserve(m.always_blocks.size());
    for (const auto& b : m.always_blocks) {
        AlwaysBlock ab;
        ab.is_comb = b.is_comb;
        ab.sens = b.sens;
        if (b.body) ab.body = clone(*b.body);
        ab.loc = b.loc;
        ab.id = b.id;
        out->always_blocks.push_back(std::move(ab));
    }
    out->instances.reserve(m.instances.size());
    for (const auto& i : m.instances) {
        Instance inst;
        inst.module_name = i.module_name;
        inst.inst_name = i.inst_name;
        inst.loc = i.loc;
        inst.id = i.id;
        for (const auto& po : i.param_overrides) {
            ParamOverride o;
            o.name = po.name;
            if (po.value) o.value = clone(*po.value);
            inst.param_overrides.push_back(std::move(o));
        }
        for (const auto& c : i.conns) {
            PortConn pc;
            pc.port = c.port;
            if (c.expr) pc.expr = clone(*c.expr);
            inst.conns.push_back(std::move(pc));
        }
        out->instances.push_back(std::move(inst));
    }
    return out;
}

bool AlwaysBlock::is_sequential() const {
    for (const auto& s : sens) {
        if (s.edge != EdgeKind::Level) return true;
    }
    return false;
}

const Port* Module::find_port(const std::string& n) const {
    for (const auto& p : ports) {
        if (p.name == n) return &p;
    }
    return nullptr;
}

const NetDecl* Module::find_net(const std::string& n) const {
    for (const auto& d : nets) {
        if (d.name == n) return &d;
    }
    return nullptr;
}

const ParamDecl* Module::find_param(const std::string& n) const {
    for (const auto& p : params) {
        if (p.name == n) return &p;
    }
    return nullptr;
}

const Instance* Module::find_instance(const std::string& inst) const {
    for (const auto& i : instances) {
        if (i.inst_name == inst) return &i;
    }
    return nullptr;
}

uint32_t Module::signal_width(const std::string& n) const {
    return signal_range(n).valid() ? signal_range(n).width()
                                   : (find_port(n) || find_net(n) ? 1u : 0u);
}

Range Module::signal_range(const std::string& n) const {
    // Returns resolved integer bounds only (valid after elaboration).
    if (const Port* p = find_port(n)) return Range(p->range.msb, p->range.lsb);
    if (const NetDecl* d = find_net(n)) return Range(d->range.msb, d->range.lsb);
    return Range{};
}

Module* Design::find(const std::string& name) const {
    for (const auto& m : modules) {
        if (m->name == name) return m.get();
    }
    return nullptr;
}

Module& Design::add(std::unique_ptr<Module> m) {
    modules.push_back(std::move(m));
    return *modules.back();
}

} // namespace factor::rtl
