// Pretty printer: renders AST nodes back to synthesizable Verilog source.
// Used by the FACTOR constraint writer to emit extracted constraint netlists
// and by tests to round-trip the parser.
#pragma once

#include "rtl/ast.hpp"

#include <string>

namespace factor::rtl {

[[nodiscard]] std::string to_verilog(const Expr& e);
[[nodiscard]] std::string to_verilog(const Stmt& s, int indent = 0);
[[nodiscard]] std::string to_verilog(const Module& m);
[[nodiscard]] std::string to_verilog(const Design& d);

} // namespace factor::rtl
