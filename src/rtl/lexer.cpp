#include "rtl/lexer.hpp"

#include <cctype>
#include <unordered_map>

namespace factor::rtl {

namespace {

const std::unordered_map<std::string_view, TokKind>& keyword_map() {
    static const std::unordered_map<std::string_view, TokKind> kMap = {
        {"module", TokKind::KwModule},
        {"endmodule", TokKind::KwEndmodule},
        {"input", TokKind::KwInput},
        {"output", TokKind::KwOutput},
        {"inout", TokKind::KwInout},
        {"wire", TokKind::KwWire},
        {"reg", TokKind::KwReg},
        {"integer", TokKind::KwInteger},
        {"parameter", TokKind::KwParameter},
        {"localparam", TokKind::KwLocalparam},
        {"assign", TokKind::KwAssign},
        {"always", TokKind::KwAlways},
        {"posedge", TokKind::KwPosedge},
        {"negedge", TokKind::KwNegedge},
        {"or", TokKind::KwOr},
        {"begin", TokKind::KwBegin},
        {"end", TokKind::KwEnd},
        {"if", TokKind::KwIf},
        {"else", TokKind::KwElse},
        {"case", TokKind::KwCase},
        {"casez", TokKind::KwCasez},
        {"casex", TokKind::KwCasex},
        {"endcase", TokKind::KwEndcase},
        {"default", TokKind::KwDefault},
        {"for", TokKind::KwFor},
        {"initial", TokKind::KwInitial},
        {"function", TokKind::KwFunction},
        {"endfunction", TokKind::KwEndfunction},
    };
    return kMap;
}

} // namespace

const char* tok_kind_name(TokKind k) {
    switch (k) {
    case TokKind::End: return "end-of-input";
    case TokKind::Ident: return "identifier";
    case TokKind::Number: return "number";
    case TokKind::KwModule: return "'module'";
    case TokKind::KwEndmodule: return "'endmodule'";
    case TokKind::KwInput: return "'input'";
    case TokKind::KwOutput: return "'output'";
    case TokKind::KwInout: return "'inout'";
    case TokKind::KwWire: return "'wire'";
    case TokKind::KwReg: return "'reg'";
    case TokKind::KwInteger: return "'integer'";
    case TokKind::KwParameter: return "'parameter'";
    case TokKind::KwLocalparam: return "'localparam'";
    case TokKind::KwAssign: return "'assign'";
    case TokKind::KwAlways: return "'always'";
    case TokKind::KwPosedge: return "'posedge'";
    case TokKind::KwNegedge: return "'negedge'";
    case TokKind::KwOr: return "'or'";
    case TokKind::KwBegin: return "'begin'";
    case TokKind::KwEnd: return "'end'";
    case TokKind::KwIf: return "'if'";
    case TokKind::KwElse: return "'else'";
    case TokKind::KwCase: return "'case'";
    case TokKind::KwCasez: return "'casez'";
    case TokKind::KwCasex: return "'casex'";
    case TokKind::KwEndcase: return "'endcase'";
    case TokKind::KwDefault: return "'default'";
    case TokKind::KwFor: return "'for'";
    case TokKind::KwInitial: return "'initial'";
    case TokKind::KwFunction: return "'function'";
    case TokKind::KwEndfunction: return "'endfunction'";
    case TokKind::LParen: return "'('";
    case TokKind::RParen: return "')'";
    case TokKind::LBracket: return "'['";
    case TokKind::RBracket: return "']'";
    case TokKind::LBrace: return "'{'";
    case TokKind::RBrace: return "'}'";
    case TokKind::Semi: return "';'";
    case TokKind::Comma: return "','";
    case TokKind::Colon: return "':'";
    case TokKind::Dot: return "'.'";
    case TokKind::Hash: return "'#'";
    case TokKind::At: return "'@'";
    case TokKind::Question: return "'?'";
    case TokKind::Assign: return "'='";
    case TokKind::Plus: return "'+'";
    case TokKind::Minus: return "'-'";
    case TokKind::Star: return "'*'";
    case TokKind::Slash: return "'/'";
    case TokKind::Percent: return "'%'";
    case TokKind::Amp: return "'&'";
    case TokKind::AmpAmp: return "'&&'";
    case TokKind::Pipe: return "'|'";
    case TokKind::PipePipe: return "'||'";
    case TokKind::Caret: return "'^'";
    case TokKind::TildeCaret: return "'~^'";
    case TokKind::Tilde: return "'~'";
    case TokKind::Bang: return "'!'";
    case TokKind::EqEq: return "'=='";
    case TokKind::BangEq: return "'!='";
    case TokKind::EqEqEq: return "'==='";
    case TokKind::BangEqEq: return "'!=='";
    case TokKind::Lt: return "'<'";
    case TokKind::LtEq: return "'<='";
    case TokKind::Gt: return "'>'";
    case TokKind::GtEq: return "'>='";
    case TokKind::Shl: return "'<<'";
    case TokKind::Shr: return "'>>'";
    case TokKind::NandRed: return "'~&'";
    case TokKind::NorRed: return "'~|'";
    }
    return "?";
}

Lexer::Lexer(std::string_view text, std::string file, util::DiagEngine& diags)
    : text_(text), file_(std::move(file)), diags_(diags) {}

util::SourceLoc Lexer::loc() const { return util::SourceLoc{file_, line_, col_}; }

char Lexer::peek(size_t ahead) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
}

char Lexer::advance() {
    char c = text_[pos_++];
    if (c == '\n') {
        ++line_;
        col_ = 1;
    } else {
        ++col_;
    }
    return c;
}

void Lexer::skip_whitespace_and_comments() {
    while (!eof()) {
        char c = peek();
        if (std::isspace(static_cast<unsigned char>(c))) {
            advance();
        } else if (c == '/' && peek(1) == '/') {
            while (!eof() && peek() != '\n') advance();
        } else if (c == '/' && peek(1) == '*') {
            auto start = loc();
            advance();
            advance();
            bool closed = false;
            while (!eof()) {
                if (peek() == '*' && peek(1) == '/') {
                    advance();
                    advance();
                    closed = true;
                    break;
                }
                advance();
            }
            if (!closed) diags_.error(start, "unterminated block comment");
        } else if (c == '`') {
            // Compiler directives (`timescale, `define, ...) — skip the line.
            while (!eof() && peek() != '\n') advance();
        } else {
            break;
        }
    }
}

Token Lexer::lex_identifier_or_keyword() {
    auto l = loc();
    std::string text;
    while (!eof()) {
        char c = peek();
        if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$') {
            text.push_back(advance());
        } else {
            break;
        }
    }
    auto it = keyword_map().find(text);
    if (it != keyword_map().end()) {
        return Token{it->second, std::move(text), l};
    }
    return Token{TokKind::Ident, std::move(text), l};
}

Token Lexer::lex_number() {
    auto l = loc();
    std::string text;
    auto take_digits = [&] {
        while (!eof()) {
            char c = peek();
            if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
                text.push_back(advance());
            } else {
                break;
            }
        }
    };
    if (peek() != '\'') take_digits();
    // Optional based part: e.g. the "'hff" in "8'hff", or a bare "'b1".
    if (peek() == '\'') {
        text.push_back(advance()); // '
        if (!eof()) text.push_back(advance()); // base char
        take_digits();
    }
    return Token{TokKind::Number, std::move(text), l};
}

Token Lexer::lex_operator() {
    auto l = loc();
    char c = advance();
    auto two = [&](char next, TokKind yes, TokKind no) {
        if (peek() == next) {
            advance();
            return Token{yes, std::string(1, c) + next, l};
        }
        return Token{no, std::string(1, c), l};
    };
    switch (c) {
    case '(': return Token{TokKind::LParen, "(", l};
    case ')': return Token{TokKind::RParen, ")", l};
    case '[': return Token{TokKind::LBracket, "[", l};
    case ']': return Token{TokKind::RBracket, "]", l};
    case '{': return Token{TokKind::LBrace, "{", l};
    case '}': return Token{TokKind::RBrace, "}", l};
    case ';': return Token{TokKind::Semi, ";", l};
    case ',': return Token{TokKind::Comma, ",", l};
    case ':': return Token{TokKind::Colon, ":", l};
    case '.': return Token{TokKind::Dot, ".", l};
    case '#': return Token{TokKind::Hash, "#", l};
    case '@': return Token{TokKind::At, "@", l};
    case '?': return Token{TokKind::Question, "?", l};
    case '+': return Token{TokKind::Plus, "+", l};
    case '-': return Token{TokKind::Minus, "-", l};
    case '*': return Token{TokKind::Star, "*", l};
    case '/': return Token{TokKind::Slash, "/", l};
    case '%': return Token{TokKind::Percent, "%", l};
    case '&': return two('&', TokKind::AmpAmp, TokKind::Amp);
    case '|': return two('|', TokKind::PipePipe, TokKind::Pipe);
    case '^':
        if (peek() == '~') {
            advance();
            return Token{TokKind::TildeCaret, "^~", l};
        }
        return Token{TokKind::Caret, "^", l};
    case '~':
        if (peek() == '^') {
            advance();
            return Token{TokKind::TildeCaret, "~^", l};
        }
        if (peek() == '&') {
            advance();
            return Token{TokKind::NandRed, "~&", l};
        }
        if (peek() == '|') {
            advance();
            return Token{TokKind::NorRed, "~|", l};
        }
        return Token{TokKind::Tilde, "~", l};
    case '!':
        if (peek() == '=') {
            advance();
            if (peek() == '=') {
                advance();
                return Token{TokKind::BangEqEq, "!==", l};
            }
            return Token{TokKind::BangEq, "!=", l};
        }
        return Token{TokKind::Bang, "!", l};
    case '=':
        if (peek() == '=') {
            advance();
            if (peek() == '=') {
                advance();
                return Token{TokKind::EqEqEq, "===", l};
            }
            return Token{TokKind::EqEq, "==", l};
        }
        return Token{TokKind::Assign, "=", l};
    case '<':
        if (peek() == '=') {
            advance();
            return Token{TokKind::LtEq, "<=", l};
        }
        if (peek() == '<') {
            advance();
            return Token{TokKind::Shl, "<<", l};
        }
        return Token{TokKind::Lt, "<", l};
    case '>':
        if (peek() == '=') {
            advance();
            return Token{TokKind::GtEq, ">=", l};
        }
        if (peek() == '>') {
            advance();
            return Token{TokKind::Shr, ">>", l};
        }
        return Token{TokKind::Gt, ">", l};
    default:
        diags_.error(l, std::string("unexpected character '") + c + "'");
        return Token{TokKind::End, "", l};
    }
}

std::vector<Token> Lexer::tokenize() {
    std::vector<Token> out;
    while (true) {
        skip_whitespace_and_comments();
        if (eof()) break;
        char c = peek();
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            out.push_back(lex_identifier_or_keyword());
        } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '\'') {
            out.push_back(lex_number());
        } else {
            Token t = lex_operator();
            if (t.kind != TokKind::End) out.push_back(t);
        }
    }
    out.push_back(Token{TokKind::End, "", loc()});
    return out;
}

} // namespace factor::rtl
