#include "rtl/const_eval.hpp"

#include "util/diagnostics.hpp"

namespace factor::rtl {

using util::BitVec;

std::optional<BitVec> const_eval(const Expr& e, const ConstEnv& env) {
    try {
        switch (e.kind) {
        case ExprKind::Number:
            return e.value;
        case ExprKind::Ident: {
            auto it = env.find(e.ident);
            if (it == env.end()) return std::nullopt;
            return it->second;
        }
        case ExprKind::Unary: {
            auto v = const_eval(*e.ops[0], env);
            if (!v) return std::nullopt;
            switch (e.uop) {
            case UnaryOp::Plus: return *v;
            case UnaryOp::Minus: return BitVec(v->width(), 0) - *v;
            case UnaryOp::LogNot: return BitVec(1, v->is_zero() ? 1 : 0);
            case UnaryOp::BitNot: return ~*v;
            case UnaryOp::RedAnd: return v->reduce_and();
            case UnaryOp::RedOr: return v->reduce_or();
            case UnaryOp::RedXor: return v->reduce_xor();
            case UnaryOp::RedNand: return ~v->reduce_and();
            case UnaryOp::RedNor: return ~v->reduce_or();
            case UnaryOp::RedXnor: return ~v->reduce_xor();
            }
            return std::nullopt;
        }
        case ExprKind::Binary: {
            auto a = const_eval(*e.ops[0], env);
            auto b = const_eval(*e.ops[1], env);
            if (!a || !b) return std::nullopt;
            switch (e.bop) {
            case BinaryOp::Add: return *a + *b;
            case BinaryOp::Sub: return *a - *b;
            case BinaryOp::Mul: return *a * *b;
            case BinaryOp::Div:
                if (b->is_zero()) return std::nullopt;
                return BitVec(std::max(a->width(), b->width()),
                              a->value() / b->value());
            case BinaryOp::Mod:
                if (b->is_zero()) return std::nullopt;
                return BitVec(std::max(a->width(), b->width()),
                              a->value() % b->value());
            case BinaryOp::BitAnd: return *a & *b;
            case BinaryOp::BitOr: return *a | *b;
            case BinaryOp::BitXor: return *a ^ *b;
            case BinaryOp::BitXnor: return ~(*a ^ *b);
            case BinaryOp::LogAnd:
                return BitVec(1, (!a->is_zero() && !b->is_zero()) ? 1 : 0);
            case BinaryOp::LogOr:
                return BitVec(1, (!a->is_zero() || !b->is_zero()) ? 1 : 0);
            case BinaryOp::Eq:
            case BinaryOp::CaseEq:
                return a->eq(*b);
            case BinaryOp::Neq:
            case BinaryOp::CaseNeq:
                return ~a->eq(*b);
            case BinaryOp::Lt: return a->lt(*b);
            case BinaryOp::Le: return ~b->lt(*a);
            case BinaryOp::Gt: return b->lt(*a);
            case BinaryOp::Ge: return ~a->lt(*b);
            case BinaryOp::Shl: return a->shl(static_cast<uint32_t>(b->value() & 0xff));
            case BinaryOp::Shr: return a->shr(static_cast<uint32_t>(b->value() & 0xff));
            }
            return std::nullopt;
        }
        case ExprKind::Ternary: {
            auto c = const_eval(*e.ops[0], env);
            if (!c) return std::nullopt;
            return const_eval(c->is_zero() ? *e.ops[2] : *e.ops[1], env);
        }
        case ExprKind::Concat: {
            std::optional<BitVec> acc;
            for (const auto& op : e.ops) {
                auto v = const_eval(*op, env);
                if (!v) return std::nullopt;
                acc = acc ? acc->concat(*v) : *v;
            }
            return acc;
        }
        case ExprKind::Replicate: {
            auto v = const_eval(*e.ops[0], env);
            if (!v || e.rep_count == 0) return std::nullopt;
            return v->replicate(e.rep_count);
        }
        case ExprKind::BitSelect: {
            auto it = env.find(e.ident);
            if (it == env.end()) return std::nullopt;
            auto idx = const_eval(*e.ops[0], env);
            if (!idx || idx->value() >= it->second.width()) return std::nullopt;
            return it->second.slice(static_cast<uint32_t>(idx->value()),
                                    static_cast<uint32_t>(idx->value()));
        }
        case ExprKind::PartSelect: {
            auto it = env.find(e.ident);
            if (it == env.end() || e.msb < 0 || e.lsb < 0) return std::nullopt;
            if (static_cast<uint32_t>(e.msb) >= it->second.width()) {
                return std::nullopt;
            }
            return it->second.slice(static_cast<uint32_t>(e.msb),
                                    static_cast<uint32_t>(e.lsb));
        }
        }
    } catch (const util::FactorError&) {
        return std::nullopt;
    }
    return std::nullopt;
}

std::optional<int32_t> const_eval_int(const Expr& e, const ConstEnv& env) {
    auto v = const_eval(e, env);
    if (!v) return std::nullopt;
    if (v->value() > 0x7fffffffull) return std::nullopt;
    return static_cast<int32_t>(v->value());
}

} // namespace factor::rtl
