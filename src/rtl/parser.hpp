// Recursive-descent parser for the synthesizable Verilog subset.
//
// Supported constructs: module declarations (ANSI and non-ANSI headers),
// input/output/inout ports, wire/reg/integer declarations, parameter and
// localparam declarations (header and body), continuous assignments, always
// blocks (edge- and level-sensitive), begin/end, if/else, case/casez/casex,
// bounded for loops, module instances with named/positional connections and
// parameter overrides, and the full operator expression grammar including
// concatenation, replication, bit- and part-selects.
#pragma once

#include "rtl/ast.hpp"
#include "rtl/lexer.hpp"
#include "util/diagnostics.hpp"

#include <memory>
#include <set>
#include <vector>

namespace factor::rtl {

class Parser {
  public:
    Parser(std::vector<Token> tokens, util::DiagEngine& diags);

    /// Parse all modules in the token stream into `design`.
    void parse_into(Design& design);

    /// Convenience: lex + parse a source buffer.
    static void parse_source(std::string_view text, const std::string& file,
                             Design& design, util::DiagEngine& diags);

    /// Parse a standalone expression (testing hook). Returns null on error.
    [[nodiscard]] ExprPtr parse_standalone_expr();

  private:
    // --- token plumbing -----------------------------------------------------
    [[nodiscard]] const Token& peek(size_t ahead = 0) const;
    [[nodiscard]] bool at(TokKind k) const { return peek().kind == k; }
    const Token& advance();
    bool consume_if(TokKind k);
    /// Consume a token of kind `k` or report an error. Returns true if it
    /// was consumed.
    bool expect(TokKind k, const char* context);
    void error_here(const std::string& message);
    /// Skip tokens until after the next ';' (or a module boundary).
    void synchronize();

    // --- grammar ------------------------------------------------------------
    [[nodiscard]] std::unique_ptr<Module> parse_module();
    void parse_header_params(Module& m);
    void parse_port_list(Module& m, std::set<std::string>& pending_dirs);
    void parse_item(Module& m, std::set<std::string>& pending_dirs);
    void parse_port_decl(Module& m, std::set<std::string>& pending_dirs);
    void parse_net_decl(Module& m);
    void parse_param_decl(Module& m, bool local);
    void parse_cont_assign(Module& m);
    void parse_always(Module& m);
    void parse_instance(Module& m);
    [[nodiscard]] Range parse_range_opt();
    [[nodiscard]] StmtPtr parse_stmt();
    [[nodiscard]] StmtPtr parse_assign_stmt(bool expect_semi);

    [[nodiscard]] ExprPtr parse_expr();
    /// Restricted expression for assignment targets: identifier (with
    /// optional select) or a concatenation of lvalues. Using the full
    /// expression grammar here would mis-parse "q <= x" as a comparison.
    [[nodiscard]] ExprPtr parse_lvalue();
    [[nodiscard]] ExprPtr parse_ternary();
    [[nodiscard]] ExprPtr parse_binary(int min_prec);
    [[nodiscard]] ExprPtr parse_unary();
    [[nodiscard]] ExprPtr parse_primary();
    [[nodiscard]] ExprPtr parse_ident_expr();
    [[nodiscard]] ExprPtr parse_concat_or_replicate();

    /// Validate that `e` is a legal assignment target.
    [[nodiscard]] bool check_lvalue(const Expr& e);

    std::vector<Token> tokens_;
    size_t pos_ = 0;
    util::DiagEngine& diags_;
};

} // namespace factor::rtl
