// Token definitions for the Verilog-subset lexer.
#pragma once

#include "util/diagnostics.hpp"

#include <string>

namespace factor::rtl {

enum class TokKind {
    End,
    Ident,
    Number,     // full literal text, e.g. "8'hff" or "42"
    // Keywords
    KwModule, KwEndmodule, KwInput, KwOutput, KwInout,
    KwWire, KwReg, KwInteger, KwParameter, KwLocalparam,
    KwAssign, KwAlways, KwPosedge, KwNegedge, KwOr,
    KwBegin, KwEnd, KwIf, KwElse, KwCase, KwCasez, KwCasex,
    KwEndcase, KwDefault, KwFor, KwInitial, KwFunction, KwEndfunction,
    // Punctuation
    LParen, RParen, LBracket, RBracket, LBrace, RBrace,
    Semi, Comma, Colon, Dot, Hash, At, Question,
    // Operators
    Assign,      // =
    Plus, Minus, Star, Slash, Percent,
    Amp, AmpAmp, Pipe, PipePipe, Caret, TildeCaret,
    Tilde, Bang,
    EqEq, BangEq, EqEqEq, BangEqEq,
    Lt, LtEq, Gt, GtEq, Shl, Shr,
    NandRed,     // ~&
    NorRed,      // ~|
};

[[nodiscard]] const char* tok_kind_name(TokKind k);

struct Token {
    TokKind kind = TokKind::End;
    std::string text;
    util::SourceLoc loc;

    [[nodiscard]] bool is(TokKind k) const { return kind == k; }
};

} // namespace factor::rtl
