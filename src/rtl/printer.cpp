#include "rtl/printer.hpp"

#include "util/diagnostics.hpp"

#include <sstream>

namespace factor::rtl {

namespace {

void print_expr(std::ostream& os, const Expr& e);

void print_range(std::ostream& os, const Range& r) {
    if (r.valid()) {
        os << "[" << r.msb << ":" << r.lsb << "] ";
    } else if (r.msb_expr && r.lsb_expr) {
        os << "[" << to_verilog(*r.msb_expr) << ":" << to_verilog(*r.lsb_expr)
           << "] ";
    }
}

void print_expr(std::ostream& os, const Expr& e) {
    switch (e.kind) {
    case ExprKind::Number:
        // Unsized literals (parsed to the default 32 bits) read better and
        // round-trip identically as plain decimals.
        if (e.value.width() == 32) {
            os << e.value.value();
        } else {
            os << e.value.to_verilog();
        }
        break;
    case ExprKind::Ident:
        os << e.ident;
        break;
    case ExprKind::Unary:
        os << "(" << to_string(e.uop);
        print_expr(os, *e.ops[0]);
        os << ")";
        break;
    case ExprKind::Binary:
        os << "(";
        print_expr(os, *e.ops[0]);
        os << " " << to_string(e.bop) << " ";
        print_expr(os, *e.ops[1]);
        os << ")";
        break;
    case ExprKind::Ternary:
        os << "(";
        print_expr(os, *e.ops[0]);
        os << " ? ";
        print_expr(os, *e.ops[1]);
        os << " : ";
        print_expr(os, *e.ops[2]);
        os << ")";
        break;
    case ExprKind::Concat: {
        os << "{";
        for (size_t i = 0; i < e.ops.size(); ++i) {
            if (i != 0) os << ", ";
            print_expr(os, *e.ops[i]);
        }
        os << "}";
        break;
    }
    case ExprKind::Replicate:
        os << "{";
        if (e.rep_count > 0) {
            os << e.rep_count;
        } else if (e.ops.size() > 1) {
            print_expr(os, *e.ops[1]);
        }
        os << "{";
        print_expr(os, *e.ops[0]);
        os << "}}";
        break;
    case ExprKind::BitSelect:
        os << e.ident << "[";
        print_expr(os, *e.ops[0]);
        os << "]";
        break;
    case ExprKind::PartSelect:
        os << e.ident << "[";
        if (e.msb >= 0) {
            os << e.msb << ":" << e.lsb;
        } else if (e.ops.size() >= 2) {
            print_expr(os, *e.ops[0]);
            os << ":";
            print_expr(os, *e.ops[1]);
        }
        os << "]";
        break;
    }
}

std::string indent_str(int n) { return std::string(static_cast<size_t>(n) * 2, ' '); }

void print_stmt(std::ostream& os, const Stmt& s, int indent) {
    const std::string pad = indent_str(indent);
    switch (s.kind) {
    case StmtKind::Block:
        os << pad << "begin";
        if (!s.label.empty()) os << " : " << s.label;
        os << "\n";
        for (const auto& st : s.stmts) print_stmt(os, *st, indent + 1);
        os << pad << "end\n";
        break;
    case StmtKind::Assign:
        os << pad << to_verilog(*s.lhs) << (s.nonblocking ? " <= " : " = ")
           << to_verilog(*s.rhs) << ";\n";
        break;
    case StmtKind::If:
        os << pad << "if (" << to_verilog(*s.cond) << ")\n";
        if (s.then_s) {
            print_stmt(os, *s.then_s, indent + 1);
        } else {
            os << indent_str(indent + 1) << ";\n";
        }
        if (s.else_s) {
            os << pad << "else\n";
            print_stmt(os, *s.else_s, indent + 1);
        }
        break;
    case StmtKind::Case: {
        os << pad << (s.casez ? "casez" : "case") << " (" << to_verilog(*s.cond)
           << ")\n";
        for (const auto& item : s.items) {
            if (item.labels.empty()) {
                os << indent_str(indent + 1) << "default:\n";
            } else {
                os << indent_str(indent + 1);
                for (size_t i = 0; i < item.labels.size(); ++i) {
                    if (i != 0) os << ", ";
                    os << to_verilog(*item.labels[i]);
                }
                os << ":\n";
            }
            if (item.body) print_stmt(os, *item.body, indent + 2);
        }
        os << pad << "endcase\n";
        break;
    }
    case StmtKind::For: {
        auto inline_assign = [](const Stmt& a) {
            return to_verilog(*a.lhs) + " = " + to_verilog(*a.rhs);
        };
        os << pad << "for (" << (s.init ? inline_assign(*s.init) : "") << "; "
           << (s.cond ? to_verilog(*s.cond) : "") << "; "
           << (s.step ? inline_assign(*s.step) : "") << ")\n";
        if (s.body) print_stmt(os, *s.body, indent + 1);
        break;
    }
    case StmtKind::Null:
        os << pad << ";\n";
        break;
    }
}

} // namespace

std::string to_verilog(const Expr& e) {
    std::ostringstream os;
    print_expr(os, e);
    return os.str();
}

std::string to_verilog(const Stmt& s, int indent) {
    std::ostringstream os;
    print_stmt(os, s, indent);
    return os.str();
}

std::string to_verilog(const Module& m) {
    std::ostringstream os;
    os << "module " << m.name;
    if (!m.params.empty()) {
        bool any_nonlocal = false;
        for (const auto& p : m.params) any_nonlocal |= !p.local;
        if (any_nonlocal) {
            os << " #(";
            bool first = true;
            for (const auto& p : m.params) {
                if (p.local) continue;
                if (!first) os << ", ";
                first = false;
                os << "parameter " << p.name << " = " << to_verilog(*p.value);
            }
            os << ")";
        }
    }
    os << " (";
    for (size_t i = 0; i < m.ports.size(); ++i) {
        if (i != 0) os << ", ";
        const Port& p = m.ports[i];
        os << to_string(p.dir) << " ";
        if (p.is_reg) os << "reg ";
        print_range(os, p.range);
        os << p.name;
    }
    os << ");\n";

    for (const auto& p : m.params) {
        if (!p.local) continue;
        os << "  localparam " << p.name << " = " << to_verilog(*p.value)
           << ";\n";
    }
    for (const auto& d : m.nets) {
        os << "  " << (d.is_reg ? "reg " : "wire ");
        print_range(os, d.range);
        os << d.name << ";\n";
    }
    for (const auto& a : m.assigns) {
        os << "  assign " << to_verilog(*a.lhs) << " = " << to_verilog(*a.rhs)
           << ";\n";
    }
    for (const auto& b : m.always_blocks) {
        os << "  always @(";
        if (b.is_comb && b.sens.empty()) {
            os << "*";
        } else {
            for (size_t i = 0; i < b.sens.size(); ++i) {
                if (i != 0) os << " or ";
                if (b.sens[i].edge == EdgeKind::Pos) os << "posedge ";
                if (b.sens[i].edge == EdgeKind::Neg) os << "negedge ";
                os << b.sens[i].signal;
            }
        }
        os << ")\n";
        if (b.body) os << to_verilog(*b.body, 2);
    }
    for (const auto& inst : m.instances) {
        os << "  " << inst.module_name;
        if (!inst.param_overrides.empty()) {
            os << " #(";
            for (size_t i = 0; i < inst.param_overrides.size(); ++i) {
                if (i != 0) os << ", ";
                const auto& o = inst.param_overrides[i];
                if (!o.name.empty()) {
                    os << "." << o.name << "(" << to_verilog(*o.value) << ")";
                } else {
                    os << to_verilog(*o.value);
                }
            }
            os << ")";
        }
        os << " " << inst.inst_name << " (";
        for (size_t i = 0; i < inst.conns.size(); ++i) {
            if (i != 0) os << ", ";
            const auto& c = inst.conns[i];
            if (!c.port.empty()) {
                os << "." << c.port << "(";
                if (c.expr) os << to_verilog(*c.expr);
                os << ")";
            } else if (c.expr) {
                os << to_verilog(*c.expr);
            }
        }
        os << ");\n";
    }
    os << "endmodule\n";
    return os.str();
}

std::string to_verilog(const Design& d) {
    std::string out;
    for (const auto& m : d.modules) {
        out += to_verilog(*m);
        out += "\n";
    }
    return out;
}

} // namespace factor::rtl
