// Abstract syntax tree for the Verilog-subset front end.
//
// The tree mirrors the paper's Figure 2 "internal data structure": a module
// owns parameters, ports, nets, continuous assigns, always blocks and
// instances; statements inside always blocks form the conditional /
// loop / concurrency nesting that the extraction subroutines walk.
//
// Nodes use a flat tagged-struct representation (kind enum + owned child
// pointers). Every statement-level construct has a stable identity (its
// address within the owning module), which the def-use analysis uses to
// reference definitions and uses.
#pragma once

#include "util/bitvec.hpp"
#include "util/diagnostics.hpp"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace factor::rtl {

using util::SourceLoc;

// ---------------------------------------------------------------- Expressions

enum class ExprKind {
    Number,     // literal constant
    Ident,      // signal or parameter reference
    Unary,      // uop ops[0]
    Binary,     // ops[0] bop ops[1]
    Ternary,    // ops[0] ? ops[1] : ops[2]
    Concat,     // {ops...}
    Replicate,  // {rep_count{ops[0]}}
    BitSelect,  // ident[ops[0]]
    PartSelect, // ident[msb:lsb] (constant bounds)
};

enum class UnaryOp {
    Plus, Minus, LogNot, BitNot,
    RedAnd, RedOr, RedXor, RedNand, RedNor, RedXnor,
};

enum class BinaryOp {
    Add, Sub, Mul, Div, Mod,
    BitAnd, BitOr, BitXor, BitXnor,
    LogAnd, LogOr,
    Eq, Neq, CaseEq, CaseNeq,
    Lt, Le, Gt, Ge,
    Shl, Shr,
};

[[nodiscard]] const char* to_string(UnaryOp op);
[[nodiscard]] const char* to_string(BinaryOp op);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
    ExprKind kind = ExprKind::Number;
    SourceLoc loc;

    util::BitVec value;              // Number
    std::string ident;               // Ident / BitSelect / PartSelect base
    UnaryOp uop = UnaryOp::Plus;     // Unary
    BinaryOp bop = BinaryOp::Add;    // Binary
    std::vector<ExprPtr> ops;        // operands (see ExprKind comments)
    uint32_t rep_count = 0;          // Replicate
    int32_t msb = -1, lsb = -1;      // PartSelect bounds

    [[nodiscard]] bool is(ExprKind k) const { return kind == k; }
};

[[nodiscard]] ExprPtr make_number(util::BitVec v, SourceLoc loc = {});
[[nodiscard]] ExprPtr make_ident(std::string name, SourceLoc loc = {});
[[nodiscard]] ExprPtr make_unary(UnaryOp op, ExprPtr operand, SourceLoc loc = {});
[[nodiscard]] ExprPtr make_binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs,
                                  SourceLoc loc = {});
[[nodiscard]] ExprPtr make_ternary(ExprPtr cond, ExprPtr t, ExprPtr f,
                                   SourceLoc loc = {});
[[nodiscard]] ExprPtr make_bit_select(std::string base, ExprPtr index,
                                      SourceLoc loc = {});
[[nodiscard]] ExprPtr make_part_select(std::string base, int32_t msb,
                                       int32_t lsb, SourceLoc loc = {});

/// Deep copy.
[[nodiscard]] ExprPtr clone(const Expr& e);

/// Append every identifier referenced by `e` (including select bases and
/// index expressions) to `out`, in evaluation order, with repetition.
void collect_idents(const Expr& e, std::vector<std::string>& out);

/// True if the expression is a constant literal (possibly nested in
/// concat/replicate/unary of constants).
[[nodiscard]] bool is_constant_expr(const Expr& e);

// ----------------------------------------------------------------- Statements

enum class StmtKind {
    Block,    // begin ... end
    Assign,   // lhs = rhs (blocking) or lhs <= rhs (nonblocking)
    If,       // if (cond) then_s [else else_s]
    Case,     // case/casez (subject) items endcase
    For,      // for (init; cond; step) body
    Null,     // ;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct CaseItem {
    std::vector<ExprPtr> labels; // empty => default
    StmtPtr body;
};

struct Stmt {
    StmtKind kind = StmtKind::Null;
    SourceLoc loc;

    // Assign
    ExprPtr lhs;
    ExprPtr rhs;
    bool nonblocking = false;

    // If
    ExprPtr cond; // also: Case subject, For condition
    StmtPtr then_s;
    StmtPtr else_s;

    // Case
    std::vector<CaseItem> items;
    bool casez = false;

    // For
    StmtPtr init;
    StmtPtr step;
    StmtPtr body;

    // Block
    std::vector<StmtPtr> stmts;
    std::string label;
};

[[nodiscard]] StmtPtr clone(const Stmt& s);

// --------------------------------------------------------------- Module items

enum class PortDir { Input, Output, Inout };

[[nodiscard]] const char* to_string(PortDir d);

/// A vector range [msb:lsb]; invalid() means a 1-bit scalar.
///
/// Bounds may be parameterized expressions (e.g. [WIDTH-1:0]); the parser
/// stores the expressions and the elaborator folds them into the integer
/// msb/lsb fields, which all downstream passes rely on.
struct Range {
    int32_t msb = -1;
    int32_t lsb = -1;
    ExprPtr msb_expr; // null once resolved or for scalars
    ExprPtr lsb_expr;

    Range() = default;
    Range(int32_t m, int32_t l) : msb(m), lsb(l) {}

    [[nodiscard]] bool valid() const { return msb >= 0 && lsb >= 0; }
    [[nodiscard]] bool unresolved() const {
        return msb_expr != nullptr && !valid();
    }
    [[nodiscard]] uint32_t width() const {
        return valid() ? static_cast<uint32_t>(msb - lsb + 1) : 1u;
    }
    [[nodiscard]] Range cloned() const;
    [[nodiscard]] bool same_bounds(const Range& o) const {
        return msb == o.msb && lsb == o.lsb;
    }
};

struct Port {
    std::string name;
    PortDir dir = PortDir::Input;
    Range range;
    bool is_reg = false;
    SourceLoc loc;
};

struct NetDecl {
    std::string name;
    bool is_reg = false;
    Range range;
    SourceLoc loc;
};

struct ParamDecl {
    std::string name;
    ExprPtr value;
    bool local = false;
    SourceLoc loc;
};

struct ContAssign {
    ExprPtr lhs;
    ExprPtr rhs;
    SourceLoc loc;
    int id = -1; // stable index within owning module
};

enum class EdgeKind { Level, Pos, Neg };

struct SensItem {
    EdgeKind edge = EdgeKind::Level;
    std::string signal;
};

struct AlwaysBlock {
    bool is_comb = false;        // @(*) or level-sensitive list
    std::vector<SensItem> sens;  // empty when is_comb via @(*)
    StmtPtr body;
    SourceLoc loc;
    int id = -1;

    /// True when any sensitivity item is edge triggered.
    [[nodiscard]] bool is_sequential() const;
};

struct PortConn {
    std::string port; // empty for positional connections
    ExprPtr expr;     // null for explicitly open connections: .p()
};

struct ParamOverride {
    std::string name; // empty for positional overrides
    ExprPtr value;
};

struct Instance {
    std::string module_name;
    std::string inst_name;
    std::vector<ParamOverride> param_overrides;
    std::vector<PortConn> conns;
    SourceLoc loc;
    int id = -1;
};

struct Module {
    std::string name;
    std::vector<Port> ports;
    std::vector<NetDecl> nets;
    std::vector<ParamDecl> params;
    std::vector<ContAssign> assigns;
    std::vector<AlwaysBlock> always_blocks;
    std::vector<Instance> instances;
    SourceLoc loc;

    [[nodiscard]] const Port* find_port(const std::string& name) const;
    [[nodiscard]] const NetDecl* find_net(const std::string& name) const;
    [[nodiscard]] const ParamDecl* find_param(const std::string& name) const;
    [[nodiscard]] const Instance* find_instance(const std::string& inst) const;

    /// Declared width of a signal (port or net); 0 if unknown.
    [[nodiscard]] uint32_t signal_width(const std::string& name) const;
    /// Declared range of a signal; invalid Range for scalars/unknowns.
    [[nodiscard]] Range signal_range(const std::string& name) const;
    [[nodiscard]] bool is_port(const std::string& name) const {
        return find_port(name) != nullptr;
    }
};

/// Deep copy of a module (used to create parameter-specialized variants).
[[nodiscard]] std::unique_ptr<Module> clone(const Module& m);

/// A parsed source set: all modules, looked up by name.
struct Design {
    std::vector<std::unique_ptr<Module>> modules;

    [[nodiscard]] Module* find(const std::string& name) const;
    Module& add(std::unique_ptr<Module> m);
};

} // namespace factor::rtl
