#include "rtl/parser.hpp"

#include "rtl/const_eval.hpp"

#include <cassert>

namespace factor::rtl {

using util::BitVec;

namespace {

/// Binary operator precedence; higher binds tighter. Mirrors Verilog.
int binary_precedence(TokKind k) {
    switch (k) {
    case TokKind::PipePipe: return 1;
    case TokKind::AmpAmp: return 2;
    case TokKind::Pipe: return 3;
    case TokKind::Caret:
    case TokKind::TildeCaret: return 4;
    case TokKind::Amp: return 5;
    case TokKind::EqEq:
    case TokKind::BangEq:
    case TokKind::EqEqEq:
    case TokKind::BangEqEq: return 6;
    case TokKind::Lt:
    case TokKind::LtEq:
    case TokKind::Gt:
    case TokKind::GtEq: return 7;
    case TokKind::Shl:
    case TokKind::Shr: return 8;
    case TokKind::Plus:
    case TokKind::Minus: return 9;
    case TokKind::Star:
    case TokKind::Slash:
    case TokKind::Percent: return 10;
    default: return -1;
    }
}

BinaryOp binary_op_for(TokKind k) {
    switch (k) {
    case TokKind::PipePipe: return BinaryOp::LogOr;
    case TokKind::AmpAmp: return BinaryOp::LogAnd;
    case TokKind::Pipe: return BinaryOp::BitOr;
    case TokKind::Caret: return BinaryOp::BitXor;
    case TokKind::TildeCaret: return BinaryOp::BitXnor;
    case TokKind::Amp: return BinaryOp::BitAnd;
    case TokKind::EqEq: return BinaryOp::Eq;
    case TokKind::BangEq: return BinaryOp::Neq;
    case TokKind::EqEqEq: return BinaryOp::CaseEq;
    case TokKind::BangEqEq: return BinaryOp::CaseNeq;
    case TokKind::Lt: return BinaryOp::Lt;
    case TokKind::LtEq: return BinaryOp::Le;
    case TokKind::Gt: return BinaryOp::Gt;
    case TokKind::GtEq: return BinaryOp::Ge;
    case TokKind::Shl: return BinaryOp::Shl;
    case TokKind::Shr: return BinaryOp::Shr;
    case TokKind::Plus: return BinaryOp::Add;
    case TokKind::Minus: return BinaryOp::Sub;
    case TokKind::Star: return BinaryOp::Mul;
    case TokKind::Slash: return BinaryOp::Div;
    case TokKind::Percent: return BinaryOp::Mod;
    default: break;
    }
    assert(false && "not a binary operator token");
    return BinaryOp::Add;
}

} // namespace

Parser::Parser(std::vector<Token> tokens, util::DiagEngine& diags)
    : tokens_(std::move(tokens)), diags_(diags) {
    assert(!tokens_.empty() && tokens_.back().kind == TokKind::End);
}

const Token& Parser::peek(size_t ahead) const {
    size_t i = pos_ + ahead;
    if (i >= tokens_.size()) i = tokens_.size() - 1;
    return tokens_[i];
}

const Token& Parser::advance() {
    const Token& t = tokens_[pos_];
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return t;
}

bool Parser::consume_if(TokKind k) {
    if (at(k)) {
        advance();
        return true;
    }
    return false;
}

bool Parser::expect(TokKind k, const char* context) {
    if (consume_if(k)) return true;
    diags_.error(peek().loc, std::string("expected ") + tok_kind_name(k) +
                                 " in " + context + ", got " +
                                 tok_kind_name(peek().kind) +
                                 (peek().text.empty() ? "" : " '" + peek().text + "'"));
    return false;
}

void Parser::error_here(const std::string& message) {
    diags_.error(peek().loc, message);
}

void Parser::synchronize() {
    while (!at(TokKind::End) && !at(TokKind::KwEndmodule) &&
           !at(TokKind::KwModule)) {
        if (advance().kind == TokKind::Semi) return;
    }
}

void Parser::parse_into(Design& design) {
    while (!at(TokKind::End)) {
        if (at(TokKind::KwModule)) {
            auto m = parse_module();
            if (m) {
                if (design.find(m->name) != nullptr) {
                    diags_.error(m->loc, "duplicate module '" + m->name + "'");
                } else {
                    design.add(std::move(m));
                }
            }
        } else {
            error_here("expected 'module' at top level");
            advance();
        }
    }
}

void Parser::parse_source(std::string_view text, const std::string& file,
                          Design& design, util::DiagEngine& diags) {
    Lexer lexer(text, file, diags);
    Parser parser(lexer.tokenize(), diags);
    parser.parse_into(design);
}

ExprPtr Parser::parse_standalone_expr() {
    auto e = parse_expr();
    if (!at(TokKind::End)) {
        error_here("trailing tokens after expression");
    }
    return e;
}

std::unique_ptr<Module> Parser::parse_module() {
    auto m = std::make_unique<Module>();
    m->loc = peek().loc;
    expect(TokKind::KwModule, "module declaration");
    if (!at(TokKind::Ident)) {
        error_here("expected module name");
        synchronize();
        return nullptr;
    }
    m->name = advance().text;

    if (at(TokKind::Hash)) parse_header_params(*m);

    std::set<std::string> pending_dirs;
    if (consume_if(TokKind::LParen)) {
        if (!at(TokKind::RParen)) parse_port_list(*m, pending_dirs);
        expect(TokKind::RParen, "module port list");
    }
    expect(TokKind::Semi, "module header");

    while (!at(TokKind::KwEndmodule) && !at(TokKind::End)) {
        parse_item(*m, pending_dirs);
    }
    expect(TokKind::KwEndmodule, "module body");

    for (const auto& name : pending_dirs) {
        diags_.error(m->loc, "port '" + name + "' of module '" + m->name +
                                 "' has no direction declaration");
    }
    return m;
}

void Parser::parse_header_params(Module& m) {
    expect(TokKind::Hash, "parameter header");
    expect(TokKind::LParen, "parameter header");
    while (!at(TokKind::RParen) && !at(TokKind::End)) {
        consume_if(TokKind::KwParameter);
        // Parameters may declare a range which we ignore for value params.
        if (at(TokKind::LBracket)) (void)parse_range_opt();
        if (!at(TokKind::Ident)) {
            error_here("expected parameter name");
            synchronize();
            return;
        }
        ParamDecl p;
        p.loc = peek().loc;
        p.name = advance().text;
        expect(TokKind::Assign, "parameter declaration");
        p.value = parse_expr();
        m.params.push_back(std::move(p));
        if (!consume_if(TokKind::Comma)) break;
    }
    expect(TokKind::RParen, "parameter header");
}

void Parser::parse_port_list(Module& m, std::set<std::string>& pending_dirs) {
    // Two styles:
    //   ANSI:     (input wire [3:0] a, b, output reg c)
    //   non-ANSI: (a, b, c) with directions declared in the body.
    PortDir dir = PortDir::Input;
    bool have_ansi_ctx = false;
    bool is_reg = false;
    Range range;

    while (true) {
        if (at(TokKind::KwInput) || at(TokKind::KwOutput) ||
            at(TokKind::KwInout)) {
            TokKind k = advance().kind;
            dir = k == TokKind::KwInput    ? PortDir::Input
                  : k == TokKind::KwOutput ? PortDir::Output
                                           : PortDir::Inout;
            have_ansi_ctx = true;
            is_reg = false;
            consume_if(TokKind::KwWire);
            if (consume_if(TokKind::KwReg)) is_reg = true;
            range = parse_range_opt();
        }
        if (!at(TokKind::Ident)) {
            error_here("expected port name");
            return;
        }
        Port p;
        p.loc = peek().loc;
        p.name = advance().text;
        p.dir = dir;
        p.is_reg = is_reg;
        p.range = range.cloned();
        if (!have_ansi_ctx) pending_dirs.insert(p.name);
        if (m.find_port(p.name) != nullptr) {
            diags_.error(p.loc, "duplicate port '" + p.name + "'");
        } else {
            m.ports.push_back(std::move(p));
        }
        if (!consume_if(TokKind::Comma)) break;
    }
}

void Parser::parse_item(Module& m, std::set<std::string>& pending_dirs) {
    switch (peek().kind) {
    case TokKind::KwInput:
    case TokKind::KwOutput:
    case TokKind::KwInout:
        parse_port_decl(m, pending_dirs);
        break;
    case TokKind::KwWire:
    case TokKind::KwReg:
    case TokKind::KwInteger:
        parse_net_decl(m);
        break;
    case TokKind::KwParameter:
        advance();
        parse_param_decl(m, /*local=*/false);
        break;
    case TokKind::KwLocalparam:
        advance();
        parse_param_decl(m, /*local=*/true);
        break;
    case TokKind::KwAssign:
        parse_cont_assign(m);
        break;
    case TokKind::KwAlways:
        parse_always(m);
        break;
    case TokKind::Ident:
        parse_instance(m);
        break;
    case TokKind::KwInitial:
        error_here("'initial' blocks are not part of the synthesizable subset");
        synchronize();
        break;
    case TokKind::KwFunction:
        error_here("functions are not supported; inline the logic");
        while (!at(TokKind::KwEndfunction) && !at(TokKind::End)) advance();
        consume_if(TokKind::KwEndfunction);
        break;
    default:
        error_here(std::string("unexpected token ") +
                   tok_kind_name(peek().kind) + " in module body");
        synchronize();
        break;
    }
}

void Parser::parse_port_decl(Module& m, std::set<std::string>& pending_dirs) {
    TokKind k = advance().kind;
    PortDir dir = k == TokKind::KwInput    ? PortDir::Input
                  : k == TokKind::KwOutput ? PortDir::Output
                                           : PortDir::Inout;
    bool is_reg = false;
    consume_if(TokKind::KwWire);
    if (consume_if(TokKind::KwReg)) is_reg = true;
    Range range = parse_range_opt();

    while (true) {
        if (!at(TokKind::Ident)) {
            error_here("expected port name in direction declaration");
            synchronize();
            return;
        }
        auto loc = peek().loc;
        std::string name = advance().text;
        bool found = false;
        for (auto& p : m.ports) {
            if (p.name == name) {
                p.dir = dir;
                p.is_reg = is_reg;
                p.range = range.cloned();
                pending_dirs.erase(name);
                found = true;
                break;
            }
        }
        if (!found) {
            diags_.error(loc, "direction declared for '" + name +
                                  "' which is not in the port list");
        }
        if (!consume_if(TokKind::Comma)) break;
    }
    expect(TokKind::Semi, "port declaration");
}

void Parser::parse_net_decl(Module& m) {
    TokKind k = advance().kind;
    bool is_reg = k != TokKind::KwWire;
    Range range;
    if (k == TokKind::KwInteger) {
        range = Range(31, 0);
    } else {
        range = parse_range_opt();
    }

    while (true) {
        if (!at(TokKind::Ident)) {
            error_here("expected net name in declaration");
            synchronize();
            return;
        }
        NetDecl d;
        d.loc = peek().loc;
        d.name = advance().text;
        d.is_reg = is_reg;
        d.range = range.cloned();
        if (m.find_net(d.name) != nullptr || m.find_port(d.name) != nullptr) {
            diags_.error(d.loc, "duplicate declaration of '" + d.name + "'");
        }
        std::string name = d.name;
        auto loc = d.loc;
        m.nets.push_back(std::move(d));
        // Declaration assignment: wire x = expr;
        if (consume_if(TokKind::Assign)) {
            ContAssign ca;
            ca.lhs = make_ident(name, loc);
            ca.rhs = parse_expr();
            ca.loc = loc;
            ca.id = static_cast<int>(m.assigns.size());
            if (is_reg) {
                diags_.error(loc, "declaration assignment on reg '" + name +
                                      "' is not supported");
            } else {
                m.assigns.push_back(std::move(ca));
            }
        }
        if (!consume_if(TokKind::Comma)) break;
    }
    expect(TokKind::Semi, "net declaration");
}

void Parser::parse_param_decl(Module& m, bool local) {
    while (true) {
        if (at(TokKind::LBracket)) (void)parse_range_opt();
        if (!at(TokKind::Ident)) {
            error_here("expected parameter name");
            synchronize();
            return;
        }
        ParamDecl p;
        p.loc = peek().loc;
        p.name = advance().text;
        p.local = local;
        expect(TokKind::Assign, "parameter declaration");
        p.value = parse_expr();
        if (m.find_param(p.name) != nullptr) {
            diags_.error(p.loc, "duplicate parameter '" + p.name + "'");
        } else {
            m.params.push_back(std::move(p));
        }
        if (!consume_if(TokKind::Comma)) break;
    }
    expect(TokKind::Semi, "parameter declaration");
}

void Parser::parse_cont_assign(Module& m) {
    expect(TokKind::KwAssign, "continuous assignment");
    while (true) {
        ContAssign ca;
        ca.loc = peek().loc;
        ca.lhs = parse_lvalue();
        if (ca.lhs && !check_lvalue(*ca.lhs)) {
            diags_.error(ca.loc, "illegal target of continuous assignment");
        }
        expect(TokKind::Assign, "continuous assignment");
        ca.rhs = parse_expr();
        ca.id = static_cast<int>(m.assigns.size());
        if (ca.lhs && ca.rhs) m.assigns.push_back(std::move(ca));
        if (!consume_if(TokKind::Comma)) break;
    }
    expect(TokKind::Semi, "continuous assignment");
}

void Parser::parse_always(Module& m) {
    AlwaysBlock b;
    b.loc = peek().loc;
    expect(TokKind::KwAlways, "always block");
    expect(TokKind::At, "always block");
    if (consume_if(TokKind::Star)) {
        b.is_comb = true;
    } else {
        expect(TokKind::LParen, "sensitivity list");
        if (consume_if(TokKind::Star)) {
            b.is_comb = true;
        } else {
            while (true) {
                SensItem s;
                if (consume_if(TokKind::KwPosedge)) {
                    s.edge = EdgeKind::Pos;
                } else if (consume_if(TokKind::KwNegedge)) {
                    s.edge = EdgeKind::Neg;
                }
                if (!at(TokKind::Ident)) {
                    error_here("expected signal in sensitivity list");
                    break;
                }
                s.signal = advance().text;
                b.sens.push_back(std::move(s));
                if (!consume_if(TokKind::KwOr) && !consume_if(TokKind::Comma)) {
                    break;
                }
            }
            if (!b.sens.empty() && !b.is_sequential()) b.is_comb = true;
        }
        expect(TokKind::RParen, "sensitivity list");
    }
    b.body = parse_stmt();
    b.id = static_cast<int>(m.always_blocks.size());
    if (b.body) m.always_blocks.push_back(std::move(b));
}

void Parser::parse_instance(Module& m) {
    Instance inst;
    inst.loc = peek().loc;
    inst.module_name = advance().text;

    if (consume_if(TokKind::Hash)) {
        expect(TokKind::LParen, "parameter overrides");
        while (!at(TokKind::RParen) && !at(TokKind::End)) {
            ParamOverride o;
            if (consume_if(TokKind::Dot)) {
                if (!at(TokKind::Ident)) {
                    error_here("expected parameter name after '.'");
                    break;
                }
                o.name = advance().text;
                expect(TokKind::LParen, "parameter override");
                o.value = parse_expr();
                expect(TokKind::RParen, "parameter override");
            } else {
                o.value = parse_expr();
            }
            inst.param_overrides.push_back(std::move(o));
            if (!consume_if(TokKind::Comma)) break;
        }
        expect(TokKind::RParen, "parameter overrides");
    }

    if (!at(TokKind::Ident)) {
        error_here("expected instance name");
        synchronize();
        return;
    }
    inst.inst_name = advance().text;

    expect(TokKind::LParen, "instance connections");
    if (!at(TokKind::RParen)) {
        while (true) {
            PortConn c;
            if (consume_if(TokKind::Dot)) {
                if (!at(TokKind::Ident)) {
                    error_here("expected port name after '.'");
                    break;
                }
                c.port = advance().text;
                expect(TokKind::LParen, "port connection");
                if (!at(TokKind::RParen)) c.expr = parse_expr();
                expect(TokKind::RParen, "port connection");
            } else {
                c.expr = parse_expr();
            }
            inst.conns.push_back(std::move(c));
            if (!consume_if(TokKind::Comma)) break;
        }
    }
    expect(TokKind::RParen, "instance connections");
    expect(TokKind::Semi, "instance");

    if (m.find_instance(inst.inst_name) != nullptr) {
        diags_.error(inst.loc, "duplicate instance name '" + inst.inst_name + "'");
        return;
    }
    inst.id = static_cast<int>(m.instances.size());
    m.instances.push_back(std::move(inst));
}

Range Parser::parse_range_opt() {
    Range r;
    if (!consume_if(TokKind::LBracket)) return r;
    r.msb_expr = parse_expr();
    expect(TokKind::Colon, "range");
    r.lsb_expr = parse_expr();
    expect(TokKind::RBracket, "range");
    // Resolve literal bounds right away; parameterized bounds resolve at
    // elaboration.
    ConstEnv empty;
    if (r.msb_expr && r.lsb_expr) {
        auto m = const_eval_int(*r.msb_expr, empty);
        auto l = const_eval_int(*r.lsb_expr, empty);
        if (m && l) {
            r.msb = *m;
            r.lsb = *l;
            r.msb_expr.reset();
            r.lsb_expr.reset();
        }
    }
    return r;
}

StmtPtr Parser::parse_stmt() {
    auto loc = peek().loc;
    switch (peek().kind) {
    case TokKind::KwBegin: {
        advance();
        auto s = std::make_unique<Stmt>();
        s->kind = StmtKind::Block;
        s->loc = loc;
        if (consume_if(TokKind::Colon)) {
            if (at(TokKind::Ident)) s->label = advance().text;
        }
        while (!at(TokKind::KwEnd) && !at(TokKind::End)) {
            auto inner = parse_stmt();
            if (!inner) break;
            s->stmts.push_back(std::move(inner));
        }
        expect(TokKind::KwEnd, "begin/end block");
        return s;
    }
    case TokKind::KwIf: {
        advance();
        auto s = std::make_unique<Stmt>();
        s->kind = StmtKind::If;
        s->loc = loc;
        expect(TokKind::LParen, "if statement");
        s->cond = parse_expr();
        expect(TokKind::RParen, "if statement");
        s->then_s = parse_stmt();
        if (consume_if(TokKind::KwElse)) s->else_s = parse_stmt();
        return s;
    }
    case TokKind::KwCase:
    case TokKind::KwCasez:
    case TokKind::KwCasex: {
        bool z = peek().kind != TokKind::KwCase;
        advance();
        auto s = std::make_unique<Stmt>();
        s->kind = StmtKind::Case;
        s->casez = z;
        s->loc = loc;
        expect(TokKind::LParen, "case statement");
        s->cond = parse_expr();
        expect(TokKind::RParen, "case statement");
        while (!at(TokKind::KwEndcase) && !at(TokKind::End)) {
            CaseItem item;
            if (consume_if(TokKind::KwDefault)) {
                consume_if(TokKind::Colon);
            } else {
                while (true) {
                    item.labels.push_back(parse_expr());
                    if (!consume_if(TokKind::Comma)) break;
                }
                expect(TokKind::Colon, "case item");
            }
            item.body = parse_stmt();
            s->items.push_back(std::move(item));
        }
        expect(TokKind::KwEndcase, "case statement");
        return s;
    }
    case TokKind::KwFor: {
        advance();
        auto s = std::make_unique<Stmt>();
        s->kind = StmtKind::For;
        s->loc = loc;
        expect(TokKind::LParen, "for loop");
        s->init = parse_assign_stmt(/*expect_semi=*/false);
        expect(TokKind::Semi, "for loop");
        s->cond = parse_expr();
        expect(TokKind::Semi, "for loop");
        s->step = parse_assign_stmt(/*expect_semi=*/false);
        expect(TokKind::RParen, "for loop");
        s->body = parse_stmt();
        return s;
    }
    case TokKind::Semi: {
        advance();
        auto s = std::make_unique<Stmt>();
        s->kind = StmtKind::Null;
        s->loc = loc;
        return s;
    }
    case TokKind::Ident:
    case TokKind::LBrace:
        return parse_assign_stmt(/*expect_semi=*/true);
    default:
        error_here(std::string("unexpected token ") +
                   tok_kind_name(peek().kind) + " at start of statement");
        synchronize();
        return nullptr;
    }
}

StmtPtr Parser::parse_assign_stmt(bool expect_semi) {
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::Assign;
    s->loc = peek().loc;
    s->lhs = parse_lvalue();
    if (s->lhs && !check_lvalue(*s->lhs)) {
        diags_.error(s->loc, "illegal assignment target");
    }
    if (consume_if(TokKind::LtEq)) {
        s->nonblocking = true;
    } else {
        expect(TokKind::Assign, "assignment");
    }
    s->rhs = parse_expr();
    if (expect_semi) expect(TokKind::Semi, "assignment");
    if (!s->lhs || !s->rhs) return nullptr;
    return s;
}

ExprPtr Parser::parse_expr() { return parse_ternary(); }

ExprPtr Parser::parse_lvalue() {
    auto loc = peek().loc;
    if (at(TokKind::Ident)) return parse_ident_expr();
    if (consume_if(TokKind::LBrace)) {
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::Concat;
        e->loc = loc;
        while (true) {
            auto part = parse_lvalue();
            if (!part) return nullptr;
            e->ops.push_back(std::move(part));
            if (!consume_if(TokKind::Comma)) break;
        }
        expect(TokKind::RBrace, "lvalue concatenation");
        return e;
    }
    error_here("expected an assignment target");
    return nullptr;
}

ExprPtr Parser::parse_ternary() {
    auto cond = parse_binary(1);
    if (!cond) return nullptr;
    if (!consume_if(TokKind::Question)) return cond;
    auto loc = cond->loc;
    auto t = parse_ternary();
    expect(TokKind::Colon, "conditional expression");
    auto f = parse_ternary();
    if (!t || !f) return nullptr;
    return make_ternary(std::move(cond), std::move(t), std::move(f), loc);
}

ExprPtr Parser::parse_binary(int min_prec) {
    auto lhs = parse_unary();
    if (!lhs) return nullptr;
    while (true) {
        int prec = binary_precedence(peek().kind);
        if (prec < min_prec) return lhs;
        TokKind op_tok = advance().kind;
        auto rhs = parse_binary(prec + 1);
        if (!rhs) return nullptr;
        auto loc = lhs->loc;
        lhs = make_binary(binary_op_for(op_tok), std::move(lhs),
                          std::move(rhs), loc);
    }
}

ExprPtr Parser::parse_unary() {
    auto loc = peek().loc;
    UnaryOp op;
    switch (peek().kind) {
    case TokKind::Plus: op = UnaryOp::Plus; break;
    case TokKind::Minus: op = UnaryOp::Minus; break;
    case TokKind::Bang: op = UnaryOp::LogNot; break;
    case TokKind::Tilde: op = UnaryOp::BitNot; break;
    case TokKind::Amp: op = UnaryOp::RedAnd; break;
    case TokKind::Pipe: op = UnaryOp::RedOr; break;
    case TokKind::Caret: op = UnaryOp::RedXor; break;
    case TokKind::NandRed: op = UnaryOp::RedNand; break;
    case TokKind::NorRed: op = UnaryOp::RedNor; break;
    case TokKind::TildeCaret: op = UnaryOp::RedXnor; break;
    default:
        return parse_primary();
    }
    advance();
    auto operand = parse_unary();
    if (!operand) return nullptr;
    return make_unary(op, std::move(operand), loc);
}

ExprPtr Parser::parse_primary() {
    auto loc = peek().loc;
    switch (peek().kind) {
    case TokKind::Number: {
        BitVec v;
        std::string text = advance().text;
        if (!BitVec::parse_verilog(text, v)) {
            diags_.error(loc, "malformed number literal '" + text + "'");
            return nullptr;
        }
        return make_number(v, loc);
    }
    case TokKind::Ident:
        return parse_ident_expr();
    case TokKind::LParen: {
        advance();
        auto e = parse_expr();
        expect(TokKind::RParen, "parenthesized expression");
        return e;
    }
    case TokKind::LBrace:
        return parse_concat_or_replicate();
    default:
        error_here(std::string("unexpected token ") +
                   tok_kind_name(peek().kind) + " in expression");
        return nullptr;
    }
}

ExprPtr Parser::parse_ident_expr() {
    auto loc = peek().loc;
    std::string name = advance().text;
    if (!consume_if(TokKind::LBracket)) return make_ident(std::move(name), loc);

    auto first = parse_expr();
    if (!first) return nullptr;
    if (consume_if(TokKind::Colon)) {
        auto second = parse_expr();
        expect(TokKind::RBracket, "part select");
        if (!second) return nullptr;
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::PartSelect;
        e->loc = loc;
        e->ident = std::move(name);
        // Resolve literal bounds immediately; parameterized bounds are kept
        // as ops[0]/ops[1] for the elaborator.
        ConstEnv empty;
        auto m = const_eval_int(*first, empty);
        auto l = const_eval_int(*second, empty);
        if (m && l) {
            e->msb = *m;
            e->lsb = *l;
        }
        e->ops.push_back(std::move(first));
        e->ops.push_back(std::move(second));
        return e;
    }
    expect(TokKind::RBracket, "bit select");
    return make_bit_select(std::move(name), std::move(first), loc);
}

ExprPtr Parser::parse_concat_or_replicate() {
    auto loc = peek().loc;
    expect(TokKind::LBrace, "concatenation");
    auto first = parse_expr();
    if (!first) return nullptr;

    if (at(TokKind::LBrace)) {
        // Replication: {count{expr}}
        advance();
        auto inner = parse_expr();
        expect(TokKind::RBrace, "replication");
        expect(TokKind::RBrace, "replication");
        if (!inner) return nullptr;
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::Replicate;
        e->loc = loc;
        e->ops.push_back(std::move(inner));
        ConstEnv empty;
        if (auto n = const_eval_int(*first, empty); n && *n > 0) {
            e->rep_count = static_cast<uint32_t>(*n);
        } else {
            // Parameterized count: keep the expression for the elaborator.
            e->rep_count = 0;
            e->ops.push_back(std::move(first));
        }
        return e;
    }

    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::Concat;
    e->loc = loc;
    e->ops.push_back(std::move(first));
    while (consume_if(TokKind::Comma)) {
        auto part = parse_expr();
        if (!part) return nullptr;
        e->ops.push_back(std::move(part));
    }
    expect(TokKind::RBrace, "concatenation");
    return e;
}

bool Parser::check_lvalue(const Expr& e) {
    switch (e.kind) {
    case ExprKind::Ident:
    case ExprKind::BitSelect:
    case ExprKind::PartSelect:
        return true;
    case ExprKind::Concat: {
        for (const auto& op : e.ops) {
            if (!check_lvalue(*op)) return false;
        }
        return !e.ops.empty();
    }
    default:
        return false;
    }
}

} // namespace factor::rtl
