// Constant-expression evaluation over an environment of named constants
// (module parameters). Used by the elaborator to resolve ranges, part-select
// bounds and parameter values, and by the synthesizer for constant folding.
#pragma once

#include "rtl/ast.hpp"
#include "util/bitvec.hpp"

#include <map>
#include <optional>
#include <string>

namespace factor::rtl {

using ConstEnv = std::map<std::string, util::BitVec>;

/// Evaluate `e` if every leaf is a literal or a name bound in `env`.
/// Returns nullopt for non-constant expressions or evaluation errors
/// (division by zero, width overflow).
[[nodiscard]] std::optional<util::BitVec> const_eval(const Expr& e,
                                                     const ConstEnv& env);

/// Evaluate to a signed 32-bit integer (for range bounds / replication
/// counts). Returns nullopt if not constant or out of range.
[[nodiscard]] std::optional<int32_t> const_eval_int(const Expr& e,
                                                    const ConstEnv& env);

} // namespace factor::rtl
