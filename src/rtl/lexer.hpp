// Lexer for the synthesizable Verilog subset accepted by FACTOR.
#pragma once

#include "rtl/token.hpp"
#include "util/diagnostics.hpp"

#include <string>
#include <string_view>
#include <vector>

namespace factor::rtl {

class Lexer {
  public:
    /// `file` is used only for diagnostics.
    Lexer(std::string_view text, std::string file, util::DiagEngine& diags);

    /// Tokenize the whole buffer. The returned vector always ends with an
    /// End token. Lexical errors are reported to the DiagEngine and the
    /// offending character is skipped.
    [[nodiscard]] std::vector<Token> tokenize();

  private:
    [[nodiscard]] util::SourceLoc loc() const;
    [[nodiscard]] char peek(size_t ahead = 0) const;
    char advance();
    [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
    void skip_whitespace_and_comments();
    [[nodiscard]] Token lex_identifier_or_keyword();
    [[nodiscard]] Token lex_number();
    [[nodiscard]] Token lex_operator();

    std::string_view text_;
    std::string file_;
    util::DiagEngine& diags_;
    size_t pos_ = 0;
    uint32_t line_ = 1;
    uint32_t col_ = 1;
};

} // namespace factor::rtl
