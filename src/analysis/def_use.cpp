#include "analysis/def_use.hpp"

#include "util/diagnostics.hpp"

#include <algorithm>
#include <sstream>

namespace factor::analysis {

namespace {

void dedup(std::vector<std::string>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
}

} // namespace

void collect_lvalue_signals(const rtl::Expr& lhs, std::vector<std::string>& out) {
    switch (lhs.kind) {
    case rtl::ExprKind::Ident:
    case rtl::ExprKind::BitSelect:
    case rtl::ExprKind::PartSelect:
        out.push_back(lhs.ident);
        break;
    case rtl::ExprKind::Concat:
        for (const auto& op : lhs.ops) collect_lvalue_signals(*op, out);
        break;
    default:
        break;
    }
}

void collect_lvalue_index_signals(const rtl::Expr& lhs,
                                  std::vector<std::string>& out) {
    if (lhs.kind == rtl::ExprKind::BitSelect) {
        rtl::collect_idents(*lhs.ops[0], out);
    } else if (lhs.kind == rtl::ExprKind::Concat) {
        for (const auto& op : lhs.ops) collect_lvalue_index_signals(*op, out);
    }
}

void collect_lhs_signals(const rtl::Stmt& s, std::vector<std::string>& out) {
    if (s.kind == rtl::StmtKind::Assign && s.lhs) {
        collect_lvalue_signals(*s.lhs, out);
    }
    if (s.then_s) collect_lhs_signals(*s.then_s, out);
    if (s.else_s) collect_lhs_signals(*s.else_s, out);
    if (s.body) collect_lhs_signals(*s.body, out);
    for (const auto& item : s.items) {
        if (item.body) collect_lhs_signals(*item.body, out);
    }
    for (const auto& st : s.stmts) {
        if (st) collect_lhs_signals(*st, out);
    }
}

util::SourceLoc SiteRef::loc() const {
    switch (kind) {
    case SiteKind::ContAssign: return assign != nullptr ? assign->loc : util::SourceLoc{};
    case SiteKind::ProcAssign: return stmt != nullptr ? stmt->loc : util::SourceLoc{};
    case SiteKind::InstanceConn: return inst != nullptr ? inst->loc : util::SourceLoc{};
    case SiteKind::Port: return port != nullptr ? port->loc : util::SourceLoc{};
    }
    return {};
}

std::string SiteRef::describe() const {
    std::ostringstream os;
    switch (kind) {
    case SiteKind::ContAssign:
        os << "continuous assignment at " << loc().str();
        break;
    case SiteKind::ProcAssign:
        os << "procedural assignment at " << loc().str();
        break;
    case SiteKind::InstanceConn:
        os << "port '" << (conn != nullptr ? conn->port : "?")
           << "' of instance '" << (inst != nullptr ? inst->inst_name : "?")
           << "' at " << loc().str();
        break;
    case SiteKind::Port:
        os << (port != nullptr ? std::string(to_string(port->dir)) : "?")
           << " port '" << (port != nullptr ? port->name : "?") << "'";
        break;
    }
    return os.str();
}

ModuleAnalysis::ModuleAnalysis(const rtl::Module& m) : module_(m) {
    scan_ports();
    scan_cont_assigns();
    scan_always_blocks();
    scan_instances();
}

void ModuleAnalysis::add_def(const std::string& signal, SiteRef site) {
    auto& v = defs_[signal];
    if (std::find(v.begin(), v.end(), site) == v.end()) v.push_back(site);
}

void ModuleAnalysis::add_use(const std::string& signal, SiteRef site) {
    auto& v = uses_[signal];
    if (std::find(v.begin(), v.end(), site) == v.end()) v.push_back(site);
}

void ModuleAnalysis::scan_ports() {
    for (const auto& p : module_.ports) {
        SiteRef site;
        site.kind = SiteKind::Port;
        site.port = &p;
        if (p.dir == rtl::PortDir::Input) {
            add_def(p.name, site);
        } else if (p.dir == rtl::PortDir::Output) {
            add_use(p.name, site);
        } else {
            add_def(p.name, site);
            add_use(p.name, site);
        }
    }
}

void ModuleAnalysis::scan_cont_assigns() {
    for (const auto& a : module_.assigns) {
        SiteRef site;
        site.kind = SiteKind::ContAssign;
        site.assign = &a;
        std::vector<std::string> written;
        collect_lvalue_signals(*a.lhs, written);
        for (const auto& s : written) add_def(s, site);
        std::vector<std::string> read;
        rtl::collect_idents(*a.rhs, read);
        collect_lvalue_index_signals(*a.lhs, read);
        dedup(read);
        for (const auto& s : read) add_use(s, site);
    }
}

void ModuleAnalysis::scan_always_blocks() {
    for (const auto& b : module_.always_blocks) {
        if (!b.body) continue;
        std::vector<const rtl::Stmt*> stack;
        scan_stmt(b, *b.body, stack);
    }
}

void ModuleAnalysis::scan_stmt(const rtl::AlwaysBlock& block,
                               const rtl::Stmt& s,
                               std::vector<const rtl::Stmt*>& stack) {
    switch (s.kind) {
    case rtl::StmtKind::Assign: {
        SiteRef site;
        site.kind = SiteKind::ProcAssign;
        site.block = &block;
        site.stmt = &s;
        owner_[&s] = &block;
        enclosing_[&s] = stack;

        std::vector<std::string> written;
        collect_lvalue_signals(*s.lhs, written);
        // Loop induction variables are compile-time names, not signals.
        for (const auto& w : written) {
            if (std::find(loop_vars_.begin(), loop_vars_.end(), w) ==
                loop_vars_.end()) {
                add_def(w, site);
            }
        }
        std::vector<std::string> read;
        rtl::collect_idents(*s.rhs, read);
        collect_lvalue_index_signals(*s.lhs, read);
        // Control dependence: signals in enclosing conditions influence this
        // assignment, so they count as uses here. This is what lets
        // find_prop_paths follow a MUT output that steers control logic.
        for (const rtl::Stmt* enc : stack) {
            if (enc->cond) rtl::collect_idents(*enc->cond, read);
        }
        // The sensitivity list (clock/reset edges) gates the assignment too.
        for (const auto& sens : block.sens) read.push_back(sens.signal);
        dedup(read);
        for (const auto& r : read) {
            if (std::find(loop_vars_.begin(), loop_vars_.end(), r) ==
                loop_vars_.end()) {
                add_use(r, site);
            }
        }
        break;
    }
    case rtl::StmtKind::If: {
        stack.push_back(&s);
        if (s.then_s) scan_stmt(block, *s.then_s, stack);
        if (s.else_s) scan_stmt(block, *s.else_s, stack);
        stack.pop_back();
        break;
    }
    case rtl::StmtKind::Case: {
        stack.push_back(&s);
        for (const auto& item : s.items) {
            if (item.body) scan_stmt(block, *item.body, stack);
        }
        stack.pop_back();
        break;
    }
    case rtl::StmtKind::For: {
        if (s.init && s.init->kind == rtl::StmtKind::Assign &&
            s.init->lhs->kind == rtl::ExprKind::Ident) {
            loop_vars_.push_back(s.init->lhs->ident);
        }
        stack.push_back(&s);
        if (s.body) scan_stmt(block, *s.body, stack);
        stack.pop_back();
        break;
    }
    case rtl::StmtKind::Block: {
        for (const auto& st : s.stmts) {
            if (st) scan_stmt(block, *st, stack);
        }
        break;
    }
    case rtl::StmtKind::Null:
        break;
    }
}

void ModuleAnalysis::scan_instances() {
    for (const auto& inst : module_.instances) {
        for (const auto& c : inst.conns) {
            if (!c.expr) continue;
            SiteRef site;
            site.kind = SiteKind::InstanceConn;
            site.inst = &inst;
            site.conn = &c;
            // Direction is resolved against the child module by the
            // extractor; here we conservatively record both chains so a
            // standalone ModuleAnalysis stays useful without the design:
            // output connections define their net, input connections use it.
            // Without the child's port table we register the connection as
            // both a potential def and use of every referenced signal; the
            // extractor filters by actual direction.
            std::vector<std::string> sigs;
            rtl::collect_idents(*c.expr, sigs);
            dedup(sigs);
            for (const auto& s : sigs) {
                add_def(s, site);
                add_use(s, site);
            }
        }
    }
}

namespace {
const std::vector<SiteRef> kEmptySites;
} // namespace

const std::vector<SiteRef>& ModuleAnalysis::defs(const std::string& signal) const {
    auto it = defs_.find(signal);
    return it != defs_.end() ? it->second : kEmptySites;
}

const std::vector<SiteRef>& ModuleAnalysis::uses(const std::string& signal) const {
    auto it = uses_.find(signal);
    return it != uses_.end() ? it->second : kEmptySites;
}

std::vector<const rtl::Stmt*>
ModuleAnalysis::enclosing(const rtl::Stmt* stmt) const {
    auto it = enclosing_.find(stmt);
    return it != enclosing_.end() ? it->second
                                  : std::vector<const rtl::Stmt*>{};
}

std::vector<std::string> ModuleAnalysis::rhs_signals(const SiteRef& site) const {
    std::vector<std::string> out;
    switch (site.kind) {
    case SiteKind::ContAssign:
        rtl::collect_idents(*site.assign->rhs, out);
        collect_lvalue_index_signals(*site.assign->lhs, out);
        break;
    case SiteKind::ProcAssign:
        rtl::collect_idents(*site.stmt->rhs, out);
        collect_lvalue_index_signals(*site.stmt->lhs, out);
        break;
    case SiteKind::InstanceConn:
    case SiteKind::Port:
        break;
    }
    dedup(out);
    // Loop induction variables are not hardware signals.
    std::erase_if(out, [&](const std::string& s) {
        return std::find(loop_vars_.begin(), loop_vars_.end(), s) !=
               loop_vars_.end();
    });
    return out;
}

std::vector<std::string>
ModuleAnalysis::control_signals(const SiteRef& site) const {
    std::vector<std::string> out;
    if (site.kind != SiteKind::ProcAssign) return out;
    for (const rtl::Stmt* enc : enclosing(site.stmt)) {
        if (enc->cond) rtl::collect_idents(*enc->cond, out);
        // case labels are constants in the subset; conditions carry the
        // controlling signals.
    }
    for (const auto& s : site.block->sens) out.push_back(s.signal);
    dedup(out);
    std::erase_if(out, [&](const std::string& s) {
        return std::find(loop_vars_.begin(), loop_vars_.end(), s) !=
               loop_vars_.end();
    });
    return out;
}

std::vector<std::string> ModuleAnalysis::lhs_signals(const SiteRef& site) const {
    std::vector<std::string> out;
    switch (site.kind) {
    case SiteKind::ContAssign:
        collect_lvalue_signals(*site.assign->lhs, out);
        break;
    case SiteKind::ProcAssign:
        collect_lvalue_signals(*site.stmt->lhs, out);
        break;
    case SiteKind::InstanceConn:
    case SiteKind::Port:
        break;
    }
    dedup(out);
    return out;
}

std::vector<std::string> ModuleAnalysis::signals() const {
    std::vector<std::string> out;
    for (const auto& p : module_.ports) out.push_back(p.name);
    for (const auto& n : module_.nets) out.push_back(n.name);
    for (const auto& [name, sites] : defs_) out.push_back(name);
    for (const auto& [name, sites] : uses_) out.push_back(name);
    dedup(out);
    std::erase_if(out, [&](const std::string& s) {
        return std::find(loop_vars_.begin(), loop_vars_.end(), s) !=
               loop_vars_.end();
    });
    return out;
}

std::vector<std::string> ModuleAnalysis::undriven_signals() const {
    std::vector<std::string> out;
    for (const auto& name : signals()) {
        const rtl::Port* p = module_.find_port(name);
        if (p != nullptr && p->dir != rtl::PortDir::Output) continue;
        if (!uses(name).empty() && defs(name).empty()) out.push_back(name);
    }
    return out;
}

std::vector<std::string> ModuleAnalysis::unused_signals() const {
    std::vector<std::string> out;
    for (const auto& name : signals()) {
        const rtl::Port* p = module_.find_port(name);
        if (p != nullptr && p->dir != rtl::PortDir::Input) continue;
        if (!defs(name).empty() && uses(name).empty()) out.push_back(name);
    }
    return out;
}

bool ModuleAnalysis::only_constant_defs(const std::string& signal) const {
    const auto& sites = defs(signal);
    if (sites.empty()) return false;
    for (const auto& site : sites) {
        const rtl::Expr* rhs = nullptr;
        if (site.kind == SiteKind::ContAssign) {
            rhs = site.assign->rhs.get();
        } else if (site.kind == SiteKind::ProcAssign) {
            rhs = site.stmt->rhs.get();
        } else {
            return false; // port or instance: not a hard-coded constant
        }
        if (rhs == nullptr || !rtl::is_constant_expr(*rhs)) return false;
    }
    return true;
}

const ModuleAnalysis& AnalysisCache::get(const rtl::Module& m) {
    auto it = cache_.find(&m);
    if (it == cache_.end()) {
        it = cache_.emplace(&m, std::make_unique<ModuleAnalysis>(m)).first;
    }
    return *it->second;
}

} // namespace factor::analysis
