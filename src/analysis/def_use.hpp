// Def-use and use-def chains at statement granularity, the data structure
// FACTOR's extraction subroutines traverse (paper §3, Figure 2).
//
// For every signal of a module the analysis records:
//   * def sites — places the signal is assigned: continuous assignments,
//     procedural assignments inside always blocks, instance output
//     connections, or the module input port itself;
//   * use sites — places the signal is read: assignment right-hand sides,
//     conditional/loop controls (via the enclosing-context maps), instance
//     input connections, sensitivity lists, or the module output port.
//
// Each procedural statement additionally knows its chain of enclosing
// conditional statements ("enclosing conditional statements, loops and
// concurrency constructs" in the paper's pseudo-code), which is what pulls
// control logic into the extracted constraints.
#pragma once

#include "rtl/ast.hpp"

#include <map>
#include <string>
#include <vector>

namespace factor::analysis {

enum class SiteKind {
    ContAssign,   // assign lhs = rhs
    ProcAssign,   // lhs = rhs / lhs <= rhs inside an always block
    InstanceConn, // connection on a child instance port
    Port,         // the module boundary itself
};

/// A definition or use site. Exactly the pointers relevant to `kind` are
/// non-null; the rest stay null.
struct SiteRef {
    SiteKind kind = SiteKind::Port;
    const rtl::ContAssign* assign = nullptr;  // ContAssign
    const rtl::AlwaysBlock* block = nullptr;  // ProcAssign: owning block
    const rtl::Stmt* stmt = nullptr;          // ProcAssign: the assignment
    const rtl::Instance* inst = nullptr;      // InstanceConn
    const rtl::PortConn* conn = nullptr;      // InstanceConn
    const rtl::Port* port = nullptr;          // Port

    [[nodiscard]] bool operator==(const SiteRef& o) const {
        return kind == o.kind && assign == o.assign && stmt == o.stmt &&
               inst == o.inst && conn == o.conn && port == o.port;
    }
    [[nodiscard]] util::SourceLoc loc() const;
    /// Human-readable description for testability traces.
    [[nodiscard]] std::string describe() const;
};

/// Def-use analysis of a single module (shared across all instances of the
/// module type). The module must be elaborated (no parameters, resolved
/// ranges).
class ModuleAnalysis {
  public:
    explicit ModuleAnalysis(const rtl::Module& m);

    [[nodiscard]] const rtl::Module& module() const { return module_; }

    /// Definition sites of `signal` (its use-def chain heads).
    [[nodiscard]] const std::vector<SiteRef>& defs(const std::string& signal) const;
    /// Use sites of `signal` (its def-use chain heads).
    [[nodiscard]] const std::vector<SiteRef>& uses(const std::string& signal) const;

    /// Enclosing conditional/loop statements of a procedural assignment,
    /// outermost first. Empty for non-procedural sites.
    [[nodiscard]] std::vector<const rtl::Stmt*> enclosing(const rtl::Stmt* stmt) const;

    /// Signals read by the right-hand side of a definition site (the
    /// "rhs_driving_signals" of find_source_logic step 6). For a ProcAssign
    /// this is the assignment's own RHS plus any lhs index expressions.
    [[nodiscard]] std::vector<std::string> rhs_signals(const SiteRef& site) const;

    /// Signals read by the conditions of every statement enclosing a
    /// definition site (the "enc_driving_signals" of step 5), plus the
    /// owning always block's sensitivity list for sequential blocks.
    [[nodiscard]] std::vector<std::string> control_signals(const SiteRef& site) const;

    /// Signals written by the statement of a use site (the
    /// "lhs_driven_signals" of find_prop_paths step 5).
    [[nodiscard]] std::vector<std::string> lhs_signals(const SiteRef& site) const;

    /// All signal names that appear in the module (declared or referenced).
    [[nodiscard]] std::vector<std::string> signals() const;

    /// Signals whose use-def chain is empty although they are read somewhere
    /// and are not input ports — the paper's testability red flag.
    [[nodiscard]] std::vector<std::string> undriven_signals() const;
    /// Signals that are driven but never read and are not output ports.
    [[nodiscard]] std::vector<std::string> unused_signals() const;

    /// True if every definition of `signal` assigns a constant expression
    /// (the arm_alu "hard-coded values" warning of §4.2).
    [[nodiscard]] bool only_constant_defs(const std::string& signal) const;

  private:
    void scan_cont_assigns();
    void scan_always_blocks();
    void scan_instances();
    void scan_ports();
    void scan_stmt(const rtl::AlwaysBlock& block, const rtl::Stmt& s,
                   std::vector<const rtl::Stmt*>& stack);
    void add_def(const std::string& signal, SiteRef site);
    void add_use(const std::string& signal, SiteRef site);

    const rtl::Module& module_;
    std::map<std::string, std::vector<SiteRef>> defs_;
    std::map<std::string, std::vector<SiteRef>> uses_;
    std::map<const rtl::Stmt*, std::vector<const rtl::Stmt*>> enclosing_;
    std::map<const rtl::Stmt*, const rtl::AlwaysBlock*> owner_;
    std::vector<std::string> loop_vars_;
};

/// Cache of per-module analyses, keyed by module identity.
class AnalysisCache {
  public:
    const ModuleAnalysis& get(const rtl::Module& m);

  private:
    std::map<const rtl::Module*, std::unique_ptr<ModuleAnalysis>> cache_;
};

/// Signals written anywhere below `s` (helper shared with the extractor).
void collect_lhs_signals(const rtl::Stmt& s, std::vector<std::string>& out);
/// Signals written by an lvalue expression.
void collect_lvalue_signals(const rtl::Expr& lhs, std::vector<std::string>& out);
/// Signals read by an lvalue expression (bit-select indices).
void collect_lvalue_index_signals(const rtl::Expr& lhs,
                                  std::vector<std::string>& out);

} // namespace factor::analysis
