// Persistent constraint cache: FACTOR's per-module-type constraint reuse
// (the in-memory query graph of core::ExtractionSession) carried across
// process runs (ROADMAP open item 2, second half).
//
// On-disk layout, under the directory given by --constraint-cache /
// FACTOR_CONSTRAINT_CACHE:
//
//   <dir>/<fingerprint>.ccache      one entry per (design, piers, mode)
//   <dir>/.ccache.lock              advisory flock rendezvous
//   <dir>/quarantine/               damaged entries, moved aside for autopsy
//
// An entry is a CRC-framed NDJSON journal (util::Journal framing, schema
// "factor.ccache.v1"): a header record naming the schema and fingerprint,
// one record per query-graph node (plus records for its testability
// issues), and a footer with the node/issue counts and a running digest
// over every preceding frame. The footer is what turns the journal
// loader's silent torn-tail tolerance into a hard validity check: a
// truncated entry parses cleanly but fails the footer and is treated as
// corrupt.
//
// Robustness contract (the point of this subsystem):
//   - A damaged cache can never fail a run or change its results. Every
//     load is validated end to end (schema, fingerprint, per-record CRC,
//     footer digest, and the all-or-nothing pointer binding of
//     GraphSnapshot import); anything invalid is moved to quarantine/
//     with a named "ccache.quarantined" diagnostic and the run proceeds
//     from cold extraction.
//   - Results are byte-identical warm vs cold: the snapshot preserves
//     per-node edge order, so a warm session walks the query graph in
//     exactly the order the cold session expanded it; correctness of the
//     binding is guaranteed by fingerprinting the full elaborated design
//     source plus the PIER set and extraction mode.
//   - Concurrent processes coordinate with advisory flock (shared to
//     read, exclusive to publish). A lock that cannot be acquired within
//     the timeout degrades to cache bypass, never a stall or a failure;
//     publishes are last-writer-wins, but the publisher merges the
//     on-disk entry under its exclusive lock first, so concurrent
//     campaigns converge to the union instead of ping-ponging.
//   - Capacity is bounded by --cache-max-bytes with LRU eviction (mtime,
//     refreshed on every successful load).
//
// Observability: ccache.{hits,misses,quarantined,evicted,lock_waits,
// bypassed} counters (surfaced in factor.stats.v1 like every registry
// counter), ccache.load / ccache.publish spans, and injection sites
// ccache.read, ccache.write, ccache.lock for fault drills.
#pragma once

#include "core/extractor.hpp"
#include "elab/elaborator.hpp"
#include "util/diagnostics.hpp"

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>

namespace factor::cache {

inline constexpr const char* kCcacheSchema = "factor.ccache.v1";

struct CacheOptions {
    std::string dir;        // empty => cache disabled
    uint64_t max_bytes = 256ull << 20; // LRU eviction budget
    int lock_timeout_ms = 500;         // flock wait before bypassing
};

/// Serialize a snapshot as one complete cache entry (header + node/issue
/// records + footer), ready for util::atomic_publish. Deterministic: the
/// same snapshot always yields the same bytes.
[[nodiscard]] std::string encode_entry(const std::string& fingerprint,
                                       const core::GraphSnapshot& snap);

/// Parse and fully validate an entry file. Returns true and fills `out`
/// only when every check passes (readable, schema, fingerprint, framing
/// CRCs, footer counts + digest, well-formed records); otherwise returns
/// false with `why` naming the first failure. `missing` distinguishes
/// "file does not exist" (a plain miss) from damage (a quarantine case).
[[nodiscard]] bool decode_entry(const std::string& path,
                                const std::string& expect_fingerprint,
                                core::GraphSnapshot& out, std::string& why,
                                bool* missing = nullptr);

class ConstraintCache {
  public:
    ConstraintCache(CacheOptions opts, util::DiagEngine& diags);

    [[nodiscard]] bool enabled() const { return !opts_.dir.empty(); }
    [[nodiscard]] const CacheOptions& options() const { return opts_; }

    /// Create `dir` if needed and check it is usable (writable +
    /// searchable). The CLI calls this up front so a bogus
    /// --constraint-cache refuses with exit 1 instead of silently losing
    /// the cache at the end of a long run.
    [[nodiscard]] static bool probe_dir(const std::string& dir,
                                        std::string* why = nullptr);

    /// Cache key for one elaborated design: mixes the schema version, the
    /// extraction mode, the PIER set and the full printed design (every
    /// module, including parameter specializations), so any source or
    /// configuration change misses cleanly instead of reusing stale
    /// constraints.
    [[nodiscard]] static std::string
    fingerprint(const elab::ElaboratedDesign& design,
                const std::set<std::string>& piers, core::Mode mode);

    /// Seed `session` from the on-disk entry for its (design, piers,
    /// mode). Returns true on a successful warm start. Never throws and
    /// never fails the run: damage quarantines, lock timeouts bypass,
    /// and both degrade to a cold session. Sets `piers` on the session
    /// (so caller-configured PIERs participate in the fingerprint); Flat
    /// sessions never engage the cache (the query graph is rebuilt per
    /// extraction by design). Thread-safe: campaign shards share one
    /// cache, the entry is read from disk once and imported per shard.
    bool warm_start(core::ExtractionSession& session,
                    const std::set<std::string>& piers = {});

    /// Fold `session`'s expanded query graph into the pending snapshot
    /// (first writer wins per query key — expansions are deterministic,
    /// so duplicates are identical). Call after extraction; a crashed
    /// shard simply never absorbs, so it cannot tear the shared state.
    void absorb(core::ExtractionSession& session);

    /// Write the pending snapshot to disk (merge with the current entry
    /// under an exclusive lock, last-writer-wins, then LRU-evict down to
    /// max_bytes). Returns true when a new entry was published; skips
    /// silently when there is nothing new. Never throws.
    bool publish();

    /// This process's tallies (mirrors of the ccache.* counters).
    [[nodiscard]] uint64_t hits() const { return hits_; }
    [[nodiscard]] uint64_t misses() const { return misses_; }

  private:
    /// Load + validate the entry for fp_ into snap_; quarantines damage.
    /// Caller holds mu_.
    void load_locked();
    /// Move the entry file into <dir>/quarantine with a named diagnostic.
    /// Caller holds mu_.
    void quarantine_locked(const std::string& why);
    /// Delete oldest entries until the directory fits max_bytes. Caller
    /// holds the exclusive file lock.
    void evict();

    [[nodiscard]] std::string entry_path() const;
    [[nodiscard]] std::string lock_path() const;

    CacheOptions opts_;
    util::DiagEngine& diags_;

    std::mutex mu_;
    bool bound_ = false;     // fp_ computed, disk entry load attempted
    std::string fp_;
    bool have_snap_ = false; // snap_ holds a validated on-disk entry
    core::GraphSnapshot snap_;
    /// Union of absorbed session graphs, keyed for dedup across shards.
    std::map<core::GraphSnapshot::Key, core::GraphSnapshot::Node> pending_;

    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

} // namespace factor::cache
