#include "cache/ccache.hpp"

#include "obs/inject.hpp"
#include "obs/obs.hpp"
#include "rtl/printer.hpp"
#include "util/crc32.hpp"
#include "util/journal.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <vector>

#include <dirent.h>
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

namespace factor::cache {

using core::GraphSnapshot;

namespace {

// ------------------------------------------------------------- field codecs
//
// Instance paths are dotted identifier chains (specializations add '$' and
// '_'), signals are identifiers: none of them can contain ':', ',' or '|',
// so delimited packing into flat journal fields is unambiguous. Indices
// and directions sit at the *end* of each packed element and are parsed
// from the right, which keeps the codec honest even if a future name ever
// grew a delimiter: damage parses as corruption, never as a wrong binding.

bool parse_u32(std::string_view s, uint32_t& out) {
    if (s.empty() || s.size() > 9) return false;
    uint64_t v = 0;
    for (char c : s) {
        if (c < '0' || c > '9') return false;
        v = v * 10 + static_cast<uint64_t>(c - '0');
    }
    if (v > UINT32_MAX) return false;
    out = static_cast<uint32_t>(v);
    return true;
}

std::string enc_items(const std::vector<GraphSnapshot::Item>& items) {
    std::string out;
    for (const auto& it : items) {
        if (!out.empty()) out += ',';
        out += it.path;
        out += ':';
        out += std::to_string(it.index);
    }
    return out;
}

bool dec_items(std::string_view s, std::vector<GraphSnapshot::Item>& out) {
    out.clear();
    size_t start = 0;
    while (start <= s.size()) {
        if (s.empty()) break;
        size_t end = s.find(',', start);
        std::string_view elem =
            s.substr(start, end == std::string_view::npos ? end : end - start);
        size_t colon = elem.rfind(':');
        if (colon == std::string_view::npos || colon == 0) return false;
        GraphSnapshot::Item item;
        item.path = std::string(elem.substr(0, colon));
        if (!parse_u32(elem.substr(colon + 1), item.index)) return false;
        out.push_back(std::move(item));
        if (end == std::string_view::npos) break;
        start = end + 1;
    }
    return true;
}

std::string enc_keys(const std::vector<GraphSnapshot::Key>& keys) {
    std::string out;
    for (const auto& k : keys) {
        if (!out.empty()) out += '|';
        out += k.path;
        out += ':';
        out += k.signal;
        out += ':';
        out += k.dir == 0 ? '0' : '1';
    }
    return out;
}

bool dec_keys(std::string_view s, std::vector<GraphSnapshot::Key>& out) {
    out.clear();
    size_t start = 0;
    while (start <= s.size()) {
        if (s.empty()) break;
        size_t end = s.find('|', start);
        std::string_view elem =
            s.substr(start, end == std::string_view::npos ? end : end - start);
        size_t c2 = elem.rfind(':');
        if (c2 == std::string_view::npos || c2 + 2 != elem.size()) return false;
        size_t c1 = elem.rfind(':', c2 - 1);
        if (c1 == std::string_view::npos || c1 == 0 || c1 + 1 == c2) {
            return false;
        }
        char d = elem[c2 + 1];
        if (d != '0' && d != '1') return false;
        GraphSnapshot::Key key;
        key.path = std::string(elem.substr(0, c1));
        key.signal = std::string(elem.substr(c1 + 1, c2 - c1 - 1));
        key.dir = d - '0';
        out.push_back(std::move(key));
        if (end == std::string_view::npos) break;
        start = end + 1;
    }
    return true;
}

std::string enc_trace(const std::vector<std::string>& trace) {
    std::string out;
    for (const auto& t : trace) {
        if (!out.empty()) out += '\n';
        out += t;
    }
    return out;
}

std::vector<std::string> dec_trace(std::string_view s) {
    std::vector<std::string> out;
    if (s.empty()) return out;
    size_t start = 0;
    while (true) {
        size_t end = s.find('\n', start);
        out.emplace_back(
            s.substr(start, end == std::string_view::npos ? end : end - start));
        if (end == std::string_view::npos) break;
        start = end + 1;
    }
    return out;
}

std::string field(const util::JournalRecord& rec, std::string_view key) {
    const std::string* v = rec.get(key);
    return v == nullptr ? std::string() : *v;
}

// -------------------------------------------------------------- file lock

/// Advisory flock with a bounded wait. flock is per open file description,
/// so two FileLocks conflict even within one process — which is what lets
/// the two-process race tests run single-process.
class FileLock {
  public:
    FileLock() = default;
    FileLock(const FileLock&) = delete;
    FileLock& operator=(const FileLock&) = delete;
    ~FileLock() { release(); }

    [[nodiscard]] bool acquire(const std::string& path, int op,
                               int timeout_ms) {
        release();
        fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0666);
        if (fd_ < 0) return false;
        int waited_ms = 0;
        bool counted = false;
        while (true) {
            if (::flock(fd_, op | LOCK_NB) == 0) return true;
            if (errno != EWOULDBLOCK && errno != EINTR) break;
            if (!counted) {
                obs::counter("ccache.lock_waits").add(1);
                counted = true;
            }
            if (waited_ms >= timeout_ms) break;
            struct timespec ts{0, 10 * 1000 * 1000}; // 10ms
            ::nanosleep(&ts, nullptr);
            waited_ms += 10;
        }
        ::close(fd_);
        fd_ = -1;
        return false;
    }

    void release() {
        if (fd_ >= 0) {
            ::flock(fd_, LOCK_UN);
            ::close(fd_);
            fd_ = -1;
        }
    }

  private:
    int fd_ = -1;
};

} // namespace

// ------------------------------------------------------------ entry codec

std::string encode_entry(const std::string& fingerprint,
                         const GraphSnapshot& snap) {
    std::string out;
    util::Fnv64 digest;
    size_t issues = 0;
    auto emit = [&](const util::JournalRecord& rec) {
        std::string frame = util::journal_frame(rec);
        digest.mix(frame);
        out += frame;
        out += '\n';
    };

    util::JournalRecord header;
    header.set("t", "h").set("sch", kCcacheSchema).set("fp", fingerprint);
    emit(header);

    for (const auto& n : snap.nodes) {
        util::JournalRecord rec;
        rec.set("t", "n")
            .set("p", n.key.path)
            .set("s", n.key.signal)
            .set_u64("d", static_cast<uint64_t>(n.key.dir))
            .set("a", enc_items(n.assigns))
            .set("st", enc_items(n.stmts))
            .set("nx", enc_keys(n.next));
        emit(rec);
        for (const auto& issue : n.issues) {
            util::JournalRecord irec;
            irec.set("t", "i")
                .set_u64("k", static_cast<uint64_t>(issue.kind))
                .set("p", issue.instance_path)
                .set("s", issue.signal)
                .set("tr", enc_trace(issue.trace));
            emit(irec);
            ++issues;
        }
    }

    util::JournalRecord footer;
    footer.set("t", "f")
        .set_u64("n", snap.nodes.size())
        .set_u64("i", issues)
        .set("dg", digest.hex());
    out += util::journal_frame(footer);
    out += '\n';
    return out;
}

bool decode_entry(const std::string& path,
                  const std::string& expect_fingerprint, GraphSnapshot& out,
                  std::string& why, bool* missing) {
    out.nodes.clear();
    if (missing != nullptr) *missing = false;
    if (::access(path.c_str(), F_OK) != 0) {
        if (missing != nullptr) *missing = true;
        why = "no entry at '" + path + "'";
        return false;
    }
    util::JournalLoad load = util::journal_load(path);
    if (!load.ok) {
        why = "unreadable: " + load.error;
        return false;
    }
    if (load.dropped_lines > 0) {
        why = std::to_string(load.dropped_lines) +
              " corrupt line(s) (bad framing or CRC)";
        return false;
    }
    if (load.records.size() < 2) {
        why = "too short to hold a header and footer";
        return false;
    }

    const util::JournalRecord& header = load.records.front();
    if (field(header, "t") != "h") {
        why = "first record is not a header";
        return false;
    }
    if (field(header, "sch") != kCcacheSchema) {
        why = "schema mismatch: got '" + field(header, "sch") +
              "', want '" + kCcacheSchema + "'";
        return false;
    }
    if (field(header, "fp") != expect_fingerprint) {
        why = "fingerprint mismatch: entry is for " + field(header, "fp");
        return false;
    }

    const util::JournalRecord& footer = load.records.back();
    if (field(footer, "t") != "f") {
        // The journal loader tolerates torn tails; the missing footer is
        // how an otherwise-clean truncation is detected.
        why = "footer missing (entry truncated?)";
        return false;
    }

    util::Fnv64 digest;
    size_t issues = 0;
    for (size_t i = 0; i + 1 < load.records.size(); ++i) {
        const util::JournalRecord& rec = load.records[i];
        digest.mix(util::journal_frame(rec));
        if (i == 0) continue; // header, digested only
        std::string t = field(rec, "t");
        if (t == "n") {
            GraphSnapshot::Node node;
            node.key.path = field(rec, "p");
            node.key.signal = field(rec, "s");
            std::string d = field(rec, "d");
            if (node.key.path.empty() || node.key.signal.empty() ||
                (d != "0" && d != "1")) {
                why = "malformed node record";
                return false;
            }
            node.key.dir = d[0] - '0';
            if (!dec_items(field(rec, "a"), node.assigns) ||
                !dec_items(field(rec, "st"), node.stmts) ||
                !dec_keys(field(rec, "nx"), node.next)) {
                why = "malformed item list in node record";
                return false;
            }
            out.nodes.push_back(std::move(node));
        } else if (t == "i") {
            if (out.nodes.empty()) {
                why = "issue record before any node record";
                return false;
            }
            uint32_t kind = 0;
            if (!parse_u32(field(rec, "k"), kind) || kind > 2) {
                why = "malformed issue record";
                return false;
            }
            core::TestabilityIssue issue;
            issue.kind = static_cast<core::TestabilityIssue::Kind>(kind);
            issue.instance_path = field(rec, "p");
            issue.signal = field(rec, "s");
            issue.trace = dec_trace(field(rec, "tr"));
            out.nodes.back().issues.push_back(std::move(issue));
            ++issues;
        } else {
            why = "unknown record type '" + t + "'";
            return false;
        }
    }

    if (footer.get_u64("n", UINT64_MAX) != out.nodes.size() ||
        footer.get_u64("i", UINT64_MAX) != issues) {
        why = "footer counts disagree with the records present";
        return false;
    }
    if (field(footer, "dg") != digest.hex()) {
        why = "footer digest mismatch";
        return false;
    }
    return true;
}

// ------------------------------------------------------------------ cache

ConstraintCache::ConstraintCache(CacheOptions opts, util::DiagEngine& diags)
    : opts_(std::move(opts)), diags_(diags) {}

std::string ConstraintCache::entry_path() const {
    return opts_.dir + "/" + fp_ + ".ccache";
}

std::string ConstraintCache::lock_path() const {
    return opts_.dir + "/.ccache.lock";
}

bool ConstraintCache::probe_dir(const std::string& dir, std::string* why) {
    if (dir.empty()) {
        if (why != nullptr) *why = "empty cache directory path";
        return false;
    }
    if (::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST) {
        if (why != nullptr) {
            *why = "cannot create '" + dir + "': " + std::strerror(errno);
        }
        return false;
    }
    struct stat st{};
    if (::stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
        if (why != nullptr) *why = "'" + dir + "' is not a directory";
        return false;
    }
    if (::access(dir.c_str(), W_OK | X_OK) != 0) {
        if (why != nullptr) {
            *why = "'" + dir + "' is not writable + searchable";
        }
        return false;
    }
    return true;
}

std::string ConstraintCache::fingerprint(const elab::ElaboratedDesign& design,
                                         const std::set<std::string>& piers,
                                         core::Mode mode) {
    util::Fnv64 h;
    h.mix(std::string(kCcacheSchema));
    h.mix(design.root().module->name);
    h.mix(uint64_t{mode == core::Mode::Composed ? 1u : 0u});
    h.mix(static_cast<uint64_t>(piers.size()));
    for (const auto& p : piers) h.mix(p);
    // The full printed design — every module including parameter
    // specializations — so any source change moves the key. The printer
    // is the same one `--emit` uses; it is a complete rendering.
    h.mix(rtl::to_verilog(design.design()));
    return h.hex();
}

void ConstraintCache::quarantine_locked(const std::string& why) {
    obs::counter("ccache.quarantined").add(1);
    std::string qdir = opts_.dir + "/quarantine";
    (void)::mkdir(qdir.c_str(), 0777);
    char suffix[32];
    std::snprintf(suffix, sizeof suffix, ".%ld",
                  static_cast<long>(::getpid()));
    std::string dst = qdir + "/" + fp_ + ".ccache" + suffix;
    if (std::rename(entry_path().c_str(), dst.c_str()) != 0) {
        // Quarantine dir unusable: at least get the bad entry off the
        // lookup path so the next run is not poisoned either.
        (void)std::remove(entry_path().c_str());
        dst = "(unlinked)";
    }
    diags_.warning({}, "ccache.quarantined: cache entry " + fp_ +
                           " is damaged (" + why + "); moved to '" + dst +
                           "', extracting cold");
}

void ConstraintCache::load_locked() {
    have_snap_ = false;
    obs::Span span("ccache.load");
    span.attr("fp", fp_);
    try {
        obs::inject_point("ccache.lock");
    } catch (const util::FactorError&) {
        obs::counter("ccache.bypassed").add(1);
        span.attr("outcome", "bypass");
        return;
    }
    FileLock lock;
    if (!lock.acquire(lock_path(), LOCK_SH, opts_.lock_timeout_ms)) {
        obs::counter("ccache.bypassed").add(1);
        diags_.note({}, "ccache.lock_timeout: cache '" + opts_.dir +
                            "' is locked by another process; bypassing");
        span.attr("outcome", "bypass");
        return;
    }
    try {
        obs::inject_point("ccache.read");
    } catch (const util::FactorError&) {
        obs::counter("ccache.bypassed").add(1);
        span.attr("outcome", "bypass");
        return;
    }
    std::string why;
    bool missing = false;
    GraphSnapshot snap;
    if (!decode_entry(entry_path(), fp_, snap, why, &missing)) {
        if (!missing) quarantine_locked(why);
        span.attr("outcome", missing ? "cold" : "quarantined");
        return;
    }
    snap_ = std::move(snap);
    have_snap_ = true;
    // LRU: a successful load refreshes the entry's eviction clock.
    (void)::utimensat(AT_FDCWD, entry_path().c_str(), nullptr, 0);
    span.attr("outcome", "hit");
    span.attr("nodes", snap_.nodes.size());
}

bool ConstraintCache::warm_start(core::ExtractionSession& session,
                                 const std::set<std::string>& piers) {
    if (!enabled()) return false;
    // Flat mode drops the query graph on every extraction by design (the
    // conventional-methodology baseline); warming it would change what is
    // being measured, so the cache only engages in Composed mode.
    if (session.mode() != core::Mode::Composed) return false;
    try {
        session.set_pier_registers(piers);
    } catch (const util::FactorError&) {
        return false; // session already has a different warm graph
    }
    std::string fp = fingerprint(session.design(), piers, session.mode());

    std::lock_guard<std::mutex> lk(mu_);
    if (!bound_) {
        bound_ = true;
        fp_ = fp;
        load_locked();
    }
    if (fp != fp_ || !have_snap_) {
        obs::counter("ccache.misses").add(1);
        ++misses_;
        return false;
    }
    if (!session.import_graph(snap_)) {
        // The fingerprint matched but the snapshot does not bind to this
        // design: the entry (or the fingerprint inside it) lies.
        quarantine_locked("snapshot does not bind to the design");
        have_snap_ = false;
        snap_ = GraphSnapshot{};
        obs::counter("ccache.misses").add(1);
        ++misses_;
        return false;
    }
    obs::counter("ccache.hits").add(1);
    ++hits_;
    return true;
}

void ConstraintCache::absorb(core::ExtractionSession& session) {
    if (!enabled() || session.mode() != core::Mode::Composed) return;
    GraphSnapshot snap = session.export_graph();
    std::lock_guard<std::mutex> lk(mu_);
    if (!bound_) return;
    for (auto& n : snap.nodes) {
        GraphSnapshot::Key key = n.key;
        pending_.try_emplace(std::move(key), std::move(n));
    }
}

bool ConstraintCache::publish() {
    if (!enabled()) return false;
    std::lock_guard<std::mutex> lk(mu_);
    if (!bound_ || pending_.empty()) return false;
    // Nothing newly expanded beyond what the entry already held? Skip the
    // write (the load already refreshed the LRU clock).
    if (have_snap_ && pending_.size() <= snap_.nodes.size()) return false;

    obs::Span span("ccache.publish");
    span.attr("fp", fp_);
    try {
        obs::inject_point("ccache.lock");
    } catch (const util::FactorError&) {
        obs::counter("ccache.bypassed").add(1);
        span.attr("outcome", "bypass");
        return false;
    }
    FileLock lock;
    if (!lock.acquire(lock_path(), LOCK_EX, opts_.lock_timeout_ms)) {
        obs::counter("ccache.bypassed").add(1);
        diags_.note({}, "ccache.lock_timeout: cache '" + opts_.dir +
                            "' is locked by another process; skipping "
                            "publish (cache stays as-is)");
        span.attr("outcome", "bypass");
        return false;
    }

    // Merge whatever is on disk now — another process may have published
    // since our load — so last-writer-wins converges to the union.
    {
        std::string why;
        bool missing = false;
        GraphSnapshot cur;
        if (decode_entry(entry_path(), fp_, cur, why, &missing)) {
            for (auto& n : cur.nodes) {
                GraphSnapshot::Key key = n.key;
                pending_.try_emplace(std::move(key), std::move(n));
            }
        } else if (!missing) {
            quarantine_locked(why);
        }
    }

    GraphSnapshot out;
    out.nodes.reserve(pending_.size());
    for (const auto& [key, node] : pending_) out.nodes.push_back(node);

    try {
        obs::inject_point("ccache.write");
    } catch (const util::FactorError& e) {
        diags_.warning({}, std::string("ccache.write_failed: ") + e.what() +
                               "; cache entry not updated");
        span.attr("outcome", "write_failed");
        return false;
    }
    if (!util::atomic_publish(entry_path(), encode_entry(fp_, out))) {
        diags_.warning({}, "ccache.write_failed: cannot publish '" +
                               entry_path() + "'; cache entry not updated");
        span.attr("outcome", "write_failed");
        return false;
    }
    evict();
    snap_ = std::move(out);
    have_snap_ = true;
    span.attr("outcome", "published");
    span.attr("nodes", snap_.nodes.size());
    return true;
}

void ConstraintCache::evict() {
    if (opts_.max_bytes == 0) return; // 0 = unlimited
    struct Entry {
        std::string path;
        uint64_t bytes;
        time_t mtime;
    };
    std::vector<Entry> entries;
    uint64_t total = 0;
    DIR* dir = ::opendir(opts_.dir.c_str());
    if (dir == nullptr) return;
    while (const dirent* de = ::readdir(dir)) {
        std::string name = de->d_name;
        constexpr std::string_view kExt = ".ccache";
        if (name.size() <= kExt.size() ||
            name.compare(name.size() - kExt.size(), kExt.size(), kExt) != 0) {
            continue;
        }
        std::string path = opts_.dir + "/" + name;
        struct stat st{};
        if (::stat(path.c_str(), &st) != 0 || !S_ISREG(st.st_mode)) continue;
        total += static_cast<uint64_t>(st.st_size);
        entries.push_back(
            {std::move(path), static_cast<uint64_t>(st.st_size), st.st_mtime});
    }
    ::closedir(dir);
    if (total <= opts_.max_bytes) return;
    // Oldest first; path as tie-break keeps eviction deterministic when a
    // coarse-mtime filesystem stamps several entries identically.
    std::sort(entries.begin(), entries.end(), [](const Entry& a,
                                                 const Entry& b) {
        return a.mtime != b.mtime ? a.mtime < b.mtime : a.path < b.path;
    });
    for (const Entry& e : entries) {
        if (total <= opts_.max_bytes) break;
        if (std::remove(e.path.c_str()) != 0) continue;
        total -= e.bytes;
        obs::counter("ccache.evicted").add(1);
    }
}

} // namespace factor::cache
