#include "elab/elaborator.hpp"

#include "obs/inject.hpp"
#include "obs/obs.hpp"
#include "rtl/const_eval.hpp"
#include "util/strings.hpp"

#include <algorithm>
#include <sstream>

namespace factor::elab {

using rtl::ConstEnv;
using util::BitVec;

std::string InstNode::path() const {
    if (parent == nullptr) return module != nullptr ? module->name : "";
    return parent->path() + "." + inst_name;
}

namespace {

void collect_pre_order(const InstNode* n, std::vector<const InstNode*>& out) {
    out.push_back(n);
    for (const auto& c : n->children) collect_pre_order(c.get(), out);
}

} // namespace

const InstNode*
ElaboratedDesign::find_by_module(const std::string& module_name) const {
    for (const InstNode* n : all_nodes()) {
        if (n->module != nullptr && n->module->name == module_name) return n;
    }
    return nullptr;
}

const InstNode* ElaboratedDesign::find_by_path(const std::string& dotted) const {
    auto parts = util::split(dotted, '.');
    if (parts.empty()) return nullptr;
    const InstNode* n = root_.get();
    if (n == nullptr || n->module == nullptr || n->module->name != parts[0]) {
        return nullptr;
    }
    for (size_t i = 1; i < parts.size(); ++i) {
        const InstNode* next = nullptr;
        for (const auto& c : n->children) {
            if (c->inst_name == parts[i]) {
                next = c.get();
                break;
            }
        }
        if (next == nullptr) return nullptr;
        n = next;
    }
    return n;
}

std::vector<const InstNode*> ElaboratedDesign::all_nodes() const {
    std::vector<const InstNode*> out;
    if (root_) collect_pre_order(root_.get(), out);
    return out;
}

Elaborator::Elaborator(rtl::Design& design, util::DiagEngine& diags,
                       util::RunGuard* guard)
    : design_(design), diags_(diags), guard_(guard) {}

std::unique_ptr<ElaboratedDesign>
Elaborator::elaborate(const std::string& top_name) {
    obs::Span span("elab.elaborate");
    span.attr("top", top_name);
    rtl::Module* top = design_.find(top_name);
    if (top == nullptr) {
        diags_.error({}, "top module '" + top_name + "' not found");
        return nullptr;
    }

    const rtl::Module* resolved_top = specialize(*top, {});
    if (resolved_top == nullptr || diags_.has_errors()) return nullptr;

    std::vector<std::string> stack;
    auto root = build_tree(*resolved_top, /*inst_name=*/"", /*parent=*/nullptr,
                           /*inst=*/nullptr, /*level=*/1, stack);
    if (!root || diags_.has_errors()) return nullptr;

    auto out = std::make_unique<ElaboratedDesign>();
    out->design_ = &design_;
    out->top_ = resolved_top;
    out->root_ = std::move(root);

    const size_t instances = out->instance_count();
    obs::counter("elab.elaborations").add(1);
    obs::counter("elab.instances").add(instances);
    obs::gauge("elab.last_instances").set(static_cast<double>(instances));
    span.attr("instances", instances);
    return out;
}

const rtl::Module*
Elaborator::specialize(const rtl::Module& m,
                       const std::map<std::string, BitVec>& overrides) {
    // Build the full parameter environment: defaults overridden where given,
    // localparams evaluated in order.
    ConstEnv env;
    for (const auto& p : m.params) {
        if (!p.local) {
            auto it = overrides.find(p.name);
            if (it != overrides.end()) {
                env[p.name] = it->second;
                continue;
            }
        }
        auto v = p.value ? rtl::const_eval(*p.value, env) : std::nullopt;
        if (!v) {
            diags_.error(p.loc, "parameter '" + p.name + "' of module '" +
                                    m.name + "' is not a constant");
            return nullptr;
        }
        env[p.name] = *v;
    }
    for (const auto& [name, value] : overrides) {
        bool known = false;
        for (const auto& p : m.params) {
            known |= (!p.local && p.name == name);
        }
        if (!known) {
            diags_.error(m.loc, "override of unknown parameter '" + name +
                                    "' on module '" + m.name + "'");
            (void)value;
        }
    }

    // Parameter-free modules need no specialization: fold in place once
    // (a no-op substitution that still resolves nothing) and reuse.
    if (m.params.empty()) {
        auto it = folded_.find(&m);
        if (it != folded_.end()) return &m;
        auto& mutable_m = const_cast<rtl::Module&>(m);
        fold_module(mutable_m, env);
        check_module(mutable_m);
        folded_[&m] = true;
        return &m;
    }

    // Parameterized modules are always specialized from the pristine AST —
    // including the all-defaults case — so that later overrides never see
    // already-burned ranges. Mangle a stable name from the bindings; the
    // defaults variant keeps the original module name.
    std::ostringstream mangled;
    mangled << m.name;
    for (const auto& [name, value] : overrides) {
        mangled << "$" << name << "_" << value.value();
    }
    auto it = specialized_.find(mangled.str());
    if (it != specialized_.end()) return it->second;

    auto copy = rtl::clone(m);
    copy->name = mangled.str();
    // Rewrite parameter defaults to the resolved values so the copy is
    // self-contained.
    for (auto& p : copy->params) {
        p.value = rtl::make_number(env.at(p.name), p.loc);
    }
    fold_module(*copy, env);
    check_module(*copy);
    const rtl::Module* result = &design_.add(std::move(copy));
    specialized_[mangled.str()] = result;
    return result;
}

void Elaborator::fold_module(rtl::Module& m, const ConstEnv& env) {
    auto fold_range = [&](rtl::Range& r, const util::SourceLoc& loc) {
        if (!r.unresolved()) return;
        auto msb = rtl::const_eval_int(*r.msb_expr, env);
        auto lsb = rtl::const_eval_int(*r.lsb_expr, env);
        if (!msb || !lsb || *msb < *lsb || *lsb < 0) {
            diags_.error(loc, "cannot resolve range bounds in module '" +
                                  m.name + "'");
            return;
        }
        r.msb = *msb;
        r.lsb = *lsb;
        r.msb_expr.reset();
        r.lsb_expr.reset();
    };
    for (auto& p : m.ports) fold_range(p.range, p.loc);
    for (auto& d : m.nets) fold_range(d.range, d.loc);
    for (auto& a : m.assigns) {
        fold_expr(a.lhs, env);
        fold_expr(a.rhs, env);
    }
    for (auto& b : m.always_blocks) {
        if (b.body) fold_stmt(*b.body, env);
    }
    for (auto& inst : m.instances) {
        for (auto& o : inst.param_overrides) fold_expr(o.value, env);
        for (auto& c : inst.conns) {
            if (c.expr) fold_expr(c.expr, env);
        }
    }
}

void Elaborator::fold_expr(rtl::ExprPtr& e, const ConstEnv& env) {
    if (!e) return;
    if (e->kind == rtl::ExprKind::Ident) {
        auto it = env.find(e->ident);
        if (it != env.end()) {
            e = rtl::make_number(it->second, e->loc);
        }
        return;
    }
    // A select whose base is a parameter folds to a constant outright.
    if ((e->kind == rtl::ExprKind::BitSelect ||
         e->kind == rtl::ExprKind::PartSelect) &&
        env.count(e->ident) != 0) {
        for (auto& op : e->ops) fold_expr(op, env);
        if (e->kind == rtl::ExprKind::PartSelect && e->msb < 0 &&
            e->ops.size() >= 2) {
            auto msb = rtl::const_eval_int(*e->ops[0], env);
            auto lsb = rtl::const_eval_int(*e->ops[1], env);
            if (msb && lsb) {
                e->msb = *msb;
                e->lsb = *lsb;
            }
        }
        if (auto v = rtl::const_eval(*e, env)) {
            e = rtl::make_number(*v, e->loc);
            return;
        }
        diags_.error(e->loc, "cannot fold select on parameter '" + e->ident +
                                 "'");
        return;
    }
    for (auto& op : e->ops) fold_expr(op, env);
    switch (e->kind) {
    case rtl::ExprKind::PartSelect: {
        if (e->msb < 0 && e->ops.size() >= 2) {
            auto msb = rtl::const_eval_int(*e->ops[0], env);
            auto lsb = rtl::const_eval_int(*e->ops[1], env);
            if (msb && lsb && *msb >= *lsb && *lsb >= 0) {
                e->msb = *msb;
                e->lsb = *lsb;
            } else {
                diags_.error(e->loc, "cannot resolve part-select bounds on '" +
                                         e->ident + "'");
            }
        }
        break;
    }
    case rtl::ExprKind::Replicate: {
        if (e->rep_count == 0 && e->ops.size() >= 2) {
            auto n = rtl::const_eval_int(*e->ops[1], env);
            if (n && *n > 0) {
                e->rep_count = static_cast<uint32_t>(*n);
                e->ops.pop_back();
            } else {
                diags_.error(e->loc, "cannot resolve replication count");
            }
        }
        break;
    }
    case rtl::ExprKind::BitSelect: {
        // A constant bit-select on a parameter was already folded via the
        // Ident path inside const_eval; nothing further to do here.
        break;
    }
    default:
        break;
    }
}

void Elaborator::fold_stmt(rtl::Stmt& s, const ConstEnv& env) {
    fold_expr(s.lhs, env);
    fold_expr(s.rhs, env);
    fold_expr(s.cond, env);
    if (s.then_s) fold_stmt(*s.then_s, env);
    if (s.else_s) fold_stmt(*s.else_s, env);
    if (s.init) fold_stmt(*s.init, env);
    if (s.step) fold_stmt(*s.step, env);
    if (s.body) fold_stmt(*s.body, env);
    for (auto& item : s.items) {
        for (auto& l : item.labels) fold_expr(l, env);
        if (item.body) fold_stmt(*item.body, env);
    }
    for (auto& st : s.stmts) {
        if (st) fold_stmt(*st, env);
    }
}

namespace {

/// Collect loop induction variables (for-loop init targets) in a statement
/// tree; these are compile-time names, not hardware signals.
void collect_loop_vars(const rtl::Stmt& s, std::vector<std::string>& out) {
    if (s.kind == rtl::StmtKind::For && s.init &&
        s.init->kind == rtl::StmtKind::Assign &&
        s.init->lhs->kind == rtl::ExprKind::Ident) {
        out.push_back(s.init->lhs->ident);
    }
    if (s.then_s) collect_loop_vars(*s.then_s, out);
    if (s.else_s) collect_loop_vars(*s.else_s, out);
    if (s.body) collect_loop_vars(*s.body, out);
    for (const auto& item : s.items) {
        if (item.body) collect_loop_vars(*item.body, out);
    }
    for (const auto& st : s.stmts) {
        if (st) collect_loop_vars(*st, out);
    }
}

void collect_stmt_idents(const rtl::Stmt& s, std::vector<std::string>& out) {
    if (s.lhs) rtl::collect_idents(*s.lhs, out);
    if (s.rhs) rtl::collect_idents(*s.rhs, out);
    if (s.cond) rtl::collect_idents(*s.cond, out);
    if (s.then_s) collect_stmt_idents(*s.then_s, out);
    if (s.else_s) collect_stmt_idents(*s.else_s, out);
    if (s.init) collect_stmt_idents(*s.init, out);
    if (s.step) collect_stmt_idents(*s.step, out);
    if (s.body) collect_stmt_idents(*s.body, out);
    for (const auto& item : s.items) {
        for (const auto& l : item.labels) rtl::collect_idents(*l, out);
        if (item.body) collect_stmt_idents(*item.body, out);
    }
    for (const auto& st : s.stmts) {
        if (st) collect_stmt_idents(*st, out);
    }
}

} // namespace

void Elaborator::check_module(const rtl::Module& m) {
    // Every referenced identifier must be a declared port, net or a loop
    // induction variable (parameters were folded away above).
    std::vector<std::string> loop_vars;
    std::vector<std::string> used;
    for (const auto& a : m.assigns) {
        rtl::collect_idents(*a.lhs, used);
        rtl::collect_idents(*a.rhs, used);
    }
    for (const auto& b : m.always_blocks) {
        for (const auto& s : b.sens) used.push_back(s.signal);
        if (b.body) {
            collect_stmt_idents(*b.body, used);
            collect_loop_vars(*b.body, loop_vars);
        }
    }
    for (const auto& inst : m.instances) {
        for (const auto& c : inst.conns) {
            if (c.expr) rtl::collect_idents(*c.expr, used);
        }
    }
    std::sort(used.begin(), used.end());
    used.erase(std::unique(used.begin(), used.end()), used.end());
    for (const auto& name : used) {
        if (m.find_port(name) != nullptr || m.find_net(name) != nullptr) continue;
        if (std::find(loop_vars.begin(), loop_vars.end(), name) !=
            loop_vars.end()) {
            continue;
        }
        diags_.error(m.loc, "module '" + m.name + "': reference to undeclared signal '" +
                                name + "'");
    }
}

void Elaborator::check_instance_conns(const rtl::Module& parent,
                                      const rtl::Instance& inst,
                                      const rtl::Module& target) {
    bool positional = !inst.conns.empty() && inst.conns.front().port.empty();
    if (positional && inst.conns.size() > target.ports.size()) {
        diags_.error(inst.loc, "instance '" + inst.inst_name + "' has " +
                                   std::to_string(inst.conns.size()) +
                                   " connections but '" + target.name +
                                   "' has only " +
                                   std::to_string(target.ports.size()) +
                                   " ports");
        return;
    }
    std::vector<std::string> seen;
    for (size_t i = 0; i < inst.conns.size(); ++i) {
        const auto& c = inst.conns[i];
        const rtl::Port* port = nullptr;
        if (c.port.empty()) {
            if (!positional) {
                diags_.error(inst.loc,
                             "mixed positional and named connections on '" +
                                 inst.inst_name + "'");
                return;
            }
            port = &target.ports[i];
        } else {
            port = target.find_port(c.port);
            if (port == nullptr) {
                diags_.error(inst.loc, "instance '" + inst.inst_name +
                                           "' connects unknown port '" +
                                           c.port + "' of '" + target.name +
                                           "'");
                continue;
            }
            if (std::find(seen.begin(), seen.end(), c.port) != seen.end()) {
                diags_.error(inst.loc, "port '" + c.port +
                                           "' connected twice on instance '" +
                                           inst.inst_name + "'");
            }
            seen.push_back(c.port);
        }
        if (c.expr == nullptr) continue; // explicitly open
        // Width check (best effort): only for simple ident connections.
        if (c.expr->kind == rtl::ExprKind::Ident) {
            uint32_t pw = port->range.width();
            uint32_t ew = parent.signal_width(c.expr->ident);
            if (ew != 0 && pw != ew) {
                diags_.warning(inst.loc,
                               "width mismatch on '" + inst.inst_name + "." +
                                   port->name + "': port is " +
                                   std::to_string(pw) + " bits, '" +
                                   c.expr->ident + "' is " +
                                   std::to_string(ew) + " bits");
            }
        }
    }
}

std::unique_ptr<InstNode>
Elaborator::build_tree(const rtl::Module& m, const std::string& inst_name,
                       InstNode* parent, const rtl::Instance* inst, int level,
                       std::vector<std::string>& stack) {
    if (std::find(stack.begin(), stack.end(), m.name) != stack.end()) {
        diags_.error(m.loc, "recursive instantiation of module '" + m.name + "'");
        return nullptr;
    }
    obs::inject_point("elab.build_tree");
    ++nodes_built_;
    if (guard_ != nullptr) {
        const bool was_stopped = guard_->reason() != util::GuardStop::None;
        if (!guard_->note_nodes(nodes_built_) || !guard_->tick()) {
            if (!was_stopped) { // report the trip once, not per unwound node
                diags_.error(m.loc, "elaboration stopped after " +
                                        std::to_string(nodes_built_) +
                                        " instances: " +
                                        util::to_string(guard_->reason()) +
                                        " budget exceeded");
            }
            return nullptr;
        }
    }
    stack.push_back(m.name);

    auto node = std::make_unique<InstNode>();
    node->inst_name = inst_name;
    node->module = &m;
    node->parent = parent;
    node->inst = inst;
    node->level = level;

    for (const auto& child_inst : m.instances) {
        const rtl::Module* target = design_.find(child_inst.module_name);
        if (target == nullptr) {
            diags_.error(child_inst.loc, "instance '" + child_inst.inst_name +
                                             "' of unknown module '" +
                                             child_inst.module_name + "'");
            continue;
        }
        std::map<std::string, BitVec> overrides;
        bool override_ok = true;
        size_t positional_idx = 0;
        std::vector<const rtl::ParamDecl*> public_params;
        for (const auto& p : target->params) {
            if (!p.local) public_params.push_back(&p);
        }
        for (const auto& o : child_inst.param_overrides) {
            auto v = o.value ? rtl::const_eval(*o.value, {}) : std::nullopt;
            if (!v) {
                diags_.error(child_inst.loc,
                             "non-constant parameter override on '" +
                                 child_inst.inst_name + "'");
                override_ok = false;
                break;
            }
            std::string pname = o.name;
            if (pname.empty()) {
                if (positional_idx >= public_params.size()) {
                    diags_.error(child_inst.loc,
                                 "too many positional parameter overrides on '" +
                                     child_inst.inst_name + "'");
                    override_ok = false;
                    break;
                }
                pname = public_params[positional_idx++]->name;
            }
            overrides[pname] = *v;
        }
        if (!override_ok) continue;

        const rtl::Module* resolved = specialize(*target, overrides);
        if (resolved == nullptr) continue;
        check_instance_conns(m, child_inst, *resolved);

        auto child = build_tree(*resolved, child_inst.inst_name, node.get(),
                                &child_inst, level + 1, stack);
        if (child) node->children.push_back(std::move(child));
    }

    stack.pop_back();
    return node;
}

} // namespace factor::elab
