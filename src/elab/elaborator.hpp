// Elaboration: turns a parsed Design into a resolved, hierarchical design
// database (the paper's Figure 2 connectivity tree at whole-design scope).
//
//  * Parameter resolution — module parameters and localparams are evaluated;
//    instances with overrides get a specialized (uniquified) copy of the
//    target module. After elaboration no expression references a parameter.
//  * Range resolution — all declaration ranges, part-select bounds and
//    replication counts are folded to integers.
//  * Semantic checks — undeclared signals, unknown instance targets, bad
//    port names, width mismatches (warning), multiply-driven signals.
//  * Instance tree — every reachable instance with its hierarchy level
//    (top = 1), supporting path and module-type lookups used by FACTOR.
#pragma once

#include "rtl/ast.hpp"
#include "util/diagnostics.hpp"
#include "util/run_guard.hpp"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace factor::elab {

/// One node of the elaborated instance tree.
struct InstNode {
    std::string inst_name;            // "" for the top node
    const rtl::Module* module = nullptr;
    InstNode* parent = nullptr;
    const rtl::Instance* inst = nullptr; // AST instance in parent (null for top)
    int level = 1;                    // top = 1, its children = 2, ...
    std::vector<std::unique_ptr<InstNode>> children;

    /// Dotted path from the top, e.g. "arm2z.exec.alu". The top node's path
    /// is its module name.
    [[nodiscard]] std::string path() const;
};

/// The resolved design: owns nothing from the original Design but refers
/// into it (including any specialized module copies added to it).
class ElaboratedDesign {
  public:
    [[nodiscard]] const rtl::Module& top() const { return *top_; }
    [[nodiscard]] const InstNode& root() const { return *root_; }
    [[nodiscard]] const rtl::Design& design() const { return *design_; }

    /// First node (pre-order) whose module type matches `module_name`;
    /// null if the type is not instantiated.
    [[nodiscard]] const InstNode* find_by_module(const std::string& module_name) const;

    /// Node at a dotted instance path ("top.exec.alu"); null if absent.
    [[nodiscard]] const InstNode* find_by_path(const std::string& dotted) const;

    /// All nodes in pre-order (top first).
    [[nodiscard]] std::vector<const InstNode*> all_nodes() const;

    /// Total number of instances (including top).
    [[nodiscard]] size_t instance_count() const { return all_nodes().size(); }

  private:
    friend class Elaborator;
    rtl::Design* design_ = nullptr;
    const rtl::Module* top_ = nullptr;
    std::unique_ptr<InstNode> root_;
};

class Elaborator {
  public:
    /// `guard` (optional) bounds the elaboration: its node cap limits the
    /// instance-tree size and its other budgets are checked per node.
    Elaborator(rtl::Design& design, util::DiagEngine& diags,
               util::RunGuard* guard = nullptr);

    /// Elaborate with `top_name` as the root module. Returns null and
    /// reports diagnostics on failure (including guard stops, reported as
    /// an error diagnostic naming the tripped budget). The Design is
    /// mutated: parameterized expressions are folded in place and
    /// specialized module copies may be appended.
    [[nodiscard]] std::unique_ptr<ElaboratedDesign>
    elaborate(const std::string& top_name);

  private:
    /// Resolve `m` under the given parameter override bindings. Returns the
    /// module to instantiate: `m` itself (folded in place) for default
    /// bindings, or a memoized specialized copy otherwise.
    const rtl::Module* specialize(const rtl::Module& m,
                                  const std::map<std::string, util::BitVec>& overrides);

    void fold_module(rtl::Module& m,
                     const std::map<std::string, util::BitVec>& env);
    void fold_expr(rtl::ExprPtr& e,
                   const std::map<std::string, util::BitVec>& env);
    void fold_stmt(rtl::Stmt& s,
                   const std::map<std::string, util::BitVec>& env);

    void check_module(const rtl::Module& m);
    void check_instance_conns(const rtl::Module& parent,
                              const rtl::Instance& inst,
                              const rtl::Module& target);

    std::unique_ptr<InstNode> build_tree(const rtl::Module& m,
                                         const std::string& inst_name,
                                         InstNode* parent,
                                         const rtl::Instance* inst, int level,
                                         std::vector<std::string>& stack);

    rtl::Design& design_;
    util::DiagEngine& diags_;
    util::RunGuard* guard_ = nullptr;
    size_t nodes_built_ = 0;
    // Memoized specializations: mangled name -> module.
    std::map<std::string, const rtl::Module*> specialized_;
    // Modules already folded with their default environment.
    std::map<const rtl::Module*, bool> folded_;
};

} // namespace factor::elab
