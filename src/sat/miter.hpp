// Fault-free/faulty miter construction for single-stuck-at faults.
//
// Two forms, both over the dual-rail encoding (encoder.hpp):
//
//  * Detection miter — both copies unrolled `frames` time frames with X
//    initial state (exactly the fault simulator's world). The objective
//    asserts that some primary output in some frame is *definitely*
//    different: (good.one ∧ faulty.zero) ∨ (good.zero ∧ faulty.one). A
//    model therefore is a test sequence the conservative 3-valued fault
//    simulator confirms; UNSAT only means "no test within this depth".
//
//  * Redundancy miter (free_initial_state) — a single frame in which DFF
//    outputs are free binary pseudo-inputs shared by both copies and the
//    observation points are the POs plus every DFF D-input. UNSAT proves
//    the good and faulty machines compute identical output AND next-state
//    functions over the whole binary state space, i.e. the machines are
//    indistinguishable by any input sequence: the fault is redundant.
//    (A definite 3-valued detection implies a binary-completion detection,
//    so the proof covers the simulator's X-initialized world too.)
//
// The faulty copy is restricted to the fault's sequential fanout closure;
// everything outside the cone aliases the good copy's literals.
#pragma once

#include "sat/encoder.hpp"
#include "sat/solver.hpp"
#include "synth/netlist.hpp"

#include <vector>

namespace factor::sat {

struct MiterOptions {
    size_t frames = 1;
    bool free_initial_state = false;
};

class Miter {
  public:
    /// Builds the full CNF. Throws util::FactorError on structurally
    /// un-encodable netlists (combinational cycles). `fanout`, when
    /// non-null, is a precomputed nl.build_fanout() table reused across
    /// many miters of the same netlist.
    Miter(const synth::Netlist& nl, const FaultSite& fault,
          const MiterOptions& opts,
          const std::vector<std::vector<synth::GateId>>* fanout = nullptr);

    [[nodiscard]] const Cnf& cnf() const { return cnf_; }
    [[nodiscard]] size_t frames() const { return frames_; }

    /// Binary PI assignment per frame from a Sat model.
    [[nodiscard]] std::vector<std::vector<bool>>
    extract_inputs(const Solver& solver) const;

  private:
    Cnf cnf_;
    size_t frames_ = 1;
    std::vector<std::vector<Lit>> pi_lits_; // [frame][pi]
};

/// Sequential fanout closure of the fault site (stem: the net itself;
/// branch: the reading gate's output), crossing DFF boundaries. One byte
/// per net; 1 = the fault can influence this net in some frame. `fanout`,
/// when non-null, skips the internal build_fanout() pass.
[[nodiscard]] std::vector<uint8_t>
fault_cone(const synth::Netlist& nl, const FaultSite& fault,
           const std::vector<std::vector<synth::GateId>>* fanout = nullptr);

} // namespace factor::sat
