// Self-contained CDCL SAT solver.
//
// The classic architecture: two-literal watching for unit propagation,
// first-UIP conflict analysis with clause learning, VSIDS-style variable
// activities driving a binary max-heap of decision candidates, saved-phase
// polarities, and Luby-sequence restarts. Everything is deterministic for a
// fixed input formula: no randomness, ties broken by variable index, so the
// engine's byte-identity contract extends through the SAT tier.
//
// Budgets: a per-call conflict cap (deterministic — identical across runs
// and jobs values) plus cooperative polling of an optional util::RunGuard
// (wall clock / interrupt — the documented nondeterministic stops). Either
// stop returns SolveResult::Unknown with all learned state intact.
#pragma once

#include "sat/cnf.hpp"
#include "util/run_guard.hpp"

#include <cstdint>
#include <vector>

namespace factor::sat {

enum class SolveResult : uint8_t { Sat, Unsat, Unknown };

[[nodiscard]] const char* to_string(SolveResult r);

struct SolverLimits {
    /// Conflict cap per solve() call; 0 = unlimited.
    uint64_t max_conflicts = 0;
    /// Optional shared pipeline guards, polled (never ticked — quota
    /// accounting stays with the engine commit pipeline) every
    /// `guard_poll_conflicts` conflicts. Two slots so the engine can wire
    /// both its local time budget and the caller's external guard.
    util::RunGuard* guard = nullptr;
    util::RunGuard* guard2 = nullptr;
    uint64_t guard_poll_conflicts = 256;
};

struct SolverStats {
    uint64_t conflicts = 0;
    uint64_t decisions = 0;
    uint64_t propagations = 0;
    uint64_t learned_clauses = 0;
    uint64_t restarts = 0;
};

class Solver {
  public:
    /// Loads the clause database; unit clauses are enqueued immediately and
    /// a top-level contradiction latches Unsat before solve() is called.
    explicit Solver(const Cnf& cnf, SolverLimits limits = {});

    /// Runs CDCL search from the current state. May be called once.
    [[nodiscard]] SolveResult solve();

    /// Model access after solve() returned Sat. Every variable is assigned.
    [[nodiscard]] bool model_value(uint32_t var) const {
        return assign_[var] == 1;
    }
    [[nodiscard]] bool model_value(Lit l) const {
        return model_value(l.var()) != l.sign();
    }

    [[nodiscard]] const SolverStats& stats() const { return stats_; }

  private:
    static constexpr uint32_t kNoClause = 0xffffffffu;

    struct Clause {
        std::vector<Lit> lits;
    };
    struct Watch {
        uint32_t cref = kNoClause;
        Lit blocker;
    };

    // ---- assignment trail -----------------------------------------------
    [[nodiscard]] int lit_value(Lit l) const { // 1 true, 0 false, -1 unset
        const int8_t a = assign_[l.var()];
        return a < 0 ? -1 : (l.sign() ? 1 - a : a);
    }
    void enqueue(Lit l, uint32_t reason);
    [[nodiscard]] uint32_t decision_level() const {
        return static_cast<uint32_t>(trail_lim_.size());
    }
    void backtrack_to(uint32_t level);

    [[nodiscard]] uint32_t propagate(); // kNoClause or the conflict clause
    void attach(uint32_t cref);
    void analyze(uint32_t conflict, std::vector<Lit>& learnt,
                 uint32_t& out_level);
    [[nodiscard]] Lit pick_branch();

    // ---- VSIDS ----------------------------------------------------------
    void bump(uint32_t var);
    void decay() { var_inc_ /= kVarDecay; }
    void heap_insert(uint32_t var);
    void heap_sift_up(size_t i);
    void heap_sift_down(size_t i);
    [[nodiscard]] bool heap_less(uint32_t a, uint32_t b) const;

    static constexpr double kVarDecay = 0.95;
    static constexpr double kRescaleAt = 1e100;

    std::vector<Clause> clauses_;
    std::vector<std::vector<Watch>> watches_; // indexed by Lit.x
    std::vector<int8_t> assign_;              // -1 unset / 0 false / 1 true
    std::vector<uint32_t> level_;
    std::vector<uint32_t> reason_;
    std::vector<Lit> trail_;
    std::vector<size_t> trail_lim_;
    size_t qhead_ = 0;

    std::vector<double> activity_;
    double var_inc_ = 1.0;
    std::vector<uint32_t> heap_;     // binary max-heap of candidate vars
    std::vector<uint32_t> heap_pos_; // var -> heap index (or kNoClause)
    std::vector<uint8_t> polarity_;  // saved phase, initially false
    std::vector<uint8_t> seen_;      // scratch for analyze()

    SolverLimits limits_;
    SolverStats stats_;
    bool top_level_conflict_ = false;
    bool solved_ = false;
};

} // namespace factor::sat
