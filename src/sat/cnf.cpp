#include "sat/cnf.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace factor::sat {

Lit Cnf::true_lit() {
    if (!true_.defined()) {
        true_ = mk_lit(new_var());
        add({true_});
    }
    return true_;
}

Lit Cnf::make_and(const std::vector<Lit>& ins) {
    std::vector<Lit> kept;
    kept.reserve(ins.size());
    for (Lit l : ins) {
        if (is_false(l)) return ~true_lit();
        if (is_true(l)) continue;
        kept.push_back(l);
    }
    if (kept.empty()) return true_lit();
    if (kept.size() == 1) return kept[0];
    const Lit y = mk_lit(new_var());
    // y -> each input; all inputs -> y.
    std::vector<Lit> big;
    big.reserve(kept.size() + 1);
    big.push_back(y);
    for (Lit l : kept) {
        add({~y, l});
        big.push_back(~l);
    }
    add(std::move(big));
    return y;
}

Lit Cnf::make_or(const std::vector<Lit>& ins) {
    std::vector<Lit> kept;
    kept.reserve(ins.size());
    for (Lit l : ins) {
        if (is_true(l)) return true_lit();
        if (is_false(l)) continue;
        kept.push_back(l);
    }
    if (kept.empty()) return ~true_lit();
    if (kept.size() == 1) return kept[0];
    const Lit y = mk_lit(new_var());
    // each input -> y; y -> some input.
    std::vector<Lit> big;
    big.reserve(kept.size() + 1);
    big.push_back(~y);
    for (Lit l : kept) {
        add({y, ~l});
        big.push_back(l);
    }
    add(std::move(big));
    return y;
}

namespace {

struct Cursor {
    std::string_view text;
    size_t pos = 0;

    void skip_space_and_comments() {
        while (pos < text.size()) {
            const char c = text[pos];
            if (c == 'c') { // comment line
                while (pos < text.size() && text[pos] != '\n') ++pos;
            } else if (std::isspace(static_cast<unsigned char>(c))) {
                ++pos;
            } else {
                return;
            }
        }
    }

    [[nodiscard]] bool next_int(int64_t& out) {
        skip_space_and_comments();
        if (pos >= text.size()) return false;
        const char* first = text.data() + pos;
        const char* last = text.data() + text.size();
        auto [ptr, ec] = std::from_chars(first, last, out);
        if (ec != std::errc{} || ptr == first) return false;
        pos += static_cast<size_t>(ptr - first);
        return true;
    }

    [[nodiscard]] bool at_end() {
        skip_space_and_comments();
        return pos >= text.size();
    }
};

} // namespace

bool parse_dimacs(std::string_view text, Cnf& out, std::string& error) {
    Cursor cur{text};
    cur.skip_space_and_comments();
    // Header: "p cnf <vars> <clauses>".
    if (cur.pos >= text.size() || text[cur.pos] != 'p') {
        error = "dimacs: missing 'p cnf' header";
        return false;
    }
    ++cur.pos;
    // Plain whitespace only: the comment skipper would mistake the leading
    // 'c' of the "cnf" token itself for a comment line.
    while (cur.pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[cur.pos]))) {
        ++cur.pos;
    }
    if (text.substr(cur.pos, 3) != "cnf") {
        error = "dimacs: header format is not 'p cnf'";
        return false;
    }
    cur.pos += 3;
    int64_t declared_vars = 0;
    int64_t declared_clauses = 0;
    if (!cur.next_int(declared_vars) || !cur.next_int(declared_clauses) ||
        declared_vars < 0 || declared_clauses < 0) {
        error = "dimacs: malformed header counts";
        return false;
    }
    if (static_cast<uint64_t>(declared_vars) > kDimacsMaxVars ||
        static_cast<uint64_t>(declared_clauses) > kDimacsMaxClauses) {
        error = "dimacs: declared size exceeds parser caps";
        return false;
    }
    while (static_cast<int64_t>(out.num_vars()) < declared_vars) {
        (void)out.new_var();
    }
    std::vector<Lit> clause;
    bool open = false;
    int64_t v = 0;
    while (cur.next_int(v)) {
        if (v == 0) {
            out.add(clause);
            clause.clear();
            open = false;
            continue;
        }
        const int64_t var = (v < 0 ? -v : v) - 1;
        if (var >= declared_vars) {
            error = "dimacs: literal outside declared variable range";
            return false;
        }
        clause.push_back(mk_lit(static_cast<uint32_t>(var), v < 0));
        open = true;
    }
    if (!cur.at_end()) {
        error = "dimacs: garbage where a literal was expected";
        return false;
    }
    if (open) {
        error = "dimacs: unterminated clause (missing trailing 0)";
        return false;
    }
    if (static_cast<int64_t>(out.num_clauses()) != declared_clauses) {
        error = "dimacs: clause count does not match header";
        return false;
    }
    return true;
}

} // namespace factor::sat
