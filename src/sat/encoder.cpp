#include "sat/encoder.hpp"

#include "util/diagnostics.hpp"

namespace factor::sat {

namespace {

[[nodiscard]] Rails forced_rails(Lit true_lit, bool sa1) {
    return sa1 ? Rails{true_lit, ~true_lit} : Rails{~true_lit, true_lit};
}

} // namespace

CircuitCopy::CircuitCopy(const synth::Netlist& nl, Cnf& cnf,
                         const std::vector<std::vector<Lit>>& pi_lits,
                         const std::vector<Lit>& shared_state,
                         CopyOptions opts)
    : opts_(opts), num_nets_(nl.num_nets()) {
    if (opts_.frames == 0 || pi_lits.size() < opts_.frames) {
        throw util::FactorError("sat encoder: bad frame/pi_lits shape");
    }
    const Lit T = cnf.true_lit();
    const Lit F = ~T;
    // Everything starts as X: undriven non-PI nets stay that way, matching
    // the simulator's treatment of floating inputs.
    rails_.assign(opts_.frames * num_nets_, Rails{F, F});

    const auto topo = nl.levelize_shared(); // throws on combinational cycles
    const auto dffs = nl.dffs();
    const FaultSite* fault = opts_.fault;
    const bool stem = fault != nullptr && fault->is_stem();
    const Rails fault_rails =
        fault != nullptr ? forced_rails(T, fault->sa1) : Rails{};

    auto in_cone = [&](synth::NetId n) {
        return opts_.affected == nullptr || (*opts_.affected)[n] != 0;
    };

    for (size_t f = 0; f < opts_.frames; ++f) {
        // Primary inputs: binary, shared across copies via pi_lits.
        const auto& pis = nl.inputs();
        for (size_t i = 0; i < pis.size(); ++i) {
            set(f, pis[i], Rails{pi_lits[f][i], ~pi_lits[f][i]});
        }
        // Flip-flop outputs.
        for (size_t k = 0; k < dffs.size(); ++k) {
            const synth::Gate& g = nl.gate(dffs[k]);
            if (!in_cone(g.out)) continue;
            if (f == 0) {
                if (opts_.free_initial_state) {
                    const Lit s = shared_state[k];
                    set(0, g.out, Rails{s, ~s});
                } // else: stays X
                continue;
            }
            // Branch fault on the D pin: the faulty copy's flop latches the
            // forced constant instead of the previous frame's D value.
            if (fault != nullptr && !stem && fault->gate == dffs[k]) {
                set(f, g.out, fault_rails);
            } else {
                set(f, g.out, rails(f - 1, g.ins[0]));
            }
        }
        // Stem fault: the site net is forced in every frame, overriding
        // whatever would drive it (PI, DFF or gate below).
        if (stem) set(f, fault->net, fault_rails);

        // Combinational gates in topological order.
        std::vector<Rails> ins;
        for (const synth::GateId gid : *topo) {
            const synth::Gate& g = nl.gate(gid);
            if (stem && g.out == fault->net) continue; // site is forced
            if (!in_cone(g.out)) continue;             // aliases reference
            ins.clear();
            for (size_t p = 0; p < g.ins.size(); ++p) {
                if (fault != nullptr && !stem && fault->gate == gid &&
                    static_cast<int>(p) == fault->pin) {
                    ins.push_back(fault_rails);
                } else {
                    ins.push_back(rails(f, g.ins[p]));
                }
            }
            set(f, g.out, eval_gate(cnf, g, ins));
        }
    }
}

Rails CircuitCopy::eval_gate(Cnf& cnf, const synth::Gate& gate,
                             const std::vector<Rails>& ins) const {
    auto ones = [&] {
        std::vector<Lit> v;
        v.reserve(ins.size());
        for (const Rails& r : ins) v.push_back(r.one);
        return v;
    };
    auto zeros = [&] {
        std::vector<Lit> v;
        v.reserve(ins.size());
        for (const Rails& r : ins) v.push_back(r.zero);
        return v;
    };
    switch (gate.type) {
    case synth::GateType::Const0:
        return Rails{~cnf.true_lit(), cnf.true_lit()};
    case synth::GateType::Const1:
        return Rails{cnf.true_lit(), ~cnf.true_lit()};
    case synth::GateType::Buf:
        return ins[0];
    case synth::GateType::Not:
        return Rails{ins[0].zero, ins[0].one};
    case synth::GateType::And:
        return Rails{cnf.make_and(ones()), cnf.make_or(zeros())};
    case synth::GateType::Or:
        return Rails{cnf.make_or(ones()), cnf.make_and(zeros())};
    case synth::GateType::Nand:
        return Rails{cnf.make_or(zeros()), cnf.make_and(ones())};
    case synth::GateType::Nor:
        return Rails{cnf.make_and(zeros()), cnf.make_or(ones())};
    case synth::GateType::Xor: {
        const Rails a = ins[0];
        const Rails b = ins[1];
        return Rails{cnf.make_or({cnf.make_and({a.one, b.zero}),
                                  cnf.make_and({a.zero, b.one})}),
                     cnf.make_or({cnf.make_and({a.one, b.one}),
                                  cnf.make_and({a.zero, b.zero})})};
    }
    case synth::GateType::Xnor: {
        const Rails a = ins[0];
        const Rails b = ins[1];
        return Rails{cnf.make_or({cnf.make_and({a.one, b.one}),
                                  cnf.make_and({a.zero, b.zero})}),
                     cnf.make_or({cnf.make_and({a.one, b.zero}),
                                  cnf.make_and({a.zero, b.one})})};
    }
    case synth::GateType::Mux: {
        // ins = {sel, a, b}: out = sel ? b : a, with the "both sides
        // agree" term keeping the output binary under an unknown select —
        // same truth table as logic.hpp's v_mux.
        const Rails s = ins[0];
        const Rails a = ins[1];
        const Rails b = ins[2];
        return Rails{cnf.make_or({cnf.make_and({s.one, b.one}),
                                  cnf.make_and({s.zero, a.one}),
                                  cnf.make_and({a.one, b.one})}),
                     cnf.make_or({cnf.make_and({s.one, b.zero}),
                                  cnf.make_and({s.zero, a.zero}),
                                  cnf.make_and({a.zero, b.zero})})};
    }
    case synth::GateType::Dff:
        break; // handled by the frame loop
    }
    throw util::FactorError("sat encoder: unexpected gate type");
}

} // namespace factor::sat
