// Dual-rail Tseitin encoder for synth::Netlist.
//
// Every (frame, net) gets a pair of CNF literals {one, zero} mirroring the
// fault simulator's V64 rails exactly: one ∧ zero never holds (by induction
// from the sources), and neither rail set means X. Primary inputs are
// binary (one fresh variable v per frame-PI; one = v, zero = ¬v), frame-0
// flip-flop outputs are X (both rails constant false) or — for the
// redundancy-check miter — free binary pseudo-inputs, and frame f > 0
// flip-flop outputs alias the D-input rails of frame f-1. Gate rails apply
// the same equations as logic.hpp's v_and/v_or/v_xor/v_mux, so a model of
// the CNF is precisely a 3-valued simulator trajectory: any test the SAT
// engine extracts is confirmed by the fault simulator by construction.
//
// A copy can inject one single-stuck-at fault (stem or branch) and can be
// cone-restricted: nets outside the fault's sequential fanout closure alias
// the reference (fault-free) copy's rails instead of being re-encoded.
#pragma once

#include "sat/cnf.hpp"
#include "synth/netlist.hpp"

#include <cstdint>
#include <vector>

namespace factor::sat {

/// One rail pair; both kLitUndef only before the copy is built.
struct Rails {
    Lit one = kLitUndef;
    Lit zero = kLitUndef;
};

/// Single stuck-at fault site, mirroring atpg::Fault without the dependency:
/// stem faults live on `net` (gate == kNoGate), branch faults on input pin
/// `pin` of `gate`.
struct FaultSite {
    synth::NetId net = synth::kNoNet;
    synth::GateId gate = synth::Netlist::kNoGate;
    int pin = -1;
    bool sa1 = false;

    [[nodiscard]] bool is_stem() const {
        return gate == synth::Netlist::kNoGate;
    }
};

struct CopyOptions {
    size_t frames = 1;
    /// Frame-0 DFF outputs: X when false; free binary pseudo-inputs (from
    /// `shared_state`, one per DFF in dffs() order) when true.
    bool free_initial_state = false;
    /// Fault injected into this copy (nullptr = fault-free copy).
    const FaultSite* fault = nullptr;
    /// Cone restriction: nets with affected[net] == 0 alias `reference`.
    const class CircuitCopy* reference = nullptr;
    const std::vector<uint8_t>* affected = nullptr;
};

/// One time-frame-unrolled copy of a netlist inside a shared Cnf.
/// Throws util::FactorError on combinational cycles (via levelize()).
class CircuitCopy {
  public:
    CircuitCopy(const synth::Netlist& nl, Cnf& cnf,
                const std::vector<std::vector<Lit>>& pi_lits,
                const std::vector<Lit>& shared_state, CopyOptions opts);

    [[nodiscard]] Rails rails(size_t frame, synth::NetId n) const {
        if (opts_.affected != nullptr && (*opts_.affected)[n] == 0) {
            return opts_.reference->rails(frame, n);
        }
        return rails_[frame * num_nets_ + n];
    }

  private:
    void set(size_t frame, synth::NetId n, Rails r) {
        rails_[frame * num_nets_ + n] = r;
    }
    [[nodiscard]] Rails eval_gate(Cnf& cnf, const synth::Gate& gate,
                                  const std::vector<Rails>& ins) const;

    CopyOptions opts_;
    size_t num_nets_ = 0;
    std::vector<Rails> rails_;
};

} // namespace factor::sat
