#include "sat/solver.hpp"

#include <algorithm>

namespace factor::sat {

const char* to_string(SolveResult r) {
    switch (r) {
    case SolveResult::Sat: return "sat";
    case SolveResult::Unsat: return "unsat";
    case SolveResult::Unknown: return "unknown";
    }
    return "?";
}

namespace {

/// Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
uint64_t luby(uint32_t i) {
    // Find the finite subsequence containing index i (1-based internally).
    uint32_t k = 1;
    uint64_t size = 1;
    while (size < i + 1u) {
        ++k;
        size = 2 * size + 1;
    }
    while (size - 1 != i) {
        size = (size - 1) / 2;
        --k;
        i = i % static_cast<uint32_t>(size);
    }
    return uint64_t{1} << (k - 1);
}

constexpr uint64_t kRestartBase = 64;

} // namespace

Solver::Solver(const Cnf& cnf, SolverLimits limits) : limits_(limits) {
    const uint32_t n = cnf.num_vars();
    watches_.resize(size_t{2} * n);
    assign_.assign(n, -1);
    level_.assign(n, 0);
    reason_.assign(n, kNoClause);
    activity_.assign(n, 0.0);
    polarity_.assign(n, 0);
    seen_.assign(n, 0);
    heap_pos_.assign(n, kNoClause);
    heap_.reserve(n);
    for (uint32_t v = 0; v < n; ++v) heap_insert(v);

    std::vector<Lit> tmp;
    for (const auto& clause : cnf.clauses()) {
        if (top_level_conflict_) break;
        tmp = clause;
        std::sort(tmp.begin(), tmp.end(),
                  [](Lit a, Lit b) { return a.x < b.x; });
        tmp.erase(std::unique(tmp.begin(), tmp.end()), tmp.end());
        bool tautology = false;
        bool satisfied = false;
        size_t w = 0;
        for (size_t i = 0; i < tmp.size(); ++i) {
            if (i + 1 < tmp.size() && tmp[i].var() == tmp[i + 1].var()) {
                tautology = true; // p and ~p in one clause
                break;
            }
            const int v = lit_value(tmp[i]);
            if (v == 1) {
                satisfied = true; // true at top level already
                break;
            }
            if (v == -1) tmp[w++] = tmp[i]; // drop top-level-false literals
        }
        if (tautology || satisfied) continue;
        tmp.resize(w);
        if (tmp.empty()) {
            top_level_conflict_ = true;
        } else if (tmp.size() == 1) {
            if (lit_value(tmp[0]) == -1) enqueue(tmp[0], kNoClause);
        } else {
            const auto cref = static_cast<uint32_t>(clauses_.size());
            clauses_.push_back(Clause{tmp});
            attach(cref);
        }
    }
}

void Solver::attach(uint32_t cref) {
    const auto& c = clauses_[cref].lits;
    watches_[(~c[0]).x].push_back({cref, c[1]});
    watches_[(~c[1]).x].push_back({cref, c[0]});
}

void Solver::enqueue(Lit l, uint32_t reason) {
    const uint32_t v = l.var();
    assign_[v] = l.sign() ? 0 : 1;
    level_[v] = decision_level();
    reason_[v] = reason;
    trail_.push_back(l);
}

void Solver::backtrack_to(uint32_t level) {
    if (decision_level() <= level) return;
    const size_t keep = trail_lim_[level];
    for (size_t i = trail_.size(); i-- > keep;) {
        const uint32_t v = trail_[i].var();
        polarity_[v] = static_cast<uint8_t>(assign_[v]); // phase saving
        assign_[v] = -1;
        reason_[v] = kNoClause;
        if (heap_pos_[v] == kNoClause) heap_insert(v);
    }
    trail_.resize(keep);
    trail_lim_.resize(level);
    qhead_ = trail_.size();
}

uint32_t Solver::propagate() {
    while (qhead_ < trail_.size()) {
        const Lit p = trail_[qhead_++]; // p just became true
        auto& ws = watches_[p.x];       // clauses watching ~p
        size_t i = 0;
        size_t j = 0;
        while (i < ws.size()) {
            const Watch w = ws[i];
            if (lit_value(w.blocker) == 1) {
                ws[j++] = ws[i++];
                continue;
            }
            auto& lits = clauses_[w.cref].lits;
            const Lit false_lit = ~p;
            if (lits[0] == false_lit) std::swap(lits[0], lits[1]);
            const Lit first = lits[0];
            if (first != w.blocker && lit_value(first) == 1) {
                ws[j++] = {w.cref, first};
                ++i;
                continue;
            }
            bool moved = false;
            for (size_t k = 2; k < lits.size(); ++k) {
                if (lit_value(lits[k]) != 0) {
                    std::swap(lits[1], lits[k]);
                    watches_[(~lits[1]).x].push_back({w.cref, first});
                    moved = true;
                    break;
                }
            }
            if (moved) {
                ++i; // watch migrated to the new literal
                continue;
            }
            if (lit_value(first) == 0) { // conflict
                while (i < ws.size()) ws[j++] = ws[i++];
                ws.resize(j);
                qhead_ = trail_.size();
                return w.cref;
            }
            ++stats_.propagations; // unit: first is implied
            enqueue(first, w.cref);
            ws[j++] = {w.cref, first};
            ++i;
        }
        ws.resize(j);
    }
    return kNoClause;
}

void Solver::analyze(uint32_t conflict, std::vector<Lit>& learnt,
                     uint32_t& out_level) {
    learnt.clear();
    learnt.push_back(kLitUndef); // slot for the asserting literal
    uint32_t cref = conflict;
    Lit p = kLitUndef;
    size_t index = trail_.size();
    int pending = 0; // current-level literals still to resolve
    do {
        const auto& lits = clauses_[cref].lits;
        for (size_t k = p.defined() ? 1 : 0; k < lits.size(); ++k) {
            const Lit q = lits[k];
            const uint32_t v = q.var();
            if (seen_[v] || level_[v] == 0) continue;
            seen_[v] = 1;
            bump(v);
            if (level_[v] >= decision_level()) {
                ++pending;
            } else {
                learnt.push_back(q);
            }
        }
        while (!seen_[trail_[index - 1].var()]) --index;
        p = trail_[--index];
        cref = reason_[p.var()];
        seen_[p.var()] = 0;
        --pending;
    } while (pending > 0);
    learnt[0] = ~p;

    if (learnt.size() == 1) {
        out_level = 0;
    } else {
        // Second watch: the highest-level literal below the current level.
        size_t best = 1;
        for (size_t k = 2; k < learnt.size(); ++k) {
            if (level_[learnt[k].var()] > level_[learnt[best].var()]) best = k;
        }
        std::swap(learnt[1], learnt[best]);
        out_level = level_[learnt[1].var()];
    }
    for (size_t k = 1; k < learnt.size(); ++k) seen_[learnt[k].var()] = 0;
}

SolveResult Solver::solve() {
    if (top_level_conflict_) return SolveResult::Unsat;
    if (propagate() != kNoClause) return SolveResult::Unsat;

    const uint64_t poll =
        limits_.guard_poll_conflicts ? limits_.guard_poll_conflicts : 256;
    uint64_t conflicts_at_restart = stats_.conflicts;
    uint32_t restart_seq = 0;
    uint64_t restart_budget = luby(restart_seq) * kRestartBase;
    std::vector<Lit> learnt;

    for (;;) {
        const uint32_t conflict = propagate();
        if (conflict != kNoClause) {
            ++stats_.conflicts;
            if (decision_level() == 0) return SolveResult::Unsat;
            uint32_t back_level = 0;
            analyze(conflict, learnt, back_level);
            backtrack_to(back_level);
            if (learnt.size() == 1) {
                enqueue(learnt[0], kNoClause);
            } else {
                const auto cref = static_cast<uint32_t>(clauses_.size());
                clauses_.push_back(Clause{learnt});
                attach(cref);
                enqueue(learnt[0], cref);
            }
            ++stats_.learned_clauses;
            decay();
            if (limits_.max_conflicts != 0 &&
                stats_.conflicts >= limits_.max_conflicts) {
                return SolveResult::Unknown;
            }
            if (stats_.conflicts % poll == 0 &&
                ((limits_.guard != nullptr && limits_.guard->stopped()) ||
                 (limits_.guard2 != nullptr && limits_.guard2->stopped()))) {
                return SolveResult::Unknown;
            }
            if (stats_.conflicts - conflicts_at_restart >= restart_budget) {
                ++stats_.restarts;
                ++restart_seq;
                conflicts_at_restart = stats_.conflicts;
                restart_budget = luby(restart_seq) * kRestartBase;
                backtrack_to(0);
            }
        } else {
            const Lit next = pick_branch();
            if (!next.defined()) return SolveResult::Sat;
            ++stats_.decisions;
            trail_lim_.push_back(trail_.size());
            enqueue(next, kNoClause);
        }
    }
}

Lit Solver::pick_branch() {
    while (!heap_.empty()) {
        const uint32_t v = heap_[0];
        // Pop the max element.
        heap_pos_[v] = kNoClause;
        heap_[0] = heap_.back();
        heap_.pop_back();
        if (!heap_.empty()) {
            heap_pos_[heap_[0]] = 0;
            heap_sift_down(0);
        }
        if (assign_[v] < 0) {
            return mk_lit(v, polarity_[v] == 0); // saved phase, default false
        }
    }
    return kLitUndef;
}

void Solver::bump(uint32_t var) {
    activity_[var] += var_inc_;
    if (activity_[var] > kRescaleAt) {
        for (double& a : activity_) a *= 1.0 / kRescaleAt;
        var_inc_ *= 1.0 / kRescaleAt;
    }
    if (heap_pos_[var] != kNoClause) heap_sift_up(heap_pos_[var]);
}

bool Solver::heap_less(uint32_t a, uint32_t b) const {
    // Max-heap order: higher activity wins, lower index breaks ties.
    if (activity_[a] != activity_[b]) return activity_[a] < activity_[b];
    return a > b;
}

void Solver::heap_insert(uint32_t var) {
    heap_pos_[var] = static_cast<uint32_t>(heap_.size());
    heap_.push_back(var);
    heap_sift_up(heap_.size() - 1);
}

void Solver::heap_sift_up(size_t i) {
    const uint32_t v = heap_[i];
    while (i > 0) {
        const size_t parent = (i - 1) / 2;
        if (!heap_less(heap_[parent], v)) break;
        heap_[i] = heap_[parent];
        heap_pos_[heap_[i]] = static_cast<uint32_t>(i);
        i = parent;
    }
    heap_[i] = v;
    heap_pos_[v] = static_cast<uint32_t>(i);
}

void Solver::heap_sift_down(size_t i) {
    const uint32_t v = heap_[i];
    const size_t n = heap_.size();
    for (;;) {
        size_t child = 2 * i + 1;
        if (child >= n) break;
        if (child + 1 < n && heap_less(heap_[child], heap_[child + 1])) {
            ++child;
        }
        if (!heap_less(v, heap_[child])) break;
        heap_[i] = heap_[child];
        heap_pos_[heap_[i]] = static_cast<uint32_t>(i);
        i = child;
    }
    heap_[i] = v;
    heap_pos_[v] = static_cast<uint32_t>(i);
}

} // namespace factor::sat
