// CNF formula builder shared by the Tseitin encoder and the CDCL solver.
//
// Literals use the MiniSat convention: variable v (0-based) yields the
// positive literal 2v and the negated literal 2v+1, so a literal indexes
// watch lists directly and negation is one XOR. The builder owns the clause
// database in a flat form the solver loads once; it also provides the small
// gate-consistency helpers (make_and / make_or with full Tseitin
// equivalence) the dual-rail netlist encoder is built from, plus a bounded
// DIMACS parser for the fuzz corpus under tests/fuzz/*.cnf.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace factor::sat {

/// Packed literal; `x == kUndef` marks "no literal".
struct Lit {
    uint32_t x = 0xffffffffu;

    [[nodiscard]] constexpr uint32_t var() const { return x >> 1; }
    [[nodiscard]] constexpr bool sign() const { return (x & 1u) != 0; }
    [[nodiscard]] constexpr bool defined() const { return x != 0xffffffffu; }
    [[nodiscard]] constexpr bool operator==(const Lit&) const = default;
};

[[nodiscard]] constexpr Lit mk_lit(uint32_t var, bool neg = false) {
    return Lit{(var << 1) | (neg ? 1u : 0u)};
}
[[nodiscard]] constexpr Lit operator~(Lit l) { return Lit{l.x ^ 1u}; }

constexpr Lit kLitUndef{};

/// Growable CNF formula. Clauses are stored as literal vectors; the solver
/// copies them into its arena at construction. `true_lit()` lazily
/// allocates a distinguished always-true variable so gate helpers can fold
/// constants without special sentinel encodings leaking into the solver.
class Cnf {
  public:
    [[nodiscard]] uint32_t new_var() { return num_vars_++; }
    [[nodiscard]] uint32_t num_vars() const { return num_vars_; }

    void add(std::vector<Lit> clause) { clauses_.push_back(std::move(clause)); }
    void add(std::initializer_list<Lit> clause) {
        clauses_.emplace_back(clause);
    }

    [[nodiscard]] const std::vector<std::vector<Lit>>& clauses() const {
        return clauses_;
    }
    [[nodiscard]] size_t num_clauses() const { return clauses_.size(); }

    /// The distinguished constant-true literal (unit clause added on first
    /// use); ~true_lit() is constant false.
    [[nodiscard]] Lit true_lit();
    [[nodiscard]] bool is_true(Lit l) const {
        return true_.defined() && l == true_;
    }
    [[nodiscard]] bool is_false(Lit l) const {
        return true_.defined() && l == ~true_;
    }

    /// y <-> AND(ins) with constant folding: known-false input returns
    /// constant false, known-true inputs drop out, empty AND is true, a
    /// single survivor passes through without a fresh variable.
    [[nodiscard]] Lit make_and(const std::vector<Lit>& ins);
    /// y <-> OR(ins), the De Morgan dual of make_and.
    [[nodiscard]] Lit make_or(const std::vector<Lit>& ins);

  private:
    uint32_t num_vars_ = 0;
    std::vector<std::vector<Lit>> clauses_;
    Lit true_ = kLitUndef;
};

/// Bounded DIMACS parser for the fuzz corpus. Returns true and fills `out`
/// on success; returns false with a one-line diagnostic in `error`
/// otherwise (missing/garbled "p cnf" header, literal outside the declared
/// variable range, unterminated clause, declared sizes past the caps).
/// Never throws and never crashes on malformed input.
[[nodiscard]] bool parse_dimacs(std::string_view text, Cnf& out,
                                std::string& error);

/// Parser caps: reject absurd headers before allocating.
inline constexpr uint64_t kDimacsMaxVars = 1u << 22;     // 4M
inline constexpr uint64_t kDimacsMaxClauses = 1u << 23;  // 8M

} // namespace factor::sat
