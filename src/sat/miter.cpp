#include "sat/miter.hpp"

#include <algorithm>

namespace factor::sat {

std::vector<uint8_t>
fault_cone(const synth::Netlist& nl, const FaultSite& fault,
           const std::vector<std::vector<synth::GateId>>* fanout_in) {
    std::vector<uint8_t> affected(nl.num_nets(), 0);
    std::vector<std::vector<synth::GateId>> local;
    if (fanout_in == nullptr) {
        local = nl.build_fanout();
        fanout_in = &local;
    }
    const auto& fanout = *fanout_in;
    std::vector<synth::NetId> queue;
    auto mark = [&](synth::NetId n) {
        if (n != synth::kNoNet && affected[n] == 0) {
            affected[n] = 1;
            queue.push_back(n);
        }
    };
    if (fault.is_stem()) {
        mark(fault.net);
    } else {
        mark(nl.gate(fault.gate).out);
    }
    while (!queue.empty()) {
        const synth::NetId n = queue.back();
        queue.pop_back();
        for (const synth::GateId g : fanout[n]) {
            mark(nl.gate(g).out); // DFFs included: the closure is sequential
        }
    }
    return affected;
}

Miter::Miter(const synth::Netlist& nl, const FaultSite& fault,
             const MiterOptions& opts,
             const std::vector<std::vector<synth::GateId>>* fanout)
    : frames_(opts.free_initial_state ? 1 : std::max<size_t>(1, opts.frames)) {
    // Shared binary primary inputs.
    pi_lits_.resize(frames_);
    for (size_t f = 0; f < frames_; ++f) {
        pi_lits_[f].reserve(nl.inputs().size());
        for (size_t i = 0; i < nl.inputs().size(); ++i) {
            pi_lits_[f].push_back(mk_lit(cnf_.new_var()));
        }
    }
    // Shared free-state pseudo-inputs (redundancy form only).
    const auto dffs = nl.dffs();
    std::vector<Lit> state;
    if (opts.free_initial_state) {
        state.reserve(dffs.size());
        for (size_t k = 0; k < dffs.size(); ++k) {
            state.push_back(mk_lit(cnf_.new_var()));
        }
    }

    CopyOptions good_opts;
    good_opts.frames = frames_;
    good_opts.free_initial_state = opts.free_initial_state;
    const CircuitCopy good(nl, cnf_, pi_lits_, state, good_opts);

    const std::vector<uint8_t> affected = fault_cone(nl, fault, fanout);
    CopyOptions bad_opts = good_opts;
    bad_opts.fault = &fault;
    bad_opts.reference = &good;
    bad_opts.affected = &affected;
    const CircuitCopy faulty(nl, cnf_, pi_lits_, state, bad_opts);

    // Observation points: POs always; DFF D-inputs in the redundancy form.
    std::vector<synth::NetId> points(nl.outputs());
    if (opts.free_initial_state) {
        for (const synth::GateId g : dffs) {
            points.push_back(nl.gate(g).ins[0]);
        }
    }
    std::vector<Lit> diffs;
    for (size_t f = 0; f < frames_; ++f) {
        for (const synth::NetId n : points) {
            const Rails g = good.rails(f, n);
            const Rails b = faulty.rails(f, n);
            if (g.one == b.one && g.zero == b.zero) continue; // outside cone
            diffs.push_back(cnf_.make_or({cnf_.make_and({g.one, b.zero}),
                                          cnf_.make_and({g.zero, b.one})}));
        }
    }
    // Assert "some observation point definitely differs". An empty or
    // constant-false objective (fault cone reaches no observation point)
    // makes the formula trivially UNSAT: the fault is redundant.
    cnf_.add({cnf_.make_or(diffs)});
}

std::vector<std::vector<bool>>
Miter::extract_inputs(const Solver& solver) const {
    std::vector<std::vector<bool>> frames(pi_lits_.size());
    for (size_t f = 0; f < pi_lits_.size(); ++f) {
        frames[f].reserve(pi_lits_[f].size());
        for (const Lit l : pi_lits_[f]) {
            frames[f].push_back(solver.model_value(l));
        }
    }
    return frames;
}

} // namespace factor::sat
