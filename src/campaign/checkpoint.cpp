#include "campaign/checkpoint.hpp"

#include "obs/inject.hpp"
#include "util/crc32.hpp"
#include "util/diagnostics.hpp"

#include <utility>

namespace factor::campaign::ckpt {

std::string fingerprint(const elab::ElaboratedDesign& design,
                        const std::vector<std::string>& paths,
                        const CampaignOptions& options) {
    util::Fnv64 h;
    h.mix(std::string_view(kSchema));
    h.mix(std::string_view(design.top().name));
    h.mix(static_cast<uint64_t>(paths.size()));
    for (const auto& p : paths) {
        h.mix(std::string_view(p));
        h.mix(static_cast<uint64_t>(0x1f)); // separator: ["a","b"]!=["ab"]
    }
    h.mix(options.mode == core::Mode::Composed);
    h.mix(options.expose_piers);
    // Engine-template fields that shape every shard's trajectory. `jobs`
    // and the campaign wall/work budgets are deliberately excluded: shards
    // are jobs-invariant, and resuming a stopped campaign with a bigger
    // budget is a supported workflow (same contract as factor.ckpt.v1).
    const atpg::EngineOptions& e = options.engine;
    h.mix(e.seed);
    h.mix(static_cast<uint64_t>(e.random_batches));
    h.mix(static_cast<uint64_t>(e.random_frames));
    h.mix(static_cast<uint64_t>(e.random_stale_limit));
    h.mix(e.max_backtracks);
    h.mix(static_cast<uint64_t>(e.max_frames));
    h.mix(e.collect_tests);
    h.mix(static_cast<uint64_t>(e.retry_rounds));
    h.mix(e.retry_backtrack_growth);
    h.mix(e.retry_backtrack_cap);
    // The resolved engine kind and the resolved SAT knobs shape every
    // shard's trajectory exactly like the PODEM knobs above (DESIGN.md
    // §12). A malformed FACTOR_ENGINE / FACTOR_SAT_* must not throw out
    // of run_campaign — every shard will report the named error itself;
    // fingerprint the unresolved option in that case.
    std::string_view eng;
    try {
        eng = atpg::to_string(atpg::resolve_engine(e.engine));
    } catch (const util::FactorError&) {
        eng = atpg::to_string(e.engine);
    }
    h.mix(eng);
    uint64_t sat_budget = e.sat_conflict_budget;
    try {
        sat_budget = atpg::resolve_sat_budget(e.sat_conflict_budget);
    } catch (const util::FactorError&) {
    }
    h.mix(sat_budget);
    uint64_t sat_frames = e.sat_max_frames;
    try {
        sat_frames = atpg::resolve_sat_frames(e.sat_max_frames);
    } catch (const util::FactorError&) {
    }
    h.mix(sat_frames);
    return h.hex();
}

std::string shard_journal_path(const std::string& path, size_t index) {
    return path + ".s" + std::to_string(index);
}

util::JournalRecord encode_header(const Header& h) {
    util::JournalRecord rec;
    rec.set("t", "h")
        .set("schema", kSchema)
        .set("fp", h.fingerprint)
        .set_u64("shards", h.shards);
    return rec;
}

util::JournalRecord encode_shard(const ShardOutcome& s) {
    util::JournalRecord rec;
    rec.set("t", "sd")
        .set_u64("i", s.index)
        .set("path", s.mut_path)
        .set("st", to_string(s.status))
        .set_u64("attempts", s.attempts)
        .set_u64("rec", s.recovered ? 1 : 0)
        .set_f64("backoff_s", s.backoff_seconds)
        .set_f64("secs", s.seconds)
        .set_u64("faults", s.faults)
        .set_u64("det", s.detected)
        .set_u64("unt", s.untestable)
        .set_u64("abt", s.aborted)
        .set_u64("rdt", s.redundant)
        .set_f64("cov", s.coverage_percent)
        .set_f64("eff", s.efficiency_percent)
        .set_u64("vec", s.vectors)
        .set_u64("rseq", s.random_sequences)
        .set_u64("pret", s.podem_retries)
        .set_u64("prec", s.retry_recovered)
        .set_u64("mutg", s.mut_gates)
        .set_u64("surg", s.surrounding_gates)
        .set_u64("piers", s.piers_exposed);
    if (!s.detail.empty()) rec.set("detail", s.detail);
    return rec;
}

namespace {

[[nodiscard]] Load reject(std::string cause, std::string why) {
    Load out;
    out.ok = false;
    out.diagnostic = "campaign.ckpt_" + std::move(cause) + ": " +
                     std::move(why);
    return out;
}

/// Decode one "sd" record; returns a campaign.ckpt_* diagnostic ("" = ok).
[[nodiscard]] std::string decode_shard(const util::JournalRecord& rec,
                                       uint64_t num_shards,
                                       ShardOutcome& out) {
    const std::string* path = rec.get("path");
    const std::string* st = rec.get("st");
    if (path == nullptr || st == nullptr || !rec.has("i") ||
        !rec.has("faults")) {
        return "campaign.ckpt_malformed_record: shard record is missing "
               "required fields";
    }
    out.index = rec.get_u64("i");
    if (out.index >= num_shards) {
        return "campaign.ckpt_shard_out_of_range: shard index " +
               std::to_string(out.index) + " in a campaign of " +
               std::to_string(num_shards) + " shards";
    }
    out.mut_path = *path;
    if (!parse_shard_status(*st, out.status)) {
        return "campaign.ckpt_bad_status: unknown shard status '" + *st +
               "'";
    }
    if (const std::string* d = rec.get("detail")) out.detail = *d;
    out.attempts = rec.get_u64("attempts");
    out.recovered = rec.get_u64("rec") != 0;
    out.backoff_seconds = rec.get_f64("backoff_s");
    out.seconds = rec.get_f64("secs");
    out.faults = rec.get_u64("faults");
    out.detected = rec.get_u64("det");
    out.untestable = rec.get_u64("unt");
    out.aborted = rec.get_u64("abt");
    out.redundant = rec.get_u64("rdt"); // absent in pre-§12 journals: 0
    out.coverage_percent = rec.get_f64("cov");
    out.efficiency_percent = rec.get_f64("eff");
    out.vectors = rec.get_u64("vec");
    out.random_sequences = rec.get_u64("rseq");
    out.podem_retries = rec.get_u64("pret");
    out.retry_recovered = rec.get_u64("prec");
    out.mut_gates = rec.get_u64("mutg");
    out.surrounding_gates = rec.get_u64("surg");
    out.piers_exposed = rec.get_u64("piers");
    // A recorded shard's counts must close: the engine resolves every
    // fault (aborting the remainder on a stop) before the supervisor
    // journals the outcome, so a mismatch means the record captured a
    // shard mid-flight — a torn shard boundary, never trusted.
    if (out.detected + out.untestable + out.aborted + out.redundant !=
        out.faults) {
        return "campaign.ckpt_torn_shard: shard " +
               std::to_string(out.index) +
               " counts do not close (detected + untestable + aborted + "
               "redundant != faults) — torn shard boundary";
    }
    out.resumed = true;
    return "";
}

} // namespace

Load load(const std::string& path, const std::string& expected_fingerprint,
          size_t num_shards) {
    util::JournalLoad jl = util::journal_load(path);
    if (!jl.ok) {
        return reject("open_failed", "cannot read campaign checkpoint '" +
                                         path + "': " + jl.error);
    }
    if (jl.records.empty()) {
        return reject("empty", "campaign checkpoint '" + path +
                                   "' has no trusted records");
    }
    const util::JournalRecord& first = jl.records.front();
    const std::string* t = first.get("t");
    if (t == nullptr || *t != "h") {
        return reject("missing_header",
                      "first record is not a campaign header");
    }
    const std::string* schema = first.get("schema");
    if (schema == nullptr || *schema != kSchema) {
        return reject("bad_schema",
                      "expected schema " + std::string(kSchema) + ", got '" +
                          (schema != nullptr ? *schema : "") + "'");
    }
    Load out;
    const std::string* fp = first.get("fp");
    out.header.fingerprint = fp != nullptr ? *fp : "";
    out.header.shards = first.get_u64("shards");
    if (out.header.fingerprint != expected_fingerprint) {
        return reject("fingerprint_mismatch",
                      "campaign checkpoint was written by a different run "
                      "configuration (design, MUT list or engine options "
                      "changed)");
    }
    if (out.header.shards != num_shards) {
        return reject("shard_count_mismatch",
                      "checkpoint has " + std::to_string(out.header.shards) +
                          " shards, this campaign has " +
                          std::to_string(num_shards));
    }
    std::vector<bool> seen(num_shards, false);
    for (size_t i = 1; i < jl.records.size(); ++i) {
        const util::JournalRecord& rec = jl.records[i];
        const std::string* kind = rec.get("t");
        if (kind == nullptr || *kind != "sd") {
            return reject("malformed_record",
                          "unexpected record type '" +
                              (kind != nullptr ? *kind : "") +
                              "' after the header");
        }
        ShardOutcome shard;
        std::string err = decode_shard(rec, num_shards, shard);
        if (!err.empty()) {
            Load r;
            r.ok = false;
            r.diagnostic = std::move(err);
            return r;
        }
        if (seen[shard.index]) {
            return reject("duplicate_shard",
                          "shard " + std::to_string(shard.index) +
                              " is recorded twice");
        }
        seen[shard.index] = true;
        out.shards.push_back(std::move(shard));
    }
    out.ok = true;
    out.dropped_lines = jl.dropped_lines;
    return out;
}

bool Writer::start_fresh(const std::string& path, const Header& h) {
    fail_reason_.clear();
    if (!jw_.open(path)) return false;
    return append_checked(encode_header(h));
}

bool Writer::start_rewrite(const std::string& path, const Header& h,
                           const std::vector<ShardOutcome>& done) {
    fail_reason_.clear();
    if (!jw_.open_temp(path)) return false;
    if (!append_checked(encode_header(h))) return false;
    for (const ShardOutcome& s : done) {
        if (!append_checked(encode_shard(s))) return false;
    }
    return jw_.publish();
}

bool Writer::append_shard(const ShardOutcome& shard) {
    return append_checked(encode_shard(shard));
}

bool Writer::append_checked(const util::JournalRecord& rec) {
    if (failed()) return false;
    try {
        obs::inject_point("campaign.ckpt_write");
    } catch (const util::FactorError& e) {
        // Latch instead of throwing: shard workers must not throw across
        // the pool, and the journal keeps its committed prefix.
        fail_reason_ = e.what();
        return false;
    }
    return jw_.append(rec);
}

} // namespace factor::campaign::ckpt
