// Campaign checkpoint/resume: the "factor.campaign.ckpt.v1" record schema
// over util::Journal.
//
// A campaign's durable state is simply the set of completed shard
// outcomes: shard results are deterministic and order-independent (keyed
// by shard index), so the journal needs one header plus one "sd" record
// per finished shard, appended in completion order under the supervisor's
// mutex. The in-flight shard's fine-grained progress lives in its own
// engine journal ("<campaign>.s<index>", schema factor.ckpt.v1) — on
// resume, completed shards are restored from their records, and an
// unfinished shard whose engine journal survives is resumed through the
// engine's own replay path, byte-identically at any --jobs value.
//
// Record stream (one CRC-framed NDJSON line each):
//   h   header: schema, fingerprint, shard count
//   sd  one completed shard: index, MUT path, status, attempts, recovered
//       flag, backoff, the stable result numbers and the (unstable) wall
//       seconds
//
// The fingerprint hashes the top module, the ordered MUT paths, the mode /
// pier exposure and every engine-template field that shapes a shard's
// trajectory. It deliberately excludes `jobs` (shards are jobs-invariant)
// and the campaign wall/work budgets (resuming with a bigger budget to
// finish a stopped campaign is a supported workflow, the same contract as
// the engine checkpoint).
//
// Validation mirrors atpg::ckpt::load(): journal framing truncates torn
// tails silently (an interrupted append loses only itself), but a
// CRC-valid record that is semantically impossible — wrong schema, shard
// index out of range or duplicated, unknown status name, fault counts that
// do not add up (a torn shard boundary) — refuses the resume with a named
// "campaign.ckpt_*" diagnostic rather than risk a silent mis-resume.
#pragma once

#include "campaign/campaign.hpp"
#include "util/journal.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace factor::campaign::ckpt {

inline constexpr const char* kSchema = "factor.campaign.ckpt.v1";

struct Header {
    std::string fingerprint;
    uint64_t shards = 0;
};

/// Fingerprint of everything that pins the campaign's shard trajectories.
[[nodiscard]] std::string fingerprint(const elab::ElaboratedDesign& design,
                                      const std::vector<std::string>& paths,
                                      const CampaignOptions& options);

/// The engine-journal path of shard `index` under campaign journal `path`.
[[nodiscard]] std::string shard_journal_path(const std::string& path,
                                             size_t index);

struct Load {
    bool ok = false;
    /// Named diagnostic on failure, e.g. "campaign.ckpt_bad_schema: ...".
    /// The leading token before ':' is stable.
    std::string diagnostic;
    Header header;
    std::vector<ShardOutcome> shards; // completed shards, as recorded
    size_t dropped_lines = 0;         // torn tail truncated by the journal
};

/// Load and validate a campaign journal against the expected fingerprint
/// and shard count of the current invocation.
[[nodiscard]] Load load(const std::string& path,
                        const std::string& expected_fingerprint,
                        size_t num_shards);

/// Appends factor.campaign.ckpt.v1 records. IO errors and injected faults
/// at the "campaign.ckpt_write" site are latched in failed() instead of
/// thrown — shard workers must not throw across the thread pool, and the
/// journal keeps its committed prefix for the next --resume.
class Writer {
  public:
    /// Fresh campaign: create/truncate `path`, write the header.
    [[nodiscard]] bool start_fresh(const std::string& path, const Header& h);

    /// Resume: rebuild the journal as header + restored shard records in
    /// "<path>.tmp", atomically publish it over `path`, keep appending.
    [[nodiscard]] bool start_rewrite(const std::string& path, const Header& h,
                                     const std::vector<ShardOutcome>& done);

    [[nodiscard]] bool append_shard(const ShardOutcome& shard);

    [[nodiscard]] bool active() const { return jw_.is_open(); }
    [[nodiscard]] bool failed() const {
        return jw_.failed() || !fail_reason_.empty();
    }
    [[nodiscard]] const std::string& error() const {
        return fail_reason_.empty() ? jw_.error() : fail_reason_;
    }

  private:
    [[nodiscard]] bool append_checked(const util::JournalRecord& rec);

    util::JournalWriter jw_;
    std::string fail_reason_; // injected-fault latch (stream errors live
                              // in the JournalWriter itself)
};

// Codecs, exposed for tests and fuzz tooling.
[[nodiscard]] util::JournalRecord encode_header(const Header& h);
[[nodiscard]] util::JournalRecord encode_shard(const ShardOutcome& s);

} // namespace factor::campaign::ckpt
