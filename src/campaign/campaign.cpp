#include "campaign/campaign.hpp"

#include "cache/ccache.hpp"

#include "campaign/checkpoint.hpp"
#include "core/transform.hpp"
#include "obs/inject.hpp"
#include "obs/progress.hpp"
#include "util/diagnostics.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

namespace factor::campaign {

const char* to_string(ShardStatus s) {
    switch (s) {
    case ShardStatus::Ok: return "ok";
    case ShardStatus::Degraded: return "degraded";
    case ShardStatus::BudgetExhausted: return "budget_exhausted";
    case ShardStatus::Failed: return "failed";
    case ShardStatus::Crashed: return "crashed";
    }
    return "failed";
}

bool parse_shard_status(std::string_view name, ShardStatus& out) {
    if (name == "ok") out = ShardStatus::Ok;
    else if (name == "degraded") out = ShardStatus::Degraded;
    else if (name == "budget_exhausted") out = ShardStatus::BudgetExhausted;
    else if (name == "failed") out = ShardStatus::Failed;
    else if (name == "crashed") out = ShardStatus::Crashed;
    else return false;
    return true;
}

util::PhaseStatus to_phase_status(ShardStatus s) {
    switch (s) {
    case ShardStatus::Ok: return util::PhaseStatus::Ok;
    case ShardStatus::Degraded: return util::PhaseStatus::Degraded;
    case ShardStatus::BudgetExhausted:
        return util::PhaseStatus::BudgetExhausted;
    case ShardStatus::Failed:
    case ShardStatus::Crashed: return util::PhaseStatus::Failed;
    }
    return util::PhaseStatus::Failed;
}

SpecResolution resolve_spec(const elab::ElaboratedDesign& design,
                            const std::string& spec) {
    SpecResolution out;
    if (spec.empty()) {
        out.diagnostic = "campaign.bad_spec: empty --campaign spec (use "
                         "'all' or a comma-separated list of instance "
                         "paths)";
        return out;
    }
    if (spec == "all") {
        for (const elab::InstNode* n : design.all_nodes()) {
            if (n->parent == nullptr) continue; // the design itself
            out.muts.push_back(n);
            out.paths.push_back(n->path());
        }
        if (out.muts.empty()) {
            out.diagnostic = "campaign.empty: design '" +
                             design.top().name +
                             "' has no child instances to campaign over";
            return out;
        }
        out.ok = true;
        return out;
    }
    if (spec.back() == ',') {
        // getline would silently drop the empty trailing segment.
        out.diagnostic = "campaign.bad_spec: empty MUT path in "
                         "--campaign list '" + spec + "'";
        return out;
    }
    std::stringstream ss(spec);
    std::string item;
    while (std::getline(ss, item, ',')) {
        // Trim surrounding whitespace so "a, b" works.
        size_t b = item.find_first_not_of(" \t");
        size_t e = item.find_last_not_of(" \t");
        item = b == std::string::npos ? "" : item.substr(b, e - b + 1);
        if (item.empty()) {
            out.muts.clear();
            out.paths.clear();
            out.diagnostic = "campaign.bad_spec: empty MUT path in "
                             "--campaign list '" + spec + "'";
            return out;
        }
        const elab::InstNode* node = design.find_by_path(item);
        if (node == nullptr) {
            out.muts.clear();
            out.paths.clear();
            out.diagnostic =
                "campaign.unknown_mut: no instance at path '" + item + "'";
            return out;
        }
        if (std::find(out.paths.begin(), out.paths.end(), item) !=
            out.paths.end()) {
            out.muts.clear();
            out.paths.clear();
            out.diagnostic = "campaign.duplicate_mut: instance path '" +
                             item + "' listed twice";
            return out;
        }
        out.muts.push_back(node);
        out.paths.push_back(item);
    }
    if (out.muts.empty()) {
        out.diagnostic =
            "campaign.bad_spec: no MUT paths in --campaign spec '" + spec +
            "'";
        return out;
    }
    out.ok = true;
    return out;
}

obs::Doc ShardOutcome::doc(bool timing) const {
    obs::Doc d;
    d.add("index", static_cast<uint64_t>(index));
    d.add("mut", mut_path);
    d.add("status", std::string(to_string(status)));
    d.add("attempts", attempts);
    d.add("recovered", recovered);
    d.add("resumed", resumed);
    d.add("faults", faults);
    d.add("detected", detected);
    d.add("untestable", untestable);
    d.add("aborted", aborted);
    d.add("redundant", redundant);
    d.add("coverage_percent", coverage_percent);
    d.add("efficiency_percent", efficiency_percent);
    d.add("vectors", vectors);
    d.add("random_sequences", random_sequences);
    d.add("podem_retries", podem_retries);
    d.add("retry_recovered", retry_recovered);
    d.add("mut_gates", mut_gates);
    d.add("surrounding_gates", surrounding_gates);
    d.add("piers_exposed", piers_exposed);
    if (timing) {
        d.add("backoff_seconds", backoff_seconds);
        d.add("time_seconds", seconds);
    }
    if (!detail.empty()) d.add("detail", detail);
    return d;
}

obs::Doc CampaignResult::totals_doc(bool timing) const {
    obs::Doc d;
    d.add("shards", static_cast<uint64_t>(shards.size()));
    d.add("shards_ok", shards_ok);
    d.add("shards_degraded", shards_degraded);
    d.add("shards_budget_exhausted", shards_budget_exhausted);
    d.add("shards_failed", shards_failed);
    d.add("shards_crashed", shards_crashed);
    d.add("shards_retried", shards_retried);
    d.add("shards_recovered", shards_recovered);
    d.add("shards_resumed", shards_resumed);
    d.add("faults", total_faults);
    d.add("detected", total_detected);
    d.add("untestable", total_untestable);
    d.add("aborted", total_aborted);
    d.add("redundant", total_redundant);
    d.add("coverage_percent", coverage_percent);
    d.add("vectors", total_vectors);
    d.add("random_sequences", total_random_sequences);
    d.add("threads", threads);
    if (timing) d.add("time_seconds", seconds);
    d.add("status", std::string(util::to_string(status)));
    d.add("ckpt_failed", ckpt_failed);
    return d;
}

std::string CampaignResult::to_json() const {
    std::ostringstream out;
    out << "{\"schema\":\"factor.campaign.v1\""
        << ",\"top\":\"" << obs::json_escape(top) << '"'
        << ",\"spec\":\"" << obs::json_escape(spec) << '"'
        << ",\"mode\":"
        << (mode == core::Mode::Composed ? "\"composed\"" : "\"flat\"")
        << ",\"status\":\"" << util::to_string(status) << '"'
        << ",\"status_detail\":\"" << obs::json_escape(status_detail) << '"'
        << ",\"refused\":" << (refused ? "true" : "false");
    if (refused) {
        out << ",\"refusal\":\"" << obs::json_escape(refusal) << '"';
    }
    out << ",\"shards\":[";
    for (size_t i = 0; i < shards.size(); ++i) {
        if (i > 0) out << ',';
        out << shards[i].doc().to_json();
    }
    out << "],\"totals\":" << totals_doc().to_json() << "}\n";
    return out.str();
}

std::string CampaignResult::to_text() const {
    std::ostringstream out;
    out << "campaign " << top << " spec=" << spec << ": " << shards.size()
        << " shard" << (shards.size() == 1 ? "" : "s") << "\n";
    if (refused) {
        out << "  refused: " << refusal << "\n";
        return out.str();
    }
    for (const ShardOutcome& s : shards) {
        out << "  [" << s.index << "] " << s.doc().to_text() << "\n";
    }
    out << "  totals: " << totals_doc().to_text() << "\n";
    return out.str();
}

namespace {

/// Saturating budget escalation: carve * growth^(attempt-1).
[[nodiscard]] uint64_t grow_quota(uint64_t carve, uint32_t growth,
                                  uint64_t attempt) {
    if (carve == 0) return 0; // unlimited stays unlimited
    uint64_t q = carve;
    for (uint64_t k = 1; k < attempt; ++k) {
        if (growth != 0 && q > UINT64_MAX / growth) return UINT64_MAX;
        q *= growth == 0 ? 1 : growth;
    }
    return q;
}

[[nodiscard]] bool file_exists(const std::string& path) {
    return static_cast<bool>(std::ifstream(path));
}

/// Everything one shard attempt needs from the campaign.
struct ShardContext {
    const elab::ElaboratedDesign& design;
    const CampaignOptions& opts;
    const elab::InstNode* mut = nullptr;
    std::string path;
    size_t index = 0;
    uint64_t quota_carve = 0; // per-shard first-attempt work quota
    double wall_carve = 0.0;  // per-shard first-attempt wall seconds
    std::string engine_journal; // "" when checkpointing is off
};

/// One pipeline attempt for one shard, fully contained: never throws.
/// Returns the candidate outcome for this attempt (attempts/backoff/
/// seconds bookkeeping belongs to the caller's retry loop).
[[nodiscard]] ShardOutcome run_attempt(const ShardContext& cx,
                                       util::RunGuard& guard) {
    ShardOutcome so;
    so.index = cx.index;
    so.mut_path = cx.path;
    try {
        obs::inject_point("campaign.shard_start");
        if (obs::FaultInjector::global().armed()) {
            obs::inject_point("campaign.shard_start." + cx.path);
        }
        util::DiagEngine diags;
        core::ExtractionSession session(cx.design, cx.opts.mode, diags,
                                        &guard);
        if (cx.opts.ccache != nullptr) {
            (void)cx.opts.ccache->warm_start(session);
        }
        core::TransformBuilder builder(cx.design, diags, &guard);
        core::TransformOptions topts;
        topts.expose_piers = cx.opts.expose_piers;
        core::TransformedModule tm = builder.build(*cx.mut, session, topts);
        if (cx.opts.ccache != nullptr) cx.opts.ccache->absorb(session);
        so.mut_gates = tm.mut_gates;
        so.surrounding_gates = tm.surrounding_gates;
        so.piers_exposed = tm.piers_exposed;
        if (tm.status == util::PhaseStatus::Failed) {
            so.status = ShardStatus::Failed;
            so.detail = tm.status_detail.empty() ? "transform failed"
                                                 : tm.status_detail;
            return so;
        }

        atpg::EngineOptions eo = cx.opts.engine;
        eo.guard = &guard;
        eo.jobs = 1; // across-shard parallelism only (no oversubscription)
        eo.time_budget_s = 0.0; // the shard guard owns the wall budget
        eo.scope_prefix = tm.mut_prefix;
        eo.checkpoint_path.clear();
        eo.resume = false;
        // Journal the engine only under a complete transform: a netlist
        // truncated by a budget stop would fingerprint differently from
        // the full one a retry rebuilds, poisoning the resume.
        const bool transform_complete =
            tm.status == util::PhaseStatus::Ok ||
            tm.status == util::PhaseStatus::Degraded;
        if (!cx.engine_journal.empty() && transform_complete) {
            eo.checkpoint_path = cx.engine_journal;
            eo.resume = file_exists(cx.engine_journal);
        }
        atpg::EngineResult r = atpg::run_atpg(tm.netlist, eo);
        if (r.resume_refused) {
            so.status = ShardStatus::Failed;
            so.detail = r.status_detail;
            return so;
        }
        if (r.status == util::PhaseStatus::Failed &&
            util::starts_with(r.status_detail, "ckpt.")) {
            // The shard's engine journal could not be appended: a
            // transient environment failure, not a property of the MUT.
            // Never journaled, so --resume re-attempts the shard.
            so.status = ShardStatus::Failed;
            so.detail = r.status_detail;
            so.transient = true;
            return so;
        }
        so.faults = r.total_faults;
        so.detected = r.detected;
        so.untestable = r.untestable;
        so.aborted = r.aborted;
        so.redundant = r.redundant;
        so.coverage_percent = r.coverage_percent;
        so.efficiency_percent = r.efficiency_percent;
        so.vectors = r.deterministic_tests;
        so.random_sequences = r.random_sequences;
        so.podem_retries = r.retried_faults;
        so.retry_recovered = r.retry_recovered;
        util::PhaseStatus worst = util::worst(tm.status, r.status);
        switch (worst) {
        case util::PhaseStatus::Ok: so.status = ShardStatus::Ok; break;
        case util::PhaseStatus::Degraded:
            so.status = ShardStatus::Degraded;
            break;
        case util::PhaseStatus::BudgetExhausted:
            so.status = ShardStatus::BudgetExhausted;
            break;
        case util::PhaseStatus::Failed:
            so.status = ShardStatus::Failed;
            break;
        }
        if (so.status != ShardStatus::Ok) {
            so.detail = worst == r.status ? r.status_detail
                                          : tm.status_detail;
            if (so.detail.empty()) so.detail = util::to_string(worst);
        }
    } catch (const std::exception& e) {
        // Containment: a crash (injected fault, escaped invariant) is
        // classified, never propagated — pool tasks must not throw and
        // the rest of the campaign proceeds.
        so.status = ShardStatus::Crashed;
        so.detail = e.what();
        so.faults = so.detected = so.untestable = so.aborted =
            so.redundant = 0;
        so.coverage_percent = so.efficiency_percent = 0.0;
        so.vectors = so.random_sequences = 0;
    }
    return so;
}

/// The full retry loop for one shard: escalating budgets with exponential
/// backoff, stopping early on campaign-level stops.
[[nodiscard]] ShardOutcome run_shard(const ShardContext& cx) {
    util::Stopwatch watch;
    ShardOutcome so;
    so.index = cx.index;
    so.mut_path = cx.path;
    const uint64_t max_attempts = 1 + cx.opts.shard_retries;
    double backoff_total = 0.0;
    for (uint64_t attempt = 1; attempt <= max_attempts; ++attempt) {
        util::GuardLimits limits;
        limits.work_quota =
            grow_quota(cx.quota_carve, cx.opts.budget_growth, attempt);
        if (cx.wall_carve > 0.0) {
            double w = cx.wall_carve;
            for (uint64_t k = 1; k < attempt; ++k) {
                w *= cx.opts.budget_growth == 0 ? 1 : cx.opts.budget_growth;
            }
            // Wall budgets are real time: never hand one shard more than
            // the whole campaign was given.
            limits.wall_seconds =
                std::min(w, std::max(cx.opts.total_budget_s, cx.wall_carve));
        }
        util::RunGuard guard(limits);
        ShardOutcome att = run_attempt(cx, guard);
        att.attempts = attempt;
        att.backoff_seconds = backoff_total;
        so = std::move(att);
        if (so.status != ShardStatus::BudgetExhausted) {
            if (attempt > 1 && (so.status == ShardStatus::Ok ||
                                so.status == ShardStatus::Degraded)) {
                so.recovered = true;
            }
            break;
        }
        if (attempt == max_attempts) break;
        // No retry once the campaign itself is out of budget/interrupted.
        if (util::RunGuard::interrupt_requested()) break;
        if (cx.opts.guard != nullptr && cx.opts.guard->stopped()) break;
        double delay = cx.opts.backoff_base_s;
        for (uint64_t k = 1; k < attempt; ++k) delay *= 2.0;
        if (delay > 0.0) {
            backoff_total += delay;
            std::this_thread::sleep_for(
                std::chrono::duration<double>(delay));
        }
    }
    so.seconds = watch.seconds();
    return so;
}

} // namespace

CampaignResult run_campaign(const elab::ElaboratedDesign& design,
                            const CampaignOptions& options) {
    obs::Span span("campaign.run");
    util::Stopwatch watch;
    CampaignResult out;
    out.top = design.top().name;
    out.spec = options.spec;
    out.mode = options.mode;

    SpecResolution spec = resolve_spec(design, options.spec);
    if (!spec.ok) {
        out.refused = true;
        out.refusal = spec.diagnostic;
        out.status = util::PhaseStatus::Failed;
        out.status_detail = spec.diagnostic;
        return out;
    }
    const size_t n = spec.muts.size();
    span.attr("shards", static_cast<uint64_t>(n));
    const size_t jobs = options.jobs > 0 ? options.jobs
                                         : util::ThreadPool::default_jobs();
    out.threads = std::min(jobs, n);
    out.shards.resize(n);

    // Budget carving: every shard's first attempt gets an even slice of
    // the campaign budget (0 stays unlimited).
    const uint64_t quota_carve =
        options.work_quota == 0
            ? 0
            : std::max<uint64_t>(1, options.work_quota / n);
    const double wall_carve =
        options.total_budget_s <= 0.0 ? 0.0 : options.total_budget_s / n;

    // ---- campaign journal -------------------------------------------------
    const bool ckpt_on = !options.checkpoint_path.empty();
    const std::string fp =
        ckpt_on ? ckpt::fingerprint(design, spec.paths, options) : "";
    ckpt::Writer writer;
    std::vector<bool> done(n, false);
    if (ckpt_on && options.resume) {
        ckpt::Load loaded = ckpt::load(options.checkpoint_path, fp, n);
        if (!loaded.ok) {
            out.refused = true;
            out.refusal = loaded.diagnostic;
            out.status = util::PhaseStatus::Failed;
            out.status_detail = loaded.diagnostic;
            out.shards.clear();
            return out;
        }
        for (ShardOutcome& s : loaded.shards) {
            done[s.index] = true;
            out.shards[s.index] = std::move(s);
        }
        std::vector<ShardOutcome> restored;
        for (size_t i = 0; i < n; ++i) {
            if (done[i]) restored.push_back(out.shards[i]);
        }
        (void)writer.start_rewrite(options.checkpoint_path,
                                   ckpt::Header{fp, n}, restored);
    } else if (ckpt_on) {
        (void)writer.start_fresh(options.checkpoint_path,
                                 ckpt::Header{fp, n});
    }

    // ---- shard fan-out ----------------------------------------------------
    std::mutex mu; // journal appends + progress accounting
    uint64_t shards_finished = 0;
    uint64_t agg_faults = 0, agg_detected = 0;
    for (size_t i = 0; i < n; ++i) {
        if (!done[i]) continue;
        ++shards_finished;
        agg_faults += out.shards[i].faults;
        agg_detected += out.shards[i].detected;
    }

    util::ThreadPool pool(std::min(jobs, std::max<size_t>(n, 1)));
    pool.for_each(n, [&](size_t, size_t index) {
        if (done[index]) return; // restored from the journal
        ShardContext cx{design,
                        options,
                        spec.muts[index],
                        spec.paths[index],
                        index,
                        quota_carve,
                        wall_carve,
                        ckpt_on ? ckpt::shard_journal_path(
                                      options.checkpoint_path, index)
                                : std::string()};
        ShardOutcome so;
        bool launched = true;
        {
            std::lock_guard<std::mutex> lock(mu);
            if (writer.failed()) {
                // The campaign journal is broken: do not start work whose
                // completion could not be recorded. Unattempted and
                // transient, so --resume re-runs it.
                so.index = index;
                so.mut_path = cx.path;
                so.status = ShardStatus::Failed;
                so.detail = "campaign.ckpt_write_failed: shard not "
                            "attempted (campaign journal unwritable)";
                so.transient = true;
                launched = false;
            }
        }
        if (launched && options.guard != nullptr &&
            options.guard->stopped()) {
            so.index = index;
            so.mut_path = cx.path;
            so.status = ShardStatus::BudgetExhausted;
            so.detail = std::string("campaign.skipped: campaign ") +
                        util::to_string(options.guard->reason()) +
                        " budget exhausted before shard started";
            so.transient = true; // never journaled: --resume attempts it
            launched = false;
        }
        if (launched) {
            obs::ShardScope scope(cx.path);
            so = run_shard(cx);
        }

        std::lock_guard<std::mutex> lock(mu);
        if (ckpt_on && !so.transient && writer.active() &&
            !writer.failed()) {
            if (writer.append_shard(so)) {
                // The shard is durable; its fine-grained engine journal
                // is now redundant.
                if (!cx.engine_journal.empty()) {
                    std::remove(cx.engine_journal.c_str());
                }
            }
        }
        ++shards_finished;
        agg_faults += so.faults;
        agg_detected += so.detected;
        if (obs::Progress::global().enabled()) {
            obs::ProgressSnapshot snap;
            snap.phase = "campaign";
            snap.shard = so.mut_path;
            snap.shards_total = n;
            snap.shards_done = shards_finished;
            snap.faults_total = agg_faults;
            snap.faults_done = agg_faults;
            snap.detected = agg_detected;
            snap.coverage_percent =
                agg_faults > 0 ? 100.0 * static_cast<double>(agg_detected) /
                                     static_cast<double>(agg_faults)
                               : 0.0;
            snap.threads = out.threads;
            snap.elapsed_seconds = watch.seconds();
            obs::Progress::global().tick(snap);
        }
        out.shards[index] = std::move(so);
    });

    // ---- aggregation ------------------------------------------------------
    try {
        obs::inject_point("campaign.aggregate");
        for (const ShardOutcome& s : out.shards) {
            switch (s.status) {
            case ShardStatus::Ok: ++out.shards_ok; break;
            case ShardStatus::Degraded: ++out.shards_degraded; break;
            case ShardStatus::BudgetExhausted:
                ++out.shards_budget_exhausted;
                break;
            case ShardStatus::Failed: ++out.shards_failed; break;
            case ShardStatus::Crashed: ++out.shards_crashed; break;
            }
            if (s.attempts > 1) ++out.shards_retried;
            if (s.recovered) ++out.shards_recovered;
            if (s.resumed) ++out.shards_resumed;
            out.total_faults += s.faults;
            out.total_detected += s.detected;
            out.total_untestable += s.untestable;
            out.total_aborted += s.aborted;
            out.total_redundant += s.redundant;
            out.total_vectors += s.vectors;
            out.total_random_sequences += s.random_sequences;
            out.status = util::worst(out.status, to_phase_status(s.status));
            if (out.status_detail.empty() && !s.detail.empty() &&
                to_phase_status(s.status) == out.status) {
                out.status_detail = "shard " + std::to_string(s.index) +
                                    " (" + s.mut_path + "): " + s.detail;
            }
        }
        out.coverage_percent =
            out.total_faults > 0
                ? 100.0 * static_cast<double>(out.total_detected) /
                      static_cast<double>(out.total_faults)
                : 0.0;
    } catch (const std::exception& e) {
        out.status = util::PhaseStatus::Failed;
        out.status_detail =
            std::string("campaign.aggregate_failed: ") + e.what();
    }

    if (ckpt_on && writer.failed()) {
        out.ckpt_failed = true;
        out.status = util::PhaseStatus::Failed;
        out.status_detail = "campaign.ckpt_write_failed: " + writer.error();
    }
    out.seconds = watch.seconds();

    if (obs::Progress::global().enabled()) {
        obs::ProgressSnapshot snap;
        snap.phase = "campaign";
        snap.shards_total = n;
        snap.shards_done = shards_finished;
        snap.faults_total = out.total_faults;
        snap.faults_done = out.total_faults;
        snap.detected = out.total_detected;
        snap.untestable = out.total_untestable;
        snap.aborted = out.total_aborted;
        snap.redundant = out.total_redundant;
        snap.coverage_percent = out.coverage_percent;
        snap.vectors = out.total_vectors;
        snap.random_sequences = out.total_random_sequences;
        snap.threads = out.threads;
        snap.elapsed_seconds = out.seconds;
        obs::Progress::global().emit_final(snap);
    }

    obs::counter("campaign.shards").add(n);
    obs::counter("campaign.shards.crashed").add(out.shards_crashed);
    obs::counter("campaign.shards.retried").add(out.shards_retried);
    return out;
}

} // namespace factor::campaign
