// Multi-MUT campaign supervisor: fault-isolated batch ATPG over a design.
//
// FACTOR's payoff is amortizing constraint extraction across every module
// under test in a design, but one process per MUT makes any hard failure
// fatal to the whole batch. The campaign layer runs each MUT's
// extract -> synthesize -> transform -> ATPG pipeline as an isolated
// *shard* on the shared thread pool:
//
//   * every shard gets its own RunGuard carved from the campaign budget
//     (wall seconds and work quota are split evenly across shards), its
//     own DiagEngine and its own ExtractionSession, so a shard's result is
//     byte-identical to running that MUT standalone with the same budget;
//   * every shard outcome is classified by a five-way taxonomy
//     (ok / degraded / budget_exhausted / failed / crashed) — a thrown
//     FactorError, an injected fault or a malformed module is contained to
//     its shard and the rest of the campaign proceeds;
//   * budget-exhausted shards are retried with exponential backoff and a
//     x4-growing budget per attempt (the PR 4 escalation shape); with
//     checkpointing on, a retry *resumes* the shard's engine journal, so
//     the grown budget is end-to-end, not per-attempt;
//   * with --checkpoint, completed shards are journaled
//     (factor.campaign.ckpt.v1, see campaign/checkpoint.hpp) and --resume
//     skips them, resuming the in-flight shard from its own engine
//     checkpoint byte-identically at any --jobs value.
//
// Determinism contract: shard results are independent of the jobs value
// and of shard completion order — outcomes are keyed by shard index, the
// aggregate is computed in index order, and each shard's engine runs with
// jobs=1 on its worker thread (the campaign parallelizes across shards,
// never inside one, so a campaign at any --jobs matches the same shards
// run standalone). Wall-clock budgets remain the one documented
// determinism exception, exactly as for the engine (DESIGN.md §9).
#pragma once

#include "atpg/engine.hpp"
#include "core/extractor.hpp"
#include "elab/elaborator.hpp"
#include "obs/obs.hpp"
#include "util/phase.hpp"
#include "util/run_guard.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace factor::cache {
class ConstraintCache;
} // namespace factor::cache

namespace factor::campaign {

/// Per-shard failure taxonomy. The first four mirror util::PhaseStatus;
/// Crashed is the campaign-only class for an exception that escaped the
/// shard's pipeline (injected fault, internal invariant failure) and was
/// contained by the supervisor.
enum class ShardStatus : uint8_t {
    Ok = 0,
    Degraded = 1,
    BudgetExhausted = 2,
    Failed = 3,
    Crashed = 4,
};

[[nodiscard]] const char* to_string(ShardStatus s);
/// Parse a status name; false on an unknown name (checkpoint validation).
[[nodiscard]] bool parse_shard_status(std::string_view name, ShardStatus& out);
/// Campaign-status projection: Crashed maps to Failed, the rest 1:1.
[[nodiscard]] util::PhaseStatus to_phase_status(ShardStatus s);

/// Resolution of a --campaign spec against an elaborated design.
struct SpecResolution {
    bool ok = false;
    /// Named refusal on failure: "campaign.bad_spec: ...",
    /// "campaign.unknown_mut: ...", "campaign.duplicate_mut: ...",
    /// "campaign.empty: ...". The leading token before ':' is stable.
    std::string diagnostic;
    std::vector<const elab::InstNode*> muts; // index == shard index
    std::vector<std::string> paths;          // dotted path per shard
};

/// Resolve `spec`: "all" enumerates every non-root instance in pre-order;
/// otherwise a comma-separated list of dotted instance paths.
[[nodiscard]] SpecResolution resolve_spec(const elab::ElaboratedDesign& design,
                                          const std::string& spec);

struct CampaignOptions {
    std::string spec = "all";
    core::Mode mode = core::Mode::Composed;
    bool expose_piers = true;
    /// Engine template for every shard. guard / jobs / scope_prefix /
    /// checkpoint_path / resume are overwritten per shard; everything else
    /// (seed, phase shapes, retry_rounds, ...) applies to all shards.
    atpg::EngineOptions engine;
    /// Shards run concurrently on a pool of this many executors (0 picks
    /// util::ThreadPool::default_jobs()). Each shard's engine runs with
    /// jobs=1 on its executor — across-shard parallelism only.
    size_t jobs = 0;
    /// Campaign-level budgets, carved evenly across shards (<= 0 / 0 means
    /// unlimited). A shard's first attempt gets total/num_shards.
    double total_budget_s = 0.0;
    uint64_t work_quota = 0;
    /// Extra attempts for a budget-exhausted shard (0 disables retry).
    size_t shard_retries = 1;
    /// Per-attempt budget multiplier (the PR 4 escalation shape): attempt
    /// k runs with carve * growth^(k-1); wall budgets are additionally
    /// capped at the campaign total.
    uint32_t budget_growth = 4;
    /// Exponential backoff between attempts: base * 2^(attempt-1) seconds
    /// (0 retries immediately — what the determinism tests use).
    double backoff_base_s = 0.0;
    /// Campaign journal path ("" disables checkpointing). Per-shard engine
    /// journals live next to it as "<path>.s<index>".
    std::string checkpoint_path;
    bool resume = false;
    /// Campaign-level guard (wall clock + SIGINT), typically the CLI's.
    /// Once it stops, no new shard or retry is launched; unattempted
    /// shards are classified budget_exhausted with attempts == 0.
    util::RunGuard* guard = nullptr;
    /// Shared persistent constraint cache (null: disabled). Shards warm
    /// their sessions from it and absorb back after a successful
    /// transform; it is thread-safe across shards and a crashed shard
    /// simply never absorbs, so it cannot tear the shared state. The
    /// owner (the CLI) publishes once after the campaign.
    cache::ConstraintCache* ccache = nullptr;
};

/// One shard's classified outcome plus its stable result numbers.
struct ShardOutcome {
    size_t index = 0;
    std::string mut_path;
    ShardStatus status = ShardStatus::Ok;
    std::string detail;        // why, for every non-Ok status
    uint64_t attempts = 0;     // 0: never started (campaign stopped first)
    bool recovered = false;    // a retry turned budget_exhausted into ok/degraded
    double backoff_seconds = 0.0; // total backoff slept before retries
    double seconds = 0.0;         // shard wall time across attempts (unstable)
    bool resumed = false;         // restored from the campaign journal
    /// The outcome was caused by a checkpoint-write failure (campaign
    /// append or engine journal): it is never journaled, so --resume
    /// re-attempts the shard instead of trusting a torn result.
    bool transient = false;

    // Stable engine + transform numbers (zero for failed/crashed shards).
    uint64_t faults = 0;
    uint64_t detected = 0;
    uint64_t untestable = 0;
    uint64_t aborted = 0;
    uint64_t redundant = 0; // SAT UNSAT redundancy proofs (DESIGN.md §12)
    double coverage_percent = 0.0;
    double efficiency_percent = 0.0;
    uint64_t vectors = 0;          // deterministic tests
    uint64_t random_sequences = 0;
    uint64_t podem_retries = 0;    // engine-level escalation attempts
    uint64_t retry_recovered = 0;  // engine-level recovered faults
    uint64_t mut_gates = 0;
    uint64_t surrounding_gates = 0;
    uint64_t piers_exposed = 0;

    /// The shard's row of the factor.campaign.v1 report. `timing` includes
    /// the wall-clock fields (seconds, backoff) — the determinism tests
    /// compare rows with timing off.
    [[nodiscard]] obs::Doc doc(bool timing = true) const;
};

/// The aggregated campaign result (factor.campaign.v1).
struct CampaignResult {
    /// The campaign never ran: bad spec or untrusted checkpoint.
    /// `refusal` carries the named campaign.* / ckpt.* diagnostic.
    bool refused = false;
    std::string refusal;

    std::string top;
    std::string spec;
    core::Mode mode = core::Mode::Composed;
    std::vector<ShardOutcome> shards; // index order, one per resolved MUT

    /// Worst shard status projected through to_phase_status(), further
    /// forced to Failed by a campaign checkpoint-write failure or an
    /// aggregation crash.
    util::PhaseStatus status = util::PhaseStatus::Ok;
    std::string status_detail;
    bool ckpt_failed = false; // campaign journal write failure (latched)

    // Aggregate accounting (computed by run_campaign in index order).
    uint64_t shards_ok = 0;
    uint64_t shards_degraded = 0;
    uint64_t shards_budget_exhausted = 0;
    uint64_t shards_failed = 0;
    uint64_t shards_crashed = 0;
    uint64_t shards_retried = 0;   // shards that took > 1 attempt
    uint64_t shards_recovered = 0; // retried shards that ended ok/degraded
    uint64_t shards_resumed = 0;   // restored from the campaign journal
    uint64_t total_faults = 0;
    uint64_t total_detected = 0;
    uint64_t total_untestable = 0;
    uint64_t total_aborted = 0;
    uint64_t total_redundant = 0;
    double coverage_percent = 0.0; // detected / faults over all shards
    uint64_t total_vectors = 0;
    uint64_t total_random_sequences = 0;
    double seconds = 0.0; // campaign wall time (unstable)
    uint64_t threads = 1; // campaign executors

    /// Campaign totals as one Doc (the "totals" object of the report and
    /// the CLI's --stats-json result block).
    [[nodiscard]] obs::Doc totals_doc(bool timing = true) const;

    /// The full factor.campaign.v1 JSON document (trailing newline).
    [[nodiscard]] std::string to_json() const;

    /// Human-readable report: one line per shard plus a totals line,
    /// rendered from the same Docs as to_json().
    [[nodiscard]] std::string to_text() const;
};

/// Run a campaign over `design`. Never throws: spec/checkpoint problems
/// come back as a refusal, shard failures are contained and classified,
/// and an aggregation crash (the campaign.aggregate site) degrades the
/// campaign to Failed with the shard outcomes intact.
[[nodiscard]] CampaignResult run_campaign(const elab::ElaboratedDesign& design,
                                          const CampaignOptions& options);

} // namespace factor::campaign
