// Chip-level pattern translation (paper §2.1: "the patterns obtained are
// later translated back to the chip level").
//
// A transformed-module test drives two kinds of inputs: real chip pins and
// PIER pseudo-inputs (register values). Translation turns such a test into
// a sequence the physical chip can execute:
//
//   [reset prefix] [PIER load protocol per register] [the test's chip-pin
//   frames] [PIER store protocol for observation]
//
// The load/store protocols are design-specific instruction sequences
// supplied through a PierAccessSpec (see designs/arm2z_isa.hpp for the
// arm2z implementation). Because a translated sequence only establishes
// the PIER values present in the test's first frame, translation is
// validated — not assumed: verified_coverage() fault-simulates the
// translated sequences on the full chip netlist and reports how much of
// the transformed-module coverage actually survives at the pins.
#pragma once

#include "atpg/fault.hpp"
#include "atpg/fault_sim.hpp"
#include "synth/netlist.hpp"

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace factor::core {

/// One frame of named pin assignments: bus base name -> value. Multi-bit
/// buses expand against the chip netlist's "name[i]" primary inputs. Pins
/// not mentioned stay unknown (X).
struct PinFrame {
    std::map<std::string, uint64_t> pins;
};
using PinSequence = std::vector<PinFrame>;

/// Design-specific access protocol for PIER registers.
struct PierAccessSpec {
    /// Chip-level sequence that loads `value` into the register named by
    /// `reg_base` (hierarchical net-name base, e.g. "exu.bank.core.r3").
    /// An empty result means the register is not loadable this way.
    std::function<PinSequence(const std::string& reg_base, uint64_t value)>
        load;
    /// Chip-level sequence that exposes the register at chip outputs.
    std::function<PinSequence(const std::string& reg_base)> store;
    /// Safe defaults applied to every translated frame for pins the test
    /// leaves unknown (e.g. keep reset deasserted and interrupts masked).
    PinFrame idle;
    /// Initialization prefix executed once per translated test.
    PinSequence reset;
};

struct TranslationResult {
    atpg::ScalarSequence sequence; // chip-level frames
    size_t loads = 0;              // PIER load protocols emitted
    size_t stores = 0;             // PIER store protocols appended
};

/// Translates transformed-module tests onto the chip interface.
class PatternTranslator {
  public:
    /// `chip` is the full-design netlist; `transformed` the MUT's ATPG view
    /// whose tests will be translated. Primary inputs are matched by name.
    PatternTranslator(const synth::Netlist& chip,
                      const synth::Netlist& transformed);

    /// Translate one test. Returns nullopt if the test drives a pseudo
    /// input whose register the spec cannot load.
    [[nodiscard]] std::optional<TranslationResult>
    translate(const atpg::ScalarSequence& test,
              const PierAccessSpec& spec) const;

    /// Translate a batch, dropping untranslatable tests.
    [[nodiscard]] std::vector<atpg::ScalarSequence>
    translate_all(const std::vector<atpg::ScalarSequence>& tests,
                  const PierAccessSpec& spec, size_t* dropped = nullptr) const;

    /// Fault-simulate chip-level sequences against the faults under
    /// `scope_prefix` on the chip netlist; returns achieved coverage (%).
    [[nodiscard]] static double
    verified_coverage(const synth::Netlist& chip,
                      const std::string& scope_prefix,
                      const std::vector<atpg::ScalarSequence>& chip_tests);

    /// Expand a PinSequence into chip-level frames (exposed for tests).
    [[nodiscard]] atpg::ScalarSequence
    expand(const PinSequence& seq, const PinFrame& idle) const;

  private:
    /// Apply one named-pin frame onto a chip frame vector.
    void apply_pins(std::vector<atpg::V5>& frame, const PinFrame& pins) const;

    const synth::Netlist& chip_;
    const synth::Netlist& transformed_;
    // chip PI name -> index.
    std::map<std::string, size_t> chip_pi_;
    // transformed PI index -> chip PI index (same pin), or SIZE_MAX for
    // pseudo inputs.
    std::vector<size_t> shared_pi_;
    // transformed PI index -> (register base, bit) for pseudo inputs.
    struct PierBit {
        std::string base;
        uint32_t bit = 0;
    };
    std::vector<std::optional<PierBit>> pier_bit_;
};

} // namespace factor::core
