#include "core/translate.hpp"

#include "atpg/fault.hpp"

#include <algorithm>

namespace factor::core {

using atpg::ScalarSequence;
using atpg::V5;
using synth::NetId;

namespace {

/// Split "base[bit]" into its parts; bit = 0 and base = name for scalars.
std::pair<std::string, uint32_t> split_bit(const std::string& name) {
    auto pos = name.rfind('[');
    if (pos == std::string::npos || name.back() != ']') return {name, 0};
    uint32_t bit = 0;
    try {
        bit = static_cast<uint32_t>(std::stoul(name.substr(pos + 1)));
    } catch (...) {
        return {name, 0};
    }
    return {name.substr(0, pos), bit};
}

} // namespace

PatternTranslator::PatternTranslator(const synth::Netlist& chip,
                                     const synth::Netlist& transformed)
    : chip_(chip), transformed_(transformed) {
    for (size_t i = 0; i < chip.inputs().size(); ++i) {
        chip_pi_[chip.net_name(chip.inputs()[i])] = i;
    }
    shared_pi_.assign(transformed.inputs().size(), SIZE_MAX);
    pier_bit_.assign(transformed.inputs().size(), std::nullopt);
    for (size_t i = 0; i < transformed.inputs().size(); ++i) {
        const std::string& name = transformed.net_name(transformed.inputs()[i]);
        auto it = chip_pi_.find(name);
        if (it != chip_pi_.end()) {
            shared_pi_[i] = it->second;
        } else {
            auto [base, bit] = split_bit(name);
            pier_bit_[i] = PierBit{base, bit};
        }
    }
}

void PatternTranslator::apply_pins(std::vector<V5>& frame,
                                   const PinFrame& pins) const {
    for (const auto& [base, value] : pins.pins) {
        // Scalar pin?
        auto it = chip_pi_.find(base);
        if (it != chip_pi_.end()) {
            frame[it->second] = (value & 1) != 0 ? V5::One : V5::Zero;
            continue;
        }
        // Bus: assign every "base[i]" input present on the chip.
        for (uint32_t bit = 0; bit < 64; ++bit) {
            auto bi = chip_pi_.find(base + "[" + std::to_string(bit) + "]");
            if (bi == chip_pi_.end()) {
                if (bit > 0) break;
                continue;
            }
            frame[bi->second] =
                ((value >> bit) & 1) != 0 ? V5::One : V5::Zero;
        }
    }
}

ScalarSequence PatternTranslator::expand(const PinSequence& seq,
                                         const PinFrame& idle) const {
    ScalarSequence out;
    for (const PinFrame& f : seq) {
        std::vector<V5> frame(chip_.inputs().size(), V5::X);
        apply_pins(frame, idle);
        apply_pins(frame, f);
        out.frames.push_back(std::move(frame));
    }
    return out;
}

std::optional<TranslationResult>
PatternTranslator::translate(const ScalarSequence& test,
                             const PierAccessSpec& spec) const {
    TranslationResult result;

    // 1. Reset prefix.
    for (auto& f : expand(spec.reset, spec.idle).frames) {
        result.sequence.frames.push_back(std::move(f));
    }

    // 2. Gather the PIER register values required by the test's first
    //    frame (only those can be honored by a load-before-window
    //    protocol; later-frame pseudo-input changes cannot be applied and
    //    are validated away by chip-level fault simulation).
    std::map<std::string, uint64_t> reg_values;
    std::map<std::string, bool> reg_needed;
    if (!test.frames.empty()) {
        const auto& f0 = test.frames[0];
        for (size_t i = 0; i < f0.size() && i < pier_bit_.size(); ++i) {
            if (!pier_bit_[i].has_value()) continue;
            if (f0[i] == V5::X) continue;
            const PierBit& pb = *pier_bit_[i];
            reg_needed[pb.base] = true;
            if (f0[i] == V5::One) {
                reg_values[pb.base] |= (uint64_t{1} << pb.bit);
            } else {
                reg_values[pb.base] |= 0; // explicit zero bit
            }
        }
    }

    // 3. Load protocols.
    for (const auto& [base, needed] : reg_needed) {
        if (!needed) continue;
        if (!spec.load) return std::nullopt;
        PinSequence load_seq = spec.load(base, reg_values[base]);
        if (load_seq.empty()) return std::nullopt;
        for (auto& f : expand(load_seq, spec.idle).frames) {
            result.sequence.frames.push_back(std::move(f));
        }
        ++result.loads;
    }

    // 4. The test window: copy the chip-pin assignments of every frame
    //    (pseudo pins are dropped; idle defaults fill unassigned control
    //    pins so the window does not reset the machine by accident).
    for (const auto& tf : test.frames) {
        std::vector<V5> frame(chip_.inputs().size(), V5::X);
        apply_pins(frame, spec.idle);
        for (size_t i = 0; i < tf.size() && i < shared_pi_.size(); ++i) {
            if (shared_pi_[i] == SIZE_MAX) continue;
            if (tf[i] != V5::X) frame[shared_pi_[i]] = tf[i];
        }
        result.sequence.frames.push_back(std::move(frame));
    }

    // 5. Store protocols: expose every PIER register the view observes so
    //    fault effects captured in registers reach the pins.
    if (spec.store) {
        std::vector<std::string> bases;
        for (const auto& [base, needed] : reg_needed) bases.push_back(base);
        // Also store registers whose $next output the view observes.
        for (size_t i = 0; i < transformed_.outputs().size(); ++i) {
            const std::string& po = transformed_.output_name(i);
            if (po.size() > 5 && po.substr(po.size() - 5) == "$next") {
                auto [base, bit] = split_bit(po.substr(0, po.size() - 5));
                bases.push_back(base);
            }
        }
        std::sort(bases.begin(), bases.end());
        bases.erase(std::unique(bases.begin(), bases.end()), bases.end());
        for (const auto& base : bases) {
            PinSequence store_seq = spec.store(base);
            if (store_seq.empty()) continue;
            for (auto& f : expand(store_seq, spec.idle).frames) {
                result.sequence.frames.push_back(std::move(f));
            }
            ++result.stores;
        }
    }
    return result;
}

std::vector<ScalarSequence>
PatternTranslator::translate_all(const std::vector<ScalarSequence>& tests,
                                 const PierAccessSpec& spec,
                                 size_t* dropped) const {
    std::vector<ScalarSequence> out;
    size_t failed = 0;
    for (const auto& t : tests) {
        auto r = translate(t, spec);
        if (r.has_value()) {
            out.push_back(std::move(r->sequence));
        } else {
            ++failed;
        }
    }
    if (dropped != nullptr) *dropped = failed;
    return out;
}

double PatternTranslator::verified_coverage(
    const synth::Netlist& chip, const std::string& scope_prefix,
    const std::vector<ScalarSequence>& chip_tests) {
    atpg::FaultList list(chip, scope_prefix);
    if (list.size() == 0) return 0.0;
    atpg::FaultSimulator sim(chip);
    for (const auto& t : chip_tests) {
        (void)sim.run_and_drop(list, atpg::broadcast(t, chip.inputs().size()));
    }
    return list.coverage_percent();
}

} // namespace factor::core
