#include "core/testability.hpp"

#include <sstream>

namespace factor::core {

TestabilityReport make_testability_report(const ConstraintSet& cs) {
    TestabilityReport r;
    std::ostringstream os;
    os << "Testability report for MUT "
       << (cs.mut != nullptr ? cs.mut->path() : "<none>") << "\n";
    if (cs.issues.empty()) {
        os << "  no testability issues found\n";
    }
    for (const auto& issue : cs.issues) {
        switch (issue.kind) {
        case TestabilityIssue::Kind::EmptyUseDefChain: ++r.empty_use_def; break;
        case TestabilityIssue::Kind::EmptyDefUseChain: ++r.empty_def_use; break;
        case TestabilityIssue::Kind::HardCodedConstraint: ++r.hard_coded; break;
        }
        os << "  warning: " << issue.describe() << "\n";
    }
    os << "  summary: " << r.empty_use_def << " empty use-def chain(s), "
       << r.empty_def_use << " empty def-use chain(s), " << r.hard_coded
       << " hard-coded constraint(s)\n";
    r.text = os.str();
    return r;
}

} // namespace factor::core
