// Constraint writer: renders an extracted ConstraintSet back to
// synthesizable Verilog (paper §3: "FACTOR writes out the constraints in
// the form of synthesizable Verilog netlists. It retains the original
// directory structure instead of creating unique instances or renaming
// nets").
//
// Every instance with marked items becomes a pruned copy of its module:
// unmarked assignments disappear, conditional wrappers survive only where a
// marked statement lives beneath them, and child instances are kept only
// when the child contributes constraints. Module names are preserved; a
// "_cs<N>" suffix is added only when the same module type is needed with
// two different mark subsets.
#pragma once

#include "core/constraints.hpp"
#include "elab/elaborator.hpp"

#include <string>

namespace factor::core {

class ConstraintWriter {
  public:
    ConstraintWriter(const elab::ElaboratedDesign& design,
                     const ConstraintSet& cs);

    /// Full Verilog source: pruned surrounding modules plus the complete
    /// MUT subtree, rooted at the (pruned) top module. The result parses
    /// and elaborates with this library's own front end.
    [[nodiscard]] std::string write_verilog() const;

    /// Name of the emitted top module.
    [[nodiscard]] std::string top_name() const;

  private:
    const elab::ElaboratedDesign& design_;
    const ConstraintSet& cs_;
};

} // namespace factor::core
