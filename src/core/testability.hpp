// Testability reporting (paper §4.2): renders the issues FACTOR gathers
// during extraction — before any ATPG runs — into a designer-facing report,
// including the affected MUT signal and the trace of the aborted path.
#pragma once

#include "core/constraints.hpp"

#include <string>

namespace factor::core {

struct TestabilityReport {
    size_t empty_use_def = 0;
    size_t empty_def_use = 0;
    size_t hard_coded = 0;
    std::string text;
};

/// Build the report for one MUT's constraints.
[[nodiscard]] TestabilityReport make_testability_report(const ConstraintSet& cs);

} // namespace factor::core
