// Constraint sets: the output of FACTOR's extraction subroutines.
//
// A ConstraintSet records, per elaborated instance, exactly which RTL items
// (continuous assignments, procedural assignment statements, whole child
// instances) belong to the functional constraints of a module under test:
// the source logic that drives its inputs and the propagation logic that
// carries its outputs to the chip interface. It also accumulates the
// testability findings made along the way (empty def-use / use-def chains,
// hard-coded constant constraints), each with the signal trace the paper's
// tool prints for the designer.
#pragma once

#include "analysis/def_use.hpp"
#include "elab/elaborator.hpp"
#include "rtl/ast.hpp"
#include "util/phase.hpp"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace factor::core {

/// A testability problem found during extraction (paper §3 last paragraph
/// and §4.2).
struct TestabilityIssue {
    enum class Kind {
        EmptyUseDefChain,   // signal read but never driven: no path from the
                            // chip interface to the MUT input
        EmptyDefUseChain,   // signal driven but never observed: no path from
                            // the MUT output to the chip interface
        HardCodedConstraint // signal only ever assigned constants (arm_alu
                            // control-input case)
    };

    Kind kind = Kind::EmptyUseDefChain;
    std::string instance_path; // where the problem lives
    std::string signal;
    /// The aborted path: signals walked from the MUT up to the dead end.
    std::vector<std::string> trace;

    [[nodiscard]] std::string describe() const;
};

/// Marked items within one instance.
struct NodeMarks {
    bool whole = false; // entire instance included (the MUT subtree)
    std::set<const rtl::ContAssign*> assigns;
    std::set<const rtl::Stmt*> stmts; // procedural assignments

    [[nodiscard]] bool empty() const {
        return !whole && assigns.empty() && stmts.empty();
    }
    void merge(const NodeMarks& o);

    /// Coarsen to module granularity: mark every continuous assignment and
    /// every procedural assignment of `m`. This is how the conventional
    /// (non-compositional) methodology of Tupuri et al. takes surrounding
    /// logic — whole module environments, leaving the pruning to synthesis.
    void mark_all_items(const rtl::Module& m);
};

/// The extracted functional constraints for one MUT.
struct ConstraintSet {
    const elab::InstNode* mut = nullptr;
    std::map<const elab::InstNode*, NodeMarks> marks;
    std::vector<TestabilityIssue> issues;

    // Extraction statistics (reported in Tables 2/3).
    double extraction_seconds = 0.0;
    size_t cache_hits = 0;
    size_t cache_misses = 0;

    /// How the extraction ended: Ok, Degraded (composed extraction fell
    /// back to flat after a per-level failure), BudgetExhausted (guard
    /// stopped the walk; marks cover what was reached), or Failed (only
    /// the MUT subtree is marked). Never throws out of extract().
    util::PhaseStatus status = util::PhaseStatus::Ok;
    std::string status_detail;

    void merge(const ConstraintSet& o);

    [[nodiscard]] const NodeMarks* marks_for(const elab::InstNode* n) const;

    /// Total number of marked RTL items across all instances.
    [[nodiscard]] size_t item_count() const;

    /// Deduplicate issues (the same dead end can be reached repeatedly).
    void dedup_issues();
};

} // namespace factor::core
