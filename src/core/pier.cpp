#include "core/pier.hpp"

#include <deque>
#include <limits>

namespace factor::core {

using synth::Gate;
using synth::GateId;
using synth::GateType;
using synth::Netlist;
using synth::NetId;

namespace {

constexpr size_t kInf = std::numeric_limits<size_t>::max();

/// 0-1 BFS over nets: crossing a DFF costs 1, combinational gates cost 0.
/// `forward` walks driver->reader, otherwise reader->driver.
std::vector<size_t> seq_distance(const Netlist& nl,
                                 const std::vector<NetId>& sources,
                                 bool forward) {
    std::vector<size_t> dist(nl.num_nets(), kInf);
    auto fanout = nl.build_fanout();
    std::deque<NetId> queue;
    for (NetId s : sources) {
        if (dist[s] != 0) {
            dist[s] = 0;
            queue.push_back(s);
        }
    }
    while (!queue.empty()) {
        NetId n = queue.front();
        queue.pop_front();
        size_t d = dist[n];
        auto relax = [&](NetId to, size_t w) {
            if (d + w < dist[to]) {
                dist[to] = d + w;
                if (w == 0) {
                    queue.push_front(to);
                } else {
                    queue.push_back(to);
                }
            }
        };
        if (forward) {
            for (GateId g : fanout[n]) {
                const Gate& gate = nl.gate(g);
                relax(gate.out, gate.type == GateType::Dff ? 1 : 0);
            }
        } else {
            GateId g = nl.driver(n);
            if (g == Netlist::kNoGate) continue;
            const Gate& gate = nl.gate(g);
            for (NetId in : gate.ins) {
                relax(in, gate.type == GateType::Dff ? 1 : 0);
            }
        }
    }
    return dist;
}

} // namespace

std::vector<PierInfo> find_piers(const Netlist& nl,
                                 const PierOptions& options) {
    std::vector<size_t> from_pi =
        seq_distance(nl, nl.inputs(), /*forward=*/true);
    std::vector<size_t> to_po =
        seq_distance(nl, nl.outputs(), /*forward=*/false);

    std::vector<PierInfo> piers;
    for (GateId g : nl.dffs()) {
        const Gate& gate = nl.gate(g);
        size_t load = from_pi[gate.ins[0]];
        size_t store = to_po[gate.out];
        if (load <= options.max_load_depth &&
            store <= options.max_store_depth) {
            piers.push_back(PierInfo{nl.net_name(gate.out), load, store});
        }
    }
    return piers;
}

} // namespace factor::core
