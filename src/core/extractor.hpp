// FACTOR's functional constraint extraction (paper §3, Figure 3).
//
// For a module under test (MUT) embedded anywhere in the elaborated
// hierarchy, the extractor walks:
//
//   find_source_logic(signal, module)  — use-def chains upward/inward: the
//     logic cone driving each MUT input, across module boundaries up to the
//     chip interface, pulling in every enclosing conditional / loop context
//     and the source cones of their controlling signals;
//
//   find_prop_paths(signal, module)    — def-use chains downward/outward:
//     the logic through which each MUT output reaches a chip-level output,
//     pulling in (via find_source_logic) the side inputs needed to
//     sensitize those paths.
//
// Internally each (instance, signal, direction) query expands once into a
// node of a session-wide query graph holding its directly marked RTL items
// and its successor queries; a constraint set is a linear DFS over that
// graph. Designs are full of feedback (register file <-> forwarding <->
// ALU), so the graph is cyclic — the DFS visited set handles that.
//
// Two operating modes mirror the paper's comparison:
//
//   Mode::Flat      — the conventional single-pass methodology (Tupuri et
//     al.): every MUT extraction starts from scratch (the query graph is
//     dropped between MUTs) and the resulting constraint blob gets one
//     monolithic simplification pass.
//
//   Mode::Composed  — this paper's contribution: expanded queries are kept
//     in the session and *reused* across hierarchy levels and across MUTs
//     ("the constraints extracted at higher levels were reused"), and each
//     level's slice is simplified before composition (modeled by fixpoint
//     optimization of the composed netlist; see DESIGN.md).
#pragma once

#include "analysis/def_use.hpp"
#include "core/constraints.hpp"
#include "elab/elaborator.hpp"
#include "util/diagnostics.hpp"
#include "util/run_guard.hpp"

#include <map>
#include <memory>
#include <set>
#include <string>

namespace factor::core {

enum class Mode { Flat, Composed };

/// A pointer-free image of a session's expanded query graph, the unit the
/// persistent constraint cache stores and restores (src/cache/). Instances
/// are named by hierarchical path, RTL items by deterministic indices
/// within their owning module (assign order / pre-order statement walk of
/// the always blocks), so a snapshot is meaningful for any elaboration of
/// the *same* design source — the cache layer guarantees "same" with a
/// design fingerprint. Nodes are sorted by key, and per-node edge order is
/// preserved, so exporting, importing and re-exporting is byte-stable and
/// a warm session walks the graph in exactly the cold session's order.
struct GraphSnapshot {
    struct Key {
        std::string path;   // instance path; top node = top module name
        std::string signal;
        int dir = 0;        // 0 = source query, 1 = propagation query
        [[nodiscard]] auto operator<=>(const Key&) const = default;
    };
    /// One marked RTL item: a continuous assign (`index` into
    /// Module::assigns) or a statement (`index` into the module's pre-order
    /// statement enumeration).
    struct Item {
        std::string path;
        uint32_t index = 0;
    };
    struct Node {
        Key key;
        std::vector<Item> assigns;
        std::vector<Item> stmts;
        std::vector<TestabilityIssue> issues;
        std::vector<Key> next;
    };
    std::vector<Node> nodes; // sorted by key

    [[nodiscard]] bool empty() const { return nodes.empty(); }
};

/// Deterministic pre-order enumeration of every statement in `mod`'s
/// always blocks — the index space GraphSnapshot::Item uses for `stmts`.
[[nodiscard]] std::vector<const rtl::Stmt*>
module_stmt_order(const rtl::Module& mod);

/// An extraction session over one elaborated design. In Composed mode the
/// session owns the cross-MUT query graph; Flat mode rebuilds it for every
/// extraction.
class ExtractionSession {
  public:
    /// `guard` (optional) bounds the extraction walk: one work unit is
    /// ticked per visited query; a stop returns the partially-marked
    /// constraint set with status BudgetExhausted.
    ExtractionSession(const elab::ElaboratedDesign& design, Mode mode,
                      util::DiagEngine& diags,
                      util::RunGuard* guard = nullptr);

    /// Declare PIER registers (paper §2.1): hierarchical net-name bases
    /// (e.g. "exu.bank.core.r3") of registers the chip interface reaches
    /// through load/store instructions. Source queries stop at a PIER (it
    /// is directly controllable) and propagation queries stop at a PIER
    /// write (it is directly observable) — this is how FACTOR "identifies
    /// internal registers that can be used to further reduce the ATPG
    /// view". Must be set before the first extract(); changing the set
    /// mid-session would invalidate cached queries and throws.
    void set_pier_registers(std::set<std::string> bases);

    /// Extract the functional constraints for the MUT at `mut`. The MUT
    /// subtree itself is marked whole; everything else is the extracted
    /// source/propagation slice.
    ///
    /// Never throws: an internal failure (FactorError) during a composed
    /// extraction drops the possibly-poisoned query cache and re-extracts
    /// in flat mode, returning status Degraded; a failure with no fallback
    /// left returns a MUT-only set with status Failed. A guard stop
    /// returns the partial slice with status BudgetExhausted.
    [[nodiscard]] ConstraintSet extract(const elab::InstNode& mut);

    [[nodiscard]] Mode mode() const { return mode_; }
    [[nodiscard]] const elab::ElaboratedDesign& design() const {
        return design_;
    }

    /// Cumulative query-graph statistics across the session: hits are
    /// queries answered from already-expanded nodes, misses are fresh
    /// expansions.
    [[nodiscard]] size_t total_cache_hits() const { return hits_; }
    [[nodiscard]] size_t total_cache_misses() const { return misses_; }

    /// Snapshot every expanded query node as a pointer-free image (see
    /// GraphSnapshot). Deterministic: nodes sorted by key, per-node order
    /// preserved.
    [[nodiscard]] GraphSnapshot export_graph() const;

    /// Warm-start the session from a snapshot of the same design: resolve
    /// every path/index back to pointers and seed the query graph, so
    /// subsequent extractions answer those queries as cache hits. All-or-
    /// nothing — if anything fails to resolve (snapshot from a different
    /// design, or corrupt), the graph is left exactly as it was and false
    /// is returned; an import can never tear the session. Keys already
    /// expanded in this session win over the snapshot's version.
    [[nodiscard]] bool import_graph(const GraphSnapshot& snap);

  private:
    enum class Dir { Source, Prop };

    struct QueryKey {
        const elab::InstNode* node;
        std::string signal;
        Dir dir;
        [[nodiscard]] auto operator<=>(const QueryKey&) const = default;
    };

    /// One expanded query: the items it marks directly plus its successor
    /// queries. Expansion happens at most once per session (Composed) or
    /// per extraction (Flat).
    struct QueryNode {
        bool expanded = false;
        std::vector<std::pair<const elab::InstNode*, const rtl::ContAssign*>>
            assigns;
        std::vector<std::pair<const elab::InstNode*, const rtl::Stmt*>> stmts;
        std::vector<TestabilityIssue> issues;
        std::vector<QueryKey> next;
    };

    /// One full extraction walk in the current mode; throws FactorError on
    /// internal failure (extract() handles the fallback).
    [[nodiscard]] ConstraintSet extract_impl(const elab::InstNode& mut);

    /// MUT-only constraint set with status Failed (also reports an error
    /// diagnostic).
    [[nodiscard]] ConstraintSet failed_set(const elab::InstNode& mut,
                                           const std::string& why);

    /// DFS entry point: expand (if needed) and accumulate into `out`.
    /// Sets `truncated_` and stops early when the guard trips.
    void visit(const QueryKey& key, ConstraintSet& out,
               std::set<QueryKey>& visited);

    void expand(const QueryKey& key, QueryNode& node);
    void expand_source(const QueryKey& key, QueryNode& node);
    void expand_prop(const QueryKey& key, QueryNode& node);

    /// Child node of `parent` for an AST instance, or null.
    [[nodiscard]] const elab::InstNode*
    child_node(const elab::InstNode* parent, const rtl::Instance* inst) const;

    [[nodiscard]] bool is_pier(const elab::InstNode* node,
                               const std::string& signal) const;

    const elab::ElaboratedDesign& design_;
    Mode mode_;
    util::DiagEngine& diags_;
    util::RunGuard* guard_ = nullptr;
    bool truncated_ = false; // guard tripped during the current walk
    analysis::AnalysisCache analyses_;

    std::map<QueryKey, QueryNode> graph_;
    std::set<std::string> piers_;
    size_t hits_ = 0;
    size_t misses_ = 0;
    /// Per-module-type {hits, misses} of the current extract() call,
    /// flushed to the obs registry once per extraction (keeps the DFS free
    /// of registry lookups).
    std::map<const rtl::Module*, std::pair<size_t, size_t>> type_tally_;
};

} // namespace factor::core
