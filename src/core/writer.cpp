#include "core/writer.hpp"

#include "rtl/printer.hpp"
#include "util/diagnostics.hpp"

#include <map>
#include <set>
#include <sstream>

namespace factor::core {

using elab::InstNode;

namespace {

/// Keep only marked assignments beneath `s`; drop conditional wrappers that
/// end up empty.
rtl::StmtPtr filter_stmt(const rtl::Stmt& s,
                         const std::set<const rtl::Stmt*>& keep) {
    switch (s.kind) {
    case rtl::StmtKind::Assign:
        return keep.count(&s) != 0 ? rtl::clone(s) : nullptr;
    case rtl::StmtKind::Block: {
        auto out = std::make_unique<rtl::Stmt>();
        out->kind = rtl::StmtKind::Block;
        out->loc = s.loc;
        out->label = s.label;
        for (const auto& sub : s.stmts) {
            if (!sub) continue;
            if (auto f = filter_stmt(*sub, keep)) out->stmts.push_back(std::move(f));
        }
        return out->stmts.empty() ? nullptr : std::move(out);
    }
    case rtl::StmtKind::If: {
        rtl::StmtPtr t = s.then_s ? filter_stmt(*s.then_s, keep) : nullptr;
        rtl::StmtPtr e = s.else_s ? filter_stmt(*s.else_s, keep) : nullptr;
        if (!t && !e) return nullptr;
        auto out = std::make_unique<rtl::Stmt>();
        out->kind = rtl::StmtKind::If;
        out->loc = s.loc;
        out->cond = rtl::clone(*s.cond);
        out->then_s = std::move(t);
        out->else_s = std::move(e);
        return out;
    }
    case rtl::StmtKind::Case: {
        auto out = std::make_unique<rtl::Stmt>();
        out->kind = rtl::StmtKind::Case;
        out->loc = s.loc;
        out->casez = s.casez;
        out->cond = rtl::clone(*s.cond);
        for (const auto& item : s.items) {
            if (!item.body) continue;
            if (auto body = filter_stmt(*item.body, keep)) {
                rtl::CaseItem ci;
                for (const auto& l : item.labels) ci.labels.push_back(rtl::clone(*l));
                ci.body = std::move(body);
                out->items.push_back(std::move(ci));
            }
        }
        return out->items.empty() ? nullptr : std::move(out);
    }
    case rtl::StmtKind::For: {
        rtl::StmtPtr body = s.body ? filter_stmt(*s.body, keep) : nullptr;
        if (!body) return nullptr;
        auto out = std::make_unique<rtl::Stmt>();
        out->kind = rtl::StmtKind::For;
        out->loc = s.loc;
        if (s.init) out->init = rtl::clone(*s.init);
        if (s.cond) out->cond = rtl::clone(*s.cond);
        if (s.step) out->step = rtl::clone(*s.step);
        out->body = std::move(body);
        return out;
    }
    case rtl::StmtKind::Null:
        return nullptr;
    }
    return nullptr;
}

class WriterImpl {
  public:
    WriterImpl(const elab::ElaboratedDesign& design, const ConstraintSet& cs)
        : design_(design), cs_(cs) {
        mark_involved(&design.root());
    }

    std::string run() {
        emitted_source_.clear();
        (void)emit(&design_.root());
        return emitted_source_;
    }

    std::string top_variant() {
        if (variant_of_.count(&design_.root()) == 0) (void)run();
        return variant_of_.at(&design_.root());
    }

  private:
    bool in_mut(const InstNode* node) const {
        for (const InstNode* n = node; n != nullptr; n = n->parent) {
            if (n == cs_.mut) return true;
        }
        return false;
    }

    bool whole(const InstNode* node) const {
        if (in_mut(node)) return true;
        const NodeMarks* m = cs_.marks_for(node);
        return m != nullptr && m->whole;
    }

    /// A node is involved when it carries marks, belongs to the MUT
    /// subtree, or has an involved descendant (it must at least pass the
    /// instance chain through).
    bool mark_involved(const InstNode* node) {
        bool inv = whole(node);
        const NodeMarks* m = cs_.marks_for(node);
        if (m != nullptr && !m->empty()) inv = true;
        for (const auto& c : node->children) {
            if (mark_involved(c.get())) inv = true;
        }
        if (inv) involved_.insert(node);
        return inv;
    }

    /// Emit (once) the module variant for `node`; returns its name.
    std::string emit(const InstNode* node) {
        // Children first so instance statements can reference their names.
        std::map<const rtl::Instance*, std::string> child_variant;
        std::ostringstream sig;
        sig << node->module->name << "|";
        for (const auto& c : node->children) {
            if (involved_.count(c.get()) == 0) continue;
            std::string v = emit(c.get());
            child_variant[c->inst] = v;
            sig << c->inst->inst_name << "=" << v << ";";
        }

        const bool full = whole(node);
        const NodeMarks* m = cs_.marks_for(node);
        if (full) {
            sig << "whole";
        } else if (m != nullptr) {
            for (const auto* a : m->assigns) sig << "a" << a->id << ",";
            for (const auto* s : m->stmts) sig << "s" << s << ",";
        }

        auto it = variant_by_sig_.find(sig.str());
        if (it != variant_by_sig_.end()) {
            variant_of_[node] = it->second;
            return it->second;
        }

        std::string name = node->module->name;
        int& count = variants_of_module_[name];
        ++count;
        if (count > 1) name += "_cs" + std::to_string(count);
        variant_by_sig_[sig.str()] = name;
        variant_of_[node] = name;

        auto copy = build_module(node, full, m, child_variant);
        copy->name = name;
        emitted_source_ += rtl::to_verilog(*copy);
        emitted_source_ += "\n";
        return name;
    }

    std::unique_ptr<rtl::Module>
    build_module(const InstNode* node, bool full, const NodeMarks* m,
                 const std::map<const rtl::Instance*, std::string>& child_variant) {
        auto copy = rtl::clone(*node->module);
        if (!full) {
            // Prune continuous assignments.
            std::set<int> keep_assign_ids;
            if (m != nullptr) {
                for (const auto* a : m->assigns) keep_assign_ids.insert(a->id);
            }
            std::vector<rtl::ContAssign> kept;
            for (auto& a : copy->assigns) {
                if (keep_assign_ids.count(a.id) != 0) kept.push_back(std::move(a));
            }
            copy->assigns = std::move(kept);

            // Prune always blocks statement-by-statement. The marks refer
            // to original Stmt pointers, so filter the original bodies and
            // replace the cloned ones.
            std::set<const rtl::Stmt*> keep_stmts;
            if (m != nullptr) keep_stmts = m->stmts;
            std::vector<rtl::AlwaysBlock> blocks;
            for (size_t i = 0; i < node->module->always_blocks.size(); ++i) {
                const auto& orig = node->module->always_blocks[i];
                if (!orig.body) continue;
                auto body = filter_stmt(*orig.body, keep_stmts);
                if (!body) continue;
                rtl::AlwaysBlock b;
                b.is_comb = orig.is_comb;
                b.sens = orig.sens;
                b.loc = orig.loc;
                b.id = static_cast<int>(blocks.size());
                b.body = std::move(body);
                blocks.push_back(std::move(b));
            }
            copy->always_blocks = std::move(blocks);
        }

        // Prune / retarget instances.
        std::vector<rtl::Instance> insts;
        for (auto& inst : copy->instances) {
            // Match the cloned instance to the original by id.
            const rtl::Instance* orig = nullptr;
            for (const auto& oi : node->module->instances) {
                if (oi.id == inst.id) orig = &oi;
            }
            auto cv = orig != nullptr ? child_variant.find(orig)
                                      : child_variant.end();
            if (cv == child_variant.end()) {
                if (!full) continue; // child contributes nothing: drop
                // Full modules keep all instances; the child was emitted as
                // whole too (it is inside the MUT subtree), so the original
                // name is correct only if it was emitted. Emit it now.
                for (const auto& c : node->children) {
                    if (c->inst == orig) {
                        inst.module_name = emit(c.get());
                        break;
                    }
                }
                insts.push_back(std::move(inst));
                continue;
            }
            inst.module_name = cv->second;
            insts.push_back(std::move(inst));
        }
        copy->instances = std::move(insts);
        return copy;
    }

    const elab::ElaboratedDesign& design_;
    const ConstraintSet& cs_;
    std::set<const InstNode*> involved_;
    std::map<std::string, std::string> variant_by_sig_;
    std::map<std::string, int> variants_of_module_;
    std::map<const InstNode*, std::string> variant_of_;
    std::string emitted_source_;
};

} // namespace

ConstraintWriter::ConstraintWriter(const elab::ElaboratedDesign& design,
                                   const ConstraintSet& cs)
    : design_(design), cs_(cs) {}

std::string ConstraintWriter::write_verilog() const {
    WriterImpl impl(design_, cs_);
    return impl.run();
}

std::string ConstraintWriter::top_name() const {
    WriterImpl impl(design_, cs_);
    return impl.top_variant();
}

} // namespace factor::core
