#include "core/extractor.hpp"

#include "obs/inject.hpp"
#include "obs/obs.hpp"
#include "util/stopwatch.hpp"

#include <algorithm>

namespace factor::core {

using analysis::SiteKind;
using analysis::SiteRef;
using elab::InstNode;

namespace {

/// Resolve the child-module port a connection binds, handling positional
/// connections. Returns null if unresolvable.
const rtl::Port* port_of_conn(const rtl::Module& child_mod,
                              const rtl::Instance& inst,
                              const rtl::PortConn& conn) {
    if (!conn.port.empty()) return child_mod.find_port(conn.port);
    for (size_t i = 0; i < inst.conns.size(); ++i) {
        if (&inst.conns[i] == &conn) {
            return i < child_mod.ports.size() ? &child_mod.ports[i] : nullptr;
        }
    }
    return nullptr;
}

/// Find the connection for a given child port name (named or positional).
const rtl::PortConn* conn_of_port(const rtl::Module& child_mod,
                                  const rtl::Instance& inst,
                                  const std::string& port_name) {
    bool positional = !inst.conns.empty() && inst.conns.front().port.empty();
    if (positional) {
        for (size_t i = 0; i < inst.conns.size() && i < child_mod.ports.size();
             ++i) {
            if (child_mod.ports[i].name == port_name) return &inst.conns[i];
        }
        return nullptr;
    }
    for (const auto& c : inst.conns) {
        if (c.port == port_name) return &c;
    }
    return nullptr;
}

bool node_inside(const InstNode* node, const InstNode* subtree_root) {
    for (const InstNode* n = node; n != nullptr; n = n->parent) {
        if (n == subtree_root) return true;
    }
    return false;
}

} // namespace

ExtractionSession::ExtractionSession(const elab::ElaboratedDesign& design,
                                     Mode mode, util::DiagEngine& diags,
                                     util::RunGuard* guard)
    : design_(design), mode_(mode), diags_(diags), guard_(guard) {}

const InstNode* ExtractionSession::child_node(const InstNode* parent,
                                              const rtl::Instance* inst) const {
    for (const auto& c : parent->children) {
        if (c->inst == inst) return c.get();
    }
    return nullptr;
}

namespace {

std::string node_net_prefix(const InstNode& node) {
    if (node.parent == nullptr) return "";
    return node_net_prefix(*node.parent) + node.inst_name + ".";
}

} // namespace

void ExtractionSession::set_pier_registers(std::set<std::string> bases) {
    if (piers_ == bases) return;
    if (!graph_.empty()) {
        throw util::FactorError(
            "set_pier_registers after extraction started: the cached query "
            "graph would be inconsistent");
    }
    piers_ = std::move(bases);
}

bool ExtractionSession::is_pier(const InstNode* node,
                                const std::string& signal) const {
    if (piers_.empty()) return false;
    return piers_.count(node_net_prefix(*node) + signal) != 0;
}

ConstraintSet ExtractionSession::extract(const InstNode& mut) {
    try {
        return extract_impl(mut);
    } catch (const util::FactorError& e) {
        // The walk died mid-expansion: the query graph may hold a node
        // marked expanded with only partial contents, so it cannot be
        // trusted for reuse on any path out of here.
        graph_.clear();
        if (mode_ == Mode::Composed) {
            // Graceful degradation: re-extract this MUT flat. Flat mode
            // rebuilds the graph from scratch and coarsens to module
            // granularity — weaker constraints, but a complete set.
            obs::counter("extract.degraded").add(1);
            diags_.warning({}, std::string("composed extraction failed (") +
                                   e.what() +
                                   "); degrading to flat extraction for '" +
                                   mut.path() + "'");
            mode_ = Mode::Flat;
            try {
                ConstraintSet cs = extract_impl(mut);
                mode_ = Mode::Composed;
                // The flat walk left module-granular nodes in the graph;
                // they must not seed future composed reuse.
                graph_.clear();
                cs.status = util::PhaseStatus::Degraded;
                cs.status_detail =
                    std::string("composed extraction failed (") + e.what() +
                    "); fell back to flat";
                return cs;
            } catch (const util::FactorError& e2) {
                mode_ = Mode::Composed;
                graph_.clear();
                return failed_set(mut, e2.what());
            }
        }
        return failed_set(mut, e.what());
    }
}

ConstraintSet ExtractionSession::failed_set(const InstNode& mut,
                                            const std::string& why) {
    obs::counter("extract.failed").add(1);
    diags_.error({}, "constraint extraction failed for '" + mut.path() +
                         "': " + why);
    ConstraintSet cs;
    cs.mut = &mut;
    cs.marks[&mut].whole = true; // the MUT itself is still usable
    cs.status = util::PhaseStatus::Failed;
    cs.status_detail = why;
    return cs;
}

ConstraintSet ExtractionSession::extract_impl(const InstNode& mut) {
    util::Stopwatch watch;
    obs::Span span("extract.mut");
    span.attr("path", mut.path());
    span.attr("mode", mode_ == Mode::Flat ? "flat" : "composed");
    span.attr("level", mut.level);
    if (mode_ == Mode::Flat) {
        // Conventional methodology: nothing carries over between MUTs.
        graph_.clear();
    }
    const size_t hits_before = hits_;
    const size_t misses_before = misses_;
    type_tally_.clear();
    truncated_ = false;

    ConstraintSet cs;
    cs.mut = &mut;
    cs.marks[&mut].whole = true;

    if (mut.parent != nullptr) {
        std::set<QueryKey> visited;
        const InstNode* parent = mut.parent;
        const rtl::Instance& inst = *mut.inst;
        const rtl::Module& mut_mod = *mut.module;
        for (const auto& port : mut_mod.ports) {
            const rtl::PortConn* conn = conn_of_port(mut_mod, inst, port.name);
            if (conn == nullptr || conn->expr == nullptr) continue;
            std::vector<std::string> sigs;
            if (port.dir == rtl::PortDir::Output) {
                analysis::collect_lvalue_signals(*conn->expr, sigs);
            } else {
                rtl::collect_idents(*conn->expr, sigs);
            }
            std::sort(sigs.begin(), sigs.end());
            sigs.erase(std::unique(sigs.begin(), sigs.end()), sigs.end());
            Dir dir =
                port.dir == rtl::PortDir::Output ? Dir::Prop : Dir::Source;
            for (const auto& s : sigs) {
                visit(QueryKey{parent, s, dir}, cs, visited);
            }
        }
    }

    if (mode_ == Mode::Flat) {
        // Conventional methodology (Tupuri et al.): the surrounding logic
        // is taken at module granularity — once any statement of a module
        // participates, the whole module environment is synthesized and
        // redundancy removal is left entirely to the synthesis tool. The
        // compositional mode keeps the statement-level slices.
        for (auto& [node, marks] : cs.marks) {
            if (!marks.whole && !marks.empty()) {
                marks.mark_all_items(*node->module);
            }
        }
    }

    cs.dedup_issues();
    cs.extraction_seconds = watch.seconds();
    cs.cache_hits = hits_ - hits_before;
    cs.cache_misses = misses_ - misses_before;
    if (truncated_) {
        cs.status = util::PhaseStatus::BudgetExhausted;
        cs.status_detail =
            std::string("extraction stopped: ") +
            util::to_string(guard_ != nullptr ? guard_->reason()
                                              : util::GuardStop::None) +
            " budget exceeded; constraint slice is partial";
        obs::counter("extract.guard_stops").add(1);
    }

    obs::counter("extract.extractions").add(1);
    obs::counter("extract.cache.hits").add(cs.cache_hits);
    obs::counter("extract.cache.misses").add(cs.cache_misses);
    // Per-module-type reuse: in composed mode these hit counters are the
    // direct evidence of the paper's cross-level/cross-MUT constraint reuse.
    for (const auto& [mod, hm] : type_tally_) {
        if (hm.first > 0) {
            obs::counter("extract.cache.hits." + mod->name).add(hm.first);
        }
        if (hm.second > 0) {
            obs::counter("extract.cache.misses." + mod->name).add(hm.second);
        }
    }
    // Where extraction time goes per hierarchy level of the MUT.
    obs::histogram("extract.us.level" + std::to_string(mut.level))
        .record(static_cast<uint64_t>(watch.seconds() * 1e6));
    span.attr("items", cs.item_count());
    span.attr("issues", cs.issues.size());
    span.attr("cache_hits", cs.cache_hits);
    span.attr("cache_misses", cs.cache_misses);
    return cs;
}

// ------------------------------------------------------- graph snapshots

namespace {

void collect_stmts(const rtl::Stmt* s,
                   std::vector<const rtl::Stmt*>& out) {
    if (s == nullptr) return;
    out.push_back(s);
    collect_stmts(s->then_s.get(), out);
    collect_stmts(s->else_s.get(), out);
    for (const auto& item : s->items) collect_stmts(item.body.get(), out);
    collect_stmts(s->init.get(), out);
    collect_stmts(s->step.get(), out);
    collect_stmts(s->body.get(), out);
    for (const auto& child : s->stmts) collect_stmts(child.get(), out);
}

} // namespace

std::vector<const rtl::Stmt*> module_stmt_order(const rtl::Module& mod) {
    std::vector<const rtl::Stmt*> out;
    for (const auto& ab : mod.always_blocks) {
        collect_stmts(ab.body.get(), out);
    }
    return out;
}

GraphSnapshot ExtractionSession::export_graph() const {
    GraphSnapshot snap;
    // Index spaces, built lazily per module type.
    std::map<const rtl::Module*, std::map<const rtl::Stmt*, uint32_t>>
        stmt_index;
    auto stmt_of = [&](const rtl::Module& mod,
                       const rtl::Stmt* s) -> const uint32_t* {
        auto [it, fresh] = stmt_index.try_emplace(&mod);
        if (fresh) {
            uint32_t i = 0;
            for (const rtl::Stmt* st : module_stmt_order(mod)) {
                it->second.emplace(st, i++);
            }
        }
        auto found = it->second.find(s);
        return found == it->second.end() ? nullptr : &found->second;
    };
    auto snap_key = [](const QueryKey& k) {
        return GraphSnapshot::Key{k.node->path(), k.signal,
                                  k.dir == Dir::Source ? 0 : 1};
    };

    for (const auto& [key, node] : graph_) {
        if (!node.expanded) continue;
        GraphSnapshot::Node out;
        out.key = snap_key(key);
        for (const auto& [inode, assign] : node.assigns) {
            const rtl::Module& mod = *inode->module;
            size_t idx = static_cast<size_t>(assign - mod.assigns.data());
            if (idx >= mod.assigns.size()) continue; // foreign pointer
            out.assigns.push_back(
                {inode->path(), static_cast<uint32_t>(idx)});
        }
        for (const auto& [inode, stmt] : node.stmts) {
            const uint32_t* idx = stmt_of(*inode->module, stmt);
            if (idx == nullptr) continue; // foreign pointer
            out.stmts.push_back({inode->path(), *idx});
        }
        out.issues = node.issues;
        out.next.reserve(node.next.size());
        for (const auto& nk : node.next) out.next.push_back(snap_key(nk));
        snap.nodes.push_back(std::move(out));
    }
    // graph_ is keyed by pointer, so its iteration order varies run to
    // run; sort by the stable key so snapshot bytes are deterministic.
    std::sort(snap.nodes.begin(), snap.nodes.end(),
              [](const GraphSnapshot::Node& a, const GraphSnapshot::Node& b) {
                  return a.key < b.key;
              });
    return snap;
}

bool ExtractionSession::import_graph(const GraphSnapshot& snap) {
    std::map<std::string, const InstNode*> nodes;
    auto resolve_node = [&](const std::string& path) -> const InstNode* {
        auto [it, fresh] = nodes.try_emplace(path, nullptr);
        if (fresh) it->second = design_.find_by_path(path);
        return it->second;
    };
    std::map<const rtl::Module*, std::vector<const rtl::Stmt*>> stmt_order;
    auto resolve_stmt = [&](const rtl::Module& mod,
                            uint32_t idx) -> const rtl::Stmt* {
        auto [it, fresh] = stmt_order.try_emplace(&mod);
        if (fresh) it->second = module_stmt_order(mod);
        return idx < it->second.size() ? it->second[idx] : nullptr;
    };

    // Resolve into a staging map first: either the whole snapshot binds to
    // this design or nothing is touched.
    std::map<QueryKey, QueryNode> staged;
    for (const auto& n : snap.nodes) {
        const InstNode* knode = resolve_node(n.key.path);
        if (knode == nullptr) return false;
        QueryKey key{knode, n.key.signal,
                     n.key.dir == 0 ? Dir::Source : Dir::Prop};
        QueryNode qn;
        qn.expanded = true;
        for (const auto& item : n.assigns) {
            const InstNode* inode = resolve_node(item.path);
            if (inode == nullptr ||
                item.index >= inode->module->assigns.size()) {
                return false;
            }
            qn.assigns.emplace_back(inode,
                                    &inode->module->assigns[item.index]);
        }
        for (const auto& item : n.stmts) {
            const InstNode* inode = resolve_node(item.path);
            if (inode == nullptr) return false;
            const rtl::Stmt* stmt = resolve_stmt(*inode->module, item.index);
            if (stmt == nullptr) return false;
            qn.stmts.emplace_back(inode, stmt);
        }
        qn.issues = n.issues;
        qn.next.reserve(n.next.size());
        for (const auto& nk : n.next) {
            const InstNode* nnode = resolve_node(nk.path);
            if (nnode == nullptr) return false;
            qn.next.push_back(QueryKey{
                nnode, nk.signal, nk.dir == 0 ? Dir::Source : Dir::Prop});
        }
        if (!staged.emplace(std::move(key), std::move(qn)).second) {
            return false; // duplicate key: not a valid snapshot
        }
    }
    // Merge: nodes this session already expanded win (they are known
    // consistent with every mark handed out so far).
    for (auto& [key, qn] : staged) {
        graph_.try_emplace(key, std::move(qn));
    }
    return true;
}

void ExtractionSession::visit(const QueryKey& key, ConstraintSet& out,
                              std::set<QueryKey>& visited) {
    // Iterative DFS; the query graph is cyclic and can be deep.
    std::vector<QueryKey> stack{key};
    while (!stack.empty()) {
        if (guard_ != nullptr && !guard_->tick()) {
            truncated_ = true;
            return; // partial slice; extract_impl reports BudgetExhausted
        }
        QueryKey k = std::move(stack.back());
        stack.pop_back();
        if (!visited.insert(k).second) continue;
        // Everything inside the MUT subtree is included whole; constraint
        // queries stop at its boundary.
        if (out.mut != nullptr && node_inside(k.node, out.mut)) continue;

        QueryNode& node = graph_[k];
        if (!node.expanded) {
            ++misses_;
            ++type_tally_[k.node->module].second;
            expand(k, node);
        } else {
            ++hits_;
            ++type_tally_[k.node->module].first;
        }
        for (const auto& [inode, assign] : node.assigns) {
            out.marks[inode].assigns.insert(assign);
        }
        for (const auto& [inode, stmt] : node.stmts) {
            out.marks[inode].stmts.insert(stmt);
        }
        out.issues.insert(out.issues.end(), node.issues.begin(),
                          node.issues.end());
        stack.insert(stack.end(), node.next.begin(), node.next.end());
    }
}

void ExtractionSession::expand(const QueryKey& key, QueryNode& node) {
    obs::inject_point("extract.expand");
    node.expanded = true;
    if (key.dir == Dir::Source) {
        expand_source(key, node);
    } else {
        expand_prop(key, node);
    }
    // Deduplicate successor queries.
    std::sort(node.next.begin(), node.next.end());
    node.next.erase(std::unique(node.next.begin(), node.next.end()),
                    node.next.end());
}

void ExtractionSession::expand_source(const QueryKey& key, QueryNode& node) {
    const InstNode* inode = key.node;
    const rtl::Module& mod = *inode->module;
    const analysis::ModuleAnalysis& an = analyses_.get(mod);

    // PIER cut: the register is directly loadable from the chip interface,
    // so its driving cone need not be extracted at all — test patterns set
    // it with a load instruction (paper §2.1).
    if (is_pier(inode, key.signal)) return;

    const auto& defs = an.defs(key.signal);
    bool any_def = false;

    for (const SiteRef& site : defs) {
        switch (site.kind) {
        case SiteKind::Port: {
            if (site.port->dir != rtl::PortDir::Input &&
                site.port->dir != rtl::PortDir::Inout) {
                continue;
            }
            any_def = true;
            if (inode->parent == nullptr) {
                break; // chip-level primary input: driven by the tester
            }
            const rtl::PortConn* conn =
                conn_of_port(mod, *inode->inst, site.port->name);
            if (conn == nullptr || conn->expr == nullptr) {
                TestabilityIssue issue;
                issue.kind = TestabilityIssue::Kind::EmptyUseDefChain;
                issue.instance_path = inode->path();
                issue.signal = key.signal;
                issue.trace = {inode->path() + "." + site.port->name +
                               " (unconnected port)"};
                node.issues.push_back(std::move(issue));
                break;
            }
            std::vector<std::string> sigs;
            rtl::collect_idents(*conn->expr, sigs);
            for (const auto& s : sigs) {
                node.next.push_back(QueryKey{inode->parent, s, Dir::Source});
            }
            break;
        }
        case SiteKind::ContAssign: {
            any_def = true;
            node.assigns.emplace_back(inode, site.assign);
            for (const auto& s : an.rhs_signals(site)) {
                node.next.push_back(QueryKey{inode, s, Dir::Source});
            }
            break;
        }
        case SiteKind::ProcAssign: {
            any_def = true;
            node.stmts.emplace_back(inode, site.stmt);
            for (const auto& s : an.rhs_signals(site)) {
                node.next.push_back(QueryKey{inode, s, Dir::Source});
            }
            for (const auto& s : an.control_signals(site)) {
                node.next.push_back(QueryKey{inode, s, Dir::Source});
            }
            break;
        }
        case SiteKind::InstanceConn: {
            const InstNode* child = child_node(inode, site.inst);
            if (child == nullptr) continue;
            const rtl::Port* port =
                port_of_conn(*child->module, *site.inst, *site.conn);
            if (port == nullptr || port->dir != rtl::PortDir::Output) {
                continue; // the connection uses, not defines, this signal
            }
            any_def = true;
            node.next.push_back(QueryKey{child, port->name, Dir::Source});
            break;
        }
        }
    }

    if (!any_def) {
        TestabilityIssue issue;
        issue.kind = TestabilityIssue::Kind::EmptyUseDefChain;
        issue.instance_path = inode->path();
        issue.signal = key.signal;
        issue.trace = {inode->path() + "." + key.signal};
        node.issues.push_back(std::move(issue));
    } else if (an.only_constant_defs(key.signal)) {
        TestabilityIssue issue;
        issue.kind = TestabilityIssue::Kind::HardCodedConstraint;
        issue.instance_path = inode->path();
        issue.signal = key.signal;
        issue.trace = {inode->path() + "." + key.signal};
        node.issues.push_back(std::move(issue));
    }
}

void ExtractionSession::expand_prop(const QueryKey& key, QueryNode& node) {
    const InstNode* inode = key.node;
    const rtl::Module& mod = *inode->module;
    const analysis::ModuleAnalysis& an = analyses_.get(mod);

    const auto& uses = an.uses(key.signal);
    bool any_use = false;

    for (const SiteRef& site : uses) {
        switch (site.kind) {
        case SiteKind::Port: {
            if (site.port->dir != rtl::PortDir::Output &&
                site.port->dir != rtl::PortDir::Inout) {
                continue;
            }
            any_use = true;
            if (inode->parent == nullptr) {
                break; // chip-level primary output: observed by the tester
            }
            const rtl::PortConn* conn =
                conn_of_port(mod, *inode->inst, site.port->name);
            if (conn == nullptr || conn->expr == nullptr) {
                TestabilityIssue issue;
                issue.kind = TestabilityIssue::Kind::EmptyDefUseChain;
                issue.instance_path = inode->path();
                issue.signal = key.signal;
                issue.trace = {inode->path() + "." + site.port->name +
                               " (unconnected port)"};
                node.issues.push_back(std::move(issue));
                break;
            }
            std::vector<std::string> sigs;
            analysis::collect_lvalue_signals(*conn->expr, sigs);
            for (const auto& s : sigs) {
                node.next.push_back(QueryKey{inode->parent, s, Dir::Prop});
            }
            break;
        }
        case SiteKind::ContAssign:
        case SiteKind::ProcAssign: {
            any_use = true;
            if (site.kind == SiteKind::ContAssign) {
                node.assigns.emplace_back(inode, site.assign);
            } else {
                node.stmts.emplace_back(inode, site.stmt);
            }
            // Propagate through the targets. A PIER target is itself an
            // observation point (the value is stored out through the chip
            // interface), so propagation stops there.
            for (const auto& s : an.lhs_signals(site)) {
                if (is_pier(inode, s)) continue;
                node.next.push_back(QueryKey{inode, s, Dir::Prop});
            }
            // Side inputs must be justified to sensitize the path.
            for (const auto& s : an.rhs_signals(site)) {
                if (s == key.signal) continue;
                node.next.push_back(QueryKey{inode, s, Dir::Source});
            }
            for (const auto& s : an.control_signals(site)) {
                if (s == key.signal) continue;
                node.next.push_back(QueryKey{inode, s, Dir::Source});
            }
            break;
        }
        case SiteKind::InstanceConn: {
            const InstNode* child = child_node(inode, site.inst);
            if (child == nullptr) continue;
            const rtl::Port* port =
                port_of_conn(*child->module, *site.inst, *site.conn);
            if (port == nullptr || port->dir != rtl::PortDir::Input) {
                continue; // output connections define, not use
            }
            any_use = true;
            node.next.push_back(QueryKey{child, port->name, Dir::Prop});
            break;
        }
        }
    }

    if (!any_use) {
        TestabilityIssue issue;
        issue.kind = TestabilityIssue::Kind::EmptyDefUseChain;
        issue.instance_path = inode->path();
        issue.signal = key.signal;
        issue.trace = {inode->path() + "." + key.signal};
        node.issues.push_back(std::move(issue));
    }
}

} // namespace factor::core
