#include "core/constraints.hpp"

#include <algorithm>
#include <sstream>

namespace factor::core {

std::string TestabilityIssue::describe() const {
    std::ostringstream os;
    switch (kind) {
    case Kind::EmptyUseDefChain:
        os << "empty use-def chain: no path from the chip interface to '";
        break;
    case Kind::EmptyDefUseChain:
        os << "empty def-use chain: no path to the chip interface from '";
        break;
    case Kind::HardCodedConstraint:
        os << "hard-coded constraint: only constant values drive '";
        break;
    }
    os << signal << "' in " << instance_path;
    if (!trace.empty()) {
        os << " (trace:";
        for (const auto& t : trace) os << " " << t;
        os << ")";
    }
    return os.str();
}

void NodeMarks::merge(const NodeMarks& o) {
    whole = whole || o.whole;
    assigns.insert(o.assigns.begin(), o.assigns.end());
    stmts.insert(o.stmts.begin(), o.stmts.end());
}

namespace {

void collect_assign_stmts(const rtl::Stmt& s,
                          std::set<const rtl::Stmt*>& out) {
    if (s.kind == rtl::StmtKind::Assign) out.insert(&s);
    if (s.then_s) collect_assign_stmts(*s.then_s, out);
    if (s.else_s) collect_assign_stmts(*s.else_s, out);
    if (s.body) collect_assign_stmts(*s.body, out);
    for (const auto& item : s.items) {
        if (item.body) collect_assign_stmts(*item.body, out);
    }
    for (const auto& sub : s.stmts) {
        if (sub) collect_assign_stmts(*sub, out);
    }
}

} // namespace

void NodeMarks::mark_all_items(const rtl::Module& m) {
    for (const auto& a : m.assigns) assigns.insert(&a);
    for (const auto& b : m.always_blocks) {
        if (b.body) collect_assign_stmts(*b.body, stmts);
    }
}

void ConstraintSet::merge(const ConstraintSet& o) {
    for (const auto& [node, m] : o.marks) {
        marks[node].merge(m);
    }
    issues.insert(issues.end(), o.issues.begin(), o.issues.end());
}

const NodeMarks* ConstraintSet::marks_for(const elab::InstNode* n) const {
    auto it = marks.find(n);
    return it != marks.end() ? &it->second : nullptr;
}

size_t ConstraintSet::item_count() const {
    size_t n = 0;
    for (const auto& [node, m] : marks) {
        n += m.assigns.size() + m.stmts.size() + (m.whole ? 1 : 0);
    }
    return n;
}

void ConstraintSet::dedup_issues() {
    std::sort(issues.begin(), issues.end(),
              [](const TestabilityIssue& a, const TestabilityIssue& b) {
                  return std::tie(a.kind, a.instance_path, a.signal) <
                         std::tie(b.kind, b.instance_path, b.signal);
              });
    issues.erase(std::unique(issues.begin(), issues.end(),
                             [](const TestabilityIssue& a,
                                const TestabilityIssue& b) {
                                 return a.kind == b.kind &&
                                        a.instance_path == b.instance_path &&
                                        a.signal == b.signal;
                             }),
                 issues.end());
}

} // namespace factor::core
