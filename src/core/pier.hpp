// PIER identification (paper §2.1): Primary Input/output-accessible
// Registers — registers that processor load/store style paths make directly
// controllable and observable from the chip interface. In the ATPG view
// they are promoted to pseudo primary inputs/outputs, cutting the
// sequential depth of the transformed module.
//
// The analysis is structural, on the gate netlist: a register qualifies
// when its data input is reachable from a primary input through
// combinational logic only (it can be "loaded" in one cycle) and its output
// reaches a primary output crossing at most `max_store_depth` flip-flops
// (it can be "stored" within a couple of cycles).
#pragma once

#include "synth/netlist.hpp"

#include <cstddef>
#include <string>
#include <vector>

namespace factor::core {

struct PierOptions {
    /// Max sequential crossings from a PI to the register's data input.
    size_t max_load_depth = 0;
    /// Max sequential crossings from the register output to a PO.
    size_t max_store_depth = 1;
};

struct PierInfo {
    std::string register_net; // the DFF output net name
    size_t load_depth = 0;
    size_t store_depth = 0;
};

/// Identify PIERs in `nl`. Returns one entry per qualifying register.
[[nodiscard]] std::vector<PierInfo> find_piers(const synth::Netlist& nl,
                                               const PierOptions& options);

} // namespace factor::core
