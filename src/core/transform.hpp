// Transformed-module construction: the end-to-end FACTOR flow for one MUT.
//
//   extract constraints  ->  synthesize (MUT + marked virtual logic)  ->
//   optimize ("synthesis removes the redundant constraints")          ->
//   expose PIERs                                                      ->
//   a gate netlist ready for the ATPG engine, plus the statistics the
//   paper reports in Tables 2 and 3.
//
// The two modes differ exactly as in the paper (see extractor.hpp):
// Mode::Flat re-extracts everything per MUT and gets a single monolithic
// simplification pass; Mode::Composed reuses cached constraints and composes
// per-level-simplified slices (modeled as fixpoint optimization).
#pragma once

#include "core/constraints.hpp"
#include "core/extractor.hpp"
#include "core/pier.hpp"
#include "elab/elaborator.hpp"
#include "synth/netlist.hpp"
#include "synth/synthesizer.hpp"

#include <memory>
#include <string>

namespace factor::core {

struct TransformOptions {
    bool expose_piers = true;
    /// Explicit PIER register list: hierarchical net-name bases of the
    /// registers the ISA reaches via load/store (e.g. "exu.bank.core.r3").
    /// When non-empty it drives both the extraction cut (source cones stop
    /// at PIERs, propagation stops at PIER writes) and the netlist
    /// exposure. When empty, the structural find_piers() analysis selects
    /// exposure candidates and no extraction cut is applied.
    std::vector<std::string> pier_allowlist;
    PierOptions pier;
};

/// A MUT's ATPG view plus the bookkeeping for the result tables.
struct TransformedModule {
    synth::Netlist netlist;
    std::string mut_prefix; // hierarchical net-name prefix of MUT nets
    ConstraintSet constraints;

    /// Worst status across the extract/synthesize/optimize stages that
    /// built this view (see ConstraintSet::status for the degradation
    /// semantics; a guard stop during synthesis yields BudgetExhausted).
    util::PhaseStatus status = util::PhaseStatus::Ok;
    std::string status_detail;

    double extraction_seconds = 0.0;
    double synthesis_seconds = 0.0;
    size_t surrounding_gates = 0; // virtual logic gate count
    size_t mut_gates = 0;
    size_t num_pis = 0; // connected primary inputs
    size_t num_pos = 0; // driven primary outputs
    size_t piers_exposed = 0;
};

/// Characteristics of a module in its design context (Table 1).
struct ModuleCharacteristics {
    std::string name;
    int hierarchy_level = 0;
    size_t primary_inputs = 0;  // port bits
    size_t primary_outputs = 0; // port bits
    size_t gates_in_module = 0;
    size_t gates_in_surrounding = 0;
    size_t stuck_at_faults = 0; // collapsed, stand-alone module
};

class TransformBuilder {
  public:
    /// `guard` (optional) bounds every synthesis/optimization run the
    /// builder performs; stops yield partial netlists, never throws.
    TransformBuilder(const elab::ElaboratedDesign& design,
                     util::DiagEngine& diags,
                     util::RunGuard* guard = nullptr);

    /// Run the FACTOR flow for `mut` using `session`'s mode and cache.
    [[nodiscard]] TransformedModule build(const elab::InstNode& mut,
                                          ExtractionSession& session,
                                          const TransformOptions& options);

    /// Synthesize the MUT alone (its ports become primary I/O) — the
    /// "stand-alone module" of Table 4.
    [[nodiscard]] synth::Netlist standalone(const elab::InstNode& mut);

    /// Synthesize and optimize the full design.
    [[nodiscard]] synth::Netlist full_design();

    /// Table 1 characteristics for `mut`.
    [[nodiscard]] ModuleCharacteristics characteristics(const elab::InstNode& mut);

    /// Hierarchical net-name prefix of an instance node ("" for the root).
    [[nodiscard]] static std::string net_prefix(const elab::InstNode& node);

    /// Gates whose output net lives under `prefix`.
    [[nodiscard]] static size_t gates_under(const synth::Netlist& nl,
                                            const std::string& prefix);

  private:
    const elab::ElaboratedDesign& design_;
    util::DiagEngine& diags_;
    util::RunGuard* guard_ = nullptr;
};

} // namespace factor::core
