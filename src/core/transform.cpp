#include "core/transform.hpp"

#include "atpg/fault.hpp"
#include "obs/inject.hpp"
#include "obs/obs.hpp"
#include "synth/optimizer.hpp"
#include "synth/transforms.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"

#include <set>

namespace factor::core {

using elab::InstNode;

namespace {

/// Synthesizer filter backed by a ConstraintSet.
class ConstraintFilter : public synth::ItemFilter {
  public:
    explicit ConstraintFilter(const ConstraintSet& cs) : cs_(cs) {
        collect(cs.mut != nullptr ? root_of(cs.mut) : nullptr);
    }

    [[nodiscard]] bool include_assign(const InstNode& node,
                                      const rtl::ContAssign& a) const override {
        if (whole(&node)) return true;
        const NodeMarks* m = cs_.marks_for(&node);
        return m != nullptr && m->assigns.count(&a) != 0;
    }

    [[nodiscard]] bool include_stmt(const InstNode& node,
                                    const rtl::Stmt& s) const override {
        if (whole(&node)) return true;
        const NodeMarks* m = cs_.marks_for(&node);
        return m != nullptr && m->stmts.count(&s) != 0;
    }

    [[nodiscard]] bool include_instance(const InstNode& child) const override {
        return involved_.count(&child) != 0;
    }

  private:
    [[nodiscard]] static const InstNode* root_of(const InstNode* n) {
        while (n->parent != nullptr) n = n->parent;
        return n;
    }

    [[nodiscard]] bool whole(const InstNode* node) const {
        for (const InstNode* n = node; n != nullptr; n = n->parent) {
            if (n == cs_.mut) return true;
            const NodeMarks* m = cs_.marks_for(n);
            if (m != nullptr && m->whole) return true;
        }
        return false;
    }

    bool collect(const InstNode* node) {
        if (node == nullptr) return false;
        bool inv = whole(node);
        const NodeMarks* m = cs_.marks_for(node);
        if (m != nullptr && !m->empty()) inv = true;
        for (const auto& c : node->children) {
            if (collect(c.get())) inv = true;
        }
        if (inv) involved_.insert(node);
        return inv;
    }

    const ConstraintSet& cs_;
    std::set<const InstNode*> involved_;
};

} // namespace

TransformBuilder::TransformBuilder(const elab::ElaboratedDesign& design,
                                   util::DiagEngine& diags,
                                   util::RunGuard* guard)
    : design_(design), diags_(diags), guard_(guard) {}

std::string TransformBuilder::net_prefix(const InstNode& node) {
    if (node.parent == nullptr) return "";
    return net_prefix(*node.parent) + node.inst_name + ".";
}

size_t TransformBuilder::gates_under(const synth::Netlist& nl,
                                     const std::string& prefix) {
    size_t n = 0;
    for (const synth::Gate& g : nl.gates()) {
        if (synth::is_const(g.type) || g.type == synth::GateType::Buf) continue;
        if (util::starts_with(nl.net_name(g.out), prefix)) ++n;
    }
    return n;
}

namespace {

/// Strip a trailing "[i]" bit index from a net name.
std::string net_base(const std::string& name) {
    auto pos = name.rfind('[');
    return pos == std::string::npos ? name : name.substr(0, pos);
}

} // namespace

TransformedModule TransformBuilder::build(const InstNode& mut,
                                          ExtractionSession& session,
                                          const TransformOptions& options) {
    obs::Span span("transform.build");
    span.attr("mut", mut.path());
    obs::inject_point("transform.build");
    TransformedModule tm;
    const std::set<std::string> allowlist(options.pier_allowlist.begin(),
                                          options.pier_allowlist.end());
    if (options.expose_piers && !allowlist.empty()) {
        session.set_pier_registers(allowlist);
    }

    tm.constraints = session.extract(mut);
    tm.status = tm.constraints.status;
    tm.status_detail = tm.constraints.status_detail;
    tm.extraction_seconds = tm.constraints.extraction_seconds;
    tm.mut_prefix = net_prefix(mut);

    util::Stopwatch synth_watch;
    ConstraintFilter filter(tm.constraints);
    synth::Synthesizer::Options synth_opts;
    synth_opts.guard = guard_;
    synth::Synthesizer synth(design_.design(), diags_, synth_opts);
    tm.netlist = synth.run(design_.root(), &filter);

    // Extraction-cut PIERs left their register nets undriven; they are
    // directly loadable, so they become pseudo primary inputs (not unknown).
    if (options.expose_piers && !allowlist.empty()) {
        for (synth::NetId n = 0; n < tm.netlist.num_nets(); ++n) {
            if (tm.netlist.is_driven(n)) continue;
            if (allowlist.count(net_base(tm.netlist.net_name(n))) != 0) {
                tm.netlist.mark_input(n);
                ++tm.piers_exposed;
            }
        }
    }

    // "The redundant logic or the dead code at each level of hierarchy is
    // eliminated during synthesis." Both modes get the same optimization
    // effort; what differs is what was extracted — whole module
    // environments (flat) versus composed statement-level slices.
    synth::OptOptions opt_opts;
    opt_opts.guard = guard_;
    (void)synth::optimize(tm.netlist, opt_opts);
    tm.synthesis_seconds = synth_watch.seconds();

    if (guard_ != nullptr && guard_->stopped()) {
        tm.status = util::worst(tm.status, util::PhaseStatus::BudgetExhausted);
        if (tm.status_detail.empty()) {
            tm.status_detail = std::string("transform stopped: ") +
                               util::to_string(guard_->reason()) +
                               " budget exceeded; ATPG view is partial";
        }
    }

    if (options.expose_piers) {
        std::set<std::string> pier_nets;
        if (allowlist.empty()) {
            // Structural analysis picks the exposure candidates.
            for (const auto& p : find_piers(tm.netlist, options.pier)) {
                pier_nets.insert(p.register_net);
            }
        }
        auto stats = synth::expose_registers(
            tm.netlist, [&](const std::string& name) {
                if (!allowlist.empty()) {
                    return allowlist.count(net_base(name)) != 0;
                }
                return pier_nets.count(name) != 0;
            });
        tm.piers_exposed += stats.registers_exposed;
        // Exposure leaves dangling logic; clean it up.
        synth::OptOptions cleanup;
        cleanup.max_iterations = 1;
        (void)synth::optimize(tm.netlist, cleanup);
    }

    tm.mut_gates = gates_under(tm.netlist, tm.mut_prefix);
    tm.surrounding_gates = tm.netlist.logic_gate_count() - tm.mut_gates;

    // Connected interface counts.
    auto fanout = tm.netlist.build_fanout();
    for (synth::NetId n : tm.netlist.inputs()) {
        if (!fanout[n].empty()) ++tm.num_pis;
    }
    for (synth::NetId n : tm.netlist.outputs()) {
        if (tm.netlist.is_driven(n)) ++tm.num_pos;
    }
    span.attr("mut_gates", tm.mut_gates);
    span.attr("surrounding_gates", tm.surrounding_gates);
    span.attr("piers_exposed", tm.piers_exposed);
    return tm;
}

synth::Netlist TransformBuilder::standalone(const InstNode& mut) {
    synth::Synthesizer::Options opts;
    opts.guard = guard_;
    synth::Synthesizer synth(design_.design(), diags_, opts);
    synth::Netlist nl = synth.run(mut);
    synth::OptOptions opt_opts;
    opt_opts.guard = guard_;
    (void)synth::optimize(nl, opt_opts);
    return nl;
}

synth::Netlist TransformBuilder::full_design() {
    synth::Synthesizer::Options opts;
    opts.guard = guard_;
    synth::Synthesizer synth(design_.design(), diags_, opts);
    synth::Netlist nl = synth.run(design_.root());
    synth::OptOptions opt_opts;
    opt_opts.guard = guard_;
    (void)synth::optimize(nl, opt_opts);
    return nl;
}

ModuleCharacteristics
TransformBuilder::characteristics(const InstNode& mut) {
    ModuleCharacteristics c;
    c.name = mut.module->name;
    c.hierarchy_level = mut.level;
    for (const auto& p : mut.module->ports) {
        if (p.dir == rtl::PortDir::Input) {
            c.primary_inputs += p.range.width();
        } else if (p.dir == rtl::PortDir::Output) {
            c.primary_outputs += p.range.width();
        }
    }
    synth::Netlist alone = standalone(mut);
    c.gates_in_module = alone.logic_gate_count();
    atpg::FaultList faults(alone);
    c.stuck_at_faults = faults.size();

    synth::Netlist full = full_design();
    size_t subtree = gates_under(full, net_prefix(mut));
    size_t total = full.logic_gate_count();
    c.gates_in_surrounding = total >= subtree ? total - subtree : 0;
    return c;
}

} // namespace factor::core
