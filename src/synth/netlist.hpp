// Gate-level netlist: the synthesizer's output and the ATPG engine's input.
//
// The cell library is deliberately small (the classic ATPG set): constants,
// BUF/NOT, 2+-input AND/OR/NAND/NOR/XOR/XNOR, a 2:1 MUX and a D flip-flop.
// All state elements are single-clock DFFs; asynchronous behaviour is folded
// into synchronous next-state logic by the synthesizer (see DESIGN.md).
#pragma once

#include "util/diagnostics.hpp"

#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace factor::synth {

using NetId = uint32_t;
using GateId = uint32_t;
inline constexpr NetId kNoNet = std::numeric_limits<NetId>::max();

enum class GateType : uint8_t {
    Const0,
    Const1,
    Buf,  // 1 input
    Not,  // 1 input
    And,  // 2+ inputs
    Or,   // 2+ inputs
    Nand, // 2+ inputs
    Nor,  // 2+ inputs
    Xor,  // exactly 2 inputs
    Xnor, // exactly 2 inputs
    Mux,  // ins = {sel, a, b}: out = sel ? b : a
    Dff,  // ins = {d}; out = q
};

[[nodiscard]] const char* to_string(GateType t);
/// True for Const0/Const1.
[[nodiscard]] bool is_const(GateType t);
/// True when input order does not matter (AND/OR/NAND/NOR/XOR/XNOR).
[[nodiscard]] bool is_symmetric(GateType t);

struct Gate {
    GateType type = GateType::Buf;
    NetId out = kNoNet;
    std::vector<NetId> ins;
};

/// A flattened single-clock gate netlist.
///
/// Nets are pure identifiers; at most one gate drives a net. Nets without a
/// driving gate are primary inputs. Primary outputs name driven nets.
class Netlist {
  public:
    Netlist() = default;
    // The levelization cache below carries a mutex, so the compiler cannot
    // generate these; netlists are passed around by value all over the
    // synthesis pipeline. Copies share the (immutable) cached order.
    Netlist(const Netlist& other);
    Netlist(Netlist&& other) noexcept;
    Netlist& operator=(const Netlist& other);
    Netlist& operator=(Netlist&& other) noexcept;

    // ----- construction -----------------------------------------------------
    /// Create a fresh net. `name` is for reports/debug; may repeat.
    NetId new_net(std::string name);

    /// Add a gate driving a fresh net; returns that net.
    NetId add_gate(GateType type, std::vector<NetId> ins,
                   const std::string& name_hint = "");

    /// Add a gate driving an existing (so far undriven) net.
    void add_gate_driving(NetId out, GateType type, std::vector<NetId> ins);

    /// Lazily-created shared constant nets.
    NetId const0();
    NetId const1();

    /// Prefix applied to auto-generated gate output names (set to the
    /// current instance path during synthesis so gates attribute to their
    /// module for fault scoping and the per-module gate counts).
    void set_name_prefix(std::string prefix) {
        name_prefix_ = std::move(prefix);
    }
    [[nodiscard]] const std::string& name_prefix() const {
        return name_prefix_;
    }

    void mark_input(NetId n);
    void mark_output(NetId n, const std::string& port_name = "");

    // ----- queries ----------------------------------------------------------
    [[nodiscard]] size_t num_nets() const { return net_names_.size(); }
    [[nodiscard]] size_t num_gates() const { return gates_.size(); }
    [[nodiscard]] const Gate& gate(GateId g) const { return gates_[g]; }
    [[nodiscard]] const std::vector<Gate>& gates() const { return gates_; }
    [[nodiscard]] const std::string& net_name(NetId n) const {
        return net_names_[n];
    }
    void set_net_name(NetId n, std::string name) {
        net_names_[n] = std::move(name);
    }

    /// Driving gate of a net, or kNoGate.
    static constexpr GateId kNoGate = std::numeric_limits<GateId>::max();
    [[nodiscard]] GateId driver(NetId n) const { return driver_[n]; }
    [[nodiscard]] bool is_driven(NetId n) const { return driver_[n] != kNoGate; }

    [[nodiscard]] const std::vector<NetId>& inputs() const { return inputs_; }
    [[nodiscard]] const std::vector<NetId>& outputs() const { return outputs_; }
    [[nodiscard]] const std::string& output_name(size_t i) const {
        return output_names_[i];
    }

    /// Logic-gate count excluding constants and buffers (the paper's "gate"
    /// numbers; buffers are wiring artifacts, constants are tie cells).
    [[nodiscard]] size_t logic_gate_count() const;
    /// Number of D flip-flops.
    [[nodiscard]] size_t dff_count() const;

    /// All DFF gate ids.
    [[nodiscard]] std::vector<GateId> dffs() const;

    /// Combinational topological order of gate ids (DFF outputs and primary
    /// inputs are sources; DFFs themselves are excluded). Throws FactorError
    /// on a combinational cycle; the message names the nets on the cycle.
    /// Computed once and cached; mutation invalidates the cache. Safe to
    /// call concurrently on a netlist that is not being mutated.
    [[nodiscard]] std::vector<GateId> levelize() const;

    /// Cached levelization without the copy: the preferred form for
    /// long-lived consumers (fault simulator, PODEM). The returned vector
    /// is immutable and survives the netlist.
    [[nodiscard]] std::shared_ptr<const std::vector<GateId>>
    levelize_shared() const;

    /// Fanout lists: for each net, the gates reading it.
    [[nodiscard]] std::vector<std::vector<GateId>> build_fanout() const;

    /// Validate structural invariants (single driver, inputs undriven,
    /// arities). Throws FactorError with a description on violation.
    void check() const;

    /// Human-readable dump for debugging/tests.
    [[nodiscard]] std::string dump() const;

  private:
    /// Locate one combinational cycle among the gates `order` (a partial
    /// levelization) failed to resolve, as "a -> b -> ... -> a" net names.
    [[nodiscard]] std::string
    describe_cycle(const std::vector<GateId>& order) const;

    /// The uncached Kahn's-algorithm levelization behind levelize().
    [[nodiscard]] std::vector<GateId> compute_levelize() const;
    /// Drop the cached order after a mutation.
    void invalidate_levelize();
    /// Snapshot another netlist's cache (for copy/move).
    [[nodiscard]] std::shared_ptr<const std::vector<GateId>>
    snapshot_levelize_cache() const;

    std::vector<Gate> gates_;
    std::vector<std::string> net_names_;
    std::vector<GateId> driver_;
    std::vector<NetId> inputs_;
    std::vector<NetId> outputs_;
    std::vector<std::string> output_names_;
    NetId const0_ = kNoNet;
    NetId const1_ = kNoNet;
    std::string name_prefix_;

    /// Compute-once levelization cache. The mutex only orders cache
    /// fills/reads; the cached vector itself is immutable once published.
    mutable std::mutex topo_mu_;
    mutable std::shared_ptr<const std::vector<GateId>> topo_cache_;

    friend class Optimizer;
};

} // namespace factor::synth
