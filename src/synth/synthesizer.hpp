// RTL-to-gate synthesis: bit-blasts an elaborated design (or any subtree /
// filtered slice of it) into a flat gate Netlist.
//
// This plays the role of the commercial synthesis tool in the paper's flow:
// FACTOR writes constraint slices, and "the redundant logic or dead code at
// each level of hierarchy is eliminated during synthesis" — here by the
// companion Optimizer.
//
// Modeling decisions (documented in DESIGN.md):
//  * Single test clock: every edge-triggered always block becomes DFFs on an
//    implicit global clock; asynchronous set/reset terms fold into the
//    synchronous next-state expression.
//  * Nets that remain undriven inside the cone (constraint slices cut them)
//    are not primary inputs — the ATPG engine treats them as unknown (X),
//    matching the paper's "no path from the chip interface" semantics.
//    Only the root instance's ports become primary inputs/outputs.
//  * Unassigned paths through combinational always blocks would infer
//    latches; the synthesizer warns and treats the value as unknown.
#pragma once

#include "elab/elaborator.hpp"
#include "rtl/ast.hpp"
#include "synth/netlist.hpp"
#include "util/diagnostics.hpp"
#include "util/run_guard.hpp"

#include <map>
#include <string>
#include <vector>

namespace factor::synth {

/// Selects which RTL items take part in synthesis. The FACTOR extractor
/// provides a filter that keeps only the marked constraint slice; the
/// default includes everything.
class ItemFilter {
  public:
    virtual ~ItemFilter() = default;
    [[nodiscard]] virtual bool include_assign(const elab::InstNode& node,
                                              const rtl::ContAssign& a) const {
        (void)node;
        (void)a;
        return true;
    }
    /// Procedural assignment statements inside always blocks.
    [[nodiscard]] virtual bool include_stmt(const elab::InstNode& node,
                                            const rtl::Stmt& s) const {
        (void)node;
        (void)s;
        return true;
    }
    /// Whole child instance subtrees.
    [[nodiscard]] virtual bool include_instance(const elab::InstNode& child) const {
        (void)child;
        return true;
    }
};

class Synthesizer {
  public:
    struct Options {
        /// Prefix flattened net names with the instance path.
        bool hierarchical_names = true;
        /// Upper bound on for-loop unrolling before an error is reported.
        uint32_t max_loop_iterations = 4096;
        /// Optional run guard: checked per wired instance (work quota /
        /// wall clock) and fed the running gate count (gate cap). When the
        /// guard stops, synthesis wires no further instances, reports a
        /// warning diagnostic and returns the partial netlist; the caller
        /// reads the guard's reason() to classify the result.
        util::RunGuard* guard = nullptr;
    };

    Synthesizer(const rtl::Design& design, util::DiagEngine& diags)
        : Synthesizer(design, diags, Options()) {}
    Synthesizer(const rtl::Design& design, util::DiagEngine& diags,
                Options options);

    /// Synthesize the hierarchy rooted at `root`. The root's ports become
    /// the netlist's primary inputs/outputs. `filter` (optional) restricts
    /// the RTL items included.
    [[nodiscard]] Netlist run(const elab::InstNode& root,
                              const ItemFilter* filter = nullptr);

  private:
    using Bits = std::vector<NetId>;

    struct InstCtx {
        const elab::InstNode* node = nullptr;
        std::string prefix;
        // Declared nets per signal, LSB first.
        std::map<std::string, Bits> nets;
        // Declared LSB offset per signal (range [15:8] => 8).
        std::map<std::string, int32_t> lsb;
    };

    /// Per-always-block symbolic execution state.
    struct ProcState {
        InstCtx* ctx = nullptr;
        const rtl::AlwaysBlock* block = nullptr;
        // Values bound so far for the block's target signals; kNoNet bits
        // mean "not yet assigned on this path".
        std::map<std::string, Bits> bound;
        // Compile-time loop variables.
        std::map<std::string, util::BitVec> loop_env;
    };

    void declare_signals(InstCtx& ctx);
    void wire_instance(InstCtx& ctx, const ItemFilter& filter);
    void wire_child_connections(InstCtx& parent, InstCtx& child,
                                const rtl::Instance& inst);

    void synth_cont_assign(InstCtx& ctx, const rtl::ContAssign& a);
    void synth_always(InstCtx& ctx, const rtl::AlwaysBlock& b,
                      const ItemFilter& filter);
    void exec_stmt(ProcState& st, const rtl::Stmt& s, const ItemFilter& filter);
    void exec_assign(ProcState& st, const rtl::Stmt& s);
    void merge_branches(ProcState& st, NetId cond,
                        std::map<std::string, Bits>&& then_bound,
                        std::map<std::string, Bits>&& else_bound);

    // Expression evaluation.
    [[nodiscard]] Bits eval(InstCtx& ctx, ProcState* st, const rtl::Expr& e);
    [[nodiscard]] Bits eval_binary(InstCtx& ctx, ProcState* st,
                                   const rtl::Expr& e);
    [[nodiscard]] Bits read_signal(InstCtx& ctx, ProcState* st,
                                   const std::string& name,
                                   const util::SourceLoc& loc);

    /// Assign `rhs` to an lvalue: continuous (drives declared nets directly)
    /// when st == nullptr, procedural (updates st->bound) otherwise.
    void assign_lvalue(InstCtx& ctx, ProcState* st, const rtl::Expr& lhs,
                       Bits rhs);

    // Gate-building helpers.
    [[nodiscard]] NetId mk_not(NetId a);
    [[nodiscard]] NetId mk_and(NetId a, NetId b);
    [[nodiscard]] NetId mk_or(NetId a, NetId b);
    [[nodiscard]] NetId mk_xor(NetId a, NetId b);
    [[nodiscard]] NetId mk_xnor(NetId a, NetId b);
    [[nodiscard]] NetId mk_mux(NetId sel, NetId a0, NetId a1);
    [[nodiscard]] NetId mk_tree(GateType type, const Bits& ins);
    [[nodiscard]] NetId to_bool(const Bits& b);
    [[nodiscard]] NetId eq_bits(const Bits& a, const Bits& b);
    [[nodiscard]] NetId lt_bits(const Bits& a, const Bits& b);
    [[nodiscard]] Bits add_bits(const Bits& a, const Bits& b, NetId carry_in);
    [[nodiscard]] Bits mul_bits(const Bits& a, const Bits& b);
    [[nodiscard]] Bits shift_bits(const Bits& a, const Bits& amount, bool left);
    [[nodiscard]] Bits const_bits(const util::BitVec& v);
    [[nodiscard]] Bits resize(Bits b, size_t width);
    [[nodiscard]] Bits mux_bits(NetId sel, const Bits& a0, const Bits& a1);

    void error(const util::SourceLoc& loc, const std::string& msg);

    const rtl::Design& design_;
    util::DiagEngine& diags_;
    Options options_;

    Netlist* nl_ = nullptr; // valid during run()
    std::vector<std::unique_ptr<InstCtx>> contexts_;
    bool warned_multiclock_ = false;
    std::string clock_name_;
};

} // namespace factor::synth
