#include "synth/synthesizer.hpp"

#include "obs/inject.hpp"
#include "obs/obs.hpp"
#include "rtl/const_eval.hpp"
#include "rtl/printer.hpp"

#include <algorithm>
#include <cassert>

namespace factor::synth {

using rtl::ExprKind;
using util::BitVec;

Synthesizer::Synthesizer(const rtl::Design& design, util::DiagEngine& diags,
                         Options options)
    : design_(design), diags_(diags), options_(options) {}

void Synthesizer::error(const util::SourceLoc& loc, const std::string& msg) {
    diags_.error(loc, msg);
}

// --------------------------------------------------------------------- gates

namespace {

/// Constant-ness of a net for build-time folding.
enum class CV { Zero, One, Other };

CV const_value(const Netlist& nl, NetId n) {
    GateId d = nl.driver(n);
    if (d == Netlist::kNoGate) return CV::Other;
    GateType t = nl.gate(d).type;
    if (t == GateType::Const0) return CV::Zero;
    if (t == GateType::Const1) return CV::One;
    return CV::Other;
}

} // namespace

NetId Synthesizer::mk_not(NetId a) {
    switch (const_value(*nl_, a)) {
    case CV::Zero: return nl_->const1();
    case CV::One: return nl_->const0();
    case CV::Other: break;
    }
    return nl_->add_gate(GateType::Not, {a});
}

NetId Synthesizer::mk_and(NetId a, NetId b) {
    CV ca = const_value(*nl_, a);
    CV cb = const_value(*nl_, b);
    if (ca == CV::Zero || cb == CV::Zero) return nl_->const0();
    if (ca == CV::One) return b;
    if (cb == CV::One) return a;
    if (a == b) return a;
    return nl_->add_gate(GateType::And, {a, b});
}

NetId Synthesizer::mk_or(NetId a, NetId b) {
    CV ca = const_value(*nl_, a);
    CV cb = const_value(*nl_, b);
    if (ca == CV::One || cb == CV::One) return nl_->const1();
    if (ca == CV::Zero) return b;
    if (cb == CV::Zero) return a;
    if (a == b) return a;
    return nl_->add_gate(GateType::Or, {a, b});
}

NetId Synthesizer::mk_xor(NetId a, NetId b) {
    CV ca = const_value(*nl_, a);
    CV cb = const_value(*nl_, b);
    if (a == b) return nl_->const0();
    if (ca == CV::Zero) return b;
    if (cb == CV::Zero) return a;
    if (ca == CV::One) return mk_not(b);
    if (cb == CV::One) return mk_not(a);
    return nl_->add_gate(GateType::Xor, {a, b});
}

NetId Synthesizer::mk_xnor(NetId a, NetId b) { return mk_not(mk_xor(a, b)); }

NetId Synthesizer::mk_mux(NetId sel, NetId a0, NetId a1) {
    CV cs = const_value(*nl_, sel);
    if (cs == CV::Zero) return a0;
    if (cs == CV::One) return a1;
    if (a0 == a1) return a0;
    CV c0 = const_value(*nl_, a0);
    CV c1 = const_value(*nl_, a1);
    if (c0 == CV::Zero && c1 == CV::One) return sel;
    if (c0 == CV::One && c1 == CV::Zero) return mk_not(sel);
    if (c0 == CV::Zero) return mk_and(sel, a1);
    if (c1 == CV::Zero) return mk_and(mk_not(sel), a0);
    if (c0 == CV::One) return mk_or(mk_not(sel), a1);
    if (c1 == CV::One) return mk_or(sel, a0);
    return nl_->add_gate(GateType::Mux, {sel, a0, a1});
}

NetId Synthesizer::mk_tree(GateType type, const Bits& ins) {
    assert(!ins.empty());
    if (ins.size() == 1) return ins[0];
    // Balanced reduction using the 2-input builders (which fold constants).
    Bits cur = ins;
    auto combine = [&](NetId a, NetId b) {
        switch (type) {
        case GateType::And: return mk_and(a, b);
        case GateType::Or: return mk_or(a, b);
        case GateType::Xor: return mk_xor(a, b);
        default: throw util::FactorError("mk_tree: unsupported gate type");
        }
    };
    while (cur.size() > 1) {
        Bits next;
        for (size_t i = 0; i + 1 < cur.size(); i += 2) {
            next.push_back(combine(cur[i], cur[i + 1]));
        }
        if (cur.size() % 2 == 1) next.push_back(cur.back());
        cur = std::move(next);
    }
    return cur[0];
}

NetId Synthesizer::to_bool(const Bits& b) {
    assert(!b.empty());
    return b.size() == 1 ? b[0] : mk_tree(GateType::Or, b);
}

NetId Synthesizer::eq_bits(const Bits& a, const Bits& b) {
    size_t w = std::max(a.size(), b.size());
    Bits ea = resize(a, w);
    Bits eb = resize(b, w);
    Bits terms;
    for (size_t i = 0; i < w; ++i) terms.push_back(mk_xnor(ea[i], eb[i]));
    return mk_tree(GateType::And, terms);
}

Synthesizer::Bits Synthesizer::add_bits(const Bits& a, const Bits& b,
                                        NetId carry_in) {
    size_t w = std::max(a.size(), b.size());
    Bits ea = resize(a, w);
    Bits eb = resize(b, w);
    Bits sum(w);
    NetId carry = carry_in;
    for (size_t i = 0; i < w; ++i) {
        NetId axb = mk_xor(ea[i], eb[i]);
        sum[i] = mk_xor(axb, carry);
        carry = mk_or(mk_and(ea[i], eb[i]), mk_and(carry, axb));
    }
    return sum;
}

NetId Synthesizer::lt_bits(const Bits& a, const Bits& b) {
    // Unsigned a < b  <=>  borrow out of (a - b). Compute a + ~b + 1 and
    // invert the final carry.
    size_t w = std::max(a.size(), b.size());
    Bits ea = resize(a, w);
    Bits eb = resize(b, w);
    NetId carry = nl_->const1();
    for (size_t i = 0; i < w; ++i) {
        NetId nb = mk_not(eb[i]);
        NetId axb = mk_xor(ea[i], nb);
        carry = mk_or(mk_and(ea[i], nb), mk_and(carry, axb));
    }
    return mk_not(carry);
}

Synthesizer::Bits Synthesizer::mul_bits(const Bits& a, const Bits& b) {
    size_t w = std::max(a.size(), b.size());
    Bits ea = resize(a, w);
    Bits eb = resize(b, w);
    Bits acc(w, nl_->const0());
    for (size_t i = 0; i < w; ++i) {
        // partial = (a << i) masked by b[i]
        Bits partial(w, nl_->const0());
        for (size_t j = i; j < w; ++j) {
            partial[j] = mk_and(ea[j - i], eb[i]);
        }
        acc = add_bits(acc, partial, nl_->const0());
    }
    return acc;
}

Synthesizer::Bits Synthesizer::shift_bits(const Bits& a, const Bits& amount,
                                          bool left) {
    Bits cur = a;
    size_t w = a.size();
    // Barrel shifter over the meaningful amount bits.
    for (size_t j = 0; j < amount.size(); ++j) {
        size_t dist = size_t{1} << j;
        if (j >= 16 || dist >= 2 * w) {
            // Any set high bit shifts everything out.
            Bits zeroed(w, nl_->const0());
            cur = mux_bits(amount[j], cur, zeroed);
            continue;
        }
        Bits shifted(w, nl_->const0());
        for (size_t i = 0; i < w; ++i) {
            if (left) {
                if (i >= dist) shifted[i] = cur[i - dist];
            } else {
                if (i + dist < w) shifted[i] = cur[i + dist];
            }
        }
        cur = mux_bits(amount[j], cur, shifted);
    }
    return cur;
}

Synthesizer::Bits Synthesizer::const_bits(const BitVec& v) {
    Bits out(v.width());
    for (uint32_t i = 0; i < v.width(); ++i) {
        out[i] = v.bit(i) ? nl_->const1() : nl_->const0();
    }
    return out;
}

Synthesizer::Bits Synthesizer::resize(Bits b, size_t width) {
    while (b.size() < width) b.push_back(nl_->const0());
    b.resize(width);
    return b;
}

Synthesizer::Bits Synthesizer::mux_bits(NetId sel, const Bits& a0,
                                        const Bits& a1) {
    size_t w = std::max(a0.size(), a1.size());
    Bits e0 = resize(a0, w);
    Bits e1 = resize(a1, w);
    Bits out(w);
    for (size_t i = 0; i < w; ++i) out[i] = mk_mux(sel, e0[i], e1[i]);
    return out;
}

// ------------------------------------------------------------------ run

Netlist Synthesizer::run(const elab::InstNode& root, const ItemFilter* filter) {
    obs::Span span("synth.run");
    span.attr("root", root.path());
    span.attr("filtered", filter != nullptr);
    Netlist nl;
    nl_ = &nl;
    contexts_.clear();
    clock_name_.clear();
    warned_multiclock_ = false;

    ItemFilter default_filter;
    const ItemFilter& f = filter != nullptr ? *filter : default_filter;

    // Pass 1: declare all signals of every included instance.
    struct Pending {
        const elab::InstNode* node;
        InstCtx* ctx;
    };
    std::vector<Pending> order;
    std::map<const elab::InstNode*, InstCtx*> ctx_of;

    auto declare_rec = [&](auto&& self, const elab::InstNode& node,
                           const std::string& prefix) -> void {
        auto ctx = std::make_unique<InstCtx>();
        ctx->node = &node;
        ctx->prefix = prefix;
        declare_signals(*ctx);
        ctx_of[&node] = ctx.get();
        order.push_back(Pending{&node, ctx.get()});
        contexts_.push_back(std::move(ctx));
        for (const auto& child : node.children) {
            if (!f.include_instance(*child)) continue;
            std::string child_prefix =
                options_.hierarchical_names
                    ? prefix + child->inst_name + "."
                    : prefix;
            self(self, *child, child_prefix);
        }
    };
    declare_rec(declare_rec, root, "");

    // Root ports become the netlist interface.
    InstCtx& root_ctx = *ctx_of.at(&root);
    for (const auto& p : root.module->ports) {
        Bits& bits = root_ctx.nets.at(p.name);
        if (p.dir == rtl::PortDir::Input) {
            for (NetId b : bits) nl.mark_input(b);
        }
    }

    // Pass 2: wire everything. A guard stop leaves the remaining instances
    // unwired: their nets stay undriven, which the downstream ATPG engine
    // already treats as unknown (X) — a partial netlist, not a broken one.
    for (const auto& pending : order) {
        util::RunGuard* guard = options_.guard;
        if (guard != nullptr &&
            (!guard->tick() || !guard->note_gates(nl.num_gates()))) {
            diags_.warning({}, std::string("synthesis stopped (") +
                                   util::to_string(guard->reason()) +
                                   " budget exceeded); netlist is partial");
            obs::counter("synth.guard_stops").add(1);
            break;
        }
        obs::inject_point("synth.instance");
        wire_instance(*pending.ctx, f);
        for (const auto& child : pending.node->children) {
            auto it = ctx_of.find(child.get());
            if (it == ctx_of.end()) continue; // filtered out
            wire_child_connections(*pending.ctx, *it->second, *child->inst);
        }
    }

    // Mark outputs last (bit order LSB..MSB with indexed names).
    for (const auto& p : root.module->ports) {
        if (p.dir != rtl::PortDir::Output) continue;
        Bits& bits = root_ctx.nets.at(p.name);
        int32_t lsb = root_ctx.lsb.at(p.name);
        for (size_t i = 0; i < bits.size(); ++i) {
            std::string pname =
                bits.size() == 1
                    ? p.name
                    : p.name + "[" + std::to_string(lsb + static_cast<int32_t>(i)) + "]";
            nl.mark_output(bits[i], pname);
        }
    }

    nl_ = nullptr;
    contexts_.clear();
    obs::counter("synth.runs").add(1);
    obs::counter("synth.gates_built").add(nl.num_gates());
    span.attr("gates", nl.num_gates());
    span.attr("instances", order.size());
    return nl;
}

void Synthesizer::declare_signals(InstCtx& ctx) {
    auto declare = [&](const std::string& name, const rtl::Range& r) {
        if (ctx.nets.count(name) != 0) return;
        uint32_t w = r.width();
        int32_t lsb = r.valid() ? r.lsb : 0;
        Bits bits(w);
        for (uint32_t i = 0; i < w; ++i) {
            std::string n = ctx.prefix + name;
            if (w > 1) n += "[" + std::to_string(lsb + static_cast<int32_t>(i)) + "]";
            bits[i] = nl_->new_net(std::move(n));
        }
        ctx.nets[name] = std::move(bits);
        ctx.lsb[name] = lsb;
    };
    for (const auto& p : ctx.node->module->ports) declare(p.name, p.range);
    for (const auto& d : ctx.node->module->nets) declare(d.name, d.range);
}

void Synthesizer::wire_instance(InstCtx& ctx, const ItemFilter& filter) {
    nl_->set_name_prefix(ctx.prefix);
    const rtl::Module& m = *ctx.node->module;
    for (const auto& a : m.assigns) {
        if (!filter.include_assign(*ctx.node, a)) continue;
        synth_cont_assign(ctx, a);
    }
    for (const auto& b : m.always_blocks) {
        synth_always(ctx, b, filter);
    }
}

void Synthesizer::wire_child_connections(InstCtx& parent, InstCtx& child,
                                         const rtl::Instance& inst) {
    nl_->set_name_prefix(parent.prefix);
    const rtl::Module& child_mod = *child.node->module;
    bool positional = !inst.conns.empty() && inst.conns.front().port.empty();
    for (size_t i = 0; i < inst.conns.size(); ++i) {
        const rtl::PortConn& c = inst.conns[i];
        const rtl::Port* port = nullptr;
        if (positional) {
            if (i >= child_mod.ports.size()) break;
            port = &child_mod.ports[i];
        } else {
            port = child_mod.find_port(c.port);
        }
        if (port == nullptr || c.expr == nullptr) continue;
        Bits& port_bits = child.nets.at(port->name);
        if (port->dir == rtl::PortDir::Input) {
            Bits value = eval(parent, nullptr, *c.expr);
            value = resize(std::move(value), port_bits.size());
            for (size_t b = 0; b < port_bits.size(); ++b) {
                if (!nl_->is_driven(port_bits[b])) {
                    nl_->add_gate_driving(port_bits[b], GateType::Buf,
                                          {value[b]});
                }
            }
        } else if (port->dir == rtl::PortDir::Output) {
            assign_lvalue(parent, nullptr, *c.expr, port_bits);
        } else {
            error(inst.loc, "inout ports are not supported (instance '" +
                                inst.inst_name + "')");
        }
    }
}

void Synthesizer::synth_cont_assign(InstCtx& ctx, const rtl::ContAssign& a) {
    Bits rhs = eval(ctx, nullptr, *a.rhs);
    assign_lvalue(ctx, nullptr, *a.lhs, std::move(rhs));
}

void Synthesizer::synth_always(InstCtx& ctx, const rtl::AlwaysBlock& b,
                               const ItemFilter& filter) {
    if (!b.body) return;

    ProcState st;
    st.ctx = &ctx;
    st.block = &b;
    exec_stmt(st, *b.body, filter);

    if (!b.is_sequential()) {
        // Combinational: drive the declared nets; unassigned paths would be
        // latches — warn and leave the bit undriven (unknown to the ATPG).
        for (auto& [name, bits] : st.bound) {
            Bits& decl = ctx.nets.at(name);
            bool latch_warned = false;
            for (size_t i = 0; i < bits.size() && i < decl.size(); ++i) {
                if (bits[i] == kNoNet) {
                    if (!latch_warned) {
                        diags_.warning(b.loc,
                                       "signal '" + ctx.prefix + name +
                                           "' is not assigned on all paths "
                                           "(latch); treated as unknown");
                        latch_warned = true;
                    }
                    continue;
                }
                if (nl_->is_driven(decl[i])) {
                    diags_.warning(b.loc, "multiple drivers on '" +
                                              ctx.prefix + name +
                                              "'; keeping the first");
                    continue;
                }
                nl_->add_gate_driving(decl[i], GateType::Buf, {bits[i]});
            }
        }
        return;
    }

    // Sequential: identify the clock (edge signals not read by the body);
    // edge signals that are read become part of the synchronous next-state
    // function (asynchronous resets folded to synchronous — see DESIGN.md).
    std::vector<std::string> read;
    {
        std::vector<std::string> tmp;
        // Conservative read set: every identifier in the block body.
        struct Walk {
            static void stmt(const rtl::Stmt& s, std::vector<std::string>& out) {
                if (s.lhs) {
                    for (const auto& op : s.lhs->ops) rtl::collect_idents(*op, out);
                }
                if (s.rhs) rtl::collect_idents(*s.rhs, out);
                if (s.cond) rtl::collect_idents(*s.cond, out);
                if (s.then_s) stmt(*s.then_s, out);
                if (s.else_s) stmt(*s.else_s, out);
                if (s.init) stmt(*s.init, out);
                if (s.step) stmt(*s.step, out);
                if (s.body) stmt(*s.body, out);
                for (const auto& item : s.items) {
                    for (const auto& l : item.labels) rtl::collect_idents(*l, out);
                    if (item.body) stmt(*item.body, out);
                }
                for (const auto& sub : s.stmts) {
                    if (sub) stmt(*sub, out);
                }
            }
        };
        Walk::stmt(*b.body, tmp);
        read = std::move(tmp);
    }
    for (const auto& s : b.sens) {
        if (s.edge == rtl::EdgeKind::Level) continue;
        bool is_read =
            std::find(read.begin(), read.end(), s.signal) != read.end();
        if (is_read) continue; // folded reset
        if (clock_name_.empty()) {
            clock_name_ = s.signal;
        } else if (clock_name_ != s.signal && !warned_multiclock_) {
            diags_.warning(b.loc, "multiple clocks ('" + clock_name_ +
                                      "', '" + s.signal +
                                      "'); modeled as one test clock");
            warned_multiclock_ = true;
        }
    }

    for (auto& [name, bits] : st.bound) {
        Bits& decl = ctx.nets.at(name);
        for (size_t i = 0; i < bits.size() && i < decl.size(); ++i) {
            NetId d = bits[i] == kNoNet ? decl[i] : bits[i];
            if (nl_->is_driven(decl[i])) {
                diags_.warning(b.loc, "multiple drivers on register '" +
                                          ctx.prefix + name +
                                          "'; keeping the first");
                continue;
            }
            nl_->add_gate_driving(decl[i], GateType::Dff, {d});
        }
    }
}

void Synthesizer::exec_stmt(ProcState& st, const rtl::Stmt& s,
                            const ItemFilter& filter) {
    switch (s.kind) {
    case rtl::StmtKind::Assign: {
        if (!filter.include_stmt(*st.ctx->node, s)) return;
        // Loop-variable assignment is compile time, handled in For.
        if (s.lhs->kind == ExprKind::Ident &&
            st.loop_env.count(s.lhs->ident) != 0) {
            auto v = rtl::const_eval(*s.rhs, st.loop_env);
            if (!v) {
                error(s.loc, "loop variable '" + s.lhs->ident +
                                 "' assigned a non-constant value");
                return;
            }
            st.loop_env[s.lhs->ident] = *v;
            return;
        }
        exec_assign(st, s);
        return;
    }
    case rtl::StmtKind::Block: {
        for (const auto& sub : s.stmts) {
            if (sub) exec_stmt(st, *sub, filter);
        }
        return;
    }
    case rtl::StmtKind::If: {
        // A compile-time condition (loop-var dependent) selects statically.
        if (auto cv = rtl::const_eval(*s.cond, st.loop_env);
            cv && rtl::is_constant_expr(*s.cond)) {
            if (!cv->is_zero()) {
                if (s.then_s) exec_stmt(st, *s.then_s, filter);
            } else if (s.else_s) {
                exec_stmt(st, *s.else_s, filter);
            }
            return;
        }
        NetId cond = to_bool(eval(*st.ctx, &st, *s.cond));
        auto base = st.bound;
        if (s.then_s) exec_stmt(st, *s.then_s, filter);
        auto then_bound = std::move(st.bound);
        st.bound = base;
        if (s.else_s) exec_stmt(st, *s.else_s, filter);
        auto else_bound = std::move(st.bound);
        st.bound = std::move(base);
        merge_branches(st, cond, std::move(then_bound), std::move(else_bound));
        return;
    }
    case rtl::StmtKind::Case: {
        Bits subject = eval(*st.ctx, &st, *s.cond);
        // Build a priority chain: first matching item wins; default catches
        // the rest regardless of its position.
        const rtl::CaseItem* default_item = nullptr;
        std::vector<const rtl::CaseItem*> labeled;
        for (const auto& item : s.items) {
            if (item.labels.empty()) {
                default_item = &item;
            } else {
                labeled.push_back(&item);
            }
        }
        // Recursive lambda building nested if/else over the labeled items.
        auto chain = [&](auto&& self, size_t idx) -> void {
            if (idx >= labeled.size()) {
                if (default_item != nullptr && default_item->body) {
                    exec_stmt(st, *default_item->body, filter);
                }
                return;
            }
            const rtl::CaseItem& item = *labeled[idx];
            Bits match_terms;
            for (const auto& l : item.labels) {
                Bits lb = eval(*st.ctx, &st, *l);
                match_terms.push_back(eq_bits(subject, lb));
            }
            NetId cond = mk_tree(GateType::Or, match_terms);
            auto base = st.bound;
            if (item.body) exec_stmt(st, *item.body, filter);
            auto then_bound = std::move(st.bound);
            st.bound = base;
            self(self, idx + 1);
            auto else_bound = std::move(st.bound);
            st.bound = std::move(base);
            merge_branches(st, cond, std::move(then_bound),
                           std::move(else_bound));
        };
        chain(chain, 0);
        return;
    }
    case rtl::StmtKind::For: {
        if (!s.init || s.init->kind != rtl::StmtKind::Assign ||
            s.init->lhs->kind != ExprKind::Ident) {
            error(s.loc, "for-loop initializer must assign a loop variable");
            return;
        }
        const std::string var = s.init->lhs->ident;
        auto v0 = rtl::const_eval(*s.init->rhs, st.loop_env);
        if (!v0) {
            error(s.loc, "for-loop initializer is not constant");
            return;
        }
        st.loop_env[var] = *v0;
        uint32_t iters = 0;
        while (true) {
            auto cv = s.cond ? rtl::const_eval(*s.cond, st.loop_env)
                             : std::nullopt;
            if (!cv) {
                error(s.loc, "for-loop condition is not compile-time constant");
                break;
            }
            if (cv->is_zero()) break;
            if (++iters > options_.max_loop_iterations) {
                error(s.loc, "for-loop exceeds unroll limit");
                break;
            }
            if (s.body) exec_stmt(st, *s.body, filter);
            if (!s.step || s.step->kind != rtl::StmtKind::Assign ||
                s.step->lhs->kind != ExprKind::Ident ||
                s.step->lhs->ident != var) {
                error(s.loc, "for-loop step must update the loop variable");
                break;
            }
            auto vn = rtl::const_eval(*s.step->rhs, st.loop_env);
            if (!vn) {
                error(s.loc, "for-loop step is not constant");
                break;
            }
            st.loop_env[var] = *vn;
        }
        st.loop_env.erase(var);
        return;
    }
    case rtl::StmtKind::Null:
        return;
    }
}

void Synthesizer::exec_assign(ProcState& st, const rtl::Stmt& s) {
    Bits rhs = eval(*st.ctx, &st, *s.rhs);
    assign_lvalue(*st.ctx, &st, *s.lhs, std::move(rhs));
}

void Synthesizer::merge_branches(ProcState& st, NetId cond,
                                 std::map<std::string, Bits>&& then_bound,
                                 std::map<std::string, Bits>&& else_bound) {
    std::vector<std::string> keys;
    for (const auto& [k, v] : then_bound) keys.push_back(k);
    for (const auto& [k, v] : else_bound) keys.push_back(k);
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

    for (const auto& k : keys) {
        const Bits* tb = then_bound.count(k) ? &then_bound.at(k) : nullptr;
        const Bits* eb = else_bound.count(k) ? &else_bound.at(k) : nullptr;
        Bits base;
        if (st.bound.count(k)) {
            base = st.bound.at(k);
        } else {
            base.assign(st.ctx->nets.at(k).size(), kNoNet);
        }
        size_t w = base.size();
        Bits merged(w);
        const Bits& decl = st.ctx->nets.at(k);
        const bool sequential =
            st.block != nullptr && st.block->is_sequential();
        for (size_t i = 0; i < w; ++i) {
            NetId t = tb != nullptr && i < tb->size() ? (*tb)[i] : base[i];
            NetId e = eb != nullptr && i < eb->size() ? (*eb)[i] : base[i];
            if (t == e) {
                merged[i] = t;
                continue;
            }
            if (t == kNoNet || e == kNoNet) {
                if (!sequential) {
                    // A combinational path leaves the bit unassigned: that
                    // is a latch; keep it "unassigned" so synth_always can
                    // warn and treat the value as unknown.
                    merged[i] = kNoNet;
                    continue;
                }
                // Sequential hold semantics: the unassigned side keeps the
                // register value (its declared net is the DFF output).
            }
            NetId tv = t == kNoNet ? decl[i] : t;
            NetId ev = e == kNoNet ? decl[i] : e;
            merged[i] = mk_mux(cond, ev, tv);
        }
        st.bound[k] = std::move(merged);
    }
}

Synthesizer::Bits Synthesizer::read_signal(InstCtx& ctx, ProcState* st,
                                           const std::string& name,
                                           const util::SourceLoc& loc) {
    // Combinational (blocking-style) blocks read values assigned earlier in
    // the block. Sequential blocks follow nonblocking semantics: every read
    // sees the pre-clock register value (the declared net, i.e. the DFF
    // output), never this cycle's pending update.
    const bool sequential =
        st != nullptr && st->block != nullptr && st->block->is_sequential();
    if (st != nullptr && !sequential) {
        auto it = st->bound.find(name);
        if (it != st->bound.end()) {
            Bits out = it->second;
            const Bits& decl = ctx.nets.at(name);
            for (size_t i = 0; i < out.size(); ++i) {
                if (out[i] == kNoNet) out[i] = decl[i];
            }
            return out;
        }
    }
    auto it = ctx.nets.find(name);
    if (it == ctx.nets.end()) {
        error(loc, "reference to unknown signal '" + name + "' in module '" +
                       ctx.node->module->name + "'");
        return {nl_->const0()};
    }
    return it->second;
}

void Synthesizer::assign_lvalue(InstCtx& ctx, ProcState* st,
                                const rtl::Expr& lhs, Bits rhs) {
    auto drive_decl_bit = [&](NetId decl_bit, NetId value) {
        if (nl_->is_driven(decl_bit)) {
            diags_.warning(lhs.loc, "multiple drivers on '" +
                                        nl_->net_name(decl_bit) +
                                        "'; keeping the first");
            return;
        }
        nl_->add_gate_driving(decl_bit, GateType::Buf, {value});
    };

    // Procedural current value of the full signal, for partial updates.
    auto current_bits = [&](const std::string& name) -> Bits {
        const Bits& decl = ctx.nets.at(name);
        if (st != nullptr) {
            auto it = st->bound.find(name);
            if (it != st->bound.end()) return it->second;
        }
        return Bits(decl.size(), kNoNet);
    };

    switch (lhs.kind) {
    case ExprKind::Ident: {
        auto it = ctx.nets.find(lhs.ident);
        if (it == ctx.nets.end()) {
            error(lhs.loc, "assignment to unknown signal '" + lhs.ident + "'");
            return;
        }
        Bits value = resize(std::move(rhs), it->second.size());
        if (st != nullptr) {
            st->bound[lhs.ident] = std::move(value);
        } else {
            for (size_t i = 0; i < it->second.size(); ++i) {
                drive_decl_bit(it->second[i], value[i]);
            }
        }
        return;
    }
    case ExprKind::PartSelect: {
        auto it = ctx.nets.find(lhs.ident);
        if (it == ctx.nets.end() || lhs.msb < 0) {
            error(lhs.loc, "bad part-select assignment target");
            return;
        }
        int32_t lsb_off = ctx.lsb.at(lhs.ident);
        int32_t lo = lhs.lsb - lsb_off;
        int32_t hi = lhs.msb - lsb_off;
        if (lo < 0 || hi >= static_cast<int32_t>(it->second.size())) {
            error(lhs.loc, "part-select out of declared range on '" +
                               lhs.ident + "'");
            return;
        }
        Bits value = resize(std::move(rhs), static_cast<size_t>(hi - lo + 1));
        if (st != nullptr) {
            Bits cur = current_bits(lhs.ident);
            for (int32_t i = lo; i <= hi; ++i) {
                cur[static_cast<size_t>(i)] = value[static_cast<size_t>(i - lo)];
            }
            st->bound[lhs.ident] = std::move(cur);
        } else {
            for (int32_t i = lo; i <= hi; ++i) {
                drive_decl_bit(it->second[static_cast<size_t>(i)],
                               value[static_cast<size_t>(i - lo)]);
            }
        }
        return;
    }
    case ExprKind::BitSelect: {
        auto it = ctx.nets.find(lhs.ident);
        if (it == ctx.nets.end()) {
            error(lhs.loc, "bad bit-select assignment target");
            return;
        }
        int32_t lsb_off = ctx.lsb.at(lhs.ident);
        // Constant index?
        rtl::ConstEnv env = st != nullptr ? st->loop_env : rtl::ConstEnv{};
        if (auto idx = rtl::const_eval_int(*lhs.ops[0], env)) {
            int32_t i = *idx - lsb_off;
            if (i < 0 || i >= static_cast<int32_t>(it->second.size())) {
                error(lhs.loc, "bit-select out of range on '" + lhs.ident + "'");
                return;
            }
            Bits value = resize(std::move(rhs), 1);
            if (st != nullptr) {
                Bits cur = current_bits(lhs.ident);
                cur[static_cast<size_t>(i)] = value[0];
                st->bound[lhs.ident] = std::move(cur);
            } else {
                drive_decl_bit(it->second[static_cast<size_t>(i)], value[0]);
            }
            return;
        }
        // Variable index: procedural only — every bit muxes between its
        // current value and the RHS under an index-match condition.
        if (st == nullptr) {
            error(lhs.loc, "variable bit-select is not allowed in a "
                           "continuous assignment");
            return;
        }
        Bits idx_bits = eval(ctx, st, *lhs.ops[0]);
        Bits value = resize(std::move(rhs), 1);
        Bits cur = current_bits(lhs.ident);
        const Bits& decl = it->second;
        for (size_t i = 0; i < cur.size(); ++i) {
            BitVec pos(std::max<uint32_t>(
                           1, static_cast<uint32_t>(idx_bits.size())),
                       static_cast<uint64_t>(static_cast<int64_t>(i) + lsb_off));
            NetId match = eq_bits(idx_bits, const_bits(pos));
            NetId old = cur[i] == kNoNet ? decl[i] : cur[i];
            cur[i] = mk_mux(match, old, value[0]);
        }
        st->bound[lhs.ident] = std::move(cur);
        return;
    }
    case ExprKind::Concat: {
        // ops[0] is the most significant part; assign slices LSB-first from
        // the last operand backwards.
        size_t total = 0;
        std::vector<size_t> widths(lhs.ops.size());
        for (size_t i = 0; i < lhs.ops.size(); ++i) {
            const rtl::Expr& part = *lhs.ops[i];
            size_t w = 0;
            if (part.kind == ExprKind::Ident) {
                w = ctx.nets.count(part.ident)
                        ? ctx.nets.at(part.ident).size()
                        : 0;
            } else if (part.kind == ExprKind::PartSelect && part.msb >= 0) {
                w = static_cast<size_t>(part.msb - part.lsb + 1);
            } else if (part.kind == ExprKind::BitSelect) {
                w = 1;
            }
            if (w == 0) {
                error(lhs.loc, "unsupported concat assignment target part");
                return;
            }
            widths[i] = w;
            total += w;
        }
        Bits value = resize(std::move(rhs), total);
        size_t off = 0;
        for (size_t i = lhs.ops.size(); i-- > 0;) {
            Bits slice(value.begin() + static_cast<long>(off),
                       value.begin() + static_cast<long>(off + widths[i]));
            assign_lvalue(ctx, st, *lhs.ops[i], std::move(slice));
            off += widths[i];
        }
        return;
    }
    default:
        error(lhs.loc, "unsupported assignment target");
    }
}

Synthesizer::Bits Synthesizer::eval(InstCtx& ctx, ProcState* st,
                                    const rtl::Expr& e) {
    switch (e.kind) {
    case ExprKind::Number:
        return const_bits(e.value);
    case ExprKind::Ident: {
        if (st != nullptr) {
            auto it = st->loop_env.find(e.ident);
            if (it != st->loop_env.end()) return const_bits(it->second);
        }
        return read_signal(ctx, st, e.ident, e.loc);
    }
    case ExprKind::Unary: {
        Bits a = eval(ctx, st, *e.ops[0]);
        switch (e.uop) {
        case rtl::UnaryOp::Plus: return a;
        case rtl::UnaryOp::Minus: {
            Bits zero(a.size(), nl_->const0());
            Bits na(a.size());
            for (size_t i = 0; i < a.size(); ++i) na[i] = mk_not(a[i]);
            return add_bits(zero, na, nl_->const1());
        }
        case rtl::UnaryOp::LogNot: return {mk_not(to_bool(a))};
        case rtl::UnaryOp::BitNot: {
            Bits out(a.size());
            for (size_t i = 0; i < a.size(); ++i) out[i] = mk_not(a[i]);
            return out;
        }
        case rtl::UnaryOp::RedAnd: return {mk_tree(GateType::And, a)};
        case rtl::UnaryOp::RedOr: return {mk_tree(GateType::Or, a)};
        case rtl::UnaryOp::RedXor: return {mk_tree(GateType::Xor, a)};
        case rtl::UnaryOp::RedNand: return {mk_not(mk_tree(GateType::And, a))};
        case rtl::UnaryOp::RedNor: return {mk_not(mk_tree(GateType::Or, a))};
        case rtl::UnaryOp::RedXnor: return {mk_not(mk_tree(GateType::Xor, a))};
        }
        return {nl_->const0()};
    }
    case ExprKind::Binary:
        return eval_binary(ctx, st, e);
    case ExprKind::Ternary: {
        NetId sel = to_bool(eval(ctx, st, *e.ops[0]));
        Bits t = eval(ctx, st, *e.ops[1]);
        Bits f = eval(ctx, st, *e.ops[2]);
        return mux_bits(sel, f, t);
    }
    case ExprKind::Concat: {
        Bits out;
        for (size_t i = e.ops.size(); i-- > 0;) {
            Bits part = eval(ctx, st, *e.ops[i]);
            out.insert(out.end(), part.begin(), part.end());
        }
        return out;
    }
    case ExprKind::Replicate: {
        Bits part = eval(ctx, st, *e.ops[0]);
        Bits out;
        for (uint32_t i = 0; i < e.rep_count; ++i) {
            out.insert(out.end(), part.begin(), part.end());
        }
        if (out.empty()) out.push_back(nl_->const0());
        return out;
    }
    case ExprKind::BitSelect: {
        Bits base = read_signal(ctx, st, e.ident, e.loc);
        int32_t lsb_off = ctx.lsb.count(e.ident) ? ctx.lsb.at(e.ident) : 0;
        rtl::ConstEnv env = st != nullptr ? st->loop_env : rtl::ConstEnv{};
        if (auto idx = rtl::const_eval_int(*e.ops[0], env)) {
            int32_t i = *idx - lsb_off;
            if (i < 0 || i >= static_cast<int32_t>(base.size())) {
                error(e.loc, "bit-select out of range on '" + e.ident + "'");
                return {nl_->const0()};
            }
            return {base[static_cast<size_t>(i)]};
        }
        // Variable index: mux tree over the bits.
        Bits idx_bits = eval(ctx, st, *e.ops[0]);
        NetId out = nl_->const0();
        for (size_t i = 0; i < base.size(); ++i) {
            BitVec pos(std::max<uint32_t>(
                           1, static_cast<uint32_t>(idx_bits.size())),
                       static_cast<uint64_t>(static_cast<int64_t>(i) + lsb_off));
            NetId match = eq_bits(idx_bits, const_bits(pos));
            out = mk_mux(match, out, base[i]);
        }
        return {out};
    }
    case ExprKind::PartSelect: {
        Bits base = read_signal(ctx, st, e.ident, e.loc);
        int32_t lsb_off = ctx.lsb.count(e.ident) ? ctx.lsb.at(e.ident) : 0;
        if (e.msb < 0) {
            error(e.loc, "unresolved part-select on '" + e.ident + "'");
            return {nl_->const0()};
        }
        int32_t lo = e.lsb - lsb_off;
        int32_t hi = e.msb - lsb_off;
        if (lo < 0 || hi >= static_cast<int32_t>(base.size()) || lo > hi) {
            error(e.loc, "part-select out of range on '" + e.ident + "'");
            return {nl_->const0()};
        }
        return Bits(base.begin() + lo, base.begin() + hi + 1);
    }
    }
    return {nl_->const0()};
}

Synthesizer::Bits Synthesizer::eval_binary(InstCtx& ctx, ProcState* st,
                                           const rtl::Expr& e) {
    using rtl::BinaryOp;
    // Logical operators evaluate operand truthiness.
    if (e.bop == BinaryOp::LogAnd || e.bop == BinaryOp::LogOr) {
        NetId a = to_bool(eval(ctx, st, *e.ops[0]));
        NetId b = to_bool(eval(ctx, st, *e.ops[1]));
        return {e.bop == BinaryOp::LogAnd ? mk_and(a, b) : mk_or(a, b)};
    }
    Bits a = eval(ctx, st, *e.ops[0]);
    Bits b = eval(ctx, st, *e.ops[1]);
    switch (e.bop) {
    case BinaryOp::Add:
        return add_bits(a, b, nl_->const0());
    case BinaryOp::Sub: {
        size_t w = std::max(a.size(), b.size());
        Bits eb = resize(b, w);
        for (auto& bit : eb) bit = mk_not(bit);
        return add_bits(resize(a, w), eb, nl_->const1());
    }
    case BinaryOp::Mul:
        return mul_bits(a, b);
    case BinaryOp::Div:
    case BinaryOp::Mod:
        error(e.loc, "division/modulo of non-constants is not synthesizable "
                     "in this subset");
        return Bits(std::max(a.size(), b.size()), nl_->const0());
    case BinaryOp::BitAnd:
    case BinaryOp::BitOr:
    case BinaryOp::BitXor:
    case BinaryOp::BitXnor: {
        size_t w = std::max(a.size(), b.size());
        Bits ea = resize(a, w);
        Bits eb = resize(b, w);
        Bits out(w);
        for (size_t i = 0; i < w; ++i) {
            switch (e.bop) {
            case BinaryOp::BitAnd: out[i] = mk_and(ea[i], eb[i]); break;
            case BinaryOp::BitOr: out[i] = mk_or(ea[i], eb[i]); break;
            case BinaryOp::BitXor: out[i] = mk_xor(ea[i], eb[i]); break;
            default: out[i] = mk_xnor(ea[i], eb[i]); break;
            }
        }
        return out;
    }
    case BinaryOp::Eq:
    case BinaryOp::CaseEq:
        return {eq_bits(a, b)};
    case BinaryOp::Neq:
    case BinaryOp::CaseNeq:
        return {mk_not(eq_bits(a, b))};
    case BinaryOp::Lt:
        return {lt_bits(a, b)};
    case BinaryOp::Gt:
        return {lt_bits(b, a)};
    case BinaryOp::Le:
        return {mk_not(lt_bits(b, a))};
    case BinaryOp::Ge:
        return {mk_not(lt_bits(a, b))};
    case BinaryOp::Shl:
    case BinaryOp::Shr: {
        // Constant shift amounts become pure rewiring.
        rtl::ConstEnv env = st != nullptr ? st->loop_env : rtl::ConstEnv{};
        if (auto n = rtl::const_eval_int(*e.ops[1], env)) {
            size_t w = a.size();
            Bits out(w, nl_->const0());
            for (size_t i = 0; i < w; ++i) {
                if (e.bop == BinaryOp::Shl) {
                    if (i >= static_cast<size_t>(*n)) {
                        out[i] = a[i - static_cast<size_t>(*n)];
                    }
                } else {
                    if (i + static_cast<size_t>(*n) < w) {
                        out[i] = a[i + static_cast<size_t>(*n)];
                    }
                }
            }
            return out;
        }
        return shift_bits(a, b, e.bop == BinaryOp::Shl);
    }
    default:
        break;
    }
    return {nl_->const0()};
}

} // namespace factor::synth
