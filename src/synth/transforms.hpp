// Netlist transforms used by the FACTOR flow.
//
// expose_registers implements the PIER mechanism (paper §2.1): registers
// that are reachable from the chip interface through load/store instructions
// are made directly controllable and observable in the ATPG view, cutting
// the sequential depth of the transformed module. Selected D flip-flops are
// replaced by a pseudo primary input (the register value) and a pseudo
// primary output (its next-state function).
#pragma once

#include "synth/netlist.hpp"

#include <functional>
#include <string>

namespace factor::synth {

struct ExposeStats {
    size_t registers_exposed = 0;
};

/// Rebuild `nl` with every DFF whose output-net name satisfies `select`
/// turned into a pseudo input/output pair. The pseudo output is named
/// "<reg>$next".
ExposeStats expose_registers(Netlist& nl,
                             const std::function<bool(const std::string&)>& select);

} // namespace factor::synth
