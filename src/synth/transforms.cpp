#include "synth/transforms.hpp"

namespace factor::synth {

ExposeStats expose_registers(
    Netlist& nl, const std::function<bool(const std::string&)>& select) {
    ExposeStats stats;
    Netlist out;

    // Identity net mapping keeps this transform simple and predictable.
    for (NetId n = 0; n < nl.num_nets(); ++n) {
        NetId nn = out.new_net(nl.net_name(n));
        (void)nn;
    }
    for (const Gate& g : nl.gates()) {
        if (g.type == GateType::Dff && select(nl.net_name(g.out))) {
            ++stats.registers_exposed;
            out.mark_input(g.out);
            out.mark_output(g.ins[0], nl.net_name(g.out) + "$next");
            continue;
        }
        out.add_gate_driving(g.out, g.type, g.ins);
    }
    for (NetId n : nl.inputs()) out.mark_input(n);
    for (size_t i = 0; i < nl.outputs().size(); ++i) {
        out.mark_output(nl.outputs()[i], nl.output_name(i));
    }
    nl = std::move(out);
    return stats;
}

} // namespace factor::synth
