#include "synth/netlist.hpp"

#include <algorithm>
#include <sstream>

namespace factor::synth {

using util::FactorError;

const char* to_string(GateType t) {
    switch (t) {
    case GateType::Const0: return "CONST0";
    case GateType::Const1: return "CONST1";
    case GateType::Buf: return "BUF";
    case GateType::Not: return "NOT";
    case GateType::And: return "AND";
    case GateType::Or: return "OR";
    case GateType::Nand: return "NAND";
    case GateType::Nor: return "NOR";
    case GateType::Xor: return "XOR";
    case GateType::Xnor: return "XNOR";
    case GateType::Mux: return "MUX";
    case GateType::Dff: return "DFF";
    }
    return "?";
}

bool is_const(GateType t) {
    return t == GateType::Const0 || t == GateType::Const1;
}

bool is_symmetric(GateType t) {
    switch (t) {
    case GateType::And:
    case GateType::Or:
    case GateType::Nand:
    case GateType::Nor:
    case GateType::Xor:
    case GateType::Xnor:
        return true;
    default:
        return false;
    }
}

std::shared_ptr<const std::vector<GateId>>
Netlist::snapshot_levelize_cache() const {
    std::lock_guard<std::mutex> lk(topo_mu_);
    return topo_cache_;
}

Netlist::Netlist(const Netlist& other)
    : gates_(other.gates_), net_names_(other.net_names_),
      driver_(other.driver_), inputs_(other.inputs_),
      outputs_(other.outputs_), output_names_(other.output_names_),
      const0_(other.const0_), const1_(other.const1_),
      name_prefix_(other.name_prefix_),
      topo_cache_(other.snapshot_levelize_cache()) {}

Netlist::Netlist(Netlist&& other) noexcept
    : gates_(std::move(other.gates_)),
      net_names_(std::move(other.net_names_)),
      driver_(std::move(other.driver_)), inputs_(std::move(other.inputs_)),
      outputs_(std::move(other.outputs_)),
      output_names_(std::move(other.output_names_)), const0_(other.const0_),
      const1_(other.const1_), name_prefix_(std::move(other.name_prefix_)),
      topo_cache_(std::move(other.topo_cache_)) {
    other.topo_cache_.reset();
    other.const0_ = kNoNet;
    other.const1_ = kNoNet;
}

Netlist& Netlist::operator=(const Netlist& other) {
    if (this == &other) return *this;
    gates_ = other.gates_;
    net_names_ = other.net_names_;
    driver_ = other.driver_;
    inputs_ = other.inputs_;
    outputs_ = other.outputs_;
    output_names_ = other.output_names_;
    const0_ = other.const0_;
    const1_ = other.const1_;
    name_prefix_ = other.name_prefix_;
    auto cache = other.snapshot_levelize_cache();
    std::lock_guard<std::mutex> lk(topo_mu_);
    topo_cache_ = std::move(cache);
    return *this;
}

Netlist& Netlist::operator=(Netlist&& other) noexcept {
    if (this == &other) return *this;
    gates_ = std::move(other.gates_);
    net_names_ = std::move(other.net_names_);
    driver_ = std::move(other.driver_);
    inputs_ = std::move(other.inputs_);
    outputs_ = std::move(other.outputs_);
    output_names_ = std::move(other.output_names_);
    const0_ = other.const0_;
    const1_ = other.const1_;
    name_prefix_ = std::move(other.name_prefix_);
    topo_cache_ = std::move(other.topo_cache_);
    other.topo_cache_.reset();
    other.const0_ = kNoNet;
    other.const1_ = kNoNet;
    return *this;
}

NetId Netlist::new_net(std::string name) {
    NetId id = static_cast<NetId>(net_names_.size());
    net_names_.push_back(std::move(name));
    driver_.push_back(kNoGate);
    return id;
}

NetId Netlist::add_gate(GateType type, std::vector<NetId> ins,
                        const std::string& name_hint) {
    NetId out = new_net(name_hint.empty()
                            ? name_prefix_ + to_string(type) + "_" +
                                  std::to_string(gates_.size())
                            : name_hint);
    add_gate_driving(out, type, std::move(ins));
    return out;
}

void Netlist::add_gate_driving(NetId out, GateType type,
                               std::vector<NetId> ins) {
    if (out >= net_names_.size()) throw FactorError("add_gate: bad output net");
    if (driver_[out] != kNoGate) {
        throw FactorError("add_gate: net '" + net_names_[out] +
                          "' already driven");
    }
    for (NetId in : ins) {
        if (in >= net_names_.size()) throw FactorError("add_gate: bad input net");
    }
    driver_[out] = static_cast<GateId>(gates_.size());
    gates_.push_back(Gate{type, out, std::move(ins)});
    // Every structural mutation funnels through here (add_gate and the
    // constant helpers call in), so this is the single invalidation point.
    invalidate_levelize();
}

NetId Netlist::const0() {
    if (const0_ == kNoNet) const0_ = add_gate(GateType::Const0, {}, "const0");
    return const0_;
}

NetId Netlist::const1() {
    if (const1_ == kNoNet) const1_ = add_gate(GateType::Const1, {}, "const1");
    return const1_;
}

void Netlist::mark_input(NetId n) {
    if (is_driven(n)) {
        throw FactorError("mark_input: net '" + net_names_[n] + "' is driven");
    }
    if (std::find(inputs_.begin(), inputs_.end(), n) == inputs_.end()) {
        inputs_.push_back(n);
    }
}

void Netlist::mark_output(NetId n, const std::string& port_name) {
    outputs_.push_back(n);
    output_names_.push_back(port_name.empty() ? net_names_[n] : port_name);
}

size_t Netlist::logic_gate_count() const {
    size_t n = 0;
    for (const auto& g : gates_) {
        if (!is_const(g.type) && g.type != GateType::Buf) ++n;
    }
    return n;
}

size_t Netlist::dff_count() const {
    size_t n = 0;
    for (const auto& g : gates_) {
        if (g.type == GateType::Dff) ++n;
    }
    return n;
}

std::vector<GateId> Netlist::dffs() const {
    std::vector<GateId> out;
    for (GateId i = 0; i < gates_.size(); ++i) {
        if (gates_[i].type == GateType::Dff) out.push_back(i);
    }
    return out;
}

void Netlist::invalidate_levelize() {
    std::lock_guard<std::mutex> lk(topo_mu_);
    topo_cache_.reset();
}

std::vector<GateId> Netlist::levelize() const { return *levelize_shared(); }

std::shared_ptr<const std::vector<GateId>> Netlist::levelize_shared() const {
    {
        std::lock_guard<std::mutex> lk(topo_mu_);
        if (topo_cache_ != nullptr) return topo_cache_;
    }
    // Compute outside the lock (it can throw on a cycle); first publisher
    // wins if several threads raced on a cold cache.
    auto computed = std::make_shared<const std::vector<GateId>>(
        compute_levelize());
    std::lock_guard<std::mutex> lk(topo_mu_);
    if (topo_cache_ == nullptr) topo_cache_ = std::move(computed);
    return topo_cache_;
}

std::vector<GateId> Netlist::compute_levelize() const {
    // Kahn's algorithm over combinational gates; DFF outputs are sources.
    std::vector<uint32_t> pending(gates_.size(), 0);
    std::vector<std::vector<GateId>> fanout = build_fanout();
    std::vector<GateId> ready;
    for (GateId i = 0; i < gates_.size(); ++i) {
        const Gate& g = gates_[i];
        if (g.type == GateType::Dff) continue; // sequential: not levelized
        uint32_t deps = 0;
        for (NetId in : g.ins) {
            GateId d = driver_[in];
            if (d != kNoGate && gates_[d].type != GateType::Dff) ++deps;
        }
        pending[i] = deps;
        if (deps == 0) ready.push_back(i);
    }
    std::vector<GateId> order;
    order.reserve(gates_.size());
    size_t head = 0;
    std::vector<GateId> queue = std::move(ready);
    while (head < queue.size()) {
        GateId g = queue[head++];
        order.push_back(g);
        for (GateId f : fanout[gates_[g].out]) {
            if (gates_[f].type == GateType::Dff) continue;
            if (--pending[f] == 0) queue.push_back(f);
        }
    }
    size_t comb = 0;
    for (const auto& g : gates_) {
        if (g.type != GateType::Dff) ++comb;
    }
    if (order.size() != comb) {
        throw FactorError("combinational cycle detected in netlist: " +
                          describe_cycle(order));
    }
    return order;
}

std::string Netlist::describe_cycle(const std::vector<GateId>& order) const {
    // Every gate Kahn's algorithm left unresolved sits on or downstream of
    // a cycle, and each one has at least one unresolved combinational fanin
    // (otherwise the last resolved fanin would have enqueued it). Walking
    // any unresolved fanin repeatedly must therefore revisit a gate; the
    // walk between the two visits is a cycle.
    std::vector<bool> resolved(gates_.size(), false);
    for (GateId g : order) resolved[g] = true;
    GateId start = kNoGate;
    for (GateId i = 0; i < gates_.size(); ++i) {
        if (gates_[i].type != GateType::Dff && !resolved[i]) {
            start = i;
            break;
        }
    }
    if (start == kNoGate) return "(cycle not locatable)";

    std::vector<size_t> seen_at(gates_.size(), SIZE_MAX);
    std::vector<GateId> path;
    GateId cur = start;
    while (seen_at[cur] == SIZE_MAX) {
        seen_at[cur] = path.size();
        path.push_back(cur);
        GateId next = kNoGate;
        for (NetId in : gates_[cur].ins) {
            GateId d = driver_[in];
            if (d != kNoGate && gates_[d].type != GateType::Dff &&
                !resolved[d]) {
                next = d;
                break;
            }
        }
        if (next == kNoGate) return "(cycle not locatable)";
        cur = next;
    }

    // path[seen_at[cur]..] walks the cycle fanin-wards; print it in signal
    // flow order (driver first) and close the loop on the first net.
    constexpr size_t kMaxNamed = 8;
    std::ostringstream os;
    size_t cycle_len = path.size() - seen_at[cur];
    size_t named = std::min(cycle_len, kMaxNamed);
    for (size_t i = 0; i < named; ++i) {
        os << net_names_[gates_[path[path.size() - 1 - i]].out] << " -> ";
    }
    if (cycle_len > kMaxNamed) {
        os << "... (" << cycle_len - kMaxNamed << " more) -> ";
    }
    os << net_names_[gates_[path.back()].out];
    return os.str();
}

std::vector<std::vector<GateId>> Netlist::build_fanout() const {
    std::vector<std::vector<GateId>> fanout(net_names_.size());
    for (GateId i = 0; i < gates_.size(); ++i) {
        for (NetId in : gates_[i].ins) fanout[in].push_back(i);
    }
    return fanout;
}

void Netlist::check() const {
    for (GateId i = 0; i < gates_.size(); ++i) {
        const Gate& g = gates_[i];
        if (g.out >= net_names_.size()) throw FactorError("gate with bad output");
        if (driver_[g.out] != i) throw FactorError("driver table inconsistent");
        size_t n = g.ins.size();
        switch (g.type) {
        case GateType::Const0:
        case GateType::Const1:
            if (n != 0) throw FactorError("constant with inputs");
            break;
        case GateType::Buf:
        case GateType::Not:
        case GateType::Dff:
            if (n != 1) throw FactorError(std::string(to_string(g.type)) +
                                          " must have exactly 1 input");
            break;
        case GateType::And:
        case GateType::Or:
        case GateType::Nand:
        case GateType::Nor:
            if (n < 2) throw FactorError(std::string(to_string(g.type)) +
                                         " needs >= 2 inputs");
            break;
        case GateType::Xor:
        case GateType::Xnor:
            if (n != 2) throw FactorError("XOR/XNOR must have 2 inputs");
            break;
        case GateType::Mux:
            if (n != 3) throw FactorError("MUX must have 3 inputs");
            break;
        }
    }
    for (NetId n : inputs_) {
        if (is_driven(n)) throw FactorError("primary input is driven");
    }
    (void)levelize(); // throws on combinational cycles
}

std::string Netlist::dump() const {
    std::ostringstream os;
    os << "netlist: " << num_gates() << " gates (" << logic_gate_count()
       << " logic, " << dff_count() << " dff), " << inputs_.size() << " PI, "
       << outputs_.size() << " PO\n";
    for (NetId n : inputs_) os << "  input  " << net_names_[n] << "\n";
    for (size_t i = 0; i < outputs_.size(); ++i) {
        os << "  output " << output_names_[i] << " = "
           << net_names_[outputs_[i]] << "\n";
    }
    for (const Gate& g : gates_) {
        os << "  " << net_names_[g.out] << " = " << to_string(g.type) << "(";
        for (size_t i = 0; i < g.ins.size(); ++i) {
            if (i != 0) os << ", ";
            os << net_names_[g.ins[i]];
        }
        os << ")\n";
    }
    return os.str();
}

} // namespace factor::synth
