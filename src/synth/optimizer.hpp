// Netlist optimizer: constant propagation, buffer elision, local boolean
// simplification, structural hashing and dead-logic sweep.
//
// In the paper's flow the synthesis tool is what "eliminates the redundant
// logic or the dead code at each level of hierarchy" from the extracted
// constraints; this optimizer performs that role for our synthesizer and is
// responsible for the drastic "Gate Reduction %" columns of Tables 2 and 3.
#pragma once

#include "synth/netlist.hpp"
#include "util/run_guard.hpp"

#include <cstddef>

namespace factor::synth {

struct OptOptions {
    /// Merge D flip-flops with identical data inputs. Both start unknown and
    /// track the same next-state function, so this is behaviour-preserving;
    /// kept as an option for the ablation bench.
    bool merge_registers = false;
    /// Upper bound on simplify/hash/sweep iterations.
    unsigned max_iterations = 8;
    /// Optional run guard, checked between rebuild passes. A stop ends
    /// optimization early: the netlist is valid (each pass is complete),
    /// just less optimized.
    util::RunGuard* guard = nullptr;
};

struct OptStats {
    size_t gates_before = 0;
    size_t gates_after = 0;
    unsigned iterations = 0;

    [[nodiscard]] double reduction_percent() const {
        if (gates_before == 0) return 0.0;
        return 100.0 *
               (static_cast<double>(gates_before) -
                static_cast<double>(gates_after)) /
               static_cast<double>(gates_before);
    }
};

/// Optimize `nl` in place (the netlist is rebuilt internally). Primary
/// inputs and outputs keep their identities and names.
OptStats optimize(Netlist& nl, const OptOptions& options = {});

} // namespace factor::synth
