#include "synth/optimizer.hpp"

#include "obs/inject.hpp"
#include "obs/obs.hpp"

#include <algorithm>
#include <map>
#include <vector>

namespace factor::synth {

namespace {

/// One rebuild pass: simplify + hash + sweep. Returns the new netlist and
/// whether anything changed.
class RebuildPass {
  public:
    RebuildPass(const Netlist& old, const OptOptions& options)
        : old_(old), options_(options) {}

    Netlist run(bool& changed) {
        compute_liveness();
        premap_sources();
        process_comb();
        process_dffs();
        finish_interface();
        changed = out_.num_gates() != old_.num_gates();
        return std::move(out_);
    }

  private:
    // ----- liveness on the old netlist --------------------------------------
    void compute_liveness() {
        live_net_.assign(old_.num_nets(), false);
        std::vector<NetId> work;
        for (NetId n : old_.outputs()) {
            if (!live_net_[n]) {
                live_net_[n] = true;
                work.push_back(n);
            }
        }
        while (!work.empty()) {
            NetId n = work.back();
            work.pop_back();
            GateId d = old_.driver(n);
            if (d == Netlist::kNoGate) continue;
            for (NetId in : old_.gate(d).ins) {
                if (!live_net_[in]) {
                    live_net_[in] = true;
                    work.push_back(in);
                }
            }
        }
    }

    [[nodiscard]] bool gate_live(const Gate& g) const {
        return live_net_[g.out];
    }

    // ----- helpers on the new netlist ---------------------------------------
    enum class CV { Zero, One, Other };

    [[nodiscard]] CV cv(NetId n) const {
        GateId d = out_.driver(n);
        if (d == Netlist::kNoGate) return CV::Other;
        GateType t = out_.gate(d).type;
        if (t == GateType::Const0) return CV::Zero;
        if (t == GateType::Const1) return CV::One;
        return CV::Other;
    }

    /// If `n` is driven by NOT(x) in the new netlist, return x.
    [[nodiscard]] NetId not_input(NetId n) const {
        GateId d = out_.driver(n);
        if (d == Netlist::kNoGate) return kNoNet;
        const Gate& g = out_.gate(d);
        return g.type == GateType::Not ? g.ins[0] : kNoNet;
    }

    NetId hashed_gate(GateType type, std::vector<NetId> ins) {
        std::vector<NetId> key_ins = ins;
        if (is_symmetric(type)) std::sort(key_ins.begin(), key_ins.end());
        // Hash within the owning instance only (the domain is the
        // hierarchical prefix of the gate being rebuilt). Merging identical
        // gates across module boundaries would reattach one module's net
        // names to another's logic, corrupting per-module gate counts and
        // fault scoping — the moral equivalent of synthesizing with
        // boundary optimization disabled.
        auto key = std::make_tuple(current_domain_, type, std::move(key_ins));
        auto it = hash_.find(key);
        if (it != hash_.end()) return it->second;
        NetId n = out_.add_gate(type, std::move(ins));
        hash_.emplace(std::move(key), n);
        return n;
    }

    NetId mk_not(NetId a) {
        switch (cv(a)) {
        case CV::Zero: return out_.const1();
        case CV::One: return out_.const0();
        case CV::Other: break;
        }
        if (NetId x = not_input(a); x != kNoNet) return x;
        return hashed_gate(GateType::Not, {a});
    }

    NetId mk_andor(GateType type, std::vector<NetId> ins) {
        const bool is_and = type == GateType::And;
        const CV absorb = is_and ? CV::Zero : CV::One;
        const CV identity = is_and ? CV::One : CV::Zero;
        std::vector<NetId> kept;
        for (NetId in : ins) {
            CV c = cv(in);
            if (c == absorb) return is_and ? out_.const0() : out_.const1();
            if (c == identity) continue;
            kept.push_back(in);
        }
        std::sort(kept.begin(), kept.end());
        kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
        // Complementary pair?
        for (NetId in : kept) {
            NetId x = not_input(in);
            if (x != kNoNet &&
                std::binary_search(kept.begin(), kept.end(), x)) {
                return is_and ? out_.const0() : out_.const1();
            }
        }
        if (kept.empty()) return is_and ? out_.const1() : out_.const0();
        if (kept.size() == 1) return kept[0];
        return hashed_gate(type, std::move(kept));
    }

    NetId mk_xor(NetId a, NetId b) {
        if (a == b) return out_.const0();
        CV ca = cv(a);
        CV cb = cv(b);
        if (ca == CV::Zero) return b;
        if (cb == CV::Zero) return a;
        if (ca == CV::One) return mk_not(b);
        if (cb == CV::One) return mk_not(a);
        if (not_input(a) == b || not_input(b) == a) return out_.const1();
        return hashed_gate(GateType::Xor, {a, b});
    }

    NetId mk_mux(NetId sel, NetId a0, NetId a1) {
        CV cs = cv(sel);
        if (cs == CV::Zero) return a0;
        if (cs == CV::One) return a1;
        if (a0 == a1) return a0;
        CV c0 = cv(a0);
        CV c1 = cv(a1);
        if (c0 == CV::Zero && c1 == CV::One) return sel;
        if (c0 == CV::One && c1 == CV::Zero) return mk_not(sel);
        if (c0 == CV::Zero) return mk_andor(GateType::And, {sel, a1});
        if (c1 == CV::Zero) return mk_andor(GateType::And, {mk_not(sel), a0});
        if (c0 == CV::One) return mk_andor(GateType::Or, {mk_not(sel), a1});
        if (c1 == CV::One) return mk_andor(GateType::Or, {sel, a0});
        if (a1 == sel) return mk_andor(GateType::Or, {sel, a0});  // sel?sel:a0
        if (a0 == sel) return mk_andor(GateType::And, {sel, a1}); // sel?a1:sel
        return hashed_gate(GateType::Mux, {sel, a0, a1});
    }

    // ----- passes ------------------------------------------------------------
    void premap_sources() {
        map_.assign(old_.num_nets(), kNoNet);
        // Primary inputs keep their identity and name.
        for (NetId n : old_.inputs()) {
            NetId nn = out_.new_net(old_.net_name(n));
            out_.mark_input(nn);
            map_[n] = nn;
        }
        // DFF outputs are sources for combinational mapping.
        for (GateId g : old_.dffs()) {
            if (!gate_live(old_.gate(g))) continue;
            NetId q = old_.gate(g).out;
            map_[q] = out_.new_net(old_.net_name(q));
        }
    }

    [[nodiscard]] NetId mapped(NetId old_net) {
        NetId n = map_[old_net];
        if (n == kNoNet) {
            // Undriven (unknown) net in the old netlist: preserve as an
            // undriven net so downstream X semantics survive.
            n = out_.new_net(old_.net_name(old_net));
            map_[old_net] = n;
        }
        return n;
    }

    void process_comb() {
        for (GateId gid : old_.levelize()) {
            const Gate& g = old_.gate(gid);
            if (!gate_live(g)) continue;
            const std::string& gname = old_.net_name(g.out);
            auto dot = gname.rfind('.');
            current_domain_ =
                dot == std::string::npos ? std::string() : gname.substr(0, dot);
            std::vector<NetId> ins;
            ins.reserve(g.ins.size());
            for (NetId in : g.ins) ins.push_back(mapped(in));
            const NetId nets_before = static_cast<NetId>(out_.num_nets());
            NetId result = kNoNet;
            switch (g.type) {
            case GateType::Const0: result = out_.const0(); break;
            case GateType::Const1: result = out_.const1(); break;
            case GateType::Buf: result = ins[0]; break;
            case GateType::Not: result = mk_not(ins[0]); break;
            case GateType::And:
            case GateType::Or:
                result = mk_andor(g.type, std::move(ins));
                break;
            case GateType::Nand:
                result = mk_not(mk_andor(GateType::And, std::move(ins)));
                break;
            case GateType::Nor:
                result = mk_not(mk_andor(GateType::Or, std::move(ins)));
                break;
            case GateType::Xor: result = mk_xor(ins[0], ins[1]); break;
            case GateType::Xnor: result = mk_not(mk_xor(ins[0], ins[1])); break;
            case GateType::Mux: result = mk_mux(ins[0], ins[1], ins[2]); break;
            case GateType::Dff: continue; // handled separately
            }
            // Keep the original net name on freshly created gates so
            // hierarchical attribution (fault scoping, per-module gate
            // counts) survives optimization.
            if (result != kNoNet && result >= nets_before) {
                out_.set_net_name(result, old_.net_name(g.out));
            }
            map_[g.out] = result;
        }
    }

    void process_dffs() {
        std::map<NetId, NetId> dff_by_d; // d -> q (register merging)
        for (GateId gid : old_.dffs()) {
            const Gate& g = old_.gate(gid);
            if (!gate_live(g)) continue;
            NetId q = map_[g.out];
            NetId d = mapped(g.ins[0]);
            if (options_.merge_registers) {
                auto it = dff_by_d.find(d);
                if (it != dff_by_d.end()) {
                    // Equivalent register: forward the kept one's output.
                    // (Combinational fanout already read `q`, so drive it
                    // with a buffer; the next iteration elides it.)
                    out_.add_gate_driving(q, GateType::Buf, {it->second});
                    continue;
                }
                dff_by_d.emplace(d, q);
            }
            out_.add_gate_driving(q, GateType::Dff, {d});
        }
    }

    void finish_interface() {
        for (size_t i = 0; i < old_.outputs().size(); ++i) {
            out_.mark_output(mapped(old_.outputs()[i]), old_.output_name(i));
        }
    }

    const Netlist& old_;
    const OptOptions& options_;
    Netlist out_;
    std::vector<bool> live_net_;
    std::vector<NetId> map_;
    std::string current_domain_;
    std::map<std::tuple<std::string, GateType, std::vector<NetId>>, NetId>
        hash_;
};

} // namespace

OptStats optimize(Netlist& nl, const OptOptions& options) {
    obs::Span span("synth.optimize");
    OptStats stats;
    stats.gates_before = nl.num_gates();
    for (unsigned i = 0; i < options.max_iterations; ++i) {
        if (options.guard != nullptr && !options.guard->tick()) {
            obs::counter("synth.optimize.guard_stops").add(1);
            break; // passes are atomic: the netlist is valid, just less optimized
        }
        obs::inject_point("optimize.pass");
        obs::Span pass_span("synth.optimize.pass");
        ++stats.iterations;
        bool changed = false;
        RebuildPass pass(nl, options);
        Netlist next = pass.run(changed);
        nl = std::move(next);
        pass_span.attr("gates", nl.num_gates());
        if (!changed) break;
    }
    stats.gates_after = nl.num_gates();

    obs::counter("synth.optimize.calls").add(1);
    if (stats.gates_before > stats.gates_after) {
        obs::counter("synth.optimize.gates_removed")
            .add(stats.gates_before - stats.gates_after);
    }
    obs::histogram("synth.optimize.iterations").record(stats.iterations);
    span.attr("gates_before", stats.gates_before);
    span.attr("gates_after", stats.gates_after);
    span.attr("iterations", static_cast<uint64_t>(stats.iterations));
    return stats;
}

} // namespace factor::synth
