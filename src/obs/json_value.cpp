#include "obs/json_value.hpp"

#include <cctype>
#include <cstdlib>

namespace factor::obs {

namespace {

[[nodiscard]] bool is_ws(char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

} // namespace

/// Recursive-descent parser building JsonValue trees. Mirrors the grammar
/// of the JsonChecker in obs.cpp; the checker stays separate because
/// validation must not pay for tree allocation.
class JsonParser {
  public:
    explicit JsonParser(std::string_view t) : t_(t) {}

    bool parse(JsonValue& out) {
        skip_ws();
        if (!value(out)) return false;
        skip_ws();
        return pos_ == t_.size();
    }

  private:
    [[nodiscard]] bool eof() const { return pos_ >= t_.size(); }
    [[nodiscard]] char peek() const { return t_[pos_]; }
    bool consume(char c) {
        if (eof() || t_[pos_] != c) return false;
        ++pos_;
        return true;
    }
    void skip_ws() {
        while (!eof() && is_ws(t_[pos_])) ++pos_;
    }
    bool literal(std::string_view word) {
        if (t_.substr(pos_, word.size()) != word) return false;
        pos_ += word.size();
        return true;
    }

    bool string(std::string& out) {
        if (!consume('"')) return false;
        out.clear();
        while (!eof()) {
            char c = t_[pos_++];
            if (c == '"') return true;
            if (c == '\\') {
                if (eof()) return false;
                char e = t_[pos_++];
                switch (e) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        if (eof()) return false;
                        char h = t_[pos_++];
                        unsigned d;
                        if (h >= '0' && h <= '9') {
                            d = static_cast<unsigned>(h - '0');
                        } else if (h >= 'a' && h <= 'f') {
                            d = static_cast<unsigned>(h - 'a') + 10;
                        } else if (h >= 'A' && h <= 'F') {
                            d = static_cast<unsigned>(h - 'A') + 10;
                        } else {
                            return false;
                        }
                        code = code * 16 + d;
                    }
                    // UTF-8 encode the BMP code point; our producers only
                    // emit \u00xx control escapes, but decode the full
                    // 16-bit range for robustness (surrogate pairs land as
                    // two 3-byte sequences — lossy but never malformed).
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xC0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (code >> 12));
                        out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    }
                    break;
                }
                default: return false;
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                return false;
            } else {
                out += c;
            }
        }
        return false;
    }

    bool number(double& out) {
        size_t start = pos_;
        consume('-');
        if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
            return false;
        }
        if (peek() == '0') {
            // JSON forbids leading zeros: "0" stands alone before ./e.
            ++pos_;
            if (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
                return false;
            }
        }
        while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
            ++pos_;
        }
        if (!eof() && peek() == '.') {
            ++pos_;
            if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
                return false;
            }
            while (!eof() &&
                   std::isdigit(static_cast<unsigned char>(peek()))) {
                ++pos_;
            }
        }
        if (!eof() && (peek() == 'e' || peek() == 'E')) {
            ++pos_;
            if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
            if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
                return false;
            }
            while (!eof() &&
                   std::isdigit(static_cast<unsigned char>(peek()))) {
                ++pos_;
            }
        }
        std::string buf(t_.substr(start, pos_ - start));
        out = std::strtod(buf.c_str(), nullptr);
        return true;
    }

    bool value(JsonValue& out) {
        if (++depth_ > 256) return false; // stack guard
        bool ok = value_inner(out);
        --depth_;
        return ok;
    }

    bool value_inner(JsonValue& out) {
        skip_ws();
        if (eof()) return false;
        switch (peek()) {
        case '{': {
            ++pos_;
            out.type_ = JsonValue::Type::Object;
            skip_ws();
            if (consume('}')) return true;
            while (true) {
                skip_ws();
                std::string key;
                if (!string(key)) return false;
                skip_ws();
                if (!consume(':')) return false;
                JsonValue member;
                if (!value(member)) return false;
                out.obj_.emplace_back(std::move(key), std::move(member));
                skip_ws();
                if (consume('}')) return true;
                if (!consume(',')) return false;
            }
        }
        case '[': {
            ++pos_;
            out.type_ = JsonValue::Type::Array;
            skip_ws();
            if (consume(']')) return true;
            while (true) {
                JsonValue item;
                if (!value(item)) return false;
                out.arr_.push_back(std::move(item));
                skip_ws();
                if (consume(']')) return true;
                if (!consume(',')) return false;
            }
        }
        case '"':
            out.type_ = JsonValue::Type::String;
            return string(out.str_);
        case 't':
            out.type_ = JsonValue::Type::Bool;
            out.b_ = true;
            return literal("true");
        case 'f':
            out.type_ = JsonValue::Type::Bool;
            out.b_ = false;
            return literal("false");
        case 'n':
            out.type_ = JsonValue::Type::Null;
            return literal("null");
        default:
            out.type_ = JsonValue::Type::Number;
            return number(out.num_);
        }
    }

    std::string_view t_;
    size_t pos_ = 0;
    int depth_ = 0;
};

std::optional<JsonValue> JsonValue::parse(std::string_view text) {
    JsonValue v;
    if (!JsonParser(text).parse(v)) return std::nullopt;
    return v;
}

const JsonValue* JsonValue::get(std::string_view key) const {
    if (type_ != Type::Object) return nullptr;
    for (const auto& [k, v] : obj_) {
        if (k == key) return &v;
    }
    return nullptr;
}

double JsonValue::number_at(std::string_view key, double fallback) const {
    const JsonValue* v = get(key);
    return v != nullptr ? v->number_or(fallback) : fallback;
}

std::string JsonValue::string_at(std::string_view key,
                                 const std::string& fallback) const {
    const JsonValue* v = get(key);
    return v != nullptr ? v->string_or(fallback) : fallback;
}

} // namespace factor::obs
