// Minimal JSON document model used by the observability tooling: the
// bench-trajectory comparator (tools/bench_diff) parses committed
// factor.bench.v1 reports, and the tests parse factor.progress.v1 /
// factor.stats.v1 documents to assert on their contents.
//
// Scope is deliberately small: parse a complete JSON text into an owned
// tree, preserve object member order, and expose typed accessors. Numbers
// are held as double (every value our schemas emit round-trips — see
// obs::json_number); no serialization back out, no streaming, no SAX.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace factor::obs {

class JsonValue {
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    /// Parse one complete JSON value (leading/trailing whitespace allowed).
    /// Returns nullopt on any syntax error — the caller decides whether a
    /// broken document is fatal.
    [[nodiscard]] static std::optional<JsonValue> parse(std::string_view text);

    [[nodiscard]] Type type() const { return type_; }
    [[nodiscard]] bool is_object() const { return type_ == Type::Object; }
    [[nodiscard]] bool is_array() const { return type_ == Type::Array; }
    [[nodiscard]] bool is_number() const { return type_ == Type::Number; }
    [[nodiscard]] bool is_string() const { return type_ == Type::String; }

    /// Object member by key; null when absent or not an object.
    [[nodiscard]] const JsonValue* get(std::string_view key) const;

    /// Typed reads with fallbacks (never throw).
    [[nodiscard]] double number_or(double fallback) const {
        return type_ == Type::Number ? num_ : fallback;
    }
    [[nodiscard]] const std::string& string_or(const std::string& fallback) const {
        return type_ == Type::String ? str_ : fallback;
    }
    [[nodiscard]] bool bool_or(bool fallback) const {
        return type_ == Type::Bool ? b_ : fallback;
    }

    /// Convenience: numeric value of object member `key` (fallback when the
    /// member is absent or non-numeric).
    [[nodiscard]] double number_at(std::string_view key,
                                   double fallback) const;
    /// Convenience: string value of object member `key`.
    [[nodiscard]] std::string string_at(std::string_view key,
                                        const std::string& fallback = "") const;

    [[nodiscard]] const std::vector<JsonValue>& items() const { return arr_; }
    [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>&
    members() const {
        return obj_;
    }

  private:
    friend class JsonParser;

    Type type_ = Type::Null;
    bool b_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<JsonValue> arr_;
    std::vector<std::pair<std::string, JsonValue>> obj_;
};

} // namespace factor::obs
