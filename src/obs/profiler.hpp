// Cost attribution: where does a FACTOR run spend its time?
//
// The Registry answers "how much work happened" (counters); the Tracer
// answers "what happened when" (spans, but only when armed and at real
// buffering cost). The Profiler sits between them: an always-cheap,
// always-on accumulator of scoped wall time per pipeline phase and per
// ATPG executor, plus — when armed via --profile — a bounded "hottest
// faults" table ranking individual faults by PODEM time and backtracks.
// Rendered once at exit as a factor.profile.v1 JSON document, it tells the
// fault-sim/SIMD optimization work exactly which phase, which worker and
// which faults to attack.
//
// Cost model: phase_add/worker_add take a mutex on a tiny map, but are
// called O(phases) and O(workers) times per run — never per fault or per
// frame. record_fault is per-fault but gated on an armed profiler (one
// relaxed load when off) and keeps only a bounded top-N, so memory stays
// O(N) on million-fault campaigns.
//
// Like Progress, the profiler only observes: it reads clocks and counters
// around existing work and never changes engine decisions, so results are
// byte-identical with --profile on or off.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace factor::obs {

class Profiler {
  public:
    /// Hottest-faults table capacity (top N by PODEM wall time).
    static constexpr size_t kTopFaults = 10;

    [[nodiscard]] static Profiler& global();

    /// Arm per-fault attribution (--profile). Phase/worker accumulation is
    /// always on regardless.
    void arm() { armed_.store(true, std::memory_order_relaxed); }
    void disarm() { armed_.store(false, std::memory_order_relaxed); }
    [[nodiscard]] bool armed() const {
        return armed_.load(std::memory_order_relaxed);
    }

    /// Drop all accumulated data (tests; CLI runs are one-shot).
    void reset();

    /// Accumulate `ns` of wall time under phase `name` (e.g. "atpg.random").
    void phase_add(const std::string& name, uint64_t ns);

    /// Accumulate one executor's contribution: busy wall time, faults it
    /// claimed, tests it generated.
    void worker_add(uint64_t worker, uint64_t busy_ns, uint64_t claimed,
                    uint64_t generated);

    /// Record one deterministic-phase fault attempt (only when armed).
    /// `desc` is the human-readable fault name; `outcome` is the PODEM
    /// outcome label ("test"|"untestable"|"aborted").
    void record_fault(const std::string& desc, uint64_t podem_ns,
                      uint64_t backtracks, const char* outcome);

    /// Render everything as the factor.profile.v1 JSON document.
    /// `total_seconds` is the run's wall time, used for percent-of-total.
    [[nodiscard]] std::string to_json(double total_seconds) const;

  private:
    struct PhaseCost {
        std::string name;
        uint64_t ns = 0;
        uint64_t calls = 0;
    };
    struct WorkerCost {
        uint64_t worker = 0;
        uint64_t busy_ns = 0;
        uint64_t claimed = 0;
        uint64_t generated = 0;
    };
    struct FaultCost {
        std::string desc;
        uint64_t podem_ns = 0;
        uint64_t backtracks = 0;
        std::string outcome;
    };

    std::atomic<bool> armed_{false};
    mutable std::mutex mu_;
    std::vector<PhaseCost> phases_;   // insertion order = pipeline order
    std::vector<WorkerCost> workers_; // sorted by worker id at render
    std::vector<FaultCost> top_;      // kept sorted desc by podem_ns
};

/// RAII phase timer: accumulates the scope's wall time into
/// Profiler::phase_add at destruction. Always on (one clock read each way).
class ProfScope {
  public:
    explicit ProfScope(const char* name)
        : name_(name), start_(std::chrono::steady_clock::now()) {}
    ProfScope(const ProfScope&) = delete;
    ProfScope& operator=(const ProfScope&) = delete;
    ~ProfScope();

  private:
    const char* name_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace factor::obs
