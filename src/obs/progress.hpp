// Live campaign progress: a heartbeat emitter for long ATPG runs.
//
// The engine reports a ProgressSnapshot at its commit points — after each
// committed random batch, each committed deterministic fault and each retry
// attempt — and Progress turns a rate-limited subset of them into NDJSON
// events (schema "factor.progress.v1", one JSON object per line) a human
// can `tail -f` or a dashboard can stream. Emission is purely
// observational: it never touches the engine RNG, the commit order or the
// guard accounting, so ATPG results stay byte-identical with progress on
// or off at any jobs value (tests/test_progress.cpp holds the line).
//
// Costs: when disabled, due() is one relaxed atomic load — the engine
// checks it before building a snapshot, so the whole feature vanishes from
// an untracked run. When enabled, the engine builds at most one snapshot
// per interval (default 1s), and each event is one Doc render + one
// flushed write.
//
// Snapshots carry cross-attempt cumulative values (elapsed seconds, done
// counts, attempt number), so a --resume'd campaign reports end-to-end
// progress, not per-process progress.
#pragma once

#include "obs/obs.hpp"

#include <atomic>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>

namespace factor::obs {

/// One progress observation, filled by the ATPG engine at a commit point.
/// Counts are cumulative across --resume attempts.
struct ProgressSnapshot {
    const char* phase = "";     // "replay"|"random"|"deterministic"|"retry"
                                // |"sat" (campaign supervisor: "campaign")
    /// Campaign context: the MUT path of the shard this snapshot belongs
    /// to, plus the campaign's completion counters. Filled by the campaign
    /// supervisor; engine snapshots inherit the label of the surrounding
    /// ShardScope (if any) so per-shard heartbeats are attributable even
    /// though the engine knows nothing about campaigns.
    std::string shard;
    uint64_t shards_total = 0;
    uint64_t shards_done = 0;
    uint64_t faults_total = 0;
    /// Resolved: detected + untestable + aborted + redundant.
    uint64_t faults_done = 0;
    uint64_t detected = 0;
    uint64_t untestable = 0;
    uint64_t aborted = 0;
    uint64_t redundant = 0; // SAT UNSAT redundancy proofs
    double coverage_percent = 0.0;
    uint64_t vectors = 0;            // committed deterministic tests
    uint64_t random_sequences = 0;   // applied random sequences
    uint64_t attempt = 1;            // 1-based, 2+ after --resume
    uint64_t threads = 1;
    double elapsed_seconds = 0.0;    // cross-attempt engine seconds

    // Executor-pool activity so far (util::ThreadPool::stats()).
    uint64_t pool_tasks = 0;
    uint64_t pool_steals = 0;
    uint64_t pool_idle_ns = 0;

    // RunGuard budget headroom; negative seconds / has_work false mean the
    // corresponding budget is unlimited and the field is omitted.
    double budget_remaining_seconds = -1.0;
    bool has_work_remaining = false;
    uint64_t work_remaining = 0;
};

/// Process-global heartbeat sink, configured by the CLI --progress option
/// (or directly by tests). Same lifecycle shape as Tracer: start() arms it,
/// stop() disarms and returns everything emitted.
class Progress {
  public:
    [[nodiscard]] static Progress& global();

    /// Arm the emitter. `sink` is a file path (truncated, NDJSON appended
    /// and flushed per event — live-tailable), "stderr", or "" to buffer
    /// in memory only (tests). `interval_s` rate-limits tick(); 0 emits
    /// every snapshot.
    void start(std::string sink, double interval_s);

    /// Disarm and return the full NDJSON text emitted since start().
    std::string stop();

    [[nodiscard]] bool enabled() const {
        return enabled_.load(std::memory_order_relaxed);
    }

    /// True when a tick would emit now: enabled and the interval elapsed
    /// since the last emission. The engine's cheap pre-check — build the
    /// snapshot only when this says so. One relaxed load when disabled.
    [[nodiscard]] bool due() const;

    /// Emit one heartbeat event (no-op when disabled). Thread-safe; the
    /// engine only calls it from serialized commit points anyway.
    void tick(const ProgressSnapshot& s);

    /// Emit the run's final event unconditionally (bypasses the interval;
    /// "final":true). Its counts must agree with the engine result — the
    /// tests cross-check it against the factor.stats.v1 document.
    void emit_final(const ProgressSnapshot& s);

    [[nodiscard]] uint64_t events_emitted() const {
        return events_.load(std::memory_order_relaxed);
    }

    /// Thread-local shard label: while set, every snapshot emitted from
    /// this thread with an empty `shard` field is stamped with it. The
    /// campaign supervisor wraps each shard in a ShardScope so the engine's
    /// own heartbeats carry the shard's MUT path. Returns the previous
    /// label (for restoration).
    static std::string set_shard_label(std::string label);
    [[nodiscard]] static const std::string& shard_label();

  private:
    void emit(const ProgressSnapshot& s, bool final_event);

    std::atomic<bool> enabled_{false};
    std::atomic<int64_t> last_emit_ns_{0};
    std::atomic<int64_t> interval_ns_{0};
    std::atomic<uint64_t> events_{0};

    mutable std::mutex mu_; // guards sink state + buffer
    std::string sink_;
    std::ofstream file_;
    std::string buffer_;
};

/// RAII shard label for campaign shards: construction installs `label` as
/// this thread's shard label, destruction restores the previous one.
class ShardScope {
  public:
    explicit ShardScope(std::string label)
        : prev_(Progress::set_shard_label(std::move(label))) {}
    ShardScope(const ShardScope&) = delete;
    ShardScope& operator=(const ShardScope&) = delete;
    ~ShardScope() { (void)Progress::set_shard_label(std::move(prev_)); }

  private:
    std::string prev_;
};

/// Render one snapshot as the factor.progress.v1 Doc (exposed for tests:
/// the event line is exactly this Doc's JSON).
[[nodiscard]] Doc progress_doc(const ProgressSnapshot& s, uint64_t seq,
                               bool final_event);

} // namespace factor::obs
