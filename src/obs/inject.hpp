// Fault injection harness for resilience testing.
//
// `FACTOR_INJECT_FAULT=<site>[:<nth>]` arms the process-global injector:
// the <nth> time (1-based, default 1) execution passes the named injection
// point, a util::FactorError is thrown from that point, exactly as if an
// internal invariant had failed there. The injector fires once per process
// and disarms itself, so fallback/retry paths downstream of the fault run
// clean — which is what lets a test assert "composed extraction degraded
// to flat and completed".
//
// Firing is visible through obs: the `inject.fired` / `inject.fired.<site>`
// counters bump and, when tracing is enabled, an `inject.fire` span with a
// `site` attribute lands in the trace.
//
// Documented sites (see DESIGN.md "Failure semantics"):
//   cli.load         after sources are loaded, before elaboration
//   elab.build_tree  per elaborated instance node
//   extract.expand   per constraint-query expansion
//   synth.instance   per instance wired during synthesis
//   optimize.pass    per optimizer rebuild pass
//   transform.build  at the start of transformed-module construction
//   atpg.podem       per deterministic PODEM call
//   atpg.ckpt.write  per checkpoint record append (the fault is latched by
//                    the writer, never thrown through the commit pipeline:
//                    the run stops with status Failed and the journal keeps
//                    its committed prefix — the crash-resume test hook)
//   atpg.ckpt.load   at checkpoint load during --resume (refused with the
//                    named "ckpt.load_failed" diagnostic)
//   campaign.shard_start         at the start of every campaign shard; the
//                    supervisor contains the crash, classifies the shard
//                    "crashed" and the rest of the campaign proceeds
//   campaign.shard_start.<path>  same point, but scoped to the shard whose
//                    MUT path is <path> — a deterministic crash victim at
//                    any --jobs value (the generic site's nth counter is
//                    racy across parallel shards)
//   campaign.aggregate           before the campaign report is assembled
//                    (campaign classified failed; shard results kept)
//   campaign.ckpt_write          per campaign-journal record append (latched
//                    by the campaign writer like atpg.ckpt.write: the
//                    campaign stops with status Failed and the journal
//                    keeps its committed prefix)
//
// Thread safety: hit() may be reached from parallel ATPG workers. The hit
// counter is atomic and firing disarms via an atomic exchange, so exactly
// one thread throws. configure()/disarm() are test setup and must not run
// concurrently with hit(). Note that under parallelism the *site* that
// takes the nth hit is deterministic, but which worker's fault it lands on
// is not — tests that depend on the victim fault pin the engine to one job.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace factor::obs {

class FaultInjector {
  public:
    /// Process-global injector; parses FACTOR_INJECT_FAULT on first use.
    [[nodiscard]] static FaultInjector& global();

    /// Arm programmatically (tests). `nth` is 1-based.
    void configure(std::string site, uint64_t nth = 1);
    void disarm();
    [[nodiscard]] bool armed() const {
        return armed_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] const std::string& site() const { return site_; }

    /// Count a hit at `site`; throws util::FactorError when this is the
    /// armed site's nth hit. No-op (one branch) when disarmed.
    void hit(const char* site);

  private:
    FaultInjector();

    std::atomic<bool> armed_{false};
    std::string site_;
    uint64_t nth_ = 1;
    std::atomic<uint64_t> hits_{0};
};

/// An injection point: cheap when the injector is disarmed.
inline void inject_point(const char* site) {
    FaultInjector& inj = FaultInjector::global();
    if (inj.armed()) inj.hit(site);
}

/// Injection point with a runtime-built site name (e.g. the per-shard
/// "campaign.shard_start.<path>" sites). The site string is only built by
/// callers when the injector is armed, so the disarmed cost stays one load.
inline void inject_point(const std::string& site) {
    FaultInjector& inj = FaultInjector::global();
    if (inj.armed()) inj.hit(site.c_str());
}

} // namespace factor::obs
