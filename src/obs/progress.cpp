#include "obs/progress.hpp"

#include <chrono>
#include <cstdio>

namespace factor::obs {

namespace {

[[nodiscard]] int64_t now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

thread_local std::string t_shard_label; // NOLINT(cert-err58-cpp)

} // namespace

Progress& Progress::global() {
    static Progress p;
    return p;
}

void Progress::start(std::string sink, double interval_s) {
    std::lock_guard<std::mutex> lock(mu_);
    if (file_.is_open()) file_.close();
    sink_ = std::move(sink);
    buffer_.clear();
    if (!sink_.empty() && sink_ != "stderr") {
        file_.open(sink_, std::ios::out | std::ios::trunc);
    }
    if (interval_s < 0.0) interval_s = 0.0;
    interval_ns_.store(static_cast<int64_t>(interval_s * 1e9),
                       std::memory_order_relaxed);
    last_emit_ns_.store(0, std::memory_order_relaxed);
    events_.store(0, std::memory_order_relaxed);
    enabled_.store(true, std::memory_order_relaxed);
}

std::string Progress::stop() {
    enabled_.store(false, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    if (file_.is_open()) file_.close();
    std::string out;
    out.swap(buffer_);
    sink_.clear();
    return out;
}

bool Progress::due() const {
    if (!enabled_.load(std::memory_order_relaxed)) return false;
    int64_t last = last_emit_ns_.load(std::memory_order_relaxed);
    if (last == 0) return true; // nothing emitted yet
    int64_t interval = interval_ns_.load(std::memory_order_relaxed);
    return now_ns() - last >= interval;
}

void Progress::tick(const ProgressSnapshot& s) {
    if (!due()) return;
    emit(s, /*final_event=*/false);
}

void Progress::emit_final(const ProgressSnapshot& s) {
    if (!enabled_.load(std::memory_order_relaxed)) return;
    emit(s, /*final_event=*/true);
}

std::string Progress::set_shard_label(std::string label) {
    std::string prev = std::move(t_shard_label);
    t_shard_label = std::move(label);
    return prev;
}

const std::string& Progress::shard_label() { return t_shard_label; }

void Progress::emit(const ProgressSnapshot& s, bool final_event) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!enabled_.load(std::memory_order_relaxed)) return;
    uint64_t seq = events_.fetch_add(1, std::memory_order_relaxed) + 1;
    // Engine snapshots know nothing about campaigns; stamp them with the
    // emitting thread's shard label so per-shard heartbeats stay
    // attributable. The event line stays exactly progress_doc()'s JSON.
    const ProgressSnapshot* snap = &s;
    ProgressSnapshot labeled;
    if (s.shard.empty() && !t_shard_label.empty()) {
        labeled = s;
        labeled.shard = t_shard_label;
        snap = &labeled;
    }
    std::string line = progress_doc(*snap, seq, final_event).to_json();
    line += '\n';
    buffer_ += line;
    if (sink_ == "stderr") {
        std::fwrite(line.data(), 1, line.size(), stderr);
        std::fflush(stderr);
    } else if (file_.is_open()) {
        file_ << line;
        file_.flush(); // per-event flush: the file must be live-tailable
    }
    last_emit_ns_.store(now_ns(), std::memory_order_relaxed);
    Registry::global().counter("progress.events").add();
}

Doc progress_doc(const ProgressSnapshot& s, uint64_t seq, bool final_event) {
    Doc d;
    d.add("schema", std::string("factor.progress.v1"));
    d.add("seq", seq);
    d.add("phase", std::string(s.phase));
    if (!s.shard.empty()) d.add("shard", s.shard);
    if (s.shards_total > 0) {
        d.add("shards_done", s.shards_done);
        d.add("shards_total", s.shards_total);
    }
    d.add("attempt", s.attempt);
    d.add("elapsed_seconds", s.elapsed_seconds);
    d.add("faults_total", s.faults_total);
    d.add("faults_done", s.faults_done);
    d.add("detected", s.detected);
    d.add("untestable", s.untestable);
    d.add("aborted", s.aborted);
    d.add("redundant", s.redundant);
    d.add("coverage_percent", s.coverage_percent);
    d.add("vectors", s.vectors);
    d.add("random_sequences", s.random_sequences);
    d.add("threads", s.threads);
    d.add("pool_tasks", s.pool_tasks);
    d.add("pool_steals", s.pool_steals);
    d.add("pool_idle_ns", s.pool_idle_ns);
    // Pool utilization: busy share of total executor-time so far. Only
    // meaningful once some wall time has accrued.
    if (s.elapsed_seconds > 0.0 && s.threads > 0) {
        double total_ns =
            s.elapsed_seconds * 1e9 * static_cast<double>(s.threads);
        double busy = total_ns - static_cast<double>(s.pool_idle_ns);
        if (busy < 0.0) busy = 0.0;
        double util = 100.0 * busy / total_ns;
        if (util > 100.0) util = 100.0;
        d.add("pool_utilization_percent", util);
    }
    if (s.budget_remaining_seconds >= 0.0) {
        d.add("budget_remaining_seconds", s.budget_remaining_seconds);
    }
    if (s.has_work_remaining) d.add("work_remaining", s.work_remaining);
    // ETA: naive linear extrapolation from cross-attempt throughput.
    if (!final_event && s.faults_done > 0 && s.elapsed_seconds > 0.0 &&
        s.faults_total >= s.faults_done) {
        double rate =
            static_cast<double>(s.faults_done) / s.elapsed_seconds;
        double eta =
            static_cast<double>(s.faults_total - s.faults_done) / rate;
        d.add("eta_seconds", eta);
    }
    d.add("final", final_event);
    return d;
}

} // namespace factor::obs
