#include "obs/obs.hpp"

#include "util/journal.hpp"

#include <bit>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <thread>

namespace factor::obs {

// --------------------------------------------------------------------- JSON

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string json_number(double v) {
    if (!std::isfinite(v)) return "0";
    // Integral doubles print without a fraction; everything else with
    // enough digits to round-trip values the flow actually produces.
    if (v == std::floor(v) && std::abs(v) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", v);
        return buf;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

namespace {

/// Recursive-descent JSON syntax checker over a string_view.
class JsonChecker {
  public:
    explicit JsonChecker(std::string_view t) : t_(t) {}

    bool check() {
        skip_ws();
        if (!value()) return false;
        skip_ws();
        return pos_ == t_.size();
    }

  private:
    [[nodiscard]] bool eof() const { return pos_ >= t_.size(); }
    [[nodiscard]] char peek() const { return t_[pos_]; }
    bool consume(char c) {
        if (eof() || t_[pos_] != c) return false;
        ++pos_;
        return true;
    }
    void skip_ws() {
        while (!eof() && (t_[pos_] == ' ' || t_[pos_] == '\t' ||
                          t_[pos_] == '\n' || t_[pos_] == '\r')) {
            ++pos_;
        }
    }
    bool literal(std::string_view word) {
        if (t_.substr(pos_, word.size()) != word) return false;
        pos_ += word.size();
        return true;
    }

    bool string() {
        if (!consume('"')) return false;
        while (!eof()) {
            char c = t_[pos_++];
            if (c == '"') return true;
            if (c == '\\') {
                if (eof()) return false;
                char e = t_[pos_++];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        if (eof() || !std::isxdigit(
                                         static_cast<unsigned char>(t_[pos_]))) {
                            return false;
                        }
                        ++pos_;
                    }
                } else if (std::string_view("\"\\/bfnrt").find(e) ==
                           std::string_view::npos) {
                    return false;
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                return false;
            }
        }
        return false;
    }

    bool number() {
        size_t start = pos_;
        consume('-');
        if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
            return false;
        }
        while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
            ++pos_;
        }
        if (!eof() && peek() == '.') {
            ++pos_;
            if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
                return false;
            }
            while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
                ++pos_;
            }
        }
        if (!eof() && (peek() == 'e' || peek() == 'E')) {
            ++pos_;
            if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
            if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
                return false;
            }
            while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
                ++pos_;
            }
        }
        return pos_ > start;
    }

    bool value() {
        if (++depth_ > 256) return false; // cycle/stack guard
        bool ok = value_inner();
        --depth_;
        return ok;
    }

    bool value_inner() {
        skip_ws();
        if (eof()) return false;
        switch (peek()) {
        case '{': {
            ++pos_;
            skip_ws();
            if (consume('}')) return true;
            while (true) {
                skip_ws();
                if (!string()) return false;
                skip_ws();
                if (!consume(':')) return false;
                if (!value()) return false;
                skip_ws();
                if (consume('}')) return true;
                if (!consume(',')) return false;
            }
        }
        case '[': {
            ++pos_;
            skip_ws();
            if (consume(']')) return true;
            while (true) {
                if (!value()) return false;
                skip_ws();
                if (consume(']')) return true;
                if (!consume(',')) return false;
            }
        }
        case '"': return string();
        case 't': return literal("true");
        case 'f': return literal("false");
        case 'n': return literal("null");
        default: return number();
        }
    }

    std::string_view t_;
    size_t pos_ = 0;
    int depth_ = 0;
};

} // namespace

bool json_valid(std::string_view text) { return JsonChecker(text).check(); }

// ---------------------------------------------------- metric instruments

size_t Histogram::bucket_of(uint64_t v) {
    return v == 0 ? 0 : static_cast<size_t>(std::bit_width(v));
}

void Histogram::record(uint64_t v) {
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    uint64_t prev = max_.load(std::memory_order_relaxed);
    while (prev < v &&
           !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
    }
}

void Histogram::reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
}

// ------------------------------------------------------------------ registry

Registry& Registry::global() {
    static Registry instance;
    return instance;
}

Counter& Registry::counter(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    return counters_[name];
}

Gauge& Registry::gauge(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    return gauges_[name];
}

Histogram& Registry::histogram(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    return histograms_[name];
}

void Registry::reset() {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [_, c] : counters_) c.reset();
    for (auto& [_, g] : gauges_) g.reset();
    for (auto& [_, h] : histograms_) h.reset();
}

std::string Registry::to_json() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::ostringstream os;
    os << "{\"counters\":{";
    bool first = true;
    for (const auto& [name, c] : counters_) {
        if (!first) os << ',';
        first = false;
        os << '"' << json_escape(name) << "\":" << c.value();
    }
    os << "},\"gauges\":{";
    first = true;
    for (const auto& [name, g] : gauges_) {
        if (!first) os << ',';
        first = false;
        os << '"' << json_escape(name) << "\":" << json_number(g.value());
    }
    os << "},\"histograms\":{";
    first = true;
    for (const auto& [name, h] : histograms_) {
        if (!first) os << ',';
        first = false;
        os << '"' << json_escape(name) << "\":{\"count\":" << h.count()
           << ",\"sum\":" << h.sum() << ",\"max\":" << h.max()
           << ",\"buckets\":{";
        bool bfirst = true;
        for (size_t i = 0; i < Histogram::kBuckets; ++i) {
            uint64_t n = h.bucket(i);
            if (n == 0) continue;
            if (!bfirst) os << ',';
            bfirst = false;
            os << '"' << i << "\":" << n;
        }
        os << "}}";
    }
    os << "}}";
    return os.str();
}

std::string Registry::summary() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::ostringstream os;
    for (const auto& [name, c] : counters_) {
        os << name << " = " << c.value() << '\n';
    }
    for (const auto& [name, g] : gauges_) {
        os << name << " = " << json_number(g.value()) << '\n';
    }
    for (const auto& [name, h] : histograms_) {
        os << name << " = count " << h.count() << ", sum " << h.sum()
           << ", max " << h.max() << '\n';
    }
    return os.str();
}

// ------------------------------------------------------------------- tracer

namespace {

thread_local uint32_t t_span_depth = 0;

uint64_t thread_id_hash() {
    return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

int64_t steady_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

std::string TraceEvent::to_json() const {
    std::ostringstream os;
    os << "{\"name\":\"" << json_escape(name) << "\",\"start_us\":" << start_us
       << ",\"dur_us\":" << dur_us << ",\"depth\":" << depth
       << ",\"tid\":" << tid;
    if (!args.empty()) os << ',' << args;
    os << '}';
    return os.str();
}

Tracer& Tracer::global() {
    static Tracer instance;
    return instance;
}

void Tracer::start(std::string path) {
    std::lock_guard<std::mutex> lock(mu_);
    path_ = std::move(path);
    events_.clear();
    epoch_ns_.store(steady_ns(), std::memory_order_relaxed);
    enabled_.store(true, std::memory_order_relaxed);
}

std::string Tracer::stop() {
    enabled_.store(false, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    std::ostringstream os;
    for (const TraceEvent& ev : events_) os << ev.to_json() << '\n';
    std::string ndjson = os.str();
    if (!path_.empty()) {
        // Atomic publish: a crash mid-write (or a concurrent reader) must
        // never observe a torn trace file.
        (void)util::atomic_publish(path_, ndjson);
    }
    events_.clear();
    path_.clear();
    return ndjson;
}

size_t Tracer::event_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_.size();
}

void Tracer::record(TraceEvent ev) {
    if (!enabled()) return;
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(std::move(ev));
}

uint64_t Tracer::now_us() const {
    int64_t delta = steady_ns() - epoch_ns_.load(std::memory_order_relaxed);
    return delta <= 0 ? 0 : static_cast<uint64_t>(delta) / 1000;
}

Span::Span(const char* name) {
    Tracer& t = Tracer::global();
    if (!t.enabled()) return;
    active_ = true;
    name_ = name;
    start_us_ = t.now_us();
    depth_ = t_span_depth++;
}

Span::~Span() {
    if (!active_) return;
    --t_span_depth;
    Tracer& t = Tracer::global();
    TraceEvent ev;
    ev.name = name_;
    ev.args = std::move(args_);
    ev.start_us = start_us_;
    uint64_t end = t.now_us();
    ev.dur_us = end > start_us_ ? end - start_us_ : 0;
    ev.depth = depth_;
    ev.tid = thread_id_hash();
    t.record(std::move(ev));
}

void Span::add_raw(const char* key, const std::string& rendered) {
    if (!active_) return;
    if (!args_.empty()) args_ += ',';
    args_ += '"';
    args_ += json_escape(key);
    args_ += "\":";
    args_ += rendered;
}

void Span::attr(const char* key, const std::string& value) {
    add_raw(key, '"' + json_escape(value) + '"');
}
void Span::attr(const char* key, const char* value) {
    attr(key, std::string(value));
}
void Span::attr(const char* key, uint64_t value) {
    add_raw(key, std::to_string(value));
}
void Span::attr(const char* key, int value) {
    add_raw(key, std::to_string(value));
}
void Span::attr(const char* key, double value) {
    add_raw(key, json_number(value));
}

// ---------------------------------------------------------------------- doc

Doc& Doc::add(std::string name, uint64_t v) {
    Entry e;
    e.name = std::move(name);
    e.kind = Kind::U64;
    e.u = v;
    entries_.push_back(std::move(e));
    return *this;
}
Doc& Doc::add(std::string name, int v) {
    return add(std::move(name), static_cast<uint64_t>(v < 0 ? 0 : v));
}
Doc& Doc::add(std::string name, double v) {
    Entry e;
    e.name = std::move(name);
    e.kind = Kind::F64;
    e.d = v;
    entries_.push_back(std::move(e));
    return *this;
}
Doc& Doc::add(std::string name, bool v) {
    Entry e;
    e.name = std::move(name);
    e.kind = Kind::Bool;
    e.b = v;
    entries_.push_back(std::move(e));
    return *this;
}
Doc& Doc::add(std::string name, std::string v) {
    Entry e;
    e.name = std::move(name);
    e.kind = Kind::Str;
    e.s = std::move(v);
    entries_.push_back(std::move(e));
    return *this;
}

const Doc::Entry* Doc::find(const std::string& name) const {
    for (const Entry& e : entries_) {
        if (e.name == name) return &e;
    }
    return nullptr;
}

bool Doc::has(const std::string& name) const { return find(name) != nullptr; }

double Doc::number(const std::string& name) const {
    const Entry* e = find(name);
    if (e == nullptr) return 0.0;
    switch (e->kind) {
    case Kind::U64: return static_cast<double>(e->u);
    case Kind::F64: return e->d;
    case Kind::Bool: return e->b ? 1.0 : 0.0;
    case Kind::Str: return 0.0;
    }
    return 0.0;
}

std::string Doc::to_json() const {
    std::ostringstream os;
    os << '{';
    bool first = true;
    for (const Entry& e : entries_) {
        if (!first) os << ',';
        first = false;
        os << '"' << json_escape(e.name) << "\":";
        switch (e.kind) {
        case Kind::U64: os << e.u; break;
        case Kind::F64: os << json_number(e.d); break;
        case Kind::Bool: os << (e.b ? "true" : "false"); break;
        case Kind::Str: os << '"' << json_escape(e.s) << '"'; break;
        }
    }
    os << '}';
    return os.str();
}

namespace {

[[nodiscard]] bool ends_with(const std::string& s, std::string_view suffix) {
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string fixed_str(double v, int decimals) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

} // namespace

std::string Doc::to_text() const {
    std::ostringstream os;
    bool first = true;
    for (const Entry& e : entries_) {
        std::string piece;
        if (e.kind == Kind::Bool) {
            if (!e.b) continue;
            std::string words = e.name;
            for (char& c : words) {
                if (c == '_') c = ' ';
            }
            piece = "(" + words + ")";
        } else if (e.kind == Kind::F64 && ends_with(e.name, "_percent")) {
            piece = e.name.substr(0, e.name.size() - 8) + "=" +
                    fixed_str(e.d, 2) + "%";
        } else if (e.kind == Kind::F64 && ends_with(e.name, "_seconds")) {
            piece = e.name.substr(0, e.name.size() - 8) + "=" +
                    fixed_str(e.d, 3) + "s";
        } else if (e.kind == Kind::F64) {
            piece = e.name + "=" + json_number(e.d);
        } else if (e.kind == Kind::U64) {
            piece = e.name + "=" + std::to_string(e.u);
        } else {
            piece = e.name + "=" + e.s;
        }
        if (!first) os << ' ';
        first = false;
        os << piece;
    }
    return os.str();
}

std::string Doc::cell(const std::string& name, int decimals) const {
    const Entry* e = find(name);
    if (e == nullptr) return "-";
    switch (e->kind) {
    case Kind::U64: return std::to_string(e->u);
    case Kind::F64: return fixed_str(e->d, decimals);
    case Kind::Bool: return e->b ? "1" : "0";
    case Kind::Str: return e->s;
    }
    return "-";
}

} // namespace factor::obs
