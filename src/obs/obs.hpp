// Observability: flow-wide tracing and metrics for the FACTOR pipeline.
//
// Three pieces, all process-global so any layer can report without plumbing
// handles through the whole call tree:
//
//  * Registry — named counters, gauges and log-2-bucket histograms. Always
//    on: instruments are cheap relaxed atomics and are only touched at
//    coarse granularity (per batch, per fault, per pass). Lookup by name
//    takes a mutex; hot paths cache the returned reference (references are
//    stable for the process lifetime — reset() zeroes values, it never
//    erases instruments).
//
//  * Tracer + Span — hierarchical wall-clock spans emitted as NDJSON trace
//    events (one JSON object per line). Disabled by default; a disabled
//    Span costs one relaxed atomic load and nothing else. Enabled spans
//    buffer in memory and are flushed by Tracer::stop().
//
//  * Doc — an ordered metric document that renders the SAME values as
//    human-readable text (EngineResult::summary(), bench tables) and as a
//    JSON object (--stats-json, BENCH_results.json), so the two outputs
//    cannot drift.
//
// Naming conventions (see DESIGN.md "Observability" for the full catalog):
// metric names are dot-separated, layer first ("atpg.podem.backtracks",
// "extract.cache.hits"). Doc entry names ending in "_percent" render as
// "name=12.34%", "_seconds" as "name=0.123s"; booleans render as
// "(name with spaces)" when true and vanish when false.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace factor::obs {

// --------------------------------------------------------------------- JSON

/// Escape `s` for inclusion inside a JSON string literal (no quotes added).
[[nodiscard]] std::string json_escape(const std::string& s);

/// Render a finite double as a JSON number (NaN/Inf degrade to 0).
[[nodiscard]] std::string json_number(double v);

/// Minimal JSON syntax validator: true iff `text` is one complete JSON
/// value (object/array/string/number/bool/null). Used by the tests to check
/// every sink's output and cheap enough to run on whole stats documents.
[[nodiscard]] bool json_valid(std::string_view text);

// ---------------------------------------------------- metric instruments

class Counter {
  public:
    void add(uint64_t delta = 1) {
        v_.fetch_add(delta, std::memory_order_relaxed);
    }
    [[nodiscard]] uint64_t value() const {
        return v_.load(std::memory_order_relaxed);
    }
    void reset() { v_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> v_{0};
};

class Gauge {
  public:
    void set(double v) { v_.store(v, std::memory_order_relaxed); }
    [[nodiscard]] double value() const {
        return v_.load(std::memory_order_relaxed);
    }
    void reset() { v_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> v_{0.0};
};

/// Log-2 bucketed histogram of uint64 samples. Bucket 0 counts the value 0;
/// bucket i (1..64) counts values v with bit_width(v) == i, i.e. the range
/// [2^(i-1), 2^i - 1]. 65 buckets cover the whole uint64 domain, so there
/// is no overflow bucket and no configuration.
class Histogram {
  public:
    static constexpr size_t kBuckets = 65;

    void record(uint64_t v);

    [[nodiscard]] uint64_t count() const {
        return count_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] uint64_t sum() const {
        return sum_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] uint64_t max() const {
        return max_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] uint64_t bucket(size_t i) const {
        return buckets_[i].load(std::memory_order_relaxed);
    }
    /// Bucket index a value lands in (0 for 0, else bit_width).
    [[nodiscard]] static size_t bucket_of(uint64_t v);

    void reset();

  private:
    std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> sum_{0};
    std::atomic<uint64_t> max_{0};
};

// ------------------------------------------------------------------ registry

class Registry {
  public:
    /// The process-wide registry used by all instrumented layers.
    [[nodiscard]] static Registry& global();

    /// Find-or-create by name. Returned references stay valid for the
    /// registry's lifetime (reset() zeroes, never erases).
    [[nodiscard]] Counter& counter(const std::string& name);
    [[nodiscard]] Gauge& gauge(const std::string& name);
    [[nodiscard]] Histogram& histogram(const std::string& name);

    /// Zero every instrument (identities and cached references survive).
    void reset();

    /// Stable JSON object:
    /// {"counters":{...},"gauges":{...},
    ///  "histograms":{name:{"count":..,"sum":..,"max":..,"buckets":{...}}}}
    /// Zero-count instruments are included so a run that recorded nothing
    /// is distinguishable from a metric that was never registered.
    [[nodiscard]] std::string to_json() const;

    /// Human-readable dump, one "name = value" line per instrument, sorted.
    [[nodiscard]] std::string summary() const;

  private:
    mutable std::mutex mu_;
    // std::map: node-based, so references handed out stay stable.
    std::map<std::string, Counter> counters_;
    std::map<std::string, Gauge> gauges_;
    std::map<std::string, Histogram> histograms_;
};

/// Shorthands for the global registry.
[[nodiscard]] inline Counter& counter(const std::string& name) {
    return Registry::global().counter(name);
}
[[nodiscard]] inline Gauge& gauge(const std::string& name) {
    return Registry::global().gauge(name);
}
[[nodiscard]] inline Histogram& histogram(const std::string& name) {
    return Registry::global().histogram(name);
}

// ------------------------------------------------------------------- tracer

/// One completed span, ready for NDJSON serialization.
struct TraceEvent {
    std::string name;
    std::string args;  // preformatted JSON members ("" or "\"k\":v,...")
    uint64_t start_us = 0;
    uint64_t dur_us = 0;
    uint32_t depth = 0;  // per-thread nesting depth at span open
    uint64_t tid = 0;    // hashed thread id

    [[nodiscard]] std::string to_json() const;
};

class Tracer {
  public:
    [[nodiscard]] static Tracer& global();

    /// Enable tracing. Events buffer in memory; stop() writes them as
    /// NDJSON to `path` (empty path: buffer only — the tests use this).
    void start(std::string path);

    /// Disable tracing, flush the NDJSON text to the start() path if one
    /// was given, clear the buffer, and return the NDJSON text.
    std::string stop();

    [[nodiscard]] bool enabled() const {
        return enabled_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] size_t event_count() const;

    /// Buffer one event (dropped when disabled; spans racing stop() may
    /// land here after the flush and are cleared by the next start()).
    void record(TraceEvent ev);

    /// Microseconds since the current trace epoch (start() time).
    [[nodiscard]] uint64_t now_us() const;

  private:
    std::atomic<bool> enabled_{false};
    mutable std::mutex mu_;
    std::string path_;
    std::vector<TraceEvent> events_;
    std::atomic<int64_t> epoch_ns_{0};
};

/// RAII trace span. Construction snapshots the clock and bumps the
/// per-thread depth; destruction emits one TraceEvent. When the tracer is
/// disabled the whole object is a single relaxed atomic load.
class Span {
  public:
    /// `name` must outlive the span (string literals in practice).
    explicit Span(const char* name);
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span();

    /// Attach a JSON attribute to the span (no-ops when inactive).
    void attr(const char* key, const std::string& value);
    void attr(const char* key, const char* value);
    void attr(const char* key, uint64_t value);
    void attr(const char* key, int value);
    void attr(const char* key, double value);

    [[nodiscard]] bool active() const { return active_; }

  private:
    void add_raw(const char* key, const std::string& rendered);

    bool active_ = false;
    const char* name_ = nullptr;
    uint64_t start_us_ = 0;
    uint32_t depth_ = 0;
    std::string args_;
};

// ---------------------------------------------------------------------- doc

/// Ordered metric document: one flat list of named typed values that can
/// render as text ("k=v k=v ..."), as a JSON object, or cell-by-cell for
/// the bench tables. The single source for every human/machine output pair.
class Doc {
  public:
    Doc& add(std::string name, uint64_t v);
    Doc& add(std::string name, int v);
    Doc& add(std::string name, double v);
    Doc& add(std::string name, bool v);
    Doc& add(std::string name, std::string v);

    /// JSON object over all entries, in insertion order.
    [[nodiscard]] std::string to_json() const;

    /// Text rendering with the suffix conventions described in the header
    /// comment; entries joined by single spaces.
    [[nodiscard]] std::string to_text() const;

    /// Format one entry's value for a table cell: integers verbatim,
    /// doubles with `decimals` fraction digits, bools as 0/1, strings
    /// verbatim. Missing entries render as "-" so a broken table is
    /// visible instead of silently misaligned.
    [[nodiscard]] std::string cell(const std::string& name,
                                   int decimals = 2) const;

    /// Numeric value of an entry (0 when missing or non-numeric).
    [[nodiscard]] double number(const std::string& name) const;

    [[nodiscard]] bool has(const std::string& name) const;
    [[nodiscard]] size_t size() const { return entries_.size(); }

  private:
    enum class Kind { U64, F64, Bool, Str };
    struct Entry {
        std::string name;
        Kind kind;
        uint64_t u = 0;
        double d = 0.0;
        bool b = false;
        std::string s;
    };
    [[nodiscard]] const Entry* find(const std::string& name) const;

    std::vector<Entry> entries_;
};

} // namespace factor::obs
