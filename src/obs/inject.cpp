#include "obs/inject.hpp"

#include "obs/obs.hpp"
#include "util/diagnostics.hpp"

#include <cstdlib>

namespace factor::obs {

FaultInjector& FaultInjector::global() {
    static FaultInjector instance;
    return instance;
}

FaultInjector::FaultInjector() {
    const char* spec = std::getenv("FACTOR_INJECT_FAULT");
    if (spec == nullptr || *spec == '\0') return;
    std::string s(spec);
    uint64_t nth = 1;
    auto colon = s.rfind(':');
    if (colon != std::string::npos && colon + 1 < s.size()) {
        char* end = nullptr;
        unsigned long long parsed = std::strtoull(s.c_str() + colon + 1, &end, 10);
        if (end != nullptr && *end == '\0' && parsed > 0) {
            nth = parsed;
            s = s.substr(0, colon);
        }
    }
    configure(std::move(s), nth);
}

void FaultInjector::configure(std::string site, uint64_t nth) {
    site_ = std::move(site);
    nth_ = nth > 0 ? nth : 1;
    hits_ = 0;
    armed_ = !site_.empty();
}

void FaultInjector::disarm() {
    armed_ = false;
    hits_ = 0;
}

void FaultInjector::hit(const char* site) {
    if (!armed_ || site_ != site) return;
    if (++hits_ < nth_) return;
    armed_ = false; // fire once: retry/fallback paths run clean
    counter("inject.fired").add(1);
    counter("inject.fired." + site_).add(1);
    {
        Span span("inject.fire");
        span.attr("site", site_.c_str());
        span.attr("hit", nth_);
    }
    throw util::FactorError("injected fault at '" + site_ + "' (hit " +
                            std::to_string(nth_) + ")");
}

} // namespace factor::obs
