#include "obs/inject.hpp"

#include "obs/obs.hpp"
#include "util/diagnostics.hpp"

#include <cstdlib>

namespace factor::obs {

FaultInjector& FaultInjector::global() {
    static FaultInjector instance;
    return instance;
}

FaultInjector::FaultInjector() {
    const char* spec = std::getenv("FACTOR_INJECT_FAULT");
    if (spec == nullptr || *spec == '\0') return;
    std::string s(spec);
    uint64_t nth = 1;
    auto colon = s.rfind(':');
    if (colon != std::string::npos && colon + 1 < s.size()) {
        char* end = nullptr;
        unsigned long long parsed = std::strtoull(s.c_str() + colon + 1, &end, 10);
        if (end != nullptr && *end == '\0' && parsed > 0) {
            nth = parsed;
            s = s.substr(0, colon);
        }
    }
    configure(std::move(s), nth);
}

void FaultInjector::configure(std::string site, uint64_t nth) {
    site_ = std::move(site);
    nth_ = nth > 0 ? nth : 1;
    hits_.store(0, std::memory_order_relaxed);
    armed_.store(!site_.empty(), std::memory_order_relaxed);
}

void FaultInjector::disarm() {
    armed_.store(false, std::memory_order_relaxed);
    hits_.store(0, std::memory_order_relaxed);
}

void FaultInjector::hit(const char* site) {
    if (!armed() || site_ != site) return;
    if (hits_.fetch_add(1, std::memory_order_relaxed) + 1 < nth_) return;
    // Fire once: retry/fallback paths run clean. The exchange elects a
    // single firing thread when parallel workers race past nth_.
    if (!armed_.exchange(false, std::memory_order_relaxed)) return;
    counter("inject.fired").add(1);
    counter("inject.fired." + site_).add(1);
    {
        Span span("inject.fire");
        span.attr("site", site_.c_str());
        span.attr("hit", nth_);
    }
    throw util::FactorError("injected fault at '" + site_ + "' (hit " +
                            std::to_string(nth_) + ")");
}

} // namespace factor::obs
