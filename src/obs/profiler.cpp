#include "obs/profiler.hpp"

#include "obs/obs.hpp"

#include <algorithm>

namespace factor::obs {

Profiler& Profiler::global() {
    static Profiler p;
    return p;
}

void Profiler::reset() {
    std::lock_guard<std::mutex> lock(mu_);
    phases_.clear();
    workers_.clear();
    top_.clear();
}

void Profiler::phase_add(const std::string& name, uint64_t ns) {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& p : phases_) {
        if (p.name == name) {
            p.ns += ns;
            ++p.calls;
            return;
        }
    }
    phases_.push_back({name, ns, 1});
}

void Profiler::worker_add(uint64_t worker, uint64_t busy_ns, uint64_t claimed,
                          uint64_t generated) {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& w : workers_) {
        if (w.worker == worker) {
            w.busy_ns += busy_ns;
            w.claimed += claimed;
            w.generated += generated;
            return;
        }
    }
    workers_.push_back({worker, busy_ns, claimed, generated});
}

void Profiler::record_fault(const std::string& desc, uint64_t podem_ns,
                            uint64_t backtracks, const char* outcome) {
    if (!armed()) return;
    std::lock_guard<std::mutex> lock(mu_);
    // top_ stays sorted descending by podem_ns; cheapest possible check
    // first so the common (cold fault, full table) case is one compare.
    if (top_.size() >= kTopFaults && podem_ns <= top_.back().podem_ns) {
        return;
    }
    FaultCost fc{desc, podem_ns, backtracks, outcome};
    auto it = std::upper_bound(
        top_.begin(), top_.end(), fc,
        [](const FaultCost& a, const FaultCost& b) {
            return a.podem_ns > b.podem_ns;
        });
    top_.insert(it, std::move(fc));
    if (top_.size() > kTopFaults) top_.pop_back();
}

std::string Profiler::to_json(double total_seconds) const {
    std::lock_guard<std::mutex> lock(mu_);
    std::string out = "{\"schema\":\"factor.profile.v1\"";
    out += ",\"total_seconds\":" + json_number(total_seconds);

    out += ",\"phases\":[";
    bool first = true;
    for (const auto& p : phases_) {
        if (!first) out += ',';
        first = false;
        double secs = static_cast<double>(p.ns) / 1e9;
        out += "{\"name\":\"" + json_escape(p.name) + "\"";
        out += ",\"seconds\":" + json_number(secs);
        out += ",\"calls\":" + std::to_string(p.calls);
        if (total_seconds > 0.0) {
            out += ",\"percent\":" + json_number(100.0 * secs / total_seconds);
        }
        out += '}';
    }
    out += ']';

    auto workers = workers_;
    std::sort(workers.begin(), workers.end(),
              [](const WorkerCost& a, const WorkerCost& b) {
                  return a.worker < b.worker;
              });
    out += ",\"workers\":[";
    first = true;
    for (const auto& w : workers) {
        if (!first) out += ',';
        first = false;
        out += "{\"worker\":" + std::to_string(w.worker);
        out += ",\"busy_seconds\":" +
               json_number(static_cast<double>(w.busy_ns) / 1e9);
        out += ",\"claimed\":" + std::to_string(w.claimed);
        out += ",\"generated\":" + std::to_string(w.generated);
        out += '}';
    }
    out += ']';

    // The work counters the SIMD/event-driven push needs next to the time:
    // frames simulated, gate evaluations, PODEM effort.
    out += ",\"counters\":{";
    first = true;
    for (const char* name :
         {"fault_sim.good_frames", "fault_sim.faulty_frames",
          "fault_sim.gate_evals", "fault_sim.events_skipped",
          "fault_sim.run_and_drop", "fault_sim.faults_dropped",
          "atpg.podem.calls", "atpg.podem.tests", "atpg.podem.retries",
          "atpg.random.sequences"}) {
        if (!first) out += ',';
        first = false;
        out += "\"" + std::string(name) + "\":" +
               std::to_string(Registry::global().counter(name).value());
    }
    out += '}';

    out += ",\"hottest_faults\":[";
    first = true;
    for (const auto& f : top_) {
        if (!first) out += ',';
        first = false;
        out += "{\"fault\":\"" + json_escape(f.desc) + "\"";
        out += ",\"podem_seconds\":" +
               json_number(static_cast<double>(f.podem_ns) / 1e9);
        out += ",\"backtracks\":" + std::to_string(f.backtracks);
        out += ",\"outcome\":\"" + json_escape(f.outcome) + "\"";
        out += '}';
    }
    out += "]}";
    return out;
}

ProfScope::~ProfScope() {
    auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - start_)
                  .count();
    Profiler::global().phase_add(name_, static_cast<uint64_t>(ns));
}

} // namespace factor::obs
