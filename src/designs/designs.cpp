#include "designs/designs.hpp"

#include "rtl/parser.hpp"
#include "util/diagnostics.hpp"

namespace factor::designs {

const char* arm2z_source() {
    return R"V(
// arm2z: a 16-bit ARM2-flavoured processor used as the FACTOR evaluation
// vehicle. Module roster and embedding depths mirror the paper's Table 1.

// ---------------------------------------------------------------- arm_alu
// 13 control inputs; in arm_decode, 10 of them are driven from hard-coded
// values selected by the decoded ALU operation (the paper's 4.2 case).
module arm_alu (
  input [15:0] a,
  input [15:0] b,
  input cin,
  input ctl_and, ctl_or, ctl_xor, ctl_add, ctl_sub,
  input ctl_mova, ctl_movb, ctl_mvnb, ctl_bic,
  input inv_a, use_cin, flags_only, set_flags,
  output [15:0] result,
  output flag_n, flag_z, flag_c, flag_v,
  output wb_inhibit
);
  wire [15:0] opa = inv_a ? ~a : a;
  wire [15:0] opb = ctl_sub ? ~b : b;
  wire carry0 = ctl_sub ? 1'b1 : 1'b0;
  wire carry_in = use_cin ? cin : carry0;
  wire [16:0] sum = {1'b0, opa} + {1'b0, opb} + {16'b0, carry_in};

  wire [15:0] and_r = ctl_bic ? (opa & ~b) : (opa & opb);
  wire [15:0] or_r  = opa | opb;
  wire [15:0] xor_r = opa ^ opb;

  reg [15:0] res;
  always @(*) begin
    res = 16'h0;
    if (ctl_and) res = and_r;
    else if (ctl_bic) res = and_r;
    else if (ctl_or) res = or_r;
    else if (ctl_xor) res = xor_r;
    else if (ctl_add) res = sum[15:0];
    else if (ctl_sub) res = sum[15:0];
    else if (ctl_movb) res = b;
    else if (ctl_mvnb) res = ~b;
    else if (ctl_mova) res = opa;
  end

  assign result = res;
  assign flag_n = set_flags & res[15];
  assign flag_z = set_flags & (res == 16'h0);
  assign flag_c = set_flags & ((ctl_add | ctl_sub) & sum[16]);
  assign flag_v = set_flags & ((ctl_add | ctl_sub) &
                  ((opa[15] == opb[15]) & (sum[15] != opa[15])));
  assign wb_inhibit = flags_only;
endmodule

// ---------------------------------------------------------- regfile_struct
// The register file core: biggest module, embedded deepest (level 4).
module regfile_struct (
  input clk,
  input rst,
  input we,
  input [2:0] waddr,
  input [15:0] wdata,
  input [2:0] raddr_a,
  input [2:0] raddr_b,
  output [15:0] rdata_a,
  output [15:0] rdata_b
);
  reg [15:0] r0, r1, r2, r3, r4, r5, r6, r7;

  always @(posedge clk) begin
    if (rst) begin
      r0 <= 16'h0; r1 <= 16'h0; r2 <= 16'h0; r3 <= 16'h0;
      r4 <= 16'h0; r5 <= 16'h0; r6 <= 16'h0; r7 <= 16'h0;
    end
    else if (we) begin
      case (waddr)
        3'd0: r0 <= wdata;
        3'd1: r1 <= wdata;
        3'd2: r2 <= wdata;
        3'd3: r3 <= wdata;
        3'd4: r4 <= wdata;
        3'd5: r5 <= wdata;
        3'd6: r6 <= wdata;
        default: r7 <= wdata;
      endcase
    end
  end

  reg [15:0] sel_a;
  always @(*) begin
    case (raddr_a)
      3'd0: sel_a = r0;
      3'd1: sel_a = r1;
      3'd2: sel_a = r2;
      3'd3: sel_a = r3;
      3'd4: sel_a = r4;
      3'd5: sel_a = r5;
      3'd6: sel_a = r6;
      default: sel_a = r7;
    endcase
  end

  reg [15:0] sel_b;
  always @(*) begin
    case (raddr_b)
      3'd0: sel_b = r0;
      3'd1: sel_b = r1;
      3'd2: sel_b = r2;
      3'd3: sel_b = r3;
      3'd4: sel_b = r4;
      3'd5: sel_b = r5;
      3'd6: sel_b = r6;
      default: sel_b = r7;
    endcase
  end

  assign rdata_a = sel_a;
  assign rdata_b = sel_b;
endmodule

// ----------------------------------------------------------------- regbank
// Wrapper adding write-through bypass around the register file core.
module regbank (
  input clk,
  input rst,
  input we,
  input [2:0] waddr,
  input [15:0] wdata,
  input [2:0] raddr_a,
  input [2:0] raddr_b,
  output [15:0] rdata_a,
  output [15:0] rdata_b
);
  wire [15:0] core_a;
  wire [15:0] core_b;

  regfile_struct core (
    .clk(clk), .rst(rst), .we(we), .waddr(waddr), .wdata(wdata),
    .raddr_a(raddr_a), .raddr_b(raddr_b),
    .rdata_a(core_a), .rdata_b(core_b)
  );

  assign rdata_a = (we & (waddr == raddr_a)) ? wdata : core_a;
  assign rdata_b = (we & (waddr == raddr_b)) ? wdata : core_b;
endmodule

// --------------------------------------------------------------- arm_shift
module arm_shift (
  input [15:0] din,
  input [1:0] op,      // 0 LSL, 1 LSR, 2 ASR, 3 ROR
  input [3:0] amt,
  input bypass,
  output [15:0] dout,
  output shift_carry
);
  wire [15:0] lsl_r = din << amt;
  wire [15:0] lsr_r = din >> amt;
  wire [15:0] sign_mask = din[15] ? ~(16'hffff >> amt) : 16'h0;
  wire [15:0] asr_r = lsr_r | sign_mask;
  wire [15:0] ror_r = (din >> amt) | (din << (16 - {12'b0, amt}));

  reg [15:0] shifted;
  always @(*) begin
    case (op)
      2'd0: shifted = lsl_r;
      2'd1: shifted = lsr_r;
      2'd2: shifted = asr_r;
      default: shifted = ror_r;
    endcase
  end

  assign dout = bypass ? din : shifted;
  assign shift_carry = (amt != 4'd0) & (op == 2'd0 ? din[15] : din[0]);
endmodule

// ------------------------------------------------------------- arm_forward
// Forwarding / hazard detection unit (level 3, inside arm_decode).
module arm_forward (
  input ex_valid,
  input [2:0] ex_rd,
  input ex_is_load,
  input mem_valid,
  input [2:0] mem_rd,
  input [2:0] rn,
  input [2:0] rm,
  input rm_used,
  output [1:0] fwd_a,
  output [1:0] fwd_b,
  output stall
);
  wire hit_ex_a  = ex_valid & (ex_rd == rn);
  wire hit_mem_a = mem_valid & (mem_rd == rn);
  wire hit_ex_b  = ex_valid & (ex_rd == rm) & rm_used;
  wire hit_mem_b = mem_valid & (mem_rd == rm) & rm_used;

  assign fwd_a = hit_ex_a ? 2'd1 : (hit_mem_a ? 2'd2 : 2'd0);
  assign fwd_b = hit_ex_b ? 2'd1 : (hit_mem_b ? 2'd2 : 2'd0);
  assign stall = ex_is_load & ex_valid & ((ex_rd == rn) | ((ex_rd == rm) & rm_used));
endmodule

// ----------------------------------------------------------------- arm_exc
// Exception/interrupt unit (level 2).
module arm_exc (
  input clk,
  input rst,
  input irq,
  input fiq,
  input swi,
  input undef,
  input irq_mask,
  input fiq_mask,
  input ack,
  output exc_active,
  output [15:0] vector,
  output [1:0] exc_mode
);
  localparam MODE_NONE = 2'd0;
  localparam MODE_FIQ  = 2'd1;
  localparam MODE_IRQ  = 2'd2;
  localparam MODE_SWI  = 2'd3;

  reg [1:0] mode;
  reg undef_seen;

  always @(posedge clk) begin
    if (rst) begin
      mode <= MODE_NONE;
      undef_seen <= 1'b0;
    end
    else begin
      if (undef) undef_seen <= 1'b1;
      if (ack) mode <= MODE_NONE;
      else if (mode == MODE_NONE) begin
        if (fiq & ~fiq_mask) mode <= MODE_FIQ;
        else if (irq & ~irq_mask) mode <= MODE_IRQ;
        else if (swi | undef) mode <= MODE_SWI;
      end
    end
  end

  assign exc_active = mode != MODE_NONE;
  assign exc_mode = mode;
  assign vector = (mode == MODE_FIQ) ? 16'h001c :
                  (mode == MODE_IRQ) ? 16'h0018 :
                  (mode == MODE_SWI) ? (undef_seen ? 16'h0004 : 16'h0008) :
                  16'h0000;
endmodule

// --------------------------------------------------------------- arm_fetch
module arm_fetch (
  input clk,
  input rst,
  input stall,
  input take_branch,
  input [15:0] btarget,
  input exc,
  input [15:0] evector,
  output [15:0] pc,
  output [15:0] pc_plus
);
  reg [15:0] pc_r;
  wire [15:0] inc = pc_r + 16'd2;

  always @(posedge clk) begin
    if (rst) pc_r <= 16'h0;
    else if (~stall) begin
      if (exc) pc_r <= evector;
      else if (take_branch) pc_r <= btarget;
      else pc_r <= inc;
    end
  end

  assign pc = pc_r;
  assign pc_plus = inc;
endmodule

// -------------------------------------------------------------- arm_decode
// Instruction decode; contains the forwarding unit.
module arm_decode (
  input [15:0] instr,
  input ex_valid,
  input [2:0] ex_rd_in,
  input ex_is_load_in,
  input mem_valid,
  input [2:0] mem_rd_in,
  output [2:0] rd,
  output [2:0] rn,
  output [2:0] rm,
  output [15:0] imm,
  output use_imm,
  output is_load,
  output is_store,
  output is_branch,
  output [2:0] branch_cond,
  output [15:0] branch_off,
  output is_swi,
  output is_undef,
  output wb_en,
  output reg ctl_and, output reg ctl_or, output reg ctl_xor,
  output reg ctl_add, output reg ctl_sub,
  output reg ctl_mova, output reg ctl_movb, output reg ctl_mvnb,
  output reg ctl_bic,
  output reg inv_a, output reg use_cin, output reg flags_only,
  output set_flags,
  output [1:0] shift_op,
  output [3:0] shift_amt,
  output use_shift,
  output [1:0] fwd_a,
  output [1:0] fwd_b,
  output stall
);
  wire [2:0] opclass = instr[15:13];
  wire [3:0] alu_op = instr[12:9];

  wire is_alu_reg = opclass == 3'b000;
  wire is_alu_imm = opclass == 3'b001;
  wire is_alu = is_alu_reg | is_alu_imm;
  wire is_shift_cls = opclass == 3'b101;
  wire is_sys = opclass == 3'b110;

  assign is_load  = opclass == 3'b010;
  assign is_store = opclass == 3'b011;
  assign is_branch = opclass == 3'b100;
  assign is_swi = is_sys & (instr[12:10] == 3'b000);
  assign is_undef = is_sys & (instr[12:10] == 3'b111);

  assign rd = instr[8:6];
  assign rn = (is_alu_imm | is_load | is_store) ? instr[5:3] :
              (is_shift_cls ? instr[5:3] : instr[5:3]);
  assign rm = is_store ? instr[8:6] : instr[2:0];

  wire [15:0] imm6 = {{10{instr[5]}}, instr[5:0]};
  wire [15:0] imm3 = {13'b0, instr[2:0]};
  assign imm = is_alu_imm ? imm6 : imm3;
  assign use_imm = is_alu_imm | is_load | is_store;

  assign branch_cond = instr[12:10];
  assign branch_off = {{6{instr[9]}}, instr[9:0]};

  assign wb_en = is_alu | is_load | is_shift_cls;
  assign set_flags = is_alu;

  assign shift_op = instr[12:11];
  assign shift_amt = {1'b0, instr[2:0]};
  assign use_shift = is_shift_cls;

  // Hard-coded ALU control values selected by the decoded operation — the
  // testability case the paper discusses in section 4.2.
  always @(*) begin
    ctl_and = 1'b0; ctl_or = 1'b0; ctl_xor = 1'b0;
    ctl_add = 1'b0; ctl_sub = 1'b0;
    ctl_mova = 1'b0; ctl_movb = 1'b0; ctl_mvnb = 1'b0; ctl_bic = 1'b0;
    inv_a = 1'b0; use_cin = 1'b0; flags_only = 1'b0;
    case (alu_op)
      4'd0: ctl_and = 1'b1;
      4'd1: ctl_or = 1'b1;
      4'd2: ctl_xor = 1'b1;
      4'd3: ctl_add = 1'b1;
      4'd4: begin ctl_add = 1'b1; use_cin = 1'b1; end
      4'd5: ctl_sub = 1'b1;
      4'd6: begin ctl_sub = 1'b1; use_cin = 1'b1; end
      4'd7: begin ctl_sub = 1'b1; inv_a = 1'b1; end
      4'd8: begin ctl_sub = 1'b1; flags_only = 1'b1; end
      4'd9: begin ctl_add = 1'b1; flags_only = 1'b1; end
      4'd10: begin ctl_and = 1'b1; flags_only = 1'b1; end
      4'd11: begin ctl_xor = 1'b1; flags_only = 1'b1; end
      4'd12: ctl_movb = 1'b1;
      4'd13: ctl_mvnb = 1'b1;
      4'd14: ctl_bic = 1'b1;
      default: ctl_mova = 1'b1;
    endcase
  end

  wire rm_used = is_alu_reg | is_store;

  arm_forward fwd (
    .ex_valid(ex_valid), .ex_rd(ex_rd_in), .ex_is_load(ex_is_load_in),
    .mem_valid(mem_valid), .mem_rd(mem_rd_in),
    .rn(rn), .rm(rm), .rm_used(rm_used),
    .fwd_a(fwd_a), .fwd_b(fwd_b), .stall(stall)
  );
endmodule

// ---------------------------------------------------------------- arm_exec
// Execute stage: ALU + barrel shifter + register bank + pipeline registers.
module arm_exec (
  input clk,
  input rst,
  input [2:0] rd_in,
  input [2:0] rn,
  input [2:0] rm,
  input [15:0] imm,
  input use_imm,
  input ctl_and, ctl_or, ctl_xor, ctl_add, ctl_sub,
  input ctl_mova, ctl_movb, ctl_mvnb, ctl_bic,
  input inv_a, use_cin, flags_only, set_flags,
  input [1:0] shift_op,
  input [3:0] shift_amt,
  input use_shift,
  input is_load,
  input is_store,
  input wb_en,
  input [1:0] fwd_a,
  input [1:0] fwd_b,
  input stall,
  input [15:0] load_data,
  output [15:0] result_out,
  output [15:0] store_data,
  output [15:0] mem_addr,
  output [2:0] ex_rd,
  output ex_valid,
  output ex_is_load_o,
  output ex_is_store_o,
  output [2:0] mem_rd,
  output mem_valid,
  output flag_n, flag_z, flag_c, flag_v
);
  // Writeback stage signals (defined below, used by the bank).
  reg [15:0] mem_result_r;
  reg [2:0] mem_rd_r;
  reg mem_we_r;

  wire [15:0] rdata_a;
  wire [15:0] rdata_b;

  regbank bank (
    .clk(clk), .rst(rst),
    .we(mem_we_r), .waddr(mem_rd_r), .wdata(mem_result_r),
    .raddr_a(rn), .raddr_b(rm),
    .rdata_a(rdata_a), .rdata_b(rdata_b)
  );

  // EX stage pipeline registers.
  reg [15:0] ex_result_r;
  reg [15:0] ex_store_r;
  reg [2:0] ex_rd_r;
  reg ex_we_r;
  reg ex_is_load_r;
  reg ex_is_store_r;

  // Operand forwarding.
  wire [15:0] op_a = (fwd_a == 2'd1) ? ex_result_r :
                     ((fwd_a == 2'd2) ? mem_result_r : rdata_a);
  wire [15:0] op_b_reg = (fwd_b == 2'd1) ? ex_result_r :
                         ((fwd_b == 2'd2) ? mem_result_r : rdata_b);
  wire [15:0] op_b_pre = use_imm ? imm : op_b_reg;

  wire [15:0] op_b;
  wire shift_carry;
  arm_shift sh (
    .din(op_b_pre), .op(shift_op), .amt(shift_amt),
    .bypass(~use_shift), .dout(op_b), .shift_carry(shift_carry)
  );

  // Flags register.
  reg flag_n_r, flag_z_r, flag_c_r, flag_v_r;

  wire [15:0] alu_result;
  wire a_n, a_z, a_c, a_v, wb_inhibit;
  arm_alu alu (
    .a(op_a), .b(op_b), .cin(flag_c_r),
    .ctl_and(ctl_and), .ctl_or(ctl_or), .ctl_xor(ctl_xor),
    .ctl_add(ctl_add), .ctl_sub(ctl_sub),
    .ctl_mova(ctl_mova), .ctl_movb(ctl_movb), .ctl_mvnb(ctl_mvnb),
    .ctl_bic(ctl_bic),
    .inv_a(inv_a), .use_cin(use_cin), .flags_only(flags_only),
    .set_flags(set_flags),
    .result(alu_result),
    .flag_n(a_n), .flag_z(a_z), .flag_c(a_c), .flag_v(a_v),
    .wb_inhibit(wb_inhibit)
  );

  wire [15:0] ea = op_a + imm; // load/store effective address

  always @(posedge clk) begin
    if (rst) begin
      flag_n_r <= 1'b0; flag_z_r <= 1'b0;
      flag_c_r <= 1'b0; flag_v_r <= 1'b0;
    end
    else if (set_flags & ~stall) begin
      flag_n_r <= a_n; flag_z_r <= a_z;
      flag_c_r <= a_c; flag_v_r <= a_v;
    end
  end

  always @(posedge clk) begin
    if (rst) begin
      ex_result_r <= 16'h0;
      ex_store_r <= 16'h0;
      ex_rd_r <= 3'd0;
      ex_we_r <= 1'b0;
      ex_is_load_r <= 1'b0;
      ex_is_store_r <= 1'b0;
    end
    else if (~stall) begin
      ex_result_r <= (is_load | is_store) ? ea : alu_result;
      ex_store_r <= op_b_reg;
      ex_rd_r <= rd_in;
      ex_we_r <= wb_en & ~wb_inhibit;
      ex_is_load_r <= is_load;
      ex_is_store_r <= is_store;
    end
    else begin
      ex_we_r <= 1'b0;
      ex_is_load_r <= 1'b0;
      ex_is_store_r <= 1'b0;
    end
  end

  always @(posedge clk) begin
    if (rst) begin
      mem_result_r <= 16'h0;
      mem_rd_r <= 3'd0;
      mem_we_r <= 1'b0;
    end
    else begin
      mem_result_r <= ex_is_load_r ? load_data : ex_result_r;
      mem_rd_r <= ex_rd_r;
      mem_we_r <= ex_we_r;
    end
  end

  assign result_out = mem_result_r;
  assign store_data = ex_store_r;
  assign mem_addr = ex_result_r;
  assign ex_rd = ex_rd_r;
  assign ex_valid = ex_we_r;
  assign ex_is_load_o = ex_is_load_r;
  assign ex_is_store_o = ex_is_store_r;
  assign mem_rd = mem_rd_r;
  assign mem_valid = mem_we_r;
  assign flag_n = flag_n_r;
  assign flag_z = flag_z_r;
  assign flag_c = flag_c_r;
  assign flag_v = flag_v_r;
endmodule

// -------------------------------------------------------------- arm_sysctl
// System control block: timer, watchdog, cycle counter and a debug shift
// chain. Deliberately outside the data/control cone of the evaluation MUTs
// (its outputs go to dedicated pins), like the peripherals a core-level
// hierarchical test methodology never needs to drag along.
module sys_timer (
  input clk,
  input rst,
  input timer_en,
  input [15:0] reload,
  output timer_tick
);
  reg [15:0] cnt;
  always @(posedge clk) begin
    if (rst) cnt <= 16'h0;
    else if (timer_en) begin
      if (cnt == 16'h0) cnt <= reload;
      else cnt <= cnt - 16'h1;
    end
  end
  assign timer_tick = timer_en & (cnt == 16'h0);
endmodule

module sys_watchdog (
  input clk,
  input rst,
  input kick,
  input [11:0] limit,
  output wdog_bark
);
  reg [11:0] cnt;
  always @(posedge clk) begin
    if (rst | kick) cnt <= 12'h0;
    else if (cnt != limit) cnt <= cnt + 12'h1;
  end
  assign wdog_bark = cnt == limit;
endmodule

module sys_perfctr (
  input clk,
  input rst,
  input ev_fetch,
  input ev_mem,
  output [15:0] cycles,
  output [15:0] events
);
  reg [15:0] cyc;
  reg [15:0] evt;
  always @(posedge clk) begin
    if (rst) begin
      cyc <= 16'h0;
      evt <= 16'h0;
    end
    else begin
      cyc <= cyc + 16'h1;
      if (ev_fetch | ev_mem) evt <= evt + 16'h1;
    end
  end
  assign cycles = cyc;
  assign events = evt;
endmodule

module sys_mul (
  input clk,
  input rst,
  input start,
  input [15:0] ma,
  input [15:0] mb,
  output [15:0] product_lo,
  output [15:0] product_hi,
  output busy
);
  // One-shot 16x16 multiply with registered operands and result.
  reg [15:0] ra;
  reg [15:0] rb;
  reg [15:0] lo;
  reg [15:0] hi;
  reg running;
  wire [31:0] full = {16'h0, ra} * {16'h0, rb};
  always @(posedge clk) begin
    if (rst) begin
      ra <= 16'h0;
      rb <= 16'h0;
      lo <= 16'h0;
      hi <= 16'h0;
      running <= 1'b0;
    end
    else if (start & ~running) begin
      ra <= ma;
      rb <= mb;
      running <= 1'b1;
    end
    else if (running) begin
      lo <= full[15:0];
      hi <= full[31:16];
      running <= 1'b0;
    end
  end
  assign product_lo = lo;
  assign product_hi = hi;
  assign busy = running;
endmodule

module sys_crc16 (
  input clk,
  input rst,
  input enable,
  input din,
  output [15:0] crc
);
  // CCITT polynomial x^16 + x^12 + x^5 + 1, bit-serial.
  reg [15:0] r;
  wire fb = r[15] ^ din;
  always @(posedge clk) begin
    if (rst) r <= 16'hffff;
    else if (enable)
      r <= {r[14:12], r[11] ^ fb, r[10:4], r[3] ^ fb, r[2:0], fb};
  end
  assign crc = r;
endmodule

module sys_uart_tx (
  input clk,
  input rst,
  input send,
  input [7:0] tx_data,
  output tx,
  output tx_busy
);
  localparam IDLE = 2'd0;
  localparam START = 2'd1;
  localparam DATA = 2'd2;
  localparam STOP = 2'd3;
  reg [1:0] state;
  reg [2:0] bitpos;
  reg [7:0] shifter;
  reg line;
  always @(posedge clk) begin
    if (rst) begin
      state <= IDLE;
      bitpos <= 3'd0;
      shifter <= 8'h0;
      line <= 1'b1;
    end
    else begin
      case (state)
        IDLE: begin
          line <= 1'b1;
          if (send) begin
            shifter <= tx_data;
            state <= START;
          end
        end
        START: begin
          line <= 1'b0;
          bitpos <= 3'd0;
          state <= DATA;
        end
        DATA: begin
          line <= shifter[0];
          shifter <= {1'b0, shifter[7:1]};
          if (bitpos == 3'd7) state <= STOP;
          else bitpos <= bitpos + 3'd1;
        end
        default: begin
          line <= 1'b1;
          state <= IDLE;
        end
      endcase
    end
  end
  assign tx = line;
  assign tx_busy = state != IDLE;
endmodule

module arm_sysctl (
  input clk,
  input rst,
  input [15:0] cfg,
  input dbg_shift_in,
  input dbg_shift_en,
  input ev_fetch,
  input ev_mem,
  input [1:0] exc_mode_in,
  input [15:0] cp_a,
  input [15:0] cp_b,
  input cp_start,
  input [7:0] uart_data,
  input uart_send,
  output timer_tick,
  output wdog_bark,
  output [15:0] perf_cycles,
  output [15:0] perf_events,
  output dbg_shift_out,
  output [7:0] status,
  output [15:0] cp_lo,
  output [15:0] cp_hi,
  output cp_busy,
  output uart_tx,
  output uart_busy,
  output [15:0] crc_out
);
  sys_timer timer (
    .clk(clk), .rst(rst), .timer_en(cfg[0]), .reload({4'h0, cfg[15:4]}),
    .timer_tick(timer_tick)
  );
  sys_watchdog wdog (
    .clk(clk), .rst(rst), .kick(cfg[1]), .limit(cfg[15:4]),
    .wdog_bark(wdog_bark)
  );
  sys_perfctr perf (
    .clk(clk), .rst(rst), .ev_fetch(ev_fetch), .ev_mem(ev_mem),
    .cycles(perf_cycles), .events(perf_events)
  );

  sys_mul mul (
    .clk(clk), .rst(rst), .start(cp_start), .ma(cp_a), .mb(cp_b),
    .product_lo(cp_lo), .product_hi(cp_hi), .busy(cp_busy)
  );

  sys_crc16 crc (
    .clk(clk), .rst(rst), .enable(dbg_shift_en), .din(dbg_shift_in),
    .crc(crc_out)
  );

  sys_uart_tx uart (
    .clk(clk), .rst(rst), .send(uart_send), .tx_data(uart_data),
    .tx(uart_tx), .tx_busy(uart_busy)
  );

  // 16-bit debug shift chain.
  reg [15:0] dbg;
  always @(posedge clk) begin
    if (rst) dbg <= 16'h0;
    else if (dbg_shift_en) dbg <= {dbg[14:0], dbg_shift_in};
  end
  assign dbg_shift_out = dbg[15];
  assign status = {timer_tick, wdog_bark, exc_mode_in, dbg[3:0]};
endmodule

// ------------------------------------------------------------------- arm2z
module arm2z (
  input clk,
  input rst,
  input [15:0] instr_in,
  input [15:0] data_in,
  input irq,
  input fiq,
  input irq_mask,
  input fiq_mask,
  input [15:0] sys_cfg,
  input dbg_shift_in,
  input dbg_shift_en,
  input [15:0] cp_a,
  input [15:0] cp_b,
  input cp_start,
  input [7:0] uart_data,
  input uart_send,
  output [15:0] iaddr_out,
  output [15:0] dmem_addr,
  output [15:0] data_out,
  output mem_read,
  output mem_write,
  output exc_active_o,
  output [15:0] result_dbg,
  output [3:0] flags_dbg,
  output timer_tick_o,
  output wdog_bark_o,
  output [15:0] perf_cycles_o,
  output [15:0] perf_events_o,
  output dbg_shift_out,
  output [7:0] sys_status,
  output [15:0] cp_lo,
  output [15:0] cp_hi,
  output cp_busy,
  output uart_tx,
  output uart_busy,
  output [15:0] crc_out
);
  wire [2:0] rd, rn, rm;
  wire [15:0] imm;
  wire use_imm, is_load, is_store, is_branch, is_swi, is_undef, wb_en;
  wire [2:0] branch_cond;
  wire [15:0] branch_off;
  wire ctl_and, ctl_or, ctl_xor, ctl_add, ctl_sub;
  wire ctl_mova, ctl_movb, ctl_mvnb, ctl_bic;
  wire inv_a, use_cin, flags_only, set_flags;
  wire [1:0] shift_op;
  wire [3:0] shift_amt;
  wire use_shift;
  wire [1:0] fwd_a, fwd_b;
  wire stall;

  wire [2:0] ex_rd_w, mem_rd_w;
  wire ex_valid_w, mem_valid_w, ex_is_load_w, ex_is_store_w;
  wire flag_n, flag_z, flag_c, flag_v;

  arm_decode dec (
    .instr(instr_in),
    .ex_valid(ex_valid_w), .ex_rd_in(ex_rd_w), .ex_is_load_in(ex_is_load_w),
    .mem_valid(mem_valid_w), .mem_rd_in(mem_rd_w),
    .rd(rd), .rn(rn), .rm(rm),
    .imm(imm), .use_imm(use_imm),
    .is_load(is_load), .is_store(is_store),
    .is_branch(is_branch), .branch_cond(branch_cond),
    .branch_off(branch_off),
    .is_swi(is_swi), .is_undef(is_undef),
    .wb_en(wb_en),
    .ctl_and(ctl_and), .ctl_or(ctl_or), .ctl_xor(ctl_xor),
    .ctl_add(ctl_add), .ctl_sub(ctl_sub),
    .ctl_mova(ctl_mova), .ctl_movb(ctl_movb), .ctl_mvnb(ctl_mvnb),
    .ctl_bic(ctl_bic),
    .inv_a(inv_a), .use_cin(use_cin), .flags_only(flags_only),
    .set_flags(set_flags),
    .shift_op(shift_op), .shift_amt(shift_amt), .use_shift(use_shift),
    .fwd_a(fwd_a), .fwd_b(fwd_b), .stall(stall)
  );

  wire exc_active;
  wire [15:0] evector;
  wire [1:0] exc_mode;

  arm_exc exc (
    .clk(clk), .rst(rst),
    .irq(irq), .fiq(fiq), .swi(is_swi), .undef(is_undef),
    .irq_mask(irq_mask), .fiq_mask(fiq_mask),
    .ack(exc_active & ~stall),
    .exc_active(exc_active), .vector(evector), .exc_mode(exc_mode)
  );

  // Branch condition evaluation against the architectural flags.
  reg cond_true;
  always @(*) begin
    case (branch_cond)
      3'd0: cond_true = 1'b1;                 // AL
      3'd1: cond_true = flag_z;               // EQ
      3'd2: cond_true = ~flag_z;              // NE
      3'd3: cond_true = flag_c;               // CS
      3'd4: cond_true = flag_n;               // MI
      3'd5: cond_true = flag_v;               // VS
      3'd6: cond_true = flag_c & ~flag_z;     // HI
      default: cond_true = ~flag_n;           // PL
    endcase
  end

  wire take_branch = is_branch & cond_true;

  wire [15:0] pc;
  wire [15:0] pc_plus;
  wire [15:0] btarget = pc + {branch_off[14:0], 1'b0};

  arm_fetch ifu (
    .clk(clk), .rst(rst), .stall(stall),
    .take_branch(take_branch), .btarget(btarget),
    .exc(exc_active), .evector(evector),
    .pc(pc), .pc_plus(pc_plus)
  );

  wire [15:0] result_w;
  wire [15:0] store_data_w;
  wire [15:0] mem_addr_w;

  arm_exec exu (
    .clk(clk), .rst(rst),
    .rd_in(rd), .rn(rn), .rm(rm),
    .imm(imm), .use_imm(use_imm),
    .ctl_and(ctl_and), .ctl_or(ctl_or), .ctl_xor(ctl_xor),
    .ctl_add(ctl_add), .ctl_sub(ctl_sub),
    .ctl_mova(ctl_mova), .ctl_movb(ctl_movb), .ctl_mvnb(ctl_mvnb),
    .ctl_bic(ctl_bic),
    .inv_a(inv_a), .use_cin(use_cin), .flags_only(flags_only),
    .set_flags(set_flags),
    .shift_op(shift_op), .shift_amt(shift_amt), .use_shift(use_shift),
    .is_load(is_load), .is_store(is_store), .wb_en(wb_en),
    .fwd_a(fwd_a), .fwd_b(fwd_b), .stall(stall),
    .load_data(data_in),
    .result_out(result_w), .store_data(store_data_w), .mem_addr(mem_addr_w),
    .ex_rd(ex_rd_w), .ex_valid(ex_valid_w),
    .ex_is_load_o(ex_is_load_w), .ex_is_store_o(ex_is_store_w),
    .mem_rd(mem_rd_w), .mem_valid(mem_valid_w),
    .flag_n(flag_n), .flag_z(flag_z), .flag_c(flag_c), .flag_v(flag_v)
  );

  arm_sysctl sysctl (
    .clk(clk), .rst(rst), .cfg(sys_cfg),
    .dbg_shift_in(dbg_shift_in), .dbg_shift_en(dbg_shift_en),
    .ev_fetch(~stall), .ev_mem(ex_is_load_w | ex_is_store_w),
    .exc_mode_in(exc_mode),
    .cp_a(cp_a), .cp_b(cp_b), .cp_start(cp_start),
    .uart_data(uart_data), .uart_send(uart_send),
    .timer_tick(timer_tick_o), .wdog_bark(wdog_bark_o),
    .perf_cycles(perf_cycles_o), .perf_events(perf_events_o),
    .dbg_shift_out(dbg_shift_out), .status(sys_status),
    .cp_lo(cp_lo), .cp_hi(cp_hi), .cp_busy(cp_busy),
    .uart_tx(uart_tx), .uart_busy(uart_busy), .crc_out(crc_out)
  );

  assign iaddr_out = pc;
  assign dmem_addr = mem_addr_w;
  assign data_out = store_data_w;
  assign mem_read = ex_is_load_w;
  assign mem_write = ex_is_store_w;
  assign exc_active_o = exc_active;
  assign result_dbg = result_w;
  assign flags_dbg = {flag_n, flag_z, flag_c, flag_v};
endmodule
)V";
}

const char* mini_soc_source() {
    return R"V(
// mini_soc: small two-level design used by the quickstart example and the
// integration tests. The embedded mini_alu is the MUT.
module mini_alu (
  input [7:0] x,
  input [7:0] y,
  input [1:0] sel,
  output [7:0] out,
  output zero
);
  reg [7:0] r;
  always @(*) begin
    case (sel)
      2'd0: r = x + y;
      2'd1: r = x - y;
      2'd2: r = x & y;
      default: r = x | y;
    endcase
  end
  assign out = r;
  assign zero = r == 8'h0;
endmodule

module mini_ctrl (
  input [3:0] op,
  output [1:0] alu_sel,
  output wr_en
);
  assign alu_sel = (op == 4'd0) ? 2'd0 :
                   ((op == 4'd1) ? 2'd1 :
                    ((op == 4'd2) ? 2'd2 : 2'd3));
  assign wr_en = op != 4'hf;
endmodule

module mini_soc (
  input clk,
  input rst,
  input [7:0] in_a,
  input [7:0] in_b,
  input [3:0] op,
  output [7:0] acc_out,
  output zero_out
);
  wire [1:0] alu_sel;
  wire wr_en;
  mini_ctrl ctrl (.op(op), .alu_sel(alu_sel), .wr_en(wr_en));

  reg [7:0] acc;
  wire [7:0] alu_out;
  wire alu_zero;

  mini_alu alu (
    .x(acc), .y(in_b), .sel(alu_sel),
    .out(alu_out), .zero(alu_zero)
  );

  always @(posedge clk) begin
    if (rst) acc <= 8'h0;
    else if (wr_en) acc <= (op == 4'h8) ? in_a : alu_out;
  end

  assign acc_out = acc;
  assign zero_out = alu_zero;
endmodule
)V";
}

const char* counter_source() {
    return R"V(
module counter8 (
  input clk,
  input rst,
  input en,
  input clear,
  output [7:0] count,
  output wrap
);
  reg [7:0] c;
  always @(posedge clk) begin
    if (rst) c <= 8'h0;
    else if (clear) c <= 8'h0;
    else if (en) c <= c + 8'h1;
  end
  assign count = c;
  assign wrap = c == 8'hff;
endmodule
)V";
}

const char* traffic_source() {
    return R"V(
module traffic (
  input clk,
  input rst,
  input car_waiting,
  output [1:0] main_light,   // 0 red, 1 yellow, 2 green
  output [1:0] side_light
);
  localparam S_MAIN_GREEN = 2'd0;
  localparam S_MAIN_YELLOW = 2'd1;
  localparam S_SIDE_GREEN = 2'd2;
  localparam S_SIDE_YELLOW = 2'd3;

  reg [1:0] state;
  reg [2:0] timer;

  always @(posedge clk) begin
    if (rst) begin
      state <= S_MAIN_GREEN;
      timer <= 3'd0;
    end
    else begin
      case (state)
        S_MAIN_GREEN: begin
          if (car_waiting & (timer >= 3'd4)) begin
            state <= S_MAIN_YELLOW;
            timer <= 3'd0;
          end
          else timer <= timer + 3'd1;
        end
        S_MAIN_YELLOW: begin
          if (timer >= 3'd1) begin
            state <= S_SIDE_GREEN;
            timer <= 3'd0;
          end
          else timer <= timer + 3'd1;
        end
        S_SIDE_GREEN: begin
          if (timer >= 3'd3) begin
            state <= S_SIDE_YELLOW;
            timer <= 3'd0;
          end
          else timer <= timer + 3'd1;
        end
        default: begin
          if (timer >= 3'd1) begin
            state <= S_MAIN_GREEN;
            timer <= 3'd0;
          end
          else timer <= timer + 3'd1;
        end
      endcase
    end
  end

  assign main_light = (state == S_MAIN_GREEN) ? 2'd2 :
                      ((state == S_MAIN_YELLOW) ? 2'd1 : 2'd0);
  assign side_light = (state == S_SIDE_GREEN) ? 2'd2 :
                      ((state == S_SIDE_YELLOW) ? 2'd1 : 2'd0);
endmodule
)V";
}

const char* fir4_source() {
    return R"V(
// fir4: a 4-tap FIR filter. Four instances of the same mac8 module make it
// the multi-instance benchmark for hierarchical extraction.
module mac8 (
  input [7:0] x,
  input [7:0] c,
  input [15:0] acc_in,
  output [15:0] acc_out
);
  wire [15:0] prod = {8'h0, x} * {8'h0, c};
  assign acc_out = acc_in + prod;
endmodule

module tapline (
  input clk,
  input rst,
  input en,
  input [7:0] din,
  output [7:0] t0,
  output [7:0] t1,
  output [7:0] t2,
  output [7:0] t3
);
  reg [7:0] r0, r1, r2, r3;
  always @(posedge clk) begin
    if (rst) begin
      r0 <= 8'h0; r1 <= 8'h0; r2 <= 8'h0; r3 <= 8'h0;
    end
    else if (en) begin
      r0 <= din;
      r1 <= r0;
      r2 <= r1;
      r3 <= r2;
    end
  end
  assign t0 = r0;
  assign t1 = r1;
  assign t2 = r2;
  assign t3 = r3;
endmodule

module coeff_bank (
  input clk,
  input rst,
  input we,
  input [1:0] waddr,
  input [7:0] wdata,
  output [7:0] c0,
  output [7:0] c1,
  output [7:0] c2,
  output [7:0] c3
);
  reg [7:0] k0, k1, k2, k3;
  always @(posedge clk) begin
    if (rst) begin
      k0 <= 8'h0; k1 <= 8'h0; k2 <= 8'h0; k3 <= 8'h0;
    end
    else if (we) begin
      case (waddr)
        2'd0: k0 <= wdata;
        2'd1: k1 <= wdata;
        2'd2: k2 <= wdata;
        default: k3 <= wdata;
      endcase
    end
  end
  assign c0 = k0;
  assign c1 = k1;
  assign c2 = k2;
  assign c3 = k3;
endmodule

module fir4 (
  input clk,
  input rst,
  input en,
  input [7:0] sample_in,
  input cwe,
  input [1:0] caddr,
  input [7:0] cdata,
  output [15:0] y,
  output [7:0] tap_dbg
);
  wire [7:0] t0, t1, t2, t3;
  tapline taps (
    .clk(clk), .rst(rst), .en(en), .din(sample_in),
    .t0(t0), .t1(t1), .t2(t2), .t3(t3)
  );

  wire [7:0] c0, c1, c2, c3;
  coeff_bank coeffs (
    .clk(clk), .rst(rst), .we(cwe), .waddr(caddr), .wdata(cdata),
    .c0(c0), .c1(c1), .c2(c2), .c3(c3)
  );

  wire [15:0] a0, a1, a2, a3;
  mac8 m0 (.x(t0), .c(c0), .acc_in(16'h0), .acc_out(a0));
  mac8 m1 (.x(t1), .c(c1), .acc_in(a0), .acc_out(a1));
  mac8 m2 (.x(t2), .c(c2), .acc_in(a1), .acc_out(a2));
  mac8 m3 (.x(t3), .c(c3), .acc_in(a2), .acc_out(a3));

  reg [15:0] y_r;
  always @(posedge clk) begin
    if (rst) y_r <= 16'h0;
    else y_r <= a3;
  end
  assign y = y_r;
  assign tap_dbg = t3;
endmodule
)V";
}

std::unique_ptr<rtl::Design> parse_design(const char* source,
                                          const std::string& name) {
    auto design = std::make_unique<rtl::Design>();
    util::DiagEngine diags;
    rtl::Parser::parse_source(source, name, *design, diags);
    if (diags.has_errors()) {
        throw util::FactorError("built-in design '" + name +
                                "' failed to parse:\n" + diags.dump());
    }
    return design;
}

const std::vector<std::string>& arm2z_piers() {
    static const std::vector<std::string> kPiers = {
        "exu.bank.core.r0", "exu.bank.core.r1", "exu.bank.core.r2",
        "exu.bank.core.r3", "exu.bank.core.r4", "exu.bank.core.r5",
        "exu.bank.core.r6", "exu.bank.core.r7",
    };
    return kPiers;
}

const std::vector<Arm2zMut>& arm2z_muts() {
    static const std::vector<Arm2zMut> kMuts = {
        {"arm_alu", "arm2z.exu.alu"},
        {"regfile_struct", "arm2z.exu.bank.core"},
        {"arm_exc", "arm2z.exc"},
        {"arm_forward", "arm2z.dec.fwd"},
    };
    return kMuts;
}

} // namespace factor::designs
