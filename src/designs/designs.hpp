// Built-in benchmark designs, embedded as Verilog source.
//
// arm2z is the stand-in for the paper's ARM-2 class-project model (see
// DESIGN.md for the substitution note): a 16-bit ARM-flavoured processor
// with the same module roster and structural properties as Table 1 —
// arm_alu (13 control inputs, 10 of them driven from hard-coded values
// selected by the decoded ALU operation), regfile_struct (largest and most
// deeply embedded module, level 4), arm_exc (exception unit) and
// arm_forward (forwarding/hazard unit). The register file registers are
// load/store reachable, so the PIER analysis discovers them.
//
// The smaller designs (mini_soc, counter8, traffic) serve the examples and
// the test suite.
#pragma once

#include "rtl/ast.hpp"
#include "util/diagnostics.hpp"

#include <memory>
#include <string>
#include <vector>

namespace factor::designs {

/// Verilog source of the arm2z processor.
[[nodiscard]] const char* arm2z_source();
/// Verilog source of the two-level mini SoC used by the quickstart.
[[nodiscard]] const char* mini_soc_source();
/// An 8-bit counter with enable/clear (test design).
[[nodiscard]] const char* counter_source();
/// A traffic-light FSM (test design).
[[nodiscard]] const char* traffic_source();
/// A 4-tap FIR filter with four instances of one MAC module — the
/// generality benchmark (multi-instance extraction, DSP-style datapath).
[[nodiscard]] const char* fir4_source();

/// Parse one of the built-in sources into a fresh Design; throws
/// util::FactorError if it fails to parse (it is a bug in this library).
[[nodiscard]] std::unique_ptr<rtl::Design> parse_design(const char* source,
                                                        const std::string& name);

/// One module-under-test of the arm2z evaluation (a Table 1 row).
struct Arm2zMut {
    std::string display_name;  // the paper's row label, e.g. "regfile_struct"
    std::string instance_path; // elaborated path, e.g. "arm2z.exec.bank.core"
};

/// The evaluation MUTs in table order.
[[nodiscard]] const std::vector<Arm2zMut>& arm2z_muts();

/// PIERs of arm2z: the architecturally load/store-accessible registers
/// (the ISA reaches r0..r7 through LOAD/STORE instructions). These are the
/// registers FACTOR uses to cut the ATPG view and reduce sequential depth;
/// names are hierarchical net-name bases relative to the top.
[[nodiscard]] const std::vector<std::string>& arm2z_piers();

/// Top module names.
inline constexpr const char* kArm2zTop = "arm2z";
inline constexpr const char* kMiniSocTop = "mini_soc";
inline constexpr const char* kCounterTop = "counter8";
inline constexpr const char* kTrafficTop = "traffic";
inline constexpr const char* kFir4Top = "fir4";

} // namespace factor::designs
