#include "designs/arm2z_isa.hpp"

namespace factor::designs {

uint16_t arm2z_nop() { return static_cast<uint16_t>(0b111u << 13); }

uint16_t arm2z_load(unsigned rd, unsigned rn, unsigned imm3) {
    return static_cast<uint16_t>((0b010u << 13) | ((rd & 7u) << 6) |
                                 ((rn & 7u) << 3) | (imm3 & 7u));
}

uint16_t arm2z_store(unsigned rs, unsigned rn, unsigned imm3) {
    return static_cast<uint16_t>((0b011u << 13) | ((rs & 7u) << 6) |
                                 ((rn & 7u) << 3) | (imm3 & 7u));
}

uint16_t arm2z_mov_imm(unsigned rd, unsigned imm6) {
    return static_cast<uint16_t>((0b001u << 13) | (12u << 9) |
                                 ((rd & 7u) << 6) | (imm6 & 0x3fu));
}

uint16_t arm2z_alu_reg(unsigned alu_op, unsigned rd, unsigned rn,
                       unsigned rm) {
    return static_cast<uint16_t>((0b000u << 13) | ((alu_op & 15u) << 9) |
                                 ((rd & 7u) << 6) | ((rn & 7u) << 3) |
                                 (rm & 7u));
}

PinFrame arm2z_idle_frame() {
    PinFrame f;
    f.pins["rst"] = 0;
    f.pins["instr_in"] = arm2z_nop();
    f.pins["irq"] = 0;
    f.pins["fiq"] = 0;
    f.pins["irq_mask"] = 1;
    f.pins["fiq_mask"] = 1;
    return f;
}

PinSequence arm2z_reset_sequence() {
    PinFrame f = arm2z_idle_frame();
    f.pins["rst"] = 1;
    return {f};
}

PinSequence arm2z_pier_load(unsigned reg_index, uint64_t value) {
    // Cycle t:   LOAD rN, [r0+0] decodes.
    // Cycle t+1: the load is in EX; data_in is sampled into the writeback
    //            register at the end of this cycle.
    // Cycle t+2: writeback commits rN.
    PinSequence seq;
    PinFrame issue = arm2z_idle_frame();
    issue.pins["instr_in"] = arm2z_load(reg_index);
    seq.push_back(issue);

    PinFrame mem = arm2z_idle_frame();
    mem.pins["data_in"] = value & 0xffff;
    seq.push_back(mem);

    seq.push_back(arm2z_idle_frame()); // writeback
    return seq;
}

PinSequence arm2z_pier_store(unsigned reg_index) {
    // Cycle t:   STORE rN decodes (rm = rN read from the bank).
    // Cycle t+1: mem_write pulses and data_out carries the register.
    PinSequence seq;
    PinFrame issue = arm2z_idle_frame();
    issue.pins["instr_in"] = arm2z_store(reg_index);
    seq.push_back(issue);
    seq.push_back(arm2z_idle_frame()); // data_out observation window
    return seq;
}

unsigned arm2z_pier_index(const std::string& reg_base) {
    auto pos = reg_base.rfind(".r");
    if (pos == std::string::npos || pos + 2 >= reg_base.size()) return 8;
    char c = reg_base[pos + 2];
    if (c < '0' || c > '7' || pos + 3 != reg_base.size()) return 8;
    return static_cast<unsigned>(c - '0');
}

core::PierAccessSpec make_arm2z_pier_spec() {
    core::PierAccessSpec spec;
    spec.idle = arm2z_idle_frame();
    spec.reset = arm2z_reset_sequence();
    spec.load = [](const std::string& base, uint64_t value) -> PinSequence {
        unsigned idx = arm2z_pier_index(base);
        if (idx > 7) return {};
        return arm2z_pier_load(idx, value);
    };
    spec.store = [](const std::string& base) -> PinSequence {
        unsigned idx = arm2z_pier_index(base);
        if (idx > 7) return {};
        return arm2z_pier_store(idx);
    };
    return spec;
}

} // namespace factor::designs
