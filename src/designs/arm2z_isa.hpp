// arm2z instruction encoders and the PIER load/store access protocol.
//
// The FACTOR flow tests a module inside its transformed view, where PIER
// registers are pseudo primary inputs/outputs. Applying those tests to the
// real chip requires an instruction-level protocol that loads a register
// from the pins and stores it back out — exactly the "patterns are later
// translated back to the chip level" step of the paper. This header
// provides the arm2z ISA encodings and builds the core::PierAccessSpec the
// generic translator consumes.
#pragma once

#include "core/translate.hpp"

#include <cstdint>
#include <string>

namespace factor::designs {

using core::PinFrame;
using core::PinSequence;

// ---- instruction encoders (see arm_decode in arm2z.v) ----------------------

/// NOP (opclass 111).
[[nodiscard]] uint16_t arm2z_nop();
/// LOAD rd, [rn + imm3] (opclass 010): rd <- data_in two cycles later.
[[nodiscard]] uint16_t arm2z_load(unsigned rd, unsigned rn = 0,
                                  unsigned imm3 = 0);
/// STORE rs, [rn + imm3] (opclass 011): data_out <- rs one cycle later.
[[nodiscard]] uint16_t arm2z_store(unsigned rs, unsigned rn = 0,
                                   unsigned imm3 = 0);
/// MOV rd, #imm6 (ALU-immediate, op 12). imm6 is sign-extended by decode.
[[nodiscard]] uint16_t arm2z_mov_imm(unsigned rd, unsigned imm6);
/// ALU register operation rd <- rn op rm (opclass 000).
[[nodiscard]] uint16_t arm2z_alu_reg(unsigned alu_op, unsigned rd,
                                     unsigned rn, unsigned rm);

// ---- pin-level protocol frames ---------------------------------------------

/// A safe "do nothing" frame: nop instruction, interrupts masked, no reset.
[[nodiscard]] PinFrame arm2z_idle_frame();
/// Reset prefix: one frame with rst asserted (brings all state to known).
[[nodiscard]] PinSequence arm2z_reset_sequence();
/// Load `value` into architectural register `rN` through the LOAD path:
/// issue LOAD, present the value on data_in in the execute cycle, wait for
/// writeback.
[[nodiscard]] PinSequence arm2z_pier_load(unsigned reg_index, uint64_t value);
/// Make register `rN` appear on data_out via STORE.
[[nodiscard]] PinSequence arm2z_pier_store(unsigned reg_index);

/// Parse the register index from a PIER base name such as
/// "exu.bank.core.r3"; returns 8 (invalid) if the name does not match.
[[nodiscard]] unsigned arm2z_pier_index(const std::string& reg_base);

/// The complete access spec the core::PatternTranslator consumes for arm2z.
[[nodiscard]] core::PierAccessSpec make_arm2z_pier_spec();

} // namespace factor::designs
