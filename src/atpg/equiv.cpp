#include "atpg/equiv.hpp"

#include <algorithm>
#include <map>
#include <random>
#include <sstream>

namespace factor::atpg {

using synth::Netlist;
using synth::NetId;

namespace {

/// Input/output correspondence between two netlists.
struct InterfaceMap {
    bool ok = false;
    std::string problem;
    // For each A input index, the B input index.
    std::vector<size_t> b_input_of;
    // For each A output index, the B output index.
    std::vector<size_t> b_output_of;
};

InterfaceMap match_interfaces(const Netlist& a, const Netlist& b) {
    InterfaceMap m;
    std::map<std::string, size_t> b_inputs;
    for (size_t i = 0; i < b.inputs().size(); ++i) {
        b_inputs[b.net_name(b.inputs()[i])] = i;
    }
    for (size_t i = 0; i < a.inputs().size(); ++i) {
        const std::string& name = a.net_name(a.inputs()[i]);
        auto it = b_inputs.find(name);
        if (it == b_inputs.end()) {
            m.problem = "input '" + name + "' missing in B";
            return m;
        }
        m.b_input_of.push_back(it->second);
    }
    std::map<std::string, size_t> b_outputs;
    for (size_t i = 0; i < b.outputs().size(); ++i) {
        b_outputs[b.output_name(i)] = i;
    }
    for (size_t i = 0; i < a.outputs().size(); ++i) {
        auto it = b_outputs.find(a.output_name(i));
        if (it == b_outputs.end()) {
            m.problem = "output '" + a.output_name(i) + "' missing in B";
            return m;
        }
        m.b_output_of.push_back(it->second);
    }
    m.ok = true;
    return m;
}

/// Compare PO values for one frame batch; returns a mismatch description
/// or nullopt.
std::optional<std::string>
compare_frames(const Netlist& a, const std::vector<std::vector<V64>>& pa,
               const std::vector<std::vector<V64>>& pb,
               const InterfaceMap& im) {
    for (size_t f = 0; f < pa.size(); ++f) {
        for (size_t o = 0; o < pa[f].size(); ++o) {
            V64 va = pa[f][o];
            V64 vb = pb[f][im.b_output_of[o]];
            uint64_t both = va.known() & vb.known();
            uint64_t diff = (va.one ^ vb.one) & both;
            uint64_t lost = va.known() & ~vb.known();
            if (diff == 0 && lost == 0) continue;
            uint64_t bad = diff != 0 ? diff : lost;
            int pattern = __builtin_ctzll(bad);
            std::ostringstream os;
            os << "output '" << a.output_name(o) << "' frame " << f
               << " pattern " << pattern
               << (diff != 0 ? ": values differ" : ": definedness lost");
            return os.str();
        }
    }
    return std::nullopt;
}

} // namespace

EquivResult check_equivalence(const Netlist& a, const Netlist& b,
                              const EquivOptions& options) {
    EquivResult result;
    InterfaceMap im = match_interfaces(a, b);
    if (!im.ok) {
        result.mismatch = im.problem;
        return result;
    }

    FaultSimulator sim_a(a);
    FaultSimulator sim_b(b);

    const bool combinational = a.dff_count() == 0 && b.dff_count() == 0;
    const size_t n = a.inputs().size();

    if (combinational && n <= options.exhaustive_input_limit) {
        result.exhaustive = true;
        const uint64_t total = uint64_t{1} << n;
        for (uint64_t base = 0; base < total; base += 64) {
            Frame fa;
            fa.pi.resize(n);
            for (size_t i = 0; i < n; ++i) {
                uint64_t ones = 0;
                for (uint64_t p = 0; p < 64 && base + p < total; ++p) {
                    if (((base + p) >> i) & 1) ones |= (1ull << p);
                }
                fa.pi[i] = V64{ones, ~ones};
            }
            Frame fb;
            fb.pi.resize(b.inputs().size(), V64::all_x());
            for (size_t i = 0; i < n; ++i) fb.pi[im.b_input_of[i]] = fa.pi[i];

            auto pa = sim_a.simulate_good({fa});
            auto pb = sim_b.simulate_good({fb});
            if (auto bad = compare_frames(a, pa, pb, im)) {
                result.mismatch = *bad + " (exhaustive, base pattern " +
                                  std::to_string(base) + ")";
                return result;
            }
        }
        result.equivalent = true;
        return result;
    }

    std::mt19937_64 rng(options.seed);
    for (size_t batch = 0; batch < options.random_batches; ++batch) {
        Sequence sa = sim_a.random_sequence(rng, options.random_frames);
        Sequence sb;
        for (const Frame& f : sa) {
            Frame fb;
            fb.pi.resize(b.inputs().size(), V64::all_x());
            for (size_t i = 0; i < n; ++i) fb.pi[im.b_input_of[i]] = f.pi[i];
            sb.push_back(std::move(fb));
        }
        auto pa = sim_a.simulate_good(sa);
        auto pb = sim_b.simulate_good(sb);
        if (auto bad = compare_frames(a, pa, pb, im)) {
            result.mismatch = *bad + " (random batch " +
                              std::to_string(batch) + ")";
            return result;
        }
    }
    result.equivalent = true;
    return result;
}

} // namespace factor::atpg
