// SAT-based per-fault test generation: the bridge between the ATPG engine
// and the src/sat/ subsystem (DESIGN.md §12).
//
// Each attempt() runs, in order:
//   1. the redundancy miter (free binary state, single frame) — UNSAT is a
//      proof the faulty machine is indistinguishable from the good one, so
//      the fault is Redundant; for combinational netlists the same formula
//      doubles as the complete detection check and a model IS a test;
//   2. for sequential netlists, detection miters at a doubling depth
//      schedule (first_frames, 2x, 4x, ... capped at max_frames) — one
//      solve at depth d covers every depth <= d because the objective ORs
//      over all frames.
//
// Outcomes use single characters so the engine's checkpoint journal can
// record them verbatim:
//   's' test found (model extracted; the dual-rail encoding matches the
//       fault simulator exactly, so the simulator confirms it)
//   'r' proven redundant (UNSAT redundancy proof)
//   'n' no test within the depth cap (stays aborted)
//   'k' solver budget exhausted (conflict cap or guard stop; stays aborted)
//   'p' contained internal error
#pragma once

#include "atpg/fault.hpp"
#include "atpg/fault_sim.hpp"
#include "sat/solver.hpp"
#include "synth/netlist.hpp"
#include "util/run_guard.hpp"

#include <string>
#include <vector>

namespace factor::atpg {

struct SatEngineOptions {
    /// CDCL conflict cap per solve() call (deterministic); 0 = unlimited.
    uint64_t conflict_budget = 20000;
    /// Detection-depth schedule: start (the engine's PODEM unroll depth)
    /// and cap (EngineOptions::sat_max_frames after auto-resolution).
    size_t first_frames = 8;
    size_t max_frames = 32;
    /// Wall-clock guards polled during solves (never ticked): the engine's
    /// local time budget and the caller's external pipeline guard.
    util::RunGuard* guard = nullptr;
    util::RunGuard* guard2 = nullptr;
};

struct SatAttempt {
    char outcome = 'p'; // 's' | 'r' | 'n' | 'k' | 'p'
    ScalarSequence test;    // valid when outcome == 's'
    std::string error;      // valid when outcome == 'p'
    /// Aggregate CDCL statistics over every solve of this attempt.
    sat::SolverStats stats;
};

/// One instance per engine run; precomputes the fanout table shared by all
/// of the run's miters. Not thread-safe by contract (the engine's sat-mode
/// workers each construct their own, like FaultSimulator).
class SatFaultEngine {
  public:
    SatFaultEngine(const synth::Netlist& nl, SatEngineOptions options);

    /// Generate-or-prove for one fault. Never throws: internal failures
    /// are contained as outcome 'p' like the PODEM workers' error slots.
    [[nodiscard]] SatAttempt attempt(const Fault& fault);

  private:
    [[nodiscard]] SatAttempt attempt_impl(const Fault& fault);

    const synth::Netlist& nl_;
    SatEngineOptions options_;
    std::vector<std::vector<synth::GateId>> fanout_;
    bool combinational_ = false;
};

} // namespace factor::atpg
