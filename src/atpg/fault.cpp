#include "atpg/fault.hpp"

#include "util/strings.hpp"

#include <sstream>

namespace factor::atpg {

using synth::Gate;
using synth::GateId;
using synth::GateType;
using synth::Netlist;
using synth::NetId;

std::string FaultEntry::describe(const Netlist& nl) const {
    std::ostringstream os;
    if (fault.is_stem()) {
        os << nl.net_name(fault.net);
    } else {
        const Gate& g = nl.gate(fault.gate);
        os << to_string(g.type) << "@" << nl.net_name(g.out) << "/in"
           << fault.pin << " (branch of " << nl.net_name(fault.net) << ")";
    }
    os << (fault.sa1 ? " SA1" : " SA0");
    return os.str();
}

namespace {

/// Is the input-pin fault with stuck value `sa1` equivalent to an output
/// fault of gate type `t`? (Controlling-value collapsing.)
bool input_fault_collapses(GateType t, bool sa1) {
    switch (t) {
    case GateType::Buf:
    case GateType::Dff:
    case GateType::Not:
        return true; // both polarities map onto the output fault
    case GateType::And:
    case GateType::Nand:
        return !sa1; // input SA0 == output SA0 / SA1
    case GateType::Or:
    case GateType::Nor:
        return sa1; // input SA1 == output SA1 / SA0
    default:
        return false; // XOR/XNOR/MUX: all input faults distinct
    }
}

} // namespace

FaultList::FaultList(const Netlist& nl, const std::string& scope_prefix) {
    auto fanout = nl.build_fanout();

    auto in_scope = [&](NetId n) {
        return scope_prefix.empty() ||
               util::starts_with(nl.net_name(n), scope_prefix);
    };

    // Count pins per net (a gate may read the same net twice).
    std::vector<uint32_t> reader_pins(nl.num_nets(), 0);
    for (const Gate& g : nl.gates()) {
        for (NetId in : g.ins) ++reader_pins[in];
    }

    for (NetId n = 0; n < nl.num_nets(); ++n) {
        GateId d = nl.driver(n);
        const bool is_pi = d == Netlist::kNoGate;
        if (is_pi) {
            // Undriven internal nets are permanently unknown; faults there
            // are untestable by construction and excluded up front. Primary
            // inputs do get stem faults.
            bool is_input = false;
            for (NetId pi : nl.inputs()) is_input |= (pi == n);
            if (!is_input) continue;
        } else if (synth::is_const(nl.gate(d).type)) {
            continue; // tie cells: no useful fault site
        }
        if (reader_pins[n] == 0) {
            bool is_output = false;
            for (NetId po : nl.outputs()) is_output |= (po == n);
            if (!is_output) continue; // dangling net
        }
        if (!in_scope(n)) continue;

        for (bool sa1 : {false, true}) {
            ++uncollapsed_;
            // A stem fault on a single-reader net collapses into the reader
            // pin's fault, which itself may collapse into the reader's
            // output fault; keep the stem as the canonical representative
            // unless the gate-input rule removes it.
            bool collapsed = false;
            if (reader_pins[n] == 1) {
                // Find the unique reader.
                for (GateId g : fanout[n]) {
                    const Gate& gate = nl.gate(g);
                    for (size_t i = 0; i < gate.ins.size(); ++i) {
                        if (gate.ins[i] == n &&
                            input_fault_collapses(gate.type, sa1) &&
                            in_scope(gate.out)) {
                            collapsed = true;
                        }
                    }
                }
            }
            if (collapsed) continue;
            FaultEntry e;
            e.fault.net = n;
            e.fault.sa1 = sa1;
            faults_.push_back(e);
        }

        // Branch faults for fanout > 1. The reading gate must also lie in
        // scope so a module's targeted fault universe does not depend on
        // how much surrounding logic happens to read its outputs.
        if (reader_pins[n] > 1) {
            for (GateId g : fanout[n]) {
                const Gate& gate = nl.gate(g);
                if (!in_scope(gate.out)) continue;
                for (size_t i = 0; i < gate.ins.size(); ++i) {
                    if (gate.ins[i] != n) continue;
                    for (bool sa1 : {false, true}) {
                        ++uncollapsed_;
                        if (input_fault_collapses(gate.type, sa1)) continue;
                        FaultEntry e;
                        e.fault.net = n;
                        e.fault.gate = g;
                        e.fault.pin = static_cast<int>(i);
                        e.fault.sa1 = sa1;
                        faults_.push_back(e);
                    }
                }
            }
        }
    }
}

size_t FaultList::count(FaultStatus s) const {
    size_t n = 0;
    for (const auto& f : faults_) {
        if (f.status == s) ++n;
    }
    return n;
}

double FaultList::coverage_percent() const {
    if (faults_.empty()) return 0.0;
    return 100.0 * static_cast<double>(count(FaultStatus::Detected)) /
           static_cast<double>(faults_.size());
}

double FaultList::efficiency_percent() const {
    if (faults_.empty()) return 0.0;
    return 100.0 *
           static_cast<double>(count(FaultStatus::Detected) +
                               count(FaultStatus::Untestable) +
                               count(FaultStatus::Redundant)) /
           static_cast<double>(faults_.size());
}

} // namespace factor::atpg
