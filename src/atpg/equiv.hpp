// Simulation-based equivalence checking between two netlists with
// name-matched interfaces. Combinational designs with few inputs are
// checked exhaustively; everything else gets randomized multi-frame
// checking. Used to validate the optimizer and the constraint-writer
// round trip; a mismatch returns a concrete counterexample.
//
// Comparison rule under three-valued simulation: wherever both outputs are
// binary they must agree, and B (the "after" netlist) must be at least as
// defined as A wherever A is binary — rewrites may only ever reduce
// pessimism, never change a defined value.
#pragma once

#include "atpg/fault_sim.hpp"
#include "synth/netlist.hpp"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace factor::atpg {

struct EquivOptions {
    /// Inputs at or below this count (combinational only) are exhausted.
    size_t exhaustive_input_limit = 16;
    /// Random batches (64 sequences each) for the randomized mode.
    size_t random_batches = 16;
    /// Frames per random sequence (sequential state exploration).
    size_t random_frames = 8;
    uint64_t seed = 0xec;
};

struct EquivResult {
    bool equivalent = false;
    bool exhaustive = false; // proof, not sampling
    std::string mismatch;    // human-readable counterexample when !equivalent

    explicit operator bool() const { return equivalent; }
};

/// Check B against A. Interfaces are matched by input net name and output
/// port name; a mismatched interface is reported as non-equivalent.
[[nodiscard]] EquivResult check_equivalence(const synth::Netlist& a,
                                            const synth::Netlist& b,
                                            const EquivOptions& options = {});

} // namespace factor::atpg
