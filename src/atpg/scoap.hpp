// SCOAP-style testability measures on the gate netlist: combinational
// 0/1-controllability (CC0/CC1) per net and observability (CO), with a
// fixed additive penalty for crossing a flip-flop. FACTOR's testability
// report uses these to rank the nets behind its warnings: a hard-coded
// constraint shows up as an unbounded controllability, a dead observation
// path as unbounded observability.
#pragma once

#include "synth/netlist.hpp"

#include <cstddef>
#include <string>
#include <vector>

namespace factor::atpg {

struct ScoapMeasures {
    // Indexed by NetId. kUnreachable means the value/observation cannot be
    // established at all (e.g. nets tied to the opposite constant, or nets
    // with no path to a primary output).
    static constexpr double kUnreachable = 1e18;
    std::vector<double> cc0;
    std::vector<double> cc1;
    std::vector<double> co;

    [[nodiscard]] bool controllable(synth::NetId n) const {
        return cc0[n] < kUnreachable && cc1[n] < kUnreachable;
    }
    [[nodiscard]] bool observable(synth::NetId n) const {
        return co[n] < kUnreachable;
    }

    /// Combined per-net difficulty (max of the three measures; unreachable
    /// dominates).
    [[nodiscard]] double difficulty(synth::NetId n) const;

    struct HardNet {
        synth::NetId net;
        double score;
    };
    /// The k hardest-to-test nets, hardest first (ties by net id).
    [[nodiscard]] std::vector<HardNet> hardest(const synth::Netlist& nl,
                                               size_t k) const;
};

struct ScoapOptions {
    /// Additive cost of crossing a flip-flop (sequential depth penalty).
    double dff_penalty = 10.0;
    /// Relaxation iterations for feedback loops.
    unsigned max_iterations = 64;
};

[[nodiscard]] ScoapMeasures compute_scoap(const synth::Netlist& nl,
                                          const ScoapOptions& options = {});

} // namespace factor::atpg
