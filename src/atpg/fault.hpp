// Single stuck-at fault model with structural equivalence collapsing.
//
// Fault sites follow the classic convention: a "stem" fault lives on a net
// (equivalently, on its driver's output or the primary input), and "branch"
// faults live on individual gate input pins of nets with fanout greater
// than one. Equivalence collapsing removes controlling-value input faults
// that are indistinguishable from the gate's output fault (AND: input SA0 ==
// output SA0; OR: input SA1 == output SA1; BUF/NOT/DFF: both).
#pragma once

#include "synth/netlist.hpp"

#include <string>
#include <vector>

namespace factor::atpg {

struct Fault {
    // Stem fault: gate == kNoGate, net is the site.
    // Branch fault: gate/pin identify the reading pin, net is the branch net.
    synth::NetId net = synth::kNoNet;
    synth::GateId gate = synth::Netlist::kNoGate;
    int pin = -1;
    bool sa1 = false;

    [[nodiscard]] bool is_stem() const {
        return gate == synth::Netlist::kNoGate;
    }
    [[nodiscard]] bool operator==(const Fault&) const = default;
};

enum class FaultStatus : uint8_t {
    Undetected,
    Detected,
    Untestable, // proven redundant by exhaustive (PODEM) search
    Aborted,    // backtrack/time budget exhausted
    Redundant,  // proven redundant by a SAT UNSAT proof (DESIGN.md §12)
};

struct FaultEntry {
    Fault fault;
    FaultStatus status = FaultStatus::Undetected;
    /// Human-readable site, e.g. "exec.alu.sum[3] SA0" or
    /// "AND_57/in2 (branch of exec.cin) SA1".
    std::string describe(const synth::Netlist& nl) const;
};

/// Builds the collapsed fault list of a netlist. `scope_prefix` (optional)
/// restricts faults to sites whose net name starts with the prefix — this is
/// how "targeting faults in the MUT" at processor level is expressed.
class FaultList {
  public:
    explicit FaultList(const synth::Netlist& nl,
                       const std::string& scope_prefix = "");

    [[nodiscard]] const std::vector<FaultEntry>& faults() const {
        return faults_;
    }
    [[nodiscard]] std::vector<FaultEntry>& faults() { return faults_; }
    [[nodiscard]] size_t size() const { return faults_.size(); }

    /// Number of uncollapsed fault sites considered (before equivalence
    /// collapsing), for reporting.
    [[nodiscard]] size_t uncollapsed_count() const { return uncollapsed_; }

    [[nodiscard]] size_t count(FaultStatus s) const;

    /// Fault coverage: detected / total (%).
    [[nodiscard]] double coverage_percent() const;
    /// ATPG efficiency: (detected + untestable + redundant) / total (%) —
    /// every fault with a definitive classification counts.
    [[nodiscard]] double efficiency_percent() const;

  private:
    std::vector<FaultEntry> faults_;
    size_t uncollapsed_ = 0;
};

} // namespace factor::atpg
