// Sequential ATPG engine: the stand-in for the paper's commercial tool.
//
// Two phases, both budgeted:
//   1. random-pattern phase — batches of 64·W random sequences (W = the
//      resolved sim-width lane words) are fault simulated with fault
//      dropping until the yield dries up;
//   2. deterministic phase — each remaining fault is targeted with
//      time-frame-expanded PODEM at increasing unroll depths; generated
//      tests are verified by fault simulation and simulated against the
//      whole remaining fault list.
//
// Faults left over after the budgets (backtracks per fault, wall-clock for
// the whole run) are "aborted": they count against ATPG efficiency exactly
// like a commercial tool's aborted-fault statistics, which is what makes
// the full-processor runs of Table 4 collapse while the FACTOR-transformed
// modules of Tables 5/6 behave like the stand-alone module.
#pragma once

#include "atpg/fault.hpp"
#include "atpg/fault_sim.hpp"
#include "atpg/podem.hpp"
#include "obs/obs.hpp"
#include "synth/netlist.hpp"
#include "util/phase.hpp"
#include "util/run_guard.hpp"

#include <cstdint>
#include <string>

namespace factor::atpg {

/// Which test-generation strategy backs the deterministic phase.
///
///  * Podem — time-frame-expanded PODEM only (the historical engine).
///  * Sat   — CNF miter + CDCL SAT for every targeted fault; UNSAT on the
///            redundancy miter classifies the fault Redundant.
///  * Auto  — PODEM first (it is cheap on easy faults), then the retry
///            escalation rounds, then a SAT pass over whatever is still
///            aborted. The default: aborted faults become detected or
///            proven redundant instead of lingering.
enum class EngineKind : uint8_t { Auto, Podem, Sat };

/// Default CDCL conflict cap per solve; the sentinel at which
/// FACTOR_SAT_BUDGET may override EngineOptions::sat_conflict_budget.
inline constexpr uint64_t kDefaultSatConflictBudget = 20000;

[[nodiscard]] const char* to_string(EngineKind k);

/// Resolves the effective engine: an explicit option wins; Auto consults
/// the FACTOR_ENGINE environment variable ("auto" | "podem" | "sat") and
/// throws util::FactorError on an unrecognized value.
[[nodiscard]] EngineKind resolve_engine(EngineKind option);

struct EngineOptions {
    // Random phase.
    size_t random_batches = 32;      // max batches of 64 sequences
    size_t random_frames = 12;       // frames per random sequence
    size_t random_stale_limit = 3;   // stop after this many yield-less batches
    // Deterministic phase.
    uint32_t max_backtracks = 1000;  // per fault per depth
    size_t max_frames = 8;           // deepest time-frame unroll
    // Global budget; <= 0 means unlimited.
    double time_budget_s = 0.0;
    /// Optional external run guard (wall clock / work quota / interrupt),
    /// shared with the rest of the pipeline. Checked per random batch and
    /// per targeted fault alongside the local time_budget_s; a stop yields
    /// the vectors and coverage accumulated so far with status
    /// BudgetExhausted — work is never discarded.
    util::RunGuard* guard = nullptr;
    uint64_t seed = 0x5eed;
    /// Worker count for the parallel phases (fault dropping, deterministic
    /// PODEM); 0 picks util::ThreadPool::default_jobs() (--jobs / the
    /// FACTOR_JOBS env / hardware concurrency). Determinism contract: for
    /// a fixed seed, results (vectors, coverage, per-fault statuses) are
    /// byte-identical across runs AND across jobs values — parallel PODEM
    /// speculates but commits strictly in fault-list order (see DESIGN.md
    /// §8), so only wall-clock-budgeted runs can vary.
    size_t jobs = 0;
    /// Restrict targeted faults to nets whose name starts with this prefix
    /// ("targeting faults in the MUT" at processor level).
    std::string scope_prefix;
    /// Keep the deterministic test sequences in the result (and run static
    /// reverse-order compaction over them).
    bool collect_tests = false;

    // ---- crash-safe checkpoint / resume (DESIGN.md §9) ------------------
    /// Journal committed progress to this factor.ckpt.v1 file; empty
    /// disables checkpointing. Records are written only at commit-pipeline
    /// boundaries, so the journal is jobs-invariant like the run itself.
    std::string checkpoint_path;
    /// Load `checkpoint_path`, validate its fingerprint, replay the
    /// committed prefix and continue from the first uncommitted unit of
    /// work. Refusal (mismatch, malformed record) sets
    /// EngineResult::resume_refused — a run is never silently mis-resumed.
    bool resume = false;

    // ---- aborted-fault retry escalation ---------------------------------
    /// After the deterministic phase, re-attempt backtrack-aborted faults
    /// for up to this many rounds with a growing backtrack budget
    /// (max_backtracks * growth^round, capped). 0 disables escalation.
    size_t retry_rounds = 0;
    uint32_t retry_backtrack_growth = 4;
    uint32_t retry_backtrack_cap = 1u << 16;

    // ---- fault-simulation kernel (DESIGN.md §11) ------------------------
    /// Parallel-pattern width in bits: 64, 256 or 512. 0 = auto — the
    /// FACTOR_SIM_WIDTH environment variable if set, else the widest
    /// kernel the build's ISA supports. Width shapes the random-pattern
    /// stream (a batch is 64·words sequences), so the *resolved* width is
    /// part of the checkpoint fingerprint: a resume at a different width
    /// is refused instead of silently replaying a divergent trajectory.
    size_t sim_width = 0;
    /// Faulty-machine evaluation strategy (full sweep vs event-driven
    /// cone simulation). Never changes results — only speed — so it is
    /// deliberately not fingerprinted; see SimMode.
    SimMode sim_mode = SimMode::Auto;

    // ---- engine selection (DESIGN.md §12) -------------------------------
    /// Deterministic-phase strategy; Auto consults FACTOR_ENGINE. The
    /// *resolved* engine is part of the checkpoint fingerprint, so a resume
    /// under a different engine is refused (ckpt.engine_mismatch) instead
    /// of silently mixing trajectories.
    EngineKind engine = EngineKind::Auto;
    /// CDCL conflict cap per solve() call. Deterministic, so it joins the
    /// fingerprint. At the default, FACTOR_SAT_BUDGET overrides it (the
    /// FACTOR_JOBS idiom); an explicit non-default value always wins.
    /// 0 = unlimited (not recommended — a pathological miter then owns
    /// the run until the wall-clock guard fires).
    uint64_t sat_conflict_budget = kDefaultSatConflictBudget;
    /// Deepest detection-miter unroll for sequential designs; 0 = auto —
    /// FACTOR_SAT_FRAMES if set, else 4 * max_frames. The redundancy
    /// proof is depth-independent.
    size_t sat_max_frames = 0;
};

/// Resolve the per-solve conflict cap: an explicit non-default option
/// wins; at the default, a set FACTOR_SAT_BUDGET takes over. Throws
/// util::FactorError on a malformed environment value.
[[nodiscard]] uint64_t resolve_sat_budget(uint64_t option);

/// Resolve the deepest detection-miter unroll: a non-zero option wins; at
/// 0, a set FACTOR_SAT_FRAMES takes over, else 0 is returned and the
/// engine derives its auto depth (4 * max_frames). Throws
/// util::FactorError on a malformed environment value.
[[nodiscard]] size_t resolve_sat_frames(size_t option);

struct EngineResult {
    size_t total_faults = 0;
    size_t detected = 0;
    size_t untestable = 0;
    size_t aborted = 0;
    /// Faults proven redundant by a SAT UNSAT proof (distinct from
    /// `untestable`, which PODEM's exhaustive search established). Both
    /// count toward ATPG efficiency; neither can ever be detected.
    size_t redundant = 0;
    double coverage_percent = 0.0;
    double efficiency_percent = 0.0;
    double test_gen_seconds = 0.0;
    size_t random_sequences = 0;      // applied in phase 1
    size_t deterministic_tests = 0;   // PODEM successes
    size_t threads = 1;               // executors the run actually used
    size_t sim_width_bits = 64;       // resolved parallel-pattern width
    bool budget_exhausted = false;    // kept for compat; mirrors status

    /// Ok: every fault resolved within budget. BudgetExhausted: the time
    /// budget / external guard stopped the run (remaining faults aborted,
    /// partial coverage reported). Degraded: an internal PODEM failure was
    /// contained to its fault (counted aborted) and the run completed.
    util::PhaseStatus status = util::PhaseStatus::Ok;
    std::string status_detail;

    // ---- retry escalation ------------------------------------------------
    size_t retried_faults = 0;  // escalation PODEM attempts
    size_t retry_recovered = 0; // aborted faults flipped to detected

    // ---- SAT tier --------------------------------------------------------
    /// Resolved engine name ("auto" | "podem" | "sat").
    std::string engine = "auto";
    size_t sat_attempts = 0;  // faults handed to the SAT engine
    size_t sat_recovered = 0; // SAT tests confirmed by the fault simulator
    size_t sat_redundant = 0; // UNSAT redundancy proofs
    /// Aggregate CDCL statistics across every solve of the run.
    uint64_t sat_conflicts = 0;
    uint64_t sat_decisions = 0;
    uint64_t sat_propagations = 0;
    uint64_t sat_learned_clauses = 0;
    uint64_t sat_restarts = 0;

    // ---- checkpoint / resume --------------------------------------------
    /// 1-based attempt number (2+ when the run resumed a checkpoint).
    uint64_t attempt = 1;
    /// Engine seconds spent by earlier attempts; test_gen_seconds includes
    /// them, so budgets and reports stay end-to-end across resumes.
    double prior_seconds = 0.0;
    /// Checkpoint events replayed before this attempt continued.
    size_t replayed_events = 0;
    /// The checkpoint could not be trusted (fingerprint mismatch, malformed
    /// record, injected load fault); nothing ran and status_detail carries
    /// the named diagnostic ("ckpt.<cause>: ...").
    bool resume_refused = false;

    /// Deterministic tests, statically compacted (collect_tests only).
    std::vector<ScalarSequence> tests;
    size_t tests_before_compaction = 0;

    /// Final per-fault statuses in fault-list order (always filled) — lets
    /// callers cross-check classifications between engines.
    std::vector<FaultStatus> statuses;

    /// All reported fields as one ordered metric document — the single
    /// source for summary(), --stats-json and the bench JSON report.
    [[nodiscard]] obs::Doc metrics() const;

    /// Human-readable one-liner rendered from metrics().
    [[nodiscard]] std::string summary() const;
};

/// Run the full ATPG flow on `nl`.
[[nodiscard]] EngineResult run_atpg(const synth::Netlist& nl,
                                    const EngineOptions& options);

} // namespace factor::atpg
