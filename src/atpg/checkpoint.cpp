#include "atpg/checkpoint.hpp"

#include "obs/inject.hpp"
#include "obs/obs.hpp"
#include "util/crc32.hpp"
#include "util/diagnostics.hpp"

namespace factor::atpg::ckpt {

namespace {

// Commit records carry PODEM codes plus the sat-mode additions ('r'
// redundant, 'k' solver budget); retry records stay PODEM-only; SAT-tier
// records have their own alphabet.
constexpr char kCommitOutcomes[] = "subdprk";
constexpr char kRetryOutcomes[] = "subdp";
constexpr char kSatOutcomes[] = "srnkp";

bool in_set(const char* set, char c) {
    for (const char* p = set; *p != '\0'; ++p) {
        if (*p == c) return true;
    }
    return false;
}

std::string named(const char* name, const std::string& detail) {
    return std::string(name) + ": " + detail;
}

} // namespace

// -------------------------------------------------------------- fingerprint

std::string fingerprint(const synth::Netlist& nl, const FaultList& faults,
                        const EngineOptions& options) {
    util::Fnv64 h;
    // Netlist: topology and names (fault sites and scoping are name-based).
    h.mix(static_cast<uint64_t>(nl.num_nets()));
    for (size_t n = 0; n < nl.num_nets(); ++n) {
        h.mix(nl.net_name(static_cast<synth::NetId>(n)));
        h.mix(uint64_t{0x1f});
    }
    h.mix(static_cast<uint64_t>(nl.num_gates()));
    for (const auto& g : nl.gates()) {
        h.mix(static_cast<uint64_t>(g.type));
        h.mix(static_cast<uint64_t>(g.out));
        h.mix(static_cast<uint64_t>(g.ins.size()));
        for (auto in : g.ins) h.mix(static_cast<uint64_t>(in));
    }
    h.mix(static_cast<uint64_t>(nl.inputs().size()));
    for (auto n : nl.inputs()) h.mix(static_cast<uint64_t>(n));
    h.mix(static_cast<uint64_t>(nl.outputs().size()));
    for (auto n : nl.outputs()) h.mix(static_cast<uint64_t>(n));
    // Collapsed fault list: the commit order is its index order.
    h.mix(static_cast<uint64_t>(faults.size()));
    for (const auto& e : faults.faults()) {
        h.mix(static_cast<uint64_t>(e.fault.net));
        h.mix(static_cast<uint64_t>(e.fault.gate));
        h.mix(static_cast<uint64_t>(e.fault.pin));
        h.mix(e.fault.sa1);
    }
    // Every option that shapes the trajectory. jobs and the wall/work
    // budgets are deliberately absent (see the header comment).
    h.mix(static_cast<uint64_t>(options.random_batches));
    h.mix(static_cast<uint64_t>(options.random_frames));
    h.mix(static_cast<uint64_t>(options.random_stale_limit));
    h.mix(static_cast<uint64_t>(options.max_backtracks));
    h.mix(static_cast<uint64_t>(options.max_frames));
    h.mix(options.seed);
    h.mix(options.scope_prefix);
    h.mix(options.collect_tests);
    h.mix(static_cast<uint64_t>(options.retry_rounds));
    h.mix(static_cast<uint64_t>(options.retry_backtrack_growth));
    h.mix(static_cast<uint64_t>(options.retry_backtrack_cap));
    // The *resolved* engine plus the SAT budgets that shape its trajectory
    // (mixed unconditionally so podem-mode fingerprints also move if the
    // defaults change in lockstep with the schema).
    h.mix(std::string(to_string(resolve_engine(options.engine))));
    h.mix(resolve_sat_budget(options.sat_conflict_budget));
    h.mix(static_cast<uint64_t>(resolve_sat_frames(options.sat_max_frames)));
    // The *resolved* pattern width: a batch is 64·words sequences, so the
    // random trajectory depends on it. Resolving here (instead of mixing
    // the raw option) makes an env/auto default change refuse a resume the
    // same way an explicit --sim-width change does. sim_mode is absent on
    // purpose — full and event-driven evaluation produce identical results.
    h.mix(static_cast<uint64_t>(resolve_sim_words(options.sim_width)));
    return h.hex();
}

// ------------------------------------------------------------------- codecs

std::string encode_test(const ScalarSequence& test) {
    std::string out;
    for (size_t f = 0; f < test.frames.size(); ++f) {
        if (f > 0) out += '|';
        for (V5 v : test.frames[f]) {
            switch (v) {
            case V5::Zero: out += '0'; break;
            case V5::One: out += '1'; break;
            case V5::X: out += 'X'; break;
            case V5::D: out += 'D'; break;
            case V5::DB: out += 'B'; break;
            }
        }
    }
    return out;
}

bool decode_test(std::string_view text, size_t num_pis, ScalarSequence& out) {
    out.frames.clear();
    std::vector<V5> frame;
    frame.reserve(num_pis);
    auto flush = [&]() {
        if (frame.size() != num_pis) return false;
        out.frames.push_back(frame);
        frame.clear();
        return true;
    };
    for (char c : text) {
        switch (c) {
        case '0': frame.push_back(V5::Zero); break;
        case '1': frame.push_back(V5::One); break;
        case 'X': frame.push_back(V5::X); break;
        case 'D': frame.push_back(V5::D); break;
        case 'B': frame.push_back(V5::DB); break;
        case '|':
            if (!flush()) return false;
            break;
        default: return false;
        }
    }
    if (!flush()) return false;
    return !out.frames.empty();
}

util::JournalRecord encode_header(const Header& h) {
    util::JournalRecord rec;
    rec.set("t", "h")
        .set("schema", kSchema)
        .set("eng", h.engine)
        .set("fp", h.fingerprint)
        .set_u64("faults", h.total_faults)
        .set_u64("attempt", h.attempt)
        .set_u64("w", h.prior_work)
        .set_f64("s", h.prior_seconds);
    return rec;
}

util::JournalRecord encode_event(const Event& ev) {
    util::JournalRecord rec;
    switch (ev.kind) {
    case EventKind::RandomBatch:
        rec.set("t", "rb").set_u64("batch", ev.batch).set_u64("newly",
                                                              ev.newly);
        break;
    case EventKind::RandomPhaseEnd: rec.set("t", "rp"); break;
    case EventKind::Commit:
        rec.set("t", "c").set_u64("i", ev.fault).set("o",
                                                     std::string(1, ev.outcome));
        if (ev.outcome == 's') rec.set("v", encode_test(ev.test));
        break;
    case EventKind::Retry:
        rec.set("t", "e")
            .set_u64("round", ev.round)
            .set_u64("i", ev.fault)
            .set("o", std::string(1, ev.outcome));
        if (ev.outcome == 's') rec.set("v", encode_test(ev.test));
        break;
    case EventKind::RoundEnd:
        rec.set("t", "er").set_u64("round", ev.round);
        break;
    case EventKind::SatAttempt:
        rec.set("t", "sa").set_u64("i", ev.fault).set(
            "o", std::string(1, ev.outcome));
        if (ev.outcome == 's') rec.set("v", encode_test(ev.test));
        break;
    case EventKind::End: rec.set("t", "end").set("reason", ev.reason); break;
    }
    rec.set_u64("w", ev.work).set_f64("s", ev.seconds);
    return rec;
}

// ------------------------------------------------------------------- loader

Load load(const std::string& path, const std::string& expected_fingerprint,
          const std::string& expected_engine, size_t num_faults,
          size_t num_pis) {
    Load out;
    try {
        obs::inject_point("atpg.ckpt.load");
    } catch (const util::FactorError& e) {
        out.diagnostic = named("ckpt.load_failed", e.what());
        return out;
    }
    util::JournalLoad jl = util::journal_load(path);
    out.dropped_lines = jl.dropped_lines;
    if (!jl.ok) {
        out.diagnostic = named("ckpt.open_failed", jl.error);
        return out;
    }
    if (jl.records.empty()) {
        out.diagnostic = named(
            "ckpt.empty", "'" + path + "' has no intact checkpoint header");
        return out;
    }

    // ---- header ----------------------------------------------------------
    const util::JournalRecord& h = jl.records[0];
    const std::string* t = h.get("t");
    const std::string* schema = h.get("schema");
    if (t == nullptr || *t != "h" || schema == nullptr) {
        out.diagnostic =
            named("ckpt.bad_schema", "first record is not a checkpoint header");
        return out;
    }
    if (*schema != kSchema) {
        out.diagnostic = named("ckpt.bad_schema",
                               "unsupported schema '" + *schema + "'");
        return out;
    }
    const std::string* fp = h.get("fp");
    out.header.fingerprint = fp != nullptr ? *fp : "";
    const std::string* eng = h.get("eng");
    out.header.engine = eng != nullptr ? *eng : "";
    out.header.total_faults = h.get_u64("faults");
    out.header.attempt = h.get_u64("attempt", 1);
    out.header.prior_work = h.get_u64("w");
    out.header.prior_seconds = h.get_f64("s");
    if (out.header.engine != expected_engine) {
        out.diagnostic = named(
            "ckpt.engine_mismatch",
            "checkpoint was written by engine '" + out.header.engine +
                "' but this run resolved engine '" + expected_engine +
                "'; refusing to resume");
        return out;
    }
    if (out.header.fingerprint != expected_fingerprint) {
        out.diagnostic = named(
            "ckpt.fingerprint_mismatch",
            "checkpoint was written by a different run configuration "
            "(design, seed or engine options changed); refusing to resume");
        return out;
    }
    if (out.header.total_faults != num_faults) {
        out.diagnostic = named("ckpt.fingerprint_mismatch",
                               "fault count differs from the checkpoint");
        return out;
    }

    // ---- events + order state machine ------------------------------------
    // Phase order: rb* rp? c* (e|er)* sa* end? — with batches sequential,
    // commit fault indices strictly increasing, rounds contiguous from 1,
    // within a round fault indices strictly increasing, and SAT-tier fault
    // indices strictly increasing.
    enum class Stage { Random, Deterministic, Escalation, Sat, Done };
    Stage stage = Stage::Random;
    uint64_t next_batch = 0;
    bool random_done = false;
    uint64_t last_fault = 0;
    bool any_commit = false;
    uint64_t rounds_done = 0;
    uint64_t cur_round = 0; // 0: no open round
    uint64_t last_retry_fault = 0;
    uint64_t last_sat_fault = 0;
    bool any_sat = false;

    auto reject = [&](const std::string& why) {
        out.events.clear();
        out.diagnostic = named("ckpt.malformed_record", why);
    };

    for (size_t r = 1; r < jl.records.size(); ++r) {
        const util::JournalRecord& rec = jl.records[r];
        const std::string* tt = rec.get("t");
        if (tt == nullptr) {
            reject("record without a type");
            return out;
        }
        if (stage == Stage::Done) {
            reject("record after the end marker");
            return out;
        }
        Event ev;
        ev.work = rec.get_u64("w");
        ev.seconds = rec.get_f64("s");
        if (*tt == "rb") {
            if (stage != Stage::Random || random_done) {
                reject("random batch after the random phase ended");
                return out;
            }
            ev.kind = EventKind::RandomBatch;
            ev.batch = rec.get_u64("batch", ~uint64_t{0});
            ev.newly = rec.get_u64("newly");
            if (ev.batch != next_batch) {
                reject("random batches out of order");
                return out;
            }
            ++next_batch;
        } else if (*tt == "rp") {
            if (stage != Stage::Random || random_done) {
                reject("duplicate random-phase end");
                return out;
            }
            ev.kind = EventKind::RandomPhaseEnd;
            random_done = true;
        } else if (*tt == "c") {
            if (stage == Stage::Escalation || stage == Stage::Sat) {
                reject("commit after escalation began");
                return out;
            }
            if (!random_done) {
                reject("commit before the random phase ended");
                return out;
            }
            stage = Stage::Deterministic;
            ev.kind = EventKind::Commit;
            ev.fault = rec.get_u64("i", ~uint64_t{0});
            const std::string* o = rec.get("o");
            if (o == nullptr || o->size() != 1 ||
                !in_set(kCommitOutcomes, (*o)[0])) {
                reject("commit with an unknown outcome");
                return out;
            }
            ev.outcome = (*o)[0];
            if (ev.fault >= num_faults) {
                reject("fault index out of range");
                return out;
            }
            if (any_commit && ev.fault <= last_fault) {
                reject("commit fault indices not increasing");
                return out;
            }
            if (ev.outcome == 's') {
                const std::string* v = rec.get("v");
                if (v == nullptr || !decode_test(*v, num_pis, ev.test)) {
                    reject("committed test vector is undecodable");
                    return out;
                }
            }
            last_fault = ev.fault;
            any_commit = true;
        } else if (*tt == "e" || *tt == "er") {
            if (!random_done) {
                reject("escalation before the random phase ended");
                return out;
            }
            if (stage == Stage::Sat) {
                reject("escalation after the SAT tier began");
                return out;
            }
            stage = Stage::Escalation;
            uint64_t round = rec.get_u64("round", 0);
            if (*tt == "er") {
                ev.kind = EventKind::RoundEnd;
                ev.round = static_cast<uint32_t>(round);
                if (round != rounds_done + 1) {
                    reject("escalation rounds not contiguous");
                    return out;
                }
                rounds_done = round;
                cur_round = 0;
            } else {
                ev.kind = EventKind::Retry;
                ev.round = static_cast<uint32_t>(round);
                ev.fault = rec.get_u64("i", ~uint64_t{0});
                const std::string* o = rec.get("o");
                if (o == nullptr || o->size() != 1 ||
                    !in_set(kRetryOutcomes, (*o)[0])) {
                    reject("retry with an unknown outcome");
                    return out;
                }
                ev.outcome = (*o)[0];
                if (ev.fault >= num_faults) {
                    reject("retry fault index out of range");
                    return out;
                }
                if (round != rounds_done + 1) {
                    reject("retry belongs to a closed escalation round");
                    return out;
                }
                if (cur_round == round && ev.fault <= last_retry_fault) {
                    reject("retry fault indices not increasing");
                    return out;
                }
                if (ev.outcome == 's') {
                    const std::string* v = rec.get("v");
                    if (v == nullptr || !decode_test(*v, num_pis, ev.test)) {
                        reject("retry test vector is undecodable");
                        return out;
                    }
                }
                cur_round = round;
                last_retry_fault = ev.fault;
            }
        } else if (*tt == "sa") {
            if (!random_done) {
                reject("SAT attempt before the random phase ended");
                return out;
            }
            stage = Stage::Sat;
            ev.kind = EventKind::SatAttempt;
            ev.fault = rec.get_u64("i", ~uint64_t{0});
            const std::string* o = rec.get("o");
            if (o == nullptr || o->size() != 1 ||
                !in_set(kSatOutcomes, (*o)[0])) {
                reject("SAT attempt with an unknown outcome");
                return out;
            }
            ev.outcome = (*o)[0];
            if (ev.fault >= num_faults) {
                reject("SAT attempt fault index out of range");
                return out;
            }
            if (any_sat && ev.fault <= last_sat_fault) {
                reject("SAT attempt fault indices not increasing");
                return out;
            }
            if (ev.outcome == 's') {
                const std::string* v = rec.get("v");
                if (v == nullptr || !decode_test(*v, num_pis, ev.test)) {
                    reject("SAT attempt test vector is undecodable");
                    return out;
                }
            }
            last_sat_fault = ev.fault;
            any_sat = true;
        } else if (*tt == "end") {
            ev.kind = EventKind::End;
            const std::string* reason = rec.get("reason");
            ev.reason = reason != nullptr ? *reason : "";
            stage = Stage::Done;
        } else {
            reject("unknown record type '" + *tt + "'");
            return out;
        }
        out.events.push_back(std::move(ev));
    }

    out.ok = true;
    return out;
}

// ------------------------------------------------------------------- writer

bool Writer::start_fresh(const std::string& path, const Header& h) {
    if (!jw_.open(path)) return false;
    return append_header(h);
}

bool Writer::start_rewrite(const std::string& path, const Header& h,
                           const std::vector<Event>& replayed) {
    if (!jw_.open_temp(path)) return false;
    if (!append_header(h)) return false;
    for (const Event& ev : replayed) {
        if (!jw_.append(encode_event(ev))) return false;
    }
    return jw_.publish();
}

bool Writer::append_header(const Header& h) {
    return jw_.append(encode_header(h));
}

bool Writer::append(const Event& ev) {
    if (!jw_.is_open()) return false;
    try {
        obs::inject_point("atpg.ckpt.write");
    } catch (const util::FactorError& e) {
        // The commit pipeline runs on pool workers and must not throw;
        // latch the failure so the engine can stop the run cooperatively
        // with the journal's committed prefix intact.
        jw_.close();
        fail_reason_ = e.what();
        return false;
    }
    bool ok = jw_.append(encode_event(ev));
    if (ok) obs::counter("atpg.ckpt.records").add(1);
    return ok;
}

} // namespace factor::atpg::ckpt
