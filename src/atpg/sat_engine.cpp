#include "atpg/sat_engine.hpp"

#include "atpg/logic.hpp"
#include "obs/inject.hpp"
#include "obs/obs.hpp"
#include "sat/miter.hpp"
#include "util/diagnostics.hpp"

#include <algorithm>

namespace factor::atpg {

namespace {

void accumulate(sat::SolverStats& into, const sat::SolverStats& s) {
    into.conflicts += s.conflicts;
    into.decisions += s.decisions;
    into.propagations += s.propagations;
    into.learned_clauses += s.learned_clauses;
    into.restarts += s.restarts;
}

ScalarSequence to_scalar(const std::vector<std::vector<bool>>& frames) {
    ScalarSequence seq;
    seq.frames.resize(frames.size());
    for (size_t f = 0; f < frames.size(); ++f) {
        seq.frames[f].reserve(frames[f].size());
        for (const bool b : frames[f]) {
            seq.frames[f].push_back(v5_binary(b));
        }
    }
    return seq;
}

} // namespace

SatFaultEngine::SatFaultEngine(const synth::Netlist& nl,
                               SatEngineOptions options)
    : nl_(nl), options_(options), fanout_(nl.build_fanout()),
      combinational_(nl.dff_count() == 0) {
    if (options_.first_frames == 0) options_.first_frames = 1;
    if (options_.max_frames == 0) options_.max_frames = 1;
    options_.max_frames =
        std::max(options_.max_frames, options_.first_frames);
}

SatAttempt SatFaultEngine::attempt(const Fault& fault) {
    obs::Span span("sat.solve");
    span.attr("net", static_cast<uint64_t>(fault.net));
    span.attr("sa", fault.sa1 ? 1 : 0);

    SatAttempt out;
    try {
        obs::inject_point("sat.solve");
        out = attempt_impl(fault);
    } catch (const util::FactorError& e) {
        out.outcome = 'p';
        out.error = e.what();
    } catch (const std::exception& e) {
        out.outcome = 'p';
        out.error = e.what();
    }

    span.attr("outcome", std::string(1, out.outcome));
    span.attr("conflicts", out.stats.conflicts);
    obs::counter("sat.solves").add();
    obs::counter("sat.conflicts").add(out.stats.conflicts);
    obs::counter("sat.decisions").add(out.stats.decisions);
    obs::counter("sat.propagations").add(out.stats.propagations);
    obs::counter("sat.learned_clauses").add(out.stats.learned_clauses);
    obs::counter("sat.restarts").add(out.stats.restarts);
    return out;
}

SatAttempt SatFaultEngine::attempt_impl(const Fault& fault) {
    SatAttempt out;
    sat::FaultSite site;
    site.net = fault.net;
    site.gate = fault.gate;
    site.pin = fault.pin;
    site.sa1 = fault.sa1;

    sat::SolverLimits limits;
    limits.max_conflicts = options_.conflict_budget;
    limits.guard = options_.guard;
    limits.guard2 = options_.guard2;

    // Redundancy proof first: depth-independent, and for combinational
    // netlists it doubles as the complete detection check.
    sat::MiterOptions ropts;
    ropts.free_initial_state = true;
    const sat::Miter redundancy(nl_, site, ropts, &fanout_);
    sat::Solver rsolver(redundancy.cnf(), limits);
    const sat::SolveResult rres = rsolver.solve();
    accumulate(out.stats, rsolver.stats());
    switch (rres) {
    case sat::SolveResult::Unsat:
        out.outcome = 'r';
        return out;
    case sat::SolveResult::Unknown:
        out.outcome = 'k';
        return out;
    case sat::SolveResult::Sat:
        if (combinational_) {
            out.test = to_scalar(redundancy.extract_inputs(rsolver));
            out.outcome = 's';
            return out;
        }
        break; // sequential: the model may need real initialization
    }

    // Sequential detection at doubling depths. The miter's objective ORs
    // over all frames, so a solve at depth d subsumes every depth <= d.
    for (size_t depth = std::min(options_.first_frames, options_.max_frames);
         ; depth = std::min(options_.max_frames, depth * 2)) {
        sat::MiterOptions dopts;
        dopts.frames = depth;
        const sat::Miter miter(nl_, site, dopts, &fanout_);
        sat::Solver solver(miter.cnf(), limits);
        const sat::SolveResult res = solver.solve();
        accumulate(out.stats, solver.stats());
        if (res == sat::SolveResult::Sat) {
            out.test = to_scalar(miter.extract_inputs(solver));
            out.outcome = 's';
            return out;
        }
        if (res == sat::SolveResult::Unknown) {
            out.outcome = 'k';
            return out;
        }
        if (depth >= options_.max_frames) break; // Unsat at the cap
    }
    out.outcome = 'n';
    return out;
}

} // namespace factor::atpg
