// ATPG checkpoint/resume: the "factor.ckpt.v1" record schema over
// util::Journal.
//
// PR 3's strictly in-order commit pipeline makes engine state at any commit
// boundary a deterministic function of (netlist, options, seed, committed
// prefix). A checkpoint therefore only needs to journal the committed
// prefix; resume replays it — committed tests go back through the fault
// simulator to re-derive the detection bitmap — and the run continues from
// the first uncommitted fault with byte-identical results (wall-clock
// budgets stay the documented exception, see DESIGN.md §9).
//
// Record stream (one CRC-framed NDJSON line each, in this order):
//   h   header: schema, fingerprint, fault count, attempt number, and the
//       wall-clock / work-quota progress of earlier attempts
//   rb  one committed random-phase batch (batch index, faults dropped)
//   rp  random phase completed (absent if the run died or stopped inside it)
//   c   one committed deterministic fault: index + outcome
//       ('s' test committed [vector attached], 'u' untestable,
//        'b' backtrack abort, 'd' depth abort, 'p' contained PODEM error)
//   e   one retry-escalation attempt: round, fault index, outcome as above
//   er  escalation round completed
//   sa  one SAT-tier attempt: fault index + outcome ('s' test committed
//       [vector attached], 'r' proven redundant, 'n' no test within the
//       depth cap, 'k' solver budget exhausted, 'p' contained error)
//   end run finished; reason "ok", a GuardStop name, or "ckpt_write_failed"
// Every record carries the cumulative engine work ticks ("w") and engine
// seconds ("s") across all attempts, which is how resumed runs keep
// honoring end-to-end budgets.
//
// The fingerprint hashes the transformed netlist, the collapsed fault
// list and every EngineOptions field that shapes the trajectory (seed,
// budgets-per-fault, phase shapes, scope, retry policy). It deliberately
// excludes `jobs` (the engine is jobs-invariant) and the wall-clock/work
// budgets (resuming with a bigger budget to finish a stopped campaign is a
// supported workflow). A mismatch is never resumed.
#pragma once

#include "atpg/engine.hpp"
#include "atpg/fault.hpp"
#include "atpg/fault_sim.hpp"
#include "synth/netlist.hpp"
#include "util/journal.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace factor::atpg::ckpt {

inline constexpr const char* kSchema = "factor.ckpt.v1";

struct Header {
    std::string fingerprint;
    /// Resolved engine name ("auto" | "podem" | "sat"). Checked before the
    /// fingerprint so an engine switch gets its own named diagnostic
    /// (ckpt.engine_mismatch) instead of the generic fingerprint one.
    std::string engine = "auto";
    uint64_t total_faults = 0;
    uint64_t attempt = 1;        // 1-based; rewritten +1 on each resume
    uint64_t prior_work = 0;     // engine ticks consumed by earlier attempts
    double prior_seconds = 0.0;  // engine seconds spent by earlier attempts
};

enum class EventKind : uint8_t {
    RandomBatch,
    RandomPhaseEnd,
    Commit,
    Retry,
    RoundEnd,
    SatAttempt,
    End,
};

struct Event {
    EventKind kind = EventKind::Commit;
    uint64_t batch = 0;   // RandomBatch
    uint64_t newly = 0;   // RandomBatch: faults dropped (replay check)
    uint64_t fault = 0;   // Commit / Retry / SatAttempt
    char outcome = 0;     // Commit/Retry: 's','u','b','d','p' (+ sat-mode
                          // commits 'r','k'); SatAttempt: 's','r','n','k','p'
    uint32_t round = 0;   // Retry / RoundEnd (1-based)
    ScalarSequence test;  // outcome == 's'
    std::string reason;   // End
    uint64_t work = 0;    // cumulative engine ticks at write
    double seconds = 0.0; // cumulative engine seconds at write
};

/// Fingerprint of everything that pins the engine trajectory.
[[nodiscard]] std::string fingerprint(const synth::Netlist& nl,
                                      const FaultList& faults,
                                      const EngineOptions& options);

struct Load {
    bool ok = false;
    /// Named diagnostic on failure, e.g.
    /// "ckpt.fingerprint_mismatch: checkpoint was written by a different
    /// run configuration". The leading token before ':' is stable.
    std::string diagnostic;
    Header header;
    std::vector<Event> events;
    size_t dropped_lines = 0; // torn/corrupt tail truncated by the journal
};

/// Load and validate a checkpoint: journal framing (tail truncation),
/// schema + engine + fingerprint, per-event decoding and the commit-order
/// state machine (batches sequential, fault indices strictly increasing,
/// rounds contiguous, SAT attempts after escalation). CRC-valid-but-
/// semantically-invalid records refuse the resume rather than risk a
/// silent mis-resume.
[[nodiscard]] Load load(const std::string& path,
                        const std::string& expected_fingerprint,
                        const std::string& expected_engine, size_t num_faults,
                        size_t num_pis);

/// Appends factor.ckpt.v1 records; IO errors and injected faults at the
/// "atpg.ckpt.write" site are latched in failed() instead of thrown, so
/// the commit pipeline (which must not throw across the thread pool) can
/// stop the run cooperatively.
class Writer {
  public:
    /// Fresh run: create/truncate `path`, write the header.
    [[nodiscard]] bool start_fresh(const std::string& path, const Header& h);

    /// Resume: rebuild the journal as header + replayed events in
    /// "<path>.tmp", atomically publish it over `path`, keep appending.
    [[nodiscard]] bool start_rewrite(const std::string& path, const Header& h,
                                     const std::vector<Event>& replayed);

    [[nodiscard]] bool append(const Event& ev);

    [[nodiscard]] bool active() const { return jw_.is_open(); }
    [[nodiscard]] bool failed() const {
        return jw_.failed() || !fail_reason_.empty();
    }
    [[nodiscard]] const std::string& error() const {
        return fail_reason_.empty() ? jw_.error() : fail_reason_;
    }

  private:
    [[nodiscard]] bool append_header(const Header& h);

    util::JournalWriter jw_;
    std::string fail_reason_; // injected-fault latch (stream errors live
                              // in the JournalWriter itself)
};

// Codecs, exposed for tests and fuzz tooling.
[[nodiscard]] std::string encode_test(const ScalarSequence& test);
[[nodiscard]] bool decode_test(std::string_view text, size_t num_pis,
                               ScalarSequence& out);
[[nodiscard]] util::JournalRecord encode_event(const Event& ev);
[[nodiscard]] util::JournalRecord encode_header(const Header& h);

} // namespace factor::atpg::ckpt
