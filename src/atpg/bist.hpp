// Built-in self-test primitives of the paper's era: an LFSR pattern
// generator and a MISR response compactor, plus a helper that measures the
// stuck-at coverage a pure LFSR-driven BIST session achieves. Used by the
// ablation benches to contrast pseudo-random BIST with the deterministic
// FACTOR flow on the same fault lists.
#pragma once

#include "atpg/fault.hpp"
#include "atpg/fault_sim.hpp"
#include "synth/netlist.hpp"

#include <cstdint>
#include <vector>

namespace factor::atpg {

/// Fibonacci LFSR with configurable width and feedback taps.
class Lfsr {
  public:
    /// `taps` are bit positions (0-based) XORed into the feedback;
    /// `seed` must be non-zero for a non-degenerate sequence.
    Lfsr(unsigned width, std::vector<unsigned> taps, uint64_t seed = 1);

    /// A maximal-length LFSR for widths 2..32 (standard polynomials).
    [[nodiscard]] static Lfsr maximal(unsigned width, uint64_t seed = 1);

    /// Current state (width bits).
    [[nodiscard]] uint64_t state() const { return state_; }
    /// Advance one step and return the new state.
    uint64_t step();

    [[nodiscard]] unsigned width() const { return width_; }

  private:
    unsigned width_;
    std::vector<unsigned> taps_;
    uint64_t state_;
};

/// Multiple-input signature register: XOR-compacts one word per cycle into
/// a rotating signature.
class Misr {
  public:
    explicit Misr(unsigned width, uint64_t seed = 0);
    void absorb(uint64_t word);
    /// Compact a multi-word response (e.g. one word per 32 primary
    /// outputs) in order — the width-agnostic form the wide fault-sim
    /// kernels feed.
    void absorb(const uint64_t* words, size_t n);
    [[nodiscard]] uint64_t signature() const { return state_; }

  private:
    unsigned width_;
    uint64_t state_;
};

struct BistResult {
    size_t patterns_applied = 0;
    double coverage_percent = 0.0;
    uint64_t good_signature = 0; // MISR signature of the fault-free machine
};

struct BistOptions {
    size_t patterns = 1024;  // LFSR patterns (frames) to apply
    size_t frames_per_sequence = 16;
    uint64_t seed = 1;
    std::string scope_prefix;
    /// Parallel-pattern width in bits (64/256/512; 0 = auto like
    /// EngineOptions::sim_width). Each frame carries 64·words patterns;
    /// the good-machine signature is always taken over lane 0, so it is
    /// width-invariant.
    size_t sim_width = 0;
};

/// Drive `nl` with LFSR-generated stimulus, fault-simulate with dropping,
/// and compute the good-machine MISR signature over the primary outputs.
[[nodiscard]] BistResult run_bist(const synth::Netlist& nl,
                                  const BistOptions& options = {});

} // namespace factor::atpg
