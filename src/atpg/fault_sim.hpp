// Sequential fault simulation, 64·W test sequences in parallel
// (parallel-pattern single-fault propagation).
//
// The simulator drives the netlist as a synchronous machine: every frame it
// applies one input vector per sequence, evaluates the combinational logic
// in levelized order under three-valued semantics, samples the primary
// outputs, and clocks the DFF state. Flip-flops start unknown (X); a fault
// counts as detected in a sequence only when a primary output is binary in
// both machines and differs — the conservative definite-detection rule.
//
// Two compounding speed axes over the classic full-sweep 64-bit kernel
// (DESIGN.md §11):
//   * width — the kernel is instantiated for 1/4/8 lane words (64/256/512
//     patterns per block) over the VWide<W> planes of logic.hpp;
//   * work  — event-driven faulty evaluation re-simulates only the gates of
//     the fault's sequential fanout cone whose inputs actually diverge from
//     the cached good-machine values; everything outside the cone provably
//     equals the good machine, so skipping it cannot change a mask.
// Both axes preserve the byte-identical determinism contract: for the same
// stimulus, every (width, mode) combination produces the same detections
// for the lanes it simulates.
#pragma once

#include "atpg/fault.hpp"
#include "atpg/logic.hpp"
#include "synth/netlist.hpp"

#include <cstdint>
#include <memory>
#include <mutex>
#include <random>
#include <unordered_map>
#include <vector>

namespace factor::atpg {

/// One frame of stimuli for 64·words sequences: `words` consecutive V64
/// entries per primary input, laid out PI-major — pi[i*words + w] is lane
/// word w of input i (word w carries sequences [64w, 64w+63]). The default
/// words == 1 keeps every existing 64-lane call site working unchanged.
/// Inputs left X are legal (e.g. PODEM don't-cares).
struct Frame {
    std::vector<V64> pi; // indexed like Netlist::inputs(), words per input
    size_t words = 1;
};

/// A multi-frame stimulus for 64·words parallel sequences.
using Sequence = std::vector<Frame>;

/// A single scalar test sequence (one value per PI per frame), produced by
/// the deterministic generator. X entries are don't-cares.
struct ScalarSequence {
    std::vector<std::vector<V5>> frames; // frames[f][pi]

    [[nodiscard]] size_t num_frames() const { return frames.size(); }
    [[nodiscard]] bool operator==(const ScalarSequence&) const = default;
};

/// Expand a scalar sequence into a parallel Sequence occupying bit 0.
[[nodiscard]] Sequence broadcast(const ScalarSequence& s, size_t num_pis);

/// Faulty-machine evaluation strategy. Auto resolves to the FACTOR_SIM_MODE
/// environment variable ("full"/"event") or Event. The mode never changes
/// detection results — only how much work computing them takes — so it is
/// deliberately absent from the checkpoint fingerprint.
enum class SimMode : uint8_t { Auto, Full, Event };

/// Resolve a requested pattern width in bits (64/256/512; 0 = auto: the
/// FACTOR_SIM_WIDTH environment variable if set, else the widest kernel the
/// build supports) to a lane-word count. Throws util::FactorError on an
/// unsupported width.
[[nodiscard]] size_t resolve_sim_words(size_t sim_width_bits);

/// Resolve SimMode::Auto against FACTOR_SIM_MODE (throws util::FactorError
/// on an unrecognized value); concrete modes pass through.
[[nodiscard]] SimMode resolve_sim_mode(SimMode requested);

/// Detection mask for up to kMaxSimWords lane words: bit p of words[w] set
/// iff sequence 64w+p definitely detects the fault.
struct DetectMask {
    std::array<uint64_t, kMaxSimWords> bits{};
    size_t words = 1;

    [[nodiscard]] bool any() const {
        for (size_t w = 0; w < words; ++w) {
            if (bits[w] != 0) return true;
        }
        return false;
    }
    /// All simulated lanes detected (the width-aware ~0ull early-out).
    [[nodiscard]] bool all() const {
        for (size_t w = 0; w < words; ++w) {
            if (bits[w] != ~0ull) return false;
        }
        return true;
    }
    [[nodiscard]] size_t count() const;
    /// Lanes 0..63 — the legacy uint64_t view.
    [[nodiscard]] uint64_t word0() const { return bits[0]; }

    [[nodiscard]] bool operator==(const DetectMask&) const = default;
};

/// Immutable good-machine snapshot of one Sequence: every net's value for
/// every frame plus the per-frame PO view, at an effective lane-word count
/// of min(simulator width, stimulus width). Produced once per sequence by
/// FaultSimulator::simulate_good_cached and shared read-only across the
/// executor simulators — the event-driven faulty kernel reads net values
/// straight out of it instead of re-simulating the good machine.
struct GoodSim {
    size_t words = 1;  // effective lane words
    size_t frames = 0;
    size_t nets = 0;
    /// Net value planes, frame-major: {one,zero}[(f*nets + net)*words + w].
    std::vector<uint64_t> one, zero;

    [[nodiscard]] const uint64_t* one_at(size_t frame) const {
        return one.data() + frame * nets * words;
    }
    [[nodiscard]] const uint64_t* zero_at(size_t frame) const {
        return zero.data() + frame * nets * words;
    }
    /// Lane word 0 of `net` at `frame` (legacy V64 view).
    [[nodiscard]] V64 word0(size_t frame, synth::NetId net) const {
        size_t at = (frame * nets + net) * words;
        return {one[at], zero[at]};
    }
};

/// Precomputed per-fault-site fanout cones, shared by every simulator of a
/// run (one instance per FaultList / engine invocation). A cone is the
/// *sequential* closure of the seed net's fanout — it crosses DFFs and
/// keeps going from their outputs — so any net that could ever diverge
/// from the good machine lies inside it. Cones are built lazily on first
/// use and cached by seed net; the class is thread-safe (the engine's
/// executors all resolve cones through one shared instance).
class FanoutCones {
  public:
    explicit FanoutCones(const synth::Netlist& nl);

    struct Cone {
        /// Combinational member gates in topological order. Empty when
        /// `full` — a cone covering most of the netlist falls back to
        /// sweeping the whole levelized order (still with dirty-skip).
        std::vector<synth::GateId> gates;
        /// Member DFFs as indices into Netlist::dffs() order.
        std::vector<uint32_t> dffs;
        /// Primary-output indices whose net lies inside the cone — the
        /// only POs where a detection can happen.
        std::vector<uint32_t> pos;
        bool full = false;
    };

    /// Cone of all gates reachable from `net` (crossing DFFs).
    [[nodiscard]] const Cone& for_net(synth::NetId net);

    /// Per-net reader lists (shared with the event kernel's dirty marking).
    [[nodiscard]] const std::vector<std::vector<synth::GateId>>& fanout()
        const {
        return fanout_;
    }
    /// Topological position of each gate (DFFs get their id's slot too,
    /// but only combinational members are ordered by it).
    [[nodiscard]] const std::vector<uint32_t>& topo_pos() const {
        return topo_pos_;
    }
    /// Gate id -> index in Netlist::dffs() order (kNoDff for non-DFFs).
    static constexpr uint32_t kNoDff = ~0u;
    [[nodiscard]] const std::vector<uint32_t>& dff_index() const {
        return dff_index_;
    }

  private:
    [[nodiscard]] std::unique_ptr<Cone> build(synth::NetId net) const;

    const synth::Netlist& nl_;
    std::vector<std::vector<synth::GateId>> fanout_;
    std::vector<uint32_t> topo_pos_;
    std::vector<uint32_t> dff_index_;
    size_t full_threshold_ = 0;

    mutable std::mutex mu_;
    std::unordered_map<synth::NetId, std::unique_ptr<Cone>> cones_;
};

/// Simulation methods are non-const because each instance owns reusable
/// value/state scratch arrays (no per-call allocation). One simulator must
/// not be shared across threads; parallel callers construct one per worker
/// — cheap, since the netlist's levelization and the fanout cones are
/// computed once and shared. GoodSim snapshots are plain immutable data and
/// may be produced by one simulator and consumed by another.
class FaultSimulator {
  public:
    struct Config {
        /// Lane words per pattern block (1/4/8 — see resolve_sim_words).
        size_t words = 1;
        SimMode mode = SimMode::Auto;
        /// Cone cache shared across a run's simulators; created privately
        /// when null and the resolved mode is Event.
        std::shared_ptr<FanoutCones> cones;
    };

    /// Legacy 64-bit simulator (words = 1); detection results are identical
    /// in every mode, so existing call sites keep their exact behavior.
    explicit FaultSimulator(const synth::Netlist& nl);
    FaultSimulator(const synth::Netlist& nl, Config cfg);
    FaultSimulator(FaultSimulator&&) noexcept;
    ~FaultSimulator(); // out-of-line: kernels_ holds incomplete KernelBase

    /// Good-machine simulation; returns PO values per frame (lane word 0).
    [[nodiscard]] std::vector<std::vector<V64>>
    simulate_good(const Sequence& seq);

    /// Good-machine simulation retaining every net's value per frame — the
    /// wide/event detection paths take this instead of the PO view.
    [[nodiscard]] std::shared_ptr<const GoodSim>
    simulate_good_cached(const Sequence& seq);

    /// Detection mask for one fault: bit p set iff sequence p definitely
    /// detects the fault. `good_po` must come from simulate_good(seq).
    [[nodiscard]] uint64_t
    detect_mask(const Fault& fault, const Sequence& seq,
                const std::vector<std::vector<V64>>& good_po);

    /// Wide detection mask against a cached good-machine snapshot.
    [[nodiscard]] DetectMask detect_mask(const Fault& fault,
                                         const Sequence& seq,
                                         const GoodSim& good);

    /// True iff any of the 64 sequences detects the fault. Unlike
    /// detect_mask, stops simulating frames at the first detection — the
    /// fast path for fault dropping, where the mask itself is irrelevant.
    [[nodiscard]] bool
    detects(const Fault& fault, const Sequence& seq,
            const std::vector<std::vector<V64>>& good_po);

    /// Wide stop-at-first-detection variant over a cached snapshot.
    [[nodiscard]] bool detects(const Fault& fault, const Sequence& seq,
                               const GoodSim& good);

    /// Fault-simulate `seq` against all Undetected faults in `list`,
    /// marking Detected entries. Returns the number of newly detected
    /// faults. Internally uses the cached/event path; results are
    /// identical to the legacy full sweep.
    size_t run_and_drop(FaultList& list, const Sequence& seq);

    /// Uniformly random binary stimulus for 64·words sequences x `frames`
    /// frames. Draws words PI-major (all words of PI 0, then PI 1, …), so
    /// at words == 1 the draw order — and with it every seeded trajectory —
    /// is byte-identical to the historical 64-lane generator.
    [[nodiscard]] Sequence random_sequence(std::mt19937_64& rng,
                                           size_t frames) const;

    [[nodiscard]] const synth::Netlist& netlist() const { return nl_; }
    [[nodiscard]] size_t words() const { return words_; }
    [[nodiscard]] SimMode mode() const { return mode_; }

  private:
    void eval_frame(std::vector<V64>& value, const Frame& frame,
                    const std::vector<V64>& state, const Fault* fault) const;
    /// Shared engine of the legacy detect_mask/detects: simulate the faulty
    /// machine at 64 lanes, accumulating detection bits; `stop_at_first`
    /// ends the frame loop as soon as any sequence detects. Kept as an
    /// independent full-sweep kernel — the differential suite cross-checks
    /// the wide/event kernels against it.
    [[nodiscard]] uint64_t
    faulty_detect(const Fault& fault, const Sequence& seq,
                  const std::vector<std::vector<V64>>& good_po,
                  bool stop_at_first);

    /// Width-erased kernel interface; one instantiation per lane-word
    /// count, created lazily (a broadcast sequence only ever needs W=1).
    class KernelBase;
    template <size_t W> class Kernel;
    [[nodiscard]] KernelBase& kernel_for(size_t words);

    [[nodiscard]] DetectMask wide_detect(const Fault& fault,
                                         const Sequence& seq,
                                         const GoodSim& good,
                                         bool stop_at_first);

    const synth::Netlist& nl_;
    std::shared_ptr<const std::vector<synth::GateId>> topo_;
    std::vector<synth::GateId> dffs_;
    size_t words_ = 1;
    SimMode mode_ = SimMode::Event;
    std::shared_ptr<FanoutCones> cones_;
    std::array<std::unique_ptr<KernelBase>, 3> kernels_; // W = 1, 4, 8
    // Scratch reused across calls (net values / DFF state), legacy kernel.
    std::vector<V64> value_;
    std::vector<V64> state_;
};

} // namespace factor::atpg
