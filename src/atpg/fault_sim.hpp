// Sequential fault simulation, 64 test sequences in parallel
// (parallel-pattern single-fault propagation).
//
// The simulator drives the netlist as a synchronous machine: every frame it
// applies one input vector per sequence, evaluates the combinational logic
// in levelized order under three-valued semantics, samples the primary
// outputs, and clocks the DFF state. Flip-flops start unknown (X); a fault
// counts as detected in a sequence only when a primary output is binary in
// both machines and differs — the conservative definite-detection rule.
#pragma once

#include "atpg/fault.hpp"
#include "atpg/logic.hpp"
#include "synth/netlist.hpp"

#include <cstdint>
#include <memory>
#include <random>
#include <vector>

namespace factor::atpg {

/// One frame of stimuli: a V64 per primary input (bit p = sequence p).
/// Inputs left X are legal (e.g. PODEM don't-cares).
struct Frame {
    std::vector<V64> pi; // indexed like Netlist::inputs()
};

/// A multi-frame stimulus for 64 parallel sequences.
using Sequence = std::vector<Frame>;

/// A single scalar test sequence (one value per PI per frame), produced by
/// the deterministic generator. X entries are don't-cares.
struct ScalarSequence {
    std::vector<std::vector<V5>> frames; // frames[f][pi]

    [[nodiscard]] size_t num_frames() const { return frames.size(); }
    [[nodiscard]] bool operator==(const ScalarSequence&) const = default;
};

/// Expand a scalar sequence into a parallel Sequence occupying bit 0.
[[nodiscard]] Sequence broadcast(const ScalarSequence& s, size_t num_pis);

/// Simulation methods are non-const because each instance owns reusable
/// value/state scratch arrays (no per-call allocation). One simulator must
/// not be shared across threads; parallel callers construct one per worker
/// — cheap, since the netlist's levelization is computed once and shared.
class FaultSimulator {
  public:
    explicit FaultSimulator(const synth::Netlist& nl);

    /// Good-machine simulation; returns PO values per frame.
    [[nodiscard]] std::vector<std::vector<V64>>
    simulate_good(const Sequence& seq);

    /// Detection mask for one fault: bit p set iff sequence p definitely
    /// detects the fault. `good_po` must come from simulate_good(seq).
    [[nodiscard]] uint64_t
    detect_mask(const Fault& fault, const Sequence& seq,
                const std::vector<std::vector<V64>>& good_po);

    /// True iff any of the 64 sequences detects the fault. Unlike
    /// detect_mask, stops simulating frames at the first detection — the
    /// fast path for fault dropping, where the mask itself is irrelevant.
    [[nodiscard]] bool
    detects(const Fault& fault, const Sequence& seq,
            const std::vector<std::vector<V64>>& good_po);

    /// Fault-simulate `seq` against all Undetected faults in `list`,
    /// marking Detected entries. Returns the number of newly detected
    /// faults.
    size_t run_and_drop(FaultList& list, const Sequence& seq);

    /// Uniformly random binary stimulus for 64 sequences x `frames` frames.
    [[nodiscard]] Sequence random_sequence(std::mt19937_64& rng,
                                           size_t frames) const;

    [[nodiscard]] const synth::Netlist& netlist() const { return nl_; }

  private:
    void eval_frame(std::vector<V64>& value, const Frame& frame,
                    const std::vector<V64>& state, const Fault* fault) const;
    /// Shared engine of detect_mask/detects: simulate the faulty machine,
    /// accumulating detection bits; `stop_at_first` ends the frame loop as
    /// soon as any sequence detects.
    [[nodiscard]] uint64_t
    faulty_detect(const Fault& fault, const Sequence& seq,
                  const std::vector<std::vector<V64>>& good_po,
                  bool stop_at_first);

    const synth::Netlist& nl_;
    std::shared_ptr<const std::vector<synth::GateId>> topo_;
    std::vector<synth::GateId> dffs_;
    // Scratch reused across calls (net values / DFF state).
    std::vector<V64> value_;
    std::vector<V64> state_;
};

} // namespace factor::atpg
