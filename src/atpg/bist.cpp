#include "atpg/bist.hpp"

#include "util/diagnostics.hpp"

namespace factor::atpg {

using synth::Netlist;

Lfsr::Lfsr(unsigned width, std::vector<unsigned> taps, uint64_t seed)
    : width_(width), taps_(std::move(taps)),
      state_(seed & ((width >= 64) ? ~0ull : ((1ull << width) - 1))) {
    if (width_ < 2 || width_ > 64) {
        throw util::FactorError("Lfsr width out of range");
    }
    if (state_ == 0) state_ = 1;
}

Lfsr Lfsr::maximal(unsigned width, uint64_t seed) {
    // Standard maximal-length feedback taps (XOR form, 0-based positions).
    switch (width) {
    case 2: return Lfsr(2, {1, 0}, seed);
    case 3: return Lfsr(3, {2, 1}, seed);
    case 4: return Lfsr(4, {3, 2}, seed);
    case 5: return Lfsr(5, {4, 2}, seed);
    case 6: return Lfsr(6, {5, 4}, seed);
    case 7: return Lfsr(7, {6, 5}, seed);
    case 8: return Lfsr(8, {7, 5, 4, 3}, seed);
    case 16: return Lfsr(16, {15, 14, 12, 3}, seed);
    case 24: return Lfsr(24, {23, 22, 21, 16}, seed);
    case 32: return Lfsr(32, {31, 21, 1, 0}, seed);
    default:
        if (width < 8) return Lfsr(width, {width - 1, width - 2}, seed);
        // Fallback: not guaranteed maximal but long-period.
        return Lfsr(width, {width - 1, width - 2, width / 2, 0}, seed);
    }
}

uint64_t Lfsr::step() {
    uint64_t fb = 0;
    for (unsigned t : taps_) fb ^= (state_ >> t) & 1;
    state_ = ((state_ << 1) | fb) &
             ((width_ >= 64) ? ~0ull : ((1ull << width_) - 1));
    if (state_ == 0) state_ = 1; // escape the degenerate fixed point
    return state_;
}

Misr::Misr(unsigned width, uint64_t seed)
    : width_(width),
      state_(seed & ((width >= 64) ? ~0ull : ((1ull << width) - 1))) {
    if (width_ < 2 || width_ > 64) {
        throw util::FactorError("Misr width out of range");
    }
}

void Misr::absorb(uint64_t word) {
    uint64_t mask = (width_ >= 64) ? ~0ull : ((1ull << width_) - 1);
    uint64_t rotated = ((state_ << 1) | (state_ >> (width_ - 1))) & mask;
    state_ = rotated ^ (word & mask);
}

void Misr::absorb(const uint64_t* words, size_t n) {
    for (size_t i = 0; i < n; ++i) absorb(words[i]);
}

BistResult run_bist(const Netlist& nl, const BistOptions& options) {
    BistResult result;
    FaultList list(nl, options.scope_prefix);
    const size_t words = resolve_sim_words(options.sim_width);
    FaultSimulator sim(nl, FaultSimulator::Config{words, SimMode::Auto, {}});

    const size_t num_pis = nl.inputs().size();
    const size_t lanes = 64 * words;
    // One LFSR per 32 input bits, stepped per pattern.
    const size_t ngens = (num_pis + 31) / 32;
    std::vector<Lfsr> gens;
    for (size_t l = 0; l < ngens; ++l) {
        gens.push_back(Lfsr::maximal(32, options.seed + l * 977));
    }

    Misr misr(32, 0);
    size_t applied = 0;
    while (applied < options.patterns) {
        // Build one sequence; each of the 64·words parallel slots gets its
        // own LFSR phase so a batch covers lanes * frames patterns. Lane 0
        // sees the same stream at every width, keeping the good-machine
        // signature width-invariant per frame.
        Sequence seq;
        for (size_t f = 0; f < options.frames_per_sequence; ++f) {
            Frame frame;
            frame.words = words;
            frame.pi.resize(num_pis * words);
            for (size_t i = 0; i < num_pis; ++i) {
                for (size_t w = 0; w < words; ++w) {
                    uint64_t bits = 0;
                    for (unsigned p = 0; p < 64; ++p) {
                        Lfsr& g = gens[i / 32];
                        // Derive one pseudo-random bit per (pattern, pin).
                        uint64_t s = g.step();
                        bits |= ((s >> (i % 32)) & 1) << p;
                    }
                    frame.pi[i * words + w] = V64{bits, ~bits};
                }
            }
            seq.push_back(std::move(frame));
            applied += lanes;
            if (applied >= options.patterns) break;
        }
        (void)sim.run_and_drop(list, seq);
        // Good-machine signature over the PO stream (slot 0 of each frame),
        // compacted 32 outputs per word — no 32-PO truncation.
        auto good = sim.simulate_good(seq);
        for (const auto& frame_pos : good) {
            std::vector<uint64_t> resp(
                std::max<size_t>(1, (frame_pos.size() + 31) / 32), 0);
            for (size_t o = 0; o < frame_pos.size(); ++o) {
                if (frame_pos[o].one & 1) resp[o / 32] |= (1ull << (o % 32));
            }
            misr.absorb(resp.data(), resp.size());
        }
    }
    result.patterns_applied = applied;
    result.coverage_percent = list.coverage_percent();
    result.good_signature = misr.signature();
    return result;
}

} // namespace factor::atpg
