#include "atpg/engine.hpp"

#include "obs/inject.hpp"
#include "obs/obs.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"

#include <algorithm>
#include <random>
#include <sstream>

namespace factor::atpg {

obs::Doc EngineResult::metrics() const {
    obs::Doc d;
    d.add("faults", total_faults)
        .add("detected", detected)
        .add("untestable", untestable)
        .add("aborted", aborted)
        .add("coverage_percent", coverage_percent)
        .add("efficiency_percent", efficiency_percent)
        .add("time_seconds", test_gen_seconds)
        .add("random_sequences", random_sequences)
        .add("deterministic_tests", deterministic_tests);
    if (tests_before_compaction > 0) {
        d.add("tests_kept", tests.size())
            .add("tests_before_compaction", tests_before_compaction);
    }
    d.add("budget_exhausted", budget_exhausted);
    d.add("status", std::string(util::to_string(status)));
    return d;
}

std::string EngineResult::summary() const { return metrics().to_text(); }

EngineResult run_atpg(const synth::Netlist& nl, const EngineOptions& options) {
    util::Stopwatch watch;
    // Local wall-clock guard for the engine's own budget; the external
    // options.guard (if any) carries the pipeline-wide budgets and the
    // process interrupt flag. Either one stops the run.
    util::RunGuard local_guard(options.time_budget_s);
    auto out_of_budget = [&]() {
        return local_guard.stopped() ||
               (options.guard != nullptr && options.guard->stopped());
    };
    obs::Span run_span("atpg.run");

    EngineResult result;
    FaultList list(nl, options.scope_prefix);
    result.total_faults = list.size();
    run_span.attr("faults", static_cast<uint64_t>(list.size()));
    run_span.attr("gates", static_cast<uint64_t>(nl.logic_gate_count()));
    if (!options.scope_prefix.empty()) {
        run_span.attr("scope", options.scope_prefix);
    }
    if (list.size() == 0) {
        result.test_gen_seconds = watch.seconds();
        return result;
    }

    FaultSimulator sim(nl);
    std::mt19937_64 rng(options.seed);

    // ---- Phase 1: random patterns with fault dropping ----------------------
    {
        obs::Span span("atpg.random_phase");
        obs::Histogram& yield_hist = obs::histogram("atpg.random.batch_yield");
        size_t stale = 0;
        for (size_t batch = 0; batch < options.random_batches; ++batch) {
            if (local_guard.stopped() ||
                (options.guard != nullptr && !options.guard->tick())) {
                break;
            }
            Sequence seq = sim.random_sequence(rng, options.random_frames);
            size_t newly = sim.run_and_drop(list, seq);
            yield_hist.record(newly);
            result.random_sequences += 64;
            if (newly == 0) {
                if (++stale >= options.random_stale_limit) break;
            } else {
                stale = 0;
            }
        }
        obs::counter("atpg.random.sequences").add(result.random_sequences);
        span.attr("sequences", static_cast<uint64_t>(result.random_sequences));
        span.attr("detected",
                  static_cast<uint64_t>(list.count(FaultStatus::Detected)));
    }

    // ---- Phase 2: deterministic PODEM --------------------------------------
    {
        obs::Span span("atpg.deterministic_phase");
        const bool combinational = nl.dff_count() == 0;
        PodemOptions popts;
        popts.max_backtracks = options.max_backtracks;
        TimeFramePodem podem(nl, popts);

        obs::Histogram& backtrack_hist =
            obs::histogram("atpg.podem.backtracks");
        obs::Counter& podem_calls = obs::counter("atpg.podem.calls");
        obs::Counter& abort_backtracks =
            obs::counter("atpg.abort.backtrack_limit");
        obs::Counter& abort_depth = obs::counter("atpg.abort.depth_limit");
        obs::Counter& abort_mismatch = obs::counter("atpg.abort.sim_mismatch");

        obs::Counter& abort_podem_error =
            obs::counter("atpg.abort.podem_error");

        for (auto& entry : list.faults()) {
            if (entry.status != FaultStatus::Undetected) continue;
            if (local_guard.stopped() ||
                (options.guard != nullptr && !options.guard->tick())) {
                result.budget_exhausted = true;
                break;
            }

            bool done = false;
            bool all_depths_no_test = true;
            bool any_backtrack_abort = false;
            size_t max_frames = combinational ? 1 : options.max_frames;
            bool podem_failed = false;
            for (size_t k = 1; k <= max_frames && !done; ++k) {
                if (out_of_budget()) {
                    result.budget_exhausted = true;
                    all_depths_no_test = false;
                    break;
                }
                PodemResult pr;
                try {
                    obs::inject_point("atpg.podem");
                    pr = podem.generate(entry.fault, k);
                } catch (const util::FactorError&) {
                    // Contain a PODEM failure to its fault: count it
                    // aborted and keep going — partial coverage beats a
                    // dead run.
                    abort_podem_error.add(1);
                    podem_failed = true;
                    all_depths_no_test = false;
                    break;
                }
                podem_calls.add(1);
                backtrack_hist.record(pr.backtracks);
                switch (pr.outcome) {
                case PodemOutcome::Success: {
                    ++result.deterministic_tests;
                    if (options.collect_tests) result.tests.push_back(pr.test);
                    Sequence seq = broadcast(pr.test, nl.inputs().size());
                    size_t newly = sim.run_and_drop(list, seq);
                    (void)newly;
                    if (entry.status != FaultStatus::Detected) {
                        // PODEM said detected but the conservative simulator
                        // disagreed (X-pessimism across frames); count the
                        // fault as aborted rather than trusting the search.
                        entry.status = FaultStatus::Aborted;
                        abort_mismatch.add(1);
                    }
                    done = true;
                    break;
                }
                case PodemOutcome::Abort:
                    all_depths_no_test = false;
                    any_backtrack_abort = true;
                    break; // try a deeper unroll
                case PodemOutcome::NoTest:
                    break; // exhausted at this depth; deeper may still work
                }
            }
            if (podem_failed) {
                entry.status = FaultStatus::Aborted;
                result.status = util::worst(result.status,
                                            util::PhaseStatus::Degraded);
                if (result.status_detail.empty()) {
                    result.status_detail = "internal PODEM failure contained; "
                                           "affected faults counted aborted";
                }
                continue;
            }
            if (done) continue;
            if (entry.status != FaultStatus::Undetected) continue;
            if (combinational && all_depths_no_test) {
                // Exhausting the decision space of the single frame of a
                // combinational circuit is a redundancy proof.
                entry.status = FaultStatus::Untestable;
            } else {
                entry.status = FaultStatus::Aborted;
                (any_backtrack_abort ? abort_backtracks : abort_depth).add(1);
            }
        }
        obs::counter("atpg.podem.tests").add(result.deterministic_tests);
        span.attr("tests",
                  static_cast<uint64_t>(result.deterministic_tests));
    }

    // Any fault still undetected after the loop (e.g. budget break) aborts.
    {
        size_t budget_aborts = 0;
        for (auto& entry : list.faults()) {
            if (entry.status == FaultStatus::Undetected) {
                entry.status = FaultStatus::Aborted;
                ++budget_aborts;
            }
        }
        if (budget_aborts > 0) {
            obs::counter("atpg.abort.time_budget").add(budget_aborts);
        }
    }

    // ---- Static compaction of the collected deterministic tests ------------
    if (options.collect_tests && !result.tests.empty()) {
        obs::Span span("atpg.compaction");
        result.tests_before_compaction = result.tests.size();
        // Reverse-order pass: later tests were generated for the harder
        // faults and tend to cover many earlier ones.
        FaultList compaction_list(nl, options.scope_prefix);
        std::vector<ScalarSequence> kept;
        for (auto it = result.tests.rbegin(); it != result.tests.rend();
             ++it) {
            Sequence seq = broadcast(*it, nl.inputs().size());
            if (sim.run_and_drop(compaction_list, seq) > 0) {
                kept.push_back(std::move(*it));
            }
        }
        std::reverse(kept.begin(), kept.end());
        result.tests = std::move(kept);
        span.attr("before",
                  static_cast<uint64_t>(result.tests_before_compaction));
        span.attr("after", static_cast<uint64_t>(result.tests.size()));
    }

    result.detected = list.count(FaultStatus::Detected);
    result.untestable = list.count(FaultStatus::Untestable);
    result.aborted = list.count(FaultStatus::Aborted);
    result.coverage_percent = list.coverage_percent();
    result.efficiency_percent = list.efficiency_percent();
    result.test_gen_seconds = watch.seconds();

    if (result.budget_exhausted) {
        result.status =
            util::worst(result.status, util::PhaseStatus::BudgetExhausted);
        const char* why =
            options.guard != nullptr &&
                    options.guard->reason() != util::GuardStop::None
                ? util::to_string(options.guard->reason())
                : util::to_string(local_guard.reason());
        result.status_detail = std::string("ATPG stopped: ") + why +
                               " budget exceeded; coverage is partial";
    }

    obs::counter("atpg.runs").add(1);
    obs::counter("atpg.faults.total").add(result.total_faults);
    obs::counter("atpg.faults.detected").add(result.detected);
    obs::counter("atpg.faults.untestable").add(result.untestable);
    obs::counter("atpg.faults.aborted").add(result.aborted);
    run_span.attr("coverage_percent", result.coverage_percent);
    run_span.attr("time_seconds", result.test_gen_seconds);
    return result;
}

} // namespace factor::atpg
