#include "atpg/engine.hpp"

#include "util/stopwatch.hpp"
#include "util/strings.hpp"

#include <algorithm>
#include <random>
#include <sstream>

namespace factor::atpg {

std::string EngineResult::summary() const {
    std::ostringstream os;
    os << "faults=" << total_faults << " detected=" << detected
       << " untestable=" << untestable << " aborted=" << aborted
       << " coverage=" << util::fixed(coverage_percent, 2) << "%"
       << " efficiency=" << util::fixed(efficiency_percent, 2) << "%"
       << " time=" << util::fixed(test_gen_seconds, 3) << "s";
    if (budget_exhausted) os << " (budget exhausted)";
    return os.str();
}

EngineResult run_atpg(const synth::Netlist& nl, const EngineOptions& options) {
    util::Stopwatch watch;
    util::Deadline deadline(options.time_budget_s);

    EngineResult result;
    FaultList list(nl, options.scope_prefix);
    result.total_faults = list.size();
    if (list.size() == 0) {
        result.test_gen_seconds = watch.seconds();
        return result;
    }

    FaultSimulator sim(nl);
    std::mt19937_64 rng(options.seed);

    // ---- Phase 1: random patterns with fault dropping ----------------------
    size_t stale = 0;
    for (size_t batch = 0; batch < options.random_batches; ++batch) {
        if (deadline.expired()) break;
        Sequence seq = sim.random_sequence(rng, options.random_frames);
        size_t newly = sim.run_and_drop(list, seq);
        result.random_sequences += 64;
        if (newly == 0) {
            if (++stale >= options.random_stale_limit) break;
        } else {
            stale = 0;
        }
    }

    // ---- Phase 2: deterministic PODEM --------------------------------------
    const bool combinational = nl.dff_count() == 0;
    PodemOptions popts;
    popts.max_backtracks = options.max_backtracks;
    TimeFramePodem podem(nl, popts);

    for (auto& entry : list.faults()) {
        if (entry.status != FaultStatus::Undetected) continue;
        if (deadline.expired()) {
            result.budget_exhausted = true;
            break;
        }

        bool done = false;
        bool all_depths_no_test = true;
        size_t max_frames = combinational ? 1 : options.max_frames;
        for (size_t k = 1; k <= max_frames && !done; ++k) {
            if (deadline.expired()) {
                result.budget_exhausted = true;
                all_depths_no_test = false;
                break;
            }
            PodemResult pr = podem.generate(entry.fault, k);
            switch (pr.outcome) {
            case PodemOutcome::Success: {
                ++result.deterministic_tests;
                if (options.collect_tests) result.tests.push_back(pr.test);
                Sequence seq = broadcast(pr.test, nl.inputs().size());
                size_t newly = sim.run_and_drop(list, seq);
                (void)newly;
                if (entry.status != FaultStatus::Detected) {
                    // PODEM said detected but the conservative simulator
                    // disagreed (X-pessimism across frames); count the
                    // fault as aborted rather than trusting the search.
                    entry.status = FaultStatus::Aborted;
                }
                done = true;
                break;
            }
            case PodemOutcome::Abort:
                all_depths_no_test = false;
                break; // try a deeper unroll
            case PodemOutcome::NoTest:
                break; // exhausted at this depth; deeper may still work
            }
        }
        if (done) continue;
        if (entry.status != FaultStatus::Undetected) continue;
        if (combinational && all_depths_no_test) {
            // Exhausting the decision space of the single frame of a
            // combinational circuit is a redundancy proof.
            entry.status = FaultStatus::Untestable;
        } else {
            entry.status = FaultStatus::Aborted;
        }
    }

    // Any fault still undetected after the loop (e.g. budget break) aborts.
    for (auto& entry : list.faults()) {
        if (entry.status == FaultStatus::Undetected) {
            entry.status = FaultStatus::Aborted;
        }
    }

    // ---- Static compaction of the collected deterministic tests ------------
    if (options.collect_tests && !result.tests.empty()) {
        result.tests_before_compaction = result.tests.size();
        // Reverse-order pass: later tests were generated for the harder
        // faults and tend to cover many earlier ones.
        FaultList compaction_list(nl, options.scope_prefix);
        std::vector<ScalarSequence> kept;
        for (auto it = result.tests.rbegin(); it != result.tests.rend();
             ++it) {
            Sequence seq = broadcast(*it, nl.inputs().size());
            if (sim.run_and_drop(compaction_list, seq) > 0) {
                kept.push_back(std::move(*it));
            }
        }
        std::reverse(kept.begin(), kept.end());
        result.tests = std::move(kept);
    }

    result.detected = list.count(FaultStatus::Detected);
    result.untestable = list.count(FaultStatus::Untestable);
    result.aborted = list.count(FaultStatus::Aborted);
    result.coverage_percent = list.coverage_percent();
    result.efficiency_percent = list.efficiency_percent();
    result.test_gen_seconds = watch.seconds();
    return result;
}

} // namespace factor::atpg
