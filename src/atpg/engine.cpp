#include "atpg/engine.hpp"

#include "atpg/checkpoint.hpp"
#include "atpg/sat_engine.hpp"
#include "obs/inject.hpp"
#include "obs/obs.hpp"
#include "obs/profiler.hpp"
#include "obs/progress.hpp"
#include "util/diagnostics.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <random>

namespace factor::atpg {

const char* to_string(EngineKind k) {
    switch (k) {
    case EngineKind::Auto: return "auto";
    case EngineKind::Podem: return "podem";
    case EngineKind::Sat: return "sat";
    }
    return "auto";
}

EngineKind resolve_engine(EngineKind option) {
    if (option != EngineKind::Auto) return option;
    const char* env = std::getenv("FACTOR_ENGINE");
    if (env == nullptr || *env == '\0') return EngineKind::Auto;
    std::string v(env);
    if (v == "auto") return EngineKind::Auto;
    if (v == "podem") return EngineKind::Podem;
    if (v == "sat") return EngineKind::Sat;
    throw util::FactorError("FACTOR_ENGINE must be 'auto', 'podem' or 'sat' "
                            "(got '" +
                            v + "')");
}

uint64_t resolve_sat_budget(uint64_t option) {
    if (option != kDefaultSatConflictBudget) return option;
    const char* env = std::getenv("FACTOR_SAT_BUDGET");
    if (env == nullptr || *env == '\0') return option;
    const long long v = std::atoll(env);
    if (v <= 0) {
        throw util::FactorError(
            "FACTOR_SAT_BUDGET must be a positive conflict count (got '" +
            std::string(env) + "')");
    }
    return static_cast<uint64_t>(v);
}

size_t resolve_sat_frames(size_t option) {
    if (option != 0) return option;
    const char* env = std::getenv("FACTOR_SAT_FRAMES");
    if (env == nullptr || *env == '\0') return 0;
    const long long v = std::atoll(env);
    if (v <= 0) {
        throw util::FactorError(
            "FACTOR_SAT_FRAMES must be a positive frame count (got '" +
            std::string(env) + "')");
    }
    return static_cast<size_t>(v);
}

obs::Doc EngineResult::metrics() const {
    obs::Doc d;
    d.add("faults", total_faults)
        .add("detected", detected)
        .add("untestable", untestable)
        .add("aborted", aborted)
        .add("redundant", redundant)
        .add("coverage_percent", coverage_percent)
        .add("efficiency_percent", efficiency_percent)
        .add("time_seconds", test_gen_seconds)
        .add("random_sequences", random_sequences)
        .add("deterministic_tests", deterministic_tests)
        .add("threads", threads)
        .add("sim_width_bits", sim_width_bits);
    if (tests_before_compaction > 0) {
        d.add("tests_kept", tests.size())
            .add("tests_before_compaction", tests_before_compaction);
    }
    if (retried_faults > 0) {
        d.add("podem_retries", retried_faults)
            .add("retry_recovered", retry_recovered);
    }
    d.add("engine", engine);
    if (sat_attempts > 0) {
        d.add("sat_attempts", sat_attempts)
            .add("sat_recovered", sat_recovered)
            .add("sat_redundant", sat_redundant)
            .add("sat_conflicts", sat_conflicts)
            .add("sat_decisions", sat_decisions)
            .add("sat_propagations", sat_propagations)
            .add("sat_learned_clauses", sat_learned_clauses)
            .add("sat_restarts", sat_restarts);
    }
    if (attempt > 1) d.add("attempt", attempt);
    d.add("budget_exhausted", budget_exhausted);
    d.add("status", std::string(util::to_string(status)));
    return d;
}

std::string EngineResult::summary() const { return metrics().to_text(); }

namespace {

/// Apply `seq` to every Undetected fault of `list` across all pool
/// executors. Detections land in a shared atomic bitmap and are merged in
/// serial index order afterwards, so the visible drop order — and with it
/// every downstream decision — is identical to a one-executor run.
size_t parallel_run_and_drop(util::ThreadPool& pool,
                             std::vector<FaultSimulator>& sims,
                             FaultList& list, const Sequence& seq) {
    // One cached good-machine snapshot, shared read-only by every
    // executor's event-driven faulty kernel.
    auto good = sims[0].simulate_good_cached(seq);
    auto& entries = list.faults();
    const size_t n = entries.size();
    const size_t words = (n + 63) / 64;
    std::vector<std::atomic<uint64_t>> hits(words);
    for (auto& word : hits) word.store(0, std::memory_order_relaxed);
    pool.for_each(n, [&](size_t ex, size_t i) {
        const FaultEntry& e = entries[i];
        if (e.status != FaultStatus::Undetected) return;
        if (sims[ex].detects(e.fault, seq, *good)) {
            hits[i / 64].fetch_or(uint64_t{1} << (i % 64),
                                  std::memory_order_relaxed);
        }
    });
    size_t newly = 0;
    for (size_t i = 0; i < n; ++i) {
        uint64_t word = hits[i / 64].load(std::memory_order_relaxed);
        if (((word >> (i % 64)) & 1) != 0 &&
            entries[i].status == FaultStatus::Undetected) {
            entries[i].status = FaultStatus::Detected;
            ++newly;
        }
    }
    static obs::Counter& calls = obs::counter("fault_sim.run_and_drop");
    static obs::Counter& dropped = obs::counter("fault_sim.faults_dropped");
    calls.add(1);
    dropped.add(newly);
    return newly;
}

/// How a speculatively processed fault resolved. Workers fill slots out of
/// order; a single commit pipeline applies them in strict fault-list order
/// (discarding slots whose fault an earlier committed test already
/// dropped), which is what makes the result independent of `jobs`.
enum class SlotKind : uint8_t {
    Skipped,        // already non-Undetected when claimed
    Success,        // the generator produced a test (stored in `test`)
    Untestable,     // exhaustive single-frame proof (combinational PODEM)
    Redundant,      // SAT UNSAT redundancy proof (sat engine)
    AbortBacktrack, // hit the backtrack limit at some depth
    AbortDepth,     // no test up to the depth cap
    SatUnknown,     // CDCL conflict budget exhausted (deterministic)
    PodemFailed,    // internal generator failure, contained to this fault
    BudgetStopped,  // budget ran out mid-search on this fault
    BudgetSkip,     // budget was already gone when this fault was claimed
};

struct Slot {
    std::atomic<uint8_t> ready{0}; // release-published by the worker
    SlotKind kind = SlotKind::Skipped;
    bool any_backtrack_abort = false;
    ScalarSequence test;
    /// CDCL statistics of this fault's solves (sat engine only). Aggregated
    /// by the commit pipeline, and only for slots that actually commit, so
    /// the reported totals stay jobs-invariant like the statuses.
    sat::SolverStats sat_stats;
};

/// Backtrack budget for escalation round `round` (1-based):
/// max_backtracks * growth^round, saturated at the cap.
uint32_t escalated_backtracks(const EngineOptions& o, size_t round) {
    uint64_t growth = o.retry_backtrack_growth > 0 ? o.retry_backtrack_growth
                                                   : 1;
    uint64_t budget = o.max_backtracks > 0 ? o.max_backtracks : 1;
    for (size_t k = 0; k < round; ++k) {
        budget *= growth;
        if (budget >= o.retry_backtrack_cap) return o.retry_backtrack_cap;
    }
    return static_cast<uint32_t>(budget);
}

} // namespace

EngineResult run_atpg(const synth::Netlist& nl, const EngineOptions& options) {
    util::Stopwatch watch;
    obs::Span run_span("atpg.run");

    EngineResult result;
    const EngineKind engine = resolve_engine(options.engine);
    const bool sat_mode = engine == EngineKind::Sat;
    result.engine = to_string(engine);
    run_span.attr("engine", to_string(engine));
    const size_t jobs =
        options.jobs > 0 ? options.jobs : util::ThreadPool::default_jobs();
    result.threads = jobs;
    FaultList list(nl, options.scope_prefix);
    auto& entries = list.faults();
    const size_t n = entries.size();
    result.total_faults = n;
    run_span.attr("faults", static_cast<uint64_t>(n));
    run_span.attr("gates", static_cast<uint64_t>(nl.logic_gate_count()));
    run_span.attr("threads", static_cast<uint64_t>(jobs));
    if (!options.scope_prefix.empty()) {
        run_span.attr("scope", options.scope_prefix);
    }
    if (n == 0) {
        result.test_gen_seconds = watch.seconds();
        return result;
    }
    const bool combinational = nl.dff_count() == 0;
    // SAT-engine budgets, resolved once: the detection-depth schedule
    // starts where PODEM's unroll stops and caps at sat_max_frames
    // (auto: 4x the PODEM depth).
    SatEngineOptions sat_opts;
    sat_opts.conflict_budget = resolve_sat_budget(options.sat_conflict_budget);
    const size_t sat_frames = resolve_sat_frames(options.sat_max_frames);
    sat_opts.first_frames = combinational ? 1 : std::max<size_t>(1, options.max_frames);
    sat_opts.max_frames =
        combinational ? 1
                      : (sat_frames > 0
                             ? sat_frames
                             : 4 * std::max<size_t>(1, options.max_frames));

    // Fault-simulation kernel shape: the resolved width is part of the
    // checkpoint fingerprint (the random stream depends on it); the mode
    // is pure mechanism and never changes results.
    const size_t sim_words = resolve_sim_words(options.sim_width);
    const SimMode sim_mode = resolve_sim_mode(options.sim_mode);
    const size_t lanes = 64 * sim_words;
    result.sim_width_bits = lanes;
    run_span.attr("sim_width_bits", static_cast<uint64_t>(lanes));

    util::ThreadPool pool(jobs);
    // One simulator per executor: shared read-only netlist, cached
    // levelization and fanout cones, private value/state scratch.
    auto cones = std::make_shared<FanoutCones>(nl);
    std::vector<FaultSimulator> sims;
    sims.reserve(pool.executors());
    for (size_t ex = 0; ex < pool.executors(); ++ex) {
        sims.emplace_back(nl,
                          FaultSimulator::Config{sim_words, sim_mode, cones});
    }
    std::mt19937_64 rng(options.seed);

    // ---- Cross-attempt progress and continuation state ---------------------
    //
    // `ticks` counts successful guard boundaries (one per random batch, per
    // committed targeted fault, per retry attempt) cumulatively across all
    // attempts; it is the "w" field of every checkpoint record and what a
    // resume pre-charges into the external guard so work quotas stay
    // end-to-end. Replay rebuilds the per-fault `cause` codes that decide
    // retry-escalation eligibility: 'b' backtrack abort (retried), 'd'
    // depth abort, 'p' contained generator failure, 'm' simulator mismatch,
    // 'k' SAT conflict budget, 't' budget sweep.
    const bool ckpt_on = !options.checkpoint_path.empty();
    ckpt::Writer writer;
    uint64_t ticks = 0;
    double prior_seconds = 0.0;
    size_t batches_done = 0;
    size_t stale = 0;
    bool random_done = false;
    size_t next_fault = 0; // first deterministic index not yet committed
    size_t rounds_done = 0;
    size_t open_round = 0;      // replayed retry round without its 'er' yet
    size_t open_round_next = 0; // first index not yet attempted in it
    size_t sat_next = 0;        // first index the SAT tier has not attempted
    bool pure_replay = false;   // prior attempt ended with reason "ok"
    bool ckpt_failed = false;
    std::vector<char> cause(n, 0);
    size_t committed_tests = 0;
    std::vector<ScalarSequence> collected;
    std::atomic<bool> podem_degraded{false};

    obs::Counter& abort_mismatch = obs::counter("atpg.abort.sim_mismatch");
    obs::Counter& retries_ctr = obs::counter("atpg.podem.retries");
    obs::Counter& recovered_ctr = obs::counter("atpg.retry.recovered");

    auto refuse = [&](std::string diagnostic) {
        result.resume_refused = true;
        result.status = util::PhaseStatus::Failed;
        result.status_detail = std::move(diagnostic);
        result.test_gen_seconds = watch.seconds();
        return result;
    };
    auto fail_writer = [&](const std::string& why) {
        result.status = util::PhaseStatus::Failed;
        result.status_detail = "ckpt.write_failed: " + why;
        result.test_gen_seconds = watch.seconds();
        obs::counter("atpg.ckpt.write_failures").add(1);
        return result;
    };

    /// Re-derive the effect of a successful retry test: flip every fault it
    /// detects (aborted collateral included) to Detected. Serial on purpose
    /// — escalation is jobs-invariant by construction.
    auto apply_retry_test = [&](const ScalarSequence& test) {
        Sequence seq = broadcast(test, nl.inputs().size());
        auto good = sims[0].simulate_good_cached(seq);
        size_t recovered = 0;
        for (size_t j = 0; j < n; ++j) {
            if (entries[j].status != FaultStatus::Aborted &&
                entries[j].status != FaultStatus::Undetected) {
                continue;
            }
            if (sims[0].detects(entries[j].fault, seq, *good)) {
                entries[j].status = FaultStatus::Detected;
                cause[j] = 0;
                ++recovered;
            }
        }
        if (options.collect_tests) collected.push_back(test);
        return recovered;
    };
    /// Shared application of one retry outcome (live and replayed paths
    /// must match exactly for resume byte-identity).
    auto apply_retry_outcome = [&](size_t i, char outcome,
                                   const ScalarSequence& test) {
        ++result.retried_faults;
        retries_ctr.add(1);
        switch (outcome) {
        case 's': {
            size_t recovered = apply_retry_test(test);
            result.retry_recovered += recovered;
            recovered_ctr.add(recovered);
            if (entries[i].status != FaultStatus::Detected) {
                cause[i] = 'm'; // X-pessimism mismatch: stays Aborted
                abort_mismatch.add(1);
            }
            break;
        }
        case 'u':
            entries[i].status = FaultStatus::Untestable;
            cause[i] = 0;
            break;
        case 'b': cause[i] = 'b'; break;
        case 'd': cause[i] = 'd'; break;
        case 'p':
            cause[i] = 'p';
            podem_degraded.store(true, std::memory_order_relaxed);
            break;
        default: break;
        }
    };
    /// Shared application of one SAT-tier outcome (live and replayed paths
    /// must match exactly, like retries). 's' and 'r' definitively resolve
    /// the fault; 'n'/'k' leave it aborted with a cause code; 'p' is a
    /// contained failure that degrades the run status.
    auto apply_sat_outcome = [&](size_t i, char outcome,
                                 const ScalarSequence& test) {
        ++result.sat_attempts;
        switch (outcome) {
        case 's': {
            const size_t recovered = apply_retry_test(test);
            result.sat_recovered += recovered;
            if (entries[i].status != FaultStatus::Detected) {
                // Should be impossible — the dual-rail encoding is the
                // simulator's exact algebra — but never trust a search
                // result the simulator cannot confirm.
                cause[i] = 'm';
                abort_mismatch.add(1);
            }
            break;
        }
        case 'r':
            entries[i].status = FaultStatus::Redundant;
            cause[i] = 0;
            ++result.sat_redundant;
            break;
        case 'n': cause[i] = 'd'; break;
        case 'k': cause[i] = 'k'; break;
        case 'p':
            cause[i] = 'p';
            podem_degraded.store(true, std::memory_order_relaxed);
            break;
        default: break;
        }
    };

    // ---- Checkpoint load + replay ------------------------------------------
    std::string fingerprint;
    if (ckpt_on) {
        fingerprint = ckpt::fingerprint(nl, list, options);
        // Touch the family so zero counts show up in metric dumps.
        (void)obs::counter("atpg.ckpt.records");
        (void)obs::counter("atpg.ckpt.truncated");
    }
    if (ckpt_on && options.resume) {
        ckpt::Load ld = ckpt::load(options.checkpoint_path, fingerprint,
                                   result.engine, n, nl.inputs().size());
        if (!ld.ok) return refuse(std::move(ld.diagnostic));
        if (ld.dropped_lines > 0) {
            obs::counter("atpg.ckpt.truncated")
                .add(static_cast<uint64_t>(ld.dropped_lines));
        }
        obs::Span replay_span("atpg.ckpt.replay");
        obs::ProfScope replay_prof("atpg.replay");
        std::string replay_err;
        for (const ckpt::Event& ev : ld.events) {
            switch (ev.kind) {
            case ckpt::EventKind::RandomBatch: {
                // Regenerate the batch off the seeded RNG and re-simulate
                // it; the recorded yield is the cheap divergence check.
                Sequence seq =
                    sims[0].random_sequence(rng, options.random_frames);
                size_t newly = parallel_run_and_drop(pool, sims, list, seq);
                if (ev.batch != batches_done || newly != ev.newly) {
                    replay_err = "random batch yield diverged from the "
                                 "recorded run";
                    break;
                }
                ++batches_done;
                result.random_sequences += lanes;
                stale = newly == 0 ? stale + 1 : 0;
                break;
            }
            case ckpt::EventKind::RandomPhaseEnd: random_done = true; break;
            case ckpt::EventKind::Commit: {
                const size_t i = ev.fault;
                if (entries[i].status != FaultStatus::Undetected) {
                    replay_err = "committed fault was already resolved "
                                 "during replay";
                    break;
                }
                if (sat_mode) ++result.sat_attempts;
                switch (ev.outcome) {
                case 's': {
                    ++committed_tests;
                    Sequence seq = broadcast(ev.test, nl.inputs().size());
                    const size_t newly =
                        parallel_run_and_drop(pool, sims, list, seq);
                    if (sat_mode) result.sat_recovered += newly;
                    if (entries[i].status != FaultStatus::Detected) {
                        entries[i].status = FaultStatus::Aborted;
                        cause[i] = 'm';
                        abort_mismatch.add(1);
                    }
                    if (options.collect_tests) collected.push_back(ev.test);
                    break;
                }
                case 'u':
                    entries[i].status = FaultStatus::Untestable;
                    break;
                case 'r':
                    entries[i].status = FaultStatus::Redundant;
                    if (sat_mode) ++result.sat_redundant;
                    break;
                case 'b':
                    entries[i].status = FaultStatus::Aborted;
                    cause[i] = 'b';
                    break;
                case 'd':
                    entries[i].status = FaultStatus::Aborted;
                    cause[i] = 'd';
                    break;
                case 'k':
                    entries[i].status = FaultStatus::Aborted;
                    cause[i] = 'k';
                    break;
                case 'p':
                    entries[i].status = FaultStatus::Aborted;
                    cause[i] = 'p';
                    podem_degraded.store(true, std::memory_order_relaxed);
                    break;
                default: break;
                }
                next_fault = i + 1;
                break;
            }
            case ckpt::EventKind::Retry: {
                const size_t i = ev.fault;
                if (entries[i].status != FaultStatus::Aborted ||
                    cause[i] != 'b') {
                    replay_err = "retried fault was not a backtrack-aborted "
                                 "candidate during replay";
                    break;
                }
                apply_retry_outcome(i, ev.outcome, ev.test);
                open_round = ev.round;
                open_round_next = i + 1;
                break;
            }
            case ckpt::EventKind::RoundEnd:
                rounds_done = ev.round;
                open_round = 0;
                open_round_next = 0;
                break;
            case ckpt::EventKind::SatAttempt: {
                const size_t i = ev.fault;
                if (entries[i].status != FaultStatus::Aborted) {
                    replay_err = "SAT-tier fault was not aborted during "
                                 "replay";
                    break;
                }
                apply_sat_outcome(i, ev.outcome, ev.test);
                sat_next = i + 1;
                break;
            }
            case ckpt::EventKind::End:
                pure_replay = ev.reason == "ok";
                break;
            }
            if (!replay_err.empty()) break;
        }
        if (!replay_err.empty()) {
            return refuse("ckpt.replay_mismatch: " + replay_err);
        }
        if (!ld.events.empty()) {
            ticks = ld.events.back().work;
            prior_seconds = ld.events.back().seconds;
        } else {
            ticks = ld.header.prior_work;
            prior_seconds = ld.header.prior_seconds;
        }
        result.attempt = ld.header.attempt + 1;
        result.prior_seconds = prior_seconds;
        result.replayed_events = ld.events.size();
        obs::counter("atpg.ckpt.resumes").add(1);
        obs::counter("atpg.ckpt.replayed")
            .add(static_cast<uint64_t>(ld.events.size()));
        replay_span.attr("events", static_cast<uint64_t>(ld.events.size()));
        replay_span.attr("attempt", result.attempt);

        // Rewrite the journal for this attempt: same events, bumped attempt
        // header. A stopped run's "end" marker is dropped so the stream can
        // grow past it; a finished run ("ok") keeps it and replays only.
        std::vector<ckpt::Event> replayed = ld.events;
        if (!pure_replay && !replayed.empty() &&
            replayed.back().kind == ckpt::EventKind::End) {
            replayed.pop_back();
        }
        ckpt::Header header;
        header.fingerprint = fingerprint;
        header.engine = result.engine;
        header.total_faults = n;
        header.attempt = result.attempt;
        header.prior_work = ticks;
        header.prior_seconds = prior_seconds;
        if (!writer.start_rewrite(options.checkpoint_path, header,
                                  replayed)) {
            return fail_writer(writer.error());
        }
    } else if (ckpt_on) {
        ckpt::Header header;
        header.fingerprint = fingerprint;
        header.engine = result.engine;
        header.total_faults = n;
        if (!writer.start_fresh(options.checkpoint_path, header)) {
            return fail_writer(writer.error());
        }
    }

    // Local wall-clock guard for the engine's own budget, shrunk by the
    // seconds earlier attempts already spent; the external options.guard
    // (if any) carries the pipeline-wide budgets and the process interrupt
    // flag, and is pre-charged with the work earlier attempts consumed.
    // Either guard stops the run. Both are safe to poll from every worker.
    util::RunGuard local_guard(
        options.time_budget_s > 0.0
            ? std::max(options.time_budget_s - prior_seconds, 1e-6)
            : options.time_budget_s);
    if (options.guard != nullptr && ticks > 0) options.guard->tick(ticks);
    auto out_of_budget = [&]() {
        return local_guard.stopped() ||
               (options.guard != nullptr && options.guard->stopped());
    };
    // SAT solves poll (never tick) both guards so a wall-clock stop lands
    // mid-solve instead of waiting a whole conflict budget out.
    sat_opts.guard = &local_guard;
    sat_opts.guard2 = options.guard;

    // ---- Progress heartbeat ------------------------------------------------
    //
    // Heartbeats fire only at already-serialized commit points and only read
    // state the commit path owns, so they cannot perturb RNG draws, commit
    // order or guard accounting: results stay byte-identical with the
    // emitter on or off (tests/test_progress.cpp pins this). Counts and
    // elapsed time are cumulative across --resume attempts.
    obs::Progress& progress = obs::Progress::global();
    auto emit_progress = [&](const char* phase, uint64_t det, uint64_t unt,
                             uint64_t abt, uint64_t red, bool final_event) {
        obs::ProgressSnapshot snap;
        snap.phase = phase;
        snap.faults_total = n;
        snap.detected = det;
        snap.untestable = unt;
        snap.aborted = abt;
        snap.redundant = red;
        snap.faults_done = det + unt + abt + red;
        snap.coverage_percent =
            100.0 * static_cast<double>(det) / static_cast<double>(n);
        snap.vectors = committed_tests;
        snap.random_sequences = result.random_sequences;
        snap.attempt = result.attempt;
        snap.threads = jobs;
        snap.elapsed_seconds = prior_seconds + watch.seconds();
        util::ThreadPool::Stats ps = pool.stats();
        snap.pool_tasks = ps.tasks;
        snap.pool_steals = ps.steals;
        snap.pool_idle_ns = ps.idle_ns;
        double remain = local_guard.remaining_seconds();
        if (options.guard != nullptr) {
            remain = std::min(remain, options.guard->remaining_seconds());
        }
        if (remain < 1e29) snap.budget_remaining_seconds = remain;
        if (options.guard != nullptr &&
            options.guard->limits().work_quota > 0) {
            uint64_t quota = options.guard->limits().work_quota;
            uint64_t used = options.guard->work_used();
            snap.has_work_remaining = true;
            snap.work_remaining = quota > used ? quota - used : 0;
        }
        if (final_event) {
            progress.emit_final(snap);
        } else {
            progress.tick(snap);
        }
    };
    // Serial-phase variant: counts come from the (authoritative there)
    // fault-list statuses, and only when an emission is actually due.
    auto emit_progress_counts = [&](const char* phase) {
        if (!progress.due()) return;
        emit_progress(phase, list.count(FaultStatus::Detected),
                      list.count(FaultStatus::Untestable),
                      list.count(FaultStatus::Aborted),
                      list.count(FaultStatus::Redundant), false);
    };
    if (result.replayed_events > 0) emit_progress_counts("replay");

    /// Append one checkpoint record at a commit boundary, stamping the
    /// cumulative cross-attempt progress. Failures (IO, injected fault at
    /// "atpg.ckpt.write") latch ckpt_failed; the phases stop cooperatively
    /// and the journal keeps its committed prefix.
    auto ckpt_append = [&](ckpt::Event ev) {
        if (!ckpt_on || ckpt_failed || !writer.active()) return;
        ev.work = ticks;
        ev.seconds = prior_seconds + watch.seconds();
        if (!writer.append(ev)) {
            ckpt_failed = true;
            obs::counter("atpg.ckpt.write_failures").add(1);
        }
    };

    // ---- Phase 1: random patterns with fault dropping ----------------------
    if (!pure_replay && !random_done && !ckpt_failed) {
        obs::Span span("atpg.random_phase");
        obs::ProfScope prof("atpg.random");
        obs::Histogram& yield_hist = obs::histogram("atpg.random.batch_yield");
        bool guard_stopped = false;
        // A replayed prefix can already sit on the stale limit (the prior
        // attempt died between its last batch and the phase-end marker);
        // entering the loop would run a batch the reference run never did.
        for (size_t batch = batches_done;
             batch < options.random_batches &&
             stale < options.random_stale_limit;
             ++batch) {
            if (local_guard.stopped() ||
                (options.guard != nullptr && !options.guard->tick())) {
                guard_stopped = true;
                break;
            }
            ++ticks;
            // The stimulus comes off the single engine RNG on this thread,
            // so the pattern stream is byte-identical at any jobs value.
            Sequence seq = sims[0].random_sequence(rng, options.random_frames);
            size_t newly = parallel_run_and_drop(pool, sims, list, seq);
            yield_hist.record(newly);
            result.random_sequences += lanes;
            ckpt::Event ev;
            ev.kind = ckpt::EventKind::RandomBatch;
            ev.batch = batch;
            ev.newly = newly;
            ckpt_append(std::move(ev));
            if (ckpt_failed) break;
            if (newly == 0) {
                if (++stale >= options.random_stale_limit) break;
            } else {
                stale = 0;
            }
            emit_progress_counts("random");
        }
        if (!guard_stopped && !ckpt_failed) {
            // The phase ended for a deterministic reason (batch or stale
            // limit): mark it so a resume goes straight to PODEM. A guard
            // stop leaves the marker out — resuming with a bigger budget
            // picks the phase back up at the next batch.
            random_done = true;
            ckpt::Event ev;
            ev.kind = ckpt::EventKind::RandomPhaseEnd;
            ckpt_append(std::move(ev));
        }
        obs::counter("atpg.random.sequences").add(result.random_sequences);
        span.attr("sequences", static_cast<uint64_t>(result.random_sequences));
        span.attr("detected",
                  static_cast<uint64_t>(list.count(FaultStatus::Detected)));
    }

    // ---- Phase 2: deterministic PODEM --------------------------------------
    //
    // Workers claim fault indices from a shared cursor and run PODEM
    // speculatively; results are applied by a strictly in-order commit
    // pipeline. PODEM's outcome for a fault depends only on the netlist —
    // never on the fault list — and in a serial run a test generated for
    // fault j can only drop faults with index > j. Committing in fault
    // order while discarding slots whose fault was dropped by an
    // earlier-committed test therefore reproduces the serial trajectory of
    // statuses, tests and guard ticks exactly, at any executor count.
    //
    // Checkpoint records are emitted from the commit pipeline only, under
    // its mutex, so the record stream is as jobs-invariant as the commits.
    // On resume both cursors start at the first uncommitted fault; the
    // replayed statuses make the workers skip everything an earlier
    // attempt's tests already resolved, exactly like the serial engine.
    bool budget_hit = false;
    if (!pure_replay && !ckpt_failed) {
        obs::Span span("atpg.deterministic_phase");
        obs::ProfScope prof("atpg.deterministic");
        PodemOptions popts;
        popts.max_backtracks = options.max_backtracks;

        obs::Histogram& backtrack_hist =
            obs::histogram("atpg.podem.backtracks");
        obs::Counter& podem_calls = obs::counter("atpg.podem.calls");
        obs::Counter& abort_backtracks =
            obs::counter("atpg.abort.backtrack_limit");
        obs::Counter& abort_depth = obs::counter("atpg.abort.depth_limit");
        obs::Counter& abort_podem_error =
            obs::counter("atpg.abort.podem_error");
        obs::Counter& abort_sat_budget =
            obs::counter("atpg.abort.sat_budget");
        obs::Counter& drop_calls = obs::counter("fault_sim.run_and_drop");
        obs::Counter& drop_dropped = obs::counter("fault_sim.faults_dropped");

        constexpr auto kUndetected =
            static_cast<uint8_t>(FaultStatus::Undetected);
        constexpr auto kDetected = static_cast<uint8_t>(FaultStatus::Detected);
        constexpr auto kAborted = static_cast<uint8_t>(FaultStatus::Aborted);

        // Authoritative per-fault status for the phase. The commit pipeline
        // is the only writer; workers read it as a claim-time skip hint.
        std::vector<std::atomic<uint8_t>> status(n);
        for (size_t i = 0; i < n; ++i) {
            status[i].store(static_cast<uint8_t>(entries[i].status),
                            std::memory_order_relaxed);
        }

        // Running status tallies for the heartbeat. The commit pipeline is
        // the only writer of `status`, so plain counters kept next to the
        // stores are exact without re-scanning the array per emission.
        uint64_t prog_det = list.count(FaultStatus::Detected);
        uint64_t prog_unt = list.count(FaultStatus::Untestable);
        uint64_t prog_abt = list.count(FaultStatus::Aborted);
        uint64_t prog_red = list.count(FaultStatus::Redundant);

        std::vector<Slot> slots(n);
        std::atomic<size_t> cursor{next_fault};
        std::atomic<bool> stop{false}; // commit tripped a budget

        std::mutex commit_mu;
        // Guarded by commit_mu.
        size_t next_commit = next_fault;

        auto commit_ready = [&](size_t ex) {
            // Once a budget stop (or a checkpoint write failure) is latched
            // the serial loop is broken for good: no further commits, no
            // further guard ticks.
            if (budget_hit || ckpt_failed) return;
            while (next_commit < n) {
                Slot& s = slots[next_commit];
                if (s.ready.load(std::memory_order_acquire) == 0) break;
                const size_t i = next_commit;
                if (s.kind == SlotKind::PodemFailed) {
                    // Degradation is reported even if the slot below turns
                    // out to be discarded: the failure did happen in this
                    // process, and hiding it behind a racy drop would make
                    // the status nondeterministic under parallelism.
                    podem_degraded.store(true, std::memory_order_relaxed);
                }
                if (status[i].load(std::memory_order_relaxed) !=
                    kUndetected) {
                    // An earlier committed test already resolved this
                    // fault; the serial engine would never have targeted
                    // it, so the speculative slot is discarded unseen.
                    ++next_commit;
                    continue;
                }
                // One guard tick per targeted fault, taken in fault-list
                // order — the serial engine's exact accounting, so a
                // work-quota stop lands on the same fault at any jobs.
                if (local_guard.stopped() ||
                    (options.guard != nullptr && !options.guard->tick())) {
                    budget_hit = true;
                    stop.store(true, std::memory_order_relaxed);
                    break;
                }
                ++ticks;
                char outcome = 0;
                if (sat_mode && s.kind != SlotKind::Skipped &&
                    s.kind != SlotKind::BudgetSkip) {
                    // One SAT attempt per committed fault; discarded
                    // speculative slots never count, so the totals match a
                    // serial run at any jobs value.
                    ++result.sat_attempts;
                    result.sat_conflicts += s.sat_stats.conflicts;
                    result.sat_decisions += s.sat_stats.decisions;
                    result.sat_propagations += s.sat_stats.propagations;
                    result.sat_learned_clauses += s.sat_stats.learned_clauses;
                    result.sat_restarts += s.sat_stats.restarts;
                }
                switch (s.kind) {
                case SlotKind::Success: {
                    outcome = 's';
                    ++committed_tests;
                    Sequence seq = broadcast(s.test, nl.inputs().size());
                    auto good = sims[ex].simulate_good_cached(seq);
                    size_t newly = 0;
                    for (size_t j = 0; j < n; ++j) {
                        if (status[j].load(std::memory_order_relaxed) !=
                            kUndetected) {
                            continue;
                        }
                        if (sims[ex].detects(entries[j].fault, seq,
                                             *good)) {
                            status[j].store(kDetected,
                                            std::memory_order_relaxed);
                            ++newly;
                        }
                    }
                    drop_calls.add(1);
                    drop_dropped.add(newly);
                    prog_det += newly;
                    if (sat_mode) result.sat_recovered += newly;
                    if (status[i].load(std::memory_order_relaxed) !=
                        kDetected) {
                        // PODEM said detected but the conservative
                        // simulator disagreed (X-pessimism across frames);
                        // count the fault as aborted rather than trusting
                        // the search.
                        status[i].store(kAborted, std::memory_order_relaxed);
                        cause[i] = 'm';
                        abort_mismatch.add(1);
                        ++prog_abt;
                    }
                    break;
                }
                case SlotKind::Untestable:
                    // Exhausting the decision space of the single frame of
                    // a combinational circuit is a redundancy proof.
                    outcome = 'u';
                    status[i].store(
                        static_cast<uint8_t>(FaultStatus::Untestable),
                        std::memory_order_relaxed);
                    ++prog_unt;
                    break;
                case SlotKind::Redundant:
                    outcome = 'r';
                    status[i].store(
                        static_cast<uint8_t>(FaultStatus::Redundant),
                        std::memory_order_relaxed);
                    ++result.sat_redundant;
                    ++prog_red;
                    break;
                case SlotKind::SatUnknown:
                    outcome = 'k';
                    status[i].store(kAborted, std::memory_order_relaxed);
                    cause[i] = 'k';
                    abort_sat_budget.add(1);
                    ++prog_abt;
                    break;
                case SlotKind::AbortBacktrack:
                    outcome = 'b';
                    status[i].store(kAborted, std::memory_order_relaxed);
                    cause[i] = 'b';
                    abort_backtracks.add(1);
                    ++prog_abt;
                    break;
                case SlotKind::AbortDepth:
                    outcome = 'd';
                    status[i].store(kAborted, std::memory_order_relaxed);
                    cause[i] = 'd';
                    abort_depth.add(1);
                    ++prog_abt;
                    break;
                case SlotKind::PodemFailed:
                    // Contained: count it aborted and keep going — partial
                    // coverage beats a dead run.
                    outcome = 'p';
                    status[i].store(kAborted, std::memory_order_relaxed);
                    cause[i] = 'p';
                    ++prog_abt;
                    break;
                case SlotKind::BudgetStopped:
                    // The worker noticed the budget mid-fault: abort this
                    // fault and let the next iteration's guard check end
                    // the phase, as the serial loop does.
                    budget_hit = true;
                    outcome = sat_mode ? 'k'
                              : s.any_backtrack_abort ? 'b'
                                                      : 'd';
                    status[i].store(kAborted, std::memory_order_relaxed);
                    cause[i] = outcome;
                    if (sat_mode) {
                        abort_sat_budget.add(1);
                    } else {
                        (s.any_backtrack_abort ? abort_backtracks
                                               : abort_depth)
                            .add(1);
                    }
                    ++prog_abt;
                    break;
                case SlotKind::BudgetSkip:
                    budget_hit = true;
                    stop.store(true, std::memory_order_relaxed);
                    break;
                case SlotKind::Skipped:
                    break; // status said Undetected above; cannot happen
                }
                if (s.kind == SlotKind::BudgetSkip) break;
                if (outcome != 0) {
                    ckpt::Event ev;
                    ev.kind = ckpt::EventKind::Commit;
                    ev.fault = i;
                    ev.outcome = outcome;
                    if (outcome == 's') ev.test = s.test;
                    ckpt_append(std::move(ev));
                    if (ckpt_failed) {
                        stop.store(true, std::memory_order_relaxed);
                        break;
                    }
                }
                if (s.kind == SlotKind::Success && options.collect_tests) {
                    collected.push_back(std::move(s.test));
                }
                if (progress.due()) {
                    emit_progress("deterministic", prog_det, prog_unt,
                                  prog_abt, prog_red, false);
                }
                ++next_commit;
            }
        };
        auto try_commit = [&](size_t ex) {
            std::unique_lock<std::mutex> lk(commit_mu, std::try_to_lock);
            if (lk.owns_lock()) commit_ready(ex);
        };

        const bool prof_faults = obs::Profiler::global().armed();
        auto worker = [&](size_t ex, size_t /*index*/) {
            obs::Span wspan("atpg.worker");
            wspan.attr("worker", static_cast<uint64_t>(ex));
            const auto w_start = std::chrono::steady_clock::now();
            // One generator per executor, like the simulators: PODEM or the
            // SAT engine depending on the resolved engine kind.
            std::unique_ptr<TimeFramePodem> podem;
            std::unique_ptr<SatFaultEngine> satgen;
            if (sat_mode) {
                satgen = std::make_unique<SatFaultEngine>(nl, sat_opts);
            } else {
                podem = std::make_unique<TimeFramePodem>(nl, popts);
            }
            uint64_t claimed = 0;
            uint64_t generated = 0;
            const size_t max_frames = combinational ? 1 : options.max_frames;
            while (!stop.load(std::memory_order_relaxed)) {
                const size_t i = cursor.fetch_add(1,
                                                  std::memory_order_relaxed);
                if (i >= n) break;
                ++claimed;
                Slot& s = slots[i];
                if (status[i].load(std::memory_order_relaxed) !=
                    kUndetected) {
                    s.kind = SlotKind::Skipped;
                    s.ready.store(1, std::memory_order_release);
                    try_commit(ex);
                    continue;
                }
                if (out_of_budget()) {
                    s.kind = SlotKind::BudgetSkip;
                    s.ready.store(1, std::memory_order_release);
                    try_commit(ex);
                    break;
                }
                uint64_t f_backtracks = 0;
                std::chrono::steady_clock::time_point f_start;
                if (prof_faults) f_start = std::chrono::steady_clock::now();
                if (sat_mode) {
                    SatAttempt at = satgen->attempt(entries[i].fault);
                    s.sat_stats = at.stats;
                    f_backtracks = at.stats.conflicts;
                    switch (at.outcome) {
                    case 's':
                        s.test = std::move(at.test);
                        s.kind = SlotKind::Success;
                        ++generated;
                        break;
                    case 'r': s.kind = SlotKind::Redundant; break;
                    case 'n': s.kind = SlotKind::AbortDepth; break;
                    case 'k':
                        // A deterministic conflict-budget stop keeps the
                        // run going ('k' commit); a wall-clock/guard stop
                        // ends the phase like PODEM's mid-fault stops.
                        s.kind = out_of_budget() ? SlotKind::BudgetStopped
                                                 : SlotKind::SatUnknown;
                        break;
                    default:
                        abort_podem_error.add(1);
                        s.kind = SlotKind::PodemFailed;
                        break;
                    }
                } else {
                    bool done = false;
                    bool all_depths_no_test = true;
                    bool podem_failed = false;
                    bool budget_stopped = false;
                    for (size_t k = 1; k <= max_frames && !done; ++k) {
                        if (out_of_budget()) {
                            budget_stopped = true;
                            all_depths_no_test = false;
                            break;
                        }
                        PodemResult pr;
                        try {
                            obs::inject_point("atpg.podem");
                            pr = podem->generate(entries[i].fault, k);
                        } catch (const util::FactorError&) {
                            abort_podem_error.add(1);
                            podem_failed = true;
                            all_depths_no_test = false;
                            break;
                        }
                        podem_calls.add(1);
                        backtrack_hist.record(pr.backtracks);
                        f_backtracks += pr.backtracks;
                        switch (pr.outcome) {
                        case PodemOutcome::Success:
                            s.test = std::move(pr.test);
                            done = true;
                            ++generated;
                            break;
                        case PodemOutcome::Abort:
                            all_depths_no_test = false;
                            s.any_backtrack_abort = true;
                            break; // try a deeper unroll
                        case PodemOutcome::NoTest:
                            break; // exhausted at this depth; deeper may work
                        }
                    }
                    if (podem_failed) {
                        s.kind = SlotKind::PodemFailed;
                    } else if (done) {
                        s.kind = SlotKind::Success;
                    } else if (budget_stopped) {
                        s.kind = SlotKind::BudgetStopped;
                    } else if (combinational && all_depths_no_test) {
                        s.kind = SlotKind::Untestable;
                    } else {
                        s.kind = s.any_backtrack_abort
                                     ? SlotKind::AbortBacktrack
                                     : SlotKind::AbortDepth;
                    }
                }
                if (prof_faults) {
                    auto f_ns =
                        std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - f_start)
                            .count();
                    const char* oc =
                        s.kind == SlotKind::Success      ? "test"
                        : s.kind == SlotKind::Untestable ? "untestable"
                        : s.kind == SlotKind::Redundant  ? "redundant"
                                                         : "aborted";
                    obs::Profiler::global().record_fault(
                        entries[i].describe(nl), static_cast<uint64_t>(f_ns),
                        f_backtracks, oc);
                }
                s.ready.store(1, std::memory_order_release);
                try_commit(ex);
            }
            auto w_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - w_start)
                            .count();
            obs::Profiler::global().worker_add(ex, static_cast<uint64_t>(w_ns),
                                               claimed, generated);
            wspan.attr("claimed", claimed);
            wspan.attr("tests", generated);
        };

        pool.for_each(pool.executors(), worker);
        {
            // Workers are done; flush whatever the try_lock races left.
            std::lock_guard<std::mutex> lk(commit_mu);
            commit_ready(0);
        }

        for (size_t i = 0; i < n; ++i) {
            entries[i].status = static_cast<FaultStatus>(
                status[i].load(std::memory_order_relaxed));
        }
        if (budget_hit) result.budget_exhausted = true;
        obs::counter("atpg.podem.tests").add(committed_tests);
        span.attr("tests", static_cast<uint64_t>(committed_tests));
    }

    // ---- Retry escalation for backtrack-aborted faults ----------------------
    //
    // Serial and in fault-index order, so the pass is jobs-invariant and
    // checkpoint-resumable like the commit pipeline. Each round re-attempts
    // every fault still aborted on a backtrack limit with a budget of
    // max_backtracks * growth^round (capped); a success is fault-simulated
    // against the whole aborted set, so one recovered test can clear
    // several aborted faults at once.
    if (options.retry_rounds > 0 && !pure_replay && !ckpt_failed) {
        obs::Span span("atpg.retry_phase");
        obs::ProfScope prof("atpg.retry");
        const bool prof_faults = obs::Profiler::global().armed();
        bool guard_stopped = false;
        for (size_t round = rounds_done + 1;
             round <= options.retry_rounds && !guard_stopped && !ckpt_failed;
             ++round) {
            PodemOptions ropts;
            ropts.max_backtracks = escalated_backtracks(options, round);
            TimeFramePodem podem(nl, ropts);
            obs::Counter& podem_calls = obs::counter("atpg.podem.calls");
            obs::Histogram& backtrack_hist =
                obs::histogram("atpg.podem.backtracks");
            const size_t begin = round == open_round ? open_round_next : 0;
            size_t round_attempts = round == open_round ? 1 : 0;
            for (size_t i = begin; i < n; ++i) {
                if (entries[i].status != FaultStatus::Aborted ||
                    cause[i] != 'b') {
                    continue;
                }
                if (local_guard.stopped() ||
                    (options.guard != nullptr && !options.guard->tick())) {
                    guard_stopped = true;
                    break;
                }
                ++ticks;
                ++round_attempts;
                const size_t max_frames =
                    combinational ? 1 : options.max_frames;
                char outcome = 0;
                ScalarSequence test;
                bool all_depths_no_test = true;
                bool any_backtrack = false;
                uint64_t f_backtracks = 0;
                std::chrono::steady_clock::time_point f_start;
                if (prof_faults) f_start = std::chrono::steady_clock::now();
                for (size_t k = 1; k <= max_frames && outcome == 0; ++k) {
                    PodemResult pr;
                    try {
                        obs::inject_point("atpg.podem");
                        pr = podem.generate(entries[i].fault, k);
                    } catch (const util::FactorError&) {
                        obs::counter("atpg.abort.podem_error").add(1);
                        outcome = 'p';
                        break;
                    }
                    podem_calls.add(1);
                    backtrack_hist.record(pr.backtracks);
                    f_backtracks += pr.backtracks;
                    switch (pr.outcome) {
                    case PodemOutcome::Success:
                        test = std::move(pr.test);
                        outcome = 's';
                        break;
                    case PodemOutcome::Abort:
                        all_depths_no_test = false;
                        any_backtrack = true;
                        break;
                    case PodemOutcome::NoTest: break;
                    }
                }
                if (outcome == 0) {
                    outcome = combinational && all_depths_no_test ? 'u'
                              : any_backtrack                     ? 'b'
                                                                  : 'd';
                }
                if (prof_faults) {
                    auto f_ns =
                        std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - f_start)
                            .count();
                    const char* oc = outcome == 's'   ? "test"
                                     : outcome == 'u' ? "untestable"
                                                      : "aborted";
                    obs::Profiler::global().record_fault(
                        entries[i].describe(nl), static_cast<uint64_t>(f_ns),
                        f_backtracks, oc);
                }
                apply_retry_outcome(i, outcome, test);
                ckpt::Event ev;
                ev.kind = ckpt::EventKind::Retry;
                ev.round = static_cast<uint32_t>(round);
                ev.fault = i;
                ev.outcome = outcome;
                if (outcome == 's') ev.test = std::move(test);
                ckpt_append(std::move(ev));
                if (ckpt_failed) break;
                emit_progress_counts("retry");
            }
            if (guard_stopped || ckpt_failed) break;
            if (round_attempts == 0) break; // no candidates left to escalate
            rounds_done = round;
            ckpt::Event ev;
            ev.kind = ckpt::EventKind::RoundEnd;
            ev.round = static_cast<uint32_t>(round);
            ckpt_append(std::move(ev));
        }
        if (guard_stopped) result.budget_exhausted = true;
        span.attr("retried", static_cast<uint64_t>(result.retried_faults));
        span.attr("recovered",
                  static_cast<uint64_t>(result.retry_recovered));
    }

    // ---- SAT escalation over still-aborted faults (engine auto) ------------
    //
    // Serial and in fault-index order like the retry phase, so the tier is
    // jobs-invariant and checkpoint-resumable ('sa' records). Every fault
    // still aborted — whatever the cause — gets one SAT attempt: a model is
    // a simulator-confirmed test (collateral aborted faults drop too), an
    // UNSAT redundancy proof reclassifies the fault Redundant, and only
    // depth-capped ('n') or solver-budget ('k') outcomes leave it aborted.
    if (engine == EngineKind::Auto && !pure_replay && !ckpt_failed) {
        obs::Span span("atpg.sat_phase");
        obs::ProfScope prof("atpg.sat");
        bool guard_stopped = false;
        // Lazy: a run whose aborted set is empty never pays for the
        // fanout-table build.
        std::unique_ptr<SatFaultEngine> satgen;
        for (size_t i = sat_next; i < n && !ckpt_failed; ++i) {
            if (entries[i].status != FaultStatus::Aborted) continue;
            if (local_guard.stopped() ||
                (options.guard != nullptr && !options.guard->tick())) {
                guard_stopped = true;
                break;
            }
            ++ticks;
            if (satgen == nullptr) {
                satgen = std::make_unique<SatFaultEngine>(nl, sat_opts);
            }
            SatAttempt at = satgen->attempt(entries[i].fault);
            if (at.outcome == 'k' && out_of_budget()) {
                // The guard cut the solve short: don't bake the truncated
                // outcome into the journal — a resume with a fresh budget
                // re-attempts this fault instead of trusting it.
                guard_stopped = true;
                break;
            }
            result.sat_conflicts += at.stats.conflicts;
            result.sat_decisions += at.stats.decisions;
            result.sat_propagations += at.stats.propagations;
            result.sat_learned_clauses += at.stats.learned_clauses;
            result.sat_restarts += at.stats.restarts;
            apply_sat_outcome(i, at.outcome, at.test);
            ckpt::Event ev;
            ev.kind = ckpt::EventKind::SatAttempt;
            ev.fault = i;
            ev.outcome = at.outcome;
            if (at.outcome == 's') ev.test = std::move(at.test);
            ckpt_append(std::move(ev));
            emit_progress_counts("sat");
        }
        if (guard_stopped) result.budget_exhausted = true;
        span.attr("attempts", static_cast<uint64_t>(result.sat_attempts));
        span.attr("recovered", static_cast<uint64_t>(result.sat_recovered));
        span.attr("redundant", static_cast<uint64_t>(result.sat_redundant));
        span.attr("conflicts", result.sat_conflicts);
    }

    // Any fault still undetected after the loop (e.g. budget break) aborts.
    {
        size_t budget_aborts = 0;
        for (size_t i = 0; i < n; ++i) {
            if (entries[i].status == FaultStatus::Undetected) {
                entries[i].status = FaultStatus::Aborted;
                cause[i] = 't';
                ++budget_aborts;
            }
        }
        if (budget_aborts > 0) {
            obs::counter("atpg.abort.time_budget").add(budget_aborts);
        }
    }

    result.deterministic_tests = committed_tests;
    if (options.collect_tests) result.tests = std::move(collected);

    // ---- Static compaction of the collected deterministic tests ------------
    if (options.collect_tests && !result.tests.empty()) {
        obs::Span span("atpg.compaction");
        obs::ProfScope prof("atpg.compaction");
        result.tests_before_compaction = result.tests.size();
        // Reverse-order pass: later tests were generated for the harder
        // faults and tend to cover many earlier ones.
        FaultList compaction_list(nl, options.scope_prefix);
        std::vector<ScalarSequence> kept;
        for (auto it = result.tests.rbegin(); it != result.tests.rend();
             ++it) {
            Sequence seq = broadcast(*it, nl.inputs().size());
            if (parallel_run_and_drop(pool, sims, compaction_list, seq) > 0) {
                kept.push_back(std::move(*it));
            }
        }
        std::reverse(kept.begin(), kept.end());
        result.tests = std::move(kept);
        span.attr("before",
                  static_cast<uint64_t>(result.tests_before_compaction));
        span.attr("after", static_cast<uint64_t>(result.tests.size()));
    }

    result.detected = list.count(FaultStatus::Detected);
    result.untestable = list.count(FaultStatus::Untestable);
    result.aborted = list.count(FaultStatus::Aborted);
    result.redundant = list.count(FaultStatus::Redundant);
    result.coverage_percent = list.coverage_percent();
    result.efficiency_percent = list.efficiency_percent();
    result.test_gen_seconds = prior_seconds + watch.seconds();
    result.statuses.resize(n);
    for (size_t i = 0; i < n; ++i) result.statuses[i] = entries[i].status;

    // The run's closing heartbeat: counts are the ones the stats document
    // will report, so a consumer can trust the last progress line.
    if (progress.enabled()) {
        emit_progress("done", result.detected, result.untestable,
                      result.aborted, result.redundant, true);
    }

    if (podem_degraded.load(std::memory_order_relaxed)) {
        result.status = util::worst(result.status, util::PhaseStatus::Degraded);
        if (result.status_detail.empty()) {
            result.status_detail = "internal PODEM failure contained; "
                                   "affected faults counted aborted";
        }
    }

    const char* stop_reason = nullptr;
    if (result.budget_exhausted) {
        result.status =
            util::worst(result.status, util::PhaseStatus::BudgetExhausted);
        stop_reason = options.guard != nullptr &&
                              options.guard->reason() != util::GuardStop::None
                          ? util::to_string(options.guard->reason())
                          : util::to_string(local_guard.reason());
        result.status_detail = std::string("ATPG stopped: ") + stop_reason +
                               " budget exceeded; coverage is partial";
    }

    // Final flush: the "end" marker seals the journal. An "ok" reason means
    // a later --resume is a pure replay; a guard reason means a resume may
    // continue the campaign under a fresh budget.
    if (ckpt_on && !ckpt_failed && !pure_replay && writer.active()) {
        ckpt::Event ev;
        ev.kind = ckpt::EventKind::End;
        ev.reason = stop_reason != nullptr ? stop_reason : "ok";
        ckpt_append(std::move(ev));
    }
    if (ckpt_failed) {
        result.status = util::PhaseStatus::Failed;
        result.status_detail =
            "ckpt.write_failed: " +
            (writer.error().empty() ? std::string("checkpoint append failed")
                                    : writer.error());
    }

    util::ThreadPool::Stats pool_stats = pool.stats();
    obs::counter("atpg.pool.tasks").add(pool_stats.tasks);
    obs::counter("atpg.pool.steals").add(pool_stats.steals);
    obs::counter("atpg.pool.idle_ns").add(pool_stats.idle_ns);

    obs::counter("atpg.runs").add(1);
    obs::counter("atpg.faults.total").add(result.total_faults);
    obs::counter("atpg.faults.detected").add(result.detected);
    obs::counter("atpg.faults.untestable").add(result.untestable);
    obs::counter("atpg.faults.aborted").add(result.aborted);
    obs::counter("atpg.faults.redundant").add(result.redundant);
    run_span.attr("coverage_percent", result.coverage_percent);
    run_span.attr("time_seconds", result.test_gen_seconds);
    return result;
}

} // namespace factor::atpg
