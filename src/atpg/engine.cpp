#include "atpg/engine.hpp"

#include "obs/inject.hpp"
#include "obs/obs.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <random>

namespace factor::atpg {

obs::Doc EngineResult::metrics() const {
    obs::Doc d;
    d.add("faults", total_faults)
        .add("detected", detected)
        .add("untestable", untestable)
        .add("aborted", aborted)
        .add("coverage_percent", coverage_percent)
        .add("efficiency_percent", efficiency_percent)
        .add("time_seconds", test_gen_seconds)
        .add("random_sequences", random_sequences)
        .add("deterministic_tests", deterministic_tests)
        .add("threads", threads);
    if (tests_before_compaction > 0) {
        d.add("tests_kept", tests.size())
            .add("tests_before_compaction", tests_before_compaction);
    }
    d.add("budget_exhausted", budget_exhausted);
    d.add("status", std::string(util::to_string(status)));
    return d;
}

std::string EngineResult::summary() const { return metrics().to_text(); }

namespace {

/// Apply `seq` to every Undetected fault of `list` across all pool
/// executors. Detections land in a shared atomic bitmap and are merged in
/// serial index order afterwards, so the visible drop order — and with it
/// every downstream decision — is identical to a one-executor run.
size_t parallel_run_and_drop(util::ThreadPool& pool,
                             std::vector<FaultSimulator>& sims,
                             FaultList& list, const Sequence& seq) {
    auto good_po = sims[0].simulate_good(seq);
    auto& entries = list.faults();
    const size_t n = entries.size();
    const size_t words = (n + 63) / 64;
    std::vector<std::atomic<uint64_t>> hits(words);
    for (auto& word : hits) word.store(0, std::memory_order_relaxed);
    pool.for_each(n, [&](size_t ex, size_t i) {
        const FaultEntry& e = entries[i];
        if (e.status != FaultStatus::Undetected) return;
        if (sims[ex].detects(e.fault, seq, good_po)) {
            hits[i / 64].fetch_or(uint64_t{1} << (i % 64),
                                  std::memory_order_relaxed);
        }
    });
    size_t newly = 0;
    for (size_t i = 0; i < n; ++i) {
        uint64_t word = hits[i / 64].load(std::memory_order_relaxed);
        if (((word >> (i % 64)) & 1) != 0 &&
            entries[i].status == FaultStatus::Undetected) {
            entries[i].status = FaultStatus::Detected;
            ++newly;
        }
    }
    static obs::Counter& calls = obs::counter("fault_sim.run_and_drop");
    static obs::Counter& dropped = obs::counter("fault_sim.faults_dropped");
    calls.add(1);
    dropped.add(newly);
    return newly;
}

/// How a speculatively processed fault resolved. Workers fill slots out of
/// order; a single commit pipeline applies them in strict fault-list order
/// (discarding slots whose fault an earlier committed test already
/// dropped), which is what makes the result independent of `jobs`.
enum class SlotKind : uint8_t {
    Skipped,        // already non-Undetected when claimed
    Success,        // PODEM produced a test (stored in `test`)
    Untestable,     // exhaustive single-frame proof (combinational)
    AbortBacktrack, // hit the backtrack limit at some depth
    AbortDepth,     // no test up to max_frames
    PodemFailed,    // internal PODEM failure, contained to this fault
    BudgetStopped,  // budget ran out mid-search on this fault
    BudgetSkip,     // budget was already gone when this fault was claimed
};

struct Slot {
    std::atomic<uint8_t> ready{0}; // release-published by the worker
    SlotKind kind = SlotKind::Skipped;
    bool any_backtrack_abort = false;
    ScalarSequence test;
};

} // namespace

EngineResult run_atpg(const synth::Netlist& nl, const EngineOptions& options) {
    util::Stopwatch watch;
    // Local wall-clock guard for the engine's own budget; the external
    // options.guard (if any) carries the pipeline-wide budgets and the
    // process interrupt flag. Either one stops the run. Both are safe to
    // poll from every worker.
    util::RunGuard local_guard(options.time_budget_s);
    auto out_of_budget = [&]() {
        return local_guard.stopped() ||
               (options.guard != nullptr && options.guard->stopped());
    };
    obs::Span run_span("atpg.run");

    EngineResult result;
    const size_t jobs =
        options.jobs > 0 ? options.jobs : util::ThreadPool::default_jobs();
    result.threads = jobs;
    FaultList list(nl, options.scope_prefix);
    result.total_faults = list.size();
    run_span.attr("faults", static_cast<uint64_t>(list.size()));
    run_span.attr("gates", static_cast<uint64_t>(nl.logic_gate_count()));
    run_span.attr("threads", static_cast<uint64_t>(jobs));
    if (!options.scope_prefix.empty()) {
        run_span.attr("scope", options.scope_prefix);
    }
    if (list.size() == 0) {
        result.test_gen_seconds = watch.seconds();
        return result;
    }

    util::ThreadPool pool(jobs);
    // One simulator per executor: shared read-only netlist and cached
    // levelization, private value/state scratch.
    std::vector<FaultSimulator> sims;
    sims.reserve(pool.executors());
    for (size_t ex = 0; ex < pool.executors(); ++ex) sims.emplace_back(nl);
    std::mt19937_64 rng(options.seed);

    // ---- Phase 1: random patterns with fault dropping ----------------------
    {
        obs::Span span("atpg.random_phase");
        obs::Histogram& yield_hist = obs::histogram("atpg.random.batch_yield");
        size_t stale = 0;
        for (size_t batch = 0; batch < options.random_batches; ++batch) {
            if (local_guard.stopped() ||
                (options.guard != nullptr && !options.guard->tick())) {
                break;
            }
            // The stimulus comes off the single engine RNG on this thread,
            // so the pattern stream is byte-identical at any jobs value.
            Sequence seq = sims[0].random_sequence(rng, options.random_frames);
            size_t newly = parallel_run_and_drop(pool, sims, list, seq);
            yield_hist.record(newly);
            result.random_sequences += 64;
            if (newly == 0) {
                if (++stale >= options.random_stale_limit) break;
            } else {
                stale = 0;
            }
        }
        obs::counter("atpg.random.sequences").add(result.random_sequences);
        span.attr("sequences", static_cast<uint64_t>(result.random_sequences));
        span.attr("detected",
                  static_cast<uint64_t>(list.count(FaultStatus::Detected)));
    }

    // ---- Phase 2: deterministic PODEM --------------------------------------
    //
    // Workers claim fault indices from a shared cursor and run PODEM
    // speculatively; results are applied by a strictly in-order commit
    // pipeline. PODEM's outcome for a fault depends only on the netlist —
    // never on the fault list — and in a serial run a test generated for
    // fault j can only drop faults with index > j. Committing in fault
    // order while discarding slots whose fault was dropped by an
    // earlier-committed test therefore reproduces the serial trajectory of
    // statuses, tests and guard ticks exactly, at any executor count.
    {
        obs::Span span("atpg.deterministic_phase");
        const bool combinational = nl.dff_count() == 0;
        PodemOptions popts;
        popts.max_backtracks = options.max_backtracks;

        obs::Histogram& backtrack_hist =
            obs::histogram("atpg.podem.backtracks");
        obs::Counter& podem_calls = obs::counter("atpg.podem.calls");
        obs::Counter& abort_backtracks =
            obs::counter("atpg.abort.backtrack_limit");
        obs::Counter& abort_depth = obs::counter("atpg.abort.depth_limit");
        obs::Counter& abort_mismatch = obs::counter("atpg.abort.sim_mismatch");
        obs::Counter& abort_podem_error =
            obs::counter("atpg.abort.podem_error");
        obs::Counter& drop_calls = obs::counter("fault_sim.run_and_drop");
        obs::Counter& drop_dropped = obs::counter("fault_sim.faults_dropped");

        auto& entries = list.faults();
        const size_t n = entries.size();
        constexpr auto kUndetected =
            static_cast<uint8_t>(FaultStatus::Undetected);
        constexpr auto kDetected = static_cast<uint8_t>(FaultStatus::Detected);
        constexpr auto kAborted = static_cast<uint8_t>(FaultStatus::Aborted);

        // Authoritative per-fault status for the phase. The commit pipeline
        // is the only writer; workers read it as a claim-time skip hint.
        std::vector<std::atomic<uint8_t>> status(n);
        for (size_t i = 0; i < n; ++i) {
            status[i].store(static_cast<uint8_t>(entries[i].status),
                            std::memory_order_relaxed);
        }

        std::vector<Slot> slots(n);
        std::atomic<size_t> cursor{0};
        std::atomic<bool> stop{false}; // commit tripped a budget
        std::atomic<bool> podem_degraded{false};

        std::mutex commit_mu;
        // Guarded by commit_mu.
        size_t next_commit = 0;
        size_t committed_tests = 0;
        std::vector<ScalarSequence> collected;
        bool budget_hit = false;

        auto commit_ready = [&](size_t ex) {
            // Once a budget stop is latched the serial loop is broken for
            // good: no further commits, and no further guard ticks.
            if (budget_hit) return;
            while (next_commit < n) {
                Slot& s = slots[next_commit];
                if (s.ready.load(std::memory_order_acquire) == 0) break;
                const size_t i = next_commit;
                if (s.kind == SlotKind::PodemFailed) {
                    // Degradation is reported even if the slot below turns
                    // out to be discarded: the failure did happen in this
                    // process, and hiding it behind a racy drop would make
                    // the status nondeterministic under parallelism.
                    podem_degraded.store(true, std::memory_order_relaxed);
                }
                if (status[i].load(std::memory_order_relaxed) !=
                    kUndetected) {
                    // An earlier committed test already resolved this
                    // fault; the serial engine would never have targeted
                    // it, so the speculative slot is discarded unseen.
                    ++next_commit;
                    continue;
                }
                // One guard tick per targeted fault, taken in fault-list
                // order — the serial engine's exact accounting, so a
                // work-quota stop lands on the same fault at any jobs.
                if (local_guard.stopped() ||
                    (options.guard != nullptr && !options.guard->tick())) {
                    budget_hit = true;
                    stop.store(true, std::memory_order_relaxed);
                    break;
                }
                switch (s.kind) {
                case SlotKind::Success: {
                    ++committed_tests;
                    Sequence seq = broadcast(s.test, nl.inputs().size());
                    auto good_po = sims[ex].simulate_good(seq);
                    size_t newly = 0;
                    for (size_t j = 0; j < n; ++j) {
                        if (status[j].load(std::memory_order_relaxed) !=
                            kUndetected) {
                            continue;
                        }
                        if (sims[ex].detects(entries[j].fault, seq,
                                             good_po)) {
                            status[j].store(kDetected,
                                            std::memory_order_relaxed);
                            ++newly;
                        }
                    }
                    drop_calls.add(1);
                    drop_dropped.add(newly);
                    if (status[i].load(std::memory_order_relaxed) !=
                        kDetected) {
                        // PODEM said detected but the conservative
                        // simulator disagreed (X-pessimism across frames);
                        // count the fault as aborted rather than trusting
                        // the search.
                        status[i].store(kAborted, std::memory_order_relaxed);
                        abort_mismatch.add(1);
                    }
                    if (options.collect_tests) {
                        collected.push_back(std::move(s.test));
                    }
                    break;
                }
                case SlotKind::Untestable:
                    // Exhausting the decision space of the single frame of
                    // a combinational circuit is a redundancy proof.
                    status[i].store(
                        static_cast<uint8_t>(FaultStatus::Untestable),
                        std::memory_order_relaxed);
                    break;
                case SlotKind::AbortBacktrack:
                    status[i].store(kAborted, std::memory_order_relaxed);
                    abort_backtracks.add(1);
                    break;
                case SlotKind::AbortDepth:
                    status[i].store(kAborted, std::memory_order_relaxed);
                    abort_depth.add(1);
                    break;
                case SlotKind::PodemFailed:
                    // Contained: count it aborted and keep going — partial
                    // coverage beats a dead run.
                    status[i].store(kAborted, std::memory_order_relaxed);
                    break;
                case SlotKind::BudgetStopped:
                    // The worker's depth loop noticed the budget mid-fault:
                    // abort this fault and let the next iteration's guard
                    // check end the phase, as the serial loop does.
                    budget_hit = true;
                    status[i].store(kAborted, std::memory_order_relaxed);
                    (s.any_backtrack_abort ? abort_backtracks : abort_depth)
                        .add(1);
                    break;
                case SlotKind::BudgetSkip:
                    budget_hit = true;
                    stop.store(true, std::memory_order_relaxed);
                    break;
                case SlotKind::Skipped:
                    break; // status said Undetected above; cannot happen
                }
                if (s.kind == SlotKind::BudgetSkip) break;
                ++next_commit;
            }
        };
        auto try_commit = [&](size_t ex) {
            std::unique_lock<std::mutex> lk(commit_mu, std::try_to_lock);
            if (lk.owns_lock()) commit_ready(ex);
        };

        auto worker = [&](size_t ex, size_t /*index*/) {
            obs::Span wspan("atpg.worker");
            wspan.attr("worker", static_cast<uint64_t>(ex));
            TimeFramePodem podem(nl, popts);
            uint64_t claimed = 0;
            uint64_t generated = 0;
            const size_t max_frames = combinational ? 1 : options.max_frames;
            while (!stop.load(std::memory_order_relaxed)) {
                const size_t i = cursor.fetch_add(1,
                                                  std::memory_order_relaxed);
                if (i >= n) break;
                ++claimed;
                Slot& s = slots[i];
                if (status[i].load(std::memory_order_relaxed) !=
                    kUndetected) {
                    s.kind = SlotKind::Skipped;
                    s.ready.store(1, std::memory_order_release);
                    try_commit(ex);
                    continue;
                }
                if (out_of_budget()) {
                    s.kind = SlotKind::BudgetSkip;
                    s.ready.store(1, std::memory_order_release);
                    try_commit(ex);
                    break;
                }
                bool done = false;
                bool all_depths_no_test = true;
                bool podem_failed = false;
                bool budget_stopped = false;
                for (size_t k = 1; k <= max_frames && !done; ++k) {
                    if (out_of_budget()) {
                        budget_stopped = true;
                        all_depths_no_test = false;
                        break;
                    }
                    PodemResult pr;
                    try {
                        obs::inject_point("atpg.podem");
                        pr = podem.generate(entries[i].fault, k);
                    } catch (const util::FactorError&) {
                        abort_podem_error.add(1);
                        podem_failed = true;
                        all_depths_no_test = false;
                        break;
                    }
                    podem_calls.add(1);
                    backtrack_hist.record(pr.backtracks);
                    switch (pr.outcome) {
                    case PodemOutcome::Success:
                        s.test = std::move(pr.test);
                        done = true;
                        ++generated;
                        break;
                    case PodemOutcome::Abort:
                        all_depths_no_test = false;
                        s.any_backtrack_abort = true;
                        break; // try a deeper unroll
                    case PodemOutcome::NoTest:
                        break; // exhausted at this depth; deeper may work
                    }
                }
                if (podem_failed) {
                    s.kind = SlotKind::PodemFailed;
                } else if (done) {
                    s.kind = SlotKind::Success;
                } else if (budget_stopped) {
                    s.kind = SlotKind::BudgetStopped;
                } else if (combinational && all_depths_no_test) {
                    s.kind = SlotKind::Untestable;
                } else {
                    s.kind = s.any_backtrack_abort ? SlotKind::AbortBacktrack
                                                   : SlotKind::AbortDepth;
                }
                s.ready.store(1, std::memory_order_release);
                try_commit(ex);
            }
            wspan.attr("claimed", claimed);
            wspan.attr("tests", generated);
        };

        pool.for_each(pool.executors(), worker);
        {
            // Workers are done; flush whatever the try_lock races left.
            std::lock_guard<std::mutex> lk(commit_mu);
            commit_ready(0);
        }

        for (size_t i = 0; i < n; ++i) {
            entries[i].status = static_cast<FaultStatus>(
                status[i].load(std::memory_order_relaxed));
        }
        result.deterministic_tests = committed_tests;
        if (options.collect_tests) result.tests = std::move(collected);
        if (budget_hit) result.budget_exhausted = true;
        if (podem_degraded.load(std::memory_order_relaxed)) {
            result.status =
                util::worst(result.status, util::PhaseStatus::Degraded);
            if (result.status_detail.empty()) {
                result.status_detail = "internal PODEM failure contained; "
                                       "affected faults counted aborted";
            }
        }
        obs::counter("atpg.podem.tests").add(result.deterministic_tests);
        span.attr("tests",
                  static_cast<uint64_t>(result.deterministic_tests));
    }

    // Any fault still undetected after the loop (e.g. budget break) aborts.
    {
        size_t budget_aborts = 0;
        for (auto& entry : list.faults()) {
            if (entry.status == FaultStatus::Undetected) {
                entry.status = FaultStatus::Aborted;
                ++budget_aborts;
            }
        }
        if (budget_aborts > 0) {
            obs::counter("atpg.abort.time_budget").add(budget_aborts);
        }
    }

    // ---- Static compaction of the collected deterministic tests ------------
    if (options.collect_tests && !result.tests.empty()) {
        obs::Span span("atpg.compaction");
        result.tests_before_compaction = result.tests.size();
        // Reverse-order pass: later tests were generated for the harder
        // faults and tend to cover many earlier ones.
        FaultList compaction_list(nl, options.scope_prefix);
        std::vector<ScalarSequence> kept;
        for (auto it = result.tests.rbegin(); it != result.tests.rend();
             ++it) {
            Sequence seq = broadcast(*it, nl.inputs().size());
            if (parallel_run_and_drop(pool, sims, compaction_list, seq) > 0) {
                kept.push_back(std::move(*it));
            }
        }
        std::reverse(kept.begin(), kept.end());
        result.tests = std::move(kept);
        span.attr("before",
                  static_cast<uint64_t>(result.tests_before_compaction));
        span.attr("after", static_cast<uint64_t>(result.tests.size()));
    }

    result.detected = list.count(FaultStatus::Detected);
    result.untestable = list.count(FaultStatus::Untestable);
    result.aborted = list.count(FaultStatus::Aborted);
    result.coverage_percent = list.coverage_percent();
    result.efficiency_percent = list.efficiency_percent();
    result.test_gen_seconds = watch.seconds();

    if (result.budget_exhausted) {
        result.status =
            util::worst(result.status, util::PhaseStatus::BudgetExhausted);
        const char* why =
            options.guard != nullptr &&
                    options.guard->reason() != util::GuardStop::None
                ? util::to_string(options.guard->reason())
                : util::to_string(local_guard.reason());
        result.status_detail = std::string("ATPG stopped: ") + why +
                               " budget exceeded; coverage is partial";
    }

    util::ThreadPool::Stats pool_stats = pool.stats();
    obs::counter("atpg.pool.tasks").add(pool_stats.tasks);
    obs::counter("atpg.pool.steals").add(pool_stats.steals);
    obs::counter("atpg.pool.idle_ns").add(pool_stats.idle_ns);

    obs::counter("atpg.runs").add(1);
    obs::counter("atpg.faults.total").add(result.total_faults);
    obs::counter("atpg.faults.detected").add(result.detected);
    obs::counter("atpg.faults.untestable").add(result.untestable);
    obs::counter("atpg.faults.aborted").add(result.aborted);
    run_span.attr("coverage_percent", result.coverage_percent);
    run_span.attr("time_seconds", result.test_gen_seconds);
    return result;
}

} // namespace factor::atpg
