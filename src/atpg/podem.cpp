#include "atpg/podem.hpp"

#include "obs/obs.hpp"

#include <algorithm>
#include <cassert>

namespace factor::atpg {

using synth::Gate;
using synth::GateId;
using synth::GateType;
using synth::Netlist;
using synth::NetId;

TimeFramePodem::TimeFramePodem(const Netlist& nl, PodemOptions options)
    : nl_(nl), options_(options), topo_(nl.levelize_shared()),
      dffs_(nl.dffs()) {
    pi_index_of_net_.assign(nl.num_nets(), SIZE_MAX);
    for (size_t i = 0; i < nl.inputs().size(); ++i) {
        pi_index_of_net_[nl.inputs()[i]] = i;
    }
}

namespace {

/// Apply the fault effect at its site: the faulty machine is stuck.
V5 faulted(V5 good_side, bool sa1) {
    V5 g = good_of(good_side);
    if (g == V5::X) return V5::X;
    bool gv = g == V5::One;
    if (gv == sa1) return v5_binary(gv); // not activated
    return gv ? V5::D : V5::DB;
}

} // namespace

V5 TimeFramePodem::input_value(const Fault& fault, size_t frame, GateId g,
                               size_t pin) const {
    V5 v = at(frame, nl_.gate(g).ins[pin]);
    if (!fault.is_stem() && fault.gate == g &&
        fault.pin == static_cast<int>(pin)) {
        return faulted(v, fault.sa1);
    }
    return v;
}

void TimeFramePodem::simulate(const Fault& fault, size_t frames) {
    const size_t num_pis = nl_.inputs().size();
    for (size_t f = 0; f < frames; ++f) {
        // Primary inputs.
        for (size_t i = 0; i < num_pis; ++i) {
            V5 v = assigned_[f * num_pis + i] ? pi_values_[f * num_pis + i]
                                              : V5::X;
            at(f, nl_.inputs()[i]) = v;
        }
        // Undriven internal nets: X. (They are never written below.)
        // Flip-flop outputs.
        for (GateId d : dffs_) {
            const Gate& g = nl_.gate(d);
            V5 q = f == 0 ? V5::X : at(f - 1, g.ins[0]);
            if (fault.is_stem() && fault.net == g.out) q = faulted(q, fault.sa1);
            at(f, g.out) = q;
        }
        // Stem fault on a primary input.
        if (fault.is_stem() && pi_index_of_net_[fault.net] != SIZE_MAX) {
            at(f, fault.net) = faulted(at(f, fault.net), fault.sa1);
        }

        for (GateId gid : *topo_) {
            const Gate& g = nl_.gate(gid);
            V5 out = V5::X;
            switch (g.type) {
            case GateType::Const0: out = V5::Zero; break;
            case GateType::Const1: out = V5::One; break;
            case GateType::Buf: out = input_value(fault, f, gid, 0); break;
            case GateType::Not:
                out = v5_not(input_value(fault, f, gid, 0));
                break;
            case GateType::And:
            case GateType::Nand: {
                out = V5::One;
                for (size_t i = 0; i < g.ins.size(); ++i) {
                    out = v5_and(out, input_value(fault, f, gid, i));
                }
                if (g.type == GateType::Nand) out = v5_not(out);
                break;
            }
            case GateType::Or:
            case GateType::Nor: {
                out = V5::Zero;
                for (size_t i = 0; i < g.ins.size(); ++i) {
                    out = v5_or(out, input_value(fault, f, gid, i));
                }
                if (g.type == GateType::Nor) out = v5_not(out);
                break;
            }
            case GateType::Xor:
                out = v5_xor(input_value(fault, f, gid, 0),
                             input_value(fault, f, gid, 1));
                break;
            case GateType::Xnor:
                out = v5_not(v5_xor(input_value(fault, f, gid, 0),
                                    input_value(fault, f, gid, 1)));
                break;
            case GateType::Mux:
                out = v5_mux(input_value(fault, f, gid, 0),
                             input_value(fault, f, gid, 1),
                             input_value(fault, f, gid, 2));
                break;
            case GateType::Dff:
                continue;
            }
            if (fault.is_stem() && fault.net == g.out) {
                out = faulted(out, fault.sa1);
            }
            at(f, g.out) = out;
        }
    }
}

bool TimeFramePodem::test_found(size_t frames) const {
    for (size_t f = 0; f < frames; ++f) {
        for (NetId po : nl_.outputs()) {
            V5 v = at(f, po);
            if (v == V5::D || v == V5::DB) return true;
        }
    }
    return false;
}

void TimeFramePodem::collect_objectives(const Fault& fault, size_t frames,
                                        std::vector<Objective>& out) const {
    // Phase 1: fault activation. The site must carry D/D' in some frame.
    bool activated = false;
    for (size_t f = 0; f < frames && !activated; ++f) {
        V5 v = fault.is_stem()
                   ? at(f, fault.net)
                   : input_value(fault, f, fault.gate,
                                 static_cast<size_t>(fault.pin));
        activated = v == V5::D || v == V5::DB;
    }
    if (!activated) {
        for (size_t f = 0; f < frames; ++f) {
            V5 v = at(f, fault.net);
            if (v == V5::X) {
                Objective obj;
                obj.valid = true;
                obj.frame = f;
                obj.net = fault.net;
                obj.value = !fault.sa1; // drive the opposite of the stuck value
                out.push_back(obj);
            }
        }
        return;
    }

    // Phase 2: propagation. One candidate per D-frontier gate (output X,
    // at least one input D/D').
    for (size_t f = 0; f < frames; ++f) {
        for (GateId gid : *topo_) {
            const Gate& g = nl_.gate(gid);
            if (at(f, g.out) != V5::X) continue;
            bool has_d = false;
            for (size_t i = 0; i < g.ins.size(); ++i) {
                V5 v = input_value(fault, f, gid, i);
                has_d |= (v == V5::D || v == V5::DB);
            }
            if (!has_d) continue;

            // Choose an X input and its non-controlling value.
            switch (g.type) {
            case GateType::And:
            case GateType::Nand:
            case GateType::Or:
            case GateType::Nor: {
                bool noncontrol =
                    g.type == GateType::And || g.type == GateType::Nand;
                for (size_t i = 0; i < g.ins.size(); ++i) {
                    if (input_value(fault, f, gid, i) == V5::X) {
                        Objective obj;
                        obj.valid = true;
                        obj.frame = f;
                        obj.net = g.ins[i];
                        obj.value = noncontrol;
                        out.push_back(obj);
                        break;
                    }
                }
                break;
            }
            case GateType::Xor:
            case GateType::Xnor: {
                for (size_t i = 0; i < g.ins.size(); ++i) {
                    if (input_value(fault, f, gid, i) == V5::X) {
                        Objective obj;
                        obj.valid = true;
                        obj.frame = f;
                        obj.net = g.ins[i];
                        obj.value = false; // either value propagates
                        out.push_back(obj);
                        break;
                    }
                }
                break;
            }
            case GateType::Mux: {
                V5 sel = input_value(fault, f, gid, 0);
                V5 a0 = input_value(fault, f, gid, 1);
                V5 a1 = input_value(fault, f, gid, 2);
                Objective obj;
                obj.valid = true;
                obj.frame = f;
                if (a0 == V5::D || a0 == V5::DB) {
                    if (sel == V5::X) {
                        obj.net = g.ins[0];
                        obj.value = false;
                        out.push_back(obj);
                    }
                } else if (a1 == V5::D || a1 == V5::DB) {
                    if (sel == V5::X) {
                        obj.net = g.ins[0];
                        obj.value = true;
                        out.push_back(obj);
                    }
                } else {
                    // D on the select: make the data inputs differ.
                    if (a0 == V5::X) {
                        obj.net = g.ins[1];
                        obj.value = a1 == V5::Zero;
                        out.push_back(obj);
                    } else if (a1 == V5::X) {
                        obj.net = g.ins[2];
                        obj.value = a0 == V5::Zero;
                        out.push_back(obj);
                    }
                }
                break;
            }
            default:
                break;
            }
        }
    }
}

TimeFramePodem::Objective TimeFramePodem::backtrace(Objective obj) const {
    // Walk from the objective toward an unassigned primary input, mapping
    // the desired value through each gate.
    for (int guard = 0; guard < 100000; ++guard) {
        NetId n = obj.net;
        size_t f = obj.frame;

        size_t pi = pi_index_of_net_[n];
        if (pi != SIZE_MAX) {
            if (pi_assigned(f, pi)) return Objective{}; // already fixed
            return obj;
        }
        GateId d = nl_.driver(n);
        if (d == Netlist::kNoGate) return Objective{}; // X source
        const Gate& g = nl_.gate(d);
        switch (g.type) {
        case GateType::Const0:
        case GateType::Const1:
            return Objective{};
        case GateType::Buf:
            obj.net = g.ins[0];
            break;
        case GateType::Not:
            obj.net = g.ins[0];
            obj.value = !obj.value;
            break;
        case GateType::Dff: {
            if (f == 0) return Objective{}; // unknown initial state
            obj.frame = f - 1;
            obj.net = g.ins[0];
            break;
        }
        case GateType::And:
        case GateType::Nand:
        case GateType::Or:
        case GateType::Nor: {
            bool v = obj.value;
            if (g.type == GateType::Nand || g.type == GateType::Nor) v = !v;
            // Choose an input with X to justify through.
            NetId chosen = synth::kNoNet;
            for (NetId in : g.ins) {
                if (at(f, in) == V5::X) {
                    chosen = in;
                    break;
                }
            }
            if (chosen == synth::kNoNet) return Objective{};
            obj.net = chosen;
            obj.value = v;
            break;
        }
        case GateType::Xor:
        case GateType::Xnor: {
            V5 a = at(f, g.ins[0]);
            V5 b = at(f, g.ins[1]);
            bool v = obj.value;
            if (g.type == GateType::Xnor) v = !v;
            if (a == V5::X) {
                bool other = b == V5::One || b == V5::D;
                bool other_known = b != V5::X;
                obj.net = g.ins[0];
                obj.value = other_known ? (v != other) : v;
            } else if (b == V5::X) {
                bool other = a == V5::One || a == V5::D;
                obj.net = g.ins[1];
                obj.value = v != other;
            } else {
                return Objective{};
            }
            break;
        }
        case GateType::Mux: {
            V5 sel = at(f, g.ins[0]);
            if (sel == V5::Zero || sel == V5::DB) {
                obj.net = g.ins[1];
            } else if (sel == V5::One || sel == V5::D) {
                obj.net = g.ins[2];
            } else {
                // Unknown select: justify the select low, then data 0.
                V5 a0 = at(f, g.ins[1]);
                if (a0 == V5::X) {
                    obj.net = g.ins[0];
                    obj.value = false;
                } else {
                    obj.net = g.ins[0];
                    // Select the side that can still produce the value.
                    bool a0v = a0 == V5::One || a0 == V5::D;
                    obj.value = a0v != obj.value; // mismatch -> try other side
                }
            }
            break;
        }
        }
    }
    return Objective{};
}

PodemResult TimeFramePodem::generate(const Fault& fault, size_t frames) {
    PodemResult result;
    const size_t num_pis = nl_.inputs().size();
    values_.assign(frames * nl_.num_nets(), V5::X);
    pi_values_.assign(frames * num_pis, V5::X);
    assigned_.assign(frames * num_pis, 0);

    // Tallied locally, flushed to the registry once per call (cached
    // references keep the search loop free of registry lookups).
    static obs::Counter& decisions_counter =
        obs::counter("atpg.podem.decisions");
    static obs::Counter& simulations_counter =
        obs::counter("atpg.podem.simulations");
    // Per-call hardness instrumentation: how much backtracking each fault
    // cost and how many searches hit the backtrack limit. Flushed on every
    // return path (including the abort returns) by the RAII guard.
    static obs::Histogram& backtracks_hist = obs::histogram("podem.backtracks");
    static obs::Counter& aborts_counter = obs::counter("podem.aborts");
    uint64_t decisions = 0;
    uint64_t simulations = 1;
    struct Flush {
        obs::Counter& dc;
        obs::Counter& sc;
        obs::Histogram& bh;
        obs::Counter& ac;
        const uint64_t& d;
        const uint64_t& s;
        const PodemResult& r;
        ~Flush() {
            dc.add(d);
            sc.add(s);
            bh.record(r.backtracks);
            if (r.outcome == PodemOutcome::Abort) ac.add(1);
        }
    } flush{decisions_counter, simulations_counter, backtracks_hist,
            aborts_counter,    decisions,           simulations,
            result};

    std::vector<Decision> stack;
    simulate(fault, frames);

    while (true) {
        if (test_found(frames)) {
            result.outcome = PodemOutcome::Success;
            result.test.frames.assign(frames, std::vector<V5>(num_pis, V5::X));
            for (const Decision& d : stack) {
                result.test.frames[d.frame][d.pi] = v5_binary(d.value);
            }
            return result;
        }

        std::vector<Objective> candidates;
        collect_objectives(fault, frames, candidates);
        Objective pi_obj;
        for (const Objective& obj : candidates) {
            pi_obj = backtrace(obj);
            if (pi_obj.valid) break;
        }

        if (!pi_obj.valid) {
            // Conflict: flip the most recent unflipped decision.
            bool recovered = false;
            while (!stack.empty()) {
                Decision& d = stack.back();
                size_t idx = d.frame * num_pis + d.pi;
                if (!d.flipped) {
                    d.flipped = true;
                    d.value = !d.value;
                    pi_values_[idx] = v5_binary(d.value);
                    ++result.backtracks;
                    if (result.backtracks > options_.max_backtracks) {
                        result.outcome = PodemOutcome::Abort;
                        return result;
                    }
                    recovered = true;
                    break;
                }
                assigned_[idx] = 0;
                pi_values_[idx] = V5::X;
                stack.pop_back();
            }
            if (!recovered) {
                result.outcome = PodemOutcome::NoTest;
                return result;
            }
            ++simulations;
            simulate(fault, frames);
            continue;
        }

        size_t pi = pi_index_of_net_[pi_obj.net];
        assert(pi != SIZE_MAX);
        Decision d;
        d.frame = pi_obj.frame;
        d.pi = pi;
        d.value = pi_obj.value;
        stack.push_back(d);
        ++decisions;
        size_t idx = d.frame * num_pis + d.pi;
        assigned_[idx] = 1;
        pi_values_[idx] = v5_binary(d.value);
        ++simulations;
        simulate(fault, frames);
    }
}

} // namespace factor::atpg
