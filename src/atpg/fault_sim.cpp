#include "atpg/fault_sim.hpp"

#include "obs/obs.hpp"

namespace factor::atpg {

using synth::Gate;
using synth::GateId;
using synth::GateType;
using synth::Netlist;
using synth::NetId;

Sequence broadcast(const ScalarSequence& s, size_t num_pis) {
    Sequence out;
    out.reserve(s.frames.size());
    for (const auto& frame : s.frames) {
        Frame f;
        f.pi.assign(num_pis, V64::all_x());
        for (size_t i = 0; i < frame.size() && i < num_pis; ++i) {
            switch (frame[i]) {
            case V5::Zero: f.pi[i] = V64{0, 1}; break;
            case V5::One: f.pi[i] = V64{1, 0}; break;
            default: break; // X stays unknown
            }
        }
        out.push_back(std::move(f));
    }
    return out;
}

FaultSimulator::FaultSimulator(const Netlist& nl)
    : nl_(nl), topo_(nl.levelize_shared()), dffs_(nl.dffs()) {}

namespace {

V64 inject(V64 /*prev*/, bool sa1) { return sa1 ? V64::all1() : V64::all0(); }

} // namespace

void FaultSimulator::eval_frame(std::vector<V64>& value, const Frame& frame,
                                const std::vector<V64>& state,
                                const Fault* fault) const {
    // Reset all nets to X; undriven nets stay X all frame.
    std::fill(value.begin(), value.end(), V64::all_x());

    const auto& inputs = nl_.inputs();
    for (size_t i = 0; i < inputs.size(); ++i) {
        value[inputs[i]] = i < frame.pi.size() ? frame.pi[i] : V64::all_x();
    }
    for (size_t i = 0; i < dffs_.size(); ++i) {
        value[nl_.gate(dffs_[i]).out] = state[i];
    }

    // Stem fault on a PI / DFF output / undriven net applies immediately.
    if (fault != nullptr && fault->is_stem() &&
        nl_.driver(fault->net) == Netlist::kNoGate) {
        value[fault->net] = inject(value[fault->net], fault->sa1);
    }
    if (fault != nullptr && fault->is_stem()) {
        synth::GateId d = nl_.driver(fault->net);
        if (d != Netlist::kNoGate && nl_.gate(d).type == GateType::Dff) {
            value[fault->net] = inject(value[fault->net], fault->sa1);
        }
    }

    auto in_val = [&](GateId g, size_t pin, NetId net) -> V64 {
        V64 v = value[net];
        if (fault != nullptr && !fault->is_stem() && fault->gate == g &&
            fault->pin == static_cast<int>(pin)) {
            return inject(v, fault->sa1);
        }
        return v;
    };

    for (GateId gid : *topo_) {
        const Gate& g = nl_.gate(gid);
        V64 out;
        switch (g.type) {
        case GateType::Const0: out = V64::all0(); break;
        case GateType::Const1: out = V64::all1(); break;
        case GateType::Buf: out = in_val(gid, 0, g.ins[0]); break;
        case GateType::Not: out = v_not(in_val(gid, 0, g.ins[0])); break;
        case GateType::And:
        case GateType::Nand: {
            out = V64::all1();
            for (size_t i = 0; i < g.ins.size(); ++i) {
                out = v_and(out, in_val(gid, i, g.ins[i]));
            }
            if (g.type == GateType::Nand) out = v_not(out);
            break;
        }
        case GateType::Or:
        case GateType::Nor: {
            out = V64::all0();
            for (size_t i = 0; i < g.ins.size(); ++i) {
                out = v_or(out, in_val(gid, i, g.ins[i]));
            }
            if (g.type == GateType::Nor) out = v_not(out);
            break;
        }
        case GateType::Xor:
            out = v_xor(in_val(gid, 0, g.ins[0]), in_val(gid, 1, g.ins[1]));
            break;
        case GateType::Xnor:
            out = v_not(
                v_xor(in_val(gid, 0, g.ins[0]), in_val(gid, 1, g.ins[1])));
            break;
        case GateType::Mux:
            out = v_mux(in_val(gid, 0, g.ins[0]), in_val(gid, 1, g.ins[1]),
                        in_val(gid, 2, g.ins[2]));
            break;
        case GateType::Dff:
            continue; // state handled outside
        }
        if (fault != nullptr && fault->is_stem() && fault->net == g.out) {
            out = inject(out, fault->sa1);
        }
        value[g.out] = out;
    }
}

std::vector<std::vector<V64>>
FaultSimulator::simulate_good(const Sequence& seq) {
    // Cached reference: registry lookups stay off the simulation path.
    static obs::Counter& frames_counter = obs::counter("fault_sim.good_frames");
    static obs::Counter& evals_counter = obs::counter("fault_sim.gate_evals");
    frames_counter.add(seq.size());
    evals_counter.add(seq.size() * topo_->size());
    value_.assign(nl_.num_nets(), V64::all_x());
    state_.assign(dffs_.size(), V64::all_x());
    std::vector<std::vector<V64>> po_per_frame;
    po_per_frame.reserve(seq.size());

    for (const Frame& frame : seq) {
        eval_frame(value_, frame, state_, nullptr);
        std::vector<V64> pos;
        pos.reserve(nl_.outputs().size());
        for (NetId po : nl_.outputs()) pos.push_back(value_[po]);
        po_per_frame.push_back(std::move(pos));
        for (size_t i = 0; i < dffs_.size(); ++i) {
            // Next state: sample D; a fault-free DFF just copies.
            state_[i] = value_[nl_.gate(dffs_[i]).ins[0]];
        }
    }
    return po_per_frame;
}

uint64_t FaultSimulator::faulty_detect(
    const Fault& fault, const Sequence& seq,
    const std::vector<std::vector<V64>>& good_po, bool stop_at_first) {
    static obs::Counter& frames_counter =
        obs::counter("fault_sim.faulty_frames");
    value_.assign(nl_.num_nets(), V64::all_x());
    state_.assign(dffs_.size(), V64::all_x());
    uint64_t detected = 0;
    size_t frames_run = 0;

    for (size_t f = 0; f < seq.size(); ++f) {
        ++frames_run;
        eval_frame(value_, seq[f], state_, &fault);
        const auto& good = good_po[f];
        for (size_t o = 0; o < nl_.outputs().size(); ++o) {
            V64 fv = value_[nl_.outputs()[o]];
            V64 gv = good[o];
            // Definite detection: both binary and different.
            detected |= (gv.one & fv.zero) | (gv.zero & fv.one);
        }
        if (detected == ~0ull) break;
        if (stop_at_first && detected != 0) break;
        for (size_t i = 0; i < dffs_.size(); ++i) {
            const Gate& g = nl_.gate(dffs_[i]);
            V64 next = value_[g.ins[0]];
            // A stem fault on the DFF output reasserts every frame (handled
            // in eval_frame), so plain sampling is correct here.
            state_[i] = next;
        }
    }
    frames_counter.add(frames_run);
    static obs::Counter& evals_counter = obs::counter("fault_sim.gate_evals");
    evals_counter.add(frames_run * topo_->size());
    return detected;
}

uint64_t FaultSimulator::detect_mask(
    const Fault& fault, const Sequence& seq,
    const std::vector<std::vector<V64>>& good_po) {
    return faulty_detect(fault, seq, good_po, /*stop_at_first=*/false);
}

bool FaultSimulator::detects(const Fault& fault, const Sequence& seq,
                             const std::vector<std::vector<V64>>& good_po) {
    return faulty_detect(fault, seq, good_po, /*stop_at_first=*/true) != 0;
}

size_t FaultSimulator::run_and_drop(FaultList& list, const Sequence& seq) {
    auto good_po = simulate_good(seq);
    size_t newly = 0;
    for (auto& entry : list.faults()) {
        if (entry.status != FaultStatus::Undetected) continue;
        // A drop only needs existence, not the full mask: stop at the
        // first detecting frame instead of re-simulating the whole
        // sequence for an already-caught fault.
        if (detects(entry.fault, seq, good_po)) {
            entry.status = FaultStatus::Detected;
            ++newly;
        }
    }
    static obs::Counter& calls = obs::counter("fault_sim.run_and_drop");
    static obs::Counter& dropped = obs::counter("fault_sim.faults_dropped");
    calls.add(1);
    dropped.add(newly);
    return newly;
}

Sequence FaultSimulator::random_sequence(std::mt19937_64& rng,
                                         size_t frames) const {
    Sequence seq;
    seq.reserve(frames);
    for (size_t f = 0; f < frames; ++f) {
        Frame frame;
        frame.pi.reserve(nl_.inputs().size());
        for (size_t i = 0; i < nl_.inputs().size(); ++i) {
            uint64_t r = rng();
            frame.pi.push_back(V64{r, ~r});
        }
        seq.push_back(std::move(frame));
    }
    return seq;
}

} // namespace factor::atpg
