#include "atpg/fault_sim.hpp"

#include "obs/obs.hpp"
#include "util/diagnostics.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <cstring>

namespace factor::atpg {

using synth::Gate;
using synth::GateId;
using synth::GateType;
using synth::Netlist;
using synth::NetId;

Sequence broadcast(const ScalarSequence& s, size_t num_pis) {
    Sequence out;
    out.reserve(s.frames.size());
    for (const auto& frame : s.frames) {
        Frame f;
        f.pi.assign(num_pis, V64::all_x());
        for (size_t i = 0; i < frame.size() && i < num_pis; ++i) {
            switch (frame[i]) {
            case V5::Zero: f.pi[i] = V64{0, 1}; break;
            case V5::One: f.pi[i] = V64{1, 0}; break;
            default: break; // X stays unknown
            }
        }
        out.push_back(std::move(f));
    }
    return out;
}

size_t resolve_sim_words(size_t sim_width_bits) {
    if (sim_width_bits == 0) {
        const char* env = std::getenv("FACTOR_SIM_WIDTH");
        if (env == nullptr || *env == '\0') return default_sim_words();
        sim_width_bits = static_cast<size_t>(std::atoll(env));
        if (sim_width_bits != 64 && sim_width_bits != 256 &&
            sim_width_bits != 512) {
            throw util::FactorError(
                "FACTOR_SIM_WIDTH must be 64, 256 or 512 (got '" +
                std::string(env) + "')");
        }
    }
    switch (sim_width_bits) {
    case 64: return 1;
    case 256: return 4;
    case 512: return 8;
    default:
        throw util::FactorError("sim width must be 64, 256 or 512 bits");
    }
}

SimMode resolve_sim_mode(SimMode requested) {
    if (requested != SimMode::Auto) return requested;
    const char* env = std::getenv("FACTOR_SIM_MODE");
    if (env == nullptr || *env == '\0') return SimMode::Event;
    std::string v(env);
    if (v == "full") return SimMode::Full;
    if (v == "event") return SimMode::Event;
    throw util::FactorError("FACTOR_SIM_MODE must be 'full' or 'event' (got '" +
                            v + "')");
}

size_t DetectMask::count() const {
    size_t n = 0;
    for (size_t w = 0; w < words; ++w) {
        n += static_cast<size_t>(std::popcount(bits[w]));
    }
    return n;
}

// ------------------------------------------------------------ fanout cones

FanoutCones::FanoutCones(const synth::Netlist& nl)
    : nl_(nl), fanout_(nl.build_fanout()) {
    auto topo = nl.levelize_shared();
    topo_pos_.assign(nl.num_gates(), 0);
    for (size_t i = 0; i < topo->size(); ++i) {
        topo_pos_[(*topo)[i]] = static_cast<uint32_t>(i);
    }
    dff_index_.assign(nl.num_gates(), kNoDff);
    auto dffs = nl.dffs();
    for (size_t i = 0; i < dffs.size(); ++i) {
        dff_index_[dffs[i]] = static_cast<uint32_t>(i);
    }
    // A cone covering most of the combinational logic stops paying for its
    // member list: fall back to sweeping the shared levelized order (the
    // dirty-skip still applies) and keep the memory for the small cones.
    full_threshold_ = std::max<size_t>(256, (topo->size() * 3) / 4);
}

std::unique_ptr<FanoutCones::Cone> FanoutCones::build(NetId seed) const {
    auto cone = std::make_unique<Cone>();
    std::vector<uint8_t> seen_gate(nl_.num_gates(), 0);
    std::vector<uint8_t> seen_net(nl_.num_nets(), 0);
    std::vector<NetId> work{seed};
    seen_net[seed] = 1;
    // Sequential closure: DFF members contribute their output net back into
    // the frontier, so feedback through state stays inside the cone.
    while (!work.empty()) {
        NetId n = work.back();
        work.pop_back();
        for (GateId r : fanout_[n]) {
            if (seen_gate[r] != 0) continue;
            seen_gate[r] = 1;
            const Gate& g = nl_.gate(r);
            if (g.type == GateType::Dff) {
                cone->dffs.push_back(dff_index_[r]);
            } else {
                cone->gates.push_back(r);
            }
            if (g.out != synth::kNoNet && seen_net[g.out] == 0) {
                seen_net[g.out] = 1;
                work.push_back(g.out);
            }
        }
    }
    if (cone->gates.size() > full_threshold_) {
        cone->full = true;
        cone->gates.clear();
        cone->gates.shrink_to_fit();
        cone->dffs.clear();
        const size_t ndffs = nl_.dffs().size();
        cone->dffs.reserve(ndffs);
        for (size_t i = 0; i < ndffs; ++i) {
            cone->dffs.push_back(static_cast<uint32_t>(i));
        }
        cone->pos.reserve(nl_.outputs().size());
        for (size_t o = 0; o < nl_.outputs().size(); ++o) {
            cone->pos.push_back(static_cast<uint32_t>(o));
        }
        return cone;
    }
    std::sort(cone->gates.begin(), cone->gates.end(),
              [&](GateId a, GateId b) { return topo_pos_[a] < topo_pos_[b]; });
    std::sort(cone->dffs.begin(), cone->dffs.end());
    for (size_t o = 0; o < nl_.outputs().size(); ++o) {
        if (seen_net[nl_.outputs()[o]] != 0) {
            cone->pos.push_back(static_cast<uint32_t>(o));
        }
    }
    return cone;
}

const FanoutCones::Cone& FanoutCones::for_net(NetId net) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cones_.find(net);
    if (it != cones_.end()) return *it->second;
    auto cone = build(net);
    return *cones_.emplace(net, std::move(cone)).first->second;
}

// -------------------------------------------------------------- wide kernel

namespace {

V64 inject(V64 /*prev*/, bool sa1) { return sa1 ? V64::all1() : V64::all0(); }

template <size_t W>
VWide<W> inject_wide(bool sa1) {
    return sa1 ? VWide<W>::all1() : VWide<W>::all0();
}

template <size_t W>
inline VWide<W> loadv(const uint64_t* one, const uint64_t* zero, size_t net) {
    VWide<W> v;
    const uint64_t* o = one + net * W;
    const uint64_t* z = zero + net * W;
    for (size_t w = 0; w < W; ++w) {
        v.one[w] = o[w];
        v.zero[w] = z[w];
    }
    return v;
}

template <size_t W>
inline void storev(uint64_t* one, uint64_t* zero, size_t net,
                   const VWide<W>& v) {
    uint64_t* o = one + net * W;
    uint64_t* z = zero + net * W;
    for (size_t w = 0; w < W; ++w) {
        o[w] = v.one[w];
        z[w] = v.zero[w];
    }
}

/// Evaluate one combinational gate; `in(pin, net)` supplies input values
/// (and is where branch-fault injection hooks in).
template <size_t W, typename In>
inline VWide<W> eval_gate(const Gate& g, In&& in) {
    switch (g.type) {
    case GateType::Const0: return VWide<W>::all0();
    case GateType::Const1: return VWide<W>::all1();
    case GateType::Buf: return in(size_t{0}, g.ins[0]);
    case GateType::Not: return v_not(in(size_t{0}, g.ins[0]));
    case GateType::And:
    case GateType::Nand: {
        VWide<W> out = VWide<W>::all1();
        for (size_t i = 0; i < g.ins.size(); ++i) {
            out = v_and(out, in(i, g.ins[i]));
        }
        if (g.type == GateType::Nand) out = v_not(out);
        return out;
    }
    case GateType::Or:
    case GateType::Nor: {
        VWide<W> out = VWide<W>::all0();
        for (size_t i = 0; i < g.ins.size(); ++i) {
            out = v_or(out, in(i, g.ins[i]));
        }
        if (g.type == GateType::Nor) out = v_not(out);
        return out;
    }
    case GateType::Xor:
        return v_xor(in(size_t{0}, g.ins[0]), in(size_t{1}, g.ins[1]));
    case GateType::Xnor:
        return v_not(
            v_xor(in(size_t{0}, g.ins[0]), in(size_t{1}, g.ins[1])));
    case GateType::Mux:
        return v_mux(in(size_t{0}, g.ins[0]), in(size_t{1}, g.ins[1]),
                     in(size_t{2}, g.ins[2]));
    case GateType::Dff: break; // state handled outside the gate loop
    }
    return VWide<W>::all_x();
}

} // namespace

class FaultSimulator::KernelBase {
  public:
    virtual ~KernelBase() = default;
    [[nodiscard]] virtual std::shared_ptr<const GoodSim>
    simulate_good(const Sequence& seq) = 0;
    /// `cones` non-null selects the event-driven path.
    [[nodiscard]] virtual DetectMask
    faulty_detect(const Fault& fault, const Sequence& seq, const GoodSim& good,
                  bool stop_at_first, FanoutCones* cones) = 0;
};

template <size_t W>
class FaultSimulator::Kernel final : public FaultSimulator::KernelBase {
  public:
    Kernel(const Netlist& nl,
           std::shared_ptr<const std::vector<GateId>> topo,
           std::vector<GateId> dffs)
        : nl_(nl), topo_(std::move(topo)), dffs_(std::move(dffs)) {}

    std::shared_ptr<const GoodSim> simulate_good(const Sequence& seq) override {
        static obs::Counter& frames_counter =
            obs::counter("fault_sim.good_frames");
        static obs::Counter& evals_counter =
            obs::counter("fault_sim.gate_evals");
        frames_counter.add(seq.size());
        evals_counter.add(seq.size() * topo_->size());

        auto gs = std::make_shared<GoodSim>();
        gs->words = W;
        gs->frames = seq.size();
        gs->nets = nl_.num_nets();
        const size_t stride = gs->nets * W;
        gs->one.assign(stride * seq.size(), 0);
        gs->zero.assign(stride * seq.size(), 0);
        sone_.assign(dffs_.size() * W, 0);
        szero_.assign(dffs_.size() * W, 0);

        for (size_t f = 0; f < seq.size(); ++f) {
            uint64_t* one = gs->one.data() + f * stride;
            uint64_t* zero = gs->zero.data() + f * stride;
            load_frame(seq[f], one, zero);
            for (size_t i = 0; i < dffs_.size(); ++i) {
                NetId q = nl_.gate(dffs_[i]).out;
                std::memcpy(one + q * W, sone_.data() + i * W,
                            W * sizeof(uint64_t));
                std::memcpy(zero + q * W, szero_.data() + i * W,
                            W * sizeof(uint64_t));
            }
            auto in = [&](size_t, NetId net) {
                return loadv<W>(one, zero, net);
            };
            for (GateId gid : *topo_) {
                const Gate& g = nl_.gate(gid);
                if (g.type == GateType::Dff) continue;
                storev<W>(one, zero, g.out, eval_gate<W>(g, in));
            }
            for (size_t i = 0; i < dffs_.size(); ++i) {
                // Next state: sample D; a fault-free DFF just copies.
                NetId d = nl_.gate(dffs_[i]).ins[0];
                std::memcpy(sone_.data() + i * W, one + d * W,
                            W * sizeof(uint64_t));
                std::memcpy(szero_.data() + i * W, zero + d * W,
                            W * sizeof(uint64_t));
            }
        }
        return gs;
    }

    DetectMask faulty_detect(const Fault& fault, const Sequence& seq,
                             const GoodSim& good, bool stop_at_first,
                             FanoutCones* cones) override {
        if (cones != nullptr) {
            return event_detect(fault, seq, good, stop_at_first, *cones);
        }
        return full_detect(fault, seq, good, stop_at_first);
    }

  private:
    /// Load PI planes for one frame (missing words/lanes stay X) on top of
    /// an all-X frame slice.
    void load_frame(const Frame& frame, uint64_t* one, uint64_t* zero) {
        std::memset(one, 0, nl_.num_nets() * W * sizeof(uint64_t));
        std::memset(zero, 0, nl_.num_nets() * W * sizeof(uint64_t));
        const auto& inputs = nl_.inputs();
        for (size_t i = 0; i < inputs.size(); ++i) {
            for (size_t w = 0; w < W; ++w) {
                const size_t idx = i * frame.words + w;
                if (w >= frame.words || idx >= frame.pi.size()) break;
                one[inputs[i] * W + w] = frame.pi[idx].one;
                zero[inputs[i] * W + w] = frame.pi[idx].zero;
            }
        }
    }

    /// Full-sweep faulty evaluation (SimMode::Full): the legacy algorithm,
    /// widened. Every frame re-evaluates the whole levelized order.
    DetectMask full_detect(const Fault& fault, const Sequence& seq,
                           const GoodSim& good, bool stop_at_first) {
        static obs::Counter& frames_counter =
            obs::counter("fault_sim.faulty_frames");
        static obs::Counter& evals_counter =
            obs::counter("fault_sim.gate_evals");
        const size_t nets = nl_.num_nets();
        fone_.assign(nets * W, 0);
        fzero_.assign(nets * W, 0);
        sone_.assign(dffs_.size() * W, 0);
        szero_.assign(dffs_.size() * W, 0);
        const VWide<W> inj = inject_wide<W>(fault.sa1);

        DetectMask det;
        det.words = W;
        size_t frames_run = 0;
        for (size_t f = 0; f < seq.size(); ++f) {
            ++frames_run;
            uint64_t* one = fone_.data();
            uint64_t* zero = fzero_.data();
            load_frame(seq[f], one, zero);
            for (size_t i = 0; i < dffs_.size(); ++i) {
                NetId q = nl_.gate(dffs_[i]).out;
                std::memcpy(one + q * W, sone_.data() + i * W,
                            W * sizeof(uint64_t));
                std::memcpy(zero + q * W, szero_.data() + i * W,
                            W * sizeof(uint64_t));
            }
            // Stem fault on a PI / DFF output / undriven net applies
            // immediately; a comb-driven stem is overridden after its
            // driver evaluates.
            if (fault.is_stem()) {
                GateId d = nl_.driver(fault.net);
                if (d == Netlist::kNoGate ||
                    nl_.gate(d).type == GateType::Dff) {
                    storev<W>(one, zero, fault.net, inj);
                }
            }
            bool inject_pins = false; // evaluating the faulted gate now
            auto in = [&](size_t pin, NetId net) {
                if (inject_pins && pin == static_cast<size_t>(fault.pin)) {
                    return inj;
                }
                return loadv<W>(one, zero, net);
            };
            for (GateId gid : *topo_) {
                const Gate& g = nl_.gate(gid);
                if (g.type == GateType::Dff) continue;
                inject_pins = !fault.is_stem() && fault.gate == gid;
                VWide<W> out = eval_gate<W>(g, in);
                if (fault.is_stem() && fault.net == g.out) out = inj;
                storev<W>(one, zero, g.out, out);
            }
            const uint64_t* gone = good.one_at(f);
            const uint64_t* gzero = good.zero_at(f);
            for (size_t o = 0; o < nl_.outputs().size(); ++o) {
                NetId po = nl_.outputs()[o];
                // Definite detection: both binary and different.
                for (size_t w = 0; w < W; ++w) {
                    det.bits[w] |= (gone[po * W + w] & zero[po * W + w]) |
                                   (gzero[po * W + w] & one[po * W + w]);
                }
            }
            if (det.all()) break;
            if (stop_at_first && det.any()) break;
            for (size_t i = 0; i < dffs_.size(); ++i) {
                // A stem fault on the DFF output reasserts every frame
                // (handled above), so plain sampling is correct here.
                NetId d = nl_.gate(dffs_[i]).ins[0];
                std::memcpy(sone_.data() + i * W, one + d * W,
                            W * sizeof(uint64_t));
                std::memcpy(szero_.data() + i * W, zero + d * W,
                            W * sizeof(uint64_t));
            }
        }
        frames_counter.add(frames_run);
        evals_counter.add(frames_run * topo_->size());
        return det;
    }

    /// Event-driven faulty evaluation (SimMode::Event): only gates of the
    /// fault's sequential fanout cone whose inputs actually diverge from
    /// the cached good machine are re-evaluated. Everything outside the
    /// cone provably equals the good machine (the cone is the sequential
    /// closure of every net the fault can reach), and a cone gate with no
    /// diverged input reproduces its good value — skipping either cannot
    /// change the mask, so this path is exactly equivalent to full_detect.
    DetectMask event_detect(const Fault& fault, const Sequence& seq,
                            const GoodSim& good, bool stop_at_first,
                            FanoutCones& cones) {
        static obs::Counter& frames_counter =
            obs::counter("fault_sim.faulty_frames");
        static obs::Counter& evals_counter =
            obs::counter("fault_sim.gate_evals");
        static obs::Counter& skipped_counter =
            obs::counter("fault_sim.events_skipped");
        const FanoutCones::Cone& cone = cones.for_net(fault.net);
        const auto& fanout = cones.fanout();
        const size_t nets = nl_.num_nets();
        if (fone_.size() != nets * W) {
            fone_.assign(nets * W, 0);
            fzero_.assign(nets * W, 0);
        }
        if (div_mark_.size() != nets) {
            div_mark_.assign(nets, 0);
            dirty_mark_.assign(nl_.num_gates(), 0);
            frame_epoch_ = 0;
        }
        sone_.assign(dffs_.size() * W, 0);
        szero_.assign(dffs_.size() * W, 0);
        fstate_div_.assign(dffs_.size(), 0);
        const VWide<W> inj = inject_wide<W>(fault.sa1);
        const bool stem = fault.is_stem();
        const GateId branch_gate =
            !stem && nl_.gate(fault.gate).type != GateType::Dff
                ? fault.gate
                : Netlist::kNoGate;

        uint64_t* fone = fone_.data();
        uint64_t* fzero = fzero_.data();
        auto mark_readers = [&](NetId net) {
            // Every reader of a divergeable net is a cone member by
            // construction; DFF readers are marked harmlessly (the gate
            // loop never visits them).
            for (GateId r : fanout[net]) dirty_mark_[r] = frame_epoch_;
        };

        DetectMask det;
        det.words = W;
        size_t frames_run = 0;
        size_t evals = 0;
        for (size_t f = 0; f < seq.size(); ++f) {
            ++frames_run;
            ++frame_epoch_;
            const uint64_t* gone = good.one_at(f);
            const uint64_t* gzero = good.zero_at(f);
            auto good_of = [&](NetId net) {
                return loadv<W>(gone, gzero, net);
            };
            auto diverge = [&](NetId net, const VWide<W>& v) {
                storev<W>(fone, fzero, net, v);
                div_mark_[net] = frame_epoch_;
                mark_readers(net);
            };

            // Seed 1: faulty DFF state that differs from the good state.
            for (uint32_t i : cone.dffs) {
                if (fstate_div_[i] == 0) continue;
                NetId q = nl_.gate(dffs_[i]).out;
                VWide<W> fv = loadv<W>(sone_.data(), szero_.data(), i);
                if (fv != good_of(q)) diverge(q, fv);
            }
            // Seed 2: stem injection pins the net for the whole frame (the
            // driver override below reproduces it, so the seed is final).
            if (stem) {
                if (inj != good_of(fault.net)) {
                    diverge(fault.net, inj);
                } else {
                    div_mark_[fault.net] = 0; // heal a state-seeded mark
                }
            }
            // Seed 3: a branch fault's gate always re-evaluates.
            if (branch_gate != Netlist::kNoGate) {
                dirty_mark_[branch_gate] = frame_epoch_;
            }

            bool inject_pins = false; // evaluating the faulted gate now
            auto in = [&](size_t pin, NetId net) {
                if (inject_pins && pin == static_cast<size_t>(fault.pin)) {
                    return inj;
                }
                return div_mark_[net] == frame_epoch_
                           ? loadv<W>(fone, fzero, net)
                           : good_of(net);
            };
            const std::vector<GateId>& gates =
                cone.full ? *topo_ : cone.gates;
            for (GateId gid : gates) {
                if (dirty_mark_[gid] != frame_epoch_) continue;
                const Gate& g = nl_.gate(gid);
                if (g.type == GateType::Dff) continue;
                inject_pins = gid == branch_gate;
                VWide<W> out = eval_gate<W>(g, in);
                if (stem && fault.net == g.out) out = inj;
                ++evals;
                if (div_mark_[g.out] == frame_epoch_) {
                    // Stem-injected output: the seed already published the
                    // (identical) value and marked the readers.
                    continue;
                }
                if (out != good_of(g.out)) diverge(g.out, out);
            }

            // Detection can only happen at POs inside the cone, and only
            // where the faulty value actually diverged.
            for (uint32_t o : cone.pos) {
                NetId po = nl_.outputs()[o];
                if (div_mark_[po] != frame_epoch_) continue;
                for (size_t w = 0; w < W; ++w) {
                    det.bits[w] |= (gone[po * W + w] & fzero[po * W + w]) |
                                   (gzero[po * W + w] & fone[po * W + w]);
                }
            }
            if (det.all()) break;
            if (stop_at_first && det.any()) break;
            // Next faulty state: only cone DFFs can diverge; a DFF whose D
            // net matches the good machine implicitly tracks good state.
            for (uint32_t i : cone.dffs) {
                NetId d = nl_.gate(dffs_[i]).ins[0];
                if (div_mark_[d] == frame_epoch_) {
                    std::memcpy(sone_.data() + i * W, fone + d * W,
                                W * sizeof(uint64_t));
                    std::memcpy(szero_.data() + i * W, fzero + d * W,
                                W * sizeof(uint64_t));
                    fstate_div_[i] = 1;
                } else {
                    fstate_div_[i] = 0;
                }
            }
        }
        frames_counter.add(frames_run);
        evals_counter.add(evals);
        skipped_counter.add(frames_run * topo_->size() - evals);
        return det;
    }

    const Netlist& nl_;
    std::shared_ptr<const std::vector<GateId>> topo_;
    std::vector<GateId> dffs_; // owned copy: kernels outlive simulator moves
    // Scratch reused across calls.
    std::vector<uint64_t> fone_, fzero_;   // faulty net planes
    std::vector<uint64_t> sone_, szero_;   // DFF state planes
    std::vector<uint8_t> fstate_div_;      // per-DFF state-diverged flag
    std::vector<uint64_t> div_mark_;       // per-net diverged-this-frame
    std::vector<uint64_t> dirty_mark_;     // per-gate needs-eval-this-frame
    uint64_t frame_epoch_ = 0;
};

// ----------------------------------------------------------- FaultSimulator

FaultSimulator::FaultSimulator(const Netlist& nl)
    : FaultSimulator(nl, Config{}) {}

FaultSimulator::FaultSimulator(const Netlist& nl, Config cfg)
    : nl_(nl), topo_(nl.levelize_shared()), dffs_(nl.dffs()),
      words_(cfg.words == 0 ? 1 : cfg.words),
      mode_(resolve_sim_mode(cfg.mode)), cones_(std::move(cfg.cones)) {
    if (!is_supported_sim_words(words_)) {
        throw util::FactorError("unsupported sim width: " +
                                std::to_string(words_ * 64) + " bits");
    }
}

FaultSimulator::FaultSimulator(FaultSimulator&&) noexcept = default;
FaultSimulator::~FaultSimulator() = default;

FaultSimulator::KernelBase& FaultSimulator::kernel_for(size_t words) {
    const size_t slot = words == 8 ? 2 : words == 4 ? 1 : 0;
    auto& k = kernels_[slot];
    if (k == nullptr) {
        switch (slot) {
        case 2: k = std::make_unique<Kernel<8>>(nl_, topo_, dffs_); break;
        case 1: k = std::make_unique<Kernel<4>>(nl_, topo_, dffs_); break;
        default: k = std::make_unique<Kernel<1>>(nl_, topo_, dffs_); break;
        }
    }
    return *k;
}

namespace {

/// Effective lane words of a stimulus under a simulator width: never wider
/// than either, rounded down to an instantiated kernel width. A broadcast
/// (scalar) sequence therefore costs 64-bit work even on a 512-bit
/// simulator.
size_t effective_words(size_t sim_words, const Sequence& seq) {
    size_t seq_words = 1;
    for (const Frame& f : seq) seq_words = std::max(seq_words, f.words);
    size_t w = std::min(sim_words, seq_words);
    if (w >= 8) return 8;
    if (w >= 4) return 4;
    return 1;
}

} // namespace

std::shared_ptr<const GoodSim>
FaultSimulator::simulate_good_cached(const Sequence& seq) {
    return kernel_for(effective_words(words_, seq)).simulate_good(seq);
}

DetectMask FaultSimulator::wide_detect(const Fault& fault, const Sequence& seq,
                                       const GoodSim& good,
                                       bool stop_at_first) {
    FanoutCones* cones = nullptr;
    if (mode_ == SimMode::Event) {
        if (cones_ == nullptr) cones_ = std::make_shared<FanoutCones>(nl_);
        cones = cones_.get();
    }
    return kernel_for(good.words).faulty_detect(fault, seq, good,
                                                stop_at_first, cones);
}

DetectMask FaultSimulator::detect_mask(const Fault& fault, const Sequence& seq,
                                       const GoodSim& good) {
    return wide_detect(fault, seq, good, /*stop_at_first=*/false);
}

bool FaultSimulator::detects(const Fault& fault, const Sequence& seq,
                             const GoodSim& good) {
    return wide_detect(fault, seq, good, /*stop_at_first=*/true).any();
}

size_t FaultSimulator::run_and_drop(FaultList& list, const Sequence& seq) {
    auto good = simulate_good_cached(seq);
    size_t newly = 0;
    for (auto& entry : list.faults()) {
        if (entry.status != FaultStatus::Undetected) continue;
        // A drop only needs existence, not the full mask: stop at the
        // first detecting frame instead of re-simulating the whole
        // sequence for an already-caught fault.
        if (detects(entry.fault, seq, *good)) {
            entry.status = FaultStatus::Detected;
            ++newly;
        }
    }
    static obs::Counter& calls = obs::counter("fault_sim.run_and_drop");
    static obs::Counter& dropped = obs::counter("fault_sim.faults_dropped");
    calls.add(1);
    dropped.add(newly);
    return newly;
}

std::vector<std::vector<V64>>
FaultSimulator::simulate_good(const Sequence& seq) {
    auto good = simulate_good_cached(seq);
    std::vector<std::vector<V64>> po_per_frame;
    po_per_frame.reserve(seq.size());
    for (size_t f = 0; f < seq.size(); ++f) {
        std::vector<V64> pos;
        pos.reserve(nl_.outputs().size());
        for (NetId po : nl_.outputs()) pos.push_back(good->word0(f, po));
        po_per_frame.push_back(std::move(pos));
    }
    return po_per_frame;
}

// ------------------------------------------------- legacy 64-bit reference

void FaultSimulator::eval_frame(std::vector<V64>& value, const Frame& frame,
                                const std::vector<V64>& state,
                                const Fault* fault) const {
    // Reset all nets to X; undriven nets stay X all frame.
    std::fill(value.begin(), value.end(), V64::all_x());

    const auto& inputs = nl_.inputs();
    for (size_t i = 0; i < inputs.size(); ++i) {
        // Lane word 0 of input i (wide frames interleave words PI-major).
        const size_t idx = i * frame.words;
        value[inputs[i]] =
            idx < frame.pi.size() ? frame.pi[idx] : V64::all_x();
    }
    for (size_t i = 0; i < dffs_.size(); ++i) {
        value[nl_.gate(dffs_[i]).out] = state[i];
    }

    // Stem fault on a PI / DFF output / undriven net applies immediately.
    if (fault != nullptr && fault->is_stem() &&
        nl_.driver(fault->net) == Netlist::kNoGate) {
        value[fault->net] = inject(value[fault->net], fault->sa1);
    }
    if (fault != nullptr && fault->is_stem()) {
        synth::GateId d = nl_.driver(fault->net);
        if (d != Netlist::kNoGate && nl_.gate(d).type == GateType::Dff) {
            value[fault->net] = inject(value[fault->net], fault->sa1);
        }
    }

    auto in_val = [&](GateId g, size_t pin, NetId net) -> V64 {
        V64 v = value[net];
        if (fault != nullptr && !fault->is_stem() && fault->gate == g &&
            fault->pin == static_cast<int>(pin)) {
            return inject(v, fault->sa1);
        }
        return v;
    };

    for (GateId gid : *topo_) {
        const Gate& g = nl_.gate(gid);
        V64 out;
        switch (g.type) {
        case GateType::Const0: out = V64::all0(); break;
        case GateType::Const1: out = V64::all1(); break;
        case GateType::Buf: out = in_val(gid, 0, g.ins[0]); break;
        case GateType::Not: out = v_not(in_val(gid, 0, g.ins[0])); break;
        case GateType::And:
        case GateType::Nand: {
            out = V64::all1();
            for (size_t i = 0; i < g.ins.size(); ++i) {
                out = v_and(out, in_val(gid, i, g.ins[i]));
            }
            if (g.type == GateType::Nand) out = v_not(out);
            break;
        }
        case GateType::Or:
        case GateType::Nor: {
            out = V64::all0();
            for (size_t i = 0; i < g.ins.size(); ++i) {
                out = v_or(out, in_val(gid, i, g.ins[i]));
            }
            if (g.type == GateType::Nor) out = v_not(out);
            break;
        }
        case GateType::Xor:
            out = v_xor(in_val(gid, 0, g.ins[0]), in_val(gid, 1, g.ins[1]));
            break;
        case GateType::Xnor:
            out = v_not(
                v_xor(in_val(gid, 0, g.ins[0]), in_val(gid, 1, g.ins[1])));
            break;
        case GateType::Mux:
            out = v_mux(in_val(gid, 0, g.ins[0]), in_val(gid, 1, g.ins[1]),
                        in_val(gid, 2, g.ins[2]));
            break;
        case GateType::Dff:
            continue; // state handled outside
        }
        if (fault != nullptr && fault->is_stem() && fault->net == g.out) {
            out = inject(out, fault->sa1);
        }
        value[g.out] = out;
    }
}

uint64_t FaultSimulator::faulty_detect(
    const Fault& fault, const Sequence& seq,
    const std::vector<std::vector<V64>>& good_po, bool stop_at_first) {
    static obs::Counter& frames_counter =
        obs::counter("fault_sim.faulty_frames");
    value_.assign(nl_.num_nets(), V64::all_x());
    state_.assign(dffs_.size(), V64::all_x());
    uint64_t detected = 0;
    size_t frames_run = 0;

    for (size_t f = 0; f < seq.size(); ++f) {
        ++frames_run;
        eval_frame(value_, seq[f], state_, &fault);
        const auto& good = good_po[f];
        for (size_t o = 0; o < nl_.outputs().size(); ++o) {
            V64 fv = value_[nl_.outputs()[o]];
            V64 gv = good[o];
            // Definite detection: both binary and different.
            detected |= (gv.one & fv.zero) | (gv.zero & fv.one);
        }
        if (detected == ~0ull) break;
        if (stop_at_first && detected != 0) break;
        for (size_t i = 0; i < dffs_.size(); ++i) {
            const Gate& g = nl_.gate(dffs_[i]);
            V64 next = value_[g.ins[0]];
            // A stem fault on the DFF output reasserts every frame (handled
            // in eval_frame), so plain sampling is correct here.
            state_[i] = next;
        }
    }
    frames_counter.add(frames_run);
    static obs::Counter& evals_counter = obs::counter("fault_sim.gate_evals");
    evals_counter.add(frames_run * topo_->size());
    return detected;
}

uint64_t FaultSimulator::detect_mask(
    const Fault& fault, const Sequence& seq,
    const std::vector<std::vector<V64>>& good_po) {
    return faulty_detect(fault, seq, good_po, /*stop_at_first=*/false);
}

bool FaultSimulator::detects(const Fault& fault, const Sequence& seq,
                             const std::vector<std::vector<V64>>& good_po) {
    return faulty_detect(fault, seq, good_po, /*stop_at_first=*/true) != 0;
}

Sequence FaultSimulator::random_sequence(std::mt19937_64& rng,
                                         size_t frames) const {
    Sequence seq;
    seq.reserve(frames);
    for (size_t f = 0; f < frames; ++f) {
        Frame frame;
        frame.words = words_;
        frame.pi.reserve(nl_.inputs().size() * words_);
        for (size_t i = 0; i < nl_.inputs().size(); ++i) {
            for (size_t w = 0; w < words_; ++w) {
                uint64_t r = rng();
                frame.pi.push_back(V64{r, ~r});
            }
        }
        seq.push_back(std::move(frame));
    }
    return seq;
}

} // namespace factor::atpg
