#include "atpg/vectors.hpp"

#include <istream>
#include <ostream>
#include <sstream>

namespace factor::atpg {

void write_vectors(std::ostream& os, const synth::Netlist& nl,
                   const std::vector<ScalarSequence>& tests) {
    os << "# factor test vectors\n";
    os << "inputs " << nl.inputs().size() << "\n";
    for (size_t i = 0; i < nl.inputs().size(); ++i) {
        os << "pin " << i << " " << nl.net_name(nl.inputs()[i]) << "\n";
    }
    for (const auto& t : tests) {
        os << "test\n";
        for (const auto& frame : t.frames) {
            for (V5 v : frame) {
                switch (v) {
                case V5::Zero: os << '0'; break;
                case V5::One: os << '1'; break;
                default: os << 'X'; break;
                }
            }
            os << "\n";
        }
        os << "end\n";
    }
}

std::string vectors_to_string(const synth::Netlist& nl,
                              const std::vector<ScalarSequence>& tests) {
    std::ostringstream os;
    write_vectors(os, nl, tests);
    return os.str();
}

VectorParseResult read_vectors(std::istream& is) {
    VectorParseResult r;
    std::string line;
    bool in_test = false;
    ScalarSequence current;
    size_t line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#') continue;
        std::istringstream ls(line);
        std::string word;
        ls >> word;
        if (word == "inputs") {
            ls >> r.num_inputs;
        } else if (word == "pin") {
            continue; // annotation only
        } else if (word == "test") {
            if (in_test) {
                r.error = "line " + std::to_string(line_no) +
                          ": 'test' inside a test";
                return r;
            }
            in_test = true;
            current = ScalarSequence{};
        } else if (word == "end") {
            if (!in_test) {
                r.error = "line " + std::to_string(line_no) +
                          ": 'end' outside a test";
                return r;
            }
            in_test = false;
            r.tests.push_back(std::move(current));
        } else if (in_test) {
            std::vector<V5> frame;
            frame.reserve(word.size());
            for (char c : word) {
                switch (c) {
                case '0': frame.push_back(V5::Zero); break;
                case '1': frame.push_back(V5::One); break;
                case 'X':
                case 'x': frame.push_back(V5::X); break;
                default:
                    r.error = "line " + std::to_string(line_no) +
                              ": bad value character '" + c + "'";
                    return r;
                }
            }
            if (r.num_inputs != 0 && frame.size() != r.num_inputs) {
                r.error = "line " + std::to_string(line_no) + ": frame has " +
                          std::to_string(frame.size()) + " values, expected " +
                          std::to_string(r.num_inputs);
                return r;
            }
            current.frames.push_back(std::move(frame));
        } else {
            r.error = "line " + std::to_string(line_no) +
                      ": unexpected content outside a test";
            return r;
        }
    }
    if (in_test) {
        r.error = "unterminated test at end of file";
        return r;
    }
    r.ok = true;
    return r;
}

VectorParseResult read_vectors_from_string(const std::string& s) {
    std::istringstream is(s);
    return read_vectors(is);
}

} // namespace factor::atpg
