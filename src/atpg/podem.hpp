// Deterministic test generation: PODEM over a time-frame-expanded circuit.
//
// The sequential netlist is unrolled k frames deep: every net gets one copy
// per frame, DFF outputs in frame f read the DFF data input of frame f-1,
// and frame-0 flip-flop outputs are unknown (unknown initial state). The
// target fault is present in every frame. PODEM searches over primary-input
// assignments (per frame) only, with the classic objective / backtrace /
// imply loop in the five-valued D-calculus; a test succeeds when a D or D'
// reaches a primary output of any frame.
//
// The search is budgeted by a backtrack limit; exceeding it aborts the
// fault (counted against ATPG efficiency, like a commercial tool's aborted
// faults). Untestability is proven only for purely combinational netlists,
// where exhausting the decision space at one frame is a redundancy proof.
#pragma once

#include "atpg/fault.hpp"
#include "atpg/fault_sim.hpp"
#include "atpg/logic.hpp"
#include "synth/netlist.hpp"

#include <memory>

#include <cstdint>
#include <vector>

namespace factor::atpg {

enum class PodemOutcome {
    Success,    // test found
    NoTest,     // decision space exhausted at this depth (proof only if
                // the circuit is combinational)
    Abort,      // backtrack budget exhausted
};

struct PodemResult {
    PodemOutcome outcome = PodemOutcome::NoTest;
    ScalarSequence test;       // valid when outcome == Success
    uint32_t backtracks = 0;
};

struct PodemOptions {
    uint32_t max_backtracks = 1000;
};

class TimeFramePodem {
  public:
    TimeFramePodem(const synth::Netlist& nl, PodemOptions options);

    /// Attempt to generate a test for `fault` using a `frames`-deep unroll.
    [[nodiscard]] PodemResult generate(const Fault& fault, size_t frames);

  private:
    struct Decision {
        size_t frame;
        size_t pi; // index into Netlist::inputs()
        bool value;
        bool flipped = false;
    };

    // --- simulation over the unrolled circuit -------------------------------
    void simulate(const Fault& fault, size_t frames);
    [[nodiscard]] V5 input_value(const Fault& fault, size_t frame,
                                 synth::GateId g, size_t pin) const;
    [[nodiscard]] V5& at(size_t frame, synth::NetId n) {
        return values_[frame * nl_.num_nets() + n];
    }
    [[nodiscard]] V5 at(size_t frame, synth::NetId n) const {
        return values_[frame * nl_.num_nets() + n];
    }

    /// True if any PO of any frame carries D/D'.
    [[nodiscard]] bool test_found(size_t frames) const;

    // --- PODEM machinery -----------------------------------------------------
    struct Objective {
        bool valid = false;
        size_t frame = 0;
        synth::NetId net = synth::kNoNet;
        bool value = false;
    };
    /// Collect candidate objectives in preference order: fault activation
    /// (one candidate per frame whose site is still X) or, once activated,
    /// one candidate per D-frontier gate. Several candidates matter because
    /// a candidate can be unjustifiable (e.g. it leads only into the
    /// unknown initial state) while a later frame works fine.
    void collect_objectives(const Fault& fault, size_t frames,
                            std::vector<Objective>& out) const;
    /// Map an objective to an unassigned PI; invalid if no path exists.
    [[nodiscard]] Objective backtrace(Objective obj) const;

    [[nodiscard]] bool pi_assigned(size_t frame, size_t pi) const {
        return assigned_[frame * nl_.inputs().size() + pi];
    }

    const synth::Netlist& nl_;
    PodemOptions options_;
    std::shared_ptr<const std::vector<synth::GateId>> topo_;
    std::vector<synth::GateId> dffs_;
    std::vector<V5> values_;      // frames * num_nets
    std::vector<V5> pi_values_;   // frames * num_pis (assigned values)
    std::vector<char> assigned_;  // frames * num_pis
    std::vector<size_t> pi_index_of_net_; // net -> PI index or SIZE_MAX
};

} // namespace factor::atpg
