// Logic value encodings used by the test tools.
//
//  * V64 — three-valued (0/1/X) values for 64 test sequences in parallel
//    (parallel-pattern simulation). Encoded as two masks with the invariant
//    one & zero == 0; a bit set in neither mask is X.
//  * VWide<W> — the same encoding widened to W 64-bit lane words (64·W
//    sequences in parallel). The one/zero planes are plain word arrays and
//    every operator is a branch-free word loop, so the compiler vectorizes
//    them to whatever the target ISA offers (AVX2/AVX-512/NEON).
//  * V5  — the scalar five-valued D-calculus {0,1,X,D,DB} used by PODEM.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace factor::atpg {

struct V64 {
    uint64_t one = 0;
    uint64_t zero = 0;

    [[nodiscard]] static V64 all_x() { return {0, 0}; }
    [[nodiscard]] static V64 all0() { return {0, ~0ull}; }
    [[nodiscard]] static V64 all1() { return {~0ull, 0}; }

    /// Patterns where the value is binary (not X).
    [[nodiscard]] uint64_t known() const { return one | zero; }

    [[nodiscard]] bool operator==(const V64&) const = default;
};

[[nodiscard]] inline V64 v_not(V64 a) { return {a.zero, a.one}; }
[[nodiscard]] inline V64 v_and(V64 a, V64 b) {
    return {a.one & b.one, a.zero | b.zero};
}
[[nodiscard]] inline V64 v_or(V64 a, V64 b) {
    return {a.one | b.one, a.zero & b.zero};
}
[[nodiscard]] inline V64 v_xor(V64 a, V64 b) {
    return {(a.one & b.zero) | (a.zero & b.one),
            (a.one & b.one) | (a.zero & b.zero)};
}
/// out = sel ? b : a, with the "both sides agree" term keeping the output
/// binary under an unknown select.
[[nodiscard]] inline V64 v_mux(V64 sel, V64 a, V64 b) {
    return {(sel.one & b.one) | (sel.zero & a.one) | (a.one & b.one),
            (sel.one & b.zero) | (sel.zero & a.zero) | (a.zero & b.zero)};
}

// ------------------------------------------------------------ wide values

/// Lane words of the widest kernel the simulator instantiates (512 bits).
inline constexpr size_t kMaxSimWords = 8;

/// The kernel is compiled for 64-, 256- and 512-bit pattern blocks.
[[nodiscard]] constexpr bool is_supported_sim_words(size_t words) {
    return words == 1 || words == 4 || words == 8;
}

/// Widest kernel this build's target ISA profits from: 512-bit when the
/// compiler may emit AVX-512, 256-bit for AVX2/NEON, else plain 64-bit.
/// This is a property of the *build* (compile flags), not the machine, so
/// a given binary always picks the same default — determinism holds.
[[nodiscard]] constexpr size_t default_sim_words() {
#if defined(__AVX512F__)
    return 8;
#elif defined(__AVX2__) || defined(__ARM_NEON)
    return 4;
#else
    return 1;
#endif
}

/// Three-valued values for 64·W sequences: word w carries sequences
/// [64w, 64w+63] with the same one/zero encoding as V64.
template <size_t W>
struct VWide {
    std::array<uint64_t, W> one{};
    std::array<uint64_t, W> zero{};

    [[nodiscard]] static VWide all_x() { return {}; }
    [[nodiscard]] static VWide all0() {
        VWide v;
        v.zero.fill(~0ull);
        return v;
    }
    [[nodiscard]] static VWide all1() {
        VWide v;
        v.one.fill(~0ull);
        return v;
    }

    [[nodiscard]] V64 word(size_t w) const { return {one[w], zero[w]}; }

    [[nodiscard]] bool operator==(const VWide&) const = default;
};

template <size_t W>
[[nodiscard]] inline VWide<W> v_not(const VWide<W>& a) {
    VWide<W> r;
    for (size_t w = 0; w < W; ++w) {
        r.one[w] = a.zero[w];
        r.zero[w] = a.one[w];
    }
    return r;
}
template <size_t W>
[[nodiscard]] inline VWide<W> v_and(const VWide<W>& a, const VWide<W>& b) {
    VWide<W> r;
    for (size_t w = 0; w < W; ++w) {
        r.one[w] = a.one[w] & b.one[w];
        r.zero[w] = a.zero[w] | b.zero[w];
    }
    return r;
}
template <size_t W>
[[nodiscard]] inline VWide<W> v_or(const VWide<W>& a, const VWide<W>& b) {
    VWide<W> r;
    for (size_t w = 0; w < W; ++w) {
        r.one[w] = a.one[w] | b.one[w];
        r.zero[w] = a.zero[w] & b.zero[w];
    }
    return r;
}
template <size_t W>
[[nodiscard]] inline VWide<W> v_xor(const VWide<W>& a, const VWide<W>& b) {
    VWide<W> r;
    for (size_t w = 0; w < W; ++w) {
        r.one[w] = (a.one[w] & b.zero[w]) | (a.zero[w] & b.one[w]);
        r.zero[w] = (a.one[w] & b.one[w]) | (a.zero[w] & b.zero[w]);
    }
    return r;
}
/// out = sel ? b : a, with the "both sides agree" term keeping the output
/// binary under an unknown select (same truth table as the V64 v_mux).
template <size_t W>
[[nodiscard]] inline VWide<W> v_mux(const VWide<W>& sel, const VWide<W>& a,
                                    const VWide<W>& b) {
    VWide<W> r;
    for (size_t w = 0; w < W; ++w) {
        r.one[w] = (sel.one[w] & b.one[w]) | (sel.zero[w] & a.one[w]) |
                   (a.one[w] & b.one[w]);
        r.zero[w] = (sel.one[w] & b.zero[w]) | (sel.zero[w] & a.zero[w]) |
                    (a.zero[w] & b.zero[w]);
    }
    return r;
}

enum class V5 : uint8_t { Zero, One, X, D, DB };

/// Good-machine component of a V5 value (0/1/X as V5::Zero/One/X).
[[nodiscard]] constexpr V5 good_of(V5 v) {
    switch (v) {
    case V5::D: return V5::One;
    case V5::DB: return V5::Zero;
    default: return v;
    }
}

/// Faulty-machine component of a V5 value.
[[nodiscard]] constexpr V5 faulty_of(V5 v) {
    switch (v) {
    case V5::D: return V5::Zero;
    case V5::DB: return V5::One;
    default: return v;
    }
}

[[nodiscard]] constexpr V5 combine(V5 good, V5 faulty) {
    if (good == V5::X || faulty == V5::X) return V5::X;
    if (good == faulty) return good;
    return good == V5::One ? V5::D : V5::DB;
}

[[nodiscard]] constexpr V5 v5_not(V5 a) {
    switch (a) {
    case V5::Zero: return V5::One;
    case V5::One: return V5::Zero;
    case V5::X: return V5::X;
    case V5::D: return V5::DB;
    case V5::DB: return V5::D;
    }
    return V5::X;
}

[[nodiscard]] constexpr V5 v5_binary(bool one) { return one ? V5::One : V5::Zero; }

[[nodiscard]] constexpr V5 v5_and(V5 a, V5 b) {
    if (a == V5::Zero || b == V5::Zero) return V5::Zero;
    if (a == V5::One) return b;
    if (b == V5::One) return a;
    if (a == b) return a;                // D&D=D, DB&DB=DB, X&X=X
    return (a == V5::X || b == V5::X) ? V5::X : V5::Zero; // D & DB = 0
}

[[nodiscard]] constexpr V5 v5_or(V5 a, V5 b) {
    return v5_not(v5_and(v5_not(a), v5_not(b)));
}

[[nodiscard]] constexpr V5 v5_xor(V5 a, V5 b) {
    if (a == V5::X || b == V5::X) return V5::X;
    // Evaluate good/faulty machines separately; exact for all D cases.
    bool good = (good_of(a) == V5::One) != (good_of(b) == V5::One);
    bool faulty = (faulty_of(a) == V5::One) != (faulty_of(b) == V5::One);
    if (good == faulty) return v5_binary(good);
    return good ? V5::D : V5::DB;
}

[[nodiscard]] constexpr V5 v5_mux(V5 sel, V5 a, V5 b) {
    if (sel == V5::Zero) return a;
    if (sel == V5::One) return b;
    if (a == b) return a;
    if (sel == V5::X) return V5::X;
    // sel is D or DB: good and faulty machines pick different data inputs.
    V5 good_sel_val = good_of(sel) == V5::One ? good_of(b) : good_of(a);
    V5 faulty_sel_val = faulty_of(sel) == V5::One ? faulty_of(b) : faulty_of(a);
    if (good_sel_val == V5::X || faulty_sel_val == V5::X) return V5::X;
    if (good_sel_val == faulty_sel_val) return good_sel_val;
    return good_sel_val == V5::One ? V5::D : V5::DB;
}

[[nodiscard]] constexpr const char* to_string(V5 v) {
    switch (v) {
    case V5::Zero: return "0";
    case V5::One: return "1";
    case V5::X: return "X";
    case V5::D: return "D";
    case V5::DB: return "D'";
    }
    return "?";
}

} // namespace factor::atpg
