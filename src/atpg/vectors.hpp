// Test-vector serialization: a small line-oriented text format for the
// sequences the ATPG engine produces, so patterns survive a run and can be
// replayed (or shipped to a tester flow).
//
// Format:
//   # comment
//   inputs <n>                      -- pin count, must match the netlist
//   pin <index> <name>              -- optional name annotations
//   test                            -- starts a sequence
//   <frame>                         -- one line per frame: chars 0 1 X
//   end
//
// Values are ordered like Netlist::inputs().
#pragma once

#include "atpg/fault_sim.hpp"
#include "synth/netlist.hpp"

#include <iosfwd>
#include <string>
#include <vector>

namespace factor::atpg {

/// Serialize sequences for `nl` (names included for readability).
void write_vectors(std::ostream& os, const synth::Netlist& nl,
                   const std::vector<ScalarSequence>& tests);

/// Convenience: to a string.
[[nodiscard]] std::string vectors_to_string(
    const synth::Netlist& nl, const std::vector<ScalarSequence>& tests);

struct VectorParseResult {
    bool ok = false;
    std::string error;
    size_t num_inputs = 0;
    std::vector<ScalarSequence> tests;
};

/// Parse a vector file; checks frame widths against the declared count.
[[nodiscard]] VectorParseResult read_vectors(std::istream& is);
[[nodiscard]] VectorParseResult read_vectors_from_string(const std::string& s);

} // namespace factor::atpg
