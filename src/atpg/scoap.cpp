#include "atpg/scoap.hpp"

#include <algorithm>
#include <cmath>

namespace factor::atpg {

using synth::Gate;
using synth::GateId;
using synth::GateType;
using synth::Netlist;
using synth::NetId;

namespace {

constexpr double kInf = ScoapMeasures::kUnreachable;

double add(double a, double b) {
    double s = a + b;
    return s >= kInf ? kInf : s;
}

} // namespace

double ScoapMeasures::difficulty(NetId n) const {
    return std::max({cc0[n], cc1[n], co[n]});
}

std::vector<ScoapMeasures::HardNet>
ScoapMeasures::hardest(const Netlist& nl, size_t k) const {
    std::vector<HardNet> all;
    all.reserve(nl.num_nets());
    for (NetId n = 0; n < nl.num_nets(); ++n) {
        // Skip constants; their difficulty is definitionally infinite on
        // one side and that is not actionable.
        GateId d = nl.driver(n);
        if (d != Netlist::kNoGate && synth::is_const(nl.gate(d).type)) {
            continue;
        }
        all.push_back(HardNet{n, difficulty(n)});
    }
    std::sort(all.begin(), all.end(), [](const HardNet& a, const HardNet& b) {
        if (a.score != b.score) return a.score > b.score;
        return a.net < b.net;
    });
    if (all.size() > k) all.resize(k);
    return all;
}

ScoapMeasures compute_scoap(const Netlist& nl, const ScoapOptions& options) {
    ScoapMeasures m;
    m.cc0.assign(nl.num_nets(), kInf);
    m.cc1.assign(nl.num_nets(), kInf);
    m.co.assign(nl.num_nets(), kInf);

    for (NetId n : nl.inputs()) {
        m.cc0[n] = 1.0;
        m.cc1[n] = 1.0;
    }

    // --- controllability: relax to fixpoint (loops through DFFs) ------------
    for (unsigned iter = 0; iter < options.max_iterations; ++iter) {
        bool changed = false;
        auto update = [&](NetId n, double c0, double c1) {
            if (c0 < m.cc0[n]) {
                m.cc0[n] = c0;
                changed = true;
            }
            if (c1 < m.cc1[n]) {
                m.cc1[n] = c1;
                changed = true;
            }
        };
        for (const Gate& g : nl.gates()) {
            const auto& ins = g.ins;
            double c0 = kInf;
            double c1 = kInf;
            switch (g.type) {
            case GateType::Const0:
                c0 = 0.0;
                break;
            case GateType::Const1:
                c1 = 0.0;
                break;
            case GateType::Buf:
                c0 = add(m.cc0[ins[0]], 1);
                c1 = add(m.cc1[ins[0]], 1);
                break;
            case GateType::Not:
                c0 = add(m.cc1[ins[0]], 1);
                c1 = add(m.cc0[ins[0]], 1);
                break;
            case GateType::And:
            case GateType::Nand: {
                double all1 = 1.0;
                double any0 = kInf;
                for (NetId in : ins) {
                    all1 = add(all1, m.cc1[in]);
                    any0 = std::min(any0, m.cc0[in]);
                }
                any0 = add(any0, 1);
                if (g.type == GateType::And) {
                    c1 = all1;
                    c0 = any0;
                } else {
                    c0 = all1;
                    c1 = any0;
                }
                break;
            }
            case GateType::Or:
            case GateType::Nor: {
                double all0 = 1.0;
                double any1 = kInf;
                for (NetId in : ins) {
                    all0 = add(all0, m.cc0[in]);
                    any1 = std::min(any1, m.cc1[in]);
                }
                any1 = add(any1, 1);
                if (g.type == GateType::Or) {
                    c0 = all0;
                    c1 = any1;
                } else {
                    c1 = all0;
                    c0 = any1;
                }
                break;
            }
            case GateType::Xor:
            case GateType::Xnor: {
                double a0 = m.cc0[ins[0]], a1 = m.cc1[ins[0]];
                double b0 = m.cc0[ins[1]], b1 = m.cc1[ins[1]];
                double same = std::min(add(a0, b0), add(a1, b1));
                double diff = std::min(add(a0, b1), add(a1, b0));
                if (g.type == GateType::Xor) {
                    c0 = add(same, 1);
                    c1 = add(diff, 1);
                } else {
                    c1 = add(same, 1);
                    c0 = add(diff, 1);
                }
                break;
            }
            case GateType::Mux: {
                double s0 = m.cc0[ins[0]], s1 = m.cc1[ins[0]];
                double a0 = m.cc0[ins[1]], a1 = m.cc1[ins[1]];
                double b0 = m.cc0[ins[2]], b1 = m.cc1[ins[2]];
                c0 = add(std::min(add(s0, a0), add(s1, b0)), 1);
                c1 = add(std::min(add(s0, a1), add(s1, b1)), 1);
                break;
            }
            case GateType::Dff:
                c0 = add(m.cc0[ins[0]], options.dff_penalty);
                c1 = add(m.cc1[ins[0]], options.dff_penalty);
                break;
            }
            update(g.out, c0, c1);
        }
        if (!changed) break;
    }

    // --- observability: relax backwards from the primary outputs ------------
    for (NetId n : nl.outputs()) m.co[n] = 0.0;
    for (unsigned iter = 0; iter < options.max_iterations; ++iter) {
        bool changed = false;
        auto update = [&](NetId n, double v) {
            if (v < m.co[n]) {
                m.co[n] = v;
                changed = true;
            }
        };
        for (const Gate& g : nl.gates()) {
            double out_co = m.co[g.out];
            if (out_co >= kInf) continue;
            const auto& ins = g.ins;
            switch (g.type) {
            case GateType::Const0:
            case GateType::Const1:
                break;
            case GateType::Buf:
            case GateType::Not:
                update(ins[0], add(out_co, 1));
                break;
            case GateType::And:
            case GateType::Nand:
            case GateType::Or:
            case GateType::Nor: {
                const bool and_like =
                    g.type == GateType::And || g.type == GateType::Nand;
                for (size_t i = 0; i < ins.size(); ++i) {
                    double side = 1.0;
                    for (size_t j = 0; j < ins.size(); ++j) {
                        if (j == i) continue;
                        side = add(side, and_like ? m.cc1[ins[j]]
                                                  : m.cc0[ins[j]]);
                    }
                    update(ins[i], add(out_co, side));
                }
                break;
            }
            case GateType::Xor:
            case GateType::Xnor: {
                for (size_t i = 0; i < 2; ++i) {
                    NetId other = ins[1 - i];
                    double side =
                        std::min(m.cc0[other], m.cc1[other]);
                    update(ins[i], add(out_co, add(side, 1)));
                }
                break;
            }
            case GateType::Mux: {
                // Data inputs: select must route them through.
                update(ins[1], add(out_co, add(m.cc0[ins[0]], 1)));
                update(ins[2], add(out_co, add(m.cc1[ins[0]], 1)));
                // Select: the two data inputs must differ.
                double differ = std::min(add(m.cc0[ins[1]], m.cc1[ins[2]]),
                                         add(m.cc1[ins[1]], m.cc0[ins[2]]));
                update(ins[0], add(out_co, add(differ, 1)));
                break;
            }
            case GateType::Dff:
                update(ins[0], add(out_co, options.dff_penalty));
                break;
            }
        }
        if (!changed) break;
    }
    return m;
}

} // namespace factor::atpg
