// Hierarchical ATPG on a processor: FACTOR-ise arm2z for every evaluation
// MUT, comparing the conventional (flat) and compositional flows — a
// condensed version of what the bench_table* binaries measure.
//
// Build & run:  ./examples/hierarchical_atpg_flow [budget_seconds]
#include "atpg/engine.hpp"
#include "core/extractor.hpp"
#include "core/transform.hpp"
#include "designs/designs.hpp"
#include "elab/elaborator.hpp"
#include "rtl/parser.hpp"

#include <cstdio>
#include <cstdlib>

using namespace factor;

int main(int argc, char** argv) {
    double budget = argc > 1 ? std::atof(argv[1]) : 5.0;

    rtl::Design design;
    util::DiagEngine diags;
    rtl::Parser::parse_source(designs::arm2z_source(), "arm2z.v", design,
                              diags);
    elab::Elaborator elaborator(design, diags);
    auto elaborated = elaborator.elaborate(designs::kArm2zTop);
    if (!elaborated) {
        std::fprintf(stderr, "%s", diags.dump().c_str());
        return 1;
    }
    core::TransformBuilder builder(*elaborated, diags);

    std::printf("%-16s %-10s %10s %10s %10s %10s\n", "MUT", "mode",
                "virtual", "PIs", "cov%", "tg(s)");
    for (auto mode : {core::Mode::Flat, core::Mode::Composed}) {
        core::ExtractionSession session(*elaborated, mode, diags);
        for (const auto& mut : designs::arm2z_muts()) {
            const auto* node =
                elaborated->find_by_path(mut.instance_path);
            core::TransformOptions topts;
            topts.pier_allowlist = designs::arm2z_piers();
            auto tm = builder.build(*node, session, topts);

            atpg::EngineOptions opts;
            opts.scope_prefix = tm.mut_prefix;
            opts.time_budget_s = budget;
            auto r = atpg::run_atpg(tm.netlist, opts);
            std::printf("%-16s %-10s %10zu %10zu %10.2f %10.2f\n",
                        mut.display_name.c_str(),
                        mode == core::Mode::Flat ? "flat" : "composed",
                        tm.surrounding_gates, tm.num_pis, r.coverage_percent,
                        r.test_gen_seconds);
        }
    }
    return 0;
}
