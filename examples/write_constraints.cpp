// Constraint writer demo: extract the functional constraints of a MUT and
// emit them as synthesizable Verilog (the paper's FACTOR output), then
// prove the text round-trips through this library's own front end.
//
// Build & run:  ./examples/write_constraints [output.v]
#include "core/extractor.hpp"
#include "core/writer.hpp"
#include "designs/designs.hpp"
#include "elab/elaborator.hpp"
#include "rtl/parser.hpp"

#include <cstdio>
#include <fstream>

using namespace factor;

int main(int argc, char** argv) {
    rtl::Design design;
    util::DiagEngine diags;
    rtl::Parser::parse_source(designs::mini_soc_source(), "mini_soc.v",
                              design, diags);
    elab::Elaborator elaborator(design, diags);
    auto elaborated = elaborator.elaborate(designs::kMiniSocTop);
    if (!elaborated) {
        std::fprintf(stderr, "%s", diags.dump().c_str());
        return 1;
    }

    const auto* mut = elaborated->find_by_path("mini_soc.alu");
    core::ExtractionSession session(*elaborated, core::Mode::Composed, diags);
    auto cs = session.extract(*mut);

    core::ConstraintWriter writer(*elaborated, cs);
    std::string verilog = writer.write_verilog();
    std::printf("// constraints for MUT %s (top: %s)\n%s",
                mut->path().c_str(), writer.top_name().c_str(),
                verilog.c_str());

    if (argc > 1) {
        std::ofstream out(argv[1]);
        out << verilog;
        std::printf("// written to %s\n", argv[1]);
    }

    // Round-trip check: the emitted constraints parse and elaborate.
    rtl::Design reparsed;
    util::DiagEngine rediags;
    rtl::Parser::parse_source(verilog, "<emitted>", reparsed, rediags);
    elab::Elaborator re_el(reparsed, rediags);
    auto re = re_el.elaborate(writer.top_name());
    if (!re || rediags.has_errors()) {
        std::fprintf(stderr, "round-trip FAILED:\n%s", rediags.dump().c_str());
        return 1;
    }
    std::printf("// round-trip OK: %zu instances after re-elaboration\n",
                re->instance_count());
    return 0;
}
