// Testability analysis without running any ATPG (paper §4.2): extraction
// alone surfaces hard-coded constraints, unreachable signals and dead
// observation paths, with the affected signal and a trace.
//
// Build & run:  ./examples/testability_report
#include "analysis/def_use.hpp"
#include "core/extractor.hpp"
#include "core/testability.hpp"
#include "designs/designs.hpp"
#include "elab/elaborator.hpp"
#include "rtl/parser.hpp"

#include <cstdio>

using namespace factor;

int main() {
    rtl::Design design;
    util::DiagEngine diags;
    rtl::Parser::parse_source(designs::arm2z_source(), "arm2z.v", design,
                              diags);
    elab::Elaborator elaborator(design, diags);
    auto elaborated = elaborator.elaborate(designs::kArm2zTop);
    if (!elaborated) {
        std::fprintf(stderr, "%s", diags.dump().c_str());
        return 1;
    }

    // Per-module static analysis: signals with empty chains.
    std::printf("== module-level def-use screening ==\n");
    for (const auto* node : elaborated->all_nodes()) {
        analysis::ModuleAnalysis an(*node->module);
        for (const auto& s : an.undriven_signals()) {
            std::printf("%s: signal '%s' is read but never driven\n",
                        node->path().c_str(), s.c_str());
        }
        for (const auto& s : an.unused_signals()) {
            std::printf("%s: signal '%s' is driven but never read\n",
                        node->path().c_str(), s.c_str());
        }
    }

    // Extraction-time testability reports per MUT.
    std::printf("\n== extraction-time testability reports ==\n");
    core::ExtractionSession session(*elaborated, core::Mode::Composed, diags);
    for (const auto& mut : designs::arm2z_muts()) {
        const auto* node = elaborated->find_by_path(mut.instance_path);
        auto cs = session.extract(*node);
        std::printf("%s", core::make_testability_report(cs).text.c_str());
    }
    return 0;
}
