// Quickstart: the FACTOR flow end-to-end on a small two-level design.
//
//   parse -> elaborate -> extract constraints for an embedded MUT ->
//   build the transformed module -> run ATPG -> compare with raw ATPG.
//
// Build & run:  ./examples/quickstart
#include "atpg/engine.hpp"
#include "core/extractor.hpp"
#include "core/testability.hpp"
#include "core/transform.hpp"
#include "designs/designs.hpp"
#include "elab/elaborator.hpp"
#include "rtl/parser.hpp"

#include <cstdio>

using namespace factor;

int main() {
    // 1. Parse the bundled mini_soc design (any Verilog source works the
    //    same way; see designs::mini_soc_source() for the RTL).
    rtl::Design design;
    util::DiagEngine diags;
    rtl::Parser::parse_source(designs::mini_soc_source(), "mini_soc.v",
                              design, diags);
    if (diags.has_errors()) {
        std::fprintf(stderr, "parse failed:\n%s", diags.dump().c_str());
        return 1;
    }

    // 2. Elaborate the hierarchy.
    elab::Elaborator elaborator(design, diags);
    auto elaborated = elaborator.elaborate(designs::kMiniSocTop);
    if (!elaborated) {
        std::fprintf(stderr, "elaboration failed:\n%s", diags.dump().c_str());
        return 1;
    }
    std::printf("design %s: %zu instances\n", designs::kMiniSocTop,
                elaborated->instance_count());

    // 3. Pick the module under test: the ALU embedded at level 2.
    const elab::InstNode* mut = elaborated->find_by_path("mini_soc.alu");
    std::printf("MUT: %s (module %s, hierarchy level %d)\n\n",
                mut->path().c_str(), mut->module->name.c_str(), mut->level);

    // 4. Extract its functional constraints (compositional mode).
    core::ExtractionSession session(*elaborated, core::Mode::Composed, diags);
    core::TransformBuilder builder(*elaborated, diags);
    core::TransformOptions options;
    auto tm = builder.build(*mut, session, options);

    std::printf("transformed module: %zu MUT gates + %zu virtual-logic "
                "gates, %zu PIs, %zu POs (%zu register bits exposed)\n",
                tm.mut_gates, tm.surrounding_gates, tm.num_pis, tm.num_pos,
                tm.piers_exposed);
    std::printf("%s\n",
                core::make_testability_report(tm.constraints).text.c_str());

    // 5. ATPG on the transformed module, targeting the MUT's faults.
    atpg::EngineOptions atpg_opts;
    atpg_opts.scope_prefix = tm.mut_prefix;
    auto transformed = atpg::run_atpg(tm.netlist, atpg_opts);
    std::printf("ATPG on transformed module: %s\n",
                transformed.summary().c_str());

    // 6. For contrast: the same faults targeted on the raw full design
    //    under a tight budget (the paper's Table 4 situation).
    auto full = builder.full_design();
    atpg::EngineOptions raw_opts;
    raw_opts.scope_prefix = tm.mut_prefix;
    raw_opts.time_budget_s = 1.0;
    raw_opts.random_batches = 2;
    auto raw = atpg::run_atpg(full, raw_opts);
    std::printf("ATPG at full-design level:  %s\n", raw.summary().c_str());
    return 0;
}
