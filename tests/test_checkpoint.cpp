// Crash-safe ATPG checkpoint/resume and retry escalation.
//
// The contract under test (DESIGN.md §9): a run that dies mid-campaign —
// here via FACTOR_INJECT_FAULT at the "atpg.ckpt.write" site — and is then
// resumed from its journal must produce byte-identical results (vectors,
// statuses, coverage) to an uninterrupted run, at any jobs value; a
// checkpoint that fails validation (fingerprint mismatch, malformed or
// corrupt records) is refused with a named "ckpt.*" diagnostic, never
// silently resumed; a torn tail is truncated to the last valid record and
// resumed from there.
//
// FACTOR_FUZZ_CORPUS_DIR is provided as a compile definition by
// tests/CMakeLists.txt and points at tests/fuzz/ in the source tree.
#include "helpers.hpp"

#include "atpg/checkpoint.hpp"
#include "atpg/engine.hpp"
#include "designs/designs.hpp"
#include "obs/inject.hpp"
#include "util/journal.hpp"
#include "util/phase.hpp"
#include "util/run_guard.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace factor::test {
namespace {

using util::PhaseStatus;

class Checkpoint : public ::testing::Test {
  protected:
    void TearDown() override {
        obs::FaultInjector::global().disarm();
        util::RunGuard::clear_interrupt();
    }

    /// A fresh path for this test's checkpoint file.
    [[nodiscard]] std::string ckpt_path(const char* name) const {
        return (std::filesystem::temp_directory_path() /
                (std::string("factor_test_") + name + ".ckpt"))
            .string();
    }
};

/// Byte-identity over the stable result fields (the same subset the CI
/// crash-resume smoke diffs; attempt/timing fields legitimately differ).
void expect_identical(const atpg::EngineResult& a,
                      const atpg::EngineResult& b) {
    EXPECT_EQ(a.total_faults, b.total_faults);
    EXPECT_EQ(a.detected, b.detected);
    EXPECT_EQ(a.untestable, b.untestable);
    EXPECT_EQ(a.aborted, b.aborted);
    EXPECT_EQ(a.coverage_percent, b.coverage_percent);
    EXPECT_EQ(a.efficiency_percent, b.efficiency_percent);
    EXPECT_EQ(a.random_sequences, b.random_sequences);
    EXPECT_EQ(a.deterministic_tests, b.deterministic_tests);
    EXPECT_EQ(a.retried_faults, b.retried_faults);
    EXPECT_EQ(a.retry_recovered, b.retry_recovered);
    EXPECT_EQ(a.tests_before_compaction, b.tests_before_compaction);
    ASSERT_EQ(a.tests.size(), b.tests.size());
    for (size_t i = 0; i < a.tests.size(); ++i) {
        EXPECT_EQ(a.tests[i], b.tests[i]) << "test vector " << i << " differs";
    }
}

// ---- util::Journal ------------------------------------------------------

TEST_F(Checkpoint, JournalRecordRoundTrip) {
    util::JournalRecord rec;
    rec.set("t", "c").set_u64("i", 42).set_f64("s", 1.5).set("v", "01X|1D0");
    std::string json = util::journal_serialize(rec);
    util::JournalRecord back;
    ASSERT_TRUE(util::journal_parse(json, back));
    EXPECT_EQ(*back.get("t"), "c");
    EXPECT_EQ(back.get_u64("i"), 42u);
    EXPECT_DOUBLE_EQ(back.get_f64("s"), 1.5);
    EXPECT_EQ(*back.get("v"), "01X|1D0");
    EXPECT_FALSE(back.has("missing"));
}

TEST_F(Checkpoint, JournalWriterLoaderRoundTripAndTornTailTruncation) {
    const std::string path = ckpt_path("journal_rt");
    {
        util::JournalWriter w;
        ASSERT_TRUE(w.open(path));
        for (uint64_t i = 0; i < 5; ++i) {
            util::JournalRecord rec;
            rec.set("t", "x").set_u64("i", i);
            ASSERT_TRUE(w.append(rec));
        }
        EXPECT_EQ(w.records_written(), 5u);
    }
    auto load = util::journal_load(path);
    ASSERT_TRUE(load.ok);
    ASSERT_EQ(load.records.size(), 5u);
    EXPECT_EQ(load.dropped_lines, 0u);

    // Tear the tail mid-line, as a crash during a write would.
    std::error_code ec;
    auto size = std::filesystem::file_size(path, ec);
    ASSERT_FALSE(ec);
    std::filesystem::resize_file(path, size - 7, ec);
    ASSERT_FALSE(ec);
    auto torn = util::journal_load(path);
    ASSERT_TRUE(torn.ok);
    EXPECT_EQ(torn.records.size(), 4u); // last line dropped, prefix intact
    EXPECT_EQ(torn.dropped_lines, 1u);
    std::remove(path.c_str());
}

TEST_F(Checkpoint, JournalCrcFlipDropsRecordAndEverythingAfter) {
    const std::string path = ckpt_path("journal_crc");
    {
        util::JournalWriter w;
        ASSERT_TRUE(w.open(path));
        for (uint64_t i = 0; i < 4; ++i) {
            util::JournalRecord rec;
            rec.set_u64("i", i);
            ASSERT_TRUE(w.append(rec));
        }
    }
    // Flip one payload byte in line 2: its CRC fails, and the loader must
    // distrust every later line too (append-only ⇒ no valid data after
    // damage).
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    in.close();
    std::string content = buf.str();
    size_t second_line = content.find('\n') + 1;
    content[second_line + 12] ^= 0x01;
    std::ofstream(path) << content;

    auto load = util::journal_load(path);
    ASSERT_TRUE(load.ok);
    EXPECT_EQ(load.records.size(), 1u);
    EXPECT_EQ(load.dropped_lines, 3u);
    std::remove(path.c_str());
}

TEST_F(Checkpoint, WriteFileAtomicPublishesWholeDocument) {
    const std::string path = ckpt_path("atomic_txt");
    ASSERT_TRUE(util::atomic_publish(path, "first\n"));
    ASSERT_TRUE(util::atomic_publish(path, "second version\n"));
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), "second version\n");
    // No temp litter left behind.
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
    std::remove(path.c_str());
}

// ---- codecs + fingerprint ----------------------------------------------

TEST_F(Checkpoint, TestVectorCodecRoundTrips) {
    atpg::ScalarSequence seq;
    seq.frames = {{atpg::V5::Zero, atpg::V5::One, atpg::V5::X},
                  {atpg::V5::D, atpg::V5::DB, atpg::V5::Zero}};
    std::string text = atpg::ckpt::encode_test(seq);
    EXPECT_EQ(text, "01X|DB0");
    atpg::ScalarSequence back;
    ASSERT_TRUE(atpg::ckpt::decode_test(text, 3, back));
    EXPECT_EQ(back, seq);
    // Wrong width and junk are rejected, not misread.
    EXPECT_FALSE(atpg::ckpt::decode_test(text, 4, back));
    EXPECT_FALSE(atpg::ckpt::decode_test("01Z", 3, back));
    EXPECT_FALSE(atpg::ckpt::decode_test("", 1, back));
}

TEST_F(Checkpoint, FingerprintPinsTrajectoryShapingInputs) {
    auto b = compile(designs::traffic_source(), designs::kTrafficTop);
    ASSERT_TRUE(b);
    auto nl = synthesize(*b);
    atpg::FaultList faults(nl);
    atpg::EngineOptions opts;
    const std::string base = atpg::ckpt::fingerprint(nl, faults, opts);
    EXPECT_EQ(base.size(), 16u);
    EXPECT_EQ(base, atpg::ckpt::fingerprint(nl, faults, opts)); // stable

    atpg::EngineOptions changed = opts;
    changed.seed ^= 1;
    EXPECT_NE(base, atpg::ckpt::fingerprint(nl, faults, changed));
    changed = opts;
    changed.max_backtracks += 1;
    EXPECT_NE(base, atpg::ckpt::fingerprint(nl, faults, changed));
    changed = opts;
    changed.retry_rounds = 2;
    EXPECT_NE(base, atpg::ckpt::fingerprint(nl, faults, changed));

    // jobs and budgets deliberately do NOT change the fingerprint:
    // resuming under a different worker count or a bigger budget is a
    // supported workflow.
    changed = opts;
    changed.jobs = 7;
    changed.time_budget_s = 123.0;
    EXPECT_EQ(base, atpg::ckpt::fingerprint(nl, faults, changed));

    // A different netlist fingerprints differently.
    auto b2 = compile(designs::counter_source(), designs::kCounterTop);
    ASSERT_TRUE(b2);
    auto nl2 = synthesize(*b2);
    atpg::FaultList faults2(nl2);
    EXPECT_NE(base, atpg::ckpt::fingerprint(nl2, faults2, opts));
}

// ---- checkpointed runs --------------------------------------------------

TEST_F(Checkpoint, CheckpointedRunMatchesPlainRunAndSealsJournal) {
    auto b = compile(designs::mini_soc_source(), designs::kMiniSocTop);
    ASSERT_TRUE(b);
    auto nl = synthesize(*b);

    atpg::EngineOptions opts;
    opts.collect_tests = true;
    opts.max_backtracks = 200;
    opts.jobs = 2;

    auto plain = atpg::run_atpg(nl, opts);
    ASSERT_GT(plain.total_faults, 0u);

    const std::string path = ckpt_path("seal");
    opts.checkpoint_path = path;
    auto ckpted = atpg::run_atpg(nl, opts);
    expect_identical(plain, ckpted);
    EXPECT_EQ(ckpted.status, plain.status);

    // The journal is sealed with an "end" record, reason ok.
    atpg::FaultList faults(nl);
    auto load = atpg::ckpt::load(
        path, atpg::ckpt::fingerprint(nl, faults, opts), "auto",
        faults.size(), nl.inputs().size());
    ASSERT_TRUE(load.ok) << load.diagnostic;
    ASSERT_FALSE(load.events.empty());
    EXPECT_EQ(load.events.back().kind, atpg::ckpt::EventKind::End);
    EXPECT_EQ(load.events.back().reason, "ok");

    // Resuming a finished run is a pure replay with identical stats.
    opts.resume = true;
    auto replayed = atpg::run_atpg(nl, opts);
    EXPECT_FALSE(replayed.resume_refused) << replayed.status_detail;
    EXPECT_EQ(replayed.attempt, 2u);
    EXPECT_GT(replayed.replayed_events, 0u);
    expect_identical(plain, replayed);
    std::remove(path.c_str());
}

TEST_F(Checkpoint, InjectedCrashThenResumeIsByteIdentical) {
    auto b = compile(designs::mini_soc_source(), designs::kMiniSocTop);
    ASSERT_TRUE(b);
    auto nl = synthesize(*b);

    atpg::EngineOptions opts;
    opts.collect_tests = true;
    opts.max_backtracks = 200;
    opts.retry_rounds = 2; // escalation records must survive resume too

    for (size_t jobs : {size_t{1}, size_t{4}}) {
        SCOPED_TRACE("jobs=" + std::to_string(jobs));
        opts.jobs = jobs;
        opts.checkpoint_path.clear();
        opts.resume = false;
        auto reference = atpg::run_atpg(nl, opts);
        ASSERT_GT(reference.total_faults, 0u);

        // Count the journal appends of a full run, then kill a fresh run
        // mid-campaign at roughly half of them.
        const std::string path =
            ckpt_path(("crash_j" + std::to_string(jobs)).c_str());
        opts.checkpoint_path = path;
        auto full = atpg::run_atpg(nl, opts);
        expect_identical(reference, full);
        const size_t appends = util::journal_load(path).records.size() - 1;
        ASSERT_GT(appends, 2u);

        obs::FaultInjector::global().configure("atpg.ckpt.write",
                                               appends / 2);
        auto crashed = atpg::run_atpg(nl, opts);
        EXPECT_FALSE(obs::FaultInjector::global().armed()); // it fired
        EXPECT_EQ(crashed.status, PhaseStatus::Failed);
        EXPECT_NE(crashed.status_detail.find("ckpt.write_failed"),
                  std::string::npos)
            << crashed.status_detail;
        // The journal keeps the committed prefix: strictly fewer records,
        // still loadable.
        auto partial = util::journal_load(path);
        ASSERT_TRUE(partial.ok);
        EXPECT_LT(partial.records.size(), appends + 1);

        opts.resume = true;
        auto resumed = atpg::run_atpg(nl, opts);
        ASSERT_FALSE(resumed.resume_refused) << resumed.status_detail;
        EXPECT_EQ(resumed.attempt, 2u);
        expect_identical(reference, resumed);
        EXPECT_EQ(resumed.status, reference.status);
        opts.resume = false;
        std::remove(path.c_str());
    }
}

TEST_F(Checkpoint, QuotaStoppedRunResumesToMatchUninterruptedRun) {
    auto b = compile(designs::mini_soc_source(), designs::kMiniSocTop);
    ASSERT_TRUE(b);
    auto nl = synthesize(*b);

    atpg::EngineOptions opts;
    opts.collect_tests = true;
    opts.max_backtracks = 200;
    opts.jobs = 4;

    // Reference: one uninterrupted run under the full quota.
    constexpr uint64_t kFullQuota = 10'000;
    {
        util::RunGuard guard(util::GuardLimits{0.0, kFullQuota, 0, 0});
        opts.guard = &guard;
        auto reference = atpg::run_atpg(nl, opts);
        ASSERT_FALSE(reference.budget_exhausted)
            << "quota too small for a clean reference";

        // Stopped attempt: a small quota halts the campaign mid-way.
        const std::string path = ckpt_path("quota");
        opts.checkpoint_path = path;
        util::RunGuard small(util::GuardLimits{0.0, 10, 0, 0});
        opts.guard = &small;
        auto stopped = atpg::run_atpg(nl, opts);
        EXPECT_TRUE(stopped.budget_exhausted);
        EXPECT_EQ(stopped.status, PhaseStatus::BudgetExhausted);

        // Resume under the full quota: the pre-charged guard accounts for
        // the 40 units the first attempt spent, and the final result is
        // byte-identical to the uninterrupted reference.
        util::RunGuard full(util::GuardLimits{0.0, kFullQuota, 0, 0});
        opts.guard = &full;
        opts.resume = true;
        auto resumed = atpg::run_atpg(nl, opts);
        ASSERT_FALSE(resumed.resume_refused) << resumed.status_detail;
        EXPECT_EQ(resumed.attempt, 2u);
        expect_identical(reference, resumed);
        EXPECT_GE(full.work_used(), 10u); // prior work was pre-charged
        std::remove(path.c_str());
    }
}

TEST_F(Checkpoint, TruncatedTailResumesFromLastValidRecord) {
    auto b = compile(designs::traffic_source(), designs::kTrafficTop);
    ASSERT_TRUE(b);
    auto nl = synthesize(*b);

    atpg::EngineOptions opts;
    opts.collect_tests = true;
    opts.jobs = 2;
    auto reference = atpg::run_atpg(nl, opts);

    const std::string path = ckpt_path("torn");
    opts.checkpoint_path = path;
    (void)atpg::run_atpg(nl, opts);

    // Chop bytes off the end: the seal and part of the last record vanish.
    auto size = std::filesystem::file_size(path);
    std::filesystem::resize_file(path, size - size / 4);

    opts.resume = true;
    auto resumed = atpg::run_atpg(nl, opts);
    ASSERT_FALSE(resumed.resume_refused) << resumed.status_detail;
    expect_identical(reference, resumed);
    std::remove(path.c_str());
}

// ---- refusal paths ------------------------------------------------------

TEST_F(Checkpoint, FingerprintMismatchRefusesResume) {
    auto b = compile(designs::traffic_source(), designs::kTrafficTop);
    ASSERT_TRUE(b);
    auto nl = synthesize(*b);

    const std::string path = ckpt_path("fp_mismatch");
    atpg::EngineOptions opts;
    opts.checkpoint_path = path;
    (void)atpg::run_atpg(nl, opts);

    // Same design, different seed: a different campaign. Resume refused.
    opts.seed ^= 0xff;
    opts.resume = true;
    auto refused = atpg::run_atpg(nl, opts);
    EXPECT_TRUE(refused.resume_refused);
    EXPECT_EQ(refused.status, PhaseStatus::Failed);
    EXPECT_NE(refused.status_detail.find("ckpt.fingerprint_mismatch"),
              std::string::npos)
        << refused.status_detail;
    std::remove(path.c_str());
}

TEST_F(Checkpoint, MissingFileAndInjectedLoadFaultRefuseWithDiagnostics) {
    auto b = compile(designs::traffic_source(), designs::kTrafficTop);
    ASSERT_TRUE(b);
    auto nl = synthesize(*b);

    atpg::EngineOptions opts;
    opts.checkpoint_path = ckpt_path("nonexistent");
    opts.resume = true;
    auto missing = atpg::run_atpg(nl, opts);
    EXPECT_TRUE(missing.resume_refused);
    EXPECT_NE(missing.status_detail.find("ckpt.open_failed"),
              std::string::npos)
        << missing.status_detail;

    // A fault injected at the load site is contained as a refusal, not a
    // crash or a silent fresh start.
    const std::string path = ckpt_path("load_fault");
    opts.resume = false;
    opts.checkpoint_path = path;
    (void)atpg::run_atpg(nl, opts);
    opts.resume = true;
    obs::FaultInjector::global().configure("atpg.ckpt.load");
    auto faulted = atpg::run_atpg(nl, opts);
    EXPECT_TRUE(faulted.resume_refused);
    EXPECT_NE(faulted.status_detail.find("ckpt.load_failed"),
              std::string::npos)
        << faulted.status_detail;
    std::remove(path.c_str());
}

TEST_F(Checkpoint, FuzzCorpusCheckpointsNeverResumeSilently) {
    const std::filesystem::path dir = FACTOR_FUZZ_CORPUS_DIR;
    ASSERT_TRUE(std::filesystem::is_directory(dir));

    auto b = compile(designs::traffic_source(), designs::kTrafficTop);
    ASSERT_TRUE(b);
    auto nl = synthesize(*b);
    atpg::FaultList faults(nl);
    atpg::EngineOptions opts;
    const std::string fp = atpg::ckpt::fingerprint(nl, faults, opts);

    size_t checked = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        if (entry.path().extension() != ".ckpt") continue;
        ++checked;
        SCOPED_TRACE(entry.path().string());
        atpg::ckpt::Load load;
        // The loader must contain arbitrary damage: no throw, and either a
        // clean named refusal or a truncated-but-valid prefix.
        EXPECT_NO_THROW(load = atpg::ckpt::load(entry.path().string(), fp,
                                                "auto", faults.size(),
                                                nl.inputs().size()));
        EXPECT_FALSE(load.ok) << "corpus checkpoint accepted";
        EXPECT_NE(load.diagnostic.find("ckpt."), std::string::npos)
            << "refusal must carry a named ckpt.* diagnostic, got: "
            << load.diagnostic;

        // End to end: the engine refuses the resume; it never runs.
        atpg::EngineOptions ropts;
        ropts.checkpoint_path = entry.path().string();
        ropts.resume = true;
        atpg::EngineResult r;
        EXPECT_NO_THROW(r = atpg::run_atpg(nl, ropts));
        EXPECT_TRUE(r.resume_refused) << r.status_detail;
        EXPECT_EQ(r.status, PhaseStatus::Failed);
    }
    EXPECT_GE(checked, 6u) << "checkpoint fuzz corpus unexpectedly small";
}

TEST_F(Checkpoint, SemanticallyInvalidRecordRefusesRatherThanTruncates) {
    // A CRC-valid record that breaks the commit-order state machine must
    // refuse the whole resume — truncating it could silently resume from
    // the wrong point. This needs a matching fingerprint, so the stream is
    // built live rather than taken from the static corpus.
    auto b = compile(designs::traffic_source(), designs::kTrafficTop);
    ASSERT_TRUE(b);
    auto nl = synthesize(*b);
    atpg::FaultList faults(nl);
    atpg::EngineOptions opts;
    const std::string fp = atpg::ckpt::fingerprint(nl, faults, opts);

    const std::string path = ckpt_path("malformed");
    atpg::ckpt::Header h;
    h.fingerprint = fp;
    h.total_faults = faults.size();
    atpg::ckpt::Writer w;
    ASSERT_TRUE(w.start_fresh(path, h));
    atpg::ckpt::Event rp;
    rp.kind = atpg::ckpt::EventKind::RandomPhaseEnd;
    ASSERT_TRUE(w.append(rp));
    atpg::ckpt::Event bad;
    bad.kind = atpg::ckpt::EventKind::Commit;
    bad.fault = faults.size(); // out of range: CRC fine, semantics not
    bad.outcome = 'u';
    ASSERT_TRUE(w.append(bad));

    auto load = atpg::ckpt::load(path, fp, "auto", faults.size(),
                                 nl.inputs().size());
    EXPECT_FALSE(load.ok);
    EXPECT_NE(load.diagnostic.find("ckpt.malformed_record"),
              std::string::npos)
        << load.diagnostic;
    std::remove(path.c_str());
}

// ---- retry escalation ---------------------------------------------------

TEST_F(Checkpoint, RetryEscalationNeverIncreasesAbortsAndIsJobsInvariant) {
    auto b = compile(designs::mini_soc_source(), designs::kMiniSocTop);
    ASSERT_TRUE(b);
    auto nl = synthesize(*b);

    atpg::EngineOptions opts;
    opts.collect_tests = true;
    // A tiny budget forces backtrack aborts for escalation to chew on.
    opts.max_backtracks = 2;
    opts.jobs = 2;
    // PODEM-only: the auto engine's SAT tier would resolve every aborted
    // fault and leave the retry escalation nothing to demonstrate.
    opts.engine = atpg::EngineKind::Podem;

    auto base = atpg::run_atpg(nl, opts);
    ASSERT_GT(base.aborted, 0u) << "expected backtrack-aborted faults";
    EXPECT_EQ(base.retried_faults, 0u);
    EXPECT_EQ(base.metrics().to_json().find("podem_retries"),
              std::string::npos);

    opts.retry_rounds = 3;
    auto retried = atpg::run_atpg(nl, opts);
    EXPECT_GT(retried.retried_faults, 0u);
    EXPECT_LE(retried.aborted, base.aborted);
    EXPECT_GE(retried.detected + retried.untestable,
              base.detected + base.untestable);
    // Every fault that left Aborted either got detected by a retry test
    // (recovered) or was proven untestable under the bigger budget.
    EXPECT_EQ(retried.retry_recovered,
              (base.aborted - retried.aborted) -
                  (retried.untestable - base.untestable))
        << "recovered bookkeeping out of sync";
    // The escalation statistics are visible in the metrics document.
    std::string json = retried.metrics().to_json();
    EXPECT_NE(json.find("podem_retries"), std::string::npos);
    EXPECT_NE(json.find("retry_recovered"), std::string::npos);

    // Escalation is serial in fault order: jobs-invariant like the rest.
    auto j1 = retried;
    opts.jobs = 4;
    auto j4 = atpg::run_atpg(nl, opts);
    expect_identical(j1, j4);
}

TEST_F(Checkpoint, ResumedRunAggregatesAttemptAndTiming) {
    auto b = compile(designs::mini_soc_source(), designs::kMiniSocTop);
    ASSERT_TRUE(b);
    auto nl = synthesize(*b);

    atpg::EngineOptions opts;
    opts.max_backtracks = 200;
    opts.jobs = 2;
    const std::string path = ckpt_path("timing");
    opts.checkpoint_path = path;

    auto full = atpg::run_atpg(nl, opts);
    const size_t appends = util::journal_load(path).records.size() - 1;
    ASSERT_GT(appends, 2u);
    obs::FaultInjector::global().configure("atpg.ckpt.write", appends / 2);
    auto crashed = atpg::run_atpg(nl, opts);
    ASSERT_EQ(crashed.status, PhaseStatus::Failed);

    opts.resume = true;
    auto resumed = atpg::run_atpg(nl, opts);
    ASSERT_FALSE(resumed.resume_refused) << resumed.status_detail;
    EXPECT_EQ(resumed.attempt, 2u);
    EXPECT_GT(resumed.replayed_events, 0u);
    // Wall clock aggregates across attempts: the prior attempt's seconds
    // are carried in the checkpoint header and included in the total.
    EXPECT_GE(resumed.prior_seconds, 0.0);
    EXPECT_GE(resumed.test_gen_seconds, resumed.prior_seconds);
    // The metrics document reports the attempt number on resumed runs.
    EXPECT_NE(resumed.metrics().to_json().find("\"attempt\":2"),
              std::string::npos);
    EXPECT_EQ(full.metrics().to_json().find("\"attempt\""),
              std::string::npos);
    std::remove(path.c_str());
}

} // namespace
} // namespace factor::test
