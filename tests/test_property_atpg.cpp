// Property tests for the ATPG substrate:
//  * every PODEM-generated test is confirmed by the independent fault
//    simulator (no optimistic detections),
//  * fault-equivalence collapsing is sound — a collapsed-away fault is
//    detected by exactly the patterns that detect its representative,
//    verified exhaustively on small circuits,
//  * engine determinism and budget monotonicity.
#include "helpers.hpp"

#include "atpg/engine.hpp"
#include "atpg/fault.hpp"
#include "atpg/fault_sim.hpp"
#include "atpg/podem.hpp"
#include "designs/designs.hpp"
#include "synth/transforms.hpp"

#include <gtest/gtest.h>

namespace factor::test {
namespace {

using namespace factor::atpg;
using synth::GateType;
using synth::Netlist;
using synth::NetId;

// ---------------------------------------------------------- PODEM vs sim

struct PodemVerifyCase {
    const char* name;
    const char* source;
    const char* top;
    size_t max_frames;
};

const PodemVerifyCase kPodemCases[] = {
    {"alu_like", R"(
module m (input [3:0] a, input [3:0] b, input [1:0] op, output [3:0] y,
          output z);
  reg [3:0] r;
  always @(*) begin
    case (op)
      2'd0: r = a + b;
      2'd1: r = a - b;
      2'd2: r = a & b;
      default: r = a | b;
    endcase
  end
  assign y = r;
  assign z = r == 4'h0;
endmodule)",
     "m", 1},
    {"sequential_fsm", R"(
module m (input clk, input rst, input go, output reg [1:0] st, output done);
  always @(posedge clk) begin
    if (rst) st <= 2'd0;
    else begin
      case (st)
        2'd0: if (go) st <= 2'd1;
        2'd1: st <= 2'd2;
        2'd2: st <= 2'd3;
        default: st <= 2'd0;
      endcase
    end
  end
  assign done = st == 2'd3;
endmodule)",
     "m", 8},
    {"pipeline", R"(
module m (input clk, input rst, input [3:0] d, output [3:0] q);
  reg [3:0] s1;
  reg [3:0] s2;
  always @(posedge clk) begin
    if (rst) begin s1 <= 4'h0; s2 <= 4'h0; end
    else begin s1 <= d ^ 4'h5; s2 <= s1 + 4'h1; end
  end
  assign q = s2;
endmodule)",
     "m", 6},
};

class PodemVerify : public ::testing::TestWithParam<PodemVerifyCase> {};

TEST_P(PodemVerify, EveryGeneratedTestIsSimConfirmed) {
    const auto& tc = GetParam();
    auto b = compile(tc.source, tc.top);
    ASSERT_TRUE(b);
    auto nl = synthesize(*b);
    FaultSimulator sim(nl);
    FaultList fl(nl);
    TimeFramePodem podem(nl, PodemOptions{});

    size_t generated = 0;
    for (const auto& entry : fl.faults()) {
        for (size_t k = 1; k <= tc.max_frames; ++k) {
            auto r = podem.generate(entry.fault, k);
            if (r.outcome != PodemOutcome::Success) continue;
            ++generated;
            auto seq = broadcast(r.test, nl.inputs().size());
            auto good = sim.simulate_good(seq);
            EXPECT_NE(sim.detect_mask(entry.fault, seq, good) & 1, 0u)
                << tc.name << ": unverified test for "
                << entry.describe(nl) << " at depth " << k;
            break;
        }
    }
    EXPECT_GT(generated, fl.size() / 2) << tc.name;
}

INSTANTIATE_TEST_SUITE_P(Circuits, PodemVerify,
                         ::testing::ValuesIn(kPodemCases),
                         [](const auto& info) {
                             return std::string(info.param.name);
                         });

// ------------------------------------------------- collapsing soundness

/// Exhaustively compute the set of input patterns detecting `fault` on a
/// combinational netlist with <= 16 inputs.
uint64_t detecting_patterns(const Netlist& nl, const Fault& fault) {
    FaultSimulator sim(nl);
    size_t n = nl.inputs().size();
    EXPECT_LE(n, 16u);
    uint64_t detected_count = 0;
    size_t total = size_t{1} << n;
    for (size_t base = 0; base < total; base += 64) {
        Frame f;
        f.pi.resize(n);
        for (size_t i = 0; i < n; ++i) {
            uint64_t ones = 0;
            for (size_t p = 0; p < 64 && base + p < total; ++p) {
                if (((base + p) >> i) & 1) ones |= (1ull << p);
            }
            f.pi[i] = atpg::V64{ones, ~ones};
        }
        Sequence seq{f};
        auto good = sim.simulate_good(seq);
        uint64_t mask = sim.detect_mask(fault, seq, good);
        detected_count += static_cast<uint64_t>(__builtin_popcountll(mask));
    }
    return detected_count;
}

class CollapsingSoundness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CollapsingSoundness, UncollapsedFaultsAreCovered) {
    // Build a small random combinational netlist; check that the collapsed
    // fault list "covers" all faults: every gate-input fault that was
    // collapsed away has the same detecting-pattern count as some kept
    // fault that is detected whenever it is (we verify the weaker but
    // meaningful property: total detectability is preserved — any test set
    // achieving 100% collapsed coverage also detects every uncollapsed
    // fault; here via pattern-set equality with the representative).
    std::mt19937_64 rng(GetParam());
    Netlist nl;
    std::vector<NetId> pool;
    for (int i = 0; i < 5; ++i) {
        NetId n = nl.new_net("in" + std::to_string(i));
        nl.mark_input(n);
        pool.push_back(n);
    }
    for (int i = 0; i < 12; ++i) {
        GateType types[] = {GateType::And, GateType::Or, GateType::Not,
                            GateType::Xor, GateType::Nand, GateType::Nor};
        GateType t = types[rng() % std::size(types)];
        NetId out = t == GateType::Not
                        ? nl.add_gate(t, {pool[rng() % pool.size()]})
                        : nl.add_gate(t, {pool[rng() % pool.size()],
                                          pool[rng() % pool.size()]});
        pool.push_back(out);
    }
    nl.mark_output(pool.back(), "y");

    FaultList fl(nl);
    // For AND gates with single-reader inputs, the input SA0 collapsed into
    // the output SA0: verify their detecting pattern sets coincide.
    for (const auto& g : nl.gates()) {
        if (g.type != GateType::And || g.ins.size() != 2) continue;
        Fault out_sa0;
        out_sa0.net = g.out;
        out_sa0.sa1 = false;
        uint64_t rep = detecting_patterns(nl, out_sa0);
        for (size_t pin = 0; pin < g.ins.size(); ++pin) {
            Fault in_sa0;
            in_sa0.net = g.ins[pin];
            in_sa0.gate = static_cast<synth::GateId>(&g - nl.gates().data());
            in_sa0.pin = static_cast<int>(pin);
            in_sa0.sa1 = false;
            EXPECT_EQ(detecting_patterns(nl, in_sa0), rep)
                << "collapsed input fault differs from representative";
        }
    }
    EXPECT_LT(fl.size(), fl.uncollapsed_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CollapsingSoundness,
                         ::testing::Range<uint64_t>(100, 110));

// ------------------------------------------------- engine-level properties

TEST(EngineProperties, DeterministicForFixedSeed) {
    auto b = compile(designs::mini_soc_source(), designs::kMiniSocTop);
    ASSERT_TRUE(b);
    auto nl = synthesize(*b);
    EngineOptions opts;
    opts.seed = 1234;
    auto r1 = run_atpg(nl, opts);
    auto r2 = run_atpg(nl, opts);
    EXPECT_EQ(r1.detected, r2.detected);
    EXPECT_EQ(r1.untestable, r2.untestable);
    EXPECT_EQ(r1.aborted, r2.aborted);
}

TEST(EngineProperties, MoreBacktracksNeverHurtCoverage) {
    auto b = compile(designs::traffic_source(), designs::kTrafficTop);
    ASSERT_TRUE(b);
    auto nl = synthesize(*b);
    EngineOptions low;
    low.max_backtracks = 5;
    low.random_batches = 1;
    EngineOptions high = low;
    high.max_backtracks = 2000;
    auto rl = run_atpg(nl, low);
    auto rh = run_atpg(nl, high);
    EXPECT_GE(rh.coverage_percent, rl.coverage_percent);
}

TEST(EngineProperties, CountsAreConsistent) {
    auto b = compile(designs::counter_source(), designs::kCounterTop);
    ASSERT_TRUE(b);
    auto nl = synthesize(*b);
    EngineOptions opts;
    opts.max_frames = 4;
    auto r = run_atpg(nl, opts);
    EXPECT_EQ(r.total_faults, r.detected + r.untestable + r.aborted);
    EXPECT_GE(r.efficiency_percent, r.coverage_percent);
}

TEST(EngineProperties, ExposedRegistersImproveDeepCounterCoverage) {
    // The PIER effect in isolation: exposing the counter register turns
    // deep sequential faults into shallow ones.
    auto b = compile(designs::counter_source(), designs::kCounterTop);
    ASSERT_TRUE(b);
    synth::Synthesizer s(*b->design, b->diags);
    auto plain = s.run(b->root());
    (void)synth::optimize(plain);
    auto exposed = plain;
    (void)synth::expose_registers(exposed, [](const std::string& name) {
        return name.rfind("c[", 0) == 0;
    });

    EngineOptions opts;
    opts.max_frames = 4;
    opts.random_batches = 4;
    auto r_plain = run_atpg(plain, opts);
    auto r_exposed = run_atpg(exposed, opts);
    EXPECT_GT(r_exposed.coverage_percent, r_plain.coverage_percent + 10.0);
}

} // namespace
} // namespace factor::test
