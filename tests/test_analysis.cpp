// Tests for the def-use / use-def analysis (the paper's Figure 2 data
// structure).
#include "helpers.hpp"

#include "analysis/def_use.hpp"

#include <gtest/gtest.h>

namespace factor::test {
namespace {

using analysis::ModuleAnalysis;
using analysis::SiteKind;

std::unique_ptr<Bundle> tiny() {
    return compile(R"(
module child (input ci, output co);
  assign co = ~ci;
endmodule
module m (input clk, input a, input b, input sel, output reg q,
          output w, output deadport);
  wire t;
  wire unused_wire;
  wire undriven;
  reg hard;
  assign t = a & b;
  assign w = t | undriven;
  assign unused_wire = a ^ b;
  always @(posedge clk) begin
    if (sel) q <= t;
    else q <= b;
  end
  always @(*) hard = 1'b1;
  child u (.ci(t), .co(deadport));
endmodule)",
                   "m");
}

TEST(Analysis, DefsOfContAssign) {
    auto b = tiny();
    ASSERT_TRUE(b);
    ModuleAnalysis an(*b->root().module);
    const auto& defs = an.defs("t");
    // One real def (the assign); the instance connection is recorded
    // conservatively as def+use and filtered by direction downstream.
    const analysis::SiteRef* assign_def = nullptr;
    size_t assign_defs = 0;
    for (const auto& d : defs) {
        if (d.kind == SiteKind::ContAssign) {
            assign_def = &d;
            ++assign_defs;
        }
    }
    ASSERT_EQ(assign_defs, 1u);
    auto rhs = an.rhs_signals(*assign_def);
    EXPECT_EQ(rhs.size(), 2u);
}

TEST(Analysis, InputPortIsADef) {
    auto b = tiny();
    ASSERT_TRUE(b);
    ModuleAnalysis an(*b->root().module);
    const auto& defs = an.defs("a");
    ASSERT_EQ(defs.size(), 1u);
    EXPECT_EQ(defs[0].kind, SiteKind::Port);
}

TEST(Analysis, OutputPortIsAUse) {
    auto b = tiny();
    ASSERT_TRUE(b);
    ModuleAnalysis an(*b->root().module);
    bool port_use = false;
    for (const auto& u : an.uses("w")) {
        port_use |= u.kind == SiteKind::Port;
    }
    EXPECT_TRUE(port_use);
}

TEST(Analysis, ProcAssignDefsWithEnclosingContext) {
    auto b = tiny();
    ASSERT_TRUE(b);
    ModuleAnalysis an(*b->root().module);
    const auto& defs = an.defs("q");
    ASSERT_EQ(defs.size(), 2u); // both branches
    EXPECT_EQ(defs[0].kind, SiteKind::ProcAssign);
    auto enc = an.enclosing(defs[0].stmt);
    ASSERT_EQ(enc.size(), 1u);
    EXPECT_EQ(enc[0]->kind, rtl::StmtKind::If);
    auto ctrl = an.control_signals(defs[0]);
    // sel from the if, clk from the sensitivity list.
    EXPECT_NE(std::find(ctrl.begin(), ctrl.end(), "sel"), ctrl.end());
    EXPECT_NE(std::find(ctrl.begin(), ctrl.end(), "clk"), ctrl.end());
}

TEST(Analysis, ConditionSignalsCountAsUses) {
    auto b = tiny();
    ASSERT_TRUE(b);
    ModuleAnalysis an(*b->root().module);
    bool used_in_proc = false;
    for (const auto& u : an.uses("sel")) {
        used_in_proc |= u.kind == SiteKind::ProcAssign;
    }
    EXPECT_TRUE(used_in_proc);
}

TEST(Analysis, InstanceConnectionsAppear) {
    auto b = tiny();
    ASSERT_TRUE(b);
    ModuleAnalysis an(*b->root().module);
    bool t_feeds_child = false;
    for (const auto& u : an.uses("t")) {
        t_feeds_child |= u.kind == SiteKind::InstanceConn;
    }
    EXPECT_TRUE(t_feeds_child);
    bool deadport_from_child = false;
    for (const auto& d : an.defs("deadport")) {
        deadport_from_child |= d.kind == SiteKind::InstanceConn;
    }
    EXPECT_TRUE(deadport_from_child);
}

TEST(Analysis, UndrivenSignalsDetected) {
    auto b = tiny();
    ASSERT_TRUE(b);
    ModuleAnalysis an(*b->root().module);
    auto undriven = an.undriven_signals();
    EXPECT_NE(std::find(undriven.begin(), undriven.end(), "undriven"),
              undriven.end());
    EXPECT_EQ(std::find(undriven.begin(), undriven.end(), "t"), undriven.end());
}

TEST(Analysis, UnusedSignalsDetected) {
    auto b = tiny();
    ASSERT_TRUE(b);
    ModuleAnalysis an(*b->root().module);
    auto unused = an.unused_signals();
    EXPECT_NE(std::find(unused.begin(), unused.end(), "unused_wire"),
              unused.end());
}

TEST(Analysis, HardCodedConstantDefs) {
    auto b = tiny();
    ASSERT_TRUE(b);
    ModuleAnalysis an(*b->root().module);
    EXPECT_TRUE(an.only_constant_defs("hard"));
    EXPECT_FALSE(an.only_constant_defs("t"));
    EXPECT_FALSE(an.only_constant_defs("a")); // input port
}

TEST(Analysis, LhsSignalsOfSites) {
    auto b = tiny();
    ASSERT_TRUE(b);
    ModuleAnalysis an(*b->root().module);
    const auto& defs = an.defs("q");
    auto lhs = an.lhs_signals(defs[0]);
    ASSERT_EQ(lhs.size(), 1u);
    EXPECT_EQ(lhs[0], "q");
}

TEST(Analysis, LoopVariablesAreNotSignals) {
    auto b = compile(R"(
module rev (input [3:0] a, output reg [3:0] y);
  integer i;
  always @(*) begin
    y = 4'h0;
    for (i = 0; i < 4; i = i + 1)
      y[i] = a[3 - i];
  end
endmodule)",
                     "rev");
    ASSERT_TRUE(b);
    ModuleAnalysis an(*b->root().module);
    auto sigs = an.signals();
    EXPECT_EQ(std::find(sigs.begin(), sigs.end(), "i"), sigs.end());
    EXPECT_TRUE(an.defs("i").empty());
}

TEST(Analysis, CacheReturnsSameInstance) {
    auto b = tiny();
    ASSERT_TRUE(b);
    analysis::AnalysisCache cache;
    const auto& a1 = cache.get(*b->root().module);
    const auto& a2 = cache.get(*b->root().module);
    EXPECT_EQ(&a1, &a2);
}

} // namespace
} // namespace factor::test
