// Unit tests for the observability layer: tracer spans and NDJSON output,
// histogram bucketing, registry reset semantics, and the Doc shared
// text/JSON renderer.
#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

namespace factor::obs {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
    std::vector<std::string> out;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty()) out.push_back(line);
    }
    return out;
}

// ------------------------------------------------------------------- tracer

TEST(Tracer, DisabledByDefaultRecordsNothing) {
    Tracer& t = Tracer::global();
    ASSERT_FALSE(t.enabled());
    {
        Span s("never.recorded");
        s.attr("k", uint64_t{1});
        EXPECT_FALSE(s.active());
    }
    EXPECT_EQ(t.event_count(), 0u);
}

TEST(Tracer, NestedSpansEmitDepthAndValidNdjson) {
    Tracer& t = Tracer::global();
    t.start(""); // buffer only, no file
    {
        Span outer("unit.outer");
        outer.attr("label", "out\"er"); // must be escaped in the output
        {
            Span inner("unit.inner");
            inner.attr("n", uint64_t{42});
        }
        {
            Span inner2("unit.inner2");
            (void)inner2;
        }
    }
    std::string ndjson = t.stop();
    EXPECT_FALSE(t.enabled());

    auto lines = lines_of(ndjson);
    ASSERT_EQ(lines.size(), 3u);
    for (const auto& line : lines) {
        EXPECT_TRUE(json_valid(line)) << line;
    }
    // Spans close inner-first.
    EXPECT_NE(lines[0].find("\"name\":\"unit.inner\""), std::string::npos);
    EXPECT_NE(lines[0].find("\"depth\":1"), std::string::npos);
    EXPECT_NE(lines[1].find("\"name\":\"unit.inner2\""), std::string::npos);
    EXPECT_NE(lines[2].find("\"name\":\"unit.outer\""), std::string::npos);
    EXPECT_NE(lines[2].find("\"depth\":0"), std::string::npos);
    EXPECT_NE(lines[2].find("out\\\"er"), std::string::npos);

    // Buffer is cleared by stop(); a span after stop is inert again.
    EXPECT_EQ(t.event_count(), 0u);
    { Span after("unit.after"); EXPECT_FALSE(after.active()); }
    EXPECT_EQ(t.event_count(), 0u);
}

TEST(Tracer, StopWithoutEventsYieldsEmptyText) {
    Tracer& t = Tracer::global();
    t.start("");
    EXPECT_EQ(lines_of(t.stop()).size(), 0u);
}

// ---------------------------------------------------------------- histogram

TEST(Histogram, BucketOfEdgeCases) {
    EXPECT_EQ(Histogram::bucket_of(0), 0u);
    EXPECT_EQ(Histogram::bucket_of(1), 1u);
    EXPECT_EQ(Histogram::bucket_of(2), 2u);
    EXPECT_EQ(Histogram::bucket_of(3), 2u);
    EXPECT_EQ(Histogram::bucket_of(4), 3u);
    EXPECT_EQ(Histogram::bucket_of((uint64_t{1} << 63)), 64u);
    EXPECT_EQ(Histogram::bucket_of(std::numeric_limits<uint64_t>::max()), 64u);
}

TEST(Histogram, RecordAccumulatesCountSumMaxBuckets) {
    Histogram h;
    h.record(0);
    h.record(1);
    h.record(2);
    h.record(3);
    h.record(std::numeric_limits<uint64_t>::max());
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.max(), std::numeric_limits<uint64_t>::max());
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(2), 2u);
    EXPECT_EQ(h.bucket(64), 1u);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.bucket(2), 0u);
}

// ----------------------------------------------------------------- registry

TEST(Registry, ResetZeroesButCachedReferencesStayUsable) {
    Counter& c = counter("test.obs.reset_counter");
    Gauge& g = gauge("test.obs.reset_gauge");
    Histogram& h = histogram("test.obs.reset_hist");
    c.add(7);
    g.set(2.5);
    h.record(9);
    Registry::global().reset();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(g.value(), 0.0);
    EXPECT_EQ(h.count(), 0u);
    // The same references keep working after reset — hot paths cache them.
    c.add(3);
    EXPECT_EQ(c.value(), 3u);
    EXPECT_EQ(counter("test.obs.reset_counter").value(), 3u);
    EXPECT_EQ(&counter("test.obs.reset_counter"), &c);
}

TEST(Registry, ToJsonIsValidAndContainsInstruments) {
    counter("test.obs.json_counter").add(11);
    histogram("test.obs.json_hist").record(5);
    std::string json = Registry::global().to_json();
    EXPECT_TRUE(json_valid(json)) << json;
    EXPECT_NE(json.find("\"test.obs.json_counter\":11"), std::string::npos);
    EXPECT_NE(json.find("\"test.obs.json_hist\""), std::string::npos);
}

// ---------------------------------------------------------------------- doc

TEST(Doc, TextRenderingFollowsSuffixConventions) {
    Doc d;
    d.add("faults", uint64_t{100})
        .add("coverage_percent", 57.2289)
        .add("time_seconds", 0.61094)
        .add("budget_exhausted", true)
        .add("quiet_flag", false);
    EXPECT_EQ(d.to_text(),
              "faults=100 coverage=57.23% time=0.611s (budget exhausted)");
}

TEST(Doc, JsonRenderingIsValidAndOrdered) {
    Doc d;
    d.add("b_second", uint64_t{2}).add("a_first", uint64_t{1});
    std::string json = d.to_json();
    EXPECT_TRUE(json_valid(json)) << json;
    // Insertion order, not lexicographic.
    EXPECT_LT(json.find("b_second"), json.find("a_first"));
}

TEST(Doc, CellFormatsAndMissingEntryRendersDash) {
    Doc d;
    d.add("gates", uint64_t{54}).add("ratio_percent", 12.3456);
    EXPECT_EQ(d.cell("gates"), "54");
    EXPECT_EQ(d.cell("ratio_percent", 1), "12.3");
    EXPECT_EQ(d.cell("ratio_percent", 4), "12.3456");
    EXPECT_EQ(d.cell("absent"), "-");
    EXPECT_EQ(d.number("gates"), 54.0);
    EXPECT_EQ(d.number("absent"), 0.0);
}

// --------------------------------------------------------------------- json

TEST(Json, ValidatorAcceptsAndRejects) {
    EXPECT_TRUE(json_valid("{}"));
    EXPECT_TRUE(json_valid("[1,2.5,-3e2,\"s\",true,false,null]"));
    EXPECT_TRUE(json_valid("{\"a\":{\"b\":[{}]}}"));
    EXPECT_FALSE(json_valid(""));
    EXPECT_FALSE(json_valid("{"));
    EXPECT_FALSE(json_valid("{\"a\":}"));
    EXPECT_FALSE(json_valid("[1,]"));
    EXPECT_FALSE(json_valid("{\"a\":1} trailing"));
    EXPECT_FALSE(json_valid("nan"));
}

TEST(Json, EscapeHandlesControlAndQuotes) {
    EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
    std::string wrapped = '"' + json_escape(std::string(1, '\x01')) + '"';
    EXPECT_TRUE(json_valid(wrapped)) << wrapped;
}

} // namespace
} // namespace factor::obs
