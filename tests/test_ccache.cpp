// Persistent constraint cache: crash-safety, corruption self-healing and
// concurrent-process coordination (DESIGN.md §13).
//
// The contract under test:
//   - a warm run is byte-identical to a cold run (same constraint Verilog,
//     zero fresh query expansions);
//   - every flavor of on-disk damage — truncation, bit flips, wrong
//     schema, wrong fingerprint, snapshots that do not bind to the design
//     — is quarantined with a named diagnostic and the run degrades to
//     cold extraction, never a crash or a wrong result;
//   - concurrent processes coordinate via advisory flock: a held lock
//     degrades to cache bypass after the timeout, and a publisher merges
//     the on-disk entry so concurrent campaigns converge to the union;
//   - capacity is bounded with oldest-first (LRU) eviction;
//   - the ccache.{read,write,lock} injection sites are contained.
//
// FACTOR_FUZZ_CORPUS_DIR is provided as a compile definition by
// tests/CMakeLists.txt and points at tests/fuzz/ in the source tree.
#include "helpers.hpp"

#include "cache/ccache.hpp"
#include "campaign/campaign.hpp"
#include "core/writer.hpp"
#include "designs/designs.hpp"
#include "obs/inject.hpp"
#include "obs/obs.hpp"
#include "util/journal.hpp"

#include <gtest/gtest.h>

#include <sys/file.h>

#include <fcntl.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>

namespace factor::test {
namespace {

using cache::CacheOptions;
using cache::ConstraintCache;
using core::ExtractionSession;
using core::GraphSnapshot;
using core::Mode;

class Ccache : public ::testing::Test {
  protected:
    void SetUp() override {
        obs::Registry::global().reset();
        dir_ = (std::filesystem::temp_directory_path() /
                ("factor_test_ccache_" +
                 std::string(::testing::UnitTest::GetInstance()
                                 ->current_test_info()
                                 ->name())))
                   .string();
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
    }

    void TearDown() override {
        obs::FaultInjector::global().disarm();
        std::filesystem::remove_all(dir_);
    }

    [[nodiscard]] CacheOptions opts() const {
        CacheOptions o;
        o.dir = dir_;
        return o;
    }

    /// Extract the mini_soc ALU through `cache` and return the constraint
    /// Verilog — the byte-level artifact warm and cold runs must agree on.
    [[nodiscard]] std::string run_alu(Bundle& b, ConstraintCache& cache,
                                      bool* warm = nullptr) {
        ExtractionSession session(*b.elaborated, Mode::Composed, b.diags);
        bool hit = cache.warm_start(session);
        if (warm != nullptr) *warm = hit;
        const auto* alu = b.elaborated->find_by_path("mini_soc.alu");
        EXPECT_NE(alu, nullptr);
        auto cs = session.extract(*alu);
        cache.absorb(session);
        core::ConstraintWriter writer(*b.elaborated, cs);
        return writer.write_verilog();
    }

    [[nodiscard]] std::string entry_path(const Bundle& b) const {
        return dir_ + "/" +
               ConstraintCache::fingerprint(*b.elaborated, {},
                                            Mode::Composed) +
               ".ccache";
    }

    [[nodiscard]] static std::string slurp(const std::string& path) {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream buf;
        buf << in.rdbuf();
        return buf.str();
    }

    std::string dir_;
};

// ---- snapshot + entry codec ---------------------------------------------

TEST_F(Ccache, SnapshotEncodeDecodeImportRoundTripIsByteStable) {
    auto b = compile(designs::mini_soc_source(), designs::kMiniSocTop);
    ASSERT_TRUE(b);
    ExtractionSession session(*b->elaborated, Mode::Composed, b->diags);
    const auto* alu = b->elaborated->find_by_path("mini_soc.alu");
    ASSERT_NE(alu, nullptr);
    (void)session.extract(*alu);

    GraphSnapshot snap = session.export_graph();
    ASSERT_FALSE(snap.empty());
    const std::string fp =
        ConstraintCache::fingerprint(*b->elaborated, {}, Mode::Composed);
    const std::string bytes = cache::encode_entry(fp, snap);

    // encode -> publish -> decode reproduces the snapshot exactly.
    const std::string path = dir_ + "/roundtrip.ccache";
    ASSERT_TRUE(util::atomic_publish(path, bytes));
    GraphSnapshot back;
    std::string why;
    ASSERT_TRUE(cache::decode_entry(path, fp, back, why)) << why;
    EXPECT_EQ(cache::encode_entry(fp, back), bytes);

    // import into a fresh session -> export reproduces it again: the
    // pointer <-> path/index mapping loses nothing.
    ExtractionSession fresh(*b->elaborated, Mode::Composed, b->diags);
    ASSERT_TRUE(fresh.import_graph(back));
    EXPECT_EQ(cache::encode_entry(fp, fresh.export_graph()), bytes);
}

TEST_F(Ccache, DecodeDistinguishesMissingFromDamage) {
    GraphSnapshot out;
    std::string why;
    bool missing = false;
    EXPECT_FALSE(cache::decode_entry(dir_ + "/absent.ccache", "x", out, why,
                                     &missing));
    EXPECT_TRUE(missing);

    const std::string path = dir_ + "/damaged.ccache";
    std::ofstream(path) << "definitely not a journal\n";
    missing = true;
    EXPECT_FALSE(cache::decode_entry(path, "x", out, why, &missing));
    EXPECT_FALSE(missing);
    EXPECT_FALSE(why.empty());
}

TEST_F(Ccache, FingerprintPinsDesignPiersAndMode) {
    auto b = compile(designs::mini_soc_source(), designs::kMiniSocTop);
    ASSERT_TRUE(b);
    const std::string base =
        ConstraintCache::fingerprint(*b->elaborated, {}, Mode::Composed);
    EXPECT_EQ(base.size(), 16u);
    EXPECT_EQ(base,
              ConstraintCache::fingerprint(*b->elaborated, {}, Mode::Composed));
    EXPECT_NE(base,
              ConstraintCache::fingerprint(*b->elaborated, {}, Mode::Flat));
    EXPECT_NE(base, ConstraintCache::fingerprint(*b->elaborated, {"acc"},
                                                 Mode::Composed));
    auto b2 = compile(designs::traffic_source(), designs::kTrafficTop);
    ASSERT_TRUE(b2);
    EXPECT_NE(base,
              ConstraintCache::fingerprint(*b2->elaborated, {}, Mode::Composed));
}

// ---- warm vs cold -------------------------------------------------------

TEST_F(Ccache, WarmRunIsByteIdenticalToColdRun) {
    auto b = compile(designs::mini_soc_source(), designs::kMiniSocTop);
    ASSERT_TRUE(b);

    ConstraintCache cold(opts(), b->diags);
    bool warm = true;
    const std::string cold_verilog = run_alu(*b, cold, &warm);
    EXPECT_FALSE(warm);
    EXPECT_EQ(cold.hits(), 0u);
    EXPECT_EQ(cold.misses(), 1u);
    ASSERT_TRUE(cold.publish());
    ASSERT_TRUE(std::filesystem::exists(entry_path(*b)));

    // A second process: fresh compile, fresh cache, same directory.
    auto b2 = compile(designs::mini_soc_source(), designs::kMiniSocTop);
    ASSERT_TRUE(b2);
    ConstraintCache warm_cache(opts(), b2->diags);
    ExtractionSession session(*b2->elaborated, Mode::Composed, b2->diags);
    ASSERT_TRUE(warm_cache.warm_start(session));
    EXPECT_EQ(warm_cache.hits(), 1u);
    const auto* alu = b2->elaborated->find_by_path("mini_soc.alu");
    ASSERT_NE(alu, nullptr);
    auto cs = session.extract(*alu);
    // Every query the walk needed was answered from the imported graph.
    EXPECT_EQ(session.total_cache_misses(), 0u);
    EXPECT_GT(session.total_cache_hits(), 0u);
    core::ConstraintWriter writer(*b2->elaborated, cs);
    EXPECT_EQ(writer.write_verilog(), cold_verilog);
    EXPECT_GT(obs::counter("ccache.hits").value(), 0u);

    // Nothing new to publish: the warm run learned no fresh expansions.
    warm_cache.absorb(session);
    EXPECT_FALSE(warm_cache.publish());
}

TEST_F(Ccache, FlatSessionsNeverEngageTheCache) {
    auto b = compile(designs::mini_soc_source(), designs::kMiniSocTop);
    ASSERT_TRUE(b);
    ConstraintCache cache(opts(), b->diags);
    ExtractionSession flat(*b->elaborated, Mode::Flat, b->diags);
    EXPECT_FALSE(cache.warm_start(flat));
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 0u);
}

TEST_F(Ccache, PublishMergesWithTheOnDiskEntry) {
    auto b = compile(designs::mini_soc_source(), designs::kMiniSocTop);
    ASSERT_TRUE(b);
    const std::string fp =
        ConstraintCache::fingerprint(*b->elaborated, {}, Mode::Composed);

    // Writer 1 publishes the ALU slice.
    ConstraintCache c1(opts(), b->diags);
    (void)run_alu(*b, c1);
    ASSERT_TRUE(c1.publish());
    GraphSnapshot after1;
    std::string why;
    ASSERT_TRUE(cache::decode_entry(entry_path(*b), fp, after1, why)) << why;

    // Writer 2 never saw writer 1's in-memory state: it warm-starts from
    // disk, extracts a different MUT, and publishes. The entry must grow
    // to the union, not flip to writer 2's view.
    ConstraintCache c2(opts(), b->diags);
    ExtractionSession s2(*b->elaborated, Mode::Composed, b->diags);
    ASSERT_TRUE(c2.warm_start(s2));
    const auto* ctrl = b->elaborated->find_by_path("mini_soc.ctrl");
    ASSERT_NE(ctrl, nullptr);
    (void)s2.extract(*ctrl);
    c2.absorb(s2);
    if (c2.publish()) {
        GraphSnapshot after2;
        ASSERT_TRUE(cache::decode_entry(entry_path(*b), fp, after2, why))
            << why;
        EXPECT_GE(after2.nodes.size(), after1.nodes.size());
    }
}

// ---- corruption self-healing --------------------------------------------

TEST_F(Ccache, TruncatedEntryQuarantinesAndRunSelfHeals) {
    auto b = compile(designs::mini_soc_source(), designs::kMiniSocTop);
    ASSERT_TRUE(b);
    ConstraintCache cold(opts(), b->diags);
    const std::string cold_verilog = run_alu(*b, cold);
    ASSERT_TRUE(cold.publish());

    // Chop the tail: the journal still loads (torn-tail tolerance), but
    // the footer is gone, so the entry must be treated as corrupt.
    const std::string path = entry_path(*b);
    auto size = std::filesystem::file_size(path);
    std::filesystem::resize_file(path, size / 2);

    ConstraintCache healed(opts(), b->diags);
    bool warm = true;
    const std::string verilog = run_alu(*b, healed, &warm);
    EXPECT_FALSE(warm);
    EXPECT_EQ(verilog, cold_verilog); // degraded, not different
    EXPECT_GE(obs::counter("ccache.quarantined").value(), 1u);
    EXPECT_FALSE(std::filesystem::exists(path));
    EXPECT_FALSE(std::filesystem::is_empty(dir_ + "/quarantine"));

    // The run that hit the damage republishes a valid entry (self-heal).
    ASSERT_TRUE(healed.publish());
    GraphSnapshot back;
    std::string why;
    EXPECT_TRUE(cache::decode_entry(
        path, ConstraintCache::fingerprint(*b->elaborated, {}, Mode::Composed),
        back, why))
        << why;
}

TEST_F(Ccache, BitFlippedEntryQuarantines) {
    auto b = compile(designs::mini_soc_source(), designs::kMiniSocTop);
    ASSERT_TRUE(b);
    ConstraintCache cold(opts(), b->diags);
    const std::string cold_verilog = run_alu(*b, cold);
    ASSERT_TRUE(cold.publish());

    const std::string path = entry_path(*b);
    std::string bytes = slurp(path);
    bytes[bytes.size() / 2] ^= 0x20;
    std::ofstream(path, std::ios::binary) << bytes;

    ConstraintCache healed(opts(), b->diags);
    bool warm = true;
    EXPECT_EQ(run_alu(*b, healed, &warm), cold_verilog);
    EXPECT_FALSE(warm);
    EXPECT_GE(obs::counter("ccache.quarantined").value(), 1u);
    EXPECT_FALSE(std::filesystem::exists(path));
}

TEST_F(Ccache, WrongFingerprintEntryQuarantines) {
    auto b = compile(designs::mini_soc_source(), designs::kMiniSocTop);
    ASSERT_TRUE(b);
    ExtractionSession session(*b->elaborated, Mode::Composed, b->diags);
    const auto* alu = b->elaborated->find_by_path("mini_soc.alu");
    ASSERT_NE(alu, nullptr);
    (void)session.extract(*alu);

    // A structurally valid entry written under this design's address but
    // carrying another fingerprint — e.g. a hash collision in a shared
    // directory, or a renamed file. It must not warm-start.
    ASSERT_TRUE(util::atomic_publish(
        entry_path(*b),
        cache::encode_entry("0123456789abcdef", session.export_graph())));

    ConstraintCache cache(opts(), b->diags);
    ExtractionSession fresh(*b->elaborated, Mode::Composed, b->diags);
    EXPECT_FALSE(cache.warm_start(fresh));
    EXPECT_GE(obs::counter("ccache.quarantined").value(), 1u);
    EXPECT_FALSE(std::filesystem::exists(entry_path(*b)));
}

TEST_F(Ccache, SnapshotThatDoesNotBindQuarantines) {
    auto b = compile(designs::mini_soc_source(), designs::kMiniSocTop);
    ASSERT_TRUE(b);
    ExtractionSession session(*b->elaborated, Mode::Composed, b->diags);
    const auto* alu = b->elaborated->find_by_path("mini_soc.alu");
    ASSERT_NE(alu, nullptr);
    (void)session.extract(*alu);

    // Valid framing, valid digest, correct fingerprint — but one node
    // names an instance path that does not exist. The all-or-nothing
    // import must reject it and the cache must quarantine.
    GraphSnapshot snap = session.export_graph();
    ASSERT_FALSE(snap.empty());
    snap.nodes.front().key.path = "ghost.instance";
    const std::string fp =
        ConstraintCache::fingerprint(*b->elaborated, {}, Mode::Composed);
    ASSERT_TRUE(
        util::atomic_publish(entry_path(*b), cache::encode_entry(fp, snap)));

    ConstraintCache cache(opts(), b->diags);
    ExtractionSession fresh(*b->elaborated, Mode::Composed, b->diags);
    EXPECT_FALSE(cache.warm_start(fresh));
    // The session is untouched by the failed import: cold extraction runs.
    auto cs = fresh.extract(*alu);
    EXPECT_GT(cs.item_count(), 0u);
    EXPECT_GE(obs::counter("ccache.quarantined").value(), 1u);
    EXPECT_FALSE(std::filesystem::exists(entry_path(*b)));
}

TEST_F(Ccache, FuzzCorpusEntriesAreNeverAcceptedAndNeverFailTheRun) {
    const std::filesystem::path corpus = FACTOR_FUZZ_CORPUS_DIR;
    ASSERT_TRUE(std::filesystem::is_directory(corpus));

    auto b = compile(designs::mini_soc_source(), designs::kMiniSocTop);
    ASSERT_TRUE(b);
    ConstraintCache cold(opts(), b->diags);
    const std::string cold_verilog = run_alu(*b, cold);
    ASSERT_TRUE(cold.publish());
    const std::string path = entry_path(*b);

    size_t checked = 0;
    for (const auto& entry : std::filesystem::directory_iterator(corpus)) {
        if (entry.path().extension() != ".ccache") continue;
        ++checked;
        SCOPED_TRACE(entry.path().string());

        // The decoder refuses every corpus file with a named reason. The
        // corpus headers carry fingerprint feedfacefeedface so that files
        // exercising deeper checks (footer counts, digest, record shape)
        // get past the fingerprint gate.
        GraphSnapshot out;
        std::string why;
        bool accepted = true;
        EXPECT_NO_THROW(accepted = cache::decode_entry(
                            entry.path().string(), "feedfacefeedface", out,
                            why));
        EXPECT_FALSE(accepted) << "corpus entry accepted";
        EXPECT_FALSE(why.empty());

        // End to end: drop the damage over the real entry; the run must
        // quarantine, degrade to cold extraction and produce identical
        // results, never crash.
        std::filesystem::copy_file(
            entry.path(), path,
            std::filesystem::copy_options::overwrite_existing);
        ConstraintCache cache(opts(), b->diags);
        bool warm = true;
        std::string verilog;
        EXPECT_NO_THROW(verilog = run_alu(*b, cache, &warm));
        EXPECT_FALSE(warm);
        EXPECT_EQ(verilog, cold_verilog);
        EXPECT_FALSE(std::filesystem::exists(path));
    }
    EXPECT_GE(checked, 8u) << "ccache fuzz corpus unexpectedly small";
}

// ---- concurrency --------------------------------------------------------

TEST_F(Ccache, HeldLockDegradesToBypassNeverAStall) {
    auto b = compile(designs::mini_soc_source(), designs::kMiniSocTop);
    ASSERT_TRUE(b);
    ConstraintCache cold(opts(), b->diags);
    (void)run_alu(*b, cold);
    ASSERT_TRUE(cold.publish());
    const std::string before = slurp(entry_path(*b));

    // Another "process" holds the exclusive lock. flock is per open file
    // description, so a second fd in this process genuinely contends.
    int fd = ::open((dir_ + "/.ccache.lock").c_str(), O_RDWR | O_CREAT, 0644);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::flock(fd, LOCK_EX), 0);

    CacheOptions o = opts();
    o.lock_timeout_ms = 50;
    ConstraintCache blocked(o, b->diags);
    bool warm = true;
    const std::string verilog = run_alu(*b, blocked, &warm);
    EXPECT_FALSE(warm); // bypassed, not served and not stuck
    EXPECT_FALSE(blocked.publish());
    EXPECT_GE(obs::counter("ccache.lock_waits").value(), 1u);
    EXPECT_GE(obs::counter("ccache.bypassed").value(), 2u);
    EXPECT_EQ(slurp(entry_path(*b)), before); // entry untouched

    ::flock(fd, LOCK_UN);
    ::close(fd);

    // Lock released: the same directory warm-starts again.
    ConstraintCache after(opts(), b->diags);
    ExtractionSession session(*b->elaborated, Mode::Composed, b->diags);
    EXPECT_TRUE(after.warm_start(session));
    (void)verilog;
}

TEST_F(Ccache, CampaignShardsShareTheCacheAndStayIdentical) {
    auto b = compile(designs::mini_soc_source(), designs::kMiniSocTop);
    ASSERT_TRUE(b);

    campaign::CampaignOptions copts;
    copts.spec = "all";
    copts.engine.max_backtracks = 200;

    ConstraintCache cold(opts(), b->diags);
    copts.ccache = &cold;
    auto cold_run = campaign::run_campaign(*b->elaborated, copts);
    ASSERT_FALSE(cold_run.refused) << cold_run.refusal;
    ASSERT_TRUE(cold.publish());

    ConstraintCache warm(opts(), b->diags);
    copts.ccache = &warm;
    auto warm_run = campaign::run_campaign(*b->elaborated, copts);
    ASSERT_FALSE(warm_run.refused) << warm_run.refusal;
    EXPECT_GT(warm.hits(), 0u);

    // Every shard's stable row is identical warm vs cold.
    ASSERT_EQ(warm_run.shards.size(), cold_run.shards.size());
    for (size_t i = 0; i < cold_run.shards.size(); ++i) {
        EXPECT_EQ(warm_run.shards[i].doc(false).to_json(),
                  cold_run.shards[i].doc(false).to_json())
            << "shard " << i;
    }
}

// ---- eviction -----------------------------------------------------------

TEST_F(Ccache, EvictionRemovesOldestEntriesFirst) {
    auto b = compile(designs::mini_soc_source(), designs::kMiniSocTop);
    ASSERT_TRUE(b);

    // Two stale neighbor entries, 200 KiB each, with distinct old mtimes.
    const std::string oldest = dir_ + "/0000000000000001.ccache";
    const std::string newer = dir_ + "/0000000000000002.ccache";
    std::ofstream(oldest) << std::string(200 << 10, 'a');
    std::ofstream(newer) << std::string(200 << 10, 'b');
    auto now = std::filesystem::last_write_time(newer);
    std::filesystem::last_write_time(oldest, now - std::chrono::hours(2));
    std::filesystem::last_write_time(newer, now - std::chrono::hours(1));

    CacheOptions o = opts();
    o.max_bytes = 300 << 10;
    ConstraintCache cache(o, b->diags);
    (void)run_alu(*b, cache);
    ASSERT_TRUE(cache.publish());

    // The publish overflowed the budget: the oldest entry goes first, and
    // eviction stops as soon as the directory fits.
    EXPECT_FALSE(std::filesystem::exists(oldest));
    EXPECT_TRUE(std::filesystem::exists(newer));
    EXPECT_TRUE(std::filesystem::exists(entry_path(*b)));
    EXPECT_EQ(obs::counter("ccache.evicted").value(), 1u);
}

// ---- fault injection ----------------------------------------------------

TEST_F(Ccache, InjectedReadFaultBypassesWithoutQuarantine) {
    auto b = compile(designs::mini_soc_source(), designs::kMiniSocTop);
    ASSERT_TRUE(b);
    ConstraintCache cold(opts(), b->diags);
    const std::string cold_verilog = run_alu(*b, cold);
    ASSERT_TRUE(cold.publish());

    obs::FaultInjector::global().configure("ccache.read");
    ConstraintCache cache(opts(), b->diags);
    bool warm = true;
    EXPECT_EQ(run_alu(*b, cache, &warm), cold_verilog);
    EXPECT_FALSE(warm);
    EXPECT_FALSE(obs::FaultInjector::global().armed()); // it fired
    EXPECT_GE(obs::counter("ccache.bypassed").value(), 1u);
    // An I/O error is not damage: the entry is left in place for the next
    // run, not quarantined.
    EXPECT_TRUE(std::filesystem::exists(entry_path(*b)));
    EXPECT_EQ(obs::counter("ccache.quarantined").value(), 0u);
}

TEST_F(Ccache, InjectedWriteFaultLosesTheCacheNotTheRun) {
    auto b = compile(designs::mini_soc_source(), designs::kMiniSocTop);
    ASSERT_TRUE(b);
    ConstraintCache cache(opts(), b->diags);
    (void)run_alu(*b, cache);
    obs::FaultInjector::global().configure("ccache.write");
    EXPECT_FALSE(cache.publish());
    EXPECT_FALSE(obs::FaultInjector::global().armed());
    EXPECT_FALSE(std::filesystem::exists(entry_path(*b)));
}

TEST_F(Ccache, InjectedLockFaultBypasses) {
    auto b = compile(designs::mini_soc_source(), designs::kMiniSocTop);
    ASSERT_TRUE(b);
    ConstraintCache cold(opts(), b->diags);
    (void)run_alu(*b, cold);
    ASSERT_TRUE(cold.publish());

    obs::FaultInjector::global().configure("ccache.lock");
    ConstraintCache cache(opts(), b->diags);
    ExtractionSession session(*b->elaborated, Mode::Composed, b->diags);
    EXPECT_FALSE(cache.warm_start(session));
    EXPECT_GE(obs::counter("ccache.bypassed").value(), 1u);
}

// ---- directory probing --------------------------------------------------

TEST_F(Ccache, ProbeDirCreatesAndRefusesByName) {
    std::string why;
    EXPECT_TRUE(ConstraintCache::probe_dir(dir_ + "/sub", &why)) << why;
    EXPECT_TRUE(std::filesystem::is_directory(dir_ + "/sub"));
    EXPECT_FALSE(ConstraintCache::probe_dir("/nonexistent/x/y", &why));
    EXPECT_FALSE(why.empty());
    // A file where the directory should be.
    std::ofstream(dir_ + "/plain") << "x";
    EXPECT_FALSE(ConstraintCache::probe_dir(dir_ + "/plain", &why));
}

} // namespace
} // namespace factor::test
