// Differential property suite for the fault-simulation kernels
// (DESIGN.md §11). The legacy 64-bit full-sweep kernel is kept in the
// tree as an independent reference; this suite proves, on every builtin
// design, that
//
//   * the width-parameterized VWide<W> ops agree with V64 word by word,
//   * the wide full-sweep kernel, the event-driven kernel and the legacy
//     reference produce identical detection masks (full ≡ event, and
//     width 64 ≡ 256 ≡ 512 on shared lanes),
//   * detects() is exactly detect_mask().any() in every mode,
//   * the event kernel does strictly less gate-evaluation work than the
//     full sweep on the big processor core (the bench smoke assertion),
//   * SimMode never changes engine results, and
//   * a checkpoint written at one resolved sim width refuses to resume at
//     another (the width is part of the random-pattern trajectory).
#include "helpers.hpp"

#include "atpg/engine.hpp"
#include "atpg/fault.hpp"
#include "atpg/fault_sim.hpp"
#include "designs/designs.hpp"
#include "obs/obs.hpp"
#include "util/diagnostics.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

namespace factor::test {
namespace {

using atpg::DetectMask;
using atpg::FanoutCones;
using atpg::Fault;
using atpg::FaultList;
using atpg::FaultSimulator;
using atpg::Frame;
using atpg::Sequence;
using atpg::SimMode;
using atpg::V5;
using atpg::V64;
using atpg::VWide;
using atpg::broadcast;
using atpg::default_sim_words;
using atpg::is_supported_sim_words;

// ---- VWide semantics ----------------------------------------------------

/// A valid three-valued plane pair: one & zero must be 0.
V64 rand_v64(std::mt19937_64& rng) {
    uint64_t a = rng();
    uint64_t b = rng();
    return V64{a & ~b, b & ~a};
}

TEST(SimKernel, VWideOpsMatchV64WordByWord) {
    std::mt19937_64 rng(0xc0ffee);
    constexpr size_t W = 4;
    for (int iter = 0; iter < 200; ++iter) {
        VWide<W> a, b, s;
        for (size_t w = 0; w < W; ++w) {
            V64 av = rand_v64(rng), bv = rand_v64(rng), sv = rand_v64(rng);
            a.one[w] = av.one; a.zero[w] = av.zero;
            b.one[w] = bv.one; b.zero[w] = bv.zero;
            s.one[w] = sv.one; s.zero[w] = sv.zero;
        }
        VWide<W> n = v_not(a), c = v_and(a, b), o = v_or(a, b),
                 x = v_xor(a, b), m = v_mux(s, a, b);
        for (size_t w = 0; w < W; ++w) {
            SCOPED_TRACE("word " + std::to_string(w));
            EXPECT_EQ(n.word(w), v_not(a.word(w)));
            EXPECT_EQ(c.word(w), v_and(a.word(w), b.word(w)));
            EXPECT_EQ(o.word(w), v_or(a.word(w), b.word(w)));
            EXPECT_EQ(x.word(w), v_xor(a.word(w), b.word(w)));
            EXPECT_EQ(m.word(w), v_mux(s.word(w), a.word(w), b.word(w)));
        }
    }
}

TEST(SimKernel, WidthAndModeResolution) {
    EXPECT_EQ(atpg::resolve_sim_words(64), 1u);
    EXPECT_EQ(atpg::resolve_sim_words(256), 4u);
    EXPECT_EQ(atpg::resolve_sim_words(512), 8u);
    EXPECT_THROW((void)atpg::resolve_sim_words(128), util::FactorError);
    // 0 = auto; whatever it resolves to must name a real kernel.
    EXPECT_TRUE(is_supported_sim_words(atpg::resolve_sim_words(0)));
    EXPECT_TRUE(is_supported_sim_words(default_sim_words()));
    EXPECT_EQ(atpg::resolve_sim_mode(SimMode::Full), SimMode::Full);
    EXPECT_EQ(atpg::resolve_sim_mode(SimMode::Event), SimMode::Event);
}

// ---- differential identity over the builtin designs ---------------------

struct DesignCase {
    const char* name;
    const char* (*source)();
    const char* top;
    size_t fault_stride; // subsample big fault lists
};

void PrintTo(const DesignCase& d, std::ostream* os) { *os << d.name; }

class KernelDiff : public ::testing::TestWithParam<DesignCase> {};

/// Lane words w of a wide sequence as a standalone 64-lane sequence.
Sequence slice_word(const Sequence& seq, size_t w) {
    Sequence out;
    out.reserve(seq.size());
    for (const Frame& f : seq) {
        Frame s;
        s.words = 1;
        const size_t pis = f.pi.size() / f.words;
        s.pi.reserve(pis);
        for (size_t i = 0; i < pis; ++i) s.pi.push_back(f.pi[i * f.words + w]);
        out.push_back(std::move(s));
    }
    return out;
}

TEST_P(KernelDiff, FullEventAndLegacyMasksAgree) {
    const DesignCase& dc = GetParam();
    auto b = compile(dc.source(), dc.top);
    ASSERT_TRUE(b);
    auto nl = synthesize(*b);
    FaultList list(nl);
    ASSERT_GT(list.faults().size(), 0u);

    constexpr size_t kWords = 4; // 256-bit lanes
    constexpr size_t kFrames = 5;
    auto cones = std::make_shared<FanoutCones>(nl);
    FaultSimulator full(nl, FaultSimulator::Config{kWords, SimMode::Full, {}});
    FaultSimulator event(nl,
                         FaultSimulator::Config{kWords, SimMode::Event, cones});
    FaultSimulator legacy(nl);

    std::mt19937_64 rng(0x5eed);
    Sequence seq = full.random_sequence(rng, kFrames);
    auto good = full.simulate_good_cached(seq);
    ASSERT_EQ(good->words, kWords);

    // Per-word 64-lane views for the legacy reference kernel.
    std::vector<Sequence> slices;
    std::vector<std::vector<std::vector<V64>>> slice_po;
    for (size_t w = 0; w < kWords; ++w) {
        slices.push_back(slice_word(seq, w));
        slice_po.push_back(legacy.simulate_good(slices[w]));
    }

    size_t checked = 0, detected = 0;
    for (size_t i = 0; i < list.faults().size(); i += dc.fault_stride) {
        const Fault& f = list.faults()[i].fault;
        SCOPED_TRACE("fault #" + std::to_string(i) + " " +
                     list.faults()[i].describe(nl));
        DetectMask mf = full.detect_mask(f, seq, *good);
        DetectMask me = event.detect_mask(f, seq, *good);
        EXPECT_EQ(mf, me);
        EXPECT_EQ(event.detects(f, seq, *good), me.any());
        EXPECT_EQ(full.detects(f, seq, *good), mf.any());
        for (size_t w = 0; w < kWords; ++w) {
            EXPECT_EQ(mf.bits[w], legacy.detect_mask(f, slices[w], slice_po[w]))
                << "lane word " << w;
        }
        ++checked;
        if (me.any()) ++detected;
    }
    // The suite must actually exercise both detecting and missing lanes.
    EXPECT_GT(checked, 0u);
    EXPECT_GT(detected, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllDesigns, KernelDiff,
    ::testing::Values(
        DesignCase{"counter8", designs::counter_source, designs::kCounterTop,
                   1},
        DesignCase{"traffic", designs::traffic_source, designs::kTrafficTop,
                   1},
        DesignCase{"fir4", designs::fir4_source, designs::kFir4Top, 3},
        DesignCase{"mini_soc", designs::mini_soc_source, designs::kMiniSocTop,
                   7},
        DesignCase{"arm2z", designs::arm2z_source, designs::kArm2zTop, 97}),
    [](const ::testing::TestParamInfo<DesignCase>& info) {
        return std::string(info.param.name);
    });

TEST(SimKernel, SharedLanePrefixAgreesAcrossWidths) {
    auto b = compile(designs::mini_soc_source(), designs::kMiniSocTop);
    ASSERT_TRUE(b);
    auto nl = synthesize(*b);
    FaultList list(nl);

    FaultSimulator wide8(nl, FaultSimulator::Config{8, SimMode::Event, {}});
    FaultSimulator wide4(nl, FaultSimulator::Config{4, SimMode::Event, {}});

    std::mt19937_64 rng(0xabcdef);
    Sequence seq8 = wide8.random_sequence(rng, 4);
    // The first 4 lane words of the 512-bit stimulus, as a 256-bit one.
    Sequence seq4;
    for (const Frame& f : seq8) {
        Frame s;
        s.words = 4;
        const size_t pis = f.pi.size() / f.words;
        for (size_t i = 0; i < pis; ++i) {
            for (size_t w = 0; w < 4; ++w) s.pi.push_back(f.pi[i * 8 + w]);
        }
        seq4.push_back(std::move(s));
    }
    auto good8 = wide8.simulate_good_cached(seq8);
    auto good4 = wide4.simulate_good_cached(seq4);
    ASSERT_EQ(good8->words, 8u);
    ASSERT_EQ(good4->words, 4u);

    for (size_t i = 0; i < list.faults().size(); i += 11) {
        const Fault& f = list.faults()[i].fault;
        SCOPED_TRACE("fault #" + std::to_string(i));
        DetectMask m8 = wide8.detect_mask(f, seq8, *good8);
        DetectMask m4 = wide4.detect_mask(f, seq4, *good4);
        for (size_t w = 0; w < 4; ++w) {
            EXPECT_EQ(m8.bits[w], m4.bits[w]) << "lane word " << w;
        }
    }
}

TEST(SimKernel, BroadcastSequencesCostOneLaneWord) {
    auto b = compile(designs::counter_source(), designs::kCounterTop);
    ASSERT_TRUE(b);
    auto nl = synthesize(*b);
    FaultSimulator sim(nl, FaultSimulator::Config{8, SimMode::Event, {}});
    atpg::ScalarSequence s;
    s.frames.assign(3, std::vector<V5>(nl.inputs().size(), V5::One));
    auto good = sim.simulate_good_cached(broadcast(s, nl.inputs().size()));
    // A scalar test only occupies lane 0; the 512-bit simulator must do
    // 64-bit work for it, not 8x.
    EXPECT_EQ(good->words, 1u);
}

// ---- event kernel does less work (the bench smoke assertion) ------------

TEST(SimKernel, EventModeSkipsWorkOnArm2z) {
    auto b = compile(designs::arm2z_source(), designs::kArm2zTop);
    ASSERT_TRUE(b);
    auto nl = synthesize(*b);

    auto& evals = obs::counter("fault_sim.gate_evals");
    auto& skipped = obs::counter("fault_sim.events_skipped");

    std::mt19937_64 rng(0x7777);
    auto run = [&](SimMode mode) {
        FaultList list(nl);
        FaultSimulator sim(nl, FaultSimulator::Config{1, mode, {}});
        std::mt19937_64 r = rng; // same stimulus for both modes
        Sequence seq = sim.random_sequence(r, 6);
        uint64_t before = evals.value();
        size_t dropped = sim.run_and_drop(list, seq);
        return std::pair<uint64_t, size_t>(evals.value() - before, dropped);
    };

    uint64_t skipped_before = skipped.value();
    auto [full_evals, full_dropped] = run(SimMode::Full);
    auto [event_evals, event_dropped] = run(SimMode::Event);

    // Identical detections, strictly less gate-evaluation work.
    EXPECT_EQ(full_dropped, event_dropped);
    ASSERT_GT(full_evals, 0u);
    EXPECT_LT(event_evals, full_evals);
    EXPECT_GT(skipped.value(), skipped_before);
}

// ---- engine-level invariants --------------------------------------------

void expect_identical(const atpg::EngineResult& a,
                      const atpg::EngineResult& b) {
    EXPECT_EQ(a.total_faults, b.total_faults);
    EXPECT_EQ(a.detected, b.detected);
    EXPECT_EQ(a.untestable, b.untestable);
    EXPECT_EQ(a.aborted, b.aborted);
    EXPECT_EQ(a.coverage_percent, b.coverage_percent);
    EXPECT_EQ(a.efficiency_percent, b.efficiency_percent);
    EXPECT_EQ(a.random_sequences, b.random_sequences);
    EXPECT_EQ(a.deterministic_tests, b.deterministic_tests);
    EXPECT_EQ(a.status, b.status);
    ASSERT_EQ(a.tests.size(), b.tests.size());
    for (size_t i = 0; i < a.tests.size(); ++i) {
        EXPECT_EQ(a.tests[i], b.tests[i]) << "test vector " << i << " differs";
    }
}

TEST(SimKernel, EngineModeNeverChangesResults) {
    auto b = compile(designs::mini_soc_source(), designs::kMiniSocTop);
    ASSERT_TRUE(b);
    auto nl = synthesize(*b);

    atpg::EngineOptions opts;
    opts.collect_tests = true;
    opts.max_backtracks = 200;
    opts.jobs = 2;
    opts.sim_width = 256;

    opts.sim_mode = SimMode::Full;
    auto full = atpg::run_atpg(nl, opts);
    EXPECT_EQ(full.sim_width_bits, 256u);

    opts.sim_mode = SimMode::Event;
    auto event = atpg::run_atpg(nl, opts);
    EXPECT_EQ(event.sim_width_bits, 256u);
    expect_identical(full, event);
}

TEST(SimKernel, CheckpointRefusesResumeAtDifferentWidth) {
    auto b = compile(designs::counter_source(), designs::kCounterTop);
    ASSERT_TRUE(b);
    auto nl = synthesize(*b);

    const std::string path =
        (std::filesystem::temp_directory_path() / "factor_test_simw.ckpt")
            .string();
    std::remove(path.c_str());

    atpg::EngineOptions opts;
    opts.jobs = 1;
    opts.checkpoint_path = path;
    opts.sim_width = 64;
    auto first = atpg::run_atpg(nl, opts);
    ASSERT_FALSE(first.resume_refused);

    // The resolved width shapes the random-pattern trajectory, so it is
    // fingerprinted: resuming the journal at 256 bits must refuse.
    opts.resume = true;
    opts.sim_width = 256;
    auto resumed = atpg::run_atpg(nl, opts);
    EXPECT_TRUE(resumed.resume_refused);
    EXPECT_NE(resumed.status_detail.find("ckpt."), std::string::npos)
        << resumed.status_detail;

    // Same width resumes cleanly.
    opts.sim_width = 64;
    auto same = atpg::run_atpg(nl, opts);
    EXPECT_FALSE(same.resume_refused);
    std::remove(path.c_str());
}

} // namespace
} // namespace factor::test
