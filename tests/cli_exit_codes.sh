#!/usr/bin/env bash
# End-to-end check of the factor CLI's documented exit-code taxonomy:
#   0 ok (including degraded)   1 input error   2 usage
#   3 budget/interrupt          4 internal (FactorError at a phase boundary)
#   5 partial campaign (>=1 shard failed/crashed AND >=1 succeeded)
# and that --stats-json lands on every exit path, with per-phase statuses.
#
# Usage: cli_exit_codes.sh <path-to-factor-binary>
set -u

FACTOR=${1:?usage: cli_exit_codes.sh <factor-binary>}
TMP=$(mktemp -d "${TEST_TMPDIR:-${TMPDIR:-/tmp}}/factor_cli.XXXXXXXX")
trap 'rm -rf "$TMP"' EXIT

fails=0

check_rc() { # <label> <expected-rc> <actual-rc>
  if [ "$3" -ne "$2" ]; then
    echo "FAIL: $1: expected exit $2, got $3" >&2
    fails=$((fails + 1))
  else
    echo "ok: $1 (exit $3)"
  fi
}

check_json() { # <label> <file> <needle>...
  local label=$1 file=$2
  shift 2
  if [ ! -s "$file" ]; then
    echo "FAIL: $label: stats JSON '$file' missing or empty" >&2
    fails=$((fails + 1))
    return
  fi
  for needle in "$@"; do
    if ! grep -q -- "$needle" "$file"; then
      echo "FAIL: $label: stats JSON lacks '$needle'" >&2
      echo "  contents: $(cat "$file")" >&2
      fails=$((fails + 1))
    fi
  done
}

# --- happy path: exit 0 and a well-formed stats doc -------------------------
"$FACTOR" atpg --builtin=counter8 --stats-json="$TMP/ok.json" >/dev/null 2>&1
check_rc "clean atpg run" 0 $?
check_json "clean atpg run" "$TMP/ok.json" \
  '"schema":"factor.stats.v1"' '"phases":' '"status":"ok"' \
  '"phase":"atpg"' '"interrupted":false'

# --- usage errors: exit 2, stats still written ------------------------------
"$FACTOR" frobnicate --builtin=counter8 \
  --stats-json="$TMP/usage.json" >/dev/null 2>&1
check_rc "unknown command" 2 $?
check_json "unknown command" "$TMP/usage.json" '"exit_code":2'

"$FACTOR" >/dev/null 2>&1
check_rc "no arguments" 2 $?

"$FACTOR" atpg --builtin=counter8 --bogus-flag >/dev/null 2>&1
check_rc "unknown option" 2 $?

# --- input errors: exit 1, stats still written ------------------------------
"$FACTOR" parse top /nonexistent/missing.v \
  --stats-json="$TMP/missing.json" >/dev/null 2>&1
check_rc "missing input file" 1 $?
check_json "missing input file" "$TMP/missing.json" \
  '"phase":"load"' '"status":"failed"'

"$FACTOR" atpg nonsuch.path --builtin=counter8 >/dev/null 2>&1
check_rc "unknown instance path" 1 $?

# --- budget exhaustion: exit 3, partial results in the stats doc ------------
"$FACTOR" atpg --builtin=mini_soc --work-quota=3 \
  --stats-json="$TMP/budget.json" >/dev/null 2>&1
check_rc "tiny work quota" 3 $?
check_json "tiny work quota" "$TMP/budget.json" \
  '"exit_code":3' '"status":"budget_exhausted"'

# --- injection sites: documented exit codes, never a crash ------------------
FACTOR_INJECT_FAULT=elab.build_tree "$FACTOR" parse --builtin=counter8 \
  --stats-json="$TMP/inj_elab.json" >/dev/null 2>&1
check_rc "inject elab.build_tree" 4 $?
check_json "inject elab.build_tree" "$TMP/inj_elab.json" \
  '"status":"failed"' 'injected fault'

FACTOR_INJECT_FAULT=cli.load "$FACTOR" parse --builtin=counter8 \
  --stats-json="$TMP/inj_load.json" >/dev/null 2>&1
check_rc "inject cli.load" 4 $?
check_json "inject cli.load" "$TMP/inj_load.json" '"phase":"load"'

# Composed extraction degrades to flat: run completes, exit 0, status
# "degraded" recorded in the phases array.
FACTOR_INJECT_FAULT=extract.expand "$FACTOR" extract mini_soc mini_soc.alu \
  --builtin=mini_soc --mode=composed \
  --stats-json="$TMP/inj_degrade.json" >/dev/null 2>&1
check_rc "inject extract.expand (composed degrades)" 0 $?
check_json "inject extract.expand (composed degrades)" \
  "$TMP/inj_degrade.json" '"status":"degraded"' 'fell back to flat'

# Flat extraction has no fallback: the phase fails (exit 4).
FACTOR_INJECT_FAULT=extract.expand "$FACTOR" extract mini_soc mini_soc.alu \
  --builtin=mini_soc --mode=flat \
  --stats-json="$TMP/inj_flat.json" >/dev/null 2>&1
check_rc "inject extract.expand (flat fails)" 4 $?
check_json "inject extract.expand (flat fails)" "$TMP/inj_flat.json" \
  '"status":"failed"'

FACTOR_INJECT_FAULT=transform.build "$FACTOR" atpg mini_soc mini_soc.alu \
  --builtin=mini_soc --stats-json="$TMP/inj_tf.json" >/dev/null 2>&1
check_rc "inject transform.build" 4 $?
check_json "inject transform.build" "$TMP/inj_tf.json" '"exit_code":4'

# ATPG contains a PODEM failure per fault: run completes degraded, exit 0.
FACTOR_INJECT_FAULT=atpg.podem "$FACTOR" atpg --builtin=counter8 \
  --stats-json="$TMP/inj_podem.json" >/dev/null 2>&1
check_rc "inject atpg.podem (contained)" 0 $?
check_json "inject atpg.podem (contained)" "$TMP/inj_podem.json" \
  '"phase":"atpg"'

# --- campaigns: exit 0 clean, 5 partial, 3 budget, 1 refusal, 2 usage -------
"$FACTOR" atpg --builtin=mini_soc --campaign=all \
  --campaign-report="$TMP/camp.json" \
  --stats-json="$TMP/camp_stats.json" >/dev/null 2>&1
check_rc "clean campaign" 0 $?
check_json "clean campaign" "$TMP/camp.json" \
  '"schema":"factor.campaign.v1"' '"shards_ok":2' '"status":"ok"'
check_json "clean campaign stats" "$TMP/camp_stats.json" \
  '"phase":"campaign"'

# One shard crashes (injected), the other succeeds: the distinct partial
# exit code, with both the crash and the survivor classified in the report.
FACTOR_INJECT_FAULT=campaign.shard_start.mini_soc.ctrl \
  "$FACTOR" atpg --builtin=mini_soc --campaign=all \
  --campaign-report="$TMP/camp_partial.json" >/dev/null 2>&1
check_rc "partial campaign (one shard crashed)" 5 $?
check_json "partial campaign" "$TMP/camp_partial.json" \
  '"shards_crashed":1' '"shards_ok":1' '"status":"failed"' 'injected fault'

# Every shard out of budget: the plain budget exit code, not partial.
"$FACTOR" atpg --builtin=mini_soc --campaign=all --work-quota=4 \
  --shard-retries=0 >/dev/null 2>&1
check_rc "campaign all shards out of budget" 3 $?

"$FACTOR" atpg --builtin=mini_soc --campaign=mini_soc.nope >/dev/null 2>&1
check_rc "campaign unknown MUT path" 1 $?

"$FACTOR" atpg mini_soc mini_soc.alu --builtin=mini_soc \
  --campaign=all >/dev/null 2>&1
check_rc "campaign with positional MUT path" 2 $?

"$FACTOR" extract mini_soc mini_soc.alu --builtin=mini_soc \
  --campaign=all >/dev/null 2>&1
check_rc "campaign outside atpg command" 2 $?

# --- persistent constraint cache: warm hit, corruption degrades, refusal ----
CC="$TMP/cc"
"$FACTOR" extract mini_soc mini_soc.alu --builtin=mini_soc \
  --constraint-cache="$CC" --stats-json="$TMP/cc_cold.json" \
  >"$TMP/cc_cold.v" 2>/dev/null
check_rc "ccache cold run" 0 $?
check_json "ccache cold run" "$TMP/cc_cold.json" \
  '"ccache_hits":0' '"ccache_misses":1'

"$FACTOR" extract mini_soc mini_soc.alu --builtin=mini_soc \
  --constraint-cache="$CC" --stats-json="$TMP/cc_warm.json" \
  >"$TMP/cc_warm.v" 2>/dev/null
check_rc "ccache warm run" 0 $?
check_json "ccache warm run" "$TMP/cc_warm.json" \
  '"ccache_hits":1' '"ccache.hits":1'
if cmp -s "$TMP/cc_cold.v" "$TMP/cc_warm.v"; then
  echo "ok: ccache warm output byte-identical to cold"
else
  echo "FAIL: ccache warm output differs from cold" >&2
  fails=$((fails + 1))
fi

# Flip one byte mid-entry: the damaged entry is quarantined, the run
# degrades to cold extraction with identical output, and exits 0.
entry=$(echo "$CC"/*.ccache)
printf 'X' | dd of="$entry" bs=1 seek=100 conv=notrunc 2>/dev/null
"$FACTOR" extract mini_soc mini_soc.alu --builtin=mini_soc \
  --constraint-cache="$CC" --stats-json="$TMP/cc_heal.json" \
  >"$TMP/cc_heal.v" 2>/dev/null
check_rc "ccache corrupt entry degrades" 0 $?
check_json "ccache corrupt entry degrades" "$TMP/cc_heal.json" \
  '"ccache.quarantined":1'
if cmp -s "$TMP/cc_cold.v" "$TMP/cc_heal.v"; then
  echo "ok: ccache degraded output byte-identical to cold"
else
  echo "FAIL: ccache degraded output differs from cold" >&2
  fails=$((fails + 1))
fi
if ls "$CC/quarantine"/*.ccache.* >/dev/null 2>&1; then
  echo "ok: damaged entry moved to quarantine"
else
  echo "FAIL: quarantine directory has no damaged entry" >&2
  fails=$((fails + 1))
fi

# An unusable cache directory refuses up front with an input error.
"$FACTOR" extract mini_soc mini_soc.alu --builtin=mini_soc \
  --constraint-cache=/nonexistent/x/y >/dev/null 2>&1
check_rc "ccache unusable directory" 1 $?

# The environment spelling engages the same cache.
FACTOR_CONSTRAINT_CACHE="$CC" "$FACTOR" extract mini_soc mini_soc.alu \
  --builtin=mini_soc --stats-json="$TMP/cc_env.json" >/dev/null 2>/dev/null
check_rc "ccache via environment" 0 $?
check_json "ccache via environment" "$TMP/cc_env.json" '"ccache_hits":1'

# --- SIGINT mid-ATPG: exit 3 and the stats doc still lands ------------------
"$FACTOR" atpg --builtin=arm2z --budget=60 \
  --stats-json="$TMP/sigint.json" >/dev/null 2>&1 &
pid=$!
sleep 1
kill -INT "$pid" 2>/dev/null
wait "$pid"
check_rc "SIGINT mid-ATPG" 3 $?
check_json "SIGINT mid-ATPG" "$TMP/sigint.json" \
  '"interrupted":true' '"exit_code":3'

if [ "$fails" -ne 0 ]; then
  echo "$fails check(s) failed" >&2
  exit 1
fi
echo "all exit-code checks passed"
