// Parameterized round-trip tests for the constraint writer: for every
// arm2z MUT and both extraction modes, the emitted Verilog must re-parse,
// re-elaborate and re-synthesize to a netlist equivalent to the in-memory
// filtered synthesis (same gate/DFF counts, same ATPG-relevant interface).
#include "helpers.hpp"

#include "core/extractor.hpp"
#include "core/transform.hpp"
#include "core/writer.hpp"
#include "designs/designs.hpp"

#include <gtest/gtest.h>

namespace factor::test {
namespace {

using core::ConstraintSet;
using core::ExtractionSession;
using core::Mode;

struct RoundTripCase {
    std::string mut_path;
    Mode mode;
    std::string name;
};

std::vector<RoundTripCase> make_cases() {
    std::vector<RoundTripCase> cases;
    for (const auto& mut : designs::arm2z_muts()) {
        for (Mode mode : {Mode::Flat, Mode::Composed}) {
            RoundTripCase c;
            c.mut_path = mut.instance_path;
            c.mode = mode;
            c.name = mut.display_name +
                     (mode == Mode::Flat ? "_flat" : "_composed");
            cases.push_back(std::move(c));
        }
    }
    return cases;
}

class WriterRoundTrip : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(WriterRoundTrip, EmittedConstraintsReproduceTheNetlist) {
    const auto& tc = GetParam();
    auto b = compile(designs::arm2z_source(), designs::kArm2zTop);
    ASSERT_TRUE(b);
    const auto* mut = b->elaborated->find_by_path(tc.mut_path);
    ASSERT_NE(mut, nullptr);

    ExtractionSession session(*b->elaborated, tc.mode, b->diags);
    ConstraintSet cs = session.extract(*mut);

    core::ConstraintWriter writer(*b->elaborated, cs);
    std::string verilog = writer.write_verilog();
    ASSERT_FALSE(verilog.empty());
    // The MUT module itself must be present in full.
    EXPECT_NE(verilog.find("module " + mut->module->name), std::string::npos);

    auto reparsed = compile(verilog, writer.top_name());
    ASSERT_TRUE(reparsed) << verilog.substr(0, 2000);
    auto nl_text = synthesize(*reparsed);

    // Direct in-memory path (without PIER transforms, to compare raw cones).
    core::TransformBuilder builder(*b->elaborated, b->diags);
    core::TransformOptions topts;
    topts.expose_piers = false;
    auto tm = builder.build(*mut, session, topts);

    EXPECT_EQ(nl_text.logic_gate_count(), tm.netlist.logic_gate_count());
    EXPECT_EQ(nl_text.dff_count(), tm.netlist.dff_count());
    EXPECT_EQ(nl_text.outputs().size(), tm.netlist.outputs().size());
}

INSTANTIATE_TEST_SUITE_P(Arm2zMuts, WriterRoundTrip,
                         ::testing::ValuesIn(make_cases()),
                         [](const auto& info) { return info.param.name; });

TEST(WriterStructure, PrunedModulesKeepConditionalWrappers) {
    auto b = compile(R"(
module mut (input m_in, output m_out);
  assign m_out = ~m_in;
endmodule
module top (input clk, input sel, input a, input b, output y);
  reg driver;
  always @(posedge clk) begin
    if (sel) driver <= a;
    else driver <= b;
  end
  wire mut_out;
  mut u (.m_in(driver), .m_out(mut_out));
  assign y = mut_out;
endmodule)",
                     "top");
    ASSERT_TRUE(b);
    core::ExtractionSession session(*b->elaborated, Mode::Composed, b->diags);
    const auto* mut = b->elaborated->find_by_path("top.u");
    auto cs = session.extract(*mut);
    core::ConstraintWriter writer(*b->elaborated, cs);
    std::string v = writer.write_verilog();
    // The if/else wrapper around the marked assignments must survive.
    EXPECT_NE(v.find("if (sel)"), std::string::npos) << v;
    EXPECT_NE(v.find("else"), std::string::npos) << v;
    EXPECT_NE(v.find("posedge clk"), std::string::npos) << v;
}

TEST(WriterStructure, UnmarkedLogicIsDropped) {
    auto b = compile(R"(
module mut (input m_in, output m_out);
  assign m_out = ~m_in;
endmodule
module top (input a, input b, output y, output unrelated);
  wire mut_out;
  mut u (.m_in(a), .m_out(mut_out));
  assign y = mut_out;
  assign unrelated = a ^ b;
endmodule)",
                     "top");
    ASSERT_TRUE(b);
    core::ExtractionSession session(*b->elaborated, Mode::Composed, b->diags);
    const auto* mut = b->elaborated->find_by_path("top.u");
    auto cs = session.extract(*mut);
    core::ConstraintWriter writer(*b->elaborated, cs);
    std::string v = writer.write_verilog();
    EXPECT_EQ(v.find("unrelated = "), std::string::npos)
        << "logic outside the cone must not be emitted:\n" << v;
    EXPECT_NE(v.find("assign y = "), std::string::npos) << v;
}

TEST(WriterStructure, VariantsCreatedOnlyOnConflict) {
    // Two instances of the same module with identical marks share one
    // emitted definition (the paper: "retains the original directory
    // structure instead of creating unique instances").
    auto b = compile(R"(
module buf1 (input i, output o);
  assign o = i;
endmodule
module mut (input m_in, output m_out);
  assign m_out = ~m_in;
endmodule
module top (input a, output y);
  wire t1, t2, t3;
  buf1 b1 (.i(a), .o(t1));
  buf1 b2 (.i(t1), .o(t2));
  mut u (.m_in(t2), .m_out(t3));
  assign y = t3;
endmodule)",
                     "top");
    ASSERT_TRUE(b);
    core::ExtractionSession session(*b->elaborated, Mode::Composed, b->diags);
    const auto* mut = b->elaborated->find_by_path("top.u");
    auto cs = session.extract(*mut);
    core::ConstraintWriter writer(*b->elaborated, cs);
    std::string v = writer.write_verilog();
    // Exactly one definition of buf1 (both instances carry the same marks).
    size_t first = v.find("module buf1");
    ASSERT_NE(first, std::string::npos);
    EXPECT_EQ(v.find("module buf1", first + 1), std::string::npos) << v;
}

} // namespace
} // namespace factor::test
