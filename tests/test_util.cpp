// Unit tests for the util substrate: BitVec, strings, diagnostics,
// RunGuard, PhaseLog.
#include "util/bitvec.hpp"
#include "util/diagnostics.hpp"
#include "util/phase.hpp"
#include "util/run_guard.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace factor::util {
namespace {

TEST(BitVec, ParseSizedHex) {
    BitVec v;
    ASSERT_TRUE(BitVec::parse_verilog("8'hff", v));
    EXPECT_EQ(v.width(), 8u);
    EXPECT_EQ(v.value(), 0xffu);
}

TEST(BitVec, ParseSizedBinary) {
    BitVec v;
    ASSERT_TRUE(BitVec::parse_verilog("4'b1010", v));
    EXPECT_EQ(v.width(), 4u);
    EXPECT_EQ(v.value(), 0b1010u);
}

TEST(BitVec, ParseSizedDecimalWithUnderscores) {
    BitVec v;
    ASSERT_TRUE(BitVec::parse_verilog("16'd1_000", v));
    EXPECT_EQ(v.width(), 16u);
    EXPECT_EQ(v.value(), 1000u);
}

TEST(BitVec, ParseOctal) {
    BitVec v;
    ASSERT_TRUE(BitVec::parse_verilog("6'o77", v));
    EXPECT_EQ(v.value(), 63u);
}

TEST(BitVec, ParseUnsizedDefaultsTo32Bits) {
    BitVec v;
    ASSERT_TRUE(BitVec::parse_verilog("42", v));
    EXPECT_EQ(v.width(), 32u);
    EXPECT_EQ(v.value(), 42u);
}

TEST(BitVec, ParseRejectsMalformed) {
    BitVec v;
    EXPECT_FALSE(BitVec::parse_verilog("8'q12", v));
    EXPECT_FALSE(BitVec::parse_verilog("4'b12", v)); // digit beyond base
    EXPECT_FALSE(BitVec::parse_verilog("", v));
    EXPECT_FALSE(BitVec::parse_verilog("8'", v));
    EXPECT_FALSE(BitVec::parse_verilog("0'd1", v)); // zero width
}

TEST(BitVec, ValueMaskedToWidth) {
    BitVec v(4, 0xff);
    EXPECT_EQ(v.value(), 0xfu);
}

TEST(BitVec, ArithmeticWrapsAtWidth) {
    BitVec a(8, 200);
    BitVec b(8, 100);
    EXPECT_EQ((a + b).value(), (200u + 100u) & 0xffu);
    EXPECT_EQ((a - b).value(), 100u);
    EXPECT_EQ((b - a).value(), static_cast<uint64_t>(int8_t(100 - 200)) & 0xffu);
}

TEST(BitVec, MixedWidthUsesMax) {
    BitVec a(4, 0xf);
    BitVec b(8, 0x10);
    BitVec sum = a + b;
    EXPECT_EQ(sum.width(), 8u);
    EXPECT_EQ(sum.value(), 0x1fu);
}

TEST(BitVec, Reductions) {
    EXPECT_EQ(BitVec(4, 0xf).reduce_and().value(), 1u);
    EXPECT_EQ(BitVec(4, 0x7).reduce_and().value(), 0u);
    EXPECT_EQ(BitVec(4, 0x0).reduce_or().value(), 0u);
    EXPECT_EQ(BitVec(4, 0x8).reduce_or().value(), 1u);
    EXPECT_EQ(BitVec(4, 0b0111).reduce_xor().value(), 1u);
    EXPECT_EQ(BitVec(4, 0b0110).reduce_xor().value(), 0u);
}

TEST(BitVec, ConcatAndReplicate) {
    BitVec hi(4, 0xa);
    BitVec lo(4, 0x5);
    BitVec c = hi.concat(lo);
    EXPECT_EQ(c.width(), 8u);
    EXPECT_EQ(c.value(), 0xa5u);
    BitVec r = BitVec(2, 0b10).replicate(3);
    EXPECT_EQ(r.width(), 6u);
    EXPECT_EQ(r.value(), 0b101010u);
}

TEST(BitVec, Slice) {
    BitVec v(8, 0xa5);
    EXPECT_EQ(v.slice(7, 4).value(), 0xau);
    EXPECT_EQ(v.slice(3, 0).value(), 0x5u);
    EXPECT_EQ(v.slice(0, 0).width(), 1u);
    EXPECT_THROW((void)v.slice(8, 0), FactorError);
}

TEST(BitVec, Comparisons) {
    EXPECT_EQ(BitVec(8, 5).eq(BitVec(8, 5)).value(), 1u);
    EXPECT_EQ(BitVec(8, 5).eq(BitVec(8, 6)).value(), 0u);
    EXPECT_EQ(BitVec(8, 5).lt(BitVec(8, 6)).value(), 1u);
    EXPECT_EQ(BitVec(8, 6).lt(BitVec(8, 5)).value(), 0u);
}

TEST(BitVec, Shifts) {
    EXPECT_EQ(BitVec(8, 0x81).shl(1).value(), 0x02u);
    EXPECT_EQ(BitVec(8, 0x81).shr(1).value(), 0x40u);
    EXPECT_EQ(BitVec(8, 0xff).shl(64).value(), 0u);
}

TEST(BitVec, WidthLimits) {
    EXPECT_THROW(BitVec(0, 0), FactorError);
    EXPECT_THROW(BitVec(65, 0), FactorError);
    BitVec v(64, ~0ull);
    EXPECT_EQ(v.value(), ~0ull);
    EXPECT_THROW((void)v.concat(BitVec(1, 0)), FactorError);
}

TEST(Strings, Trim) {
    EXPECT_EQ(trim("  abc  "), "abc");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim("a"), "a");
}

TEST(Strings, SplitAndJoin) {
    auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(join(parts, "."), "a.b..c");
}

TEST(Strings, StartsEndsWith) {
    EXPECT_TRUE(starts_with("arm2z.exu.alu", "arm2z."));
    EXPECT_FALSE(starts_with("arm", "arm2z"));
    EXPECT_TRUE(ends_with("x[3]", "[3]"));
    EXPECT_TRUE(starts_with("abc", ""));
}

TEST(Strings, IsIdentifier) {
    EXPECT_TRUE(is_identifier("foo_bar"));
    EXPECT_TRUE(is_identifier("_x1$"));
    EXPECT_FALSE(is_identifier("1abc"));
    EXPECT_FALSE(is_identifier(""));
    EXPECT_FALSE(is_identifier("a b"));
}

TEST(Diagnostics, CountsAndFormats) {
    DiagEngine d;
    EXPECT_FALSE(d.has_errors());
    d.warning({"f.v", 3, 1}, "odd");
    EXPECT_FALSE(d.has_errors());
    d.error({"f.v", 5, 2}, "bad");
    EXPECT_TRUE(d.has_errors());
    EXPECT_EQ(d.error_count(), 1u);
    EXPECT_NE(d.dump().find("f.v:5:2: error: bad"), std::string::npos);
    d.clear();
    EXPECT_FALSE(d.has_errors());
    EXPECT_TRUE(d.all().empty());
}

TEST(Stopwatch, MeasuresSomethingNonNegative) {
    Stopwatch w;
    EXPECT_GE(w.seconds(), 0.0);
}

TEST(RunGuard, UnlimitedNeverStops) {
    RunGuard g;
    for (int i = 0; i < 1000; ++i) EXPECT_TRUE(g.tick());
    EXPECT_FALSE(g.stopped());
    EXPECT_EQ(g.reason(), GuardStop::None);
    EXPECT_GT(g.remaining_seconds(), 1.0);
}

TEST(RunGuard, WorkQuotaTrips) {
    RunGuard g(GuardLimits{0.0, 10, 0, 0});
    for (int i = 0; i < 10; ++i) EXPECT_TRUE(g.tick());
    EXPECT_FALSE(g.tick());
    EXPECT_TRUE(g.stopped());
    EXPECT_EQ(g.reason(), GuardStop::WorkQuota);
    EXPECT_EQ(g.work_used(), 11u);
}

TEST(RunGuard, TinyWallBudgetTrips) {
    RunGuard g(1e-9);
    // Burn enough time for even a coarse clock to advance.
    while (g.elapsed_seconds() <= 1e-9) {}
    EXPECT_TRUE(g.stopped());
    EXPECT_EQ(g.reason(), GuardStop::WallClock);
    EXPECT_EQ(g.remaining_seconds(), 0.0);
}

TEST(RunGuard, GateAndNodeCaps) {
    RunGuard gates(GuardLimits{0.0, 0, 100, 0});
    EXPECT_TRUE(gates.note_gates(99));
    EXPECT_TRUE(gates.note_gates(100));
    EXPECT_FALSE(gates.note_gates(101));
    EXPECT_EQ(gates.reason(), GuardStop::GateCap);

    RunGuard nodes(GuardLimits{0.0, 0, 0, 5});
    EXPECT_TRUE(nodes.note_nodes(5));
    EXPECT_FALSE(nodes.note_nodes(6));
    EXPECT_EQ(nodes.reason(), GuardStop::NodeCap);
}

TEST(RunGuard, FirstReasonIsLatched) {
    RunGuard g(GuardLimits{0.0, 1, 1, 0});
    EXPECT_TRUE(g.tick());
    EXPECT_FALSE(g.tick()); // quota: 2 > 1
    EXPECT_EQ(g.reason(), GuardStop::WorkQuota);
    EXPECT_FALSE(g.note_gates(99)); // later gate overrun can't relabel it
    EXPECT_EQ(g.reason(), GuardStop::WorkQuota);
}

TEST(RunGuard, ManualTrip) {
    RunGuard g;
    g.trip(GuardStop::Interrupt);
    EXPECT_TRUE(g.stopped());
    EXPECT_FALSE(g.tick());
    EXPECT_EQ(g.reason(), GuardStop::Interrupt);
}

TEST(RunGuard, ProcessInterruptFlagStopsEveryGuard) {
    RunGuard g; // unlimited
    EXPECT_FALSE(g.stopped());
    RunGuard::request_interrupt();
    EXPECT_TRUE(RunGuard::interrupt_requested());
    EXPECT_TRUE(g.stopped());
    EXPECT_EQ(g.reason(), GuardStop::Interrupt);
    RunGuard::clear_interrupt();
    EXPECT_FALSE(RunGuard::interrupt_requested());
    // The reason stays latched even after the flag clears.
    EXPECT_TRUE(g.stopped());
}

TEST(RunGuard, StopReasonNames) {
    EXPECT_STREQ(to_string(GuardStop::None), "none");
    EXPECT_STREQ(to_string(GuardStop::WallClock), "wall_clock");
    EXPECT_STREQ(to_string(GuardStop::WorkQuota), "work_quota");
    EXPECT_STREQ(to_string(GuardStop::Interrupt), "interrupt");
}

TEST(Diagnostics, CapsStoredDiagsButCountsAll) {
    DiagEngine d;
    d.set_max_diags(3);
    for (int i = 0; i < 10; ++i) {
        d.error({"f.v", static_cast<uint32_t>(i + 1), 1}, "boom");
    }
    EXPECT_EQ(d.all().size(), 3u);
    EXPECT_EQ(d.error_count(), 10u);
    EXPECT_EQ(d.suppressed(), 7u);
    EXPECT_NE(d.dump().find("7 further diagnostics suppressed"),
              std::string::npos);
    d.clear();
    EXPECT_EQ(d.suppressed(), 0u);
    EXPECT_TRUE(d.all().empty());
}

TEST(Diagnostics, MaxDiagsZeroClampsToOne) {
    DiagEngine d;
    d.set_max_diags(0);
    d.error({}, "first");
    d.error({}, "second");
    EXPECT_EQ(d.all().size(), 1u);
    EXPECT_EQ(d.error_count(), 2u);
}

TEST(PhaseStatus, WorstOrdersBySeverity) {
    EXPECT_EQ(worst(PhaseStatus::Ok, PhaseStatus::Degraded),
              PhaseStatus::Degraded);
    EXPECT_EQ(worst(PhaseStatus::Failed, PhaseStatus::BudgetExhausted),
              PhaseStatus::Failed);
    EXPECT_EQ(worst(PhaseStatus::Ok, PhaseStatus::Ok), PhaseStatus::Ok);
    EXPECT_STREQ(to_string(PhaseStatus::BudgetExhausted), "budget_exhausted");
}

TEST(PhaseLog, OverallAndJson) {
    PhaseLog log;
    EXPECT_TRUE(log.empty());
    EXPECT_EQ(log.overall(), PhaseStatus::Ok);
    log.record("load", PhaseStatus::Ok, "", 0.25);
    log.record("extract", PhaseStatus::Degraded, "fell back to flat");
    EXPECT_EQ(log.overall(), PhaseStatus::Degraded);
    ASSERT_NE(log.find("extract"), nullptr);
    EXPECT_EQ(log.find("extract")->status, PhaseStatus::Degraded);
    EXPECT_EQ(log.find("nope"), nullptr);
    std::string json = log.to_json();
    EXPECT_NE(json.find("\"phase\":\"load\""), std::string::npos);
    EXPECT_NE(json.find("\"status\":\"degraded\""), std::string::npos);
    EXPECT_NE(json.find("fell back to flat"), std::string::npos);
}

} // namespace
} // namespace factor::util
